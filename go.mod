module kdp

go 1.22
