package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCleanVolume(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "clean: no inconsistencies found") {
		t.Errorf("expected clean verdict:\n%s", out.String())
	}
}

func TestCorruptionsDetected(t *testing.T) {
	for _, kind := range []string{"leak", "crosslink"} {
		var out bytes.Buffer
		err := run([]string{"-corrupt", kind}, &out)
		if !errors.Is(err, errInconsistent) {
			t.Errorf("-corrupt %s: want errInconsistent, got %v\n%s", kind, err, out.String())
			continue
		}
		if !strings.Contains(out.String(), "INCONSISTENT") {
			t.Errorf("-corrupt %s: expected INCONSISTENT report:\n%s", kind, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"stray"},
		{"-corrupt", "gamma-rays"},
	} {
		var out bytes.Buffer
		err := run(args, &out)
		if err == nil || errors.Is(err, errInconsistent) {
			t.Errorf("run(%q): expected usage error, got %v", args, err)
		}
	}
}
