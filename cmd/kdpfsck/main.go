// Command kdpfsck builds a volume, runs a workload against it
// (optionally injecting media corruption), and then checks the
// filesystem's consistency — demonstrating the offline checker in
// internal/fs.
//
// Usage:
//
//	kdpfsck                  # clean volume after a copy workload
//	kdpfsck -corrupt leak    # inject a corruption first: leak, crosslink
//	kdpfsck -corrupt crosslink -repair   # repair the damage, then re-check
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"kdp/internal/bench"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/workload"
)

// errInconsistent reports a volume that fsck found problems with; the
// process exits 1 (as fsck traditionally does) rather than 2 for a
// usage error.
var errInconsistent = errors.New("volume inconsistent")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case err == flag.ErrHelp:
		os.Exit(0)
	case errors.Is(err, errInconsistent):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "kdpfsck:", err)
		os.Exit(2)
	}
}

// run is the testable entry point: it parses args, runs the workload and
// checker, and writes the report to out.
func run(args []string, out io.Writer) error {
	fl := flag.NewFlagSet("kdpfsck", flag.ContinueOnError)
	fl.SetOutput(out)
	corrupt := fl.String("corrupt", "", "inject corruption before checking: leak or crosslink")
	repair := fl.Bool("repair", false, "repair inconsistencies (fsck -p style), then re-check")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fl.Arg(0))
	}
	switch *corrupt {
	case "", "leak", "crosslink":
	default:
		return fmt.Errorf("unknown corruption %q", *corrupt)
	}

	s := bench.DefaultSetup(bench.RAM)
	s.FileBytes = 2 << 20
	m := bench.NewMachine(s)

	var rep, repRepair *fs.FsckReport
	m.K.Spawn("fsck", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		// Exercise the volume: create, copy, delete.
		if err := workload.MakeFile(p, "/src/data", s.FileBytes, 1); err != nil {
			panic(err)
		}
		if _, err := workload.Copy(p, workload.DefaultCopySpec("/src/data", "/dst/copy", workload.CopySplice)); err != nil {
			panic(err)
		}
		if err := p.Unlink("/dst/copy"); err != nil {
			panic(err)
		}
		if err := m.FSs[0].SyncAll(p.Ctx()); err != nil {
			panic(err)
		}
		if err := m.Cache.InvalidateDev(p.Ctx(), m.Disks[0]); err != nil {
			panic(err)
		}

		switch *corrupt {
		case "leak":
			// Mark a block near the end of the volume (past the test
			// file's allocation) as in-use without any referent.
			markBitmap(m, m.FSs[0].Super().TotalBlocks-5, true)
		case "crosslink":
			crossLink(m)
		}
		if *corrupt != "" {
			if err := m.Cache.InvalidateDev(p.Ctx(), m.Disks[0]); err != nil {
				panic(err)
			}
		}

		var err error
		rep, err = fs.Fsck(p.Ctx(), m.Cache, m.Disks[0])
		if err != nil {
			panic(err)
		}
		if *repair && !rep.Clean() {
			fixed, err := fs.FsckRepair(p.Ctx(), m.Cache, m.Disks[0])
			if err != nil {
				panic(err)
			}
			repRepair = fixed
			rep, err = fs.Fsck(p.Ctx(), m.Cache, m.Disks[0])
			if err != nil {
				panic(err)
			}
		}
	})
	m.Run()

	if repRepair != nil {
		fmt.Fprintf(out, "repair: %d problem(s) found, %d fix(es) applied\n",
			len(repRepair.Problems), repRepair.Repaired)
		for _, p := range repRepair.Problems {
			fmt.Fprintln(out, "  -", p)
		}
	}
	fmt.Fprintf(out, "volume: %d inodes (%d files, %d dirs), %d blocks in use\n",
		rep.Inodes, rep.Files, rep.Dirs, rep.UsedBlocks)
	if rep.Clean() {
		fmt.Fprintln(out, "clean: no inconsistencies found")
		return nil
	}
	fmt.Fprintf(out, "INCONSISTENT: %d problem(s)\n", len(rep.Problems))
	for _, p := range rep.Problems {
		fmt.Fprintln(out, "  -", p)
	}
	return errInconsistent
}

// markBitmap flips a bitmap bit directly on the media.
func markBitmap(m *bench.Machine, blk uint32, set bool) {
	sb := m.FSs[0].Super()
	raw := make([]byte, sb.BlockSize)
	bitsPerBlk := int(sb.BlockSize) * 8
	bmBlk := int64(sb.BitmapStart) + int64(int(blk)/bitsPerBlk)
	m.Disks[0].ReadRaw(bmBlk, raw)
	bit := int(blk) % bitsPerBlk
	if set {
		raw[bit/8] |= 1 << uint(bit%8)
	} else {
		raw[bit/8] &^= 1 << uint(bit%8)
	}
	m.Disks[0].WriteRaw(bmBlk, raw)
}

// crossLink points the second file inode's first block at the first
// file's block, simulating media corruption.
func crossLink(m *bench.Machine) {
	sb := m.FSs[0].Super()
	raw := make([]byte, sb.BlockSize)
	m.Disks[0].ReadRaw(int64(sb.ITableStart), raw)
	// Inode 2 is /src/data. Duplicate its first pointer into inode 3's
	// slot and mark inode 3 allocated with one block.
	copy(raw[3*fs.InodeSize:4*fs.InodeSize], raw[2*fs.InodeSize:3*fs.InodeSize])
	m.Disks[0].WriteRaw(int64(sb.ITableStart), raw)
}
