// Command kdpcheck drives the deterministic-simulation check harness
// (internal/simcheck): randomized workloads over a full simulated
// machine with cross-layer invariant checking at every scheduling
// boundary, an in-memory content oracle, an end-of-run fsck, and
// seed-replay verification.
//
// Usage:
//
//	kdpcheck -seeds 100            # sweep seeds 0..99, replay-verify each
//	kdpcheck -seeds 100 -start 500 # sweep seeds 500..599
//	kdpcheck -seed 39 -v           # run one seed, print the event log
//	kdpcheck -seed 39 -minimize    # shrink a failing seed's op sequence
//	kdpcheck -ops 200 -workers 3   # heavier per-seed workload
//	kdpcheck -seed 3 -damage busy-on-freelist   # self-test the checkers
//	kdpcheck -crash -seeds 100     # crash sweep: power cut + repair + remount per seed
//	kdpcheck -faults -seeds 50     # fault sweep: census each seed, re-run per (site, k)
//	kdpcheck -seed 7 -fault-site disk.rz56.wrerr -fault-k 3 -v   # one armed run
//
// A failing seed prints the violated invariant, the minimal failing op
// subsequence (ddmin bisection), and the exact command to reproduce it.
// Exit status is 1 if any seed fails, 2 on usage errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"kdp/internal/simcheck"
)

// errFailed marks check failures (exit 1) as opposed to usage errors
// (exit 2).
var errFailed = errors.New("check failed")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errFailed):
		os.Exit(1)
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, "kdpcheck:", err)
		os.Exit(2)
	}
}

// run is the testable entry point: it parses args, executes the
// requested checks, writes human-readable results to out, and returns
// errFailed if any seed failed.
func run(args []string, out io.Writer) error {
	fl := flag.NewFlagSet("kdpcheck", flag.ContinueOnError)
	fl.SetOutput(out)
	var (
		seeds     = fl.Int("seeds", 0, "sweep this many seeds starting at -start (default mode, 25 seeds)")
		start     = fl.Uint64("start", 0, "first seed of the sweep")
		seed      = fl.Int64("seed", -1, "run this single seed instead of a sweep")
		ops       = fl.Int("ops", 60, "operations per seed")
		workers   = fl.Int("workers", 0, "worker processes per seed (0 = derive 1-3 from the seed)")
		verbose   = fl.Bool("v", false, "print the event log of every run")
		minimize  = fl.Bool("minimize", false, "with -seed: shrink a failing op sequence to a minimal repro")
		noReplay  = fl.Bool("noreplay", false, "skip the second run that verifies seed-replay determinism")
		damage    = fl.String("damage", "", "with -seed: corrupt the buffer cache mid-run to self-test the checkers (busy-on-freelist, delwri-undone, hash-key, ra-pending)")
		damageAt  = fl.Int("damage-after", 5, "with -damage: corrupt after this many ops")
		crash     = fl.Bool("crash", false, "crash sweep: one power cut per seed, then repair, remount, and durability checks")
		faults    = fl.Bool("faults", false, "fault sweep: census each seed's fault sites, then re-run once per (site, k) sample with a single-shot fault armed")
		faultSite = fl.String("fault-site", "", "with -seed: arm a single-shot fault at this site (see docs/FAULTS.md for site IDs)")
		faultK    = fl.Int64("fault-k", 1, "with -fault-site: fire at the k-th eligible occurrence")
	)
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fl.Arg(0))
	}

	if *ops <= 0 {
		return fmt.Errorf("-ops must be positive (got %d)", *ops)
	}
	switch *damage {
	case "", "busy-on-freelist", "delwri-undone", "hash-key", "ra-pending":
	default:
		return fmt.Errorf("unknown damage kind %q (busy-on-freelist, delwri-undone, hash-key, ra-pending)", *damage)
	}
	if *damage != "" && *seed < 0 {
		return fmt.Errorf("-damage requires -seed")
	}
	if *damage != "" && *crash {
		return fmt.Errorf("-damage and -crash are mutually exclusive")
	}
	if *faults && (*damage != "" || *crash) {
		return fmt.Errorf("-faults excludes -damage and -crash (the sweep owns the disturbance schedule)")
	}
	if *faultSite != "" && *seed < 0 {
		return fmt.Errorf("-fault-site requires -seed")
	}
	if *faultSite != "" && (*faults || *damage != "" || *crash) {
		return fmt.Errorf("-fault-site runs exactly one armed configuration; drop -faults/-damage/-crash")
	}

	if *faults {
		n := *seeds
		if n <= 0 {
			n = 25
		}
		first := *start
		if *seed >= 0 {
			first, n = uint64(*seed), 1
		}
		return runFaultSweep(first, n, *ops, *verbose, !*noReplay, out)
	}

	if *seed >= 0 {
		cfg := simcheck.Config{
			Seed: uint64(*seed), Ops: *ops, Workers: *workers,
			Damage: *damage, DamageAfter: *damageAt, Crash: *crash,
			FaultSite: *faultSite, FaultK: *faultK,
		}
		if *verbose {
			cfg.Verbose = out
		}
		replay := !*noReplay && *damage == ""
		return runOne(cfg, *minimize, replay, out)
	}

	n := *seeds
	if n <= 0 {
		n = 25
	}
	return runSweep(*start, n, *ops, *workers, *crash, *verbose, !*noReplay, out)
}

// runOne checks a single seed, minimizing on failure when asked.
func runOne(cfg simcheck.Config, minimize, replay bool, out io.Writer) error {
	res := simcheck.Run(cfg)
	if res.Failed() {
		fmt.Fprintf(out, "seed %d FAILED: %v\n", res.Seed, res.Violation)
		if minimize {
			min, idx := simcheck.Minimize(cfg)
			fmt.Fprintf(out, "minimized to %d op(s), original indices %v\n", min.Ops, idx)
			fmt.Fprintf(out, "minimal-run violation: %v\n", min.Violation)
		}
		fmt.Fprintf(out, "repro: %s\n", simcheck.ReproCommand(simcheck.Config{Seed: res.Seed, Ops: cfg.Ops, Workers: res.Workers}))
		return errFailed
	}
	fmt.Fprintf(out, "seed %d ok: %d ops, %d workers, digest %016x\n", res.Seed, res.Ops, res.Workers, res.Digest)
	if replay {
		if err := simcheck.VerifyReplayConfig(cfg); err != nil {
			fmt.Fprintf(out, "seed %d REPLAY FAILED: %v\n", cfg.Seed, err)
			return errFailed
		}
		fmt.Fprintf(out, "seed %d replay ok\n", cfg.Seed)
	}
	return nil
}

// runFaultSweep walks every error path seeds [start, start+n) can
// reach: each seed runs once fault-free to census its eligible fault
// sites, then once per sampled (site, k) with a single-shot fault armed
// at the k-th occurrence. Every seed prints its census shape and a
// folded digest of all its armed runs, so two sweeps (e.g. under
// different GOMAXPROCS) compare line-by-line. The sweep also requires
// every censused site to have fired at least once across the whole
// seed range — a site that never fires is dead fault-injection code.
func runFaultSweep(start uint64, n, ops int, verbose, replay bool, out io.Writer) error {
	failed := 0
	totalRuns := 0
	fired := make(map[string]int64)
	for i := 0; i < n; i++ {
		s := start + uint64(i)
		cfg := simcheck.Config{Seed: s, Ops: ops}
		if verbose {
			cfg.Verbose = out
		}
		res := simcheck.FaultSweepSeed(cfg, replay)
		if res.Failed() {
			failed++
			fmt.Fprintf(out, "seed %d FAULT SWEEP FAILED: %v\n", s, res.Violation)
			if res.FailedConfig.FaultSite != "" {
				min, idx := simcheck.Minimize(res.FailedConfig)
				fmt.Fprintf(out, "  minimized to %d op(s), original indices %v\n", min.Ops, idx)
				fmt.Fprintf(out, "  minimal-run violation: %v\n", min.Violation)
			}
			fmt.Fprintf(out, "  repro: %s\n", simcheck.ReproCommand(res.FailedConfig))
			continue
		}
		for _, run := range res.Runs {
			fired[run.Site] += run.Fired
		}
		totalRuns += len(res.Runs)
		fmt.Fprintf(out, "seed %d: %d site(s), %d armed run(s), digest %016x\n",
			s, len(res.Census), len(res.Runs), res.Digest())
	}
	if failed > 0 {
		fmt.Fprintf(out, "FAIL: %d of %d seed(s) failed the fault sweep\n", failed, n)
		return errFailed
	}
	sites := make([]string, 0, len(fired))
	for site := range fired {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		fmt.Fprintf(out, "site %-22s fired %d\n", site, fired[site])
	}
	mode := "run+replay"
	if !replay {
		mode = "run"
	}
	fmt.Fprintf(out, "ok: %d fault seed(s) [%d..%d] clean (%s, %d ops each, %d armed runs, %d site(s) covered)\n",
		n, start, start+uint64(n)-1, mode, ops, totalRuns, len(sites))
	return nil
}

// runSweep checks seeds [start, start+n), reporting a one-line verdict
// per seed and a summary. Every failing seed is minimized and printed
// with its repro command; the sweep keeps going so one bad seed does
// not hide another. In crash mode every seed's digest is printed, so
// two sweeps (e.g. under different GOMAXPROCS) can be compared
// line-by-line for cross-process determinism.
func runSweep(start uint64, n, ops, workers int, crash, verbose, replay bool, out io.Writer) error {
	failed := 0
	for i := 0; i < n; i++ {
		s := start + uint64(i)
		cfg := simcheck.Config{Seed: s, Ops: ops, Workers: workers, Crash: crash}
		if verbose {
			cfg.Verbose = out
		}
		res := simcheck.Run(cfg)
		if res.Failed() {
			failed++
			fmt.Fprintf(out, "seed %d FAILED: %v\n", s, res.Violation)
			min, idx := simcheck.Minimize(cfg)
			fmt.Fprintf(out, "  minimized to %d op(s), original indices %v\n", min.Ops, idx)
			fmt.Fprintf(out, "  repro: %s\n", simcheck.ReproCommand(simcheck.Config{Seed: s, Ops: ops, Workers: res.Workers, Crash: crash}))
			continue
		}
		if crash {
			fmt.Fprintf(out, "seed %d digest %016x\n", s, res.Digest)
		}
		if replay {
			if err := simcheck.VerifyReplayConfig(simcheck.Config{Seed: s, Ops: ops, Workers: workers, Crash: crash}); err != nil {
				failed++
				fmt.Fprintf(out, "seed %d REPLAY FAILED: %v\n", s, err)
				continue
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(out, "FAIL: %d of %d seed(s) failed\n", failed, n)
		return errFailed
	}
	mode := "run+replay"
	if !replay {
		mode = "run"
	}
	kind := "seed(s)"
	if crash {
		kind = "crash seed(s)"
	}
	fmt.Fprintf(out, "ok: %d %s [%d..%d] clean (%s, %d ops each)\n", n, kind, start, start+uint64(n)-1, mode, ops)
	return nil
}
