package main

import (
	"errors"
	"strings"
	"testing"
)

func TestSweepSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-seeds", "5"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok: 5 seed(s) [0..4] clean") {
		t.Errorf("unexpected summary:\n%s", out.String())
	}
}

func TestSingleSeedVerbose(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-seed", "3", "-v", "-noreplay"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"seed 3 ok", "fsck /d0 clean"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDamageSelfTest(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-seed", "3", "-damage", "busy-on-freelist"}, &out)
	if !errors.Is(err, errFailed) {
		t.Fatalf("damaged run: err = %v, want errFailed\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"seed 3 FAILED", "invariant buf-free-busy", "repro:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFaultSweepSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-faults", "-seeds", "1", "-ops", "25", "-noreplay"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"seed 0:", "armed run(s), digest", "site ", "ok: 1 fault seed(s) [0..0] clean"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSingleArmedFault(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-seed", "0", "-fault-site", "sim.crash-boundary", "-fault-k", "2", "-noreplay"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "seed 0 ok") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"stray"}, &out); err == nil || errors.Is(err, errFailed) {
		t.Errorf("stray argument: err = %v, want usage error", err)
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-damage", "hash-key"}, &out); err == nil || errors.Is(err, errFailed) {
		t.Errorf("-damage without -seed: err = %v, want usage error", err)
	}
	if err := run([]string{"-faults", "-crash"}, &out); err == nil || errors.Is(err, errFailed) {
		t.Errorf("-faults with -crash: err = %v, want usage error", err)
	}
	if err := run([]string{"-fault-site", "disk.rz58.rderr"}, &out); err == nil || errors.Is(err, errFailed) {
		t.Errorf("-fault-site without -seed: err = %v, want usage error", err)
	}
	if err := run([]string{"-seed", "1", "-fault-site", "disk.rz58.rderr", "-faults"}, &out); err == nil || errors.Is(err, errFailed) {
		t.Errorf("-fault-site with -faults: err = %v, want usage error", err)
	}
}
