package main

import (
	"errors"
	"strings"
	"testing"
)

func TestSweepSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-seeds", "5"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok: 5 seed(s) [0..4] clean") {
		t.Errorf("unexpected summary:\n%s", out.String())
	}
}

func TestSingleSeedVerbose(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-seed", "3", "-v", "-noreplay"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"seed 3 ok", "fsck /d0 clean"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDamageSelfTest(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-seed", "3", "-damage", "busy-on-freelist"}, &out)
	if !errors.Is(err, errFailed) {
		t.Fatalf("damaged run: err = %v, want errFailed\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"seed 3 FAILED", "invariant buf-free-busy", "repro:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"stray"}, &out); err == nil || errors.Is(err, errFailed) {
		t.Errorf("stray argument: err = %v, want usage error", err)
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-damage", "hash-key"}, &out); err == nil || errors.Is(err, errFailed) {
		t.Errorf("-damage without -seed: err = %v, want usage error", err)
	}
}
