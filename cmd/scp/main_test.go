package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBothModes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-disk", "RAM", "-mb", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "scp") || !strings.Contains(got, "cp") {
		t.Errorf("expected both copy modes in output:\n%s", got)
	}
	if !strings.Contains(got, "KB/s") {
		t.Errorf("expected throughput figures:\n%s", got)
	}
	if !strings.Contains(got, "reads=") {
		t.Errorf("expected splice stats on the scp line:\n%s", got)
	}
}

func TestDeterministic(t *testing.T) {
	gen := func() string {
		var out bytes.Buffer
		if err := run([]string{"-disk", "RZ58", "-mb", "1", "-mode", "scp"}, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if a, b := gen(), gen(); a != b {
		t.Errorf("output differs across fresh machines:\n%s\nvs\n%s", a, b)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"stray"},
		{"-disk", "FLOPPY"},
		{"-mode", "mv"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q): expected error, got nil", args)
		}
	}
}
