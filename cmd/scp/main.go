// Command scp runs a single file copy on a simulated machine and
// reports timing — the splice-based copy program of the paper's
// experiments, with the read/write copier available for comparison.
//
// Usage:
//
//	scp [-disk RAM|RZ58|RZ56] [-mb 8] [-mode scp|cp|both]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kdp/internal/bench"
	"kdp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "scp:", err)
		os.Exit(2)
	}
}

// run is the testable entry point: it parses args, runs the requested
// copies, and writes results to out.
func run(args []string, out io.Writer) error {
	fl := flag.NewFlagSet("scp", flag.ContinueOnError)
	fl.SetOutput(out)
	diskName := fl.String("disk", "RAM", "disk type: RAM, RZ58 or RZ56")
	mb := fl.Int64("mb", 8, "file size in megabytes")
	mode := fl.String("mode", "both", "copy mode: scp, cp or both")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fl.Arg(0))
	}

	kind, ok := map[string]bench.DiskKind{
		"RAM": bench.RAM, "RZ58": bench.RZ58, "RZ56": bench.RZ56,
	}[*diskName]
	if !ok {
		return fmt.Errorf("unknown disk %q", *diskName)
	}

	s := bench.DefaultSetup(kind)
	s.FileBytes = *mb << 20

	copyOnce := func(m workload.CopyMode) {
		res := bench.MeasureThroughput(s, m)
		fmt.Fprintf(out, "%-4s %2dMB on %-5s: %10v  %8.0f KB/s",
			m, *mb, kind, res.Elapsed, res.ThroughputKBs())
		if m == workload.CopySplice {
			st := res.Splice
			fmt.Fprintf(out, "  (reads=%d writes=%d shared=%d callouts=%d)",
				st.ReadsIssued, st.WritesIssued, st.Shared, st.Callouts)
		}
		fmt.Fprintln(out)
	}

	switch *mode {
	case "scp":
		copyOnce(workload.CopySplice)
	case "cp":
		copyOnce(workload.CopyReadWrite)
	case "both":
		copyOnce(workload.CopySplice)
		copyOnce(workload.CopyReadWrite)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}
