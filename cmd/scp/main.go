// Command scp runs a single file copy on a simulated machine and
// reports timing — the splice-based copy program of the paper's
// experiments, with the read/write copier available for comparison.
//
// Usage:
//
//	scp [-disk RAM|RZ58|RZ56] [-mb 8] [-mode scp|cp|both]
package main

import (
	"flag"
	"fmt"
	"os"

	"kdp/internal/bench"
	"kdp/internal/workload"
)

func main() {
	diskName := flag.String("disk", "RAM", "disk type: RAM, RZ58 or RZ56")
	mb := flag.Int64("mb", 8, "file size in megabytes")
	mode := flag.String("mode", "both", "copy mode: scp, cp or both")
	flag.Parse()

	kind, ok := map[string]bench.DiskKind{
		"RAM": bench.RAM, "RZ58": bench.RZ58, "RZ56": bench.RZ56,
	}[*diskName]
	if !ok {
		fmt.Fprintf(os.Stderr, "scp: unknown disk %q\n", *diskName)
		os.Exit(2)
	}

	s := bench.DefaultSetup(kind)
	s.FileBytes = *mb << 20

	run := func(m workload.CopyMode) {
		res := bench.MeasureThroughput(s, m)
		fmt.Printf("%-4s %2dMB on %-5s: %10v  %8.0f KB/s",
			m, *mb, kind, res.Elapsed, res.ThroughputKBs())
		if m == workload.CopySplice {
			st := res.Splice
			fmt.Printf("  (reads=%d writes=%d shared=%d callouts=%d)",
				st.ReadsIssued, st.WritesIssued, st.Shared, st.Callouts)
		}
		fmt.Println()
	}

	switch *mode {
	case "scp":
		run(workload.CopySplice)
	case "cp":
		run(workload.CopyReadWrite)
	case "both":
		run(workload.CopySplice)
		run(workload.CopyReadWrite)
	default:
		fmt.Fprintf(os.Stderr, "scp: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
