package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-disk", "RZ58", "-kb", "32", "-n", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "splice of 32KB on RZ58") {
		t.Errorf("missing splice summary:\n%s", got)
	}
	if !strings.Contains(got, "process rusage:") || !strings.Contains(got, "machine: interrupts=") {
		t.Errorf("missing accounting lines:\n%s", got)
	}
	// -n 2 with a real disk's interrupt traffic should truncate the trace.
	if !strings.Contains(got, "more trace lines") {
		t.Errorf("expected truncation notice with -n 2:\n%s", got)
	}
}

func TestTraceDeterministic(t *testing.T) {
	gen := func() string {
		var out bytes.Buffer
		if err := run([]string{"-disk", "RZ58", "-kb", "16", "-n", "0"}, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if a, b := gen(), gen(); a != b {
		t.Errorf("trace differs across fresh machines:\n%s\nvs\n%s", a, b)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"stray"},
		{"-disk", "MO"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q): expected error, got nil", args)
		}
	}
}
