package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kdp/internal/trace"
)

func TestTraceSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-disk", "RZ58", "-kb", "32", "-n", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "splice of 32KB on RZ58") {
		t.Errorf("missing splice summary:\n%s", got)
	}
	if !strings.Contains(got, "process rusage:") || !strings.Contains(got, "machine: interrupts=") {
		t.Errorf("missing accounting lines:\n%s", got)
	}
	// -n 2 with a real disk's traffic should truncate the trace, and the
	// notice must quote the exact rerun command.
	if !strings.Contains(got, "more trace lines") {
		t.Errorf("expected truncation notice with -n 2:\n%s", got)
	}
	if !strings.Contains(got, "kdptrace -disk RZ58 -kb 32 -n -1") {
		t.Errorf("truncation notice missing rerun command:\n%s", got)
	}
}

func TestLimitZeroAndAll(t *testing.T) {
	var none, all bytes.Buffer
	if err := run([]string{"-disk", "RAM", "-kb", "16", "-n", "0"}, &none); err != nil {
		t.Fatalf("run -n 0: %v", err)
	}
	if err := run([]string{"-disk", "RAM", "-kb", "16", "-n", "-1"}, &all); err != nil {
		t.Fatalf("run -n -1: %v", err)
	}
	if !strings.Contains(none.String(), "more trace lines") {
		t.Errorf("-n 0 should print no lines and a truncation notice:\n%s", none.String())
	}
	if strings.Contains(all.String(), "more trace lines") {
		t.Errorf("-n -1 should print every line with no truncation notice:\n%s", all.String())
	}
	if len(all.String()) <= len(none.String()) {
		t.Errorf("-n -1 output should be strictly longer than -n 0 output")
	}
	for _, want := range []string{"splice.start", "splice.read", "splice.write", "splice.done"} {
		if !strings.Contains(all.String(), want) {
			t.Errorf("full trace missing %q event:\n%s", want, all.String())
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	gen := func() string {
		var out bytes.Buffer
		if err := run([]string{"-disk", "RZ58", "-kb", "16", "-n", "-1"}, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if a, b := gen(), gen(); a != b {
		t.Errorf("trace differs across fresh machines:\n%s\nvs\n%s", a, b)
	}
}

func TestStatsMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-disk", "RAM", "-kb", "32", "-stats"}, &out); err != nil {
		t.Fatalf("run -stats: %v", err)
	}
	got := out.String()
	for _, want := range []string{"cpu:", "syscalls:", "cache:", "disk "} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in -stats output:\n%s", want, got)
		}
	}
}

// TestServerStatsGolden pins the counter snapshot of the server
// scenario across all four engine/mode sections — including the poll
// and readiness-dispatch counters the event engines introduce. The
// simulation is fully deterministic, so a diff here means a behavior
// change in the modeled kernel, not flakiness. Regenerate (alongside
// kdpbench's table goldens) when the cost model shifts:
//
//	go run ./cmd/kdptrace -server 4 -stats > cmd/kdptrace/testdata/server_stats.golden
func TestServerStatsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("server scenario sweep in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-server", "4", "-stats"}, &out); err != nil {
		t.Fatalf("run -server 4 -stats: %v", err)
	}
	want, err := os.ReadFile("testdata/server_stats.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if out.String() != string(want) {
		t.Errorf("server stats differ from golden:\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
	// The sections must pin the event-path counters, not just run.
	for _, counter := range []string{"poll: returns=", "server: accepts=", "ready="} {
		if !strings.Contains(out.String(), counter) {
			t.Errorf("stats missing %q counter:\n%s", counter, out.String())
		}
	}
}

// TestVMStatsGolden pins the counter snapshot of the traced mmap copy,
// including the vm: line (faults, pageins, pageouts, COWs) the VM
// subsystem introduces. The simulation is fully deterministic, so a
// diff here means a behavior change in the modeled kernel, not
// flakiness. Regenerate when the cost model shifts:
//
//	go run ./cmd/kdptrace -disk RAM -kb 64 -mcp -stats > cmd/kdptrace/testdata/vm_stats.golden
func TestVMStatsGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-disk", "RAM", "-kb", "64", "-mcp", "-stats"}, &out); err != nil {
		t.Fatalf("run -mcp -stats: %v", err)
	}
	want, err := os.ReadFile("testdata/vm_stats.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if out.String() != string(want) {
		t.Errorf("vm stats differ from golden:\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
	// The snapshot must pin the VM counters, not just run.
	for _, counter := range []string{"vm: faults=", "pageins=", "pageouts=", "mmap=", "msync=", "munmap="} {
		if !strings.Contains(out.String(), counter) {
			t.Errorf("stats missing %q counter:\n%s", counter, out.String())
		}
	}
}

// TestMcpTrace covers the -mcp trace-line mode: vm events render in
// the stream, and the truncation notice quotes the exact rerun command
// including the -mcp flag.
func TestMcpTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-disk", "RAM", "-kb", "64", "-mcp", "-n", "-1"}, &out); err != nil {
		t.Fatalf("run -mcp: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "mcp of 64KB on RAM") {
		t.Errorf("missing mcp summary:\n%s", got)
	}
	for _, want := range []string{"vm.fault", "vm.pagein", "vm.pageout"} {
		if !strings.Contains(got, want) {
			t.Errorf("full -mcp trace missing %q event", want)
		}
	}
	var short bytes.Buffer
	if err := run([]string{"-disk", "RAM", "-kb", "64", "-mcp", "-n", "2"}, &short); err != nil {
		t.Fatalf("run -mcp -n 2: %v", err)
	}
	if !strings.Contains(short.String(), "kdptrace -disk RAM -kb 64 -mcp -n -1") {
		t.Errorf("truncation notice missing -mcp rerun command:\n%s", short.String())
	}
}

func TestServerModeSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-server", "1"}, &out); err != nil {
		t.Fatalf("run -server 1: %v", err)
	}
	got := out.String()
	for _, want := range []string{"cp:", "scp:", "event:", "escp:", "request(s)"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in -server summary:\n%s", want, got)
		}
	}
}

func TestJSONExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.json")
	var out bytes.Buffer
	if err := run([]string{"-disk", "RAM", "-kb", "16", "-n", "0", "-json", path}, &out); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open export: %v", err)
	}
	defer f.Close()
	n, err := trace.ValidateChrome(f)
	if err != nil {
		t.Fatalf("exported JSON invalid: %v", err)
	}
	if n == 0 {
		t.Fatalf("exported JSON has no events")
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"stray"},
		{"-disk", "MO"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q): expected error, got nil", args)
		}
	}
}
