// Command kdptrace runs a small splice scenario with kernel scheduler
// tracing enabled and dumps the event log, showing the in-kernel data
// path at work: reads completing at interrupt level, write sides
// dispatched from the callout list, flow-control refills, and the
// calling process sleeping the whole time.
//
// Usage:
//
//	kdptrace [-disk RZ58] [-kb 64] [-n 40]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kdp/internal/bench"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/splice"
	"kdp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "kdptrace:", err)
		os.Exit(2)
	}
}

// run is the testable entry point: it parses args, runs the traced
// splice, and writes the report and trace lines to out.
func run(args []string, out io.Writer) error {
	fl := flag.NewFlagSet("kdptrace", flag.ContinueOnError)
	fl.SetOutput(out)
	diskName := fl.String("disk", "RZ58", "disk type: RAM, RZ58 or RZ56")
	kb := fl.Int64("kb", 64, "file size in kilobytes")
	limit := fl.Int("n", 40, "maximum trace lines to print (0 = all)")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fl.Arg(0))
	}

	kind, ok := map[string]bench.DiskKind{
		"RAM": bench.RAM, "RZ58": bench.RZ58, "RZ56": bench.RZ56,
	}[*diskName]
	if !ok {
		return fmt.Errorf("unknown disk %q", *diskName)
	}

	s := bench.DefaultSetup(kind)
	s.FileBytes = *kb << 10
	m := bench.NewMachine(s)

	var lines []string
	m.K.SetTracer(func(t sim.Time, what string) {
		lines = append(lines, fmt.Sprintf("%12v  %s", t, what))
	})

	var stats splice.Stats
	var usr, sys sim.Duration
	var nsys, nvol, ninv int64
	m.K.Spawn("scp", func(p *kernel.Proc) {
		defer func() {
			usr, sys = p.UserTime(), p.SysTime()
			nsys = p.Syscalls()
			nvol, ninv = p.ContextSwitches()
		}()
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, "/src/file", s.FileBytes, 1); err != nil {
			panic(err)
		}
		if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
			panic(err)
		}
		lines = lines[:0] // trace only the splice itself
		src, _ := p.Open("/src/file", kernel.ORdOnly)
		dst, _ := p.Open("/dst/copy", kernel.OCreat|kernel.OWrOnly)
		_, h, err := splice.SpliceOpts(p, src, dst, splice.EOF, splice.Options{})
		if err != nil {
			panic(err)
		}
		stats = h.Stats()
	})
	m.Run()

	fmt.Fprintf(out, "splice of %dKB on %s: reads=%d writes=%d shared=%d callouts=%d peak=%d/%d\n",
		*kb, kind, stats.ReadsIssued, stats.WritesIssued, stats.Shared,
		stats.Callouts, stats.PeakReads, stats.PeakWrites)
	kst := m.K.Stats()
	fmt.Fprintf(out, "process rusage: user=%v sys=%v syscalls=%d ctxsw=%d/%d (vol/invol)\n",
		usr, sys, nsys, nvol, ninv)
	fmt.Fprintf(out, "machine: interrupts=%d intr-cpu=%v switches=%d idle=%v\n\n",
		kst.Interrupts, kst.Interrupt, kst.Switches, kst.Idle)
	n := len(lines)
	if *limit > 0 && n > *limit {
		n = *limit
	}
	for _, l := range lines[:n] {
		fmt.Fprintln(out, l)
	}
	if n < len(lines) {
		fmt.Fprintf(out, "... (%d more trace lines; use -n 0 for all)\n", len(lines)-n)
	}
	return nil
}
