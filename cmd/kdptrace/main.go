// Command kdptrace runs a small splice scenario with structured kernel
// tracing enabled and renders the event stream, showing the in-kernel
// data path at work: reads completing at interrupt level, write sides
// dispatched from the callout list, flow-control refills, and the
// calling process sleeping the whole time.
//
// The text output is one renderer over the typed event stream from
// internal/trace; -stats prints the aggregated counter snapshot, and
// -json exports the full run in Chrome trace-event format for Perfetto.
//
// Usage:
//
//	kdptrace [-disk RZ58] [-kb 64] [-mcp] [-n 40] [-stats] [-json out.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kdp/internal/bench"
	"kdp/internal/kernel"
	"kdp/internal/server"
	"kdp/internal/sim"
	"kdp/internal/splice"
	"kdp/internal/trace"
	"kdp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "kdptrace:", err)
		os.Exit(2)
	}
}

// run is the testable entry point: it parses args, runs the traced
// splice, and writes the report and trace lines to out.
func run(args []string, out io.Writer) error {
	fl := flag.NewFlagSet("kdptrace", flag.ContinueOnError)
	fl.SetOutput(out)
	diskName := fl.String("disk", "RZ58", "disk type: RAM, RZ58 or RZ56")
	kb := fl.Int64("kb", 64, "file size in kilobytes")
	limit := fl.Int("n", 40, "maximum trace lines to print (negative = all, 0 = none)")
	stats := fl.Bool("stats", false, "print the counter snapshot instead of trace lines")
	mcp := fl.Bool("mcp", false, "trace the mmap copy (mcp) instead of the splice: page faults, pageins, pageouts")
	jsonOut := fl.String("json", "", "export the full run as Chrome trace-event JSON to this file")
	serverN := fl.Int("server", 0, "trace the server scenario at this fan-out instead of the splice: one section per engine/mode (cp, scp, event, escp)")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fl.Arg(0))
	}
	if *serverN > 0 {
		return runServer(*serverN, *stats, out)
	}

	kind, ok := map[string]bench.DiskKind{
		"RAM": bench.RAM, "RZ58": bench.RZ58, "RZ56": bench.RZ56,
	}[*diskName]
	if !ok {
		return fmt.Errorf("unknown disk %q", *diskName)
	}

	s := bench.DefaultSetup(kind)
	s.FileBytes = *kb << 10
	m := bench.NewMachine(s)

	col := &trace.Collector{}
	tr := m.K.StartTrace(col)

	var st splice.Stats
	var res workload.CopyResult
	var usr, sys sim.Duration
	var nsys, nvol, ninv int64
	spliceFrom := 0
	name := "scp"
	if *mcp {
		name = "mcp"
	}
	m.K.Spawn(name, func(p *kernel.Proc) {
		defer func() {
			usr, sys = p.UserTime(), p.SysTime()
			nsys = p.Syscalls()
			nvol, ninv = p.ContextSwitches()
		}()
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, "/src/file", s.FileBytes, 1); err != nil {
			panic(err)
		}
		if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
			panic(err)
		}
		spliceFrom = len(col.Events) // trace lines cover only the copy itself
		if *mcp {
			var err error
			res, err = workload.Copy(p, workload.DefaultCopySpec("/src/file", "/dst/copy", workload.CopyMmap))
			if err != nil {
				panic(err)
			}
			return
		}
		src, _ := p.Open("/src/file", kernel.ORdOnly)
		dst, _ := p.Open("/dst/copy", kernel.OCreat|kernel.OWrOnly)
		_, h, err := splice.SpliceOpts(p, src, dst, splice.EOF, splice.Options{})
		if err != nil {
			panic(err)
		}
		st = h.Stats()
	})
	m.Run()

	if *mcp {
		mm := tr.Metrics()
		fmt.Fprintf(out, "mcp of %dKB on %s: bytes=%d faults=%d pageins=%d pageouts=%d cows=%d\n",
			*kb, kind, res.Bytes, mm.VMFaults, mm.VMPageins, mm.VMPageouts, mm.VMCows)
	} else {
		fmt.Fprintf(out, "splice of %dKB on %s: reads=%d writes=%d shared=%d callouts=%d peak=%d/%d\n",
			*kb, kind, st.ReadsIssued, st.WritesIssued, st.Shared,
			st.Callouts, st.PeakReads, st.PeakWrites)
	}
	kst := m.K.Stats()
	fmt.Fprintf(out, "process rusage: user=%v sys=%v syscalls=%d ctxsw=%d/%d (vol/invol)\n",
		usr, sys, nsys, nvol, ninv)
	fmt.Fprintf(out, "machine: interrupts=%d intr-cpu=%v switches=%d idle=%v\n\n",
		kst.Interrupts, kst.Interrupt, kst.Switches, kst.Idle)

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("kdptrace %dKB %s", *kb, kind)
		if err := trace.ExportChrome(f, []trace.Run{{Label: label, Events: col.Events}}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d events to %s (load in Perfetto / chrome://tracing)\n\n",
			len(col.Events), *jsonOut)
	}

	if *stats {
		tr.Metrics().Format(out)
		return nil
	}

	// Text renderer: the splice window of the event stream, skipping the
	// high-volume CPU accounting kinds (see -stats for those, totalled).
	var lines []string
	for _, ev := range col.Events[spliceFrom:] {
		switch ev.Kind {
		case trace.KindCPUUser, trace.KindCPUSys, trace.KindCPUIntr,
			trace.KindCPUIdle, trace.KindCPUSwitch:
			continue
		}
		lines = append(lines, fmt.Sprintf("%12v  %s", ev.T, ev))
	}
	n := len(lines)
	if *limit >= 0 && n > *limit {
		n = *limit
	}
	for _, l := range lines[:n] {
		fmt.Fprintln(out, l)
	}
	if n < len(lines) {
		mcpFlag := ""
		if *mcp {
			mcpFlag = " -mcp"
		}
		fmt.Fprintf(out, "... (%d more trace lines; rerun with: kdptrace -disk %s -kb %d%s -n -1)\n",
			len(lines)-n, kind, *kb, mcpFlag)
	}
	return nil
}

// runServer traces the server-scalability scenario at one fan-out,
// one section per engine/mode. With -stats each section carries the
// full counter snapshot (poll returns, readiness dispatches, splice
// pipeline, stream retransmits); without it, just the request totals.
func runServer(clients int, stats bool, out io.Writer) error {
	for _, em := range []struct {
		e server.Engine
		m server.Mode
	}{
		{server.EngineProcs, server.ModeCopy},
		{server.EngineProcs, server.ModeSplice},
		{server.EngineEvent, server.ModeCopy},
		{server.EngineEvent, server.ModeSplice},
	} {
		col := &trace.Collector{}
		cell, tr := bench.MeasureServerTraced(clients, em.e, em.m, col)
		fmt.Fprintf(out, "== %d clients, %s: %d request(s) ==\n",
			cell.Clients, server.ModeName(em.e, em.m), cell.Requests)
		if stats {
			tr.Metrics().Format(out)
			fmt.Fprintln(out)
		}
	}
	if !stats {
		fmt.Fprintln(out, "(rerun with -stats for per-mode counter snapshots)")
	}
	return nil
}
