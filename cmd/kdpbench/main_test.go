package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"kdp/internal/trace"
)

// TestTableGolden checks the headline tables against golden output.
// The simulation is fully deterministic, so the numbers are stable
// across runs and machines; a diff here means a behavior change in the
// modeled kernel, not flakiness.
func TestTableGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size table runs in -short mode")
	}
	for _, tc := range []struct {
		flag, golden string
	}{
		{"1", "testdata/table1.golden"},
		{"2", "testdata/table2.golden"},
	} {
		var out bytes.Buffer
		if err := run([]string{"-table", tc.flag}, &out); err != nil {
			t.Fatalf("run -table %s: %v", tc.flag, err)
		}
		want, err := os.ReadFile(tc.golden)
		if err != nil {
			t.Fatalf("read golden: %v", err)
		}
		if out.String() != string(want) {
			t.Errorf("table %s differs from %s:\ngot:\n%s\nwant:\n%s",
				tc.flag, tc.golden, out.String(), want)
		}
	}
}

// TestTableDeterminism runs each table twice on fresh machines — and
// under different GOMAXPROCS — and requires byte-identical output. The
// discrete-event kernel must not leak host-scheduler nondeterminism
// into results.
func TestTableDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size table runs in -short mode")
	}
	genBoth := func() string {
		var out bytes.Buffer
		if err := run([]string{}, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}

	prev := runtime.GOMAXPROCS(1)
	first := genBoth()
	runtime.GOMAXPROCS(8)
	second := genBoth()
	runtime.GOMAXPROCS(prev)

	if first != second {
		t.Errorf("table output differs between fresh machines / GOMAXPROCS 1 vs 8:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if !strings.Contains(first, "CPU Availability Factors") ||
		!strings.Contains(first, "Mean Throughput Measurements") {
		t.Errorf("output missing expected table headers:\n%s", first)
	}
}

// TestTraceExport runs one table with -trace under different
// GOMAXPROCS and requires the exported event streams to be
// byte-identical and schema-valid, then exercises -validate on both a
// good and a bad document.
func TestTraceExport(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size table runs in -short mode")
	}
	dir := t.TempDir()
	gen := func(name string, procs int) string {
		path := filepath.Join(dir, name)
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		var out bytes.Buffer
		if err := run([]string{"-table", "2", "-disks", "RAM", "-trace", path}, &out); err != nil {
			t.Fatalf("run -trace: %v", err)
		}
		return path
	}
	a := gen("a.json", 1)
	b := gen("b.json", 8)
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatalf("read export: %v", err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatalf("read export: %v", err)
	}
	if !bytes.Equal(da, db) {
		t.Errorf("trace export differs between GOMAXPROCS 1 and 8")
	}
	n, err := trace.ValidateChrome(bytes.NewReader(da))
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if n == 0 {
		t.Fatalf("exported trace has no events")
	}

	var out bytes.Buffer
	if err := run([]string{"-validate", a}, &out); err != nil {
		t.Errorf("-validate on good file: %v", err)
	}
	if !strings.Contains(out.String(), "valid Chrome trace") {
		t.Errorf("unexpected -validate output: %s", out.String())
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[{"ph":"E","name":"x","pid":1,"tid":1,"ts":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", bad}, &out); err == nil {
		t.Errorf("-validate accepted malformed trace")
	}
}

func TestCSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size table runs in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-table", "1", "-csv", "-disks", "RAM"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "table,disk,f_cp,f_scp,improvement,pct_improve\n") {
		t.Errorf("missing CSV header:\n%s", got)
	}
	if !strings.Contains(got, "1,RAM,") {
		t.Errorf("missing RAM row:\n%s", got)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"stray"},
		{"-disks", "ZIP100"},
		{"-sweep", "nonesuch"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q): expected error, got nil", args)
		}
	}
}
