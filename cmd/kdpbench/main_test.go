package main

import (
	"bytes"
	"os"
	"runtime"
	"strings"
	"testing"
)

// TestTableGolden checks the headline tables against golden output.
// The simulation is fully deterministic, so the numbers are stable
// across runs and machines; a diff here means a behavior change in the
// modeled kernel, not flakiness.
func TestTableGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size table runs in -short mode")
	}
	for _, tc := range []struct {
		flag, golden string
	}{
		{"1", "testdata/table1.golden"},
		{"2", "testdata/table2.golden"},
	} {
		var out bytes.Buffer
		if err := run([]string{"-table", tc.flag}, &out); err != nil {
			t.Fatalf("run -table %s: %v", tc.flag, err)
		}
		want, err := os.ReadFile(tc.golden)
		if err != nil {
			t.Fatalf("read golden: %v", err)
		}
		if out.String() != string(want) {
			t.Errorf("table %s differs from %s:\ngot:\n%s\nwant:\n%s",
				tc.flag, tc.golden, out.String(), want)
		}
	}
}

// TestTableDeterminism runs each table twice on fresh machines — and
// under different GOMAXPROCS — and requires byte-identical output. The
// discrete-event kernel must not leak host-scheduler nondeterminism
// into results.
func TestTableDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size table runs in -short mode")
	}
	genBoth := func() string {
		var out bytes.Buffer
		if err := run([]string{}, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}

	prev := runtime.GOMAXPROCS(1)
	first := genBoth()
	runtime.GOMAXPROCS(8)
	second := genBoth()
	runtime.GOMAXPROCS(prev)

	if first != second {
		t.Errorf("table output differs between fresh machines / GOMAXPROCS 1 vs 8:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if !strings.Contains(first, "CPU Availability Factors") ||
		!strings.Contains(first, "Mean Throughput Measurements") {
		t.Errorf("output missing expected table headers:\n%s", first)
	}
}

func TestCSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size table runs in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-table", "1", "-csv", "-disks", "RAM"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "table,disk,f_cp,f_scp,improvement,pct_improve\n") {
		t.Errorf("missing CSV header:\n%s", got)
	}
	if !strings.Contains(got, "1,RAM,") {
		t.Errorf("missing RAM row:\n%s", got)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"stray"},
		{"-disks", "ZIP100"},
		{"-sweep", "nonesuch"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q): expected error, got nil", args)
		}
	}
}
