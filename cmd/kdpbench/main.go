// Command kdpbench regenerates the paper's evaluation: Table 1 (CPU
// availability factors) and Table 2 (copy throughput) for the RAM, RZ58
// and RZ56 device types, plus the ablation sweeps listed in DESIGN.md.
//
// Usage:
//
//	kdpbench                  # both tables
//	kdpbench -table 1         # CPU availability only
//	kdpbench -table 2         # throughput only
//	kdpbench -sweep quantum   # one of: quantum, watermark, sharing,
//	                          # filesize, socket, rate, layout,
//	                          # server, cache, vm, batch
//	kdpbench -series          # per-window availability timeline
//	kdpbench -disks RAM,RZ58  # restrict device types
//	kdpbench -trace out.json  # also export every machine's event
//	                          # stream as Chrome trace-event JSON
//	kdpbench -validate f.json # schema-check an exported trace and exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kdp/internal/bench"
	"kdp/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "kdpbench:", err)
		os.Exit(2)
	}
}

// run is the testable entry point: it parses args, runs the requested
// benchmarks, and writes results to out.
func run(args []string, out io.Writer) error {
	fl := flag.NewFlagSet("kdpbench", flag.ContinueOnError)
	fl.SetOutput(out)
	table := fl.Int("table", 0, "regenerate only this table (1 or 2; 0 = both)")
	sweep := fl.String("sweep", "", "run an ablation sweep: quantum, watermark, sharing, filesize, socket, rate, layout, server, cache, vm, batch")
	series := fl.Bool("series", false, "print the per-window availability time series instead of tables")
	csvOut := fl.Bool("csv", false, "emit tables as CSV (for plotting)")
	disks := fl.String("disks", "RAM,RZ58,RZ56", "comma-separated device types")
	traceOut := fl.String("trace", "", "export every machine's event stream as Chrome trace-event JSON to this file")
	validate := fl.String("validate", "", "validate a previously exported trace file and exit")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fl.Arg(0))
	}

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := trace.ValidateChrome(f)
		if err != nil {
			return fmt.Errorf("%s: %w", *validate, err)
		}
		fmt.Fprintf(out, "%s: valid Chrome trace, %d events\n", *validate, n)
		return nil
	}

	kinds, err := parseDisks(*disks)
	if err != nil {
		return err
	}

	var traced []tracedRun
	if *traceOut != "" {
		// One collector per machine the experiments build; events fill in
		// as each machine runs, and everything is exported at the end.
		bench.TraceSinkFactory = func(label string) trace.Sink {
			col := &trace.Collector{}
			traced = append(traced, tracedRun{label: label, col: col})
			return col
		}
		defer func() { bench.TraceSinkFactory = nil }()
		defer func() {
			if err := exportTraced(*traceOut, traced); err != nil {
				fmt.Fprintln(os.Stderr, "kdpbench: trace export:", err)
			}
		}()
	}

	if *series {
		for _, kind := range kinds {
			fmt.Fprint(out, bench.RunSeries(kind))
			fmt.Fprintln(out)
		}
		return nil
	}

	if *sweep != "" {
		res, err := bench.RunSweep(*sweep, kinds)
		if err != nil {
			return err
		}
		fmt.Fprint(out, res)
		return nil
	}

	if *table == 0 || *table == 1 {
		rows := bench.Table1(kinds)
		if *csvOut {
			fmt.Fprintln(out, "table,disk,f_cp,f_scp,improvement,pct_improve")
			for _, r := range rows {
				fmt.Fprintf(out, "1,%s,%.4f,%.4f,%.4f,%.1f\n", r.Disk, r.Fcp, r.Fscp, r.Improvement, r.PctImprove)
			}
		} else {
			fmt.Fprint(out, bench.FormatTable1(rows))
			fmt.Fprintln(out)
		}
	}
	if *table == 0 || *table == 2 {
		rows := bench.Table2(kinds)
		if *csvOut {
			fmt.Fprintln(out, "table,disk,scp_kbs,cp_kbs,pct_improve")
			for _, r := range rows {
				fmt.Fprintf(out, "2,%s,%.1f,%.1f,%.1f\n", r.Disk, r.SCPKBs, r.CPKBs, r.PctImprove)
			}
		} else {
			fmt.Fprint(out, bench.FormatTable2(rows))
		}
	}
	return nil
}

// tracedRun pairs one machine's label with its event collector.
type tracedRun struct {
	label string
	col   *trace.Collector
}

// exportTraced writes every traced machine run to path as one Chrome
// trace-event JSON document (one "process" per run).
func exportTraced(path string, traced []tracedRun) error {
	runs := make([]trace.Run, 0, len(traced))
	for _, tr := range traced {
		runs = append(runs, trace.Run{Label: tr.label, Events: tr.col.Events})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.ExportChrome(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseDisks(s string) ([]bench.DiskKind, error) {
	var kinds []bench.DiskKind
	for _, name := range strings.Split(s, ",") {
		switch strings.ToUpper(strings.TrimSpace(name)) {
		case "RAM":
			kinds = append(kinds, bench.RAM)
		case "RZ58":
			kinds = append(kinds, bench.RZ58)
		case "RZ56":
			kinds = append(kinds, bench.RZ56)
		case "":
		default:
			return nil, fmt.Errorf("unknown disk type %q", name)
		}
	}
	if len(kinds) == 0 {
		kinds = bench.AllDisks
	}
	return kinds, nil
}
