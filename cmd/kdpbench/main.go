// Command kdpbench regenerates the paper's evaluation: Table 1 (CPU
// availability factors) and Table 2 (copy throughput) for the RAM, RZ58
// and RZ56 device types, plus the ablation sweeps listed in DESIGN.md.
//
// Usage:
//
//	kdpbench                  # both tables
//	kdpbench -table 1         # CPU availability only
//	kdpbench -table 2         # throughput only
//	kdpbench -sweep quantum   # one of: quantum, watermark, sharing,
//	                          # filesize, socket, rate, layout
//	kdpbench -series          # per-window availability timeline
//	kdpbench -disks RAM,RZ58  # restrict device types
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kdp/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1 or 2; 0 = both)")
	sweep := flag.String("sweep", "", "run an ablation sweep: quantum, watermark, sharing, filesize, socket, rate, layout")
	series := flag.Bool("series", false, "print the per-window availability time series instead of tables")
	csvOut := flag.Bool("csv", false, "emit tables as CSV (for plotting)")
	disks := flag.String("disks", "RAM,RZ58,RZ56", "comma-separated device types")
	flag.Parse()

	kinds, err := parseDisks(*disks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdpbench:", err)
		os.Exit(2)
	}

	if *series {
		for _, kind := range kinds {
			fmt.Print(bench.RunSeries(kind))
			fmt.Println()
		}
		return
	}

	if *sweep != "" {
		out, err := bench.RunSweep(*sweep, kinds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kdpbench:", err)
			os.Exit(2)
		}
		fmt.Print(out)
		return
	}

	if *table == 0 || *table == 1 {
		rows := bench.Table1(kinds)
		if *csvOut {
			fmt.Println("table,disk,f_cp,f_scp,improvement,pct_improve")
			for _, r := range rows {
				fmt.Printf("1,%s,%.4f,%.4f,%.4f,%.1f\n", r.Disk, r.Fcp, r.Fscp, r.Improvement, r.PctImprove)
			}
		} else {
			fmt.Print(bench.FormatTable1(rows))
			fmt.Println()
		}
	}
	if *table == 0 || *table == 2 {
		rows := bench.Table2(kinds)
		if *csvOut {
			fmt.Println("table,disk,scp_kbs,cp_kbs,pct_improve")
			for _, r := range rows {
				fmt.Printf("2,%s,%.1f,%.1f,%.1f\n", r.Disk, r.SCPKBs, r.CPKBs, r.PctImprove)
			}
		} else {
			fmt.Print(bench.FormatTable2(rows))
		}
	}
}

func parseDisks(s string) ([]bench.DiskKind, error) {
	var kinds []bench.DiskKind
	for _, name := range strings.Split(s, ",") {
		switch strings.ToUpper(strings.TrimSpace(name)) {
		case "RAM":
			kinds = append(kinds, bench.RAM)
		case "RZ58":
			kinds = append(kinds, bench.RZ58)
		case "RZ56":
			kinds = append(kinds, bench.RZ56)
		case "":
		default:
			return nil, fmt.Errorf("unknown disk type %q", name)
		}
	}
	if len(kinds) == 0 {
		kinds = bench.AllDisks
	}
	return kinds, nil
}
