# Development targets. `make ci` is the full gate run before merging.

GO ?= go

.PHONY: all build test vet fmt race check bench tables trace-ci server-ci crash-ci fault-ci vm-ci batch-ci cover linkcheck ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting gate: gofmt must have nothing to rewrite.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bounded randomized simulation checking (see README "Testing &
# verification"); CHECK_SEEDS can be raised for a deeper sweep.
CHECK_SEEDS ?= 25
check:
	$(GO) run ./cmd/kdpcheck -seeds $(CHECK_SEEDS)

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/

tables:
	$(GO) run ./cmd/kdpbench

# Trace gate: run one kdpbench table with structured tracing exported,
# validate the JSON against the exporter's schema, and require the
# event stream to be byte-identical across two runs (the second under
# GOMAXPROCS=1) — the determinism contract from docs/TRACING.md.
TRACE_DIR := $(or $(TMPDIR),/tmp)
trace-ci:
	$(GO) run ./cmd/kdpbench -table 2 -disks RAM -trace $(TRACE_DIR)/kdp-trace-a.json > /dev/null
	GOMAXPROCS=1 $(GO) run ./cmd/kdpbench -table 2 -disks RAM -trace $(TRACE_DIR)/kdp-trace-b.json > /dev/null
	$(GO) run ./cmd/kdpbench -validate $(TRACE_DIR)/kdp-trace-a.json
	cmp $(TRACE_DIR)/kdp-trace-a.json $(TRACE_DIR)/kdp-trace-b.json

# Crash gate: a bounded crash sweep (power cut at a seed-derived op
# boundary, repairing fsck, remount, durability oracle for every
# pre-crash fsync'd file), run twice — the second under GOMAXPROCS=1 —
# with per-seed digests compared byte-for-byte.
CRASH_SEEDS ?= 100
crash-ci:
	$(GO) run ./cmd/kdpcheck -crash -seeds $(CRASH_SEEDS) > $(TRACE_DIR)/kdp-crash-a.txt
	GOMAXPROCS=1 $(GO) run ./cmd/kdpcheck -crash -seeds $(CRASH_SEEDS) > $(TRACE_DIR)/kdp-crash-b.txt
	cmp $(TRACE_DIR)/kdp-crash-a.txt $(TRACE_DIR)/kdp-crash-b.txt

# Fault gate: a bounded fault-plan sweep (per seed: fault-free census
# of every eligible fault site, then one armed re-run per sampled
# (site, k) with replay verification), run twice — the second under
# GOMAXPROCS=1 — with per-seed folded digests compared byte-for-byte.
# The sweep fails if any armed run trips an invariant, leaks, diverges
# on replay, or arms a fault that never fires. See docs/FAULTS.md.
FAULT_SEEDS ?= 8
FAULT_OPS ?= 40
fault-ci:
	$(GO) run ./cmd/kdpcheck -faults -seeds $(FAULT_SEEDS) -ops $(FAULT_OPS) > $(TRACE_DIR)/kdp-fault-a.txt
	GOMAXPROCS=1 $(GO) run ./cmd/kdpcheck -faults -seeds $(FAULT_SEEDS) -ops $(FAULT_OPS) > $(TRACE_DIR)/kdp-fault-b.txt
	cmp $(TRACE_DIR)/kdp-fault-a.txt $(TRACE_DIR)/kdp-fault-b.txt

# Coverage gate: the packages at the core of the poll/event-loop and
# cache/disk work must keep a statement-coverage floor. awk parses
# `go test -cover`'s "coverage: NN.N% of statements" line per package.
COVER_FLOOR ?= 75.0
COVER_PKGS := ./internal/kernel/ ./internal/stream/ ./internal/server/ \
	./internal/buf/ ./internal/disk/ ./internal/fs/ ./internal/vm/
cover:
	$(GO) test -cover $(COVER_PKGS) | awk -v floor=$(COVER_FLOOR) '\
		{ print } \
		/coverage:/ { \
			for (i = 1; i <= NF; i++) if ($$i == "coverage:") { pct = $$(i+1); sub(/%/, "", pct); \
				if (pct + 0 < floor) { printf "FAIL: %s coverage %s%% below floor %s%%\n", $$2, pct, floor; bad = 1 } } \
		} \
		END { exit bad }'

# Docs gate: every relative link in the repo's markdown must resolve
# to a real file (anchors and external URLs are not checked).
linkcheck:
	$(GO) run ./tools/mdlinkcheck .

# Server gate: regenerate the server-scalability sweep twice (second
# run under GOMAXPROCS=1) and require byte-identical tables — the
# stream transport and server engine must be deterministic end to end.
server-ci:
	$(GO) run ./cmd/kdpbench -sweep server > $(TRACE_DIR)/kdp-server-a.txt
	GOMAXPROCS=1 $(GO) run ./cmd/kdpbench -sweep server > $(TRACE_DIR)/kdp-server-b.txt
	cmp $(TRACE_DIR)/kdp-server-a.txt $(TRACE_DIR)/kdp-server-b.txt

# VM gate: regenerate the mmap-vs-read-vs-splice ablation twice (second
# run under GOMAXPROCS=1) and require byte-identical tables — demand
# paging, COW, and the clock pageout must be deterministic end to end.
vm-ci:
	$(GO) run ./cmd/kdpbench -sweep vm > $(TRACE_DIR)/kdp-vm-a.txt
	GOMAXPROCS=1 $(GO) run ./cmd/kdpbench -sweep vm > $(TRACE_DIR)/kdp-vm-b.txt
	cmp $(TRACE_DIR)/kdp-vm-a.txt $(TRACE_DIR)/kdp-vm-b.txt

# Batch gate: regenerate the syscall-aggregation ablation twice (second
# run under GOMAXPROCS=1) and require byte-identical tables — the
# vectored and batched crossings must be deterministic end to end, and
# every mode must move identical bytes.
batch-ci:
	$(GO) run ./cmd/kdpbench -sweep batch > $(TRACE_DIR)/kdp-batch-a.txt
	GOMAXPROCS=1 $(GO) run ./cmd/kdpbench -sweep batch > $(TRACE_DIR)/kdp-batch-b.txt
	cmp $(TRACE_DIR)/kdp-batch-a.txt $(TRACE_DIR)/kdp-batch-b.txt

ci: fmt vet build race check cover linkcheck crash-ci fault-ci trace-ci server-ci vm-ci batch-ci
