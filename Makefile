# Development targets. `make ci` is the full gate run before merging.

GO ?= go

.PHONY: all build test vet race check bench tables ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bounded randomized simulation checking (see README "Testing &
# verification"); CHECK_SEEDS can be raised for a deeper sweep.
CHECK_SEEDS ?= 25
check:
	$(GO) run ./cmd/kdpcheck -seeds $(CHECK_SEEDS)

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/

tables:
	$(GO) run ./cmd/kdpbench

ci: vet build race check
