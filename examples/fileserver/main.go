// Fileserver demonstrates the use case that eventually made this
// paper's idea universal (sendfile/splice in every modern kernel): a
// server shipping files to network clients.
//
// Three clients each request a file over UDP; the server answers by
// splicing the file straight to the client's socket — or, in -mode
// user, by the classic read/write loop. Both serve identical bytes;
// the difference is where the server's CPU time goes.
//
// Run with: go run ./examples/fileserver [-mode splice|user|both]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"kdp"
)

const (
	fileBytes  = 256 << 10
	numClients = 3
	serverPort = 80
)

func main() {
	mode := flag.String("mode", "both", "serving mode: splice, user or both")
	flag.Parse()
	switch *mode {
	case "splice", "user":
		serve(*mode)
	case "both":
		serve("splice")
		serve("user")
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func serve(mode string) {
	m := kdp.New(kdp.Config{
		Disks: []kdp.DiskSpec{{Mount: "/srv", Kind: kdp.DiskRZ58, MB: 16}},
	})
	net := m.AddNet(kdp.NetEthernet10)

	reqSock, _ := net.NewSocket(serverPort)
	// One reply socket per client (the server "connects back").
	replySocks := make([]int, numClients)
	clientPorts := make([]int, numClients)
	for i := 0; i < numClients; i++ {
		clientPorts[i] = 1000 + i
		replySocks[i] = 2000 + i
	}

	var serverCPU kdp.Duration
	served := 0

	// The server: parse tiny requests, answer with file contents.
	srv := m.Spawn("server", func(p *kdp.Proc) {
		// Publish the files.
		for i := 0; i < numClients; i++ {
			makeFile(p, fmt.Sprintf("/srv/file%d", i), fileBytes)
		}
		if err := m.ColdCaches(p); err != nil {
			log.Fatal(err)
		}
		reqFD := p.InstallFile(reqSock, kdp.ORdOnly)
		outs := make([]int, numClients)
		for i := 0; i < numClients; i++ {
			s, err := net.NewSocket(replySocks[i])
			if err != nil {
				log.Fatal(err)
			}
			s.Connect(clientPorts[i])
			outs[i] = p.InstallFile(s, kdp.OWrOnly)
		}

		buf := make([]byte, 256)
		for served < numClients {
			n, err := p.Read(reqFD, buf)
			if err != nil {
				log.Fatal(err)
			}
			if n == 0 {
				break
			}
			var idx int
			if _, err := fmt.Sscanf(strings.TrimSpace(string(buf[:n])), "GET file%d", &idx); err != nil {
				continue
			}
			src, err := p.Open(fmt.Sprintf("/srv/file%d", idx), kdp.ORdOnly)
			if err != nil {
				log.Fatal(err)
			}
			if mode == "splice" {
				if _, err := kdp.Splice(p, src, outs[idx], kdp.SpliceEOF); err != nil {
					log.Fatal(err)
				}
			} else {
				chunk := make([]byte, kdp.BlockSize)
				for {
					r, err := p.Read(src, chunk)
					if err != nil {
						log.Fatal(err)
					}
					if r == 0 {
						break
					}
					if _, err := p.Write(outs[idx], chunk[:r]); err != nil {
						log.Fatal(err)
					}
				}
			}
			_ = p.Close(src)
			served++
		}
	})

	// The clients: send a request, count reply bytes.
	got := make([]int, numClients)
	for i := 0; i < numClients; i++ {
		i := i
		cs, err := net.NewSocket(clientPorts[i])
		if err != nil {
			log.Fatal(err)
		}
		cs.Connect(serverPort)
		m.Spawn(fmt.Sprintf("client%d", i), func(p *kdp.Proc) {
			fd := p.InstallFile(cs, kdp.ORdWr)
			// Stagger the requests a little.
			p.SleepFor(kdp.Duration(i) * 20 * kdp.Millisecond)
			if _, err := p.Write(fd, []byte(fmt.Sprintf("GET file%d", i))); err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, 16<<10)
			for got[i] < fileBytes {
				n, err := p.Read(fd, buf)
				if err != nil {
					log.Fatal(err)
				}
				if n == 0 {
					break
				}
				got[i] += n
			}
		})
	}

	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	serverCPU = srv.UserTime() + srv.SysTime()
	for i, g := range got {
		if g != fileBytes {
			log.Fatalf("client %d got %d of %d bytes", i, g, fileBytes)
		}
	}
	fmt.Printf("%-6s server: %d files x %dKB served in %v; server process CPU: %v\n",
		mode, numClients, fileBytes>>10, m.Now(), serverCPU)
}

func makeFile(p *kdp.Proc, path string, n int) {
	fd, err := p.Open(path, kdp.OCreat|kdp.OWrOnly)
	if err != nil {
		log.Fatal(err)
	}
	chunk := make([]byte, kdp.BlockSize)
	for off := 0; off < n; off += len(chunk) {
		if _, err := p.Write(fd, chunk); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Close(fd); err != nil {
		log.Fatal(err)
	}
}
