// Streamserver demonstrates the stream transport (a TCP-lite reliable
// protocol layered on the simulated Ethernet) and the concurrent
// file-server engine built on it, contrasting the paper's two serving
// data paths at fan-out:
//
//   - cp: each request is served by read()/write() copy loops — two
//     user-space copies per served byte, burning the server's CPU, and
//   - scp: each request is served by one splice(file, conn) call — the
//     bytes move at interrupt level and the handler process sleeps.
//
// A CPU-bound "test program" runs beside the server in both runs; how
// long it takes to finish is a direct measure of how much CPU the
// serving path left available (§7 of the paper).
//
// Run with: go run ./examples/streamserver
package main

import (
	"fmt"
	"log"

	"kdp"
)

const (
	fileBytes = 128 << 10
	clients   = 4
	reqsEach  = 2
	srvPort   = 80
	testOps   = 100
	testCost  = 10 * kdp.Millisecond
)

// serve runs one machine in the given mode and reports the test
// program's elapsed time plus the server's own counters.
func serve(mode kdp.ServerMode) (elapsed kdp.Duration, served int64) {
	m := kdp.New(kdp.Config{
		Disks: []kdp.DiskSpec{{Mount: "/srv", Kind: kdp.DiskRAM}},
	})
	net := m.AddNet(kdp.NetEthernet10)
	st, err := m.AddStreamTransport(net, srvPort)
	if err != nil {
		log.Fatal(err)
	}
	cts := make([]*kdp.StreamTransport, clients)
	for i := range cts {
		if cts[i], err = m.AddStreamTransport(net, 5001+i); err != nil {
			log.Fatal(err)
		}
	}

	var srv *kdp.Server
	ready := false
	m.Spawn("boot", func(p *kdp.Proc) {
		fd, err := p.Open("/srv/file", kdp.OCreat|kdp.ORdWr)
		if err != nil {
			log.Fatal(err)
		}
		block := make([]byte, kdp.BlockSize)
		for off := 0; off < fileBytes; off += len(block) {
			if _, err := p.Write(fd, block); err != nil {
				log.Fatal(err)
			}
		}
		_ = p.Close(fd)
		srv = m.StartServer(kdp.ServerConfig{
			Name:      "fsrv",
			Transport: st,
			Path:      "/srv/file",
			FileBytes: fileBytes,
			Mode:      mode,
			Conns:     clients,
		})
		ready = true
		m.Kernel().Wakeup(&ready)
	})

	for i := 0; i < clients; i++ {
		i := i
		m.Spawn(fmt.Sprintf("client-%d", i), func(p *kdp.Proc) {
			for !ready {
				_ = p.Sleep(&ready, kdp.PWait)
			}
			fd, _, err := cts[i].Connect(p, srvPort)
			if err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, 8192)
			for r := 0; r < reqsEach; r++ {
				if _, err := p.Write(fd, []byte{1}); err != nil {
					log.Fatal(err)
				}
				for got := 0; got < fileBytes; {
					n, err := p.Read(fd, buf)
					if err != nil || n == 0 {
						log.Fatalf("client %d: short response (%d of %d): %v", i, got, fileBytes, err)
					}
					got += n
				}
			}
			_ = p.Close(fd)
		})
	}

	m.Spawn("test", func(p *kdp.Proc) {
		for !ready {
			_ = p.Sleep(&ready, kdp.PWait)
		}
		t0 := p.Now()
		for i := 0; i < testOps; i++ {
			p.Compute(testCost)
		}
		elapsed = p.Now().Sub(t0)
	})

	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return elapsed, srv.BytesServed()
}

func main() {
	baseline := kdp.Duration(testOps) * testCost
	for _, mode := range []kdp.ServerMode{kdp.ServeCopy, kdp.ServeSplice} {
		elapsed, served := serve(mode)
		avail := 100 * float64(baseline) / float64(elapsed)
		fmt.Printf("%-3s: served %d KB to %d clients; test program %v (%.1f%% CPU available)\n",
			mode, served>>10, clients, elapsed, avail)
	}
	fmt.Printf("(baseline: test program alone takes %v)\n", baseline)
}
