// Cpubound reproduces the paper's CPU-availability experiment (§6.2) in
// miniature, using only the public API: a CPU-bound test program runs
// a fixed set of operations three times — alone (IDLE), against a
// read/write copier (CP), and against a splice copier (SCP) — and the
// slowdown factors show how much CPU each copy path leaves available.
//
// Run with: go run ./examples/cpubound [-disk RAM|RZ58|RZ56]
package main

import (
	"flag"
	"fmt"
	"log"

	"kdp"
)

const (
	fileBytes = 4 << 20
	testOps   = 300
	opCost    = 10 * kdp.Millisecond
)

func main() {
	diskName := flag.String("disk", "RAM", "disk type: RAM, RZ58 or RZ56")
	flag.Parse()
	kind, ok := map[string]kdp.DiskKind{
		"RAM": kdp.DiskRAM, "RZ58": kdp.DiskRZ58, "RZ56": kdp.DiskRZ56,
	}[*diskName]
	if !ok {
		log.Fatalf("unknown disk %q", *diskName)
	}

	idle := measure(kind, "idle")
	cp := measure(kind, "cp")
	scp := measure(kind, "scp")

	fmt.Printf("\nCPU availability on %s (test program: %d ops of %v)\n", *diskName, testOps, opCost)
	fmt.Printf("  IDLE: %v\n", idle)
	fmt.Printf("  CP:   %v  (slowdown %.2f, test program at %3.0f%% of idle speed)\n",
		cp, factor(cp, idle), 100/factor(cp, idle))
	fmt.Printf("  SCP:  %v  (slowdown %.2f, test program at %3.0f%% of idle speed)\n",
		scp, factor(scp, idle), 100/factor(scp, idle))
	fmt.Printf("  splice improvement: %.0f%%\n", (factor(cp, idle)/factor(scp, idle)-1)*100)
}

func factor(a, b kdp.Duration) float64 { return float64(a) / float64(b) }

// measure runs the test program in one environment and returns its
// elapsed virtual time.
func measure(kind kdp.DiskKind, env string) kdp.Duration {
	m := kdp.New(kdp.Config{
		Disks: []kdp.DiskSpec{
			{Mount: "/src", Kind: kind, MB: 16},
			{Mount: "/dst", Kind: kind, MB: 16},
		},
	})
	stop := false
	ready := env == "idle"
	var elapsed kdp.Duration

	if env != "idle" {
		m.Spawn("copier", func(p *kdp.Proc) {
			makeFile(p, "/src/big", fileBytes)
			ready = true
			m.Kernel().Wakeup(&ready)
			for !stop {
				if err := m.ColdCaches(p); err != nil {
					log.Fatal(err)
				}
				if stop {
					break
				}
				if env == "scp" {
					src, _ := p.Open("/src/big", kdp.ORdOnly)
					dst, _ := p.Open("/dst/copy", kdp.OCreat|kdp.OWrOnly|kdp.OTrunc)
					if _, err := kdp.Splice(p, src, dst, kdp.SpliceEOF); err != nil {
						log.Fatal(err)
					}
					_ = p.Close(src)
					_ = p.Close(dst)
				} else {
					src, _ := p.Open("/src/big", kdp.ORdOnly)
					dst, _ := p.Open("/dst/copy", kdp.OCreat|kdp.OWrOnly|kdp.OTrunc)
					buf := make([]byte, kdp.BlockSize)
					for {
						n, err := p.Read(src, buf)
						if err != nil {
							log.Fatal(err)
						}
						if n == 0 {
							break
						}
						p.Compute(25 * kdp.Microsecond) // cp's loop overhead
						if _, err := p.Write(dst, buf[:n]); err != nil {
							log.Fatal(err)
						}
					}
					if err := p.Fsync(dst); err != nil {
						log.Fatal(err)
					}
					_ = p.Close(src)
					_ = p.Close(dst)
				}
				if err := p.Unlink("/dst/copy"); err != nil {
					log.Fatal(err)
				}
			}
		})
	}

	m.Spawn("test", func(p *kdp.Proc) {
		for !ready {
			_ = p.Sleep(&ready, kdp.PWait)
		}
		t0 := p.Now()
		for i := 0; i < testOps; i++ {
			p.Compute(opCost)
		}
		elapsed = p.Now().Sub(t0)
		stop = true
	})

	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s environment: test program finished in %v\n", env, elapsed)
	return elapsed
}

func makeFile(p *kdp.Proc, path string, n int) {
	fd, err := p.Open(path, kdp.OCreat|kdp.OWrOnly)
	if err != nil {
		log.Fatal(err)
	}
	chunk := make([]byte, kdp.BlockSize)
	for off := 0; off < n; off += len(chunk) {
		if _, err := p.Write(fd, chunk); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Close(fd); err != nil {
		log.Fatal(err)
	}
}
