// Movieplayer reproduces the paper's §4 example application: playing
// back a digitized movie from files.
//
//   - The audio track is spliced to the audio DAC in one asynchronous
//     call (FASYNC + SPLICE_EOF): the DAC's own playback rate paces the
//     transfer and the process is free the whole time.
//   - The video track is delivered one frame per interval-timer tick by
//     synchronous splices whose size parameter is a single frame —
//     "the calling process retains control of the transfer rate by
//     making splice requests at appropriate intervals".
//
// Run with: go run ./examples/movieplayer
package main

import (
	"fmt"
	"log"

	"kdp"
)

const (
	audioRate  = 64 * 1024            // 64KB/s of audio
	frameBytes = 24 * 1024            // one (compressed) video frame
	frameTime  = 33 * kdp.Millisecond // ~30 fps
	movieSecs  = 3
)

func main() {
	m := kdp.New(kdp.Config{
		Disks: []kdp.DiskSpec{{Mount: "/disk", Kind: kdp.DiskRZ58, MB: 32}},
	})
	speaker := m.AddDAC(kdp.DACConfig{
		Path: "/dev/speaker", Rate: audioRate, BufBytes: 128 << 10,
	})
	videoDAC := m.AddDAC(kdp.DACConfig{
		// "a video device capable of displaying frames at a maximum
		// rate faster than the recording rate of the source file"
		Path: "/dev/video_dac", Rate: 16e6, BufBytes: 512 << 10,
	})

	audioBytes := int64(movieSecs * audioRate)
	videoFrames := movieSecs * 30

	m.Spawn("player", func(p *kdp.Proc) {
		// Produce the movie files.
		mustMakeFile(p, "/disk/movie.audio", audioBytes)
		mustMakeFile(p, "/disk/movie.video", int64(videoFrames)*frameBytes)
		if err := m.ColdCaches(p); err != nil {
			log.Fatal(err)
		}

		audiofile, _ := p.Open("/disk/movie.audio", kdp.ORdOnly)
		videofile, _ := p.Open("/disk/movie.video", kdp.ORdOnly)
		audioDev, _ := p.Open("/dev/speaker", kdp.OWrOnly)
		videoDev, _ := p.Open("/dev/video_dac", kdp.OWrOnly)

		// fcntl(audiofile, F_SETFL, FASYNC): async operation.
		if _, err := p.Fcntl(audiofile, kdp.FSetFL, kdp.FAsync); err != nil {
			log.Fatal(err)
		}
		audioDone := false
		p.SetSignalHandler(kdp.SIGIO, func(*kdp.Proc, kdp.Signal) { audioDone = true })

		start := p.Now()

		// Copy the audio information; return immediately.
		if _, err := kdp.Splice(p, audiofile, audioDev, kdp.SpliceEOF); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%v] audio splice started asynchronously\n", p.Now().Sub(start))

		// Loop, delivering one frame every timer interval. A SIGALRM
		// that lands mid-splice interrupts it with a partial count
		// (EINTR); the descriptor offset has advanced, so the loop
		// simply continues with the rest of the frame.
		p.SetSignalHandler(kdp.SIGALRM, func(*kdp.Proc, kdp.Signal) {})
		p.SetITimer(frameTime, frameTime)
		videoBytes := int64(videoFrames) * frameBytes
		var delivered int64
		for delivered < videoBytes {
			rval, err := kdp.Splice(p, videofile, videoDev, frameBytes)
			if err != nil && err != kdp.ErrIntr {
				log.Fatal(err)
			}
			if rval > 0 {
				delivered += rval
			}
			if err == kdp.ErrIntr {
				continue // the timer already went off during the splice
			}
			if rval == 0 {
				break
			}
			p.Pause() // wait for the timer to go off (it reloads automatically)
		}
		p.SetITimer(0, 0)
		fmt.Printf("[%v] video done: %d bytes (%d frames) delivered\n",
			p.Now().Sub(start), delivered, delivered/frameBytes)

		// Wait for the audio splice to signal completion.
		for !audioDone {
			p.Pause()
		}
		fmt.Printf("[%v] audio splice completed (SIGIO)\n", p.Now().Sub(start))
	})

	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audio played: %d bytes at the DAC's %d B/s pace\n", speaker.Played(), audioRate)
	fmt.Printf("video played: %d bytes (%d frames), %d underruns\n",
		videoDAC.Played(), videoDAC.Played()/frameBytes, videoDAC.Underruns())
	fmt.Printf("total virtual time: %v\n", m.Now())
}

func mustMakeFile(p *kdp.Proc, path string, n int64) {
	fd, err := p.Open(path, kdp.OCreat|kdp.OWrOnly)
	if err != nil {
		log.Fatal(err)
	}
	chunk := make([]byte, kdp.BlockSize)
	for off := int64(0); off < n; off += int64(len(chunk)) {
		w := chunk
		if rem := n - off; rem < int64(len(chunk)) {
			w = chunk[:rem]
		}
		if _, err := p.Write(fd, w); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Close(fd); err != nil {
		log.Fatal(err)
	}
}
