// Netrelay demonstrates the paper's network splice pathways (§5.1):
//
//  1. a file is streamed onto a UDP socket with one splice,
//  2. a relay process splices its inbound socket to its outbound
//     socket — datagrams transit the machine without the relay process
//     ever running in user mode, and
//  3. a framebuffer is spliced to a socket, sending captured frames.
//
// Run with: go run ./examples/netrelay
package main

import (
	"fmt"
	"log"

	"kdp"
)

func main() {
	m := kdp.New(kdp.Config{
		Disks: []kdp.DiskSpec{{Mount: "/disk", Kind: kdp.DiskRAM}},
	})
	net := m.AddNet(kdp.NetEthernet10)
	fb := m.AddFramebuffer(kdp.FramebufferConfig{
		Path: "/dev/fb0", FrameBytes: 8192, FPS: 25, Frames: 25,
	})

	// Socket topology: sender(1) → relay in(2) / out(3) → receiver(4),
	// and framebuffer streamer out(5) → viewer(6).
	sender, _ := net.NewSocket(1)
	relayIn, _ := net.NewSocket(2)
	relayOut, _ := net.NewSocket(3)
	receiver, _ := net.NewSocket(4)
	fbOut, _ := net.NewSocket(5)
	viewer, _ := net.NewSocket(6)
	sender.Connect(2)
	relayOut.Connect(4)
	fbOut.Connect(6)

	const fileBytes = 512 << 10

	// The receiver counts what survives the two splices.
	var gotBytes int64
	m.Spawn("receiver", func(p *kdp.Proc) {
		fd := p.InstallFile(receiver, kdp.ORdOnly)
		buf := make([]byte, 16<<10)
		for gotBytes < fileBytes {
			n, err := p.Read(fd, buf)
			if err != nil {
				log.Fatal(err)
			}
			if n == 0 {
				break
			}
			gotBytes += int64(n)
		}
		fmt.Printf("receiver: %d bytes arrived through the spliced relay\n", gotBytes)
	})

	// The relay: one splice call, then the kernel does the rest.
	m.Spawn("relay", func(p *kdp.Proc) {
		in := p.InstallFile(relayIn, kdp.ORdOnly)
		out := p.InstallFile(relayOut, kdp.OWrOnly)
		t0 := p.Now()
		n, err := kdp.Splice(p, in, out, fileBytes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("relay: spliced %d bytes in %v with %d syscalls of work\n",
			n, p.Now().Sub(t0), p.Syscalls())
	})

	// The sender: file → socket, also a single splice.
	m.Spawn("sender", func(p *kdp.Proc) {
		fd, err := p.Open("/disk/payload", kdp.OCreat|kdp.OWrOnly)
		if err != nil {
			log.Fatal(err)
		}
		chunk := make([]byte, kdp.BlockSize)
		for off := 0; off < fileBytes; off += len(chunk) {
			if _, err := p.Write(fd, chunk); err != nil {
				log.Fatal(err)
			}
		}
		_ = p.Close(fd)

		src, _ := p.Open("/disk/payload", kdp.ORdOnly)
		out := p.InstallFile(sender, kdp.OWrOnly)
		n, err := kdp.Splice(p, src, out, kdp.SpliceEOF)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sender: streamed %d file bytes onto the wire\n", n)
	})

	// Framebuffer → socket: captured frames go straight to the viewer.
	var frames int
	m.Spawn("viewer", func(p *kdp.Proc) {
		fd := p.InstallFile(viewer, kdp.ORdOnly)
		buf := make([]byte, 8192)
		for {
			n, err := p.Read(fd, buf)
			if err != nil {
				log.Fatal(err)
			}
			if n == 0 {
				break
			}
			frames++
		}
	})
	m.Spawn("fbstream", func(p *kdp.Proc) {
		fbFD, err := p.Open("/dev/fb0", kdp.ORdOnly)
		if err != nil {
			log.Fatal(err)
		}
		out := p.InstallFile(fbOut, kdp.OWrOnly)
		n, err := kdp.Splice(p, fbFD, out, kdp.SpliceEOF)
		if err != nil {
			log.Fatal(err)
		}
		_ = p.Close(out) // EOF marker lets the viewer exit
		fmt.Printf("fbstream: %d framebuffer bytes spliced to the socket\n", n)
	})

	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	sent, delivered, dropped := net.Stats()
	fmt.Printf("viewer: %d frames displayed (%d captured, %d dropped at the device)\n",
		frames, fb.CapturedFrames(), fb.Dropped())
	fmt.Printf("network: %d packets sent, %d delivered, %d dropped; %v virtual time\n",
		sent, delivered, dropped, m.Now())
}
