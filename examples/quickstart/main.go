// Quickstart: boot a simulated two-disk workstation, create a file,
// copy it with a single splice() call, and verify the bytes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"kdp"
)

func main() {
	m := kdp.New(kdp.Config{
		Disks: []kdp.DiskSpec{
			{Mount: "/d0", Kind: kdp.DiskRZ58},
			{Mount: "/d1", Kind: kdp.DiskRZ58},
		},
	})

	const size = 2 << 20 // 2MB
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i * 31)
	}

	m.Spawn("quickstart", func(p *kdp.Proc) {
		// Create the source file through the ordinary write path.
		fd, err := p.Open("/d0/data", kdp.OCreat|kdp.OWrOnly)
		if err != nil {
			log.Fatal(err)
		}
		for off := 0; off < size; off += kdp.BlockSize {
			if _, err := p.Write(fd, want[off:off+kdp.BlockSize]); err != nil {
				log.Fatal(err)
			}
		}
		if err := p.Close(fd); err != nil {
			log.Fatal(err)
		}

		// Cold caches, as a fair copy benchmark requires.
		if err := m.ColdCaches(p); err != nil {
			log.Fatal(err)
		}

		// The in-kernel copy: one system call, no user buffer.
		src, _ := p.Open("/d0/data", kdp.ORdOnly)
		dst, _ := p.Open("/d1/copy", kdp.OCreat|kdp.OWrOnly)
		t0 := p.Now()
		n, h, err := kdp.SpliceWithOptions(p, src, dst, kdp.SpliceEOF, kdp.SpliceOptions{})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := p.Now().Sub(t0)
		st := h.Stats()
		fmt.Printf("spliced %d bytes in %v (%.0f KB/s virtual)\n",
			n, elapsed, float64(n)/1024/elapsed.Seconds())
		fmt.Printf("reads=%d writes=%d shared-buffers=%d copies=%d callout-dispatches=%d\n",
			st.ReadsIssued, st.WritesIssued, st.Shared, st.Copied, st.Callouts)
		_ = p.Close(src)
		_ = p.Close(dst)

		// Verify through the read path.
		got := make([]byte, size)
		vfd, _ := p.Open("/d1/copy", kdp.ORdOnly)
		for off := 0; off < size; {
			r, err := p.Read(vfd, got[off:])
			if err != nil {
				log.Fatal(err)
			}
			if r == 0 {
				break
			}
			off += r
		}
		if bytes.Equal(got, want) {
			fmt.Println("verification: copy is byte-identical to the source")
		} else {
			log.Fatal("verification failed: data mismatch")
		}
	})

	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine ran %v of virtual time\n", m.Now())
}
