package socket

import (
	"bytes"
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
)

func newK() *kernel.Kernel {
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 600 * sim.Second
	return kernel.New(cfg)
}

func TestDatagramRoundTrip(t *testing.T) {
	k := newK()
	n := NewNet(k, Loopback())
	a, err := n.NewSocket(1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.NewSocket(2000)
	if err != nil {
		t.Fatal(err)
	}
	a.Connect(2000)
	msg := []byte("hello datagram world")
	var got []byte
	k.Spawn("recv", func(p *kernel.Proc) {
		fd := p.InstallFile(b, kernel.ORdWr)
		buf := make([]byte, 100)
		rn, err := p.Read(fd, buf)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		got = append([]byte(nil), buf[:rn]...)
	})
	k.Spawn("send", func(p *kernel.Proc) {
		fd := p.InstallFile(a, kernel.ORdWr)
		if _, err := p.Write(fd, msg); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestDatagramBoundariesPreserved(t *testing.T) {
	k := newK()
	n := NewNet(k, Loopback())
	a, _ := n.NewSocket(1)
	b, _ := n.NewSocket(2)
	a.Connect(2)
	var sizes []int
	k.Spawn("recv", func(p *kernel.Proc) {
		fd := p.InstallFile(b, kernel.ORdOnly)
		buf := make([]byte, 4096)
		for i := 0; i < 3; i++ {
			rn, err := p.Read(fd, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			sizes = append(sizes, rn)
		}
	})
	k.Spawn("send", func(p *kernel.Proc) {
		fd := p.InstallFile(a, kernel.OWrOnly)
		for _, sz := range []int{100, 900, 33} {
			if _, err := p.Write(fd, make([]byte, sz)); err != nil {
				t.Errorf("write %d: %v", sz, err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 100 || sizes[1] != 900 || sizes[2] != 33 {
		t.Fatalf("datagram sizes %v, want [100 900 33]", sizes)
	}
}

func TestCloseDeliversEOF(t *testing.T) {
	k := newK()
	n := NewNet(k, Loopback())
	a, _ := n.NewSocket(1)
	b, _ := n.NewSocket(2)
	a.Connect(2)
	sawEOF := false
	k.Spawn("recv", func(p *kernel.Proc) {
		fd := p.InstallFile(b, kernel.ORdOnly)
		buf := make([]byte, 64)
		for {
			rn, err := p.Read(fd, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if rn == 0 {
				sawEOF = true
				return
			}
		}
	})
	k.Spawn("send", func(p *kernel.Proc) {
		fd := p.InstallFile(a, kernel.OWrOnly)
		_, _ = p.Write(fd, []byte("bye"))
		_ = p.Close(fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawEOF {
		t.Fatal("receiver never saw EOF after peer close")
	}
}

func TestLinkSerializationPacesTransfers(t *testing.T) {
	// 10 x 8KB over a 1.25MB/s Ethernet needs >= 64ms of serialization.
	k := newK()
	n := NewNet(k, Ethernet10())
	a, _ := n.NewSocket(1)
	b, _ := n.NewSocket(2)
	a.Connect(2)
	var elapsed sim.Duration
	k.Spawn("recv", func(p *kernel.Proc) {
		fd := p.InstallFile(b, kernel.ORdOnly)
		buf := make([]byte, 8192)
		for i := 0; i < 10; i++ {
			if _, err := p.Read(fd, buf); err != nil {
				t.Errorf("read: %v", err)
			}
		}
	})
	k.Spawn("send", func(p *kernel.Proc) {
		fd := p.InstallFile(a, kernel.OWrOnly)
		t0 := p.Now()
		for i := 0; i < 10; i++ {
			if _, err := p.Write(fd, make([]byte, 8192)); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		elapsed = p.Now().Sub(t0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 60*sim.Millisecond {
		t.Fatalf("10x8KB sent in %v; link not serializing", elapsed)
	}
}

func TestReceiveBufferOverflowDrops(t *testing.T) {
	k := newK()
	p := Loopback()
	p.RcvBufBytes = 4096
	n := NewNet(k, p)
	a, _ := n.NewSocket(1)
	if _, err := n.NewSocket(2); err != nil {
		t.Fatal(err)
	}
	a.Connect(2)
	k.Spawn("send", func(pr *kernel.Proc) {
		fd := pr.InstallFile(a, kernel.OWrOnly)
		for i := 0; i < 10; i++ { // 10KB into a 4KB rcv buffer, no reader
			_, _ = pr.Write(fd, make([]byte, 1024))
		}
		pr.SleepFor(100 * sim.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	_, _, dropped := n.Stats()
	if dropped == 0 {
		t.Fatal("no drops despite overflowing receive buffer")
	}
}

func TestDuplicatePortRejected(t *testing.T) {
	k := newK()
	n := NewNet(k, Loopback())
	if _, err := n.NewSocket(7); err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewSocket(7); err != kernel.ErrExist {
		t.Fatalf("duplicate bind: %v, want ErrExist", err)
	}
}

func TestWriteWithoutPeerRejected(t *testing.T) {
	k := newK()
	n := NewNet(k, Loopback())
	a, _ := n.NewSocket(9)
	k.Spawn("w", func(p *kernel.Proc) {
		fd := p.InstallFile(a, kernel.OWrOnly)
		if _, err := p.Write(fd, []byte("x")); err != kernel.ErrInval {
			t.Errorf("unconnected write: %v, want ErrInval", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceSourceDeliversOnArrival(t *testing.T) {
	k := newK()
	n := NewNet(k, Loopback())
	a, _ := n.NewSocket(1)
	b, _ := n.NewSocket(2)
	a.Connect(2)
	var deliveredAt sim.Time
	var deliveredLen int
	// Arm the splice-source read before any data exists.
	b.SpliceRead(8192, func(data []byte, eof bool, err error) {
		deliveredAt = k.Now()
		deliveredLen = len(data)
	})
	k.Spawn("send", func(p *kernel.Proc) {
		p.SleepFor(30 * sim.Millisecond)
		fd := p.InstallFile(a, kernel.OWrOnly)
		_, _ = p.Write(fd, make([]byte, 500))
		p.SleepFor(30 * sim.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveredLen != 500 {
		t.Fatalf("delivered %d bytes", deliveredLen)
	}
	if deliveredAt < sim.Time(30*sim.Millisecond) {
		t.Fatalf("delivered before send at %v", deliveredAt)
	}
}

func TestSpliceSinkCompletionAfterSerialization(t *testing.T) {
	k := newK()
	n := NewNet(k, Ethernet10())
	a, _ := n.NewSocket(1)
	if _, err := n.NewSocket(2); err != nil {
		t.Fatal(err)
	}
	a.Connect(2)
	var doneAt sim.Time
	k.Spawn("idle", func(p *kernel.Proc) { p.SleepFor(sim.Second) })
	k.Engine().Schedule(0, "kick", func() {
		a.SpliceWrite(make([]byte, 12500), func(err error) {
			if err != nil {
				t.Errorf("sink: %v", err)
			}
			doneAt = k.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 12500 bytes at 1.25MB/s = 10ms of serialization.
	if doneAt < sim.Time(9*sim.Millisecond) {
		t.Fatalf("sink completion at %v, want >= ~10ms", doneAt)
	}
}
