// Package socket provides datagram (UDP-style) sockets over a simulated
// shared link, supporting the paper's socket-to-socket splices for the
// UDP transport protocol (§5.1).
//
// Sockets implement kernel.FileOps (read/write move whole datagrams,
// charging user copies at the syscall layer) and the splice Source and
// Sink interfaces structurally: a splice sink transmits each chunk as a
// datagram; a splice source delivers received datagrams as they arrive,
// entirely at interrupt level.
package socket

import (
	"fmt"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/trace"
)

// NetParams describes the simulated link all sockets of one Net share.
type NetParams struct {
	// Name identifies the net in fault-site IDs ("net.<name>.drop" and
	// friends); machines with several nets give each a distinct name.
	// Empty defaults to "net".
	Name string
	// Bandwidth is the serialization rate in bytes per second (a
	// 10Mb/s Ethernet moves ~1.25MB/s).
	Bandwidth float64
	// Latency is the propagation delay from transmit-complete to
	// receive interrupt.
	Latency sim.Duration
	// PerPacketCost is the protocol-processing CPU charge per packet
	// on each side (UDP/IP input and output processing).
	PerPacketCost sim.Duration
	// RcvBufBytes bounds each socket's receive queue; datagrams
	// arriving beyond it are dropped, as UDP does.
	RcvBufBytes int
	// DropEvery, when positive, drops every DropEvery-th data packet in
	// flight — deterministic loss for testing relays under lossy UDP.
	// EOF markers are never dropped, so spliced relays still terminate.
	DropEvery int
}

// Ethernet10 returns parameters for the era's 10Mb/s shared Ethernet.
func Ethernet10() NetParams {
	return NetParams{
		Bandwidth:     1.25e6,
		Latency:       600 * sim.Microsecond,
		PerPacketCost: 120 * sim.Microsecond,
		RcvBufBytes:   64 << 10,
	}
}

// Loopback returns parameters for fast in-machine delivery.
func Loopback() NetParams {
	return NetParams{
		Bandwidth:     16e6,
		Latency:       50 * sim.Microsecond,
		PerPacketCost: 60 * sim.Microsecond,
		RcvBufBytes:   64 << 10,
	}
}

type packet struct {
	data []byte
	from int
	eof  bool
}

type txRequest struct {
	pkt    packet
	dst    int
	onSent func()
}

// Net is a simulated network: a shared medium connecting every socket
// created on it. Transmissions serialize on the link FIFO.
type Net struct {
	k     *kernel.Kernel
	p     NetParams
	socks map[int]*Socket

	txq    []txRequest
	txBusy bool

	rxCount                  int64
	sent, delivered, dropped int64

	siteDrop, siteDup, siteReorder kernel.FaultSite
}

// NewNet creates a network on machine k.
func NewNet(k *kernel.Kernel, p NetParams) *Net {
	if p.Bandwidth <= 0 {
		panic("socket: bandwidth must be positive")
	}
	if p.RcvBufBytes <= 0 {
		p.RcvBufBytes = 64 << 10
	}
	name := p.Name
	if name == "" {
		name = "net"
	}
	n := &Net{k: k, p: p, socks: make(map[int]*Socket),
		siteDrop:    "net." + name + ".drop",
		siteDup:     "net." + name + ".dup",
		siteReorder: "net." + name + ".reorder",
	}
	if p.DropEvery > 0 {
		// Compatibility adapter: the DropEvery knob is a quiet
		// every-Nth arm on the drop site, counting exactly the packets
		// the old per-net counter did.
		k.Faults().Arm(kernel.FaultArm{
			Site: n.siteDrop, Every: int64(p.DropEvery),
			Match: kernel.MatchAny, Count: -1, Quiet: true,
		})
	}
	return n
}

// DropSite returns the net's datagram-loss fault site ID.
func (n *Net) DropSite() kernel.FaultSite { return n.siteDrop }

// DupSite returns the net's datagram-duplication fault site ID.
func (n *Net) DupSite() kernel.FaultSite { return n.siteDup }

// ReorderSite returns the net's datagram-reorder fault site ID.
func (n *Net) ReorderSite() kernel.FaultSite { return n.siteReorder }

// Stats reports network counters: packets sent, delivered, dropped.
func (n *Net) Stats() (sent, delivered, dropped int64) {
	return n.sent, n.delivered, n.dropped
}

// transmit queues a packet for the shared link.
func (n *Net) transmit(req txRequest) {
	n.txq = append(n.txq, req)
	if !n.txBusy {
		n.txBusy = true
		n.k.Hold()
		n.txNext()
	}
}

func (n *Net) txNext() {
	if len(n.txq) == 0 {
		n.txBusy = false
		n.k.Release()
		return
	}
	req := n.txq[0]
	n.txq = n.txq[1:]
	ser := sim.BytesAt(int64(len(req.pkt.data)), n.p.Bandwidth)
	n.k.Engine().Schedule(ser, "net:tx", func() {
		n.sent++
		n.k.TraceEmit(trace.KindNetTx, 0, int64(len(req.pkt.data)), int64(req.dst), "")
		// Sender-side completion: the datagram is on the wire.
		n.k.Interrupt(func() {
			n.k.StealCPU(n.p.PerPacketCost)
			if req.onSent != nil {
				req.onSent()
			}
		})
		// Propagation, then receive interrupt at the destination.
		pkt := req.pkt
		dst := req.dst
		n.k.Engine().Schedule(n.p.Latency, "net:rx", func() {
			n.k.Interrupt(func() {
				n.k.StealCPU(n.p.PerPacketCost)
				n.deliver(dst, pkt)
			})
		})
		n.txNext()
	})
}

// deliver runs the receive-side fault sites — every non-EOF data
// datagram is one eligible occurrence, argument = its arrival ordinal —
// then hands the packet to the destination socket. Drop discards it,
// dup delivers it twice, reorder delays it one extra propagation period
// so a datagram in flight behind it overtakes it.
func (n *Net) deliver(port int, pkt packet) {
	if !pkt.eof && len(pkt.data) > 0 {
		fp := n.k.Faults()
		n.rxCount++
		ord := n.rxCount
		if fp.Hit(n.siteDrop, ord) {
			n.dropped++
			n.k.TraceEmit(trace.KindNetDrop, 0, int64(len(pkt.data)), int64(port), "")
			return
		}
		dup := fp.Hit(n.siteDup, ord)
		if fp.Hit(n.siteReorder, ord) {
			n.k.Hold()
			n.k.Engine().Schedule(n.p.Latency, "net:reorder", func() {
				n.k.Interrupt(func() {
					n.k.StealCPU(n.p.PerPacketCost)
					n.deliverTo(port, pkt)
					if dup {
						n.k.StealCPU(n.p.PerPacketCost)
						n.deliverTo(port, pkt)
					}
				})
				n.k.Release()
			})
			return
		}
		if dup {
			n.deliverTo(port, pkt)
			n.k.StealCPU(n.p.PerPacketCost)
			n.deliverTo(port, pkt)
			return
		}
	}
	n.deliverTo(port, pkt)
}

func (n *Net) deliverTo(port int, pkt packet) {
	s, ok := n.socks[port]
	if !ok || s.closed {
		n.dropped++
		n.k.TraceEmit(trace.KindNetDrop, 0, int64(len(pkt.data)), int64(port), "")
		return
	}
	if s.handler != nil {
		// Protocol input processing: the handler consumes the packet
		// immediately at interrupt level, so no receive queue (and no
		// receive-buffer bound) is involved.
		n.delivered++
		n.k.TraceEmit(trace.KindNetRx, 0, int64(len(pkt.data)), int64(port), "")
		s.handler(pkt.data, pkt.from, pkt.eof)
		return
	}
	if s.rcvBytes+len(pkt.data) > n.p.RcvBufBytes {
		n.dropped++
		n.k.TraceEmit(trace.KindNetDrop, 0, int64(len(pkt.data)), int64(port), "")
		return
	}
	n.delivered++
	n.k.TraceEmit(trace.KindNetRx, 0, int64(len(pkt.data)), int64(port), "")
	s.rcvBytes += len(pkt.data)
	s.rcvq = append(s.rcvq, pkt)
	s.serveWaiters()
}

// Socket is a datagram endpoint bound to a port on its Net.
type Socket struct {
	net    *Net
	port   int
	peer   int // connected destination port (for write/splice sink)
	closed bool

	rcvq     []packet
	rcvBytes int

	// handler, when set, receives every arriving packet at interrupt
	// level instead of the receive queue (see SetHandler).
	handler func(data []byte, from int, eof bool)

	pendingMax     int
	pendingDeliver func([]byte, bool, error)

	pollQ kernel.PollQueue

	sent, rcvd int64
}

// NewSocket binds a datagram socket to port.
func (n *Net) NewSocket(port int) (*Socket, error) {
	if _, taken := n.socks[port]; taken {
		return nil, kernel.ErrExist
	}
	s := &Socket{net: n, port: port, peer: -1}
	n.socks[port] = s
	return s, nil
}

// Connect sets the default destination port for writes. The peer port
// must already be bound on the Net: a datagram "connection" to a
// nonexistent port would silently blackhole every write, so the check
// happens here, where the caller can still handle it.
func (s *Socket) Connect(port int) error {
	if _, ok := s.net.socks[port]; !ok {
		return kernel.ErrConnRefused
	}
	s.peer = port
	return nil
}

// Port returns the bound port.
func (s *Socket) Port() int { return s.port }

// Counters returns datagrams sent and received by this socket.
func (s *Socket) Counters() (sent, rcvd int64) { return s.sent, s.rcvd }

// QueuedDatagrams reports datagrams waiting in the receive queue.
func (s *Socket) QueuedDatagrams() int { return len(s.rcvq) }

func (s *Socket) String() string {
	return fmt.Sprintf("udp:%d", s.port)
}

// serveWaiters hands queued data to a pending splice read and wakes
// blocked readers. Runs at interrupt level.
func (s *Socket) serveWaiters() {
	if s.pendingDeliver != nil && (len(s.rcvq) > 0 || s.closed) {
		deliver := s.pendingDeliver
		s.pendingDeliver = nil
		data, eof := s.takeDatagram(s.pendingMax)
		deliver(data, eof, nil)
	}
	s.net.k.Wakeup(s)
	events := kernel.PollIn
	if s.closed {
		events |= kernel.PollHup
	}
	s.pollQ.Notify(events)
}

// takeDatagram pops the next datagram (or its first max bytes; the rest
// of the datagram is discarded, as recvfrom does).
func (s *Socket) takeDatagram(max int) (data []byte, eof bool) {
	for len(s.rcvq) > 0 {
		pkt := s.rcvq[0]
		s.rcvq = s.rcvq[1:]
		s.rcvBytes -= len(pkt.data)
		if pkt.eof {
			return nil, true
		}
		s.rcvd++
		d := pkt.data
		if max < len(d) {
			d = d[:max]
		}
		return d, false
	}
	return nil, s.closed
}

// SetHandler installs an interrupt-level input handler: every packet
// arriving for this socket is handed to fn directly — with the sending
// port, as protocol input routines need — instead of being queued for
// readers. A handler socket has no receive-buffer bound (the handler
// consumes each packet as it arrives). The stream transport uses this
// to demultiplex segments onto connections. Pass nil to restore queued
// delivery.
func (s *Socket) SetHandler(fn func(data []byte, from int, eof bool)) {
	s.handler = fn
}

// SendTo transmits one datagram toward dst, independent of the
// connected peer — the transport-layer send path (stream segments carry
// their own addressing). onSent, if non-nil, fires at interrupt level
// once the link has accepted the datagram.
func (s *Socket) SendTo(dst int, data []byte, onSent func()) {
	s.sendTo(dst, data, false, onSent)
}

// sendTo transmits one datagram toward port dst.
func (s *Socket) sendTo(dst int, data []byte, eof bool, onSent func()) {
	cp := append([]byte(nil), data...) // the wire owns a copy (mbuf)
	s.sent++
	s.net.transmit(txRequest{
		pkt:    packet{data: cp, from: s.port, eof: eof},
		dst:    dst,
		onSent: onSent,
	})
}

// ---- kernel.FileOps ----

// Read implements kernel.FileOps: blocks for the next datagram;
// zero-length return means the peer shut down.
func (s *Socket) Read(ctx kernel.Ctx, p []byte, off int64) (int, error) {
	for len(s.rcvq) == 0 {
		if s.closed {
			return 0, nil
		}
		if !ctx.CanSleep() {
			return 0, kernel.ErrWouldBlock
		}
		if err := ctx.Sleep(s, kernel.PSOCK+1); err != nil {
			return 0, err
		}
	}
	data, eofMark := s.takeDatagram(len(p))
	if eofMark {
		return 0, nil
	}
	copy(p, data)
	return len(data), nil
}

// Write implements kernel.FileOps: sends one datagram to the connected
// peer and returns when it has been handed to the link.
func (s *Socket) Write(ctx kernel.Ctx, p []byte, off int64) (int, error) {
	if s.closed {
		return 0, kernel.ErrBadFD
	}
	if s.peer < 0 {
		return 0, kernel.ErrInval
	}
	sentCh := false
	s.sendTo(s.peer, p, false, func() {
		sentCh = true
		s.net.k.Wakeup(&sentCh)
	})
	for !sentCh {
		if !ctx.CanSleep() {
			break
		}
		if err := ctx.Sleep(&sentCh, kernel.PSOCK); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// Sendv builds ONE datagram from the iovec array and sends it to the
// connected peer — the gather half of vectored socket I/O: N iovecs
// still cross the wire as a single packet, not N, so message framing is
// preserved no matter how the sender assembled the payload.
func (s *Socket) Sendv(ctx kernel.Ctx, iovs [][]byte) (int, error) {
	u := kernel.Uio{Iovs: iovs}
	return s.Write(ctx, u.Gather(), 0)
}

// Recvv receives ONE datagram and scatters it across the iovec array
// in order; bytes beyond the vector's total length are truncated,
// exactly as recvfrom truncates an oversized datagram.
func (s *Socket) Recvv(ctx kernel.Ctx, iovs [][]byte) (int, error) {
	u := kernel.Uio{Iovs: iovs}
	tmp := make([]byte, u.Total())
	n, err := s.Read(ctx, tmp, 0)
	if n > 0 {
		u.Scatter(tmp[:n])
	}
	return n, err
}

// Readv implements kernel.ReadvOps via Recvv, so Proc.Readv on a socket
// descriptor consumes exactly one datagram per call.
func (s *Socket) Readv(ctx kernel.Ctx, iovs [][]byte, off int64) (int, error) {
	return s.Recvv(ctx, iovs)
}

// Writev implements kernel.WritevOps via Sendv, so Proc.Writev on a
// socket descriptor emits exactly one datagram per call.
func (s *Socket) Writev(ctx kernel.Ctx, iovs [][]byte, off int64) (int, error) {
	return s.Sendv(ctx, iovs)
}

// Size implements kernel.FileOps.
func (s *Socket) Size(ctx kernel.Ctx) (int64, error) { return 0, nil }

// Sync implements kernel.FileOps.
func (s *Socket) Sync(ctx kernel.Ctx) error { return nil }

// Close implements kernel.FileOps: the port is released and an EOF
// marker is sent to the connected peer so spliced relays terminate.
func (s *Socket) Close(ctx kernel.Ctx) error {
	if s.closed {
		return nil
	}
	if s.peer >= 0 {
		s.sendTo(s.peer, nil, true, nil)
	}
	s.closed = true
	delete(s.net.socks, s.port)
	s.serveWaiters()
	return nil
}

// ---- kernel.PollOps ----

// PollReady implements kernel.PollOps: readable when a datagram (or
// EOF) is queued; writable whenever the socket is open, since datagram
// sends queue on the link without blocking the caller indefinitely.
func (s *Socket) PollReady(events int) int {
	r := 0
	if events&kernel.PollIn != 0 && (len(s.rcvq) > 0 || s.closed) {
		r |= kernel.PollIn
	}
	if events&kernel.PollOut != 0 && !s.closed {
		r |= kernel.PollOut
	}
	if s.closed {
		r |= kernel.PollHup
	}
	return r
}

// PollQueue implements kernel.PollOps.
func (s *Socket) PollQueue() *kernel.PollQueue { return &s.pollQ }

// ---- splice endpoints ----

// SpliceWrite implements the splice Sink interface: each chunk is sent
// as one datagram; done fires when the link has accepted it, which is
// the sink-side flow control.
func (s *Socket) SpliceWrite(data []byte, done func(error)) {
	if s.closed {
		done(kernel.ErrBadFD)
		return
	}
	if s.peer < 0 {
		done(kernel.ErrInval)
		return
	}
	s.sendTo(s.peer, data, false, func() { done(nil) })
}

// SpliceRead implements the splice Source interface: the next datagram
// is delivered immediately if queued, otherwise on its receive
// interrupt.
func (s *Socket) SpliceRead(max int, deliver func([]byte, bool, error)) {
	if len(s.rcvq) > 0 || s.closed {
		data, eof := s.takeDatagram(max)
		deliver(data, eof, nil)
		return
	}
	if s.pendingDeliver != nil {
		deliver(nil, false, kernel.ErrWouldBlock)
		return
	}
	s.pendingMax = max
	s.pendingDeliver = deliver
}

// CancelSpliceRead withdraws a parked splice read (splice interrupt
// path); the deliver callback will never run.
func (s *Socket) CancelSpliceRead() bool {
	if s.pendingDeliver == nil {
		return false
	}
	s.pendingDeliver = nil
	return true
}
