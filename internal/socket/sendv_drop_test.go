package socket

import (
	"bytes"
	"runtime"
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/trace"
)

// sendvWorkload runs a fixed vectored-send workload over a lossy link
// and returns (delivered datagrams, dropped count, trace digest). Nine
// datagrams are sent, each gathered from a three-slice iovec; with
// DropEvery=3 exactly every third DATAGRAM must be lost — the loss
// counter ticks per packet on the wire, never per iovec slice (which
// would drop every datagram, since each carries three).
func sendvWorkload(t *testing.T) (got [][]byte, dropped int64, digest uint64) {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 60 * sim.Second
	k := kernel.New(cfg)
	dig := trace.NewDigester()
	k.StartTrace(dig)
	p := Loopback()
	p.DropEvery = 3
	n := NewNet(k, p)
	a, _ := n.NewSocket(1)
	b, _ := n.NewSocket(2)
	a.Connect(2)

	const msgs = 9
	k.Spawn("tx", func(pr *kernel.Proc) {
		for i := 0; i < msgs; i++ {
			iovs := [][]byte{
				{byte(i), 0xAA},
				{0xBB, 0xCC, 0xDD},
				{0xEE},
			}
			if _, err := a.Sendv(pr.Ctx(), iovs); err != nil {
				t.Errorf("sendv %d: %v", i, err)
			}
		}
		pr.SleepFor(time20ms())
		if err := a.Close(pr.Ctx()); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	k.Spawn("rx", func(pr *kernel.Proc) {
		buf := make([]byte, 64)
		for {
			nn, err := b.Read(pr.Ctx(), buf, 0)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if nn == 0 {
				return
			}
			got = append(got, append([]byte(nil), buf[:nn]...))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	_, _, dropped = n.Stats()
	return got, dropped, dig.Sum()
}

func time20ms() sim.Duration { return 20 * sim.Millisecond }

// TestSendvDropCountsPerDatagram pins the loss accounting of vectored
// sends: each Sendv emits one datagram, so DropEvery=3 over nine
// three-slice sends loses exactly three messages — the 3rd, 6th and
// 9th — and every survivor arrives gathered and intact.
func TestSendvDropCountsPerDatagram(t *testing.T) {
	got, dropped, _ := sendvWorkload(t)
	if dropped != 3 {
		t.Fatalf("dropped = %d datagrams of 9, want 3 (per-datagram, not per-iovec)", dropped)
	}
	if len(got) != 6 {
		t.Fatalf("delivered = %d datagrams, want 6", len(got))
	}
	// Survivors are the non-multiples of three, in order, each the
	// full gathered payload.
	wantIdx := []byte{0, 1, 3, 4, 6, 7}
	for i, msg := range got {
		want := []byte{wantIdx[i], 0xAA, 0xBB, 0xCC, 0xDD, 0xEE}
		if !bytes.Equal(msg, want) {
			t.Fatalf("datagram %d = %x, want %x", i, msg, want)
		}
	}
}

// TestSendvDropDeterministicAcrossGOMAXPROCS pins that the per-datagram
// loss pattern — and the whole traced run — is a pure function of the
// workload, independent of host parallelism.
func TestSendvDropDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var digests [2]uint64
	var drops [2]int64
	for i, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		_, dropped, digest := sendvWorkload(t)
		digests[i], drops[i] = digest, dropped
	}
	if digests[0] != digests[1] {
		t.Errorf("trace digest differs across GOMAXPROCS: %016x (1) != %016x (8)",
			digests[0], digests[1])
	}
	if drops[0] != drops[1] {
		t.Errorf("drop count differs across GOMAXPROCS: %d != %d", drops[0], drops[1])
	}
}
