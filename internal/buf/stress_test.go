package buf

import (
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// checkInvariants verifies the cache's structural invariants: free-list
// count consistency, no buffer both busy and on the free list, and hash
// entries resolving to themselves.
func checkInvariants(t *testing.T, c *Cache) {
	t.Helper()
	n := 0
	for b := c.freeHead; b != nil; b = b.freeNext {
		n++
		if b.Flags&BBusy != 0 {
			t.Fatalf("busy buffer %v on free list", b)
		}
		if !b.onFree {
			t.Fatalf("free-list buffer %v not marked onFree", b)
		}
		if b.freeNext == nil && c.freeTail != b {
			t.Fatalf("free tail mismatch")
		}
	}
	if n != c.nfree {
		t.Fatalf("free count %d != list length %d", c.nfree, n)
	}
	for key, head := range c.hash {
		for b := head; b != nil; b = b.hashNext {
			if !b.hashed {
				t.Fatalf("unhashed buffer on chain %v", key)
			}
			if b.Dev != key.dev {
				t.Fatalf("buffer %v on wrong hash chain", b)
			}
		}
	}
}

// TestCacheRandomOpsInvariants hammers the cache with random getblk /
// bread / bdwrite / bawrite / brelse / flush / invalidate sequences and
// checks invariants after every step.
func TestCacheRandomOpsInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		f := newFixture(12)
		r := sim.NewRand(seed)
		f.runProc(t, func(p *kernel.Proc) {
			ctx := p.Ctx()
			var held []*Buf
			holding := func(blk int64) bool {
				for _, b := range held {
					if b.Blkno == blk {
						return true
					}
				}
				return false
			}
			for step := 0; step < 300; step++ {
				switch r.Intn(10) {
				case 0, 1, 2: // bread + hold
					if len(held) >= 6 {
						break // keep some buffers free
					}
					blk := r.Int63n(64)
					if holding(blk) {
						break // holding a buffer busy and re-requesting
						// it would self-deadlock, as on a real kernel
					}
					b, err := f.c.Bread(ctx, f.dev, blk)
					if err != nil {
						t.Fatalf("seed %d step %d: bread: %v", seed, step, err)
					}
					held = append(held, b)
				case 3, 4, 5: // release one held buffer
					if len(held) == 0 {
						break
					}
					i := r.Intn(len(held))
					f.c.Brelse(ctx, held[i])
					held = append(held[:i], held[i+1:]...)
				case 6: // dirty release
					if len(held) == 0 {
						break
					}
					i := r.Intn(len(held))
					held[i].Data[0] = byte(step)
					f.c.Bdwrite(ctx, held[i])
					held = append(held[:i], held[i+1:]...)
				case 7: // async write
					if len(held) == 0 {
						break
					}
					i := r.Intn(len(held))
					f.c.Bawrite(ctx, held[i])
					held = append(held[:i], held[i+1:]...)
				case 8: // flush
					if _, err := f.c.FlushDev(ctx, f.dev); err != nil {
						t.Fatalf("seed %d step %d: flush: %v", seed, step, err)
					}
				case 9: // let async work drain
					p.SleepFor(10 * sim.Millisecond)
				}
				checkInvariants(t, f.c)
			}
			for _, b := range held {
				f.c.Brelse(ctx, b)
			}
			p.SleepFor(50 * sim.Millisecond) // drain outstanding async writes
			checkInvariants(t, f.c)
			// Every buffer must be reclaimable at the end.
			if f.c.FreeBuffers() != f.c.NumBuffers() {
				t.Fatalf("seed %d: %d of %d buffers free at end",
					seed, f.c.FreeBuffers(), f.c.NumBuffers())
			}
		})
	}
}

// TestCacheDataIntegrityUnderPressure writes distinct patterns through
// a tiny cache (forcing constant recycling) and verifies every block
// reads back correctly afterwards.
func TestCacheDataIntegrityUnderPressure(t *testing.T) {
	f := newFixture(6)
	const blocks = 48
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		for blk := int64(0); blk < blocks; blk++ {
			b := f.c.Getblk(ctx, f.dev, blk)
			for i := 0; i < 16; i++ {
				b.Data[i] = byte(blk) ^ byte(i*7)
			}
			f.c.Bdwrite(ctx, b)
		}
		// Read everything back; the tiny cache forces most of these to
		// come from the device after eviction-writes.
		for blk := int64(0); blk < blocks; blk++ {
			b, err := f.c.Bread(ctx, f.dev, blk)
			if err != nil {
				t.Fatalf("bread %d: %v", blk, err)
			}
			for i := 0; i < 16; i++ {
				if b.Data[i] != byte(blk)^byte(i*7) {
					t.Fatalf("block %d byte %d corrupted", blk, i)
				}
			}
			f.c.Brelse(ctx, b)
		}
	})
}
