package buf

import (
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
)

func TestFlushDaemonPushesDirtyBuffers(t *testing.T) {
	f := newFixture(16)
	stop := f.c.StartFlushDaemon(5) // every 5 ticks = 50ms
	defer stop()
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 2)
		b.Data[0] = 0x42
		f.c.Bdwrite(ctx, b)
		if f.dev.nwrites != 0 {
			t.Fatal("write reached device before daemon ran")
		}
		p.SleepFor(120 * sim.Millisecond)
		if f.dev.nwrites == 0 {
			t.Fatal("flush daemon never pushed the delayed write")
		}
		if f.dev.data[2*8192] != 0x42 {
			t.Fatal("flushed data wrong")
		}
		// The buffer must be clean (not BDelwri) afterwards.
		if cb := f.c.Peek(f.dev, 2); cb == nil || cb.Flags&BDelwri != 0 {
			t.Fatal("buffer still dirty after daemon flush")
		}
	})
}

func TestFlushDaemonStop(t *testing.T) {
	f := newFixture(16)
	stop := f.c.StartFlushDaemon(2)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		stop()
		b := f.c.Getblk(ctx, f.dev, 1)
		f.c.Bdwrite(ctx, b)
		p.SleepFor(100 * sim.Millisecond)
		if f.dev.nwrites != 0 {
			t.Fatal("daemon flushed after stop")
		}
	})
}

func TestFlushDaemonLeavesBusyBuffersAlone(t *testing.T) {
	f := newFixture(16)
	stop := f.c.StartFlushDaemon(2)
	defer stop()
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 3) // held busy, never released
		b.Data[0] = 1
		p.SleepFor(80 * sim.Millisecond)
		if f.dev.nwrites != 0 {
			t.Fatal("daemon touched a busy buffer")
		}
		f.c.Brelse(ctx, b)
	})
}
