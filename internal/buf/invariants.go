package buf

import "fmt"

// This file implements the buffer-cache invariant checker used by the
// simcheck harness (internal/simcheck). The checks are structural —
// they walk the hash table and free list without doing I/O or sleeping
// — so they are callable from any context, including the kernel's
// scheduling loop between events.
//
// Invariant catalog (buffer cache):
//
//	buf-free-link        free list forward/back pointers agree, count == nfree
//	buf-free-busy        no buffer is both BBusy and on the free list
//	buf-free-flag        onFree matches actual free-list membership
//	buf-hash-key         a hashed buffer's (Dev, Blkno) matches its chain
//	buf-hash-dup         at most one valid (non-BInval) buffer per (dev, blkno)
//	buf-flag-wanted      BWanted only while BBusy (someone holds the buffer)
//	buf-flag-delwri      BDelwri implies BDone and not BInval (dirty data is valid)
//	buf-flag-call        BCall implies a non-nil Iodone handler
//	buf-pool-account     nbuf == free buffers + busy hashed buffers
//	buf-header-hashed    header-only (BNoMem) buffers never enter the hash
//	buf-ra-flag          BReadahead never on dirty or header-only buffers;
//	                     an in-flight (not BDone) readahead is a busy async read
//	buf-ra-pending       raPending == number of in-flight readahead buffers
//	buf-ra-budget        0 <= raPending <= the readahead budget
//
// A violation is reported as an *InvariantError naming the invariant.

// InvariantError describes one violated buffer-cache invariant.
type InvariantError struct {
	Name   string // invariant identifier, e.g. "buf-free-busy"
	Detail string
}

func (e *InvariantError) Error() string {
	return "invariant " + e.Name + " violated: " + e.Detail
}

func violation(name, format string, args ...any) error {
	return &InvariantError{Name: name, Detail: fmt.Sprintf(format, args...)}
}

// CheckInvariants verifies the cache's structural invariants, returning
// the first violation found (nil if the cache is consistent). It never
// sleeps and performs no I/O.
func (c *Cache) CheckInvariants() error {
	// Free-list walk: link integrity, counts, flags.
	seen := make(map[*Buf]bool, c.nfree)
	n := 0
	var prev *Buf
	for b := c.freeHead; b != nil; b = b.freeNext {
		if seen[b] {
			return violation("buf-free-link", "free list cycle at %s", b)
		}
		seen[b] = true
		n++
		if b.freePrev != prev {
			return violation("buf-free-link", "%s has freePrev=%p, want %p", b, b.freePrev, prev)
		}
		if !b.onFree {
			return violation("buf-free-flag", "%s on free list with onFree=false", b)
		}
		if b.Flags&BBusy != 0 {
			return violation("buf-free-busy", "busy buffer on free list: %s", b)
		}
		if err := checkBufFlags(b); err != nil {
			return err
		}
		prev = b
	}
	if prev != c.freeTail {
		return violation("buf-free-link", "freeTail=%p, want %p", c.freeTail, prev)
	}
	if n != c.nfree {
		return violation("buf-free-link", "free list holds %d buffers, nfree says %d", n, c.nfree)
	}

	// Hash walk: chain keys, duplicate detection, busy accounting,
	// in-flight readahead accounting.
	busy := 0
	inflightRA := 0
	valid := make(map[devblk]*Buf)
	for key, head := range c.hash {
		for b := head; b != nil; b = b.hashNext {
			if !b.hashed {
				return violation("buf-hash-key", "%s on chain %s#%d with hashed=false", b, key.dev.DevName(), key.blk)
			}
			if b.Flags&BNoMem != 0 {
				return violation("buf-header-hashed", "header-only buffer in hash: %s", b)
			}
			if (devblk{b.Dev, b.Blkno}) != key {
				return violation("buf-hash-key", "%s hashed under chain %s#%d", b, key.dev.DevName(), key.blk)
			}
			if b.Flags&BInval == 0 {
				if dup, ok := valid[key]; ok {
					return violation("buf-hash-dup", "blocks %s and %s both valid for %s#%d", dup, b, key.dev.DevName(), key.blk)
				}
				valid[key] = b
			}
			if b.Flags&BBusy != 0 {
				busy++
				if b.onFree {
					return violation("buf-free-busy", "busy hashed buffer claims free-list membership: %s", b)
				}
				if err := checkBufFlags(b); err != nil {
					return err
				}
			} else if !b.onFree {
				return violation("buf-pool-account", "idle hashed buffer not on free list: %s", b)
			}
			if b.Flags&BReadahead != 0 && b.Flags&BDone == 0 {
				inflightRA++
			}
		}
	}
	if c.nfree+busy != c.nbuf {
		return violation("buf-pool-account", "free %d + busy %d != pool %d", c.nfree, busy, c.nbuf)
	}
	if inflightRA != c.raPending {
		return violation("buf-ra-pending", "raPending=%d but %d in-flight readahead buffers", c.raPending, inflightRA)
	}
	if c.raPending < 0 || (c.raMax > 0 && c.raPending > c.raMax) {
		return violation("buf-ra-budget", "raPending=%d outside [0, %d]", c.raPending, c.raMax)
	}
	return nil
}

// checkBufFlags verifies per-buffer flag consistency.
func checkBufFlags(b *Buf) error {
	if b.Flags&BWanted != 0 && b.Flags&BBusy == 0 {
		return violation("buf-flag-wanted", "BWanted without BBusy: %s", b)
	}
	if b.Flags&BDelwri != 0 {
		if b.Flags&BDone == 0 {
			return violation("buf-flag-delwri", "BDelwri without BDone: %s", b)
		}
		if b.Flags&BInval != 0 {
			return violation("buf-flag-delwri", "BDelwri on invalid buffer: %s", b)
		}
	}
	if b.Flags&BCall != 0 && b.Iodone == nil {
		return violation("buf-flag-call", "BCall set with nil Iodone: %s", b)
	}
	if b.Flags&BReadahead != 0 {
		if b.Flags&(BDelwri|BNoMem) != 0 {
			return violation("buf-ra-flag", "BReadahead on dirty or header-only buffer: %s", b)
		}
		if b.Flags&BDone == 0 && !b.HasFlags(BBusy|BRead|BAsync) {
			return violation("buf-ra-flag", "in-flight readahead not a busy async read: %s", b)
		}
	}
	return nil
}

// Damage deliberately corrupts one internal flag so the invariant
// checker trips — the fault-injection side of the checker's own test
// harness (simcheck's "corrupt one buffer-cache flag" acceptance
// check). kind selects the corruption:
//
//	"busy-on-freelist"  set BBusy on the head of the free list
//	"delwri-undone"     set BDelwri without BDone on a free buffer
//	"hash-key"          change a hashed buffer's Blkno without rehashing
//	"ra-pending"        bump raPending without an in-flight readahead
//
// It is exported for tests and the simcheck harness only; production
// paths never call it.
func (c *Cache) Damage(kind string) {
	switch kind {
	case "busy-on-freelist":
		if c.freeHead != nil {
			c.freeHead.Flags |= BBusy
		}
	case "delwri-undone":
		if c.freeHead != nil {
			c.freeHead.Flags |= BDelwri
			c.freeHead.Flags &^= BDone
		}
	case "hash-key":
		for _, b := range c.hash {
			b.Blkno++
			break
		}
	case "ra-pending":
		c.raPending++
	default:
		panic("buf: unknown damage kind " + kind)
	}
}
