package buf

import (
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// memDevice is a trivial instantaneous block device for cache tests: it
// completes requests on the next engine event with a fixed latency.
type memDevice struct {
	k       *kernel.Kernel
	c       *Cache
	name    string
	bsize   int
	blocks  int64
	data    []byte
	latency sim.Duration
	nreads  int
	nwrites int
}

func newMemDevice(k *kernel.Kernel, name string, blocks int64, bsize int, latency sim.Duration) *memDevice {
	return &memDevice{
		k: k, name: name, bsize: bsize, blocks: blocks,
		data:    make([]byte, blocks*int64(bsize)),
		latency: latency,
	}
}

func (d *memDevice) DevName() string   { return d.name }
func (d *memDevice) DevBlockSize() int { return d.bsize }
func (d *memDevice) DevBlocks() int64  { return d.blocks }

func (d *memDevice) Strategy(b *Buf) {
	d.k.Hold()
	d.k.Engine().Schedule(d.latency, "memdev", func() {
		off := b.Blkno * int64(d.bsize)
		if b.Flags&BRead != 0 {
			copy(b.Data[:b.Bcount], d.data[off:])
			d.nreads++
		} else {
			copy(d.data[off:off+int64(b.Bcount)], b.Data[:b.Bcount])
			d.nwrites++
		}
		d.k.Interrupt(func() { d.c.Biodone(b) })
		d.k.Release()
	})
}

type fixture struct {
	k   *kernel.Kernel
	c   *Cache
	dev *memDevice
}

func newFixture(nbuf int) *fixture {
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 120 * sim.Second
	k := kernel.New(cfg)
	c := NewCache(k, nbuf, 8192)
	dev := newMemDevice(k, "mem0", 1024, 8192, 2*sim.Millisecond)
	dev.c = c
	return &fixture{k: k, c: c, dev: dev}
}

// runProc runs fn as a single process to completion.
func (f *fixture) runProc(t *testing.T, fn func(p *kernel.Proc)) {
	t.Helper()
	f.k.Spawn("test", fn)
	if err := f.k.Run(); err != nil {
		t.Fatalf("kernel run: %v", err)
	}
}

func TestBreadMissThenHit(t *testing.T) {
	f := newFixture(16)
	for i := range f.dev.data[:8192] {
		f.dev.data[i] = byte(i % 251)
	}
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b, err := f.c.Bread(ctx, f.dev, 0)
		if err != nil {
			t.Errorf("bread: %v", err)
			return
		}
		if b.Data[100] != byte(100%251) {
			t.Errorf("read data wrong: %d", b.Data[100])
		}
		f.c.Brelse(ctx, b)

		before := f.dev.nreads
		b2, err := f.c.Bread(ctx, f.dev, 0)
		if err != nil {
			t.Errorf("bread 2: %v", err)
			return
		}
		if f.dev.nreads != before {
			t.Error("second bread hit the device; expected cache hit")
		}
		if b2 != b {
			t.Error("cache hit returned a different buffer")
		}
		f.c.Brelse(ctx, b2)
	})
	st := f.c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestBwriteRoundTrip(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 7)
		for i := range b.Data {
			b.Data[i] = 0xAB
		}
		if err := f.c.Bwrite(ctx, b); err != nil {
			t.Errorf("bwrite: %v", err)
		}
		if f.dev.data[7*8192] != 0xAB || f.dev.data[8*8192-1] != 0xAB {
			t.Error("bwrite did not reach the device")
		}
	})
}

func TestBdwriteDefersDeviceIO(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 3)
		b.Data[0] = 0x55
		f.c.Bdwrite(ctx, b)
		if f.dev.nwrites != 0 {
			t.Error("bdwrite hit the device immediately")
		}
		// A flush must push it out.
		n, err := f.c.FlushDev(ctx, f.dev)
		if err != nil || n != 1 {
			t.Errorf("flush: n=%d err=%v", n, err)
		}
		if f.dev.data[3*8192] != 0x55 {
			t.Error("flushed data missing on device")
		}
	})
	if st := f.c.Stats(); st.DelayedWrites != 1 {
		t.Fatalf("delayed writes = %d, want 1", st.DelayedWrites)
	}
}

func TestDelayedWritePushedOnRecycle(t *testing.T) {
	f := newFixture(4) // tiny cache forces recycling
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 0)
		b.Data[0] = 0x77
		f.c.Bdwrite(ctx, b)
		// Touch enough other blocks to force the dirty buffer out.
		for blk := int64(1); blk <= 8; blk++ {
			nb, err := f.c.Bread(ctx, f.dev, blk)
			if err != nil {
				t.Errorf("bread %d: %v", blk, err)
				return
			}
			f.c.Brelse(ctx, nb)
		}
		if f.dev.data[0] != 0x77 {
			t.Error("recycling did not push the delayed write to the device")
		}
	})
}

func TestBusyBufferWait(t *testing.T) {
	f := newFixture(16)
	var order []string
	holder := func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 5)
		p.Compute(20 * sim.Millisecond) // hold it busy a while
		order = append(order, "holder-release")
		f.c.Brelse(ctx, b)
	}
	waiter := func(p *kernel.Proc) {
		p.Compute(sim.Millisecond) // let holder get there first
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 5)
		order = append(order, "waiter-got")
		f.c.Brelse(ctx, b)
	}
	f.k.Spawn("holder", holder)
	f.k.Spawn("waiter", waiter)
	if err := f.k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "holder-release" || order[1] != "waiter-got" {
		t.Fatalf("order = %v", order)
	}
}

func TestGetblkNBWouldBlockOnBusy(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 9)
		_, err := f.c.GetblkNB(f.k.IntrCtx(), f.dev, 9)
		if err != kernel.ErrWouldBlock {
			t.Errorf("GetblkNB on busy buffer: err=%v, want ErrWouldBlock", err)
		}
		f.c.Brelse(ctx, b)
	})
}

func TestFreeListExhaustionBlocks(t *testing.T) {
	f := newFixture(4)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		var held []*Buf
		for blk := int64(0); blk < 4; blk++ {
			held = append(held, f.c.Getblk(ctx, f.dev, blk))
		}
		// Non-blocking path must refuse.
		_, err := f.c.GetblkNB(f.k.IntrCtx(), f.dev, 100)
		if err != kernel.ErrWouldBlock {
			t.Errorf("GetblkNB with exhausted pool: %v, want ErrWouldBlock", err)
		}
		// Release one after a delay from a callout; blocking getblk
		// must then succeed.
		f.k.Timeout(func() {
			f.c.Brelse(f.k.IntrCtx(), held[0])
		}, 2)
		b := f.c.Getblk(ctx, f.dev, 100)
		if b == nil {
			t.Error("getblk returned nil after free")
		}
		f.c.Brelse(ctx, b)
		for _, hb := range held[1:] {
			f.c.Brelse(ctx, hb)
		}
	})
}

func TestBreadaIssuesReadAhead(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b, err := f.c.Breada(ctx, f.dev, 0, 1)
		if err != nil {
			t.Errorf("breada: %v", err)
			return
		}
		f.c.Brelse(ctx, b)
		// Give the async read-ahead time to finish.
		p.SleepFor(10 * sim.Millisecond)
		if f.dev.nreads != 2 {
			t.Errorf("device reads = %d, want 2 (block + read-ahead)", f.dev.nreads)
		}
		// Now block 1 must be a hit.
		before := f.dev.nreads
		b1, err := f.c.Bread(ctx, f.dev, 1)
		if err != nil {
			t.Errorf("bread 1: %v", err)
			return
		}
		if f.dev.nreads != before {
			t.Error("read-ahead block was not cached")
		}
		f.c.Brelse(ctx, b1)
	})
}

func TestStartReadInvokesHandler(t *testing.T) {
	f := newFixture(16)
	copy(f.dev.data[2*8192:], []byte{1, 2, 3, 4})
	f.runProc(t, func(p *kernel.Proc) {
		done := false
		var got *Buf
		hit, err := f.c.StartRead(p.Ctx(), f.dev, 2, "desc", 42, func(k *kernel.Kernel, b *Buf) {
			done = true
			got = b
		})
		if err != nil {
			t.Errorf("StartRead: %v", err)
			return
		}
		if hit {
			t.Error("cold StartRead reported a cache hit")
		}
		if done {
			t.Error("handler ran before I/O completed")
		}
		p.SleepFor(10 * sim.Millisecond)
		if !done {
			t.Error("handler never ran")
			return
		}
		if got.SpliceDesc != "desc" || got.SpliceLblk != 42 {
			t.Errorf("splice fields not threaded: %v %d", got.SpliceDesc, got.SpliceLblk)
		}
		if got.Data[0] != 1 || got.Data[3] != 4 {
			t.Error("handler saw wrong data")
		}
		f.c.Brelse(p.Ctx(), got)
	})
}

func TestStartReadCacheHitImmediate(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b, err := f.c.Bread(ctx, f.dev, 4)
		if err != nil {
			t.Fatalf("bread: %v", err)
		}
		f.c.Brelse(ctx, b)
		ran := false
		hit, err := f.c.StartRead(ctx, f.dev, 4, nil, 0, func(k *kernel.Kernel, b *Buf) {
			ran = true
			f.c.Brelse(k.IntrCtx(), b)
		})
		if err != nil {
			t.Errorf("StartRead: %v", err)
		}
		if !ran || !hit {
			t.Error("cache-hit StartRead did not invoke handler synchronously")
		}
	})
}

func TestAllocHeaderSharesData(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		src, err := f.c.Bread(ctx, f.dev, 0)
		if err != nil {
			t.Fatalf("bread: %v", err)
		}
		hdr := f.c.AllocHeader(f.dev, 30)
		if hdr.Bcount != f.c.BlockSize() {
			t.Errorf("header bcount = %d", hdr.Bcount)
		}
		if hdr.Data != nil {
			t.Error("AllocHeader allocated data memory")
		}
		// Alias, as the splice write side does.
		hdr.Data = src.Data
		src.Data[0] = 0xEE
		if hdr.Data[0] != 0xEE {
			t.Error("aliased header does not share the data area")
		}
		f.c.ReleaseHeader(hdr)
		f.c.Brelse(ctx, src)
	})
}

func TestInvalidateDevColdStart(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		for blk := int64(0); blk < 4; blk++ {
			b, err := f.c.Bread(ctx, f.dev, blk)
			if err != nil {
				t.Fatalf("bread: %v", err)
			}
			f.c.Brelse(ctx, b)
		}
		// Dirty one block too.
		b := f.c.Getblk(ctx, f.dev, 2)
		b.Data[0] = 0x99
		f.c.Bdwrite(ctx, b)

		if err := f.c.InvalidateDev(ctx, f.dev); err != nil {
			t.Fatalf("invalidate: %v", err)
		}
		if f.dev.data[2*8192] != 0x99 {
			t.Error("invalidate lost dirty data")
		}
		before := f.dev.nreads
		rb, err := f.c.Bread(ctx, f.dev, 0)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if f.dev.nreads == before {
			t.Error("read after invalidate did not go to the device")
		}
		f.c.Brelse(ctx, rb)
	})
}

func TestBiowaitPropagatesError(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 1)
		b.Flags |= BRead
		// Simulate a failing device completion.
		f.k.Timeout(func() {
			b.Flags |= BError
			b.Err = kernel.ErrNxIO
			f.c.Biodone(b)
		}, 1)
		err := f.c.Biowait(ctx, b)
		if err != kernel.ErrNxIO {
			t.Errorf("biowait err = %v, want ErrNxIO", err)
		}
		f.c.Brelse(ctx, b)
	})
}

func TestBrelseErrorBufferDropsFromCache(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, f.dev, 1)
		b.Flags |= BError
		f.c.Brelse(ctx, b)
		if got := f.c.Peek(f.dev, 1); got != nil {
			t.Error("errored buffer still cached")
		}
	})
}

func TestCacheLRUOrder(t *testing.T) {
	f := newFixture(4)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		// Fill the cache with 0..3.
		for blk := int64(0); blk < 4; blk++ {
			b, _ := f.c.Bread(ctx, f.dev, blk)
			f.c.Brelse(ctx, b)
		}
		// Touch 0 to make it most-recently-used.
		b, _ := f.c.Bread(ctx, f.dev, 0)
		f.c.Brelse(ctx, b)
		// A new block must evict 1 (the LRU), not 0.
		nb, _ := f.c.Bread(ctx, f.dev, 9)
		f.c.Brelse(ctx, nb)
		if f.c.Peek(f.dev, 0) == nil {
			t.Error("MRU block 0 was evicted")
		}
		if f.c.Peek(f.dev, 1) != nil {
			t.Error("LRU block 1 survived eviction")
		}
	})
}

func TestStatsCounters(t *testing.T) {
	f := newFixture(8)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		for blk := int64(0); blk < 3; blk++ {
			b, _ := f.c.Bread(ctx, f.dev, blk)
			f.c.Brelse(ctx, b)
		}
		b, _ := f.c.Bread(ctx, f.dev, 0)
		f.c.Brelse(ctx, b)
		wb := f.c.Getblk(ctx, f.dev, 5)
		_ = f.c.Bwrite(ctx, wb)
	})
	st := f.c.Stats()
	if st.Misses != 4 || st.Hits != 1 { // 3 reads + 1 write-alloc miss, 1 re-read hit
		t.Fatalf("hits=%d misses=%d, want 1/4", st.Hits, st.Misses)
	}
	if st.Reads != 3 || st.Writes != 1 {
		t.Fatalf("reads=%d writes=%d, want 3/1", st.Reads, st.Writes)
	}
}
