package buf_test

import (
	"fmt"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/kernel"
)

// Example walks the classic buffer-cache life cycle on a RAM disk:
// write a block with bdwrite (delayed — nothing reaches the device),
// read it back from the cache, flush the device, and probe the
// readahead path. RAM-disk requests complete inline, so readahead
// blocks are warm by the time a demand read asks for them.
func Example() {
	k := kernel.New(kernel.DefaultConfig())
	c := buf.NewCache(k, 16, 8192)
	d := disk.New(k, disk.RAMDisk(256, 8192))
	d.SetCache(c)

	k.Spawn("demo", func(p *kernel.Proc) {
		ctx := p.Ctx()

		// Delayed write: the block is dirty in the cache only.
		b := c.Getblk(ctx, d, 10)
		copy(b.Data, []byte("hello"))
		c.Bdwrite(ctx, b)
		fmt.Println("delayed writes:", c.Stats().DelayedWrites)

		// A read of the same block is a pure cache hit.
		b, _ = c.Bread(ctx, d, 10)
		fmt.Printf("cached data: %s\n", b.Data[:5])
		c.Brelse(ctx, b)

		// Flush pushes the dirty block to the platter.
		n, _ := c.FlushDev(ctx, d)
		fmt.Println("flushed:", n)

		// Speculative read of the next block; the demand read that
		// follows consumes it without touching the device again.
		c.StartReadahead(ctx, d, 11)
		b, _ = c.Bread(ctx, d, 11)
		c.Brelse(ctx, b)
		st := c.Stats()
		fmt.Printf("readahead issued=%d hits=%d\n", st.RaIssued, st.RaHits)
	})
	if err := k.Run(); err != nil {
		fmt.Println("run:", err)
	}
	// Output:
	// delayed writes: 1
	// cached data: hello
	// flushed: 1
	// readahead issued=1 hits=1
}
