package buf

import (
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/trace"
)

// findEvents returns the collected events of one kind.
func findEvents(col *trace.Collector, kind trace.Kind) []trace.Event {
	var out []trace.Event
	for _, ev := range col.Events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

func TestSetReadaheadBudgetClamps(t *testing.T) {
	f := newFixture(16)
	f.c.SetReadaheadBudget(-5)
	if got := f.c.ReadaheadBudget(); got != 0 {
		t.Errorf("negative budget clamped to %d, want 0", got)
	}
	f.c.SetReadaheadBudget(1000)
	if got := f.c.ReadaheadBudget(); got != 8 {
		t.Errorf("huge budget clamped to %d, want nbuf/2 = 8", got)
	}
	f.c.SetReadaheadBudget(3)
	if got := f.c.ReadaheadBudget(); got != 3 {
		t.Errorf("in-range budget = %d, want 3", got)
	}
}

// TestReadaheadBudgetExhaustion covers the window-larger-than-budget
// case: issue stops (returns false) once raPending hits the cap, and
// the in-flight count drains to zero when the device completes.
func TestReadaheadBudgetExhaustion(t *testing.T) {
	f := newFixture(16)
	col := &trace.Collector{}
	f.k.StartTrace(col)
	f.c.SetReadaheadBudget(2)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		if !f.c.StartReadahead(ctx, f.dev, 10) {
			t.Error("readahead 10 refused with budget free")
		}
		if !f.c.StartReadahead(ctx, f.dev, 11) {
			t.Error("readahead 11 refused with budget free")
		}
		if f.c.StartReadahead(ctx, f.dev, 12) {
			t.Error("readahead 12 accepted past the budget")
		}
		if got := f.c.ReadaheadPending(); got != 2 {
			t.Errorf("pending = %d, want 2", got)
		}
		if err := f.c.CheckInvariants(); err != nil {
			t.Errorf("invariants with readaheads in flight: %v", err)
		}
		p.SleepFor(10 * sim.Millisecond)
		if got := f.c.ReadaheadPending(); got != 0 {
			t.Errorf("pending after completion = %d, want 0", got)
		}
	})
	if st := f.c.Stats(); st.RaIssued != 2 {
		t.Errorf("RaIssued = %d, want 2", st.RaIssued)
	}
	evs := findEvents(col, trace.KindBufReadahead)
	if len(evs) != 2 {
		t.Fatalf("got %d buf.readahead events, want 2", len(evs))
	}
	if evs[0].Arg1 != 10 || evs[0].Arg2 != 1 || evs[1].Arg1 != 11 || evs[1].Arg2 != 2 {
		t.Errorf("readahead events = %+v, want blks 10,11 with pending 1,2", evs)
	}
}

// TestReadaheadDisabledRefuses: budget zero means StartReadahead never
// issues (the fs layer relies on the first false to stop a window).
func TestReadaheadDisabledRefuses(t *testing.T) {
	f := newFixture(16)
	f.c.SetReadaheadBudget(0)
	f.runProc(t, func(p *kernel.Proc) {
		if f.c.StartReadahead(p.Ctx(), f.dev, 5) {
			t.Error("StartReadahead issued with readahead disabled")
		}
	})
	if st := f.c.Stats(); st.RaIssued != 0 {
		t.Errorf("RaIssued = %d, want 0", st.RaIssued)
	}
}

// TestReadaheadHitConsumed: a demand Bread that finds a completed
// readahead buffer consumes the BReadahead flag, counts one readahead
// hit, avoids a second device read, and tags the hit event (Arg2 = 1).
func TestReadaheadHitConsumed(t *testing.T) {
	f := newFixture(16)
	col := &trace.Collector{}
	f.k.StartTrace(col)
	for i := range f.dev.data[5*8192 : 5*8192+8192] {
		f.dev.data[5*8192+i] = byte(i % 13)
	}
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		if !f.c.StartReadahead(ctx, f.dev, 5) {
			t.Fatal("StartReadahead refused")
		}
		p.SleepFor(10 * sim.Millisecond)
		reads := f.dev.nreads
		b, err := f.c.Bread(ctx, f.dev, 5)
		if err != nil {
			t.Fatalf("bread: %v", err)
		}
		if f.dev.nreads != reads {
			t.Error("demand read hit the device despite readahead")
		}
		if b.Flags&BReadahead != 0 {
			t.Error("BReadahead not consumed by the demand lookup")
		}
		if b.Data[7] != byte(7%13) {
			t.Errorf("readahead data wrong: %d", b.Data[7])
		}
		f.c.Brelse(ctx, b)
	})
	st := f.c.Stats()
	if st.RaHits != 1 || st.RaWaste != 0 {
		t.Errorf("RaHits=%d RaWaste=%d, want 1/0", st.RaHits, st.RaWaste)
	}
	hits := findEvents(col, trace.KindBufHit)
	if len(hits) != 1 || hits[0].Arg1 != 5 || hits[0].Arg2 != 1 {
		t.Errorf("hit events = %+v, want one for blk 5 with Arg2=1", hits)
	}
}

// TestReadaheadWasteOnInvalidate: a completed readahead that is
// invalidated before any demand reference counts as waste and emits
// the retirement event (Arg2 = -1).
func TestReadaheadWasteOnInvalidate(t *testing.T) {
	f := newFixture(16)
	col := &trace.Collector{}
	f.k.StartTrace(col)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		if !f.c.StartReadahead(ctx, f.dev, 9) {
			t.Fatal("StartReadahead refused")
		}
		p.SleepFor(10 * sim.Millisecond)
		if err := f.c.InvalidateDev(ctx, f.dev); err != nil {
			t.Fatalf("invalidate: %v", err)
		}
		if err := f.c.CheckInvariants(); err != nil {
			t.Errorf("invariants after invalidate: %v", err)
		}
	})
	st := f.c.Stats()
	if st.RaWaste != 1 || st.RaHits != 0 {
		t.Errorf("RaWaste=%d RaHits=%d, want 1/0", st.RaWaste, st.RaHits)
	}
	var retired bool
	for _, ev := range findEvents(col, trace.KindBufReadahead) {
		if ev.Arg1 == 9 && ev.Arg2 == -1 {
			retired = true
		}
	}
	if !retired {
		t.Error("no buf.readahead retirement event (Arg2 = -1) for blk 9")
	}
}

// TestReadaheadIncoreCovered: a block already cached is reported
// covered without issuing a device read or spending budget.
func TestReadaheadIncoreCovered(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b, err := f.c.Bread(ctx, f.dev, 3)
		if err != nil {
			t.Fatalf("bread: %v", err)
		}
		f.c.Brelse(ctx, b)
		if !f.c.StartReadahead(ctx, f.dev, 3) {
			t.Error("cached block reported uncovered")
		}
		if got := f.c.ReadaheadPending(); got != 0 {
			t.Errorf("pending = %d, want 0 (no issue for cached block)", got)
		}
	})
	if st := f.c.Stats(); st.RaIssued != 0 {
		t.Errorf("RaIssued = %d, want 0", st.RaIssued)
	}
}

func TestReadaheadRejectsOutOfRange(t *testing.T) {
	f := newFixture(16)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		if f.c.StartReadahead(ctx, f.dev, -1) {
			t.Error("negative block accepted")
		}
		if f.c.StartReadahead(ctx, f.dev, f.dev.DevBlocks()) {
			t.Error("past-end block accepted")
		}
		if f.c.StartReadahead(ctx, nil, 0) {
			t.Error("nil device accepted")
		}
	})
	if st := f.c.Stats(); st.RaIssued != 0 {
		t.Errorf("RaIssued = %d, want 0", st.RaIssued)
	}
}

// TestClusteredFlushEmission: adjacent dirty blocks flushed together
// are counted as one cluster run and traced as disk.cluster; the
// isolated block joins no run.
func TestClusteredFlushEmission(t *testing.T) {
	f := newFixture(16)
	col := &trace.Collector{}
	f.k.StartTrace(col)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		for _, blk := range []int64{12, 10, 20, 11} {
			b := f.c.Getblk(ctx, f.dev, blk)
			for i := range b.Data {
				b.Data[i] = byte(blk)
			}
			f.c.Bdwrite(ctx, b)
		}
		n, err := f.c.FlushBlocks(ctx, f.dev, []int64{10, 11, 12, 20})
		if err != nil {
			t.Fatalf("flush: %v", err)
		}
		if n != 4 {
			t.Errorf("flushed %d blocks, want 4", n)
		}
	})
	st := f.c.Stats()
	if st.ClusterRuns != 1 || st.ClusterBlocks != 3 {
		t.Errorf("ClusterRuns=%d ClusterBlocks=%d, want 1/3", st.ClusterRuns, st.ClusterBlocks)
	}
	evs := findEvents(col, trace.KindDiskCluster)
	if len(evs) != 1 || evs[0].Arg1 != 10 || evs[0].Arg2 != 3 {
		t.Errorf("disk.cluster events = %+v, want one run [10..12]", evs)
	}
}
