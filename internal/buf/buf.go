// Package buf implements a 4.2BSD-style block buffer cache: fixed-size
// buffers addressed by (device, physical block), a hash table for
// lookup, an LRU free list, delayed and asynchronous writes, and
// interrupt-time completion via biodone with optional B_CALL handlers.
//
// The splice mechanism (internal/splice) is written against this
// interface exactly as the paper describes (§5.1): bread, getblk,
// bawrite, brelse, plus non-blocking variants with the biowait calls
// removed and a getblk variant that allocates a header but no data
// memory.
package buf

import (
	"fmt"

	"kdp/internal/kernel"
)

// Buffer flags, following the 4.2BSD names.
const (
	BRead   = 1 << iota // I/O direction is read (else write)
	BDone               // I/O complete; contents valid
	BBusy               // owned by someone; not on the free list
	BWanted             // someone is sleeping waiting for this buffer
	BDelwri             // delayed write: dirty, write before reuse
	BAsync              // release the buffer at I/O completion
	BCall               // invoke Iodone at I/O completion
	BInval              // contents invalid; do not cache
	BError              // I/O failed
	BAge                // stale: recycle preferentially
	BNoMem              // header only; Data aliases another buffer (splice)

	// BReadahead marks a buffer fetched asynchronously ahead of any
	// reader (StartReadahead). The flag survives I/O completion and is
	// consumed by the first getblk that claims the buffer (counted as a
	// readahead hit) or cleared when the buffer is recycled or
	// invalidated unreferenced (counted as readahead waste).
	BReadahead
)

// Device is the block-device driver interface. Strategy enqueues the
// request described by b and returns immediately; the driver completes
// it later by calling Biodone at interrupt level.
type Device interface {
	// Strategy queues the I/O request. The direction is b.Flags&BRead.
	Strategy(b *Buf)
	// DevBlockSize returns the device's native block size in bytes.
	DevBlockSize() int
	// DevBlocks returns the device capacity in blocks.
	DevBlocks() int64
	// DevName identifies the device in traces and errors.
	DevName() string
}

// Buf is a buffer header, possibly with attached data memory. The
// Splice* fields are the "new fields in the buffer header structure"
// the paper adds (§5.4) so completion handlers can find the splice
// descriptor and logical block a buffer belongs to.
type Buf struct {
	Flags  int
	Dev    Device
	Blkno  int64 // physical block number on Dev
	Bcount int   // transfer length in bytes
	Resid  int   // bytes not transferred (error cases)
	Data   []byte
	Err    error

	// Iodone is invoked at interrupt level when the I/O completes and
	// BCall is set.
	Iodone func(k *kernel.Kernel, b *Buf)

	// SpliceDesc links the buffer to its splice descriptor.
	SpliceDesc any
	// SpliceLblk is the logical block number within the spliced file.
	SpliceLblk int64
	// SpliceN is the logical payload length of a splice write header.
	// Splice always transfers whole physical blocks (Bcount) so the
	// unused tail of a final partial block lands on disk as zeros —
	// the same "bytes beyond EOF read back as zeros" invariant the
	// ordinary write path maintains via zero-filled cache buffers —
	// but only SpliceN bytes count toward the transfer.
	SpliceN int
	// SplicePeer links a write-side header to the read-side buffer
	// whose data area it shares.
	SplicePeer *Buf

	cache    *Buf // unused; placeholder to keep header size honest
	pool     *Cache
	hashNext *Buf
	hashed   bool
	freePrev *Buf
	freeNext *Buf
	onFree   bool
}

func (b *Buf) String() string {
	dev := "?"
	if b.Dev != nil {
		dev = b.Dev.DevName()
	}
	return fmt.Sprintf("buf{%s#%d flags=%#x n=%d}", dev, b.Blkno, b.Flags, b.Bcount)
}

// HasFlags reports whether all the given flags are set.
func (b *Buf) HasFlags(f int) bool { return b.Flags&f == f }
