package buf

import (
	"strings"
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// badDevice fails every write with an I/O error at interrupt level
// (reads succeed), for exercising the sticky write-error latch.
type badDevice struct {
	*memDevice
}

func (d *badDevice) Strategy(b *Buf) {
	if b.Flags&BRead != 0 {
		d.memDevice.Strategy(b)
		return
	}
	d.k.Hold()
	d.k.Engine().Schedule(d.latency, "baddev", func() {
		b.Flags |= BError
		b.Err = kernel.ErrIO
		b.Resid = b.Bcount
		d.k.Interrupt(func() { d.c.Biodone(b) })
		d.k.Release()
	})
}

func TestDamageTripsInvariants(t *testing.T) {
	for _, kind := range []string{"busy-on-freelist", "delwri-undone", "hash-key", "ra-pending"} {
		t.Run(kind, func(t *testing.T) {
			f := newFixture(8)
			f.runProc(t, func(p *kernel.Proc) {
				ctx := p.Ctx()
				b, err := f.c.Bread(ctx, f.dev, 1)
				if err != nil {
					t.Fatalf("bread: %v", err)
				}
				f.c.Brelse(ctx, b)
			})
			if err := f.c.CheckInvariants(); err != nil {
				t.Fatalf("invariants dirty before damage: %v", err)
			}
			f.c.Damage(kind)
			err := f.c.CheckInvariants()
			if err == nil {
				t.Fatalf("damage %q not detected", kind)
			}
			if err.Error() == "" {
				t.Error("empty violation message")
			}
		})
	}
}

func TestBufStringDescribes(t *testing.T) {
	f := newFixture(8)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b, err := f.c.Bread(ctx, f.dev, 42)
		if err != nil {
			t.Fatalf("bread: %v", err)
		}
		s := b.String()
		if !strings.Contains(s, "mem0") || !strings.Contains(s, "42") {
			t.Errorf("String() = %q, want device and block number", s)
		}
		f.c.Brelse(ctx, b)
	})
}

// TestAsyncWriteErrorLatches: a delayed write flushed asynchronously
// into a media error has no process to report to; the error must latch
// on the device, read back via WriteError, and be consumed exactly
// once by TakeWriteError.
func TestAsyncWriteErrorLatches(t *testing.T) {
	f := newFixture(8)
	bad := &badDevice{f.dev}
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := f.c.Getblk(ctx, bad, 5)
		b.Data[0] = 1
		f.c.Bawrite(ctx, b)
		p.SleepFor(10 * sim.Millisecond)
		if f.c.WriteError(bad) == nil {
			t.Fatal("write error did not latch")
		}
		if err := f.c.TakeWriteError(bad); err == nil {
			t.Fatal("TakeWriteError returned nil with an error latched")
		}
		if err := f.c.TakeWriteError(bad); err != nil {
			t.Fatalf("second TakeWriteError = %v, want nil (consumed)", err)
		}
		if err := f.c.CheckInvariants(); err != nil {
			t.Errorf("invariants after failed flush: %v", err)
		}
	})
}

// TestInvalidateBlocksDropsListed: only the listed blocks leave the
// cache; dirty victims are written out first so no data is lost.
func TestInvalidateBlocksDropsListed(t *testing.T) {
	f := newFixture(8)
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		for _, blk := range []int64{1, 2, 3} {
			b := f.c.Getblk(ctx, f.dev, blk)
			b.Data[0] = byte(blk)
			f.c.Bdwrite(ctx, b)
		}
		if err := f.c.InvalidateBlocks(ctx, f.dev, []int64{1, 2}); err != nil {
			t.Fatalf("invalidate: %v", err)
		}
		if f.c.Peek(f.dev, 1) != nil || f.c.Peek(f.dev, 2) != nil {
			t.Error("invalidated blocks still cached")
		}
		if f.c.Peek(f.dev, 3) == nil {
			t.Error("unlisted block 3 was dropped")
		}
		// The dirty victims were flushed, not discarded.
		if f.dev.data[1*8192] != 1 || f.dev.data[2*8192] != 2 {
			t.Error("invalidated dirty blocks never reached the device")
		}
		if err := f.c.CheckInvariants(); err != nil {
			t.Errorf("invariants: %v", err)
		}
	})
}

// TestCacheCrashDropsDirtyAndClearsErrors: Crash models a power cut —
// unwritten delayed writes are lost (counted), cached clean blocks are
// discarded, and any latched write error dies with the data it
// described.
func TestCacheCrashDropsDirtyAndClearsErrors(t *testing.T) {
	f := newFixture(8)
	bad := &badDevice{f.dev}
	f.runProc(t, func(p *kernel.Proc) {
		ctx := p.Ctx()
		// One clean cached block, one dirty, one latched write error.
		b, err := f.c.Bread(ctx, bad, 1)
		if err != nil {
			t.Fatalf("bread: %v", err)
		}
		f.c.Brelse(ctx, b)
		b = f.c.Getblk(ctx, bad, 2)
		f.c.Bdwrite(ctx, b)
		b = f.c.Getblk(ctx, bad, 3)
		f.c.Bawrite(ctx, b)
		p.SleepFor(10 * sim.Millisecond)
		if f.c.WriteError(bad) == nil {
			t.Fatal("setup: no write error latched")
		}

		dirtyLost, discarded := f.c.Crash(bad)
		if dirtyLost != 1 {
			t.Errorf("dirtyLost = %d, want 1", dirtyLost)
		}
		if discarded < 2 {
			t.Errorf("discarded = %d, want >= 2", discarded)
		}
		if f.c.Peek(bad, 1) != nil || f.c.Peek(bad, 2) != nil {
			t.Error("crashed device still has cached blocks")
		}
		if err := f.c.WriteError(bad); err != nil {
			t.Errorf("write error survived the crash: %v", err)
		}
		if err := f.c.CheckInvariants(); err != nil {
			t.Errorf("invariants after crash: %v", err)
		}
	})
}
