package buf

import (
	"fmt"
	"sort"

	"kdp/internal/kernel"
	"kdp/internal/trace"
)

type devblk struct {
	dev Device
	blk int64
}

// Cache is the system buffer cache: a fixed pool of block-sized buffers
// shared by every mounted filesystem, as in 4.2BSD. The paper's
// measured system used a 3.2MB cache with 8KB blocks (400 buffers).
type Cache struct {
	k         *kernel.Kernel
	blockSize int
	hash      map[devblk]*Buf

	// LRU free list of reusable buffers (intrusive doubly linked).
	freeHead *Buf
	freeTail *Buf
	nfree    int
	nbuf     int

	// Sticky per-device write errors: a failed asynchronous write has
	// no caller left to report to (biodone's brelse invalidates the
	// buffer), so the first error per device is latched here and
	// surfaced at the next fsync/close/SyncAll. werrN counts every
	// async write failure per device, latched or not, so a flush can
	// tell a failure of its own writes from a latch that predates it.
	werrs map[Device]error
	werrN map[Device]int64

	// Readahead budget: at most raMax asynchronous readahead fetches
	// may be in flight at once, so a deep window cannot monopolize the
	// pool and starve demand fetches. raPending counts in-flight
	// readahead reads (issued, biodone not yet run).
	raMax     int
	raPending int

	// Stats
	hits          int64
	misses        int64
	reads         int64
	writes        int64
	delwrites     int64
	recycles      int64
	flushes       int64
	raIssued      int64
	raHits        int64
	raWaste       int64
	clusterRuns   int64
	clusterBlocks int64
}

// NewCache builds a cache of nbuf buffers of blockSize bytes each,
// attached to kernel k for sleeping/charging.
func NewCache(k *kernel.Kernel, nbuf, blockSize int) *Cache {
	if nbuf < 4 {
		panic("buf: cache needs at least 4 buffers")
	}
	if blockSize <= 0 {
		panic("buf: blockSize must be positive")
	}
	c := &Cache{
		k:         k,
		blockSize: blockSize,
		hash:      make(map[devblk]*Buf, nbuf),
		werrs:     make(map[Device]error),
		werrN:     make(map[Device]int64),
		nbuf:      nbuf,
		raMax:     defaultRaBudget(nbuf),
	}
	for i := 0; i < nbuf; i++ {
		b := &Buf{pool: c, Data: make([]byte, blockSize), Flags: BInval}
		c.freePush(b, false)
	}
	return c
}

// BlockSize returns the cache's buffer size.
func (c *Cache) BlockSize() int { return c.blockSize }

// NumBuffers returns the size of the buffer pool.
func (c *Cache) NumBuffers() int { return c.nbuf }

// FreeBuffers returns how many buffers are on the free list.
func (c *Cache) FreeBuffers() int { return c.nfree }

// defaultRaBudget derives the readahead budget from the pool size: an
// eighth of the buffers (at least two) may be speculative at once.
func defaultRaBudget(nbuf int) int {
	n := nbuf / 8
	if n < 2 {
		n = 2
	}
	return n
}

// SetReadaheadBudget caps how many asynchronous readahead fetches may
// be in flight at once. n <= 0 disables readahead issue entirely;
// values above the pool size are clamped so demand fetches can always
// find a buffer.
func (c *Cache) SetReadaheadBudget(n int) {
	if n < 0 {
		n = 0
	}
	if n > c.nbuf/2 {
		n = c.nbuf / 2
	}
	c.raMax = n
}

// ReadaheadBudget returns the in-flight readahead cap.
func (c *Cache) ReadaheadBudget() int { return c.raMax }

// ReadaheadPending returns how many readahead fetches are in flight.
func (c *Cache) ReadaheadPending() int { return c.raPending }

// Stats describes cache activity since boot.
type Stats struct {
	Hits, Misses                 int64
	Reads, Writes, DelayedWrites int64
	Recycles, Flushes            int64

	// Readahead accounting: asynchronous fetches issued ahead of any
	// reader, those later consumed by a lookup, and those evicted or
	// invalidated without ever being referenced.
	RaIssued, RaHits, RaWaste int64

	// Write clustering: contiguous dirty runs (>= 2 adjacent blocks)
	// issued back to back by flush passes, and the blocks they covered.
	ClusterRuns, ClusterBlocks int64
}

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits: c.hits, Misses: c.misses,
		Reads: c.reads, Writes: c.writes, DelayedWrites: c.delwrites,
		Recycles: c.recycles, Flushes: c.flushes,
		RaIssued: c.raIssued, RaHits: c.raHits, RaWaste: c.raWaste,
		ClusterRuns: c.clusterRuns, ClusterBlocks: c.clusterBlocks,
	}
}

// ---- free list management ----

func (c *Cache) freePush(b *Buf, front bool) {
	if b.onFree {
		panic("buf: freePush of buffer already on free list")
	}
	b.onFree = true
	c.nfree++
	if c.freeHead == nil {
		c.freeHead, c.freeTail = b, b
		return
	}
	if front {
		b.freeNext = c.freeHead
		c.freeHead.freePrev = b
		c.freeHead = b
	} else {
		b.freePrev = c.freeTail
		c.freeTail.freeNext = b
		c.freeTail = b
	}
}

func (c *Cache) freeRemove(b *Buf) {
	if !b.onFree {
		panic("buf: freeRemove of buffer not on free list")
	}
	if b.freePrev != nil {
		b.freePrev.freeNext = b.freeNext
	} else {
		c.freeHead = b.freeNext
	}
	if b.freeNext != nil {
		b.freeNext.freePrev = b.freePrev
	} else {
		c.freeTail = b.freePrev
	}
	b.freePrev, b.freeNext = nil, nil
	b.onFree = false
	c.nfree--
}

func (c *Cache) hashInsert(b *Buf) {
	key := devblk{b.Dev, b.Blkno}
	b.hashNext = c.hash[key]
	c.hash[key] = b
	b.hashed = true
}

func (c *Cache) hashRemove(b *Buf) {
	if !b.hashed {
		return
	}
	key := devblk{b.Dev, b.Blkno}
	cur := c.hash[key]
	if cur == b {
		if b.hashNext == nil {
			delete(c.hash, key)
		} else {
			c.hash[key] = b.hashNext
		}
	} else {
		for cur != nil && cur.hashNext != b {
			cur = cur.hashNext
		}
		if cur != nil {
			cur.hashNext = b.hashNext
		}
	}
	b.hashNext = nil
	b.hashed = false
}

// Peek returns the cached buffer for (dev, blkno) without claiming it,
// or nil. Used by fsync-style scans.
func (c *Cache) Peek(dev Device, blkno int64) *Buf {
	for b := c.hash[devblk{dev, blkno}]; b != nil; b = b.hashNext {
		if b.Dev == dev && b.Blkno == blkno && b.Flags&BInval == 0 {
			return b
		}
	}
	return nil
}

// incore reports whether (dev, blkno) is present in the cache.
func (c *Cache) incore(dev Device, blkno int64) *Buf {
	return c.Peek(dev, blkno)
}

// ---- getblk and friends ----

// Getblk returns a locked (BBusy) buffer for (dev, blkno). If the block
// is cached the cached buffer is returned (BDone will be set if its
// contents are valid). Otherwise an LRU buffer is recycled — pushing
// out a delayed write first if necessary — and returned with BDone
// clear. May sleep; the ctx must allow sleeping.
func (c *Cache) Getblk(ctx kernel.Ctx, dev Device, blkno int64) *Buf {
	b, err := c.getblk(ctx, dev, blkno, true, false)
	if err != nil {
		panic("buf: blocking getblk returned error: " + err.Error())
	}
	return b
}

// GetblkNB is the non-blocking getblk used at interrupt level (splice):
// it returns kernel.ErrWouldBlock instead of sleeping when the buffer
// is busy or no buffer can be recycled without waiting.
func (c *Cache) GetblkNB(ctx kernel.Ctx, dev Device, blkno int64) (*Buf, error) {
	return c.getblk(ctx, dev, blkno, false, false)
}

// getblk claims a buffer for (dev, blkno). quiet suppresses hit/miss
// accounting and trace events: the readahead issue path uses it so
// speculative fetches do not masquerade as demand lookups.
func (c *Cache) getblk(ctx kernel.Ctx, dev Device, blkno int64, canSleep, quiet bool) (*Buf, error) {
	if dev == nil {
		panic("buf: getblk on nil device")
	}
	if blkno < 0 || blkno >= dev.DevBlocks() {
		panic(fmt.Sprintf("buf: getblk block %d out of range on %s", blkno, dev.DevName()))
	}
	// The quiet (readahead-issue) path charges no lookup cost: it runs
	// inside a demand lookup whose BufHashCost is calibrated against the
	// measured system, where the per-block overhead already included
	// breada's probe — billing the probe separately would double-count.
	if !quiet {
		ctx.Use(c.k.Config().BufHashCost)
	}
	for {
		if b := c.incore(dev, blkno); b != nil {
			if b.Flags&BBusy != 0 {
				if !canSleep {
					return nil, kernel.ErrWouldBlock
				}
				b.Flags |= BWanted
				if err := ctx.Sleep(b, kernel.PRIBIO+1); err != nil {
					return nil, err
				}
				continue // re-lookup: the buffer may have been recycled
			}
			c.freeRemove(b)
			b.Flags |= BBusy
			if !quiet {
				var ra int64
				if b.Flags&BReadahead != 0 {
					// First demand reference to a readahead buffer:
					// consume the flag and count the hit as a
					// readahead hit (Arg2 = 1 in the event).
					b.Flags &^= BReadahead
					c.raHits++
					ra = 1
				}
				c.hits++
				c.k.TraceEmit(trace.KindBufHit, 0, blkno, ra, dev.DevName())
			}
			return b, nil
		}
		// Miss: recycle from the head of the free list.
		if !quiet {
			c.misses++
			c.k.TraceEmit(trace.KindBufMiss, 0, blkno, 0, dev.DevName())
		}
		b, err := c.reclaim(ctx, canSleep)
		if err != nil {
			return nil, err
		}
		if b == nil {
			continue // slept waiting for a free buffer; retry lookup
		}
		c.hashRemove(b)
		c.retireRA(b)
		b.Dev = dev
		b.Blkno = blkno
		b.Bcount = c.blockSize
		b.Flags = BBusy
		b.Err = nil
		b.Resid = 0
		b.Iodone = nil
		b.SpliceDesc = nil
		b.SpliceLblk = 0
		b.SplicePeer = nil
		c.hashInsert(b)
		return b, nil
	}
}

// reclaim pops a reusable buffer from the free list, starting delayed
// writes as it encounters them (as 4.2BSD getblk does). Returns nil
// with no error if it had to sleep (caller retries), or ErrWouldBlock
// in non-blocking mode when nothing is immediately reusable.
func (c *Cache) reclaim(ctx kernel.Ctx, canSleep bool) (*Buf, error) {
	for {
		b := c.freeHead
		if b == nil {
			if !canSleep {
				return nil, kernel.ErrWouldBlock
			}
			// Every buffer is busy: wait for a release.
			if err := ctx.Sleep(&c.freeHead, kernel.PRIBIO+1); err != nil {
				return nil, err
			}
			return nil, nil
		}
		if b.Flags&BDelwri != 0 {
			// Push the delayed write out asynchronously and look again.
			c.freeRemove(b)
			b.Flags |= BBusy
			c.Bawrite(ctx, b)
			continue
		}
		c.freeRemove(b)
		c.recycles++
		return b, nil
	}
}

// Brelse unlocks the buffer and returns it to the free list, waking any
// waiters, as 4.2BSD brelse(). Callable from interrupt context.
func (c *Cache) Brelse(ctx kernel.Ctx, b *Buf) {
	if b.Flags&BBusy == 0 {
		panic("buf: brelse of non-busy buffer " + b.String())
	}
	if b.Flags&BNoMem != 0 {
		panic("buf: brelse of header-only buffer (use ReleaseHeader)")
	}
	if b.Flags&BWanted != 0 {
		b.Flags &^= BWanted
		c.k.Wakeup(b)
	}
	if b.Flags&(BError|BInval) != 0 {
		// Unusable contents: recycle first and drop from the hash. A
		// readahead that errored (or was dropped by a crash) was never
		// consumed — account the waste before the flags are wiped.
		c.retireRA(b)
		c.hashRemove(b)
		b.Flags = BInval
		c.freePush(b, true)
	} else {
		front := b.Flags&BAge != 0
		b.Flags &^= BBusy | BAsync | BAge
		c.freePush(b, front)
	}
	// Anyone waiting for any free buffer.
	c.k.Wakeup(&c.freeHead)
}

// Bread returns a buffer containing block blkno of dev, reading it from
// the device if it is not cached. The returned buffer is busy; release
// with Brelse. Blocks until the I/O completes (biowait), so the ctx
// must allow sleeping.
func (c *Cache) Bread(ctx kernel.Ctx, dev Device, blkno int64) (*Buf, error) {
	b := c.Getblk(ctx, dev, blkno)
	if b.Flags&BDone != 0 {
		return b, nil
	}
	b.Flags |= BRead
	c.reads++
	dev.Strategy(b)
	if err := c.Biowait(ctx, b); err != nil {
		c.Brelse(ctx, b)
		return nil, err
	}
	return b, nil
}

// Breada is Bread plus an asynchronous read-ahead of rablkno (if valid
// and not already cached), mirroring 4.2BSD breada(). The readahead
// goes through StartReadahead, so it is subject to the cache's
// readahead budget and counted in the readahead statistics.
func (c *Cache) Breada(ctx kernel.Ctx, dev Device, blkno, rablkno int64) (*Buf, error) {
	if rablkno >= 0 {
		c.StartReadahead(ctx, dev, rablkno)
	}
	return c.Bread(ctx, dev, blkno)
}

// StartReadahead issues an asynchronous speculative read of (dev,
// blkno): the buffer is fetched with BReadahead set and released by
// biodone, staying cached until a demand lookup consumes it. It never
// sleeps. The return value reports whether the block is covered — true
// when it is already cached or an async read was started, false when
// the cache is out of readahead resources (budget exhausted, readahead
// disabled, or no buffer reclaimable without sleeping); callers
// extending a window should stop at the first false.
func (c *Cache) StartReadahead(ctx kernel.Ctx, dev Device, blkno int64) bool {
	if dev == nil || blkno < 0 || blkno >= dev.DevBlocks() {
		return false
	}
	if c.incore(dev, blkno) != nil {
		return true
	}
	if c.raMax <= 0 || c.raPending >= c.raMax {
		return false
	}
	b, err := c.getblk(ctx, dev, blkno, false, true)
	if err != nil {
		return false
	}
	if b.Flags&BDone != 0 {
		c.Brelse(ctx, b)
		return true
	}
	b.Flags |= BRead | BAsync | BReadahead
	c.raPending++
	c.raIssued++
	c.reads++
	c.k.TraceEmit(trace.KindBufReadahead, 0, blkno, int64(c.raPending), dev.DevName())
	dev.Strategy(b)
	return true
}

// retireRA clears BReadahead from a buffer that is being recycled or
// invalidated without ever having been referenced, counting the fetch
// as waste (KindBufReadahead with Arg2 = -1).
func (c *Cache) retireRA(b *Buf) {
	if b.Flags&BReadahead == 0 {
		return
	}
	b.Flags &^= BReadahead
	c.raWaste++
	name := ""
	if b.Dev != nil {
		name = b.Dev.DevName()
	}
	c.k.TraceEmit(trace.KindBufReadahead, 0, b.Blkno, -1, name)
}

// Bwrite writes the buffer synchronously: it waits for completion and
// releases the buffer.
func (c *Cache) Bwrite(ctx kernel.Ctx, b *Buf) error {
	b.Flags &^= BRead | BDelwri | BDone | BAsync
	c.writes++
	b.Dev.Strategy(b)
	err := c.Biowait(ctx, b)
	c.Brelse(ctx, b)
	return err
}

// Bawrite starts an asynchronous write; the buffer is released by
// biodone when the I/O completes. Callable from interrupt context.
func (c *Cache) Bawrite(ctx kernel.Ctx, b *Buf) {
	b.Flags &^= BRead | BDelwri | BDone
	b.Flags |= BAsync
	c.writes++
	b.Dev.Strategy(b)
}

// Bdwrite marks the buffer dirty (delayed write) and releases it; the
// data goes to disk when the buffer is recycled or flushed.
func (c *Cache) Bdwrite(ctx kernel.Ctx, b *Buf) {
	b.Flags |= BDelwri | BDone
	c.delwrites++
	c.Brelse(ctx, b)
}

// Biowait blocks until the buffer's I/O completes, returning any I/O
// error, as 4.2BSD biowait().
func (c *Cache) Biowait(ctx kernel.Ctx, b *Buf) error {
	for b.Flags&BDone == 0 {
		if err := ctx.Sleep(b, kernel.PRIBIO); err != nil {
			return err
		}
	}
	if b.Flags&BError != 0 {
		if b.Err != nil {
			return b.Err
		}
		return kernel.ErrNxIO
	}
	return nil
}

// Biodone is called by device drivers at interrupt level when a
// transfer finishes: it marks the buffer done and either invokes the
// BCall handler, releases an async buffer, or wakes sleepers in
// biowait. This is the hook the splice read/write handlers hang off.
func (c *Cache) Biodone(b *Buf) {
	if b.Flags&BDone != 0 {
		panic("buf: biodone on already-done buffer " + b.String())
	}
	b.Flags |= BDone
	if b.Flags&BReadahead != 0 {
		// A readahead fetch completed (or was dropped with an error by
		// a crash); it no longer holds a slot of the budget. The flag
		// itself survives until a lookup consumes it or the buffer is
		// retired.
		c.raPending--
	}
	if b.Flags&BCall != 0 {
		b.Flags &^= BCall
		if b.Iodone == nil {
			panic("buf: BCall set with nil Iodone")
		}
		b.Iodone(c.k, b)
		return
	}
	if b.Flags&BAsync != 0 {
		if b.Flags&(BError|BRead) == BError {
			// Failed async write: brelse below invalidates the buffer,
			// so latch the error or it is lost with the data.
			c.noteWriteError(b)
		}
		c.Brelse(c.k.IntrCtx(), b)
		return
	}
	c.k.Wakeup(b)
}

// noteWriteError latches the first async-write error seen on a device
// and counts the failure.
func (c *Cache) noteWriteError(b *Buf) {
	c.werrN[b.Dev]++
	if _, ok := c.werrs[b.Dev]; !ok {
		err := b.Err
		if err == nil {
			err = kernel.ErrIO
		}
		c.werrs[b.Dev] = err
	}
}

// WriteError returns the sticky write error latched for dev, if any,
// without consuming it.
func (c *Cache) WriteError(dev Device) error { return c.werrs[dev] }

// TakeWriteError returns and clears the sticky write error for dev. A
// latched error is reported exactly once, at the first fsync, close or
// SyncAll that looks; later syncs of unaffected data succeed again.
func (c *Cache) TakeWriteError(dev Device) error {
	err := c.werrs[dev]
	delete(c.werrs, dev)
	return err
}

// ---- splice support ----

// StartRead issues an asynchronous read of (dev, blkno) with iodone
// installed as the B_CALL completion handler — the paper's modified
// bread() with the biowait removed (§5.3). It never sleeps: at
// interrupt level it returns ErrWouldBlock if no buffer is available.
// If the block is already cached and valid, the handler is invoked
// immediately (from the caller's context) rather than via the device;
// hit reports that case.
func (c *Cache) StartRead(ctx kernel.Ctx, dev Device, blkno int64, desc any, lblk int64, iodone func(*kernel.Kernel, *Buf)) (hit bool, err error) {
	b, err := c.getblk(ctx, dev, blkno, ctx.CanSleep(), false)
	if err != nil {
		return false, err
	}
	b.SpliceDesc = desc
	b.SpliceLblk = lblk
	if b.Flags&BDone != 0 {
		// Cache hit: data already valid.
		iodone(c.k, b)
		return true, nil
	}
	b.Flags |= BRead | BCall
	b.Iodone = iodone
	c.reads++
	dev.Strategy(b)
	return false, nil
}

// AllocHeader returns a bare buffer header with no data memory — the
// paper's modified getblk() that "avoids allocating any real memory to
// the buffer, but rather only sets the b_bcount field" (§5.4). The
// header is not entered in the cache hash.
func (c *Cache) AllocHeader(dev Device, blkno int64) *Buf {
	return &Buf{
		pool:   c,
		Flags:  BBusy | BNoMem,
		Dev:    dev,
		Blkno:  blkno,
		Bcount: c.blockSize,
	}
}

// ReleaseHeader discards a header obtained from AllocHeader.
func (c *Cache) ReleaseHeader(b *Buf) {
	if b.Flags&BNoMem == 0 {
		panic("buf: ReleaseHeader of pooled buffer")
	}
	b.Data = nil
	b.SplicePeer = nil
	b.Flags = BInval
}

// ---- flushing / invalidation ----

// FlushDev writes out every delayed-write buffer belonging to dev. The
// writes are issued asynchronously back-to-back and then awaited, which
// is what a streaming fsync achieves on the real system. Returns the
// number of blocks written.
func (c *Cache) FlushDev(ctx kernel.Ctx, dev Device) (int, error) {
	if !ctx.CanSleep() {
		panic("buf: FlushDev requires process context")
	}
	var dirty []*Buf
	for b := c.freeHead; b != nil; b = b.freeNext {
		if b.Dev == dev && b.Flags&BDelwri != 0 {
			dirty = append(dirty, b)
		}
	}
	return c.flushBufs(ctx, dirty)
}

// FlushBlocks forces any delayed-write buffers among the given physical
// blocks of dev to the device and waits (per-file fsync, driven by the
// file's block map). Returns the number of blocks written.
func (c *Cache) FlushBlocks(ctx kernel.Ctx, dev Device, blknos []int64) (int, error) {
	if !ctx.CanSleep() {
		panic("buf: FlushBlocks requires process context")
	}
	var dirty []*Buf
	for _, bn := range blknos {
		if b := c.incore(dev, bn); b != nil && b.Flags&BDelwri != 0 && b.Flags&BBusy == 0 {
			dirty = append(dirty, b)
		}
	}
	return c.flushBufs(ctx, dirty)
}

// clusterDirty orders a dirty batch by (device, block number) so that
// adjacent dirty blocks reach the driver back to back — with the
// device's elevator they then service as one contiguous sweep — and
// emits a disk.cluster event for every run of two or more adjacent
// blocks.
func (c *Cache) clusterDirty(dirty []*Buf) {
	sort.Slice(dirty, func(i, j int) bool {
		if dirty[i].Dev != dirty[j].Dev {
			return dirty[i].Dev.DevName() < dirty[j].Dev.DevName()
		}
		return dirty[i].Blkno < dirty[j].Blkno
	})
	for i := 0; i < len(dirty); {
		j := i + 1
		for j < len(dirty) && dirty[j].Dev == dirty[i].Dev &&
			dirty[j].Blkno == dirty[j-1].Blkno+1 {
			j++
		}
		if n := j - i; n >= 2 {
			c.clusterRuns++
			c.clusterBlocks += int64(n)
			c.k.TraceEmit(trace.KindDiskCluster, 0, dirty[i].Blkno, int64(n), dirty[i].Dev.DevName())
		}
		i = j
	}
}

func (c *Cache) flushBufs(ctx kernel.Ctx, dirty []*Buf) (int, error) {
	c.flushes++
	c.k.TraceEmit(trace.KindBufFlush, 0, int64(len(dirty)), 0, "")
	c.clusterDirty(dirty)
	// Record the devices involved now: an errored buffer is recycled by
	// the time the drain loop observes it, so b.Dev is unreliable later.
	var devs []Device
	for _, b := range dirty {
		seen := false
		for _, d := range devs {
			if d == b.Dev {
				seen = true
				break
			}
		}
		if !seen && b.Dev != nil {
			devs = append(devs, b.Dev)
		}
	}
	before := make([]int64, len(devs))
	for i, dev := range devs {
		before[i] = c.werrN[dev]
	}
	for _, b := range dirty {
		c.freeRemove(b)
		b.Flags |= BBusy
		c.Bawrite(ctx, b)
	}
	// Wait for all of them to drain: async buffers are re-released to
	// the free list by biodone, clearing BDelwri on the way out.
	for _, b := range dirty {
		for b.Flags&BBusy != 0 {
			b.Flags |= BWanted
			if err := ctx.Sleep(b, kernel.PRIBIO+1); err != nil {
				return 0, err
			}
		}
	}
	// A failed write never shows on the buffer here: biodone's brelse
	// invalidates it (clearing BError) before this waiter runs; the
	// failure lands in the sticky per-device latch instead. Report a
	// failure of THIS flush's writes — detected by the per-device
	// failure count moving — without touching the latch itself: whether
	// the latch is consumed (fsync, close, SyncAll) or only observed
	// (msync) is the caller's policy, and a latch that predates this
	// flush belongs to whichever sync path reaches it first.
	for i, dev := range devs {
		if c.werrN[dev] == before[i] {
			continue
		}
		if err := c.werrs[dev]; err != nil {
			return 0, err
		}
		return 0, kernel.ErrIO
	}
	return len(dirty), nil
}

// StartFlushDaemon arms a periodic callout that pushes delayed-write
// buffers to their devices asynchronously, like the BSD update daemon's
// 30-second sync. It runs entirely at interrupt level (bawrite never
// sleeps), so it needs no process. Returns a stop function.
//
// The paper's experiments do not run it (they force write-through
// explicitly), but a production system would; it bounds how long dirty
// data sits in memory.
func (c *Cache) StartFlushDaemon(intervalTicks int) (stop func()) {
	if intervalTicks < 1 {
		intervalTicks = 1
	}
	stopped := false
	var arm func()
	arm = func() {
		c.k.Timeout(func() {
			if stopped {
				return
			}
			c.flushDirtyAsync()
			arm()
		}, intervalTicks)
	}
	arm()
	return func() { stopped = true }
}

// flushDirtyAsync starts an asynchronous write for every delayed-write
// buffer currently on the free list.
func (c *Cache) flushDirtyAsync() {
	var dirty []*Buf
	for b := c.freeHead; b != nil; b = b.freeNext {
		if b.Flags&BDelwri != 0 {
			dirty = append(dirty, b)
		}
	}
	if len(dirty) == 0 {
		return
	}
	c.flushes++
	c.k.TraceEmit(trace.KindBufFlush, 0, int64(len(dirty)), 0, "")
	c.clusterDirty(dirty)
	ctx := c.k.IntrCtx()
	for _, b := range dirty {
		c.freeRemove(b)
		b.Flags |= BBusy
		c.Bawrite(ctx, b)
	}
}

// InvalidateBlocks drops any cached copies of the given physical blocks
// of dev, writing delayed-write data out first. The splice write engine
// uses it on the destination's block table: spliced data reaches disk
// through memory-less headers, bypassing the cache, so a cached copy
// left behind would shadow the new data on later reads — and a dirty
// one would clobber it when eventually flushed.
func (c *Cache) InvalidateBlocks(ctx kernel.Ctx, dev Device, blknos []int64) error {
	if !ctx.CanSleep() {
		panic("buf: InvalidateBlocks requires process context")
	}
	for _, bn := range blknos {
		for {
			b := c.incore(dev, bn)
			if b == nil {
				break
			}
			if b.Flags&BBusy != 0 {
				b.Flags |= BWanted
				if err := ctx.Sleep(b, kernel.PRIBIO+1); err != nil {
					return err
				}
				continue // re-lookup: the buffer may have been recycled
			}
			if b.Flags&BDelwri != 0 {
				if _, err := c.flushBufs(ctx, []*Buf{b}); err != nil {
					return err
				}
				continue // re-check: the flush slept
			}
			c.freeRemove(b)
			c.hashRemove(b)
			c.retireRA(b)
			b.Flags = BInval
			b.Dev = nil
			c.freePush(b, true)
			break
		}
	}
	return nil
}

// Crash models the cache side of a power cut for dev (nil = every
// device): all buffered state is volatile, so every cached block is
// discarded without being written — delayed writes that have not hit
// the platter are simply lost, exactly the state fsck repair must put
// back together. The machine must be quiesced at the crash point (no
// transfer in progress, no process mid-operation); a busy buffer
// belonging to dev is a harness error and panics. Returns the number
// of delayed-write buffers lost and the total discarded.
func (c *Cache) Crash(dev Device) (dirtyLost, discarded int) {
	for _, b := range c.hash {
		for ; b != nil; b = b.hashNext {
			if (dev == nil || b.Dev == dev) && b.Flags&BBusy != 0 {
				panic("buf: crash with busy buffer " + b.String())
			}
		}
	}
	var victims []*Buf
	for b := c.freeHead; b != nil; b = b.freeNext {
		if (dev == nil || b.Dev == dev) && b.Flags&BInval == 0 {
			victims = append(victims, b)
		}
	}
	for _, b := range victims {
		if b.Flags&BDelwri != 0 {
			dirtyLost++
		}
		c.freeRemove(b)
		c.hashRemove(b)
		c.retireRA(b)
		b.Flags = BInval
		b.Dev = nil
		b.Err = nil
		c.freePush(b, true)
	}
	// The volume is being reset to its durable state: a latched write
	// error describes data that no longer exists.
	if dev == nil {
		c.werrs = make(map[Device]error)
	} else {
		delete(c.werrs, dev)
	}
	return dirtyLost, len(victims)
}

// InvalidateDev drops every non-busy cached block of dev (dirty blocks
// are written first), producing the "read cache cold start condition"
// the paper's experiments require (§6.1).
func (c *Cache) InvalidateDev(ctx kernel.Ctx, dev Device) error {
	if _, err := c.FlushDev(ctx, dev); err != nil {
		return err
	}
	var victims []*Buf
	for b := c.freeHead; b != nil; b = b.freeNext {
		if b.Dev == dev && b.Flags&BInval == 0 {
			victims = append(victims, b)
		}
	}
	for _, b := range victims {
		c.freeRemove(b)
		c.hashRemove(b)
		c.retireRA(b)
		b.Flags = BInval
		b.Dev = nil
		c.freePush(b, true)
	}
	return nil
}
