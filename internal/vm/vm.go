// Package vm is the virtual-memory subsystem: per-process address
// spaces, demand-paged mmap file I/O unified with the buffer cache,
// copy-on-write private mappings, and clock-algorithm page
// replacement.
//
// The design mirrors the unified caches the paper's era was converging
// on (SunOS 4, SVR4, later UVM): a mapped file is a single object per
// (device, inode) no matter how many processes map it; a page fault is
// a priced trap (Config.PageFaultCost + Config.PageMapCost) that pages
// in through the ordinary buffer cache (a pagein is a Bread, so mapped
// pages alias cache blocks and a shared-mapping read moves zero bytes
// through user/kernel copies); a dirty mapped page goes back as a
// delayed write, indistinguishable from write() data to the flush
// daemon, fsync, and the sticky per-device error latch.
//
// There is no page-daemon process: kernel.Run exits when the last
// process does, so a perpetual daemon would hang every machine.
// Instead the clock algorithm runs synchronously in the faulting
// process's context when the pool is full (reclaimFrame), which is the
// modeled equivalent of waking the pagedaemon at the low-water mark —
// the work is charged to the machine either way, and determinism is
// preserved because it happens at a fixed point in the fault path.
//
// Layering: vm imports only kernel (and trace/sim). The filesystem
// side of the contract is structural: *fs.File satisfies Backing and
// *Pool satisfies fs.Pager, so neither package imports the other.
package vm

import (
	"sort"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/trace"
)

// Backing is the per-object backing store a mapped file provides
// (implemented structurally by *fs.File). Pages are one filesystem
// block: the pool's page size must equal the backing block size, which
// is what lets a resident page alias its cache block.
type Backing interface {
	// MapRef takes a mapping reference: the object must stay valid
	// after the fd it was mapped from is closed.
	MapRef(ctx kernel.Ctx)
	// MapUnref drops the MapRef reference.
	MapUnref(ctx kernel.Ctx) error
	// MapKey identifies the object: (device name, inode number).
	MapKey() (dev string, ino uint32)
	// MapSize returns the current file size.
	MapSize(ctx kernel.Ctx) (int64, error)
	// MapSetSize extends the file size (never shrinks it).
	MapSetSize(ctx kernel.Ctx, n int64)
	// PageIn fills dst with page idx, returning the physical block it
	// aliases (0 for a hole/past-EOF zero page). With alloc set, holes
	// are allocated zero-filled first (write faults need a block).
	PageIn(ctx kernel.Ctx, idx int64, dst []byte, alloc bool) (int64, error)
	// PageOut writes a page back into the cache as a delayed write on
	// its aliased block.
	PageOut(ctx kernel.Ctx, blk int64, src []byte) error
	// PageFlush forces the whole file (data, inode, inode table) to
	// stable storage and surfaces any latched async write error:
	// msync's durability is fsync's.
	PageFlush(ctx kernel.Ctx) error
}

// page is one page frame. A page belongs either to an object (obj !=
// nil: a cached page of a mapped file, aliasing cache block blk) or to
// exactly one private mapping's shadow (obj == nil: an anonymous
// copy-on-write page, never paged out — there is no swap device in the
// model, so anonymous pages are resident for the mapping's lifetime).
type page struct {
	obj   *object
	idx   int64 // object page index (file offset / page size)
	blk   int64 // aliased physical block; 0 = zero-fill page, no block
	data  []byte
	dirty bool
	ref   bool // clock reference bit
	busy  bool // pagein/pageout in flight; waiters sleep on the page
	wired int  // transient pins held across scheduling points
}

// object is the per-(device, inode) set of resident pages, shared by
// every mapping of the file.
type object struct {
	backing  Backing
	dev      string
	ino      uint32
	pages    map[int64]*page
	mappings int
}

type objKey struct {
	dev string
	ino uint32
}

// mapping is one contiguous mmap region in one address space.
type mapping struct {
	addr   int64
	length int64 // bytes requested (the region spans whole pages)
	npages int64
	pgoff  int64 // object page index of the region's first page
	prot   int
	flags  int
	obj    *object
	shadow map[int64]*page // private COW pages, by object page index
	valid  map[int64]bool  // pages entered into this address space
	wok    map[int64]bool  // pages entered write-enabled
}

func (m *mapping) private() bool { return m.flags&kernel.MapPrivate != 0 }

// space is a process address space: its mappings and a bump-pointer
// virtual address allocator.
type space struct {
	pid  int
	brk  int64
	maps []*mapping // ascending addr (allocation order)
}

// mapBase is where mmap regions start in every address space.
const mapBase = int64(0x4000_0000)

// Pool is the machine's page pool and the kernel's
// AddressSpaceProvider. One Pool serves every process on the machine.
type Pool struct {
	k        *kernel.Kernel
	pageSize int
	nframes  int

	objects map[objKey]*object
	spaces  map[int]*space
	ring    []*page // resident pages in clock order
	hand    int

	damaged string // fault injection for invariant self-tests
}

// NewPool builds a page pool of frames pages of pageSize bytes.
// pageSize must equal the block size of every filesystem whose files
// get mapped (pages alias cache blocks one-to-one).
func NewPool(k *kernel.Kernel, frames, pageSize int) *Pool {
	if frames <= 0 || pageSize <= 0 {
		panic("vm: NewPool with nonpositive geometry")
	}
	return &Pool{
		k:        k,
		pageSize: pageSize,
		nframes:  frames,
		objects:  make(map[objKey]*object),
		spaces:   make(map[int]*space),
	}
}

// PageSize returns the page size in bytes.
func (v *Pool) PageSize() int { return v.pageSize }

// Frames returns the total number of page frames in the pool.
func (v *Pool) Frames() int { return v.nframes }

// Resident returns the number of frames currently in use.
func (v *Pool) Resident() int { return len(v.ring) }

var _ kernel.AddressSpaceProvider = (*Pool)(nil)

// ---- address-space management ----

func (v *Pool) spaceFor(p *kernel.Proc) *space {
	as := v.spaces[p.Pid()]
	if as == nil {
		as = &space{pid: p.Pid(), brk: mapBase}
		v.spaces[p.Pid()] = as
		// Leftover mappings are released when the process exits, so a
		// process can never leak page frames or inode references.
		p.AtExit(v.releaseSpace)
	}
	return as
}

func (v *Pool) releaseSpace(p *kernel.Proc) {
	as := v.spaces[p.Pid()]
	if as == nil {
		return
	}
	ctx := p.Ctx()
	for len(as.maps) > 0 {
		_ = v.unmap(ctx, p.Pid(), as, as.maps[0])
	}
	delete(v.spaces, p.Pid())
}

// Mmap implements kernel.AddressSpaceProvider. off must be
// page-aligned; the region spans whole pages. Exactly one of MapShared
// and MapPrivate must be given, and every mapping must be readable. A
// writable shared mapping requires a writable descriptor and extends
// the file to off+length up front (blocks are allocated lazily by the
// write faults that dirty them).
func (v *Pool) Mmap(p *kernel.Proc, fd int, off, length int64, prot, flags int) (int64, error) {
	ps := int64(v.pageSize)
	if length <= 0 || off < 0 || off%ps != 0 {
		return 0, kernel.ErrInval
	}
	shared := flags&kernel.MapShared != 0
	if shared == (flags&kernel.MapPrivate != 0) {
		return 0, kernel.ErrInval
	}
	if prot&^(kernel.ProtRead|kernel.ProtWrite) != 0 || prot&kernel.ProtRead == 0 {
		return 0, kernel.ErrInval
	}
	f, err := p.FD(fd)
	if err != nil {
		return 0, err
	}
	b, ok := f.Ops().(Backing)
	if !ok {
		return 0, kernel.ErrOpNotSupp
	}
	if shared && prot&kernel.ProtWrite != 0 && f.Flags()&0x3 == kernel.ORdOnly {
		return 0, kernel.ErrBadFD
	}
	ctx := p.Ctx()
	if shared && prot&kernel.ProtWrite != 0 {
		sz, serr := b.MapSize(ctx)
		if serr != nil {
			return 0, serr
		}
		if off+length > sz {
			b.MapSetSize(ctx, off+length)
		}
	}
	dev, ino := b.MapKey()
	key := objKey{dev, ino}
	obj := v.objects[key]
	if obj == nil {
		obj = &object{backing: b, dev: dev, ino: ino, pages: make(map[int64]*page)}
		b.MapRef(ctx)
		v.objects[key] = obj
	}
	obj.mappings++
	as := v.spaceFor(p)
	npages := (length + ps - 1) / ps
	m := &mapping{
		addr: as.brk, length: length, npages: npages, pgoff: off / ps,
		prot: prot, flags: flags, obj: obj,
		valid: make(map[int64]bool), wok: make(map[int64]bool),
	}
	if m.private() {
		m.shadow = make(map[int64]*page)
	}
	as.brk += (npages + 1) * ps // guard page between regions
	as.maps = append(as.maps, m)
	return m.addr, nil
}

// Munmap implements kernel.AddressSpaceProvider: whole mappings only
// (addr must be a value Mmap returned), as in the original mmap
// proposal. The last unmap of an object pages out its dirty pages as
// delayed writes and drops its frames and inode reference.
func (v *Pool) Munmap(p *kernel.Proc, addr int64) error {
	as := v.spaces[p.Pid()]
	if as == nil {
		return kernel.ErrInval
	}
	for _, m := range as.maps {
		if m.addr == addr {
			return v.unmap(p.Ctx(), p.Pid(), as, m)
		}
	}
	return kernel.ErrInval
}

// unmap tears down one published mapping. Every step that can cross a
// scheduling boundary — the priced pmap teardown and the pageout
// quiesce of a last-mapping object — runs while the mapping is still
// fully published, so an invariant probe between any two events never
// observes a half-dismantled pool; the structural excision afterwards
// sleeps nowhere.
func (v *Pool) unmap(ctx kernel.Ctx, pid int, as *space, m *mapping) error {
	// pmap teardown: one map manipulation per page entered.
	if n := len(m.valid) + len(m.shadow); n > 0 {
		ctx.Use(v.k.Config().PageMapCost * sim.Duration(n))
	}
	obj := m.obj
	var firstErr error
	if obj.mappings == 1 {
		// Last mapping: flush the object's dirty pages while it is
		// still published. quiesceObject returns off a sleep-free final
		// pass, so the pages are still clean and idle at the excision.
		firstErr = v.quiesceObject(ctx, pid, obj)
	}
	for i, q := range as.maps {
		if q == m {
			as.maps = append(as.maps[:i], as.maps[i+1:]...)
			break
		}
	}
	for _, idx := range sortedPages(m.shadow) {
		v.ringRemove(m.shadow[idx])
	}
	m.shadow = nil
	m.valid = nil
	m.wok = nil
	obj.mappings--
	if obj.mappings > 0 {
		return firstErr
	}
	for _, idx := range sortedPages(obj.pages) {
		pg := obj.pages[idx]
		delete(obj.pages, idx)
		v.ringRemove(pg)
	}
	delete(v.objects, objKey{obj.dev, obj.ino})
	// Dropping the inode reference may write back metadata (and can
	// sleep), but the object is fully gone from the pool by now.
	if err := obj.backing.MapUnref(ctx); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// quiesceObject pages out every dirty page of obj and waits out busy
// ones, repeating until one full pass finds the object clean and idle
// without sleeping. A pageout error is reported but the page is
// surrendered (delayed-write error semantics): the unmap discards the
// page either way, and retrying a failing device would never converge.
func (v *Pool) quiesceObject(ctx kernel.Ctx, pid int, obj *object) error {
	var firstErr error
	for {
		clean := true
		for _, idx := range sortedPages(obj.pages) {
			pg := obj.pages[idx]
			for pg != nil && pg.busy {
				clean = false
				_ = ctx.Sleep(pg, kernel.PSWP+1)
				pg = obj.pages[idx] // may have been evicted while we slept
			}
			if pg == nil || !pg.dirty {
				continue
			}
			clean = false
			if err := v.pageoutPage(ctx, pid, pg); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				pg.dirty = false
			}
		}
		if clean {
			return firstErr
		}
	}
}

// Msync implements kernel.AddressSpaceProvider: the mapping's object
// is paged out and the backing file is synced in full (data, inode,
// inode table), so an Msync'd mapping has exactly fsync's crash
// durability — and, like fsync, Msync surfaces the sticky per-device
// write error latched by any earlier failed async pageout.
func (v *Pool) Msync(p *kernel.Proc, addr int64) error {
	as := v.spaces[p.Pid()]
	if as == nil {
		return kernel.ErrInval
	}
	for _, m := range as.maps {
		if m.addr == addr {
			ctx := p.Ctx()
			if err := v.pageoutObject(ctx, p.Pid(), m.obj); err != nil {
				return err
			}
			return m.obj.backing.PageFlush(ctx)
		}
	}
	return kernel.ErrInval
}

// ---- fs.Pager (structural) ----

// PageoutObject writes every dirty resident page of (dev, ino) into
// the buffer cache as delayed writes. Implements fs.Pager, which is
// how fsync and SyncAll reach mapped dirty data.
func (v *Pool) PageoutObject(ctx kernel.Ctx, dev string, ino uint32) error {
	obj := v.objects[objKey{dev, ino}]
	if obj == nil {
		return nil
	}
	return v.pageoutObject(ctx, 0, obj)
}

// DirtyInos implements fs.Pager: the inodes on dev with dirty resident
// pages, ascending.
func (v *Pool) DirtyInos(dev string) []uint32 {
	var inos []uint32
	for key, obj := range v.objects {
		if key.dev != dev {
			continue
		}
		for _, pg := range obj.pages {
			if pg.dirty {
				inos = append(inos, key.ino)
				break
			}
		}
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	return inos
}

func (v *Pool) pageoutObject(ctx kernel.Ctx, pid int, obj *object) error {
	for _, idx := range sortedPages(obj.pages) {
		pg := obj.pages[idx]
		for pg != nil && pg.busy {
			_ = ctx.Sleep(pg, kernel.PSWP+1)
			pg = obj.pages[idx] // may have been evicted while we slept
		}
		if pg == nil || !pg.dirty {
			continue
		}
		if err := v.pageoutPage(ctx, pid, pg); err != nil {
			return err
		}
	}
	return nil
}

// pageoutPage writes one dirty page back as a delayed write. The dirty
// bit is cleared before the write so a store landing while the cache
// sleeps re-dirties the page rather than being lost.
func (v *Pool) pageoutPage(ctx kernel.Ctx, pid int, pg *page) error {
	pg.busy = true
	pg.dirty = false
	err := pg.obj.backing.PageOut(ctx, pg.blk, pg.data)
	pg.busy = false
	v.k.Wakeup(pg)
	if err != nil {
		pg.dirty = true
		return err
	}
	v.k.TraceEmit(trace.KindVMPageout, pid, pg.idx, pg.blk, pg.obj.dev)
	return nil
}

// ---- user memory access (fault handling) ----

// MemRead implements kernel.AddressSpaceProvider: user-mode loads from
// [addr, addr+len(dst)), which must lie within one mapping. Faults are
// taken and priced; the copy itself is a user-mode load loop the
// caller models (that is mmap's entire advantage: no copyout).
func (v *Pool) MemRead(p *kernel.Proc, addr int64, dst []byte) error {
	if len(dst) == 0 {
		return nil
	}
	m := v.findMapping(p.Pid(), addr, int64(len(dst)))
	if m == nil {
		return kernel.ErrInval
	}
	ps := int64(v.pageSize)
	for done := int64(0); done < int64(len(dst)); {
		rel := addr + done - m.addr
		idx := m.pgoff + rel/ps
		poff := rel % ps
		n := ps - poff
		if rem := int64(len(dst)) - done; n > rem {
			n = rem
		}
		pg, err := v.touch(p, m, idx, false)
		if err != nil {
			return err
		}
		copy(dst[done:done+n], pg.data[poff:poff+n])
		v.unwire(pg)
		done += n
	}
	return nil
}

// MemWrite implements kernel.AddressSpaceProvider: user-mode stores.
// The dirty bit is set after the bytes land so a concurrent pageout
// can never lose a store.
func (v *Pool) MemWrite(p *kernel.Proc, addr int64, src []byte) error {
	if len(src) == 0 {
		return nil
	}
	m := v.findMapping(p.Pid(), addr, int64(len(src)))
	if m == nil {
		return kernel.ErrInval
	}
	ps := int64(v.pageSize)
	for done := int64(0); done < int64(len(src)); {
		rel := addr + done - m.addr
		idx := m.pgoff + rel/ps
		poff := rel % ps
		n := ps - poff
		if rem := int64(len(src)) - done; n > rem {
			n = rem
		}
		pg, err := v.touch(p, m, idx, true)
		if err != nil {
			return err
		}
		copy(pg.data[poff:poff+n], src[done:done+n])
		pg.dirty = true
		v.unwire(pg)
		done += n
	}
	return nil
}

func (v *Pool) findMapping(pid int, addr, length int64) *mapping {
	as := v.spaces[pid]
	if as == nil {
		return nil
	}
	for _, m := range as.maps {
		if addr >= m.addr && addr+length <= m.addr+m.npages*int64(v.pageSize) {
			return m
		}
	}
	return nil
}

// touch resolves one page for an access, taking (and pricing) a fault
// if the page is not entered with sufficient protection. The returned
// page is resident, correct, wired (pinned across the caller's copy;
// pair with unwire), and for write accesses writable.
//
// Fault taxonomy, each emitting one vm.fault event:
//   - major: page not resident, filled by PageIn through the cache
//     (adds a vm.pagein event when a block is read);
//   - minor: page resident in the object but not entered in this
//     address space — pmap work only, no I/O;
//   - protection: entered read-only, store write-enables it (a shared
//     mapping's first store to a page, which is also where the page's
//     backing block gets allocated if it was a hole);
//   - COW: store to a private mapping copies the object page into an
//     anonymous page owned by that mapping alone (vm.cow event).
func (v *Pool) touch(p *kernel.Proc, m *mapping, idx int64, write bool) (*page, error) {
	if write && m.prot&kernel.ProtWrite == 0 {
		return nil, kernel.ErrInval // protection violation (SIGSEGV analogue)
	}
	if m.private() {
		if pg := m.shadow[idx]; pg != nil {
			pg.ref = true
			pg.wired++
			return pg, nil
		}
	}
	if m.valid[idx] {
		if pg := m.obj.pages[idx]; pg != nil && !pg.busy {
			if !write || (m.wok[idx] && !m.private()) {
				pg.ref = true
				pg.wired++
				return pg, nil
			}
		}
	}
	// Page fault.
	ctx := p.Ctx()
	cfg := v.k.Config()
	mode := int64(0)
	if write {
		mode = 1
	}
	v.k.TraceEmit(trace.KindVMFault, p.Pid(), idx, mode, m.obj.dev)
	ctx.Use(cfg.PageFaultCost)
	// A store through a shared mapping needs a block to page out to,
	// so holes are allocated at write-fault time.
	pg, err := v.residentPage(p, m.obj, idx, write && !m.private())
	if err != nil {
		return nil, err
	}
	if write && m.private() {
		// Copy-on-write: break sharing into an anonymous page.
		npg, err := v.allocPage(ctx)
		if err != nil {
			v.unwire(pg)
			return nil, err
		}
		copy(npg.data, pg.data)
		v.unwire(pg)
		ctx.Use(cfg.BcopyCost(v.pageSize))
		npg.idx = idx
		m.shadow[idx] = npg
		m.valid[idx] = true
		v.k.TraceEmit(trace.KindVMCOW, p.Pid(), idx, int64(v.pageSize), m.obj.dev)
		ctx.Use(cfg.PageMapCost)
		return npg, nil
	}
	m.valid[idx] = true
	if write {
		m.wok[idx] = true
	}
	ctx.Use(cfg.PageMapCost)
	pg.ref = true
	return pg, nil
}

func (v *Pool) unwire(pg *page) {
	pg.wired--
	if pg.wired < 0 {
		panic("vm: unwire of unwired page")
	}
}

// residentPage returns object page idx resident and wired, paging it
// in if needed. A page already mid-pagein by another process is waited
// on rather than read twice.
func (v *Pool) residentPage(p *kernel.Proc, obj *object, idx int64, alloc bool) (*page, error) {
	ctx := p.Ctx()
	for {
		pg := obj.pages[idx]
		if pg == nil {
			break
		}
		if !pg.busy {
			pg.wired++
			return pg, nil
		}
		_ = ctx.Sleep(pg, kernel.PSWP+1)
	}
	pg, err := v.allocPage(ctx)
	if err != nil {
		return nil, err
	}
	pg.obj, pg.idx = obj, idx
	pg.busy = true
	obj.pages[idx] = pg
	blk, err := obj.backing.PageIn(ctx, idx, pg.data, alloc)
	pg.busy = false
	v.k.Wakeup(pg)
	if err != nil {
		delete(obj.pages, idx)
		v.unwire(pg)
		v.ringRemove(pg)
		return nil, err
	}
	pg.blk = blk
	if blk != 0 {
		v.k.TraceEmit(trace.KindVMPagein, p.Pid(), idx, blk, obj.dev)
	}
	return pg, nil
}

// ---- page pool / clock replacement ----

// allocPage takes a free frame, running the clock algorithm first when
// the pool is full. The new page is born wired (the caller is about to
// fill it) with its reference bit set.
func (v *Pool) allocPage(ctx kernel.Ctx) (*page, error) {
	if len(v.ring) >= v.nframes {
		if err := v.reclaimFrame(ctx); err != nil {
			return nil, err
		}
	}
	pg := &page{data: make([]byte, v.pageSize), ref: true, wired: 1}
	v.ring = append(v.ring, pg)
	return pg, nil
}

// reclaimFrame is the modeled pagedaemon: a two-handed-clock sweep run
// in the faulting process's context when the pool is tight. Referenced
// pages get a second chance (ref bit cleared), dirty victims are paged
// out (a delayed write — the update daemon carries it to the platter),
// and the first clean unreferenced victim is evicted. Busy, wired and
// anonymous pages are skipped: there is no swap, so COW pages stay
// resident until their mapping goes away. ErrNoMem when two full
// sweeps find nothing evictable.
func (v *Pool) reclaimFrame(ctx kernel.Ctx) error {
	limit := 2*len(v.ring) + 2
	for scanned := 0; scanned < limit; scanned++ {
		if len(v.ring) == 0 {
			break
		}
		if v.hand >= len(v.ring) {
			v.hand = 0
		}
		pg := v.ring[v.hand]
		if pg.busy || pg.wired > 0 || pg.obj == nil {
			v.hand++
			continue
		}
		if pg.ref {
			pg.ref = false
			v.hand++
			continue
		}
		if pg.dirty {
			if err := v.pageoutPage(ctx, 0, pg); err != nil {
				v.hand++
				continue
			}
			// The pageout slept in the cache; re-check the victim.
			if pg.busy || pg.wired > 0 || pg.ref || pg.dirty {
				v.hand++
				continue
			}
		}
		delete(pg.obj.pages, pg.idx)
		v.ringRemove(pg)
		return nil
	}
	return kernel.ErrNoMem
}

func (v *Pool) ringRemove(pg *page) {
	for i, q := range v.ring {
		if q == pg {
			v.ring = append(v.ring[:i], v.ring[i+1:]...)
			if i < v.hand {
				v.hand--
			}
			return
		}
	}
	panic("vm: ringRemove of page not in ring")
}

func sortedPages[V any](m map[int64]V) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
