package vm_test

import (
	"bytes"
	"testing"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/trace"
	"kdp/internal/vm"
)

const bsize = 8192

type rig struct {
	k    *kernel.Kernel
	c    *buf.Cache
	d    *disk.Disk
	fsy  *fs.FS
	pool *vm.Pool
	tr   *trace.Tracer
}

// newRig formats and mounts a filesystem on a RAM disk at /v, with a
// page pool of the given size registered as the kernel's VM provider
// and the filesystem's pager.
func newRig(t *testing.T, frames int) *rig {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 1200 * sim.Second
	k := kernel.New(cfg)
	r := &rig{k: k}
	r.tr = k.StartTrace(nil)
	r.c = buf.NewCache(k, 64, bsize)
	r.d = disk.New(k, disk.RAMDisk(600, bsize))
	r.d.SetCache(r.c)
	if _, err := fs.Mkfs(r.d, 128); err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	r.pool = vm.NewPool(k, frames, bsize)
	k.SetVM(r.pool)
	return r
}

func (r *rig) run(t *testing.T, name string, fn func(p *kernel.Proc)) {
	t.Helper()
	r.k.Spawn(name, func(p *kernel.Proc) {
		if r.fsy == nil {
			f, err := fs.Mount(p.Ctx(), r.c, r.d)
			if err != nil {
				t.Errorf("mount: %v", err)
				return
			}
			f.SetPager(r.pool)
			r.fsy = f
			r.k.Mount("/v", f)
		}
		fn(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*7 + seed
	}
	return p
}

// writeFile creates path with the given content through write().
func writeFile(t *testing.T, p *kernel.Proc, path string, data []byte) {
	t.Helper()
	fd, err := p.Open(path, kernel.OCreat|kernel.ORdWr|kernel.OTrunc)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if n, err := p.Write(fd, data); err != nil || n != len(data) {
		t.Fatalf("write %s: n=%d err=%v", path, n, err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

// readFile reads path in full through read().
func readFile(t *testing.T, p *kernel.Proc, path string) []byte {
	t.Helper()
	fd, err := p.Open(path, kernel.ORdOnly)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	sz, err := p.FileSize(fd)
	if err != nil {
		t.Fatalf("fstat %s: %v", path, err)
	}
	out := make([]byte, sz)
	if n, err := p.Read(fd, out); err != nil || int64(n) != sz {
		t.Fatalf("read %s: n=%d err=%v", path, n, err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
	return out
}

func TestMmapReadMatchesFile(t *testing.T) {
	r := newRig(t, 32)
	data := pattern(3*bsize+500, 1)
	r.run(t, "setup", func(p *kernel.Proc) {
		writeFile(t, p, "/v/a", data)
	})
	r.run(t, "mmap", func(p *kernel.Proc) {
		fd, err := p.Open("/v/a", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		addr, err := p.Mmap(fd, 0, int64(len(data)), kernel.ProtRead, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		// The mapping must survive closing the descriptor.
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		got := make([]byte, len(data))
		if err := p.MemRead(addr, got); err != nil {
			t.Fatalf("memread: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Error("mapped read differs from written data")
		}
		// Bytes past EOF inside the last page read as zeros.
		tail := make([]byte, 100)
		if err := p.MemRead(addr+int64(len(data)), tail); err != nil {
			t.Fatalf("memread past EOF: %v", err)
		}
		for i, b := range tail {
			if b != 0 {
				t.Fatalf("tail[%d] = %d, want 0", i, b)
			}
		}
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
	})
	m := r.tr.Metrics()
	if m.VMFaults == 0 || m.VMPageins == 0 {
		t.Errorf("faults=%d pageins=%d, want both nonzero", m.VMFaults, m.VMPageins)
	}
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestMmapSharedWriteVisibleToRead(t *testing.T) {
	r := newRig(t, 32)
	data := pattern(2*bsize+100, 9)
	r.run(t, "mcp", func(p *kernel.Proc) {
		fd, err := p.Open("/v/b", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		addr, err := p.Mmap(fd, 0, int64(len(data)), kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := p.MemWrite(addr, data); err != nil {
			t.Fatalf("memwrite: %v", err)
		}
		// A mapped store is visible to a mapped load before writeback.
		probe := make([]byte, 64)
		if err := p.MemRead(addr+int64(bsize), probe); err != nil {
			t.Fatalf("memread: %v", err)
		}
		if !bytes.Equal(probe, data[bsize:bsize+64]) {
			t.Error("mapped load does not see mapped store")
		}
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
		// Unmap pages dirty data out into the cache: read() sees it.
		if got := readFile(t, p, "/v/b"); !bytes.Equal(got, data) {
			t.Error("read() does not see mmap stores after munmap")
		}
	})
	m := r.tr.Metrics()
	if m.VMPageouts == 0 {
		t.Errorf("pageouts = 0, want nonzero")
	}
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestMmapGrowsFileAndZeroFillsGap(t *testing.T) {
	r := newRig(t, 32)
	tail := pattern(200, 3)
	off := int64(2 * bsize) // page-aligned offset mapping past EOF
	r.run(t, "grow", func(p *kernel.Proc) {
		writeFile(t, p, "/v/g", pattern(100, 5))
		fd, err := p.Open("/v/g", kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		addr, err := p.Mmap(fd, off, int64(len(tail)), kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if sz, _ := p.FileSize(fd); sz != off+int64(len(tail)) {
			t.Errorf("size = %d, want %d (mmap extends a writable shared mapping)", sz, off+int64(len(tail)))
		}
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := p.MemWrite(addr, tail); err != nil {
			t.Fatalf("memwrite: %v", err)
		}
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
		got := readFile(t, p, "/v/g")
		want := make([]byte, off+int64(len(tail)))
		copy(want, pattern(100, 5))
		copy(want[off:], tail)
		if !bytes.Equal(got, want) {
			t.Error("grown file content wrong (hole must read as zeros)")
		}
	})
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestPrivateCOWIsolation(t *testing.T) {
	r := newRig(t, 32)
	orig := pattern(2*bsize, 11)
	junk := pattern(bsize, 77)
	r.run(t, "cow", func(p *kernel.Proc) {
		writeFile(t, p, "/v/c", orig)
		fd, err := p.Open("/v/c", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		// Private writable mapping on a read-only fd is legal: the
		// stores never reach the file.
		priv, err := p.Mmap(fd, 0, int64(len(orig)), kernel.ProtRead|kernel.ProtWrite, kernel.MapPrivate)
		if err != nil {
			t.Fatalf("mmap private: %v", err)
		}
		shrd, err := p.Mmap(fd, 0, int64(len(orig)), kernel.ProtRead, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap shared: %v", err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := p.MemWrite(priv, junk); err != nil {
			t.Fatalf("memwrite: %v", err)
		}
		// The private view sees the store; page two is still shared.
		got := make([]byte, len(orig))
		if err := p.MemRead(priv, got); err != nil {
			t.Fatalf("memread priv: %v", err)
		}
		if !bytes.Equal(got[:bsize], junk) || !bytes.Equal(got[bsize:], orig[bsize:]) {
			t.Error("private view wrong after COW")
		}
		// The shared view and the file are untouched.
		if err := p.MemRead(shrd, got); err != nil {
			t.Fatalf("memread shrd: %v", err)
		}
		if !bytes.Equal(got, orig) {
			t.Error("shared view sees private store")
		}
		// Msync on a private mapping is a no-op success.
		if err := p.Msync(priv); err != nil {
			t.Errorf("msync private: %v", err)
		}
		if err := p.Munmap(priv); err != nil {
			t.Fatalf("munmap priv: %v", err)
		}
		if err := p.Munmap(shrd); err != nil {
			t.Fatalf("munmap shrd: %v", err)
		}
		if got := readFile(t, p, "/v/c"); !bytes.Equal(got, orig) {
			t.Error("file modified through private mapping")
		}
	})
	m := r.tr.Metrics()
	if m.VMCows == 0 || m.VMCowBytes != m.VMCows*bsize {
		t.Errorf("cows=%d cow_bytes=%d", m.VMCows, m.VMCowBytes)
	}
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestPoolPressureEvictsAndRefaults(t *testing.T) {
	r := newRig(t, 4) // 4-frame pool, 12-page file: heavy pressure
	data := pattern(12*bsize, 21)
	r.run(t, "pressure", func(p *kernel.Proc) {
		writeFile(t, p, "/v/big", data)
		fd, err := p.Open("/v/big", kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		addr, err := p.Mmap(fd, 0, int64(len(data)), kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		got := make([]byte, len(data))
		if err := p.MemRead(addr, got); err != nil {
			t.Fatalf("memread: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Error("first pass differs")
		}
		if res := r.pool.Resident(); res > 4 {
			t.Errorf("resident = %d > pool size 4", res)
		}
		faults1 := r.tr.Metrics().VMFaults
		// Second pass refaults evicted pages.
		if err := p.MemRead(addr, got); err != nil {
			t.Fatalf("memread 2: %v", err)
		}
		if r.tr.Metrics().VMFaults <= faults1 {
			t.Error("no refaults under pool pressure")
		}
		// Dirty the whole file: the clock must page out victims.
		if err := p.MemWrite(addr, data); err != nil {
			t.Fatalf("memwrite: %v", err)
		}
		if r.tr.Metrics().VMPageouts == 0 {
			t.Error("no reclaim pageouts under dirty pressure")
		}
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
		if got := readFile(t, p, "/v/big"); !bytes.Equal(got, data) {
			t.Error("content wrong after eviction/pageout cycles")
		}
	})
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// Satellite regression: a pageout that hits a device write error must
// latch the sticky per-device flag exactly like a delayed write — the
// next msync reports ErrIO. msync only observes the latch: it must not
// consume it out from under a concurrent fsync, which is the call the
// latch exists to serve (and which consumes it exactly once).
func TestMsyncSurfacesPageoutWriteError(t *testing.T) {
	r := newRig(t, 32)
	r.run(t, "werr", func(p *kernel.Proc) {
		fd, err := p.Open("/v/e", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		addr, err := p.Mmap(fd, 0, bsize, kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := p.MemWrite(addr, pattern(bsize, 30)); err != nil {
			t.Fatalf("memwrite: %v", err)
		}
		// The write fault allocated the backing block; make writes to
		// it fail.
		f, err := p.FD(fd)
		if err != nil {
			t.Fatalf("fd: %v", err)
		}
		blks, err := f.Ops().(*fs.File).Inode().PhysicalBlocks(p.Ctx(), 1, false)
		if err != nil || blks[0] == 0 {
			t.Fatalf("block table: %v %v", blks, err)
		}
		r.d.InjectFault(int64(blks[0]), false, true, -1)
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := p.Msync(addr); err != kernel.ErrIO {
			t.Errorf("msync = %v, want ErrIO", err)
		}
		r.d.ClearFaults()
		// The latch survived the msync: a second msync (clean flush,
		// fault withdrawn) still observes it.
		if err := p.Msync(addr); err != kernel.ErrIO {
			t.Errorf("second msync = %v, want ErrIO (msync must not consume the latch)", err)
		}
		// fsync is the consumer: it reports the latched error exactly
		// once, even though msync reported it twice already.
		fd2, err := p.Open("/v/e", kernel.ORdWr)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if err := p.Fsync(fd2); err != kernel.ErrIO {
			t.Errorf("fsync = %v, want ErrIO (latch belongs to fsync)", err)
		}
		if err := p.Fsync(fd2); err != nil {
			t.Errorf("second fsync = %v, want nil (latch consumed)", err)
		}
		if err := p.Close(fd2); err != nil {
			t.Fatalf("close 2: %v", err)
		}
		// With the latch consumed, msync and munmap are clean.
		if err := p.Msync(addr); err != nil {
			t.Errorf("msync after consume = %v, want nil", err)
		}
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
	})
	if r.d.Errors() == 0 {
		t.Error("no injected errors consumed")
	}
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// Satellite regression: pageout ErrIO through the *delayed-write* path
// (munmap pages out, the later flush fails) surfaces at SyncAll, like
// any failed delayed write.
func TestPageoutDelayedWriteErrorLatch(t *testing.T) {
	r := newRig(t, 32)
	r.run(t, "latch", func(p *kernel.Proc) {
		fd, err := p.Open("/v/l", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		addr, err := p.Mmap(fd, 0, bsize, kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := p.MemWrite(addr, pattern(bsize, 31)); err != nil {
			t.Fatalf("memwrite: %v", err)
		}
		f, _ := p.FD(fd)
		blks, err := f.Ops().(*fs.File).Inode().PhysicalBlocks(p.Ctx(), 1, false)
		if err != nil || blks[0] == 0 {
			t.Fatalf("block table: %v %v", blks, err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		r.d.InjectFault(int64(blks[0]), false, true, 1)
		// Munmap converts the dirty page to a delayed write; no disk
		// I/O yet, so no error yet.
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
		// The flush hits the bad block and the error surfaces.
		if err := r.fsy.SyncAll(p.Ctx()); err != kernel.ErrIO {
			t.Errorf("SyncAll = %v, want ErrIO", err)
		}
	})
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// Satellite regression: disk.Crash while the pool holds dirty mapped
// pages must not corrupt the page pool — invariants hold throughout
// and teardown drains cleanly.
func TestDiskCrashDuringPageoutPoolSafe(t *testing.T) {
	r := newRig(t, 4)
	data := pattern(8*bsize, 41)
	r.run(t, "crash", func(p *kernel.Proc) {
		writeFile(t, p, "/v/x", data)
		fd, err := p.Open("/v/x", kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		addr, err := p.Mmap(fd, 0, int64(len(data)), kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Dirty the first half: reclaim pageouts start flowing.
		if err := p.MemWrite(addr, data[:4*bsize]); err != nil {
			t.Fatalf("memwrite: %v", err)
		}
		// Power cut mid-stream: queued requests drop, the cache
		// discards every buffer (dirty pageouts included).
		r.d.Crash()
		r.c.Crash(r.d)
		if err := r.pool.CheckInvariants(); err != nil {
			t.Fatalf("invariants after crash: %v", err)
		}
		// The pool keeps working: more stores, more pageouts.
		if err := p.MemWrite(addr+4*int64(bsize), data[4*bsize:]); err != nil {
			t.Fatalf("memwrite after crash: %v", err)
		}
		if err := r.pool.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap after crash: %v", err)
		}
	})
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestProcExitReleasesMappings(t *testing.T) {
	r := newRig(t, 32)
	data := pattern(bsize+10, 51)
	r.run(t, "leaker", func(p *kernel.Proc) {
		fd, err := p.Open("/v/z", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		addr, err := p.Mmap(fd, 0, int64(len(data)), kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := p.MemWrite(addr, data); err != nil {
			t.Fatalf("memwrite: %v", err)
		}
		// Exit without munmap: the AtExit hook must release the
		// mapping, page out the dirty data, and drop the inode ref.
	})
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain after leaky exit: %v", err)
	}
	r.run(t, "verify", func(p *kernel.Proc) {
		if got := readFile(t, p, "/v/z"); !bytes.Equal(got, data) {
			t.Error("data leaked with the mapping")
		}
	})
}

func TestMmapArgumentErrors(t *testing.T) {
	r := newRig(t, 8)
	r.run(t, "args", func(p *kernel.Proc) {
		writeFile(t, p, "/v/f", pattern(bsize, 61))
		fd, err := p.Open("/v/f", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		cases := []struct {
			name              string
			fd                int
			off, length       int64
			prot, flags, want int
		}{
			{"bad fd", 99, 0, bsize, kernel.ProtRead, kernel.MapShared, 0},
			{"zero length", fd, 0, 0, kernel.ProtRead, kernel.MapShared, 0},
			{"unaligned off", fd, 100, bsize, kernel.ProtRead, kernel.MapShared, 0},
			{"both types", fd, 0, bsize, kernel.ProtRead, kernel.MapShared | kernel.MapPrivate, 0},
			{"no type", fd, 0, bsize, kernel.ProtRead, 0, 0},
			{"no read prot", fd, 0, bsize, kernel.ProtWrite, kernel.MapShared, 0},
			{"shared write on rdonly fd", fd, 0, bsize, kernel.ProtRead | kernel.ProtWrite, kernel.MapShared, 0},
		}
		for _, tc := range cases {
			if _, err := p.Mmap(tc.fd, tc.off, tc.length, tc.prot, tc.flags); err == nil {
				t.Errorf("%s: mmap succeeded, want error", tc.name)
			}
		}
		// Valid mapping for access-error checks.
		addr, err := p.Mmap(fd, 0, bsize, kernel.ProtRead, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := p.MemWrite(addr, []byte{1}); err != kernel.ErrInval {
			t.Errorf("store to read-only mapping = %v, want ErrInval", err)
		}
		if err := p.MemRead(addr+2*bsize, make([]byte, 8)); err != kernel.ErrInval {
			t.Errorf("load outside mapping = %v, want ErrInval", err)
		}
		if err := p.Munmap(addr + 4096); err != kernel.ErrInval {
			t.Errorf("munmap mid-mapping = %v, want ErrInval", err)
		}
		if err := p.Msync(addr + 4096); err != kernel.ErrInval {
			t.Errorf("msync mid-mapping = %v, want ErrInval", err)
		}
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
		if err := p.Munmap(addr); err != kernel.ErrInval {
			t.Errorf("double munmap = %v, want ErrInval", err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestNoProviderReturnsOpNotSupp(t *testing.T) {
	cfg := kernel.DefaultConfig()
	k := kernel.New(cfg)
	k.Spawn("noprov", func(p *kernel.Proc) {
		if _, err := p.Mmap(0, 0, 1, kernel.ProtRead, kernel.MapShared); err != kernel.ErrOpNotSupp {
			p.Kernel().Abort(nil)
		}
		if err := p.Munmap(0); err != kernel.ErrOpNotSupp {
			p.Kernel().Abort(nil)
		}
		if err := p.Msync(0); err != kernel.ErrOpNotSupp {
			p.Kernel().Abort(nil)
		}
		if err := p.MemRead(0, make([]byte, 1)); err != kernel.ErrOpNotSupp {
			p.Kernel().Abort(nil)
		}
		if err := p.MemWrite(0, []byte{1}); err != kernel.ErrOpNotSupp {
			p.Kernel().Abort(nil)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestMsyncDurabilityEqualsFsync(t *testing.T) {
	r := newRig(t, 32)
	data := pattern(2*bsize, 71)
	r.run(t, "msync", func(p *kernel.Proc) {
		fd, err := p.Open("/v/m", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		addr, err := p.Mmap(fd, 0, int64(len(data)), kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := p.MemWrite(addr, data); err != nil {
			t.Fatalf("memwrite: %v", err)
		}
		if err := p.Msync(addr); err != nil {
			t.Fatalf("msync: %v", err)
		}
		// fsync durability: everything on the platter — a power cut
		// right now loses nothing.
		r.d.Crash()
		r.c.Crash(r.d)
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
	})
	// Repair and remount, then verify the content survived.
	r.k.Spawn("verify", func(p *kernel.Proc) {
		if _, err := fs.FsckRepair(p.Ctx(), r.c, r.d); err != nil {
			t.Errorf("fsck repair: %v", err)
			return
		}
		f, err := fs.Mount(p.Ctx(), r.c, r.d)
		if err != nil {
			t.Errorf("remount: %v", err)
			return
		}
		f.SetPager(r.pool)
		r.k.Mount("/v", f)
		if got := readFile(t, p, "/v/m"); !bytes.Equal(got, data) {
			t.Error("msync'd data lost across crash+repair")
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestConcurrentMappersShareObject(t *testing.T) {
	r := newRig(t, 6)
	data := pattern(6*bsize, 81)
	r.run(t, "setup", func(p *kernel.Proc) {
		writeFile(t, p, "/v/s", data)
	})
	// Three processes map the same file concurrently under pressure:
	// pageins are shared (one object), evictions interleave.
	for i := 0; i < 3; i++ {
		r.k.Spawn("mapper", func(p *kernel.Proc) {
			fd, err := p.Open("/v/s", kernel.ORdOnly)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			addr, err := p.Mmap(fd, 0, int64(len(data)), kernel.ProtRead, kernel.MapShared)
			if err != nil {
				t.Errorf("mmap: %v", err)
				return
			}
			_ = p.Close(fd)
			got := make([]byte, len(data))
			for pass := 0; pass < 2; pass++ {
				if err := p.MemRead(addr, got); err != nil {
					t.Errorf("memread: %v", err)
					return
				}
				if !bytes.Equal(got, data) {
					t.Error("concurrent mapped read differs")
					return
				}
				p.Yield()
			}
			if err := p.Munmap(addr); err != nil {
				t.Errorf("munmap: %v", err)
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := r.pool.CheckDrained(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestInvariantsDetectDamage(t *testing.T) {
	for _, kind := range []string{"ring-orphan", "hand", "refcount", "dirty-unbacked"} {
		r := newRig(t, 8)
		r.run(t, "damage-"+kind, func(p *kernel.Proc) {
			fd, err := p.Open("/v/d", kernel.OCreat|kernel.ORdWr)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			addr, err := p.Mmap(fd, 0, bsize, kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
			if err != nil {
				t.Fatalf("mmap: %v", err)
			}
			if err := p.MemWrite(addr, pattern(bsize, 91)); err != nil {
				t.Fatalf("memwrite: %v", err)
			}
			if err := r.pool.CheckInvariants(); err != nil {
				t.Fatalf("healthy pool: %v", err)
			}
			r.pool.Damage(kind)
			if err := r.pool.CheckInvariants(); err == nil {
				t.Errorf("damage %q undetected", kind)
			}
			// Leave the pool damaged; this rig is done.
			_ = p.Munmap(addr)
			_ = p.Close(fd)
		})
	}
}
