package vm

import "fmt"

// This file implements the VM invariant checker used by the simcheck
// harness. The checks are structural — they walk the page pool, the
// objects and the address spaces without doing I/O or sleeping — so
// they are callable from any context, including the kernel's
// scheduling loop between events.
//
// Invariant catalog (virtual memory):
//
//	vm-frame-overcommit  resident pages never exceed the pool size
//	vm-clock-hand        the clock hand stays within the ring
//	vm-frame-dup         a page frame appears in the ring exactly once
//	vm-frame-owner       every ring page is owned: an object page is
//	                     indexed by its object under the right key; an
//	                     anonymous page is in some mapping's shadow
//	vm-frame-leak        owned pages (object-resident + COW shadows)
//	                     account for every frame in the ring — no
//	                     leaked and no unlisted frames
//	vm-dirty-unbacked    a dirty object page aliases a real block
//	                     (write faults allocate before dirtying)
//	vm-wired-count       wire counts are never negative
//	vm-cow-isolation     an anonymous page belongs to exactly one
//	                     private mapping's shadow (COW means private)
//	vm-shadow-private    only private mappings carry shadow pages
//	vm-obj-refcount      object.mappings equals the live mappings of it
//	vm-obj-leak          an object with zero mappings has been freed
//	vm-wok-subset        write-enabled pages are a subset of entered
//	                     pages in every mapping
//	vm-addr-range        every mapping lies within its space's
//	                     allocated address range
//
// A violation is reported as an *InvariantError naming the invariant.

// InvariantError describes one violated VM invariant.
type InvariantError struct {
	Name   string // invariant identifier, e.g. "vm-frame-leak"
	Detail string
}

func (e *InvariantError) Error() string {
	return "invariant " + e.Name + " violated: " + e.Detail
}

func violation(name, format string, args ...any) error {
	return &InvariantError{Name: name, Detail: fmt.Sprintf(format, args...)}
}

// CheckInvariants verifies the pool's structural invariants, returning
// the first violation found (nil if consistent). It never sleeps and
// performs no I/O, so the simcheck probe can run it at every
// scheduling boundary.
func (v *Pool) CheckInvariants() error {
	if len(v.ring) > v.nframes {
		return violation("vm-frame-overcommit", "%d resident pages in a %d-frame pool", len(v.ring), v.nframes)
	}
	if v.hand < 0 || v.hand > len(v.ring) {
		return violation("vm-clock-hand", "hand=%d with %d resident pages", v.hand, len(v.ring))
	}

	// Collect the anonymous pages owned by shadows and validate the
	// per-mapping structures on the way.
	shadowOwners := make(map[*page]int)
	objRefs := make(map[*object]int)
	for _, pid := range sortedSpaceIDs(v.spaces) {
		as := v.spaces[pid]
		for _, m := range as.maps {
			if m.addr < mapBase || m.addr+m.npages*int64(v.pageSize) > as.brk {
				return violation("vm-addr-range", "pid %d mapping at %#x..%#x outside space range", pid, m.addr, m.addr+m.npages*int64(v.pageSize))
			}
			objRefs[m.obj]++
			if len(m.shadow) > 0 && !m.private() {
				return violation("vm-shadow-private", "pid %d shared mapping at %#x has %d shadow pages", pid, m.addr, len(m.shadow))
			}
			for idx := range m.wok {
				if !m.valid[idx] {
					return violation("vm-wok-subset", "pid %d mapping at %#x: page %d write-enabled but not entered", pid, m.addr, idx)
				}
			}
			for idx, pg := range m.shadow {
				if pg.obj != nil {
					return violation("vm-cow-isolation", "pid %d shadow page %d still belongs to object %s/%d", pid, idx, pg.obj.dev, pg.obj.ino)
				}
				shadowOwners[pg]++
			}
		}
	}

	// Object-side accounting.
	resident := 0
	for key, obj := range v.objects {
		if obj.mappings <= 0 {
			return violation("vm-obj-leak", "object %s/%d alive with %d mappings", key.dev, key.ino, obj.mappings)
		}
		if objRefs[obj] != obj.mappings {
			return violation("vm-obj-refcount", "object %s/%d says %d mappings, address spaces hold %d", key.dev, key.ino, obj.mappings, objRefs[obj])
		}
		if obj.dev != key.dev || obj.ino != key.ino {
			return violation("vm-frame-owner", "object keyed %s/%d identifies as %s/%d", key.dev, key.ino, obj.dev, obj.ino)
		}
		resident += len(obj.pages)
	}
	for obj, refs := range objRefs {
		if v.objects[objKey{obj.dev, obj.ino}] != obj {
			return violation("vm-obj-leak", "mapped object %s/%d (%d refs) not in the pool table", obj.dev, obj.ino, refs)
		}
	}

	// Ring walk: ownership, duplicates, dirty discipline.
	seen := make(map[*page]bool, len(v.ring))
	for _, pg := range v.ring {
		if seen[pg] {
			return violation("vm-frame-dup", "page (obj=%v idx=%d) in ring twice", pg.obj != nil, pg.idx)
		}
		seen[pg] = true
		if pg.wired < 0 {
			return violation("vm-wired-count", "page idx=%d wired=%d", pg.idx, pg.wired)
		}
		if pg.obj != nil {
			if v.objects[objKey{pg.obj.dev, pg.obj.ino}] != pg.obj || pg.obj.pages[pg.idx] != pg {
				return violation("vm-frame-owner", "object page %s/%d idx=%d not indexed by its object", pg.obj.dev, pg.obj.ino, pg.idx)
			}
			if pg.dirty && pg.blk == 0 {
				return violation("vm-dirty-unbacked", "dirty page %s/%d idx=%d has no block", pg.obj.dev, pg.obj.ino, pg.idx)
			}
		} else {
			switch shadowOwners[pg] {
			case 1:
			case 0:
				return violation("vm-frame-owner", "anonymous page idx=%d owned by no mapping", pg.idx)
			default:
				return violation("vm-cow-isolation", "anonymous page idx=%d owned by %d mappings", pg.idx, shadowOwners[pg])
			}
		}
	}
	total := resident + len(shadowOwners)
	if total != len(v.ring) {
		return violation("vm-frame-leak", "%d owned pages (%d object + %d anonymous) but %d frames in ring", total, resident, len(shadowOwners), len(v.ring))
	}
	for pg := range shadowOwners {
		if !seen[pg] {
			return violation("vm-frame-leak", "shadow page idx=%d not in the ring", pg.idx)
		}
	}
	return nil
}

// CheckDrained verifies the quiescent end-of-run state: every mapping
// unmapped, every object released, every frame free. Address spaces of
// still-live processes may exist, but must be empty.
func (v *Pool) CheckDrained() error {
	for _, pid := range sortedSpaceIDs(v.spaces) {
		if n := len(v.spaces[pid].maps); n > 0 {
			return violation("vm-map-leak", "pid %d still holds %d mappings at drain", pid, n)
		}
	}
	if n := len(v.objects); n > 0 {
		return violation("vm-obj-leak", "%d objects alive at drain", n)
	}
	if n := len(v.ring); n > 0 {
		return violation("vm-frame-leak", "%d frames resident at drain", n)
	}
	return v.CheckInvariants()
}

// Damage corrupts the pool's structures for invariant self-tests. The
// kinds mirror the catalog: "ring-orphan" plants an unowned frame,
// "dirty-unbacked" dirties a blockless page, "hand" pushes the clock
// hand out of range, "refcount" skews an object's mapping count.
func (v *Pool) Damage(kind string) {
	v.damaged = kind
	switch kind {
	case "ring-orphan":
		v.ring = append(v.ring, &page{data: make([]byte, v.pageSize)})
	case "dirty-unbacked":
		v.ring = append(v.ring, &page{data: make([]byte, v.pageSize)})
		// also owned by nobody, but dirty-unbacked needs an object page:
		for _, obj := range v.objects {
			for _, pg := range obj.pages {
				pg.dirty = true
				pg.blk = 0
				v.ring = v.ring[:len(v.ring)-1]
				return
			}
		}
	case "hand":
		v.hand = len(v.ring) + 3
	case "refcount":
		for _, obj := range v.objects {
			obj.mappings++
			return
		}
	default:
		panic("vm: unknown damage kind " + kind)
	}
}

func sortedSpaceIDs(m map[int]*space) []int {
	ids := make([]int, 0, len(m))
	for pid := range m {
		ids = append(ids, pid)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}
