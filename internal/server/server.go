// Package server implements a concurrent file-server engine on top of
// the stream transport: an accept loop hands each incoming connection
// to its own handler process, and each handler serves file requests
// either through the read/write copy path (cp) or by splicing the file
// straight onto the connection (scp) — the paper's §7 server scenario,
// where the in-kernel data path is what keeps the CPU available as
// client fan-out grows.
//
// The request protocol is deliberately minimal: a client sends one
// request byte, the server answers with the whole file, and the
// connection carries any number of requests until the client closes
// its half, at which point the handler closes the other.
package server

import (
	"fmt"

	"kdp/internal/kernel"
	"kdp/internal/splice"
	"kdp/internal/stream"
	"kdp/internal/trace"
)

// Mode selects the serving data path.
type Mode int

// Serving modes.
const (
	// ModeCopy serves with read(file)+write(conn): two user copies per
	// block, both charged to the handler process.
	ModeCopy Mode = iota
	// ModeSplice serves with splice(file, conn): the data moves at
	// interrupt level and never crosses the user boundary.
	ModeSplice
	// ModeBatch serves with aggregated syscalls: the seek and a window
	// of file reads cross the boundary in one Submit, and the blocks
	// they return leave through one writev on the connection (see
	// Server.ServeBatch).
	ModeBatch
)

func (m Mode) String() string {
	switch m {
	case ModeSplice:
		return "scp"
	case ModeBatch:
		return "bcp"
	default:
		return "cp"
	}
}

// Engine selects the server's process model.
type Engine int

// Process models.
const (
	// EngineProcs is the classic model: one handler process per
	// accepted connection.
	EngineProcs Engine = iota
	// EngineEvent is a single-process event loop: one process polls
	// every descriptor and drives per-connection state machines with
	// nonblocking I/O (copy mode) or one async splice per request
	// (splice mode).
	EngineEvent
)

// ModeName returns the sweep label for an engine/mode pair:
// cp, scp (process per connection) and event, escp (event loop).
func ModeName(e Engine, m Mode) string {
	if e == EngineEvent {
		if m == ModeSplice {
			return "escp"
		}
		return "event"
	}
	return m.String()
}

// Config describes one server instance.
type Config struct {
	// Name labels the server's processes and trace events.
	Name string
	// Transport is the listening endpoint (the engine calls Listen).
	Transport *stream.Transport
	// Path is the file served for every request.
	Path string
	// FileBytes is the response length (the file's size; clients know
	// it and read exactly this much per request).
	FileBytes int64
	// Mode picks the data path.
	Mode Mode
	// Engine picks the process model.
	Engine Engine
	// Conns is the number of connections to accept before the accept
	// loop exits; the engine is done once they all close.
	Conns int
}

// Server is a running file server.
type Server struct {
	cfg Config
	k   *kernel.Kernel

	port *complPort // event engine's splice completion queue

	accepted int64
	requests int64
	bytes    int64
}

// Accepted returns connections accepted so far.
func (s *Server) Accepted() int64 { return s.accepted }

// Requests returns requests served to completion.
func (s *Server) Requests() int64 { return s.requests }

// BytesServed returns total response bytes written or spliced.
func (s *Server) BytesServed() int64 { return s.bytes }

// Start spawns the serving engine: an accept loop plus per-connection
// handlers (EngineProcs), or one event-loop process (EngineEvent).
func Start(k *kernel.Kernel, cfg Config) *Server {
	s := &Server{cfg: cfg, k: k}
	if cfg.Engine == EngineEvent {
		k.Spawn(cfg.Name+"-event", s.eventLoop)
	} else {
		k.Spawn(cfg.Name+"-accept", s.acceptLoop)
	}
	return s
}

func (s *Server) acceptLoop(p *kernel.Proc) {
	if err := s.cfg.Transport.Listen(p); err != nil {
		panic(fmt.Sprintf("server %s: listen: %v", s.cfg.Name, err))
	}
	for i := 0; i < s.cfg.Conns; i++ {
		fd, conn, err := s.cfg.Transport.Accept(p)
		if err != nil {
			panic(fmt.Sprintf("server %s: accept: %v", s.cfg.Name, err))
		}
		s.accepted++
		s.k.TraceEmit(trace.KindServerAccept, p.Pid(), int64(conn.RemotePort()), s.accepted, s.cfg.Name)
		// The handler owns the descriptor: re-home it into the new
		// process's table and release it here, so the accept loop can
		// exit while handlers are still serving.
		handler := fmt.Sprintf("%s-h%d", s.cfg.Name, s.accepted)
		if _, err := p.ReleaseFD(fd); err != nil {
			panic(fmt.Sprintf("server %s: release fd: %v", s.cfg.Name, err))
		}
		s.k.Spawn(handler, func(hp *kernel.Proc) {
			s.handle(hp, conn)
		})
	}
}

// handle serves requests on one connection until the client closes.
func (s *Server) handle(p *kernel.Proc, conn *stream.Conn) {
	cfd := p.InstallFile(conn, kernel.ORdWr)
	src, err := p.Open(s.cfg.Path, kernel.ORdOnly)
	if err != nil {
		panic(fmt.Sprintf("server %s: open %s: %v", s.cfg.Name, s.cfg.Path, err))
	}
	req := make([]byte, 1)
	for {
		n, err := p.Read(cfd, req)
		if err != nil || n == 0 {
			break // client closed (or connection failed)
		}
		if s.cfg.Mode != ModeBatch {
			// ModeBatch folds the rewind into its first submission.
			if _, err := p.Lseek(src, 0, kernel.SeekSet); err != nil {
				panic(fmt.Sprintf("server %s: lseek: %v", s.cfg.Name, err))
			}
		}
		if s.cfg.Mode == ModeBatch {
			served := s.ServeBatch(p, src, cfd)
			s.bytes += served
			if served < s.cfg.FileBytes {
				break
			}
		} else if s.cfg.Mode == ModeSplice {
			moved, err := splice.Splice(p, src, cfd, s.cfg.FileBytes)
			if err != nil {
				break
			}
			s.bytes += moved
		} else {
			buf := make([]byte, 8192)
			var served int64
			for served < s.cfg.FileBytes {
				rn, err := p.Read(src, buf)
				if err != nil || rn == 0 {
					break
				}
				if _, err := p.Write(cfd, buf[:rn]); err != nil {
					break
				}
				served += int64(rn)
			}
			s.bytes += served
		}
		s.requests++
	}
	_ = p.Close(src)
	_ = p.Close(cfd)
}

// ServeBatch answers one request with aggregated syscalls: the rewind
// lseek and a window of file reads cross the user/kernel boundary in a
// single Submit, and the blocks they return leave through one writev
// on the connection — 2 crossings per window where cp pays one per
// block. Returns the bytes served (short on error or a truncated file).
func (s *Server) ServeBatch(p *kernel.Proc, src, cfd int) int64 {
	const bsize = 8192
	const vec = 4
	bufs := make([][]byte, vec)
	for i := range bufs {
		bufs[i] = make([]byte, bsize)
	}
	var served int64
	rewind := true
	for served < s.cfg.FileBytes {
		ops := make([]kernel.BatchOp, 0, vec+1)
		if rewind {
			ops = append(ops, kernel.BatchOp{Code: kernel.BatchLseek, FD: src, Off: 0, Whence: kernel.SeekSet})
			rewind = false
		}
		for i := 0; i < vec; i++ {
			ops = append(ops, kernel.BatchOp{Code: kernel.BatchRead, FD: src, Buf: bufs[i]})
		}
		iovs := make([][]byte, 0, vec)
		for i, r := range p.Submit(ops) {
			if r.Err != nil {
				return served
			}
			if ops[i].Code == kernel.BatchRead && r.N > 0 {
				iovs = append(iovs, ops[i].Buf[:r.N])
			}
		}
		if len(iovs) == 0 {
			break
		}
		w, err := p.Writev(cfd, iovs)
		if err != nil {
			return served
		}
		served += int64(w)
	}
	return served
}
