package server

import (
	"bytes"
	"fmt"
	"testing"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
	"kdp/internal/stream"
	"kdp/internal/trace"
)

const (
	testFileBytes = 64 << 10
	testPort      = 80
)

// runServer serves nClients closed-loop clients (reqs requests each)
// with the given engine and mode and returns the per-client received
// data and the trace collector.
func runServer(t *testing.T, engine Engine, mode Mode, nClients, reqs int) ([][]byte, *trace.Collector, *Server) {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 3600 * sim.Second
	k := kernel.New(cfg)
	col := &trace.Collector{}
	k.StartTrace(col)
	cache := buf.NewCache(k, 400, 8192)
	d := disk.New(k, disk.RAMDisk(1024, 8192))
	d.SetCache(cache)
	if _, err := fs.Mkfs(d, 64); err != nil {
		t.Fatal(err)
	}
	net := socket.NewNet(k, socket.Loopback())
	st, err := stream.NewTransport(k, net, testPort)
	if err != nil {
		t.Fatal(err)
	}
	cts := make([]*stream.Transport, nClients)
	for i := range cts {
		if cts[i], err = stream.NewTransport(k, net, 5001+i); err != nil {
			t.Fatal(err)
		}
	}

	var srv *Server
	ready := false
	k.Spawn("boot", func(p *kernel.Proc) {
		f, err := fs.Mount(p.Ctx(), cache, d)
		if err != nil {
			panic(err)
		}
		k.Mount("/srv", f)
		fd, err := p.Open("/srv/file", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			panic(err)
		}
		block := make([]byte, 8192)
		for i := range block {
			block[i] = byte(i) ^ 0xC3
		}
		for off := 0; off < testFileBytes; off += len(block) {
			if _, err := p.Write(fd, block); err != nil {
				panic(err)
			}
		}
		_ = p.Close(fd)
		srv = Start(k, Config{
			Name:      "fsrv",
			Transport: st,
			Path:      "/srv/file",
			FileBytes: testFileBytes,
			Mode:      mode,
			Engine:    engine,
			Conns:     nClients,
		})
		ready = true
		k.Wakeup(&ready)
	})

	got := make([][]byte, nClients)
	for i := 0; i < nClients; i++ {
		i := i
		k.Spawn(fmt.Sprintf("client-%d", i), func(p *kernel.Proc) {
			for !ready {
				_ = p.Sleep(&ready, kernel.PWAIT)
			}
			fd, _, err := cts[i].Connect(p, testPort)
			if err != nil {
				t.Errorf("client %d: connect: %v", i, err)
				return
			}
			buf := make([]byte, 8192)
			for r := 0; r < reqs; r++ {
				if _, err := p.Write(fd, []byte{1}); err != nil {
					t.Errorf("client %d: request: %v", i, err)
					return
				}
				var resp int
				for resp < testFileBytes {
					n, err := p.Read(fd, buf)
					if err != nil || n == 0 {
						t.Errorf("client %d: response truncated at %d: %v", i, resp, err)
						return
					}
					got[i] = append(got[i], buf[:n]...)
					resp += n
				}
			}
			_ = p.Close(fd)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return got, col, srv
}

func TestServerServesConcurrentClients(t *testing.T) {
	for _, em := range []struct {
		e Engine
		m Mode
	}{
		{EngineProcs, ModeCopy},
		{EngineProcs, ModeSplice},
		{EngineProcs, ModeBatch},
		{EngineEvent, ModeCopy},
		{EngineEvent, ModeSplice},
	} {
		t.Run(ModeName(em.e, em.m), func(t *testing.T) {
			const nClients, reqs = 3, 2
			got, col, srv := runServer(t, em.e, em.m, nClients, reqs)

			want := make([]byte, 0, testFileBytes*reqs)
			block := make([]byte, 8192)
			for i := range block {
				block[i] = byte(i) ^ 0xC3
			}
			for len(want) < testFileBytes*reqs {
				want = append(want, block...)
			}
			for i := 0; i < nClients; i++ {
				if !bytes.Equal(got[i], want) {
					t.Fatalf("client %d received %d bytes, want %d (%s)", i, len(got[i]), len(want), ModeName(em.e, em.m))
				}
			}
			if srv.Accepted() != nClients {
				t.Fatalf("accepted %d connections, want %d", srv.Accepted(), nClients)
			}
			if srv.Requests() != nClients*reqs {
				t.Fatalf("served %d requests, want %d", srv.Requests(), nClients*reqs)
			}
			if srv.BytesServed() != int64(nClients*reqs*testFileBytes) {
				t.Fatalf("served %d bytes, want %d", srv.BytesServed(), nClients*reqs*testFileBytes)
			}
			accepts, readies := 0, 0
			for _, ev := range col.Events {
				switch ev.Kind {
				case trace.KindServerAccept:
					accepts++
					if ev.Name != "fsrv" {
						t.Fatalf("server.accept event named %q, want fsrv", ev.Name)
					}
				case trace.KindServerReady:
					readies++
				}
			}
			if accepts != nClients {
				t.Fatalf("%d server.accept events, want %d", accepts, nClients)
			}
			if em.e == EngineEvent && readies == 0 {
				t.Fatalf("event engine dispatched no server.ready events")
			}
			if em.e == EngineProcs && readies != 0 {
				t.Fatalf("procs engine emitted %d server.ready events, want 0", readies)
			}
		})
	}
}

func TestModeName(t *testing.T) {
	for _, tc := range []struct {
		e    Engine
		m    Mode
		want string
	}{
		{EngineProcs, ModeCopy, "cp"},
		{EngineProcs, ModeSplice, "scp"},
		{EngineProcs, ModeBatch, "bcp"},
		{EngineEvent, ModeCopy, "event"},
		{EngineEvent, ModeSplice, "escp"},
	} {
		if got := ModeName(tc.e, tc.m); got != tc.want {
			t.Errorf("ModeName(%v, %v) = %q, want %q", tc.e, tc.m, got, tc.want)
		}
	}
}

// TestComplPortFileOps pins the completion port's file contract: it
// carries no byte stream (reads and writes are refused), it is readable
// exactly while completions wait, and draining empties it.
func TestComplPortFileOps(t *testing.T) {
	cp := &complPort{}
	if _, err := cp.Read(nil, make([]byte, 1), 0); err != kernel.ErrOpNotSupp {
		t.Errorf("Read err = %v, want ErrOpNotSupp", err)
	}
	if _, err := cp.Write(nil, []byte{1}, 0); err != kernel.ErrOpNotSupp {
		t.Errorf("Write err = %v, want ErrOpNotSupp", err)
	}
	if sz, err := cp.Size(nil); sz != 0 || err != nil {
		t.Errorf("Size = %d, %v, want 0, nil", sz, err)
	}
	if err := cp.Sync(nil); err != nil {
		t.Errorf("Sync err = %v", err)
	}
	if err := cp.Close(nil); err != nil {
		t.Errorf("Close err = %v", err)
	}
	if cp.PollQueue() != &cp.pollQ {
		t.Errorf("PollQueue did not return the port's queue")
	}
	if r := cp.PollReady(kernel.PollIn); r != 0 {
		t.Errorf("empty port PollReady = %#x, want 0", r)
	}
	ec := &econn{id: 1}
	cp.post(ec)
	if r := cp.PollReady(kernel.PollIn); r != kernel.PollIn {
		t.Errorf("posted port PollReady = %#x, want PollIn", r)
	}
	if r := cp.PollReady(kernel.PollOut); r != 0 {
		t.Errorf("PollReady(PollOut) = %#x, want 0", r)
	}
	if q := cp.drain(); len(q) != 1 || q[0] != ec {
		t.Errorf("drain = %v, want the posted connection", q)
	}
	if r := cp.PollReady(kernel.PollIn); r != 0 {
		t.Errorf("drained port PollReady = %#x, want 0", r)
	}
}
