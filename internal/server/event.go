package server

import (
	"fmt"

	"kdp/internal/kernel"
	"kdp/internal/splice"
	"kdp/internal/stream"
	"kdp/internal/trace"
)

// The event-loop engine: one process drives every connection through
// poll. Accepts are drained nonblockingly from the listener file, each
// connection advances a small state machine on readiness, and the data
// path is either nonblocking read/write (event) or one asynchronous
// splice per request (escp) — the event loop only arbitrates
// readiness while spliced data moves at interrupt level, so adding
// clients adds descriptors, not processes.

// econnState is the per-connection position in the request cycle.
type econnState int

const (
	evWaitReq  econnState = iota // poll for the request byte
	evSending                    // copy-mode response partially written
	evSplicing                   // async splice in flight
	evDead                       // closed; remove at the next sweep
)

// econn is one event-loop connection.
type econn struct {
	id   int64
	conn *stream.Conn
	cfd  int // connection descriptor (nonblocking)
	sfd  int // private source-file descriptor (own offset)

	state     econnState
	remaining int64 // response bytes not yet read from the file
	chunk     []byte
	coff      int            // first unwritten byte of chunk
	handle    *splice.Handle // in-flight async splice (evSplicing)
}

// complPort is the pollable completion queue async splices report to:
// an eventfd-like object whose readiness is "a splice finished". The
// splice OnDone hook posts at interrupt level; the event loop holds
// the port in its poll set and drains it in process context.
type complPort struct {
	q     []*econn
	pollQ kernel.PollQueue
}

func (cp *complPort) post(ec *econn) {
	cp.q = append(cp.q, ec)
	cp.pollQ.Notify(kernel.PollIn)
}

func (cp *complPort) drain() []*econn {
	q := cp.q
	cp.q = nil
	return q
}

// Read implements kernel.FileOps (the port carries no byte stream).
func (cp *complPort) Read(ctx kernel.Ctx, b []byte, off int64) (int, error) {
	return 0, kernel.ErrOpNotSupp
}

// Write implements kernel.FileOps.
func (cp *complPort) Write(ctx kernel.Ctx, b []byte, off int64) (int, error) {
	return 0, kernel.ErrOpNotSupp
}

// Size implements kernel.FileOps.
func (cp *complPort) Size(ctx kernel.Ctx) (int64, error) { return 0, nil }

// Sync implements kernel.FileOps.
func (cp *complPort) Sync(ctx kernel.Ctx) error { return nil }

// Close implements kernel.FileOps.
func (cp *complPort) Close(ctx kernel.Ctx) error { return nil }

// PollReady implements kernel.PollOps: readable while completions wait.
func (cp *complPort) PollReady(events int) int {
	if events&kernel.PollIn != 0 && len(cp.q) > 0 {
		return kernel.PollIn
	}
	return 0
}

// PollQueue implements kernel.PollOps.
func (cp *complPort) PollQueue() *kernel.PollQueue { return &cp.pollQ }

// eventLoop is the single serving process.
func (s *Server) eventLoop(p *kernel.Proc) {
	t := s.cfg.Transport
	if err := t.Listen(p); err != nil {
		panic(fmt.Sprintf("server %s: listen: %v", s.cfg.Name, err))
	}
	lfd := p.InstallFile(t.File(), kernel.ORdOnly)
	port := &complPort{}
	s.port = port
	pfd := p.InstallFile(port, kernel.ORdOnly)

	var conns []*econn
	fds := make([]kernel.PollFd, 0, 2+s.cfg.Conns)
	owners := make([]*econn, 0, 2+s.cfg.Conns)

	for {
		// Sweep out connections closed during the last dispatch.
		live := conns[:0]
		for _, ec := range conns {
			if ec.state != evDead {
				live = append(live, ec)
			}
		}
		conns = live
		accepting := s.accepted < int64(s.cfg.Conns)
		if !accepting && len(conns) == 0 {
			break
		}

		// Build the poll set: listener (while accepting), the splice
		// completion port, and every connection in its current
		// interest state. Splicing connections wait on the port, not
		// their own descriptor.
		fds, owners = fds[:0], owners[:0]
		if accepting {
			fds = append(fds, kernel.PollFd{FD: lfd, Events: kernel.PollIn})
			owners = append(owners, nil)
		}
		fds = append(fds, kernel.PollFd{FD: pfd, Events: kernel.PollIn})
		owners = append(owners, nil)
		for _, ec := range conns {
			switch ec.state {
			case evWaitReq:
				fds = append(fds, kernel.PollFd{FD: ec.cfd, Events: kernel.PollIn})
				owners = append(owners, ec)
			case evSending:
				fds = append(fds, kernel.PollFd{FD: ec.cfd, Events: kernel.PollOut})
				owners = append(owners, ec)
			}
		}

		n, err := p.Poll(fds, -1)
		if err == kernel.ErrIntr {
			// An async splice's SIGIO broke the sleep; consume it and
			// rescan — the completion port is ready now.
			p.DeliverSignals()
			continue
		}
		if err != nil {
			panic(fmt.Sprintf("server %s: poll: %v", s.cfg.Name, err))
		}
		if n == 0 {
			continue
		}

		for i := range fds {
			if fds[i].Revents == 0 {
				continue
			}
			s.k.TraceEmit(trace.KindServerReady, p.Pid(),
				int64(fds[i].FD), int64(fds[i].Revents), s.cfg.Name)
			switch {
			case fds[i].FD == lfd:
				conns = append(conns, s.acceptReady(p)...)
			case fds[i].FD == pfd:
				for _, ec := range port.drain() {
					s.spliceDone(p, ec)
				}
			default:
				s.connReady(p, owners[i])
			}
		}
	}
	_ = p.Close(pfd)
	_ = p.Close(lfd)
}

// acceptReady drains the accept queue, configuring each new connection
// for nonblocking service (plus FASYNC in splice mode, so each
// response is one async splice).
func (s *Server) acceptReady(p *kernel.Proc) []*econn {
	var added []*econn
	for {
		cfd, conn, err := s.cfg.Transport.AcceptNB(p)
		if err == kernel.ErrWouldBlock {
			return added
		}
		if err != nil {
			panic(fmt.Sprintf("server %s: accept: %v", s.cfg.Name, err))
		}
		s.accepted++
		s.k.TraceEmit(trace.KindServerAccept, p.Pid(),
			int64(conn.RemotePort()), s.accepted, s.cfg.Name)
		flags := kernel.ONonblock
		if s.cfg.Mode == ModeSplice {
			flags |= kernel.FAsync
		}
		if _, err := p.Fcntl(cfd, kernel.FSetFL, flags); err != nil {
			panic(fmt.Sprintf("server %s: fcntl: %v", s.cfg.Name, err))
		}
		sfd, err := p.Open(s.cfg.Path, kernel.ORdOnly)
		if err != nil {
			panic(fmt.Sprintf("server %s: open %s: %v", s.cfg.Name, s.cfg.Path, err))
		}
		added = append(added, &econn{
			id:   s.accepted,
			conn: conn,
			cfd:  cfd,
			sfd:  sfd,
		})
	}
}

// connReady advances one connection's state machine.
func (s *Server) connReady(p *kernel.Proc, ec *econn) {
	switch ec.state {
	case evWaitReq:
		req := make([]byte, 1)
		n, err := p.Read(ec.cfd, req)
		if err == kernel.ErrWouldBlock {
			return // spurious readiness (already consumed this round)
		}
		if err != nil || n == 0 {
			s.closeConn(p, ec) // client closed its half, or conn failed
			return
		}
		s.startResponse(p, ec)
	case evSending:
		s.pushCopy(p, ec)
	}
}

// startResponse begins serving one request: rewind the private file
// descriptor, then either launch the async splice or start the
// nonblocking copy loop.
func (s *Server) startResponse(p *kernel.Proc, ec *econn) {
	if _, err := p.Lseek(ec.sfd, 0, kernel.SeekSet); err != nil {
		panic(fmt.Sprintf("server %s: lseek: %v", s.cfg.Name, err))
	}
	if s.cfg.Mode == ModeSplice {
		ec.state = evSplicing
		port := s.port
		_, h, err := splice.SpliceOpts(p, ec.sfd, ec.cfd, s.cfg.FileBytes,
			splice.Options{OnDone: func() { port.post(ec) }})
		if err != nil {
			s.closeConn(p, ec)
			return
		}
		ec.handle = h
		return
	}
	ec.state = evSending
	ec.remaining = s.cfg.FileBytes
	ec.chunk, ec.coff = nil, 0
	s.pushCopy(p, ec)
}

// pushCopy drives the copy-mode response: refill an 8KB chunk from the
// (cached) file with a blocking read, then write it to the connection
// nonblockingly until the transport's send buffer pushes back.
func (s *Server) pushCopy(p *kernel.Proc, ec *econn) {
	for {
		if ec.coff == len(ec.chunk) {
			if ec.remaining == 0 {
				ec.state = evWaitReq
				s.requests++
				return
			}
			sz := int64(8192)
			if sz > ec.remaining {
				sz = ec.remaining
			}
			buf := make([]byte, sz)
			n, err := p.Read(ec.sfd, buf)
			if err != nil || n == 0 {
				s.closeConn(p, ec)
				return
			}
			ec.chunk, ec.coff = buf[:n], 0
			ec.remaining -= int64(n)
		}
		n, err := p.Write(ec.cfd, ec.chunk[ec.coff:])
		if err == kernel.ErrWouldBlock {
			return // poll will report PollOut when space opens
		}
		if err != nil {
			s.closeConn(p, ec)
			return
		}
		ec.coff += n
		s.bytes += int64(n)
	}
}

// spliceDone retires one completed async splice and returns the
// connection to request polling.
func (s *Server) spliceDone(p *kernel.Proc, ec *econn) {
	h := ec.handle
	ec.handle = nil
	if ec.state != evSplicing {
		return
	}
	if err := h.Err(); err != nil {
		s.bytes += h.Moved()
		s.closeConn(p, ec)
		return
	}
	s.bytes += h.Moved()
	s.requests++
	ec.state = evWaitReq
}

// closeConn tears one connection down. The connection close blocks
// until the FIN is acknowledged — one round trip during which no new
// readiness is dispatched, the same price the per-connection handler
// pays at end of stream.
func (s *Server) closeConn(p *kernel.Proc, ec *econn) {
	ec.state = evDead
	_ = p.Close(ec.sfd)
	_ = p.Close(ec.cfd)
}
