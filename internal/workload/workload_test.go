package workload

import (
	"fmt"
	"testing"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/vm"
)

type rig struct {
	k     *kernel.Kernel
	cache *buf.Cache
	disks [2]*disk.Disk
	pool  *vm.Pool
}

func newRig(t *testing.T, mk func(int64, int) disk.Params) *rig {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 3600 * sim.Second
	k := kernel.New(cfg)
	r := &rig{k: k, cache: buf.NewCache(k, 400, 8192)}
	r.pool = vm.NewPool(k, 64, 8192)
	k.SetVM(r.pool)
	for i := range r.disks {
		dp := mk(1024, 8192)
		// Distinct device names: the VM page pool (like traces and
		// per-device metrics) identifies devices by name.
		dp.Name = fmt.Sprintf("%s-%d", dp.Name, i)
		d := disk.New(k, dp)
		d.SetCache(r.cache)
		if _, err := fs.Mkfs(d, 64); err != nil {
			t.Fatal(err)
		}
		r.disks[i] = d
	}
	return r
}

func (r *rig) run(t *testing.T, fn func(p *kernel.Proc)) {
	t.Helper()
	r.k.Spawn("w", func(p *kernel.Proc) {
		for i, d := range r.disks {
			f, err := fs.Mount(p.Ctx(), r.cache, d)
			if err != nil {
				t.Errorf("mount: %v", err)
				return
			}
			f.SetPager(r.pool)
			r.k.Mount([]string{"/a", "/b"}[i], f)
		}
		fn(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMakeFileDeterministicContents(t *testing.T) {
	r := newRig(t, disk.RAMDisk)
	r.run(t, func(p *kernel.Proc) {
		if err := MakeFile(p, "/a/f", 100000, 9); err != nil {
			t.Fatalf("makefile: %v", err)
		}
		fd, err := p.Open("/a/f", kernel.ORdOnly)
		if err != nil {
			t.Fatal(err)
		}
		if sz, _ := p.FileSize(fd); sz != 100000 {
			t.Fatalf("size = %d", sz)
		}
		buf := make([]byte, 1000)
		if _, err := p.Read(fd, buf); err != nil {
			t.Fatal(err)
		}
		for i, b := range buf {
			want := byte(i>>8) ^ byte(i)*5 ^ 9
			if b != want {
				t.Fatalf("byte %d = %d, want %d", i, b, want)
			}
		}
		_ = p.Close(fd)
	})
}

func TestCopyModesProduceIdenticalFiles(t *testing.T) {
	const size = 300000
	for _, mode := range []CopyMode{CopyReadWrite, CopySplice, CopyMmap} {
		r := newRig(t, disk.RAMDisk)
		r.run(t, func(p *kernel.Proc) {
			if err := MakeFile(p, "/a/src", size, 4); err != nil {
				t.Fatal(err)
			}
			res, err := Copy(p, DefaultCopySpec("/a/src", "/b/dst", mode))
			if err != nil {
				t.Fatalf("%v copy: %v", mode, err)
			}
			if res.Bytes != size {
				t.Fatalf("%v moved %d bytes", mode, res.Bytes)
			}
			if res.Elapsed <= 0 {
				t.Fatalf("%v elapsed %v", mode, res.Elapsed)
			}
			// Compare byte-for-byte through the read path.
			a, _ := p.Open("/a/src", kernel.ORdOnly)
			b, _ := p.Open("/b/dst", kernel.ORdOnly)
			ba, bb := make([]byte, 8192), make([]byte, 8192)
			for {
				na, _ := p.Read(a, ba)
				nb, _ := p.Read(b, bb)
				if na != nb {
					t.Fatalf("%v copy length mismatch", mode)
				}
				if na == 0 {
					break
				}
				for i := 0; i < na; i++ {
					if ba[i] != bb[i] {
						t.Fatalf("%v copy corrupted", mode)
					}
				}
			}
		})
	}
}

func TestSpliceCopyFasterThanReadWriteOnRAM(t *testing.T) {
	const size = 2 << 20
	measure := func(mode CopyMode) sim.Duration {
		r := newRig(t, disk.RAMDisk)
		var el sim.Duration
		r.run(t, func(p *kernel.Proc) {
			if err := MakeFile(p, "/a/src", size, 4); err != nil {
				t.Fatal(err)
			}
			if err := ColdStart(p, r.cache, r.disks[0], r.disks[1]); err != nil {
				t.Fatal(err)
			}
			res, err := Copy(p, DefaultCopySpec("/a/src", "/b/dst", mode))
			if err != nil {
				t.Fatal(err)
			}
			el = res.Elapsed
		})
		return el
	}
	scp := measure(CopySplice)
	cp := measure(CopyReadWrite)
	if float64(cp) < 1.3*float64(scp) {
		t.Fatalf("scp (%v) should be much faster than cp (%v) on the RAM disk", scp, cp)
	}
}

func TestRunTestProgramIdleBaseline(t *testing.T) {
	r := newRig(t, disk.RAMDisk)
	r.run(t, func(p *kernel.Proc) {
		res := RunTestProgram(p, 50, 10*sim.Millisecond)
		if res.Ops != 50 {
			t.Fatalf("ops = %d", res.Ops)
		}
		// Idle machine: elapsed equals the pure compute time.
		if res.Elapsed != 500*sim.Millisecond {
			t.Fatalf("idle elapsed = %v, want exactly 500ms", res.Elapsed)
		}
	})
}

func TestLoopCopyStopsAndCleansUp(t *testing.T) {
	r := newRig(t, disk.RAMDisk)
	stop := false
	var rounds int
	r.k.Spawn("stopper", func(p *kernel.Proc) {
		p.SleepFor(2 * sim.Second)
		stop = true
	})
	r.run(t, func(p *kernel.Proc) {
		if err := MakeFile(p, "/a/src", 1<<20, 4); err != nil {
			t.Fatal(err)
		}
		var err error
		rounds, _, err = LoopCopy(p, DefaultCopySpec("/a/src", "/b/dst", CopySplice),
			r.cache, []buf.Device{r.disks[0], r.disks[1]}, &stop)
		if err != nil {
			t.Fatalf("loopcopy: %v", err)
		}
	})
	if rounds < 2 {
		t.Fatalf("rounds = %d, want several in 2s", rounds)
	}
}

func TestColdStartForcesDeviceReads(t *testing.T) {
	r := newRig(t, disk.RAMDisk)
	r.run(t, func(p *kernel.Proc) {
		if err := MakeFile(p, "/a/src", 1<<20, 4); err != nil {
			t.Fatal(err)
		}
		if err := ColdStart(p, r.cache, r.disks[0]); err != nil {
			t.Fatal(err)
		}
		before := r.disks[0].Stats().Reads
		fd, _ := p.Open("/a/src", kernel.ORdOnly)
		buf := make([]byte, 8192)
		_, _ = p.Read(fd, buf)
		_ = p.Close(fd)
		if r.disks[0].Stats().Reads == before {
			t.Fatal("read after cold start did not touch the device")
		}
	})
}

func TestCopyResultThroughput(t *testing.T) {
	r := CopyResult{Bytes: 1024 * 1024, Elapsed: sim.Second}
	if got := r.ThroughputKBs(); got != 1024 {
		t.Fatalf("throughput = %v, want 1024", got)
	}
	if (CopyResult{}).ThroughputKBs() != 0 {
		t.Fatal("zero elapsed should give zero throughput")
	}
}

func TestCopyModeString(t *testing.T) {
	if CopyReadWrite.String() != "cp" || CopySplice.String() != "scp" || CopyMmap.String() != "mcp" {
		t.Fatal("mode names wrong")
	}
}
