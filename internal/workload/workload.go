// Package workload implements the programs of the paper's evaluation
// (§6): the CPU-bound test program whose slowdown measures CPU
// availability, the read/write copier cp, and the splice copier scp —
// plus the file pre-creation and cache cold-start steps the methodology
// requires.
package workload

import (
	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/splice"
)

// MakeFile creates path holding n bytes of a deterministic pattern,
// written through the normal write path (8KB at a time).
func MakeFile(p *kernel.Proc, path string, n int64, seed byte) error {
	fd, err := p.Open(path, kernel.OCreat|kernel.OWrOnly|kernel.OTrunc)
	if err != nil {
		return err
	}
	const chunk = 8192
	buf := make([]byte, chunk)
	for off := int64(0); off < n; off += chunk {
		m := int64(chunk)
		if off+m > n {
			m = n - off
		}
		for i := int64(0); i < m; i++ {
			v := off + i
			buf[i] = byte(v>>8) ^ byte(v)*5 ^ seed
		}
		if _, err := p.Write(fd, buf[:m]); err != nil {
			_ = p.Close(fd)
			return err
		}
	}
	if err := p.Fsync(fd); err != nil {
		_ = p.Close(fd)
		return err
	}
	return p.Close(fd)
}

// ColdStart produces the paper's "read cache cold start condition" by
// flushing and invalidating every cached block of the given devices.
func ColdStart(p *kernel.Proc, cache *buf.Cache, devs ...buf.Device) error {
	for _, d := range devs {
		if err := cache.InvalidateDev(p.Ctx(), d); err != nil {
			return err
		}
	}
	return nil
}

// TestProgramResult reports a CPU-availability measurement.
type TestProgramResult struct {
	Ops     int
	Elapsed sim.Duration
}

// RunTestProgram executes the CPU-bound test program: ops operations of
// opCost user-mode compute each, and reports how long the fixed set of
// operations took. Comparing the elapsed time across environments
// yields the slowdown factors of Table 1.
func RunTestProgram(p *kernel.Proc, ops int, opCost sim.Duration) TestProgramResult {
	start := p.Now()
	for i := 0; i < ops; i++ {
		p.Compute(opCost)
	}
	return TestProgramResult{Ops: ops, Elapsed: p.Now().Sub(start)}
}

// CopyMode selects the copy implementation.
type CopyMode int

// Copy modes.
const (
	CopyReadWrite CopyMode = iota // cp: read()/write() through user space
	CopySplice                    // scp: one splice() system call
	CopyMmap                      // mcp: mmap both files, user-level memcpy
	CopyVectored                  // cpv: readv()/writev(), Vec iovecs per crossing
	CopyBatched                   // bcp: cp with reads/writes aggregated via Submit
)

func (m CopyMode) String() string {
	switch m {
	case CopySplice:
		return "scp"
	case CopyMmap:
		return "mcp"
	case CopyVectored:
		return "cpv"
	case CopyBatched:
		return "bcp"
	default:
		return "cp"
	}
}

// CopySpec describes one file copy.
type CopySpec struct {
	Src, Dst string
	Mode     CopyMode
	// BufSize is cp's user buffer (st_blksize, 8KB on the measured
	// system).
	BufSize int
	// LoopCost models cp's user-mode loop overhead per buffer: the
	// check-count-and-call-again code between read() and write(). This
	// is also the window where the scheduler can preempt cp.
	LoopCost sim.Duration
	// Fsync forces write-through at the end, as the paper's CP
	// methodology does ("calling fsync() on the destination file for
	// CP").
	Fsync bool
	// Vec is the number of BufSize iovecs (cpv) or batched ops (bcp)
	// carried per kernel crossing; zero means DefaultVec.
	Vec int
	// SpliceOptions tunes scp's flow control (zero = paper defaults).
	SpliceOptions splice.Options
}

// DefaultVec is the aggregation width of cpv and bcp: each crossing
// carries this many BufSize buffers, so the fixed trap and copy-setup
// costs are paid once per DefaultVec buffers instead of once per one.
const DefaultVec = 4

// DefaultCopySpec returns the paper's configuration for copying src to
// dst in the given mode. cp fsyncs and mcp msyncs the destination, per
// the paper's write-through methodology; scp's splice is synchronous on
// its own.
func DefaultCopySpec(src, dst string, mode CopyMode) CopySpec {
	return CopySpec{
		Src: src, Dst: dst, Mode: mode,
		BufSize:  8192,
		LoopCost: 25 * sim.Microsecond,
		Fsync:    mode != CopySplice,
		Vec:      DefaultVec,
	}
}

// CopyResult reports one completed copy.
type CopyResult struct {
	Bytes   int64
	Elapsed sim.Duration
	Splice  splice.Stats // valid for CopySplice
}

// ThroughputKBs returns the copy throughput in kilobytes per second.
func (r CopyResult) ThroughputKBs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1024 / r.Elapsed.Seconds()
}

// Copy performs one copy according to spec and reports bytes moved and
// elapsed virtual time.
func Copy(p *kernel.Proc, spec CopySpec) (CopyResult, error) {
	start := p.Now()
	src, err := p.Open(spec.Src, kernel.ORdOnly)
	if err != nil {
		return CopyResult{}, err
	}
	dstFlags := kernel.OCreat | kernel.OWrOnly | kernel.OTrunc
	if spec.Mode == CopyMmap {
		// A writable shared mapping needs a read/write descriptor.
		dstFlags = kernel.OCreat | kernel.ORdWr | kernel.OTrunc
	}
	dst, err := p.Open(spec.Dst, dstFlags)
	if err != nil {
		_ = p.Close(src)
		return CopyResult{}, err
	}
	res := CopyResult{}
	switch spec.Mode {
	case CopyReadWrite:
		buf := make([]byte, spec.BufSize)
		for {
			n, err := p.Read(src, buf)
			if err != nil {
				return res, err
			}
			if n == 0 {
				break
			}
			if spec.LoopCost > 0 {
				p.Compute(spec.LoopCost)
			}
			w, err := p.Write(dst, buf[:n])
			if err != nil {
				return res, err
			}
			res.Bytes += int64(w)
		}
		if spec.Fsync {
			if err := p.Fsync(dst); err != nil {
				return res, err
			}
		}
	case CopyVectored:
		// cpv: the cp loop with Vec iovecs per crossing — one readv and
		// one writev move what cp needs 2*Vec syscalls for.
		vec := spec.Vec
		if vec <= 0 {
			vec = DefaultVec
		}
		iovs := make([][]byte, vec)
		for i := range iovs {
			iovs[i] = make([]byte, spec.BufSize)
		}
		for {
			n, err := p.Readv(src, iovs)
			if err != nil {
				return res, err
			}
			if n == 0 {
				break
			}
			if spec.LoopCost > 0 {
				p.Compute(spec.LoopCost)
			}
			w, err := p.Writev(dst, trimIovs(iovs, n))
			if err != nil {
				return res, err
			}
			res.Bytes += int64(w)
		}
		if spec.Fsync {
			if err := p.Fsync(dst); err != nil {
				return res, err
			}
		}
	case CopyBatched:
		// bcp: the cp loop with reads and writes aggregated through
		// Submit — Vec reads cross the boundary together, then the Vec
		// writes of what they returned, so 2 crossings carry what cp
		// pays 2*Vec crossings for.
		vec := spec.Vec
		if vec <= 0 {
			vec = DefaultVec
		}
		bufs := make([][]byte, vec)
		for i := range bufs {
			bufs[i] = make([]byte, spec.BufSize)
		}
		for {
			rops := make([]kernel.BatchOp, vec)
			for i := range rops {
				rops[i] = kernel.BatchOp{Code: kernel.BatchRead, FD: src, Buf: bufs[i]}
			}
			wops := make([]kernel.BatchOp, 0, vec)
			for i, r := range p.Submit(rops) {
				if r.Err != nil {
					return res, r.Err
				}
				if r.N == 0 {
					break
				}
				wops = append(wops, kernel.BatchOp{Code: kernel.BatchWrite, FD: dst, Buf: bufs[i][:r.N]})
			}
			if len(wops) == 0 {
				break
			}
			if spec.LoopCost > 0 {
				p.Compute(spec.LoopCost)
			}
			for _, r := range p.Submit(wops) {
				if r.Err != nil {
					return res, r.Err
				}
				res.Bytes += r.N
			}
		}
		if spec.Fsync {
			if err := p.Fsync(dst); err != nil {
				return res, err
			}
		}
	case CopySplice:
		n, h, err := splice.SpliceOpts(p, src, dst, splice.EOF, spec.SpliceOptions)
		if err != nil {
			return res, err
		}
		res.Bytes = n
		res.Splice = h.Stats()
	case CopyMmap:
		// mcp: map both files and copy with user-level stores. Reads
		// fault pages in straight off the buffer cache (no copyout),
		// stores dirty mapped pages the VM pages out (no copyin) — the
		// only data copy is the user memcpy, modeled at bcopy speed.
		// Page faults price themselves inside MemRead/MemWrite.
		n, err := p.FileSize(src)
		if err != nil {
			return res, err
		}
		if n > 0 {
			srcAddr, err := p.Mmap(src, 0, n, kernel.ProtRead, kernel.MapShared)
			if err != nil {
				return res, err
			}
			dstAddr, err := p.Mmap(dst, 0, n, kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
			if err != nil {
				return res, err
			}
			cfg := p.Kernel().Config()
			chunk := make([]byte, spec.BufSize)
			for off := int64(0); off < n; {
				c := int64(spec.BufSize)
				if off+c > n {
					c = n - off
				}
				if err := p.MemRead(srcAddr+off, chunk[:c]); err != nil {
					return res, err
				}
				p.Compute(cfg.BcopyCost(int(c)))
				if spec.LoopCost > 0 {
					p.Compute(spec.LoopCost)
				}
				if err := p.MemWrite(dstAddr+off, chunk[:c]); err != nil {
					return res, err
				}
				off += c
				res.Bytes += c
			}
			if spec.Fsync {
				if err := p.Msync(dstAddr); err != nil {
					return res, err
				}
			}
			if err := p.Munmap(srcAddr); err != nil {
				return res, err
			}
			if err := p.Munmap(dstAddr); err != nil {
				return res, err
			}
		}
	default:
		return res, kernel.ErrInval
	}
	if err := p.Close(src); err != nil {
		return res, err
	}
	if err := p.Close(dst); err != nil {
		return res, err
	}
	res.Elapsed = p.Now().Sub(start)
	return res, nil
}

// trimIovs returns a prefix of iovs covering exactly the first n bytes
// (the last entry truncated as needed), so a short readv's result can
// be handed to writev unchanged.
func trimIovs(iovs [][]byte, n int) [][]byte {
	out := make([][]byte, 0, len(iovs))
	for _, iov := range iovs {
		if n <= 0 {
			break
		}
		if n < len(iov) {
			iov = iov[:n]
		}
		out = append(out, iov)
		n -= len(iov)
	}
	return out
}

// ReadResult reports one read-only workload (the cache sweep's
// sequential and random readers).
type ReadResult struct {
	Bytes   int64
	Elapsed sim.Duration
}

// ThroughputKBs returns the read throughput in kilobytes per second.
func (r ReadResult) ThroughputKBs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1024 / r.Elapsed.Seconds()
}

// ReadSequential scans path start to finish in bufSize chunks — the
// access pattern the adaptive readahead engine detects. Each chunk
// continues where the previous one ended, so the per-inode window
// grows to the filesystem's cap and asynchronous block fetches overlap
// the copy-out loop.
func ReadSequential(p *kernel.Proc, path string, bufSize int) (ReadResult, error) {
	start := p.Now()
	fd, err := p.Open(path, kernel.ORdOnly)
	if err != nil {
		return ReadResult{}, err
	}
	res := ReadResult{}
	buf := make([]byte, bufSize)
	for {
		n, err := p.Read(fd, buf)
		if err != nil {
			_ = p.Close(fd)
			return res, err
		}
		if n == 0 {
			break
		}
		res.Bytes += int64(n)
	}
	if err := p.Close(fd); err != nil {
		return res, err
	}
	res.Elapsed = p.Now().Sub(start)
	return res, nil
}

// ReadRandom performs count reads of bufSize bytes at seed-derived
// offsets — the pattern that must collapse the readahead window. The
// offset sequence is a pure function of the seed, so the workload is
// deterministic and byte-identical across replays.
func ReadRandom(p *kernel.Proc, path string, bufSize, count int, seed uint64) (ReadResult, error) {
	start := p.Now()
	fd, err := p.Open(path, kernel.ORdOnly)
	if err != nil {
		return ReadResult{}, err
	}
	size, err := p.FileSize(fd)
	if err != nil {
		_ = p.Close(fd)
		return ReadResult{}, err
	}
	span := size - int64(bufSize)
	if span < 1 {
		span = 1
	}
	r := sim.NewRand(seed)
	res := ReadResult{}
	buf := make([]byte, bufSize)
	for i := 0; i < count; i++ {
		off := r.Int63n(span)
		if _, err := p.Lseek(fd, off, kernel.SeekSet); err != nil {
			_ = p.Close(fd)
			return res, err
		}
		n, err := p.Read(fd, buf)
		if err != nil {
			_ = p.Close(fd)
			return res, err
		}
		res.Bytes += int64(n)
	}
	if err := p.Close(fd); err != nil {
		return res, err
	}
	res.Elapsed = p.Now().Sub(start)
	return res, nil
}

// LoopCopy repeatedly copies src to dst (re-establishing a cold cache
// for the source each round) until *stop becomes true, returning the
// number of completed rounds and total bytes. It keeps the copy load
// present for the whole lifetime of a concurrently running test
// program, as the Table 1 environments require.
func LoopCopy(p *kernel.Proc, spec CopySpec, cache *buf.Cache, devs []buf.Device, stop *bool) (rounds int, bytes int64, err error) {
	for !*stop {
		if err := ColdStart(p, cache, devs...); err != nil {
			return rounds, bytes, err
		}
		if *stop {
			break
		}
		res, err := Copy(p, spec)
		if err != nil {
			return rounds, bytes, err
		}
		rounds++
		bytes += res.Bytes
		if err := p.Unlink(spec.Dst); err != nil {
			return rounds, bytes, err
		}
	}
	return rounds, bytes, nil
}
