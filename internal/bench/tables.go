package bench

import (
	"fmt"
	"strings"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/workload"
)

// srcPath and dstPath are the experiment file names.
const (
	srcPath = "/src/bigfile"
	dstPath = "/dst/copy"
)

// MeasureIdle runs the CPU-bound test program alone and returns its
// elapsed time — the Table 1 baseline.
func MeasureIdle(s Setup) sim.Duration {
	if s.Label == "" {
		s.Label = fmt.Sprintf("idle/%s", s.Disk)
	}
	m := NewMachine(s)
	var res workload.TestProgramResult
	m.K.Spawn("test", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		res = workload.RunTestProgram(p, s.TestOps, s.TestOpCost)
	})
	m.Run()
	return res.Elapsed
}

// AvailabilityResult is one Table 1 environment measurement.
type AvailabilityResult struct {
	TestElapsed sim.Duration
	CopyRounds  int
	CopyBytes   int64
	Stats       kernel.CPUStats
}

// MeasureAvailability runs the test program concurrently with a looping
// copy of the configured file (mode selects cp or scp) and reports the
// test program's elapsed time for its fixed set of operations.
func MeasureAvailability(s Setup, mode workload.CopyMode) AvailabilityResult {
	if s.Label == "" {
		s.Label = fmt.Sprintf("avail/%s/%s", mode, s.Disk)
	}
	m := NewMachine(s)
	stop := false
	ready := false
	var test workload.TestProgramResult
	var rounds int
	var bytes int64

	// The copier starts first so the load exists from the test's first
	// operation; it keeps copying (cold cache each round) until the
	// test completes its fixed op count.
	m.K.Spawn("copier", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, srcPath, s.FileBytes, 7); err != nil {
			panic(err)
		}
		ready = true
		m.K.Wakeup(&ready)
		spec := workload.DefaultCopySpec(srcPath, dstPath, mode)
		var err error
		rounds, bytes, err = workload.LoopCopy(p, spec, m.Cache, m.Devices(), &stop)
		if err != nil {
			panic(err)
		}
	})
	m.K.Spawn("test", func(p *kernel.Proc) {
		// Wait for the copier to finish creating the source file so
		// the measurement covers pure copy contention.
		for !ready {
			_ = p.Sleep(&ready, kernel.PWAIT)
		}
		test = workload.RunTestProgram(p, s.TestOps, s.TestOpCost)
		stop = true
	})
	m.Run()
	return AvailabilityResult{
		TestElapsed: test.Elapsed,
		CopyRounds:  rounds,
		CopyBytes:   bytes,
		Stats:       m.K.Stats(),
	}
}

// MeasureThroughput performs a single cold-cache copy on an otherwise
// idle machine and reports the achieved throughput — one Table 2 cell.
func MeasureThroughput(s Setup, mode workload.CopyMode) workload.CopyResult {
	if s.Label == "" {
		s.Label = fmt.Sprintf("thrput/%s/%s", mode, s.Disk)
	}
	m := NewMachine(s)
	var res workload.CopyResult
	m.K.Spawn("copier", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, srcPath, s.FileBytes, 7); err != nil {
			panic(err)
		}
		if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
			panic(err)
		}
		var err error
		res, err = workload.Copy(p, workload.DefaultCopySpec(srcPath, dstPath, mode))
		if err != nil {
			panic(err)
		}
	})
	m.Run()
	return res
}

// Table1Row is one row of "CPU Availability Factors (Copying 8 MB
// File)".
type Table1Row struct {
	Disk        DiskKind
	Fcp         float64 // slowdown of the test program in the CP environment
	Fscp        float64 // slowdown in the SCP environment
	Improvement float64 // Fcp / Fscp
	PctImprove  float64 // (Improvement - 1) * 100
}

// Table1 regenerates the paper's Table 1 for the given disk types.
func Table1(disks []DiskKind) []Table1Row {
	rows := make([]Table1Row, 0, len(disks))
	for _, d := range disks {
		s := DefaultSetup(d)
		idle := MeasureIdle(s)
		cp := MeasureAvailability(s, workload.CopyReadWrite)
		scp := MeasureAvailability(s, workload.CopySplice)
		r := Table1Row{
			Disk: d,
			Fcp:  float64(cp.TestElapsed) / float64(idle),
			Fscp: float64(scp.TestElapsed) / float64(idle),
		}
		r.Improvement = r.Fcp / r.Fscp
		r.PctImprove = (r.Improvement - 1) * 100
		rows = append(rows, r)
	}
	return rows
}

// Table2Row is one row of "Mean Throughput Measurements (Copying 8 MB
// File)".
type Table2Row struct {
	Disk       DiskKind
	SCPKBs     float64
	CPKBs      float64
	PctImprove float64
}

// Table2 regenerates the paper's Table 2 for the given disk types.
func Table2(disks []DiskKind) []Table2Row {
	rows := make([]Table2Row, 0, len(disks))
	for _, d := range disks {
		s := DefaultSetup(d)
		scp := MeasureThroughput(s, workload.CopySplice)
		cp := MeasureThroughput(s, workload.CopyReadWrite)
		r := Table2Row{
			Disk:   d,
			SCPKBs: scp.ThroughputKBs(),
			CPKBs:  cp.ThroughputKBs(),
		}
		r.PctImprove = (r.SCPKBs/r.CPKBs - 1) * 100
		rows = append(rows, r)
	}
	return rows
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPU Availability Factors (Copying 8 MB File)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %12s\n", "Disk", "F_cp", "F_scp", "Improvement", "%-Improve")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %12.2f %12.2f %12.2f %11.0f%%\n",
			r.Disk, r.Fcp, r.Fscp, r.Improvement, r.PctImprove)
	}
	return b.String()
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mean Throughput Measurements (Copying 8 MB File)\n")
	fmt.Fprintf(&b, "%-6s %16s %16s %14s\n", "Disk", "SCP (KB/s)", "CP (KB/s)", "%-Improve")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %16.0f %16.0f %13.0f%%\n", r.Disk, r.SCPKBs, r.CPKBs, r.PctImprove)
	}
	return b.String()
}
