package bench

import (
	"strings"
	"testing"

	"kdp/internal/sim"
	"kdp/internal/splice"
	"kdp/internal/workload"
)

// smallSetup keeps unit tests fast: 1MB files, short test program.
func smallSetup(k DiskKind) Setup {
	s := DefaultSetup(k)
	s.FileBytes = 1 << 20
	s.TestOps = 100
	s.TestOpCost = 10 * sim.Millisecond
	return s
}

func TestMeasureIdleIsPureCompute(t *testing.T) {
	s := smallSetup(RAM)
	idle := MeasureIdle(s)
	if idle != sim.Duration(s.TestOps)*s.TestOpCost {
		t.Fatalf("idle = %v, want exactly %v", idle, sim.Duration(s.TestOps)*s.TestOpCost)
	}
}

func TestAvailabilityOrdering(t *testing.T) {
	// The paper's core claim, at small scale: idle < scp-slowdown <
	// cp-slowdown on every device type.
	for _, kind := range AllDisks {
		s := smallSetup(kind)
		idle := MeasureIdle(s)
		cp := MeasureAvailability(s, workload.CopyReadWrite)
		scp := MeasureAvailability(s, workload.CopySplice)
		if cp.TestElapsed <= idle || scp.TestElapsed <= idle {
			t.Fatalf("%v: contended runs not slower than idle (%v, %v vs %v)",
				kind, cp.TestElapsed, scp.TestElapsed, idle)
		}
		if scp.TestElapsed >= cp.TestElapsed {
			t.Fatalf("%v: splice environment (%v) not better than cp environment (%v)",
				kind, scp.TestElapsed, cp.TestElapsed)
		}
		if cp.CopyRounds < 1 {
			t.Fatalf("%v: copier never completed a round", kind)
		}
	}
}

func TestThroughputOrdering(t *testing.T) {
	// Splice beats read/write everywhere; the gap is large on the RAM
	// disk and small on mechanical disks. This holds for files larger
	// than the buffer cache (as in the paper): with a small file, cp's
	// delayed writes all pile into the final fsync and distort the
	// mechanical-disk ratios.
	ratios := map[DiskKind]float64{}
	for _, kind := range AllDisks {
		s := DefaultSetup(kind)
		scp := MeasureThroughput(s, workload.CopySplice)
		cp := MeasureThroughput(s, workload.CopyReadWrite)
		if scp.Bytes != s.FileBytes || cp.Bytes != s.FileBytes {
			t.Fatalf("%v: short copy: %d/%d", kind, scp.Bytes, cp.Bytes)
		}
		r := scp.ThroughputKBs() / cp.ThroughputKBs()
		if r <= 1 {
			t.Fatalf("%v: splice (%0.f) not faster than cp (%0.f)",
				kind, scp.ThroughputKBs(), cp.ThroughputKBs())
		}
		ratios[kind] = r
	}
	if ratios[RAM] <= ratios[RZ58] || ratios[RAM] <= ratios[RZ56] {
		t.Fatalf("RAM ratio (%.2f) should dominate mechanical ratios (%.2f, %.2f)",
			ratios[RAM], ratios[RZ58], ratios[RZ56])
	}
}

func TestRAMDiskFasterThanMechanical(t *testing.T) {
	s := smallSetup(RAM)
	ram := MeasureThroughput(s, workload.CopySplice)
	s2 := smallSetup(RZ56)
	rz := MeasureThroughput(s2, workload.CopySplice)
	if ram.ThroughputKBs() <= rz.ThroughputKBs() {
		t.Fatalf("RAM (%.0f) not faster than RZ56 (%.0f)", ram.ThroughputKBs(), rz.ThroughputKBs())
	}
}

func TestRZ58FasterThanRZ56(t *testing.T) {
	for _, mode := range []workload.CopyMode{workload.CopyReadWrite, workload.CopySplice} {
		fast := MeasureThroughput(smallSetup(RZ58), mode)
		slow := MeasureThroughput(smallSetup(RZ56), mode)
		if fast.ThroughputKBs() <= slow.ThroughputKBs() {
			t.Fatalf("%v: RZ58 (%.0f) not faster than RZ56 (%.0f)",
				mode, fast.ThroughputKBs(), slow.ThroughputKBs())
		}
	}
}

func TestMeasurementsAreDeterministic(t *testing.T) {
	a := MeasureThroughput(smallSetup(RZ58), workload.CopySplice)
	b := MeasureThroughput(smallSetup(RZ58), workload.CopySplice)
	if a.Elapsed != b.Elapsed || a.Bytes != b.Bytes {
		t.Fatalf("repeated measurements diverged: %v/%v vs %v/%v",
			a.Elapsed, a.Bytes, b.Elapsed, b.Bytes)
	}
	i1 := MeasureIdle(smallSetup(RAM))
	i2 := MeasureIdle(smallSetup(RAM))
	if i1 != i2 {
		t.Fatalf("idle measurements diverged: %v vs %v", i1, i2)
	}
}

func TestTableFormatting(t *testing.T) {
	t1 := FormatTable1([]Table1Row{{Disk: RAM, Fcp: 2, Fscp: 1.25, Improvement: 1.6, PctImprove: 60}})
	if !strings.Contains(t1, "RAM") || !strings.Contains(t1, "1.60") {
		t.Fatalf("table 1 format:\n%s", t1)
	}
	t2 := FormatTable2([]Table2Row{{Disk: RZ58, SCPKBs: 900, CPKBs: 800, PctImprove: 12.5}})
	if !strings.Contains(t2, "RZ58") || !strings.Contains(t2, "900") {
		t.Fatalf("table 2 format:\n%s", t2)
	}
}

func TestMeasureThroughputOptsHonorsNoShare(t *testing.T) {
	s := smallSetup(RAM)
	res := MeasureThroughputOpts(s, splice.Options{NoShare: true})
	if res.Splice.Copied == 0 || res.Splice.Shared != 0 {
		t.Fatalf("NoShare not honored: %+v", res.Splice)
	}
}

func TestMeasureSharingVariantCPUDifference(t *testing.T) {
	_, sharedIntr := MeasureSharingVariant(false)
	_, copiedIntr := MeasureSharingVariant(true)
	if copiedIntr <= sharedIntr {
		t.Fatalf("copying write side (%v) should steal more CPU than sharing (%v)",
			copiedIntr, sharedIntr)
	}
}

func TestAvailabilitySeriesShape(t *testing.T) {
	s := smallSetup(RAM)
	window := 250 * sim.Millisecond
	cp := MeasureAvailabilitySeries(s, workload.CopyReadWrite, window, 6)
	scp := MeasureAvailabilitySeries(s, workload.CopySplice, window, 6)
	if len(cp.Share) != 6 || len(scp.Share) != 6 {
		t.Fatalf("series lengths %d/%d", len(cp.Share), len(scp.Share))
	}
	avg := func(xs []float64) float64 {
		t := 0.0
		for _, x := range xs {
			t += x
		}
		return t / float64(len(xs))
	}
	aCP, aSCP := avg(cp.Share), avg(scp.Share)
	if aSCP <= aCP {
		t.Fatalf("series: SCP share (%.2f) not above CP share (%.2f)", aSCP, aCP)
	}
	for i, v := range append(append([]float64{}, cp.Share...), scp.Share...) {
		if v < 0 || v > 1 {
			t.Fatalf("share %d out of range: %v", i, v)
		}
	}
	out := FormatSeries(window, cp, scp)
	if !strings.Contains(out, "CP environment") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestRunSweepUnknownName(t *testing.T) {
	if _, err := RunSweep("bogus", nil); err == nil {
		t.Fatal("unknown sweep accepted")
	}
}

func TestDiskKindStringsAndParams(t *testing.T) {
	for _, k := range AllDisks {
		if k.String() == "" || strings.Contains(k.String(), "DiskKind") {
			t.Fatalf("bad name for %d", int(k))
		}
		p := k.Params(128, BlockSize)
		if p.Blocks != 128 || p.BlockSize != BlockSize {
			t.Fatalf("%v params wrong", k)
		}
	}
	if RAM.interleave() != 1 || RZ58.interleave() != 2 {
		t.Fatal("interleave defaults wrong")
	}
}
