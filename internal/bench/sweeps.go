package bench

import (
	"fmt"
	"strings"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
	"kdp/internal/splice"
	"kdp/internal/workload"
)

// RunSweep executes a named ablation sweep and returns its formatted
// report. Valid names: quantum, watermark, sharing, filesize, socket.
func RunSweep(name string, disks []DiskKind) (string, error) {
	switch name {
	case "quantum":
		return SweepQuantum(), nil
	case "watermark":
		return SweepWatermark(), nil
	case "sharing":
		return SweepSharing(), nil
	case "filesize":
		return SweepFileSize(disks), nil
	case "socket":
		return SweepSocket(), nil
	case "rate":
		return SweepRate(), nil
	case "layout":
		return SweepLayout(), nil
	case "server":
		return SweepServer(), nil
	case "cache":
		return SweepCache(), nil
	case "vm":
		return SweepVM(disks), nil
	case "batch":
		return SweepBatch(), nil
	default:
		return "", fmt.Errorf("unknown sweep %q (want quantum, watermark, sharing, filesize, socket, rate, layout, server, cache, vm, batch)", name)
	}
}

// batchCell is one syscall-aggregation measurement: copy throughput,
// total CPU consumed (wall clock minus idle), the syscalls the copier
// issued, the crossings aggregation saved, and the bytes moved (equal
// across modes — the ablation varies only how the bytes cross).
type batchCell struct {
	kbs   float64
	busy  sim.Duration
	calls int64
	saved int64
	bytes int64
}

// measureBatchCell copies a 4MB file on a cold RZ58 machine with the
// given copy mode, counting the copier's syscalls and the
// crossings-saved counter the aggregated paths emit.
func measureBatchCell(mode workload.CopyMode) batchCell {
	s := DefaultSetup(RZ58)
	s.FileBytes = 4 << 20
	s.Label = fmt.Sprintf("batch/%s", mode)
	m := NewMachine(s)
	tr := m.K.Tracer()
	if tr == nil {
		tr = m.K.StartTrace(nil) // metrics only, no sink
	}
	var res workload.CopyResult
	var calls int64
	m.K.Spawn("bench", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, srcPath, s.FileBytes, 3); err != nil {
			panic(err)
		}
		if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
			panic(err)
		}
		sys0 := p.Syscalls()
		var err error
		res, err = workload.Copy(p, workload.DefaultCopySpec(srcPath, dstPath, mode))
		if err != nil {
			panic(err)
		}
		calls = p.Syscalls() - sys0
	})
	m.Run()
	st := m.K.Stats()
	mt := tr.Metrics()
	return batchCell{
		kbs:   res.ThroughputKBs(),
		busy:  st.Now.Sub(0) - st.Idle,
		calls: calls,
		saved: mt.BatchCrossingsSaved,
		bytes: res.Bytes,
	}
}

// SweepBatch is the syscall-aggregation ablation: the same 4MB cold
// copy as cp (one crossing per 8KB read or write), cpv (readv/writev,
// one crossing per 4-iovec vector), bcp (reads and writes aggregated
// through Submit), and scp (splice, no per-block crossings at all).
// Bytes moved are identical across rows; what varies is how many times
// the copier traps into the kernel, and the trap + copy-setup CPU that
// aggregation returns to the availability budget.
func SweepBatch() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation J: syscall aggregation (4MB file, RZ58, cold cache)\n")
	fmt.Fprintf(&b, "%-5s %12s %12s %10s %10s %12s\n",
		"Mode", "KB/s", "CPU busy", "Syscalls", "Saved", "Bytes")
	modes := []workload.CopyMode{
		workload.CopyReadWrite, workload.CopyVectored,
		workload.CopyBatched, workload.CopySplice,
	}
	for _, mode := range modes {
		c := measureBatchCell(mode)
		fmt.Fprintf(&b, "%-5s %12.0f %11.2fs %10d %10d %12d\n",
			mode, c.kbs, c.busy.Seconds(), c.calls, c.saved, c.bytes)
	}
	return b.String()
}

// cacheCell is one cache-sweep measurement. busy is the total CPU the
// run consumed (wall clock minus idle): at equal work, less busy time
// means more CPU left for other processes — the paper's availability
// currency — and it compares fairly between runs of different lengths,
// where an idle percentage would not.
type cacheCell struct {
	kbs     float64
	busy    sim.Duration
	raHits  int64
	raWaste int64
}

// measureCacheCell runs one cache-sweep workload on a cold RZ58
// machine: a 4MB source file, the readahead cap set per the cell, and
// one of three access patterns — a sequential user-space read loop
// (cp's read side), a file→file splice copy (scp), or seed-derived
// random reads.
func measureCacheCell(pattern string, ra int) cacheCell {
	s := DefaultSetup(RZ58)
	s.FileBytes = 4 << 20
	s.ReadaheadMax = ra
	s.Label = fmt.Sprintf("cache/%s/ra=%d", pattern, ra)
	m := NewMachine(s)
	var bytes int64
	var elapsed sim.Duration
	m.K.Spawn("bench", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, srcPath, s.FileBytes, 3); err != nil {
			panic(err)
		}
		if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
			panic(err)
		}
		switch pattern {
		case "seq-read":
			res, err := workload.ReadSequential(p, srcPath, 8192)
			if err != nil {
				panic(err)
			}
			bytes, elapsed = res.Bytes, res.Elapsed
		case "splice":
			res, err := workload.Copy(p, workload.DefaultCopySpec(srcPath, dstPath, workload.CopySplice))
			if err != nil {
				panic(err)
			}
			bytes, elapsed = res.Bytes, res.Elapsed
		case "rand-read":
			res, err := workload.ReadRandom(p, srcPath, 8192, 256, 11)
			if err != nil {
				panic(err)
			}
			bytes, elapsed = res.Bytes, res.Elapsed
		default:
			panic("bench: unknown cache pattern " + pattern)
		}
	})
	m.Run()
	st := m.K.Stats()
	cs := m.Cache.Stats()
	c := cacheCell{
		busy:    st.Now.Sub(0) - st.Idle,
		raHits:  cs.RaHits,
		raWaste: cs.RaWaste,
	}
	if elapsed > 0 {
		c.kbs = float64(bytes) / 1024 / elapsed.Seconds()
	}
	return c
}

// SweepCache measures the adaptive readahead engine: each access
// pattern runs with readahead disabled (off) and with a deep 8-block
// window (on). Sequential reads gain throughput at equal-or-better CPU
// availability — the asynchronous window overlaps disk latency the
// synchronous read loop otherwise eats — while the splice path is
// indifferent (its flow-controlled pipeline already keeps the device
// busy, §5.5) and random reads collapse the window, wasting nothing.
func SweepCache() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation H: adaptive readahead (4MB file, RZ58, cold cache)\n")
	fmt.Fprintf(&b, "%-10s %-4s %12s %12s %10s %10s\n", "Pattern", "RA", "KB/s", "CPU busy", "RA hits", "RA waste")
	for _, pattern := range []string{"seq-read", "splice", "rand-read"} {
		for _, ra := range []int{-1, 8} {
			c := measureCacheCell(pattern, ra)
			mode := "off"
			if ra > 0 {
				mode = fmt.Sprintf("%d", ra)
			}
			fmt.Fprintf(&b, "%-10s %-4s %12.0f %11.2fs %10d %10d\n",
				pattern, mode, c.kbs, c.busy.Seconds(), c.raHits, c.raWaste)
		}
	}
	return b.String()
}

// vmCell is one mmap-vs-read-vs-splice measurement: copy throughput,
// total CPU consumed (wall clock minus idle — the paper's availability
// currency), and the VM activity behind it.
type vmCell struct {
	kbs      float64
	busy     sim.Duration
	faults   int64
	pageins  int64
	pageouts int64
}

// measureVMCell copies an 8MB file on a cold machine using the given
// mode: cp (read/write + fsync), mcp (mmap both files, user memcpy +
// msync), or scp (splice). The page pool is a quarter of the file, so
// mcp runs under memory pressure and the clock pageout is part of the
// measured path.
func measureVMCell(k DiskKind, mode workload.CopyMode) vmCell {
	s := DefaultSetup(k)
	s.Label = fmt.Sprintf("vm/%s/%s", k, mode)
	m := NewMachine(s)
	tr := m.K.Tracer()
	if tr == nil {
		tr = m.K.StartTrace(nil) // metrics only, no sink
	}
	var res workload.CopyResult
	m.K.Spawn("bench", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, srcPath, s.FileBytes, 3); err != nil {
			panic(err)
		}
		if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
			panic(err)
		}
		var err error
		res, err = workload.Copy(p, workload.DefaultCopySpec(srcPath, dstPath, mode))
		if err != nil {
			panic(err)
		}
	})
	m.Run()
	st := m.K.Stats()
	mt := tr.Metrics()
	return vmCell{
		kbs:      res.ThroughputKBs(),
		busy:     st.Now.Sub(0) - st.Idle,
		faults:   mt.VMFaults,
		pageins:  mt.VMPageins,
		pageouts: mt.VMPageouts,
	}
}

// SweepVM is the mmap-vs-read-vs-splice ablation: the same 8MB cold
// copy through the three data paths. cp pays two kernel copies plus a
// syscall per 8KB; mcp pays priced page faults and one user-level
// bcopy, with dirty mapped pages written back through the shared
// buffer cache; scp never surfaces the data to user space at all.
func SweepVM(disks []DiskKind) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation I: mmap vs read vs splice (8MB file, cold cache, 256-frame page pool)\n")
	fmt.Fprintf(&b, "%-6s %-5s %12s %12s %10s %10s %10s\n",
		"Disk", "Mode", "KB/s", "CPU busy", "Faults", "Pageins", "Pageouts")
	for _, d := range disks {
		for _, mode := range []workload.CopyMode{workload.CopyReadWrite, workload.CopyMmap, workload.CopySplice} {
			c := measureVMCell(d, mode)
			fmt.Fprintf(&b, "%-6s %-5s %12.0f %11.2fs %10d %10d %10d\n",
				d, mode, c.kbs, c.busy.Seconds(), c.faults, c.pageins, c.pageouts)
		}
	}
	return b.String()
}

// SweepLayout varies the FFS allocation interleave — the "block
// allocation strategies" the paper lists as future work. Dense
// (interleave 1) allocation lets both copy paths stream at media rate;
// the era's rotdelay layout (interleave 2) halves sequential bandwidth,
// which is the regime the paper measured.
func SweepLayout() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation G: FFS allocation layout (4MB file, RZ58)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %10s\n", "Interleave", "SCP KB/s", "CP KB/s", "%-Improve")
	for _, il := range []int{1, 2, 3} {
		s := DefaultSetup(RZ58)
		s.FileBytes = 4 << 20
		s.Interleave = il
		scp := MeasureThroughput(s, workload.CopySplice)
		cp := MeasureThroughput(s, workload.CopyReadWrite)
		fmt.Fprintf(&b, "%-12d %14.0f %14.0f %9.0f%%\n",
			il, scp.ThroughputKBs(), cp.ThroughputKBs(),
			(scp.ThroughputKBs()/cp.ThroughputKBs()-1)*100)
	}
	return b.String()
}

// SweepRate exercises the kernel-paced splice (the continuous-media
// extension): a 4MB transfer is paced at several target rates; the
// achieved rate should track the target closely until it hits the
// device's ceiling.
func SweepRate() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation F: kernel-paced splice (4MB file, RZ58)\n")
	fmt.Fprintf(&b, "%-14s %14s %12s\n", "Target KB/s", "Achieved KB/s", "Elapsed")
	for _, target := range []float64{0, 128 << 10, 256 << 10, 512 << 10, 2 << 20} {
		s := DefaultSetup(RZ58)
		s.FileBytes = 4 << 20
		res := MeasureThroughputOpts(s, splice.Options{RateBytesPerSec: target})
		label := "unpaced"
		if target > 0 {
			label = fmt.Sprintf("%.0f", target/1024)
		}
		fmt.Fprintf(&b, "%-14s %14.0f %12v\n", label, res.ThroughputKBs(), res.Elapsed)
	}
	return b.String()
}

// SweepQuantum measures how the per-call transfer quantum (the size
// parameter, §4's rate-control knob) affects elapsed time: smaller
// quanta mean more system calls and more process wakeups for the same
// bytes.
func SweepQuantum() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A: transfer quantum (4MB file, RZ58, repeated sync splices)\n")
	fmt.Fprintf(&b, "%-10s %12s %14s %10s\n", "Quantum", "Elapsed", "KB/s", "Syscalls")
	const fileBytes = 4 << 20
	quanta := []int64{8 << 10, 32 << 10, 128 << 10, 512 << 10, splice.EOF}
	for _, q := range quanta {
		s := DefaultSetup(RZ58)
		s.FileBytes = fileBytes
		m := NewMachine(s)
		var elapsed sim.Duration
		var calls int64
		m.K.Spawn("scp", func(p *kernel.Proc) {
			if err := m.Boot(p); err != nil {
				panic(err)
			}
			if err := workload.MakeFile(p, srcPath, fileBytes, 3); err != nil {
				panic(err)
			}
			if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
				panic(err)
			}
			src, _ := p.Open(srcPath, kernel.ORdOnly)
			dst, _ := p.Open(dstPath, kernel.OCreat|kernel.OWrOnly)
			t0 := p.Now()
			sys0 := p.Syscalls()
			for {
				n, err := splice.Splice(p, src, dst, q)
				if err != nil {
					panic(err)
				}
				if n == 0 {
					break
				}
				if q == splice.EOF {
					break
				}
			}
			elapsed = p.Now().Sub(t0)
			calls = p.Syscalls() - sys0
		})
		m.Run()
		label := "EOF"
		if q != splice.EOF {
			label = fmt.Sprintf("%dKB", q>>10)
		}
		kbs := float64(fileBytes) / 1024 / elapsed.Seconds()
		fmt.Fprintf(&b, "%-10s %12v %14.0f %10d\n", label, elapsed, kbs, calls)
	}
	return b.String()
}

// SweepWatermark varies the flow-control watermarks (§5.5, defaults 3
// reads / 5 writes / refill 5) and reports RAM-disk splice throughput:
// too little in-flight I/O starves the pipeline; the defaults keep both
// devices busy.
func SweepWatermark() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation B: flow-control watermarks (8MB file, RAM disk)\n")
	fmt.Fprintf(&b, "%-18s %14s %12s %12s\n", "read/write/refill", "KB/s", "PeakReads", "PeakWrites")
	combos := []splice.Options{
		{ReadWatermark: 1, WriteWatermark: 1, RefillBatch: 1},
		{ReadWatermark: 2, WriteWatermark: 2, RefillBatch: 2},
		{ReadWatermark: 3, WriteWatermark: 5, RefillBatch: 5}, // the paper's values
		{ReadWatermark: 6, WriteWatermark: 10, RefillBatch: 10},
		{ReadWatermark: 12, WriteWatermark: 20, RefillBatch: 20},
	}
	for _, o := range combos {
		sRAM := DefaultSetup(RAM)
		res := MeasureThroughputOpts(sRAM, o)
		fmt.Fprintf(&b, "%2d/%2d/%2d           %14.0f %12d %12d\n",
			o.ReadWatermark, o.WriteWatermark, o.RefillBatch,
			res.ThroughputKBs(), res.Splice.PeakReads, res.Splice.PeakWrites)
	}
	return b.String()
}

// SweepSharing compares the paper's write-side data aliasing (§5.4, no
// copy between cache buffers) against a copying write side. Throughput
// barely moves on the RAM disk — the pipeline is callout-tick bound —
// but the extra kernel bcopy shows up directly as stolen (interrupt)
// CPU, which is exactly the availability the aliasing buys back.
func SweepSharing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation C: write-side buffer sharing (8MB file, RAM disk)\n")
	fmt.Fprintf(&b, "%-10s %14s %16s %10s %10s\n", "Mode", "KB/s", "InterruptCPU", "Shared", "Copied")
	for _, noShare := range []bool{false, true} {
		res, intr := MeasureSharingVariant(noShare)
		mode := "shared"
		if noShare {
			mode = "copying"
		}
		fmt.Fprintf(&b, "%-10s %14.0f %16v %10d %10d\n",
			mode, res.ThroughputKBs(), intr, res.Splice.Shared, res.Splice.Copied)
	}
	return b.String()
}

// MeasureSharingVariant runs an 8MB RAM-disk splice copy with or
// without write-side data aliasing, returning the copy result and the
// machine's total interrupt-level CPU time.
func MeasureSharingVariant(noShare bool) (workload.CopyResult, sim.Duration) {
	s := DefaultSetup(RAM)
	m := NewMachine(s)
	var res workload.CopyResult
	m.K.Spawn("scp", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, srcPath, s.FileBytes, 3); err != nil {
			panic(err)
		}
		if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
			panic(err)
		}
		spec := workload.DefaultCopySpec(srcPath, dstPath, workload.CopySplice)
		spec.SpliceOptions = splice.Options{NoShare: noShare}
		var err error
		res, err = workload.Copy(p, spec)
		if err != nil {
			panic(err)
		}
	})
	m.Run()
	return res, m.K.Stats().Interrupt
}

// MeasureThroughputOpts is MeasureThroughput for splice copies with
// explicit flow-control options.
func MeasureThroughputOpts(s Setup, o splice.Options) workload.CopyResult {
	fileBytes := s.FileBytes
	m := NewMachine(s)
	var res workload.CopyResult
	m.K.Spawn("scp", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, srcPath, fileBytes, 3); err != nil {
			panic(err)
		}
		if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
			panic(err)
		}
		spec := workload.DefaultCopySpec(srcPath, dstPath, workload.CopySplice)
		spec.SpliceOptions = o
		var err error
		res, err = workload.Copy(p, spec)
		if err != nil {
			panic(err)
		}
	})
	m.Run()
	return res
}

// SweepFileSize copies files of several sizes and reports cp vs scp
// throughput — the paper notes alternative sizes were "statistically
// indistinguishable from the 8MB representative case" (§6.2).
func SweepFileSize(disks []DiskKind) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation D: file-size sweep (cold cache)\n")
	fmt.Fprintf(&b, "%-6s %8s %14s %14s %10s\n", "Disk", "MB", "SCP KB/s", "CP KB/s", "%-Improve")
	for _, d := range disks {
		for _, mb := range []int64{1, 2, 4, 8, 16} {
			s := DefaultSetup(d)
			s.FileBytes = mb << 20
			scp := MeasureThroughput(s, workload.CopySplice)
			cp := MeasureThroughput(s, workload.CopyReadWrite)
			fmt.Fprintf(&b, "%-6s %8d %14.0f %14.0f %9.0f%%\n",
				d, mb, scp.ThroughputKBs(), cp.ThroughputKBs(),
				(scp.ThroughputKBs()/cp.ThroughputKBs()-1)*100)
		}
	}
	return b.String()
}

// SweepSocket compares a splice-based UDP relay against a user-level
// read/write relay over the simulated Ethernet: same network, different
// data path. Reports relay throughput and the CPU the relay consumed.
func SweepSocket() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation E: UDP relay, spliced vs user-level (10Mb/s Ethernet)\n")
	fmt.Fprintf(&b, "%-10s %12s %14s %16s\n", "Relay", "Elapsed", "KB/s", "Relay CPU")
	const ndgrams = 512
	const dsize = 8192
	for _, spliced := range []bool{true, false} {
		elapsed, cpu := runSocketRelay(spliced, ndgrams, dsize)
		mode := "user"
		if spliced {
			mode = "spliced"
		}
		kbs := float64(ndgrams*dsize) / 1024 / elapsed.Seconds()
		fmt.Fprintf(&b, "%-10s %12v %14.0f %16v\n", mode, elapsed, kbs, cpu)
	}
	return b.String()
}

func runSocketRelay(spliced bool, ndgrams, dsize int) (sim.Duration, sim.Duration) {
	s := DefaultSetup(RAM)
	m := NewMachine(s)
	net := socket.NewNet(m.K, socket.Ethernet10())
	producer, _ := net.NewSocket(1)
	in, _ := net.NewSocket(2)
	out, _ := net.NewSocket(3)
	sink, _ := net.NewSocket(4)
	producer.Connect(2)
	out.Connect(4)

	var elapsed, cpu sim.Duration
	total := int64(ndgrams * dsize)

	var relayProc *kernel.Proc
	relayProc = m.K.Spawn("relay", func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		outFD := p.InstallFile(out, kernel.OWrOnly)
		t0 := p.Now()
		if spliced {
			if _, err := splice.Splice(p, inFD, outFD, total); err != nil {
				panic(err)
			}
		} else {
			buf := make([]byte, dsize)
			var moved int64
			for moved < total {
				n, err := p.Read(inFD, buf)
				if err != nil {
					panic(err)
				}
				if n == 0 {
					break
				}
				if _, err := p.Write(outFD, buf[:n]); err != nil {
					panic(err)
				}
				moved += int64(n)
			}
		}
		elapsed = p.Now().Sub(t0)
		cpu = relayProc.UserTime() + relayProc.SysTime()
	})
	m.K.Spawn("producer", func(p *kernel.Proc) {
		fd := p.InstallFile(producer, kernel.OWrOnly)
		msg := make([]byte, dsize)
		for i := 0; i < ndgrams; i++ {
			if _, err := p.Write(fd, msg); err != nil {
				panic(err)
			}
		}
	})
	m.K.Spawn("consumer", func(p *kernel.Proc) {
		fd := p.InstallFile(sink, kernel.ORdOnly)
		buf := make([]byte, dsize)
		for i := 0; i < ndgrams; i++ {
			if n, err := p.Read(fd, buf); err != nil || n == 0 {
				break
			}
		}
	})
	m.Run()
	return elapsed, cpu
}
