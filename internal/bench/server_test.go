package bench

import (
	"runtime"
	"testing"

	"kdp/internal/server"
)

// TestServerSweepShape checks the paper's qualitative claim at fan-out:
// splice serving leaves more CPU available than read/write serving at
// every client count, and the availability gap widens as clients grow.
func TestServerSweepShape(t *testing.T) {
	prevGap := -1.0
	for _, n := range []int{1, 2, 4, 8} {
		cp := MeasureServer(n, server.ModeCopy)
		scp := MeasureServer(n, server.ModeSplice)
		if scp.AvailPct <= cp.AvailPct {
			t.Fatalf("%d clients: scp availability %.1f%% not above cp %.1f%%",
				n, scp.AvailPct, cp.AvailPct)
		}
		gap := scp.AvailPct - cp.AvailPct
		if gap <= prevGap {
			t.Fatalf("%d clients: availability gap %.1f did not widen (previous %.1f)",
				n, gap, prevGap)
		}
		prevGap = gap
		if cp.Requests == 0 || scp.Requests == 0 {
			t.Fatalf("%d clients: no requests completed (cp=%d scp=%d)",
				n, cp.Requests, scp.Requests)
		}
	}
}

// TestServerEventEngine checks the event-loop acceptance claim: a
// single process drives all 8 clients, and with the async-splice data
// path (escp) it leaves at least as much CPU available as the
// process-per-connection splice server (scp) while serving every
// request.
func TestServerEventEngine(t *testing.T) {
	scp := MeasureServerEngine(8, server.EngineProcs, server.ModeSplice)
	ev := MeasureServerEngine(8, server.EngineEvent, server.ModeCopy)
	escp := MeasureServerEngine(8, server.EngineEvent, server.ModeSplice)
	if ev.Requests == 0 || escp.Requests == 0 {
		t.Fatalf("event engine served no requests (event=%d escp=%d)",
			ev.Requests, escp.Requests)
	}
	if escp.AvailPct < scp.AvailPct {
		t.Fatalf("escp availability %.1f%% below process-per-connection scp %.1f%%",
			escp.AvailPct, scp.AvailPct)
	}
	if escp.AvailPct <= ev.AvailPct {
		t.Fatalf("escp availability %.1f%% not above nonblocking-copy event mode %.1f%%",
			escp.AvailPct, ev.AvailPct)
	}
}

// TestServerSweepDeterministic regenerates the table under different
// GOMAXPROCS settings and requires byte-identical output.
func TestServerSweepDeterministic(t *testing.T) {
	first := SweepServer()
	prev := runtime.GOMAXPROCS(1)
	second := SweepServer()
	runtime.GOMAXPROCS(prev)
	if first != second {
		t.Fatalf("server sweep differs across GOMAXPROCS:\n--- default ---\n%s\n--- GOMAXPROCS=1 ---\n%s", first, second)
	}
}
