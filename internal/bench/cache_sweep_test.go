package bench

import (
	"runtime"
	"strings"
	"testing"
)

// TestSweepCacheReadaheadWins pins the ablation's headline claims: with
// readahead on, the sequential scan moves more data per second at no
// extra busy CPU, and random access is unharmed because the window
// collapses before speculating.
func TestSweepCacheReadaheadWins(t *testing.T) {
	off := measureCacheCell("seq-read", -1)
	on := measureCacheCell("seq-read", 8)
	if on.kbs <= off.kbs {
		t.Errorf("seq-read throughput with readahead = %.0f KB/s, want > %.0f (off)", on.kbs, off.kbs)
	}
	if on.raHits == 0 {
		t.Error("readahead-on scan consumed no readahead buffers")
	}
	// Equal-or-better CPU availability: allow sub-millisecond jitter
	// (the sweep table rounds to 10ms anyway).
	if extra := on.busy - off.busy; extra.Seconds() > 0.01 {
		t.Errorf("readahead costs %.4fs extra busy CPU, want <= 0.01s", extra.Seconds())
	}
	randOff := measureCacheCell("rand-read", -1)
	randOn := measureCacheCell("rand-read", 8)
	if randOn.raWaste != 0 {
		t.Errorf("random access wasted %d readaheads, want 0 (window must collapse)", randOn.raWaste)
	}
	if randOn.kbs < randOff.kbs*0.99 {
		t.Errorf("random-read throughput regressed with readahead: %.0f < %.0f KB/s", randOn.kbs, randOff.kbs)
	}
}

// TestSweepCacheDeterministicAcrossGOMAXPROCS: the cache sweep table
// is byte-identical whether the Go runtime is serial or parallel — the
// simulation clock, not the host scheduler, orders every event.
func TestSweepCacheDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var tables [2]string
	for i, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		tables[i] = SweepCache()
	}
	if tables[0] != tables[1] {
		t.Errorf("cache sweep differs across GOMAXPROCS:\n--- procs=1 ---\n%s\n--- procs=8 ---\n%s",
			tables[0], tables[1])
	}
	if !strings.Contains(tables[0], "seq-read") || !strings.Contains(tables[0], "rand-read") {
		t.Errorf("sweep table missing expected rows:\n%s", tables[0])
	}
}
