package bench

import (
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/workload"
)

// The fault-plan benchmarks pin the cost contract of the registry: a
// site hit with nothing armed is one map increment and one empty-map
// lookup, cheap enough to leave compiled into every disk transfer,
// allocation and datagram unconditionally. The end-to-end pair must
// stay within a few percent of each other for the same reason the
// traced/untraced pair must.

// BenchmarkFaultHitUnarmed measures the raw per-occurrence cost of
// reporting a site hit to a plan with no arms — the price every fault
// site pays on every I/O in a fault-free run.
func BenchmarkFaultHitUnarmed(b *testing.B) {
	k := kernel.New(kernel.DefaultConfig())
	fp := k.Faults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fp.Hit("disk.rz58.wrerr", int64(i%600)) {
			b.Fatal("unarmed hit fired")
		}
	}
}

// BenchmarkFaultHitArmedMiss measures the same hit with an arm present
// on the site but matching a different argument — the filter path a
// quiet InjectFault adapter adds to every transfer on its disk.
func BenchmarkFaultHitArmedMiss(b *testing.B) {
	k := kernel.New(kernel.DefaultConfig())
	fp := k.Faults()
	fp.Arm(kernel.FaultArm{Site: "disk.rz58.wrerr", Every: 1, Match: -2, Count: -1, Quiet: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fp.Hit("disk.rz58.wrerr", int64(i%600)) {
			b.Fatal("non-matching arm fired")
		}
	}
}

// BenchmarkCopySpliceFaultSites is the end-to-end control for
// BenchmarkCopySplice: the same cold-cache 1MB copy, now that every
// disk transfer and allocation reports to the (unarmed) fault plan.
// Comparing the two pins the whole-machine overhead of always-on fault
// sites at the noise floor.
func BenchmarkCopySpliceFaultSites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MeasureThroughput(benchSetup(), workload.CopySplice)
	}
}
