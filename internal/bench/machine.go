// Package bench is the experiment harness: it builds the paper's
// measurement machine (DecStation 5000/200, 32MB memory, 3.2MB buffer
// cache, two disks of a chosen type) and regenerates every table of the
// evaluation section plus the ablation sweeps documented in DESIGN.md.
package bench

import (
	"fmt"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/trace"
	"kdp/internal/vm"
)

// TraceSinkFactory, when non-nil, is consulted once per NewMachine: a
// non-nil returned sink is installed on the new kernel before anything
// runs, so every machine an experiment builds is traced. The label is
// Setup.Label (the experiment's name for the machine). kdpbench -trace
// uses this to collect one event stream per table cell.
var TraceSinkFactory func(label string) trace.Sink

// DiskKind selects one of the paper's three device types.
type DiskKind int

// The measured device types.
const (
	RAM DiskKind = iota
	RZ58
	RZ56
)

// AllDisks lists the device types in the paper's table order.
var AllDisks = []DiskKind{RAM, RZ58, RZ56}

func (k DiskKind) String() string {
	switch k {
	case RAM:
		return "RAM"
	case RZ58:
		return "RZ58"
	case RZ56:
		return "RZ56"
	default:
		return fmt.Sprintf("DiskKind(%d)", int(k))
	}
}

// interleave returns the FFS allocation stride for this device: 2 for
// mechanical disks (the 4.2BSD rotdelay layout), 1 for the RAM disk
// (no rotation to outrun).
func (k DiskKind) interleave() int {
	if k == RAM {
		return 1
	}
	return 2
}

// Params returns the disk model parameters for this kind.
func (k DiskKind) Params(blocks int64, blockSize int) disk.Params {
	switch k {
	case RAM:
		return disk.RAMDisk(blocks, blockSize)
	case RZ58:
		return disk.RZ58(blocks, blockSize)
	case RZ56:
		return disk.RZ56(blocks, blockSize)
	default:
		panic("bench: unknown disk kind")
	}
}

// Setup configures one experiment machine.
type Setup struct {
	Disk DiskKind
	// FileBytes is the copied file's size (the paper uses 8MB).
	FileBytes int64
	// CacheBufs is the buffer cache size in 8KB buffers (400 = 3.2MB,
	// as measured).
	CacheBufs int
	// DiskBlocks sizes each disk (default: enough for the file plus
	// slack).
	DiskBlocks int64
	// Seed makes runs reproducible.
	Seed uint64
	// TestOps and TestOpCost define the CPU-bound test program's fixed
	// set of operations.
	TestOps    int
	TestOpCost sim.Duration
	// Interleave overrides the FFS allocation stride; 0 selects the
	// device default (2 for mechanical disks, 1 for the RAM disk).
	Interleave int
	// ReadaheadMax overrides the filesystems' adaptive readahead window
	// cap in blocks: 0 keeps the fs default (one block ahead, the
	// measured system's 4.3BSD behavior), positive values permit deeper
	// windows, negative values disable readahead entirely. The cache
	// sweep uses this for its readahead on/off comparison.
	ReadaheadMax int
	// VMPages sizes the machine's page pool for mmap'd file I/O, in
	// 8KB page frames; 0 selects the default 256 (2MB — well under the
	// 8MB working set, so the clock pageout is exercised). Negative
	// disables the VM subsystem entirely.
	VMPages int
	// Label names this machine's run in exported traces (see
	// TraceSinkFactory). The Measure* helpers fill it in when empty.
	Label string
}

// DefaultSetup returns the paper's configuration for a disk type.
func DefaultSetup(k DiskKind) Setup {
	return Setup{
		Disk:       k,
		FileBytes:  8 << 20,
		CacheBufs:  400,
		Seed:       1,
		TestOps:    600,
		TestOpCost: 10 * sim.Millisecond, // 6s of pure compute
	}
}

// BlockSize is the filesystem and buffer-cache block size.
const BlockSize = 8192

// Machine is a booted experiment machine: two disks with a filesystem
// each, mounted at /src and /dst, and a VM page pool backing mmap'd
// file I/O.
type Machine struct {
	K     *kernel.Kernel
	Cache *buf.Cache
	Disks [2]*disk.Disk
	FSs   [2]*fs.FS
	Pool  *vm.Pool
	setup Setup
}

// NewMachine builds and formats the machine (filesystems are created on
// the raw media; mounting happens in Boot).
func NewMachine(s Setup) *Machine {
	if s.FileBytes <= 0 {
		s.FileBytes = 8 << 20
	}
	if s.CacheBufs <= 0 {
		s.CacheBufs = 400
	}
	if s.DiskBlocks <= 0 {
		// Mechanical disks use the interleaved (rotdelay) layout, which
		// spreads a file over twice its size in physical blocks.
		il := s.Interleave
		if il == 0 {
			il = s.Disk.interleave()
		}
		s.DiskBlocks = s.FileBytes/BlockSize*int64(il) + 64
	}
	cfg := kernel.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.MaxRunTime = 0
	k := kernel.New(cfg)
	if TraceSinkFactory != nil {
		if sink := TraceSinkFactory(s.Label); sink != nil {
			k.StartTrace(sink)
		}
	}
	m := &Machine{K: k, Cache: buf.NewCache(k, s.CacheBufs, BlockSize), setup: s}
	if s.VMPages >= 0 {
		pages := s.VMPages
		if pages == 0 {
			pages = 256
		}
		m.Pool = vm.NewPool(k, pages, BlockSize)
		k.SetVM(m.Pool)
	}
	for i := range m.Disks {
		dp := s.Disk.Params(s.DiskBlocks, BlockSize)
		// Distinguish the two drives in traces and per-disk metrics.
		dp.Name = fmt.Sprintf("%s-%d", dp.Name, i)
		d := disk.New(k, dp)
		d.SetCache(m.Cache)
		if _, err := fs.Mkfs(d, 64); err != nil {
			panic("bench: mkfs: " + err.Error())
		}
		m.Disks[i] = d
	}
	return m
}

// Boot mounts both filesystems from process context; it must be called
// from the first process before any file access.
func (m *Machine) Boot(p *kernel.Proc) error {
	if m.FSs[0] != nil {
		return nil
	}
	mounts := []string{"/src", "/dst"}
	for i, d := range m.Disks {
		f, err := fs.Mount(p.Ctx(), m.Cache, d)
		if err != nil {
			return err
		}
		il := m.setup.Interleave
		if il == 0 {
			il = m.setup.Disk.interleave()
		}
		f.SetInterleave(il)
		switch {
		case m.setup.ReadaheadMax > 0:
			f.SetReadahead(m.setup.ReadaheadMax)
		case m.setup.ReadaheadMax < 0:
			f.SetReadahead(0)
		}
		if m.Pool != nil {
			f.SetPager(m.Pool)
		}
		m.FSs[i] = f
		m.K.Mount(mounts[i], f)
	}
	return nil
}

// Run drives the machine to completion, panicking on simulator errors
// (experiments must not deadlock).
func (m *Machine) Run() {
	if err := m.K.Run(); err != nil {
		panic("bench: " + err.Error())
	}
}

// Devices returns the two disks as buf.Devices (for cold starts).
func (m *Machine) Devices() []buf.Device {
	return []buf.Device{m.Disks[0], m.Disks[1]}
}
