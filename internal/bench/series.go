package bench

import (
	"fmt"
	"strings"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/workload"
)

// AvailabilitySeries is a time series of the test program's CPU share,
// sampled in fixed windows while a copy runs — the "figure view" of
// Table 1's scalar slowdown factors.
type AvailabilitySeries struct {
	Window sim.Duration
	Share  []float64 // fraction of each window the test program computed
}

// MeasureAvailabilitySeries runs the CPU-bound test program against a
// looping copy (as MeasureAvailability does) and reports its per-window
// CPU share over the first `windows` windows.
func MeasureAvailabilitySeries(s Setup, mode workload.CopyMode, window sim.Duration, windows int) AvailabilitySeries {
	m := NewMachine(s)
	stop := false
	ready := false
	var opTimes []sim.Time
	var start sim.Time

	m.K.Spawn("copier", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, srcPath, s.FileBytes, 7); err != nil {
			panic(err)
		}
		ready = true
		m.K.Wakeup(&ready)
		spec := workload.DefaultCopySpec(srcPath, dstPath, mode)
		if _, _, err := workload.LoopCopy(p, spec, m.Cache, m.Devices(), &stop); err != nil {
			panic(err)
		}
	})
	m.K.Spawn("test", func(p *kernel.Proc) {
		for !ready {
			_ = p.Sleep(&ready, kernel.PWAIT)
		}
		start = p.Now()
		deadline := start.Add(sim.Duration(windows) * window)
		for p.Now() < deadline {
			p.Compute(s.TestOpCost)
			opTimes = append(opTimes, p.Now())
		}
		stop = true
	})
	m.Run()

	series := AvailabilitySeries{Window: window, Share: make([]float64, windows)}
	for _, t := range opTimes {
		idx := int(t.Sub(start) / window)
		if idx >= 0 && idx < windows {
			series.Share[idx] += s.TestOpCost.Seconds()
		}
	}
	for i := range series.Share {
		series.Share[i] /= window.Seconds()
		if series.Share[i] > 1 {
			series.Share[i] = 1
		}
	}
	return series
}

// FormatSeries renders CP-vs-SCP availability series side by side with
// text bars.
func FormatSeries(window sim.Duration, cp, scp AvailabilitySeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Test-program CPU share per %v window during an 8MB copy\n", window)
	fmt.Fprintf(&b, "%-8s %-28s %-28s\n", "window", "CP environment", "SCP environment")
	bar := func(v float64) string {
		n := int(v*20 + 0.5)
		return fmt.Sprintf("%5.0f%% %s", v*100, strings.Repeat("#", n))
	}
	n := len(cp.Share)
	if len(scp.Share) < n {
		n = len(scp.Share)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-8d %-28s %-28s\n", i, bar(cp.Share[i]), bar(scp.Share[i]))
	}
	return b.String()
}

// RunSeries produces the availability time-series view for one disk
// type (the kdpbench -series entry point).
func RunSeries(kind DiskKind) string {
	s := DefaultSetup(kind)
	const window = 500 * sim.Millisecond
	const windows = 10
	cp := MeasureAvailabilitySeries(s, workload.CopyReadWrite, window, windows)
	scp := MeasureAvailabilitySeries(s, workload.CopySplice, window, windows)
	return fmt.Sprintf("Disk: %v\n%s", kind, FormatSeries(window, cp, scp))
}
