package bench

import (
	"testing"

	"kdp/internal/trace"
	"kdp/internal/workload"
)

// The benchmarks measure host-CPU cost of simulating one cold-cache
// 1MB copy. Their point is the tracing overhead contract: with no sink
// installed every emission is a single nil pointer test, so the traced
// and untraced variants must stay within a few percent of each other.

func benchSetup() Setup {
	s := DefaultSetup(RAM)
	s.FileBytes = 1 << 20
	return s
}

func BenchmarkCopySplice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MeasureThroughput(benchSetup(), workload.CopySplice)
	}
}

func BenchmarkCopyReadWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MeasureThroughput(benchSetup(), workload.CopyReadWrite)
	}
}

func BenchmarkCopySpliceTraced(b *testing.B) {
	TraceSinkFactory = func(string) trace.Sink { return &trace.Collector{} }
	defer func() { TraceSinkFactory = nil }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MeasureThroughput(benchSetup(), workload.CopySplice)
	}
}
