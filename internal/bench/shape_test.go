package bench

import (
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/workload"
)

// These tests pin the reproduction to the paper's shape at full scale
// (8MB files, the real Table 1/2 configuration). If a model change
// drifts the headline results out of these bands, something that the
// paper's claims depend on has broken. The bands are deliberately
// generous — they encode "who wins and by roughly what factor", not
// exact calibration (see EXPERIMENTS.md for the exact paper-vs-measured
// values).

func TestShapeTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	rows := Table2(AllDisks)
	get := func(k DiskKind) Table2Row {
		for _, r := range rows {
			if r.Disk == k {
				return r
			}
		}
		t.Fatalf("no row for %v", k)
		return Table2Row{}
	}
	ram, rz58, rz56 := get(RAM), get(RZ58), get(RZ56)

	// Paper: "splice-based copying can operate at 1.8 times the maximum
	// throughput of read/write-based copying in the best case" (1.77x
	// on the RAM disk).
	ratio := ram.SCPKBs / ram.CPKBs
	if ratio < 1.5 || ratio > 2.3 {
		t.Errorf("RAM scp/cp ratio %.2f outside [1.5, 2.3] (paper: 1.77)", ratio)
	}
	// Paper RAM absolutes: scp 3343, cp 1884 KB/s. Allow ±25%.
	if ram.CPKBs < 1884*0.75 || ram.CPKBs > 1884*1.25 {
		t.Errorf("RAM cp = %.0f KB/s, outside ±25%% of the paper's 1884", ram.CPKBs)
	}
	if ram.SCPKBs < 3343*0.75 || ram.SCPKBs > 3343*1.25 {
		t.Errorf("RAM scp = %.0f KB/s, outside ±25%% of the paper's 3343", ram.SCPKBs)
	}
	// Paper: "for real disks ... the benefit of splice is minor."
	for _, r := range []Table2Row{rz58, rz56} {
		if r.PctImprove < 0 || r.PctImprove > 30 {
			t.Errorf("%v improvement %.0f%% not 'minor' (0-30%%)", r.Disk, r.PctImprove)
		}
	}
	// Device ordering.
	if !(ram.SCPKBs > rz58.SCPKBs && rz58.SCPKBs > rz56.SCPKBs) {
		t.Errorf("scp device ordering broken: %.0f / %.0f / %.0f", ram.SCPKBs, rz58.SCPKBs, rz56.SCPKBs)
	}
}

func TestShapeTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	rows := Table1(AllDisks)
	for _, r := range rows {
		// Splice must improve availability on every device type, and
		// the paper bounds the improvement at "20 to 70 percent".
		if r.Fscp >= r.Fcp {
			t.Errorf("%v: splice environment not better (F_cp %.2f, F_scp %.2f)", r.Disk, r.Fcp, r.Fscp)
		}
		if r.PctImprove < 15 || r.PctImprove > 80 {
			t.Errorf("%v: improvement %.0f%% outside the paper's 20-70%% band (±5)", r.Disk, r.PctImprove)
		}
		// Slowdowns must be physical: >= 1.
		if r.Fscp < 1 || r.Fcp < 1 {
			t.Errorf("%v: slowdown below 1: %.2f/%.2f", r.Disk, r.Fcp, r.Fscp)
		}
	}
	// The RAM row pins the paper's most-cited cells: test at ~50% of
	// idle speed under cp, and meaningfully above it under scp.
	for _, r := range rows {
		if r.Disk != RAM {
			continue
		}
		if r.Fcp < 1.8 || r.Fcp > 2.3 {
			t.Errorf("RAM F_cp %.2f outside [1.8, 2.3] (paper: ~2.0)", r.Fcp)
		}
		if r.Fscp < 1.1 || r.Fscp > 1.6 {
			t.Errorf("RAM F_scp %.2f outside [1.1, 1.6] (paper: ~1.25)", r.Fscp)
		}
	}
}

func TestShapeVMSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	// The mmap data path on the RAM disk: no kernel copyout/copyin, so
	// mcp must beat cp on throughput and consume less CPU — the same
	// availability argument the paper makes for splice, bought with
	// priced page faults instead of an in-kernel data path.
	cp := measureVMCell(RAM, workload.CopyReadWrite)
	mcp := measureVMCell(RAM, workload.CopyMmap)
	scp := measureVMCell(RAM, workload.CopySplice)
	if mcp.kbs <= cp.kbs {
		t.Errorf("RAM mcp %.0f KB/s not above cp %.0f", mcp.kbs, cp.kbs)
	}
	if mcp.busy >= cp.busy {
		t.Errorf("RAM mcp CPU busy %v not below cp %v", mcp.busy, cp.busy)
	}
	// mmap still surfaces every byte to user space; splice must keep
	// the best CPU availability of the three.
	if scp.busy >= mcp.busy {
		t.Errorf("RAM scp CPU busy %v not below mcp %v", scp.busy, mcp.busy)
	}
	// The faults are the priced mechanism: 8MB through a 256-frame
	// pool must fault at least once per page of each file and page out
	// the whole destination.
	if mcp.faults < 2048 || mcp.pageins < 2048 || mcp.pageouts < 1024 {
		t.Errorf("mcp VM activity too low: faults=%d pageins=%d pageouts=%d",
			mcp.faults, mcp.pageins, mcp.pageouts)
	}
	if cp.faults != 0 || scp.faults != 0 {
		t.Errorf("cp/scp took page faults: %d/%d", cp.faults, scp.faults)
	}
}

func TestShapeFsyncMethodologyMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	// The paper forces write-through for CP via fsync (§6.1). Without
	// it, cp on the RAM disk looks faster (its tail of delayed writes
	// lingers in memory, unmeasured) — confirming the methodology note
	// is load-bearing.
	s := DefaultSetup(RAM)
	withFsync := MeasureThroughput(s, workload.CopyReadWrite).ThroughputKBs()
	withoutFsync := measureCPNoFsync(t, s)
	if withoutFsync <= withFsync {
		t.Errorf("cp without fsync (%.0f) not faster than with (%.0f); write-through methodology has no effect",
			withoutFsync, withFsync)
	}
}

func measureCPNoFsync(t *testing.T, s Setup) float64 {
	t.Helper()
	m := NewMachine(s)
	var res workload.CopyResult
	m.K.Spawn("copier", func(p *kernel.Proc) {
		if err := m.Boot(p); err != nil {
			panic(err)
		}
		if err := workload.MakeFile(p, srcPath, s.FileBytes, 7); err != nil {
			panic(err)
		}
		if err := workload.ColdStart(p, m.Cache, m.Devices()...); err != nil {
			panic(err)
		}
		spec := workload.DefaultCopySpec(srcPath, dstPath, workload.CopyReadWrite)
		spec.Fsync = false
		var err error
		res, err = workload.Copy(p, spec)
		if err != nil {
			panic(err)
		}
	})
	m.Run()
	return res.ThroughputKBs()
}
