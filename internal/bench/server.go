package bench

import (
	"fmt"
	"sort"
	"strings"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/server"
	"kdp/internal/sim"
	"kdp/internal/socket"
	"kdp/internal/stream"
	"kdp/internal/trace"
)

// Server-scalability experiment (§7's server scenario at fan-out): one
// machine serves a fully cached file to N closed-loop clients over the
// 10Mb Ethernet, either through the read/write copy path (cp) or by
// splicing the file onto each stream connection (scp), while the
// CPU-bound test program from Table 1 runs alongside. The interesting
// output is how much CPU the serving path leaves the test program as
// clients multiply: cp burns two user copies per served byte, so its
// availability collapses with offered load, while scp's interrupt-level
// path keeps the CPU nearly free at every fan-out.
// The workload is fixed, not fixed-time: every client issues exactly
// serverClientReqs requests and closes. Holding the served work
// constant is what makes CPU availability comparable across engines —
// in a fixed-time window a faster engine serves more requests, burns
// more interrupt-level CPU for the extra bytes, and is penalized for
// being faster. The test program's compute is sized so its window
// covers the whole serving period in every mode (Table 1's method:
// fixed transfer, measure test-program dilation).
const (
	serverPort       = 80
	serverFileBytes  = 128 << 10
	serverFile       = "/srv/file"
	clientThink      = 400 * sim.Millisecond
	serverClientReqs = 3
	serverTestOps    = 800
	serverTestCost   = 10 * sim.Millisecond
)

// ServerCell is one (client count, engine, mode) measurement.
type ServerCell struct {
	Clients  int
	Mode     server.Mode
	Engine   server.Engine
	KBs      float64      // aggregate delivered KB/s over the test window
	AvailPct float64      // 100 x baseline / test-elapsed
	P99      sim.Duration // p99 client request latency
	Requests int64
}

// MeasureServer runs one process-per-connection cell (cp/scp).
func MeasureServer(clients int, mode server.Mode) ServerCell {
	return MeasureServerEngine(clients, server.EngineProcs, mode)
}

// MeasureServerEngine runs one cell: clients closed-loop requesters
// against a warm-cache file server with the given process model and
// data path, concurrent with the CPU-bound test program.
func MeasureServerEngine(clients int, engine server.Engine, mode server.Mode) ServerCell {
	cell, _ := MeasureServerTraced(clients, engine, mode, nil)
	return cell
}

// MeasureServerTraced runs one cell with a structured-trace sink
// attached from boot (nil for none), returning the tracer so callers
// can render counter snapshots of the serving path (kdptrace -server).
func MeasureServerTraced(clients int, engine server.Engine, mode server.Mode, sink trace.Sink) (ServerCell, *trace.Tracer) {
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 3600 * sim.Second
	k := kernel.New(cfg)
	var tr *trace.Tracer
	if sink != nil {
		tr = k.StartTrace(sink)
	}
	cache := buf.NewCache(k, 400, 8192)
	d := disk.New(k, disk.RAMDisk(2048, 8192))
	d.SetCache(cache)
	if _, err := fs.Mkfs(d, 64); err != nil {
		panic(err)
	}
	net := socket.NewNet(k, socket.Ethernet10())
	st, err := stream.NewTransport(k, net, serverPort)
	if err != nil {
		panic(err)
	}
	cts := make([]*stream.Transport, clients)
	for i := range cts {
		if cts[i], err = stream.NewTransport(k, net, 5001+i); err != nil {
			panic(err)
		}
	}

	ready := false
	var elapsed sim.Duration
	latencies := make([][]sim.Duration, clients)
	var totalBytes int64

	// Boot: mount, create the file, warm the cache, then start the
	// server engine and release the clients.
	k.Spawn("boot", func(p *kernel.Proc) {
		f, err := fs.Mount(p.Ctx(), cache, d)
		if err != nil {
			panic(err)
		}
		k.Mount("/srv", f)
		fd, err := p.Open(serverFile, kernel.OCreat|kernel.ORdWr)
		if err != nil {
			panic(err)
		}
		block := make([]byte, 8192)
		for i := range block {
			block[i] = byte(i) ^ 0x5A
		}
		for off := 0; off < serverFileBytes; off += len(block) {
			if _, err := p.Write(fd, block); err != nil {
				panic(err)
			}
		}
		_ = p.Close(fd)
		// One full read leaves every block resident, so the network is
		// the only device in the serving path.
		rfd, err := p.Open(serverFile, kernel.ORdOnly)
		if err != nil {
			panic(err)
		}
		for {
			n, err := p.Read(rfd, block)
			if err != nil || n == 0 {
				break
			}
		}
		_ = p.Close(rfd)
		server.Start(k, server.Config{
			Name:      "fsrv",
			Transport: st,
			Path:      serverFile,
			FileBytes: serverFileBytes,
			Mode:      mode,
			Engine:    engine,
			Conns:     clients,
		})
		ready = true
		k.Wakeup(&ready)
	})

	for i := 0; i < clients; i++ {
		i := i
		k.Spawn(fmt.Sprintf("client-%d", i), func(p *kernel.Proc) {
			for !ready {
				_ = p.Sleep(&ready, kernel.PWAIT)
			}
			fd, _, err := cts[i].Connect(p, serverPort)
			if err != nil {
				panic(err)
			}
			buf := make([]byte, 8192)
			for r := 0; r < serverClientReqs; r++ {
				t0 := p.Now()
				if _, err := p.Write(fd, []byte{1}); err != nil {
					break
				}
				var got int
				for got < serverFileBytes {
					n, err := p.Read(fd, buf)
					if err != nil || n == 0 {
						break
					}
					got += n
				}
				latencies[i] = append(latencies[i], p.Now().Sub(t0))
				totalBytes += int64(got)
				p.SleepFor(clientThink)
			}
			_ = p.Close(fd)
		})
	}

	k.Spawn("test", func(p *kernel.Proc) {
		for !ready {
			_ = p.Sleep(&ready, kernel.PWAIT)
		}
		t0 := p.Now()
		for i := 0; i < serverTestOps; i++ {
			p.Compute(serverTestCost)
		}
		elapsed = p.Now().Sub(t0)
	})

	if err := k.Run(); err != nil {
		panic(err)
	}

	var all []sim.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	cell := ServerCell{
		Clients:  clients,
		Mode:     mode,
		Engine:   engine,
		Requests: int64(len(all)),
	}
	baseline := sim.Duration(serverTestOps) * serverTestCost
	if elapsed > 0 {
		cell.AvailPct = 100 * float64(baseline) / float64(elapsed)
		cell.KBs = float64(totalBytes) / 1024 / (float64(elapsed) / float64(sim.Second))
	}
	if len(all) > 0 {
		idx := (len(all)*99 + 99) / 100
		if idx > len(all) {
			idx = len(all)
		}
		cell.P99 = all[idx-1]
	}
	return cell, tr
}

// serverSweepCells enumerates the sweep grid: clients x
// {cp, scp, event, escp}, rows in client-count-major order.
func serverSweepCells() []ServerCell {
	var cells []ServerCell
	for _, n := range []int{1, 2, 4, 8} {
		for _, em := range []struct {
			e server.Engine
			m server.Mode
		}{
			{server.EngineProcs, server.ModeCopy},
			{server.EngineProcs, server.ModeSplice},
			{server.EngineEvent, server.ModeCopy},
			{server.EngineEvent, server.ModeSplice},
		} {
			cells = append(cells, MeasureServerEngine(n, em.e, em.m))
		}
	}
	return cells
}

// SweepServer produces the server-scalability table: clients x
// {cp, scp, event, escp} with aggregate throughput, CPU availability,
// and p99 client latency. cp/scp run one handler process per
// connection; event/escp run every connection from a single
// event-loop process (nonblocking copies vs one async splice per
// request).
func SweepServer() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Server scalability (128 KB cached file, 10Mb Ethernet, concurrent test program)\n")
	fmt.Fprintf(&b, "cp/scp: process per connection; event/escp: single-process event loop\n")
	fmt.Fprintf(&b, "%-8s %-6s %10s %10s %11s %9s\n",
		"Clients", "Mode", "KB/s", "Avail", "p99(ms)", "Reqs")
	for _, c := range serverSweepCells() {
		fmt.Fprintf(&b, "%-8d %-6s %10.0f %9.1f%% %11.1f %9d\n",
			c.Clients, server.ModeName(c.Engine, c.Mode),
			c.KBs, c.AvailPct, float64(c.P99)/float64(sim.Millisecond), c.Requests)
	}
	return b.String()
}
