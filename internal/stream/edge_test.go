package stream

import (
	"bytes"
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/socket"
)

// Close/edge-path tests the poll layer leans on: simultaneous FIN
// exchange, zero-window persist give-up, and readiness transitions
// when a connection fails.

// readN reads exactly n bytes from fd (the peer has not closed yet, so
// readToEOF does not apply).
func readN(t *testing.T, p *kernel.Proc, fd, n int) []byte {
	t.Helper()
	out := make([]byte, 0, n)
	buf := make([]byte, 4096)
	for len(out) < n {
		rn, err := p.Read(fd, buf)
		if err != nil {
			t.Errorf("read: %v", err)
			return out
		}
		if rn == 0 {
			t.Errorf("unexpected EOF after %d of %d bytes", len(out), n)
			return out
		}
		out = append(out, buf[:rn]...)
	}
	return out
}

// TestStreamSimultaneousFin crosses FINs: both sides write, drain the
// peer, rendezvous, and then Close at the same virtual instant, so
// neither FIN is an answer to the other. Both closes must complete
// cleanly and both connections must retire to ghosts.
func TestStreamSimultaneousFin(t *testing.T) {
	cases := []struct {
		name     string
		cliBytes int
		srvBytes int
	}{
		{"no-data", 0, 0},
		{"client-data", 12 << 10, 0},
		{"both-data", 20 << 10, 16 << 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := newK()
			n := socket.NewNet(k, socket.Loopback())
			srv, _ := NewTransport(k, n, 80)
			cli, _ := NewTransport(k, n, 5001)
			cliMsg := pattern(tc.cliBytes, 21)
			srvMsg := pattern(tc.srvBytes, 22)
			var gotCli, gotSrv []byte
			ready := 0 // rendezvous: both sides Close only once both have drained

			side := func(write []byte, wantRead []byte, got *[]byte, who string) func(p *kernel.Proc, fd int) {
				return func(p *kernel.Proc, fd int) {
					if len(write) > 0 {
						if _, err := p.Write(fd, write); err != nil {
							t.Errorf("%s write: %v", who, err)
							return
						}
					}
					*got = readN(t, p, fd, len(wantRead))
					ready++
					k.Wakeup(&ready)
					for ready < 2 {
						_ = p.Sleep(&ready, kernel.PWAIT)
					}
					if err := p.Close(fd); err != nil {
						t.Errorf("%s close: %v", who, err)
					}
				}
			}

			k.Spawn("server", func(p *kernel.Proc) {
				_ = srv.Listen(p)
				fd, _, err := srv.Accept(p)
				if err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				side(srvMsg, cliMsg, &gotCli, "server")(p, fd)
			})
			k.Spawn("client", func(p *kernel.Proc) {
				fd, _, err := cli.Connect(p, 80)
				if err != nil {
					t.Errorf("connect: %v", err)
					return
				}
				side(cliMsg, srvMsg, &gotSrv, "client")(p, fd)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotCli, cliMsg) || !bytes.Equal(gotSrv, srvMsg) {
				t.Fatalf("transfer mismatch: server got %d/%d, client got %d/%d",
					len(gotCli), len(cliMsg), len(gotSrv), len(srvMsg))
			}
			if len(srv.conns) != 0 || len(cli.conns) != 0 {
				t.Fatalf("live connections after simultaneous close: srv=%d cli=%d",
					len(srv.conns), len(cli.conns))
			}
		})
	}
}

// TestStreamZeroWindowPersistGiveUp wedges the advertised window shut
// (the receiver accepts a windowful and never reads) and verifies the
// sender's persist timer gives up after maxRetries consecutive
// unanswered probes, surfacing ErrTimedOut through each of the paths a
// poll-driven caller would observe it on.
func TestStreamZeroWindowPersistGiveUp(t *testing.T) {
	cases := []struct {
		name    string
		observe func(t *testing.T, p *kernel.Proc, fd int)
	}{
		// A write parked behind the full send buffer errors out when
		// the connection is declared dead.
		{"blocked-write", func(t *testing.T, p *kernel.Proc, fd int) {
			if _, err := p.Write(fd, pattern(rcvCap, 31)); err != kernel.ErrTimedOut {
				t.Errorf("blocked write: err=%v, want ErrTimedOut", err)
			}
		}},
		// A poller sleeping on the idle receive side wakes with
		// PollErr when the persist timer fails the connection.
		{"poll-error", func(t *testing.T, p *kernel.Proc, fd int) {
			fds := []kernel.PollFd{{FD: fd, Events: kernel.PollIn}}
			n, err := p.Poll(fds, -1)
			if err != nil || n != 1 {
				t.Errorf("poll: n=%d err=%v, want 1 <nil>", n, err)
				return
			}
			if fds[0].Revents&kernel.PollErr == 0 {
				t.Errorf("poll revents=%#x, want PollErr set", fds[0].Revents)
			}
			if _, err := p.Read(fd, make([]byte, 1)); err != kernel.ErrTimedOut {
				t.Errorf("read after failure: err=%v, want ErrTimedOut", err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := newK()
			n := socket.NewNet(k, socket.Loopback())
			srv, _ := NewTransport(k, n, 80)
			cli, _ := NewTransport(k, n, 5001)
			var sender *Conn
			done := false
			k.Spawn("server", func(p *kernel.Proc) {
				_ = srv.Listen(p)
				_, _, err := srv.Accept(p)
				if err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				// Never read: the receive buffer fills, the advertised
				// window closes, and it never reopens.
				for !done {
					_ = p.Sleep(&done, kernel.PWAIT)
				}
			})
			k.Spawn("client", func(p *kernel.Proc) {
				fd, c, err := cli.Connect(p, 80)
				if err != nil {
					t.Errorf("connect: %v", err)
					return
				}
				sender = c
				// A healthy established connection is writable.
				fds := []kernel.PollFd{{FD: fd, Events: kernel.PollOut}}
				if pn, err := p.Poll(fds, 0); err != nil || pn != 1 ||
					fds[0].Revents != kernel.PollOut {
					t.Errorf("pre-failure poll: n=%d err=%v revents=%#x, want PollOut",
						pn, err, fds[0].Revents)
				}
				// Wedge the pipe: a windowful lands in the peer's
				// receive buffer (and is acknowledged), leaving the send
				// buffer full of bytes waiting on credit that never
				// comes.
				if _, err := p.Write(fd, pattern(sndCap+rcvCap, 30)); err != nil {
					t.Errorf("write: %v", err)
				}
				tc.observe(t, p, fd)
				done = true
				k.Wakeup(&done)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if sender == nil {
				t.Fatal("client never connected")
			}
			if sender.Err() != kernel.ErrTimedOut {
				t.Fatalf("sender error = %v, want ErrTimedOut", sender.Err())
			}
			if sender.probes != maxRetries+1 {
				t.Fatalf("sender gave up after %d probes, want %d", sender.probes, maxRetries+1)
			}
			if sender.retries > maxRetries {
				t.Fatalf("persist probes leaked into the loss-retry budget: retries=%d", sender.retries)
			}
			if len(cli.conns) != 0 {
				t.Fatalf("failed connection still live on the client transport")
			}
		})
	}
}

// TestStreamFailureReadiness walks the readiness transitions around a
// connection failure: established reports plain PollOut, a poller
// parked on the idle receive side is woken the instant the connection
// fails, and afterwards readiness latches PollIn|PollErr with Read and
// Write surfacing the terminal error. ErrConnRefused stands in for an
// asynchronous refusal (a port-unreachable arriving mid-connection);
// ErrTimedOut is the organic retry-exhaustion path.
func TestStreamFailureReadiness(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"conn-refused", kernel.ErrConnRefused},
		{"timed-out", kernel.ErrTimedOut},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := newK()
			n := socket.NewNet(k, socket.Loopback())
			srv, _ := NewTransport(k, n, 80)
			cli, _ := NewTransport(k, n, 5001)
			done := false
			k.Spawn("server", func(p *kernel.Proc) {
				_ = srv.Listen(p)
				if _, _, err := srv.Accept(p); err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				for !done {
					_ = p.Sleep(&done, kernel.PWAIT)
				}
			})
			k.Spawn("client", func(p *kernel.Proc) {
				defer func() {
					done = true
					k.Wakeup(&done)
				}()
				fd, c, err := cli.Connect(p, 80)
				if err != nil {
					t.Errorf("connect: %v", err)
					return
				}
				// Established, nothing buffered: writable, not readable,
				// no error condition.
				fds := []kernel.PollFd{{FD: fd, Events: kernel.PollIn | kernel.PollOut}}
				if pn, err := p.Poll(fds, 0); err != nil || pn != 1 ||
					fds[0].Revents != kernel.PollOut {
					t.Errorf("established poll: n=%d err=%v revents=%#x, want PollOut",
						pn, err, fds[0].Revents)
				}
				// Fail the connection at interrupt level while a poller
				// sleeps on the receive side.
				k.Timeout(func() { c.fail(tc.err) }, 5)
				fds[0] = kernel.PollFd{FD: fd, Events: kernel.PollIn}
				pn, err := p.Poll(fds, -1)
				if err != nil || pn != 1 {
					t.Errorf("poll across failure: n=%d err=%v, want 1 <nil>", pn, err)
					return
				}
				if fds[0].Revents&(kernel.PollIn|kernel.PollErr) != kernel.PollIn|kernel.PollErr {
					t.Errorf("post-failure revents=%#x, want PollIn|PollErr", fds[0].Revents)
				}
				// The error latches: a zero-timeout rescan still reports
				// it, and both data paths surface the terminal error.
				fds[0].Revents = 0
				if pn, err := p.Poll(fds, 0); err != nil || pn != 1 ||
					fds[0].Revents&kernel.PollErr == 0 {
					t.Errorf("latched poll: n=%d err=%v revents=%#x, want PollErr",
						pn, err, fds[0].Revents)
				}
				if _, err := p.Read(fd, make([]byte, 1)); err != tc.err {
					t.Errorf("read: err=%v, want %v", err, tc.err)
				}
				if _, err := p.Write(fd, []byte{1}); err != tc.err {
					t.Errorf("write: err=%v, want %v", err, tc.err)
				}
				if c.Err() != tc.err {
					t.Errorf("conn error = %v, want %v", c.Err(), tc.err)
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if len(cli.conns) != 0 {
				t.Fatalf("failed connection still live on the client transport")
			}
		})
	}
}
