package stream

import (
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
)

// TestCloseWithCalloutsInFlight drives Close while the connection's
// timer is armed in each of its two roles — loss retransmission and
// zero-window persist probe — plus a lossy-but-recoverable FIN
// exchange. In every case the teardown must cancel the callout (no
// stale timer fires into a closed connection: the retransmission
// counter must not move after Close returns) and the ghost table must
// see at most one entry per retired key (ghostGen counts addGhost
// calls, so a double entry shows up even though the map would mask it).
// The loss conditions are armed through the kernel fault plan on the
// net's drop site — the same machinery kdpcheck -faults sweeps.
func TestCloseWithCalloutsInFlight(t *testing.T) {
	cases := []struct {
		name string
		// dropEvery arms the net drop site before the client writes
		// (0 = no drops).
		dropEvery int64
		// wedgeWindow writes a windowful the server never reads, so the
		// timer runs in persist-probe mode when Close is called.
		wedgeWindow bool
		// serverReads selects a server that drains to EOF and closes
		// (clean-teardown case) instead of parking forever.
		serverReads bool

		wantClose   error
		wantRetries int64 // -1: don't check
		wantProbes  int64 // -1: don't check
		wantGhosts  int   // per transport, client side
	}{
		// All datagrams lost from the first write on: the timer is
		// retransmitting when Close queues the FIN; retries exhaust and
		// Close surfaces ErrTimedOut. A failed connection never ghosts.
		{"close-during-retx", 1, false, false,
			kernel.ErrTimedOut, int64(maxRetries + 1), 0, 0},
		// The peer's window is wedged shut: the timer is in persist
		// mode when Close queues the FIN behind the unsendable data;
		// probes exhaust and Close surfaces ErrTimedOut.
		{"close-during-probe", 0, true, false,
			kernel.ErrTimedOut, 0, int64(maxRetries + 1), 0},
		// Every 4th datagram lost, both directions: FINs and ACKs are
		// retransmitted but get through; the close completes cleanly
		// and each side retires exactly one ghost entry.
		{"close-lossy-fin", 4, false, true,
			nil, -1, -1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			EnableInvariants(true)
			defer EnableInvariants(false)
			k := newK()
			n := socket.NewNet(k, socket.Loopback())
			srv, _ := NewTransport(k, n, 80)
			cli, _ := NewTransport(k, n, 5001)

			done := false
			k.Spawn("server", func(p *kernel.Proc) {
				_ = srv.Listen(p)
				fd, _, err := srv.Accept(p)
				if err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				if tc.serverReads {
					readToEOF(t, p, fd)
					if err := p.Close(fd); err != nil {
						t.Errorf("server close: %v", err)
					}
					return
				}
				for !done {
					_ = p.Sleep(&done, kernel.PWAIT)
				}
			})

			var c *Conn
			var closeErr error
			retxAfterClose := int64(-1)
			k.Spawn("client", func(p *kernel.Proc) {
				defer func() {
					done = true
					k.Wakeup(&done)
				}()
				fd, cc, err := cli.Connect(p, 80)
				if err != nil {
					t.Errorf("connect: %v", err)
					return
				}
				c = cc
				if tc.dropEvery > 0 {
					k.Faults().Arm(kernel.FaultArm{
						Site: n.DropSite(), Every: tc.dropEvery,
						Match: kernel.MatchAny, Count: -1,
					})
				}
				payload := pattern(4096, 9)
				if tc.wedgeWindow {
					payload = pattern(sndCap+rcvCap, 9)
				}
				if _, err := p.Write(fd, payload); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				closeErr = p.Close(fd)
				// Quiet period: any stale callout still armed for this
				// connection would fire within one full backoff and
				// move the retransmission counter.
				retxAfterClose = c.retx
				p.SleepFor(sim.Duration(2*maxRTO) * 10 * sim.Millisecond)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if c == nil {
				t.Fatal("client never connected")
			}
			if closeErr != tc.wantClose {
				t.Fatalf("close = %v, want %v", closeErr, tc.wantClose)
			}
			if c.state != stateClosed {
				t.Fatalf("state = %v after close, want closed", c.state)
			}
			if c.rtx != nil {
				t.Fatal("retransmission callout still armed after teardown")
			}
			if c.retx != retxAfterClose {
				t.Fatalf("stale callout fired into closed connection: retx %d -> %d",
					retxAfterClose, c.retx)
			}
			if tc.wantRetries >= 0 && c.retries != tc.wantRetries {
				t.Fatalf("retries = %d, want %d", c.retries, tc.wantRetries)
			}
			if tc.wantProbes >= 0 && c.probes != tc.wantProbes {
				t.Fatalf("probes = %d, want %d", c.probes, tc.wantProbes)
			}
			if len(cli.conns) != 0 {
				t.Fatal("connection still live on the client transport after close")
			}
			if got := int(cli.ghostGen); got != tc.wantGhosts {
				t.Fatalf("client addGhost calls = %d, want %d (double ghost entry?)",
					got, tc.wantGhosts)
			}
			if tc.serverReads {
				if got := int(srv.ghostGen); got != 1 {
					t.Fatalf("server addGhost calls = %d, want 1", got)
				}
			}
			if err := CheckInvariants(); err != nil {
				t.Fatalf("invariants after teardown: %v", err)
			}
		})
	}
}
