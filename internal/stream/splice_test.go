package stream

import (
	"bytes"
	"testing"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
	"kdp/internal/splice"
)

// TestSpliceFileToConn is the paper's server data path: the file is
// spliced onto a stream connection with SPLICE_EOF and the client reads
// it back byte-exact — the server process never touches the data.
func TestSpliceFileToConn(t *testing.T) {
	for _, tc := range []struct {
		name      string
		dropEvery int
	}{
		{"clean", 0},
		{"lossy", 9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := kernel.DefaultConfig()
			cfg.MaxRunTime = 3600 * sim.Second
			k := kernel.New(cfg)
			cache := buf.NewCache(k, 400, 8192)
			d := disk.New(k, disk.RAMDisk(2048, 8192))
			d.SetCache(cache)
			if _, err := fs.Mkfs(d, 64); err != nil {
				t.Fatal(err)
			}
			params := socket.Loopback()
			params.DropEvery = tc.dropEvery
			n := socket.NewNet(k, params)
			srv, _ := NewTransport(k, n, 80)
			cli, _ := NewTransport(k, n, 5001)

			data := pattern(150_000, 21)
			var got []byte
			k.Spawn("server", func(p *kernel.Proc) {
				f, err := fs.Mount(p.Ctx(), cache, d)
				if err != nil {
					t.Errorf("mount: %v", err)
					return
				}
				k.Mount("/d0", f)
				fd, err := p.Open("/d0/file", kernel.OCreat|kernel.ORdWr)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				for off := 0; off < len(data); off += 8192 {
					end := off + 8192
					if end > len(data) {
						end = len(data)
					}
					if _, err := p.Write(fd, data[off:end]); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				}
				_ = p.Close(fd)

				_ = srv.Listen(p)
				src, err := p.Open("/d0/file", kernel.ORdOnly)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				cfd, _, err := srv.Accept(p)
				if err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				moved, err := splice.Splice(p, src, cfd, splice.EOF)
				if err != nil {
					t.Errorf("splice: %v", err)
					return
				}
				if moved != int64(len(data)) {
					t.Errorf("splice moved %d bytes, want %d", moved, len(data))
				}
				_ = p.Close(src)
				_ = p.Close(cfd)
			})
			k.Spawn("client", func(p *kernel.Proc) {
				fd, _, err := cli.Connect(p, 80)
				if err != nil {
					t.Errorf("connect: %v", err)
					return
				}
				got = readToEOF(t, p, fd)
				_ = p.Close(fd)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("client received %d bytes, want %d", len(got), len(data))
			}
		})
	}
}
