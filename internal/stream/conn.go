package stream

import (
	"fmt"
	"sort"

	"kdp/internal/kernel"
	"kdp/internal/trace"
)

// Protocol parameters. The RTO starts well above the worst-case link
// queueing delay seen at full fan-out (so loss-free runs never
// retransmit spuriously) and backs off exponentially, as in TCP.
const (
	// MaxSeg is the maximum payload per segment.
	MaxSeg = 8192
	// sndCap bounds the unacknowledged send buffer per connection.
	sndCap = 64 << 10
	// rcvCap is the receive buffer capacity each side advertises.
	rcvCap = 32 << 10
	// initialRTO / maxRTO are retransmission timeouts in clock ticks.
	initialRTO = 50
	maxRTO     = 400
	// maxRetries bounds consecutive retransmissions of one segment
	// before the connection is declared dead.
	maxRetries = 12
	// reasmLimit bounds how far past rcvNxt an out-of-order segment may
	// be stashed for reassembly.
	reasmLimit = 2 * rcvCap
)

type connState int

const (
	stateSynSent connState = iota
	stateEstablished
	stateClosed
)

type connWrite struct {
	data []byte
	done func(error)
}

// Conn is one reliable stream connection. All protocol processing runs
// at interrupt level (segments arrive via the transport's socket
// handler, retransmissions fire from the callout list); process-context
// entry points are the FileOps methods and Close. It implements
// kernel.FileOps plus the splice Source and Sink interfaces, so a file
// can be spliced straight onto a connection.
type Conn struct {
	t      *Transport
	remote int
	id     uint32
	label  string
	state  connState

	// Sender. sndBuf holds bytes [sndUna, sndUna+len(sndBuf)); sndNxt
	// is the next offset to transmit; peerWnd is the receiver's most
	// recent advertised credit.
	sndBuf       []byte
	sndUna       int64
	sndNxt       int64
	peerWnd      int64
	finAt        int64 // FIN sequence offset; -1 until Close
	finAcked     bool
	writeWaiters []connWrite
	rtx          *kernel.Callout
	rtoTicks     int
	retries      int64
	probes       int64 // consecutive zero-window probes unanswered by credit
	retx         int64 // total retransmitted segments (stable under GOMAXPROCS)
	stalled      bool
	failed       error

	// Receiver. rcvBuf holds in-order bytes awaiting the consumer;
	// reasm holds out-of-order segments keyed by start offset; advWnd
	// is the window last advertised to the peer.
	rcvNxt    int64
	rcvBuf    []byte
	reasm     map[int64][]byte
	advWnd    int64
	remoteFin int64 // FIN offset announced by the peer; -1 until seen
	rcvClosed bool

	// Parked splice read.
	pendingMax     int
	pendingDeliver func([]byte, bool, error)

	// Sleep channels (one per wait reason, so wakeups are targeted).
	connW byte // Connect waiting for SYNACK
	rdW   byte // blocked readers
	clW   byte // Close waiting for the FIN acknowledgement

	pollQ kernel.PollQueue

	ckRcvNxt int64 // high-water mark for the reordering invariant
}

func newConn(t *Transport, remote int, id uint32, st connState) *Conn {
	c := &Conn{
		t:         t,
		remote:    remote,
		id:        id,
		label:     fmt.Sprintf("%d->%d#%d", t.port, remote, id),
		state:     st,
		finAt:     -1,
		remoteFin: -1,
		rtoTicks:  initialRTO,
		advWnd:    rcvCap,
		reasm:     make(map[int64][]byte),
	}
	registerConn(c)
	return c
}

// Label identifies the connection in traces ("80->5001#1").
func (c *Conn) Label() string { return c.label }

// RemotePort returns the peer's socket port.
func (c *Conn) RemotePort() int { return c.remote }

// Retransmits returns the number of segments this side retransmitted.
func (c *Conn) Retransmits() int64 { return c.retx }

// Err returns the terminal error, if the connection failed.
func (c *Conn) Err() error { return c.failed }

func (c *Conn) key() uint64 { return connKey(c.remote, c.id) }

func (c *Conn) freeWnd() int64 {
	if f := int64(rcvCap - len(c.rcvBuf)); f > 0 {
		return f
	}
	return 0
}

// dataEnd is the offset just past the last byte accepted for sending.
func (c *Conn) dataEnd() int64 { return c.sndUna + int64(len(c.sndBuf)) }

// seqEnd is the last offset the peer must acknowledge: dataEnd, plus
// one for the FIN once Close has queued it.
func (c *Conn) seqEnd() int64 {
	if c.finAt >= 0 {
		return c.finAt + 1
	}
	return c.dataEnd()
}

// ---- sending ----

// sendSeg emits one segment toward the peer, piggybacking the current
// cumulative ack and receive window.
func (c *Conn) sendSeg(typ byte, seq int64, payload []byte) {
	c.advWnd = c.freeWnd()
	seg := segment{
		typ:     typ,
		connID:  c.id,
		seq:     seq,
		ack:     c.rcvNxt,
		wnd:     c.advWnd,
		payload: payload,
	}
	c.t.sock.SendTo(c.remote, seg.encode(), nil)
}

// admit moves pending write data into the send buffer while capacity
// allows, completing write callbacks whose data is fully admitted —
// admission, not acknowledgement, is the sink-side flow control that
// composes with the splice watermarks.
func (c *Conn) admit() {
	for len(c.writeWaiters) > 0 {
		w := &c.writeWaiters[0]
		space := sndCap - len(c.sndBuf)
		if space <= 0 {
			return
		}
		n := len(w.data)
		if n > space {
			n = space
		}
		c.sndBuf = append(c.sndBuf, w.data[:n]...)
		w.data = w.data[n:]
		if len(w.data) > 0 {
			return
		}
		done := w.done
		c.writeWaiters = c.writeWaiters[1:]
		if done != nil {
			done(nil)
		}
	}
}

// pump transmits as much buffered data as the peer's window allows,
// then the FIN once all data is out. Emits stream.stall (once per
// episode) when data is ready but the window is closed.
func (c *Conn) pump() {
	if c.state != stateEstablished {
		return
	}
	for c.sndNxt < c.dataEnd() {
		inflight := c.sndNxt - c.sndUna
		if inflight >= c.peerWnd {
			if !c.stalled {
				c.stalled = true
				c.t.k.TraceEmit(trace.KindStreamStall, 0,
					c.dataEnd()-c.sndNxt, inflight, c.label)
			}
			break
		}
		n := c.dataEnd() - c.sndNxt
		if n > MaxSeg {
			n = MaxSeg
		}
		if w := c.peerWnd - inflight; n > w {
			n = w
		}
		off := c.sndNxt - c.sndUna
		c.sendSeg(segDATA, c.sndNxt, c.sndBuf[off:off+n])
		c.sndNxt += n
		c.stalled = false
	}
	// The FIN consumes one offset and, like TCP's, ignores the window.
	if c.finAt >= 0 && c.sndNxt == c.finAt {
		c.sendSeg(segFIN, c.finAt, nil)
		c.sndNxt = c.finAt + 1
	}
	c.armRtx()
}

// armRtx keeps the retransmission callout pending whenever the peer
// still owes an acknowledgement — including when nothing is in flight
// because the window is closed, where the timer doubles as the
// zero-window probe (a lost window update would otherwise deadlock the
// connection).
func (c *Conn) armRtx() {
	if c.rtx != nil || c.state == stateClosed {
		return
	}
	if c.state == stateEstablished && c.sndUna >= c.seqEnd() {
		return
	}
	c.rtx = c.t.k.Timeout(c.rtxFire, c.rtoTicks)
}

// rtxFire retransmits the oldest unacknowledged segment with
// exponential backoff. Zero-window probes (window closed, nothing
// lost) are counted separately from loss retries, mirroring TCP's
// persist timer: a receiver may legitimately stay full across many
// probe intervals, so a probe that draws an acknowledgement does not
// tick the loss budget — but a peer that never reopens its window
// after maxRetries consecutive probes is declared dead, the way the
// BSD persist timer eventually gives up on a peer that acknowledges
// probes while advertising zero forever.
func (c *Conn) rtxFire() {
	c.rtx = nil
	if c.state == stateClosed {
		return
	}
	probing := c.state == stateEstablished && c.peerWnd == 0
	if probing {
		c.probes++
		if c.probes > maxRetries {
			c.fail(kernel.ErrTimedOut)
			return
		}
	} else {
		c.retries++
		if c.retries > maxRetries {
			c.fail(kernel.ErrTimedOut)
			return
		}
	}
	c.retx++
	switch {
	case c.state == stateSynSent:
		c.t.k.TraceEmit(trace.KindStreamRetx, 0, 0, c.retries, c.label)
		c.sendSeg(segSYN, 0, nil)
	case c.sndUna < c.dataEnd():
		n := c.dataEnd() - c.sndUna
		if n > MaxSeg {
			n = MaxSeg
		}
		c.t.k.TraceEmit(trace.KindStreamRetx, 0, c.sndUna, c.retries, c.label)
		c.sendSeg(segDATA, c.sndUna, c.sndBuf[:n])
	case c.finAt >= 0 && c.sndUna == c.finAt:
		c.t.k.TraceEmit(trace.KindStreamRetx, 0, c.finAt, c.retries, c.label)
		c.sendSeg(segFIN, c.finAt, nil)
	default:
		return // fully acknowledged in the meantime
	}
	if c.rtoTicks *= 2; c.rtoTicks > maxRTO {
		c.rtoTicks = maxRTO
	}
	c.armRtx()
}

func (c *Conn) stopRtx() {
	if c.rtx != nil {
		c.t.k.Untimeout(c.rtx)
		c.rtx = nil
	}
}

// ---- segment input (interrupt level) ----

// handleSegment is the protocol input routine, called from the
// transport demultiplexer at interrupt level.
func (c *Conn) handleSegment(seg segment) {
	if c.state == stateClosed {
		return
	}
	if c.state == stateSynSent {
		if seg.typ != segSYNACK {
			return
		}
		c.state = stateEstablished
		c.peerWnd = seg.wnd
		c.stopRtx()
		c.retries = 0
		c.rtoTicks = initialRTO
		c.t.k.Wakeup(&c.connW)
		c.pollQ.Notify(kernel.PollOut) // now writable
		return
	}

	// Acknowledgement and window processing (every segment carries
	// both).
	if seg.ack >= c.sndUna && seg.ack <= c.seqEnd() {
		c.peerWnd = seg.wnd
		if seg.wnd > 0 {
			c.probes = 0 // the window reopened; the peer is alive
		}
		if seg.ack > c.sndUna {
			c.t.k.TraceEmit(trace.KindStreamAck, 0, seg.ack, seg.wnd, c.label)
			acked := seg.ack - c.sndUna
			if db := int64(len(c.sndBuf)); acked > db {
				acked = db // the FIN's offset carries no buffer bytes
			}
			c.sndBuf = c.sndBuf[acked:]
			c.sndUna = seg.ack
			if c.sndNxt < c.sndUna {
				c.sndNxt = c.sndUna
			}
			c.retries = 0
			c.rtoTicks = initialRTO
			c.stopRtx()
			if c.finAt >= 0 && seg.ack > c.finAt && !c.finAcked {
				c.finAcked = true
				c.t.k.Wakeup(&c.clW)
			}
			c.admit()
			c.pollQ.Notify(kernel.PollOut) // acknowledged bytes opened send space
		}
		c.pump()
	}

	switch seg.typ {
	case segDATA:
		c.acceptData(seg.seq, seg.payload)
		c.sendSeg(segACK, 0, nil) // receivers always answer, even duplicates
	case segFIN:
		if c.remoteFin < 0 {
			c.remoteFin = seg.seq
		}
		c.tryConsumeFin()
		c.sendSeg(segACK, 0, nil)
	}
	c.maybeGhost()
}

// acceptData admits payload at offset seq. In-order data is accepted
// while receive space remains (one segment of overshoot is allowed, so
// a window probe never wedges at an exact boundary); out-of-order data
// is stashed for reassembly within a bounded horizon.
func (c *Conn) acceptData(seq int64, payload []byte) {
	if len(payload) == 0 {
		return
	}
	end := seq + int64(len(payload))
	switch {
	case end <= c.rcvNxt:
		return // entirely duplicate
	case seq <= c.rcvNxt:
		if c.freeWnd() == 0 {
			return // window closed: acknowledge only
		}
		c.rcvBuf = append(c.rcvBuf, payload[c.rcvNxt-seq:]...)
		c.rcvNxt = end
		c.drainReasm()
		c.tryConsumeFin()
		c.serveReader()
	case seq <= c.rcvNxt+reasmLimit:
		if _, dup := c.reasm[seq]; !dup {
			c.reasm[seq] = append([]byte(nil), payload...)
		}
	}
}

// drainReasm folds stashed out-of-order segments into the in-order
// buffer. Keys are walked in sorted order so reassembly is
// deterministic regardless of arrival interleaving.
func (c *Conn) drainReasm() {
	for len(c.reasm) > 0 {
		keys := make([]int64, 0, len(c.reasm))
		for k := range c.reasm {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		progressed := false
		for _, k := range keys {
			if k > c.rcvNxt {
				continue
			}
			p := c.reasm[k]
			delete(c.reasm, k)
			if end := k + int64(len(p)); end > c.rcvNxt {
				c.rcvBuf = append(c.rcvBuf, p[c.rcvNxt-k:]...)
				c.rcvNxt = end
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// tryConsumeFin advances over the peer's FIN once all data before it
// has been received; readers then see EOF after draining the buffer.
func (c *Conn) tryConsumeFin() {
	if c.rcvClosed || c.remoteFin < 0 || c.rcvNxt != c.remoteFin {
		return
	}
	c.rcvNxt = c.remoteFin + 1
	c.rcvClosed = true
	c.serveReader()
}

// serveReader hands buffered data (or EOF) to a parked splice read and
// wakes blocked readers.
func (c *Conn) serveReader() {
	if c.pendingDeliver != nil && (len(c.rcvBuf) > 0 || c.rcvClosed) {
		deliver := c.pendingDeliver
		c.pendingDeliver = nil
		data, eof := c.take(c.pendingMax)
		deliver(data, eof, nil)
	}
	c.t.k.Wakeup(&c.rdW)
	events := kernel.PollIn
	if c.rcvClosed {
		events |= kernel.PollHup
	}
	c.pollQ.Notify(events)
}

// take removes up to max in-order bytes, sending a window update when
// the drain opens enough new credit to matter (a full segment, or any
// space after the window was closed).
func (c *Conn) take(max int) (data []byte, eof bool) {
	n := len(c.rcvBuf)
	if n > max {
		n = max
	}
	if n > 0 {
		data = append([]byte(nil), c.rcvBuf[:n]...)
		c.rcvBuf = c.rcvBuf[n:]
	}
	if c.state == stateEstablished && !c.rcvClosed {
		if f := c.freeWnd(); f-c.advWnd >= MaxSeg || (c.advWnd == 0 && f > 0) {
			c.sendSeg(segACK, 0, nil)
		}
	}
	return data, c.rcvClosed && len(c.rcvBuf) == 0
}

// maybeGhost retires the connection once both directions are done: our
// FIN is acknowledged and the peer's FIN consumed. The transport keeps
// only the final ack for the key (see Transport.ghosts), so a
// retransmitted FIN from a slow peer still gets its answer without a
// TIME_WAIT timer.
func (c *Conn) maybeGhost() {
	if c.state != stateEstablished || !c.finAcked || !c.rcvClosed {
		return
	}
	c.state = stateClosed
	c.stopRtx()
	delete(c.t.conns, c.key())
	c.t.addGhost(c.key(), c.rcvNxt)
	unregisterConn(c)
}

// fail tears the connection down on retry exhaustion, erroring every
// parked caller.
func (c *Conn) fail(err error) {
	if c.state == stateClosed {
		return
	}
	c.failed = err
	c.state = stateClosed
	c.stopRtx()
	delete(c.t.conns, c.key())
	unregisterConn(c)
	for _, w := range c.writeWaiters {
		if w.done != nil {
			w.done(err)
		}
	}
	c.writeWaiters = nil
	if deliver := c.pendingDeliver; deliver != nil {
		c.pendingDeliver = nil
		deliver(nil, false, err)
	}
	c.t.k.Wakeup(&c.connW)
	c.t.k.Wakeup(&c.rdW)
	c.t.k.Wakeup(&c.clW)
	c.pollQ.Notify(kernel.PollIn | kernel.PollOut | kernel.PollErr)
}

// ---- kernel.FileOps ----

// Read implements kernel.FileOps: blocks for in-order stream bytes;
// zero-length return means the peer closed.
func (c *Conn) Read(ctx kernel.Ctx, b []byte, off int64) (int, error) {
	for len(c.rcvBuf) == 0 {
		if c.failed != nil {
			return 0, c.failed
		}
		if c.rcvClosed {
			return 0, nil
		}
		if !ctx.CanSleep() {
			return 0, kernel.ErrWouldBlock
		}
		if err := ctx.Sleep(&c.rdW, kernel.PSOCK+1); err != nil {
			return 0, err
		}
	}
	data, _ := c.take(len(b))
	copy(b, data)
	return len(data), nil
}

// Write implements kernel.FileOps: blocks until the bytes have been
// admitted to the send buffer (transport acknowledgement proceeds
// asynchronously). A nonblocking write admits only what the send
// buffer can take right now, returning the partial count, or
// ErrWouldBlock when not a single byte fits.
func (c *Conn) Write(ctx kernel.Ctx, b []byte, off int64) (int, error) {
	if c.failed != nil {
		return 0, c.failed
	}
	if c.finAt >= 0 || c.state != stateEstablished {
		return 0, kernel.ErrBadFD
	}
	if !ctx.CanSleep() {
		if len(c.writeWaiters) > 0 {
			return 0, kernel.ErrWouldBlock
		}
		space := sndCap - len(c.sndBuf)
		if space <= 0 {
			return 0, kernel.ErrWouldBlock
		}
		n := len(b)
		if n > space {
			n = space
		}
		c.sndBuf = append(c.sndBuf, b[:n]...)
		c.pump()
		return n, nil
	}
	var werr error
	donef := false
	c.SpliceWrite(b, func(err error) {
		werr = err
		donef = true
		c.t.k.Wakeup(&donef)
	})
	for !donef {
		if err := ctx.Sleep(&donef, kernel.PSOCK); err != nil {
			return 0, err
		}
	}
	if werr != nil {
		return 0, werr
	}
	return len(b), nil
}

// Writev implements kernel.WritevOps by coalescing the whole iovec
// array into one send-buffer admission. Per-iovec writes would admit
// (and often segment) each iovec separately; one gathered admission
// lets pump cut MaxSeg-sized segments across iovec boundaries, so a
// vector of small buffers goes out in fewer, fuller segments.
func (c *Conn) Writev(ctx kernel.Ctx, iovs [][]byte, off int64) (int, error) {
	u := kernel.Uio{Iovs: iovs}
	return c.Write(ctx, u.Gather(), off)
}

// Size implements kernel.FileOps.
func (c *Conn) Size(ctx kernel.Ctx) (int64, error) { return 0, nil }

// Sync implements kernel.FileOps.
func (c *Conn) Sync(ctx kernel.Ctx) error { return nil }

// ---- kernel.PollOps ----

// PollReady implements kernel.PollOps: readable when in-order bytes,
// EOF, or a terminal error await the reader; writable when the send
// buffer can admit at least one byte and nobody is queued ahead.
// PollErr/PollHup conditions are reported whether requested or not.
func (c *Conn) PollReady(events int) int {
	r := 0
	if c.failed != nil {
		r |= kernel.PollErr
	}
	if c.rcvClosed {
		r |= kernel.PollHup
	}
	if events&kernel.PollIn != 0 &&
		(len(c.rcvBuf) > 0 || c.rcvClosed || c.failed != nil) {
		r |= kernel.PollIn
	}
	if events&kernel.PollOut != 0 &&
		c.state == stateEstablished && c.failed == nil && c.finAt < 0 &&
		len(c.writeWaiters) == 0 && len(c.sndBuf) < sndCap {
		r |= kernel.PollOut
	}
	return r
}

// PollQueue implements kernel.PollOps.
func (c *Conn) PollQueue() *kernel.PollQueue { return &c.pollQ }

// Close implements kernel.FileOps: queues the FIN after all buffered
// data and blocks until the peer acknowledges it (or the retry limit
// declares the peer dead, returning ErrTimedOut). The blocked process
// is what keeps the machine alive while retransmissions drain.
func (c *Conn) Close(ctx kernel.Ctx) error {
	if c.failed != nil {
		return c.failed
	}
	if c.finAt >= 0 || c.state == stateClosed {
		return nil
	}
	// Force-admit any writes still pending so the FIN covers them.
	for _, w := range c.writeWaiters {
		c.sndBuf = append(c.sndBuf, w.data...)
		if w.done != nil {
			w.done(nil)
		}
	}
	c.writeWaiters = nil
	c.finAt = c.dataEnd()
	c.pump()
	for !c.finAcked && c.failed == nil {
		if !ctx.CanSleep() {
			return kernel.ErrWouldBlock
		}
		if err := ctx.Sleep(&c.clW, kernel.PSOCK); err != nil {
			return err
		}
	}
	return c.failed
}

// ---- splice endpoints ----

// SpliceWrite implements the splice Sink interface: done fires once the
// chunk is admitted to the send buffer, so splice's write watermark
// composes with the transport window — a closed window holds bytes in
// the send buffer, the full send buffer parks admissions, and the
// parked admissions throttle the splice engine.
func (c *Conn) SpliceWrite(data []byte, done func(error)) {
	if c.failed != nil {
		done(c.failed)
		return
	}
	if c.finAt >= 0 || c.state != stateEstablished {
		done(kernel.ErrBadFD)
		return
	}
	c.writeWaiters = append(c.writeWaiters, connWrite{
		data: append([]byte(nil), data...),
		done: done,
	})
	c.admit()
	c.pump()
}

// SpliceRead implements the splice Source interface: in-order bytes are
// delivered immediately if buffered, otherwise on the arrival
// interrupt.
func (c *Conn) SpliceRead(max int, deliver func([]byte, bool, error)) {
	if c.failed != nil {
		deliver(nil, false, c.failed)
		return
	}
	if len(c.rcvBuf) > 0 || c.rcvClosed {
		data, eof := c.take(max)
		deliver(data, eof, nil)
		return
	}
	if c.pendingDeliver != nil {
		deliver(nil, false, kernel.ErrWouldBlock)
		return
	}
	c.pendingMax = max
	c.pendingDeliver = deliver
}

// CancelSpliceRead withdraws a parked splice read (splice interrupt
// path); the deliver callback will never run.
func (c *Conn) CancelSpliceRead() bool {
	if c.pendingDeliver == nil {
		return false
	}
	c.pendingDeliver = nil
	return true
}
