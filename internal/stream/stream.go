// Package stream implements a TCP-lite reliable stream transport
// layered on the datagram network (internal/socket): sequence-numbered
// segments with cumulative acknowledgements, retransmission driven by
// the kernel callout list with exponential backoff, and a sliding
// sender window fed by receiver-advertised credit.
//
// Connections implement kernel.FileOps and the splice Source/Sink
// interfaces, so splice(file_fd, conn_fd, SPLICE_EOF) streams a file to
// a client entirely at interrupt level, with the splice watermarks
// composing with the transport window — the in-kernel data path the
// paper's §5.1/§7 server scenario calls for.
//
// All protocol input runs at interrupt level: the transport binds one
// datagram socket and installs an input handler that demultiplexes
// arriving segments onto connections, the way netisr-level protocol
// processing feeds socket buffers in the BSD stack.
package stream

import (
	"kdp/internal/kernel"
	"kdp/internal/socket"
)

// connKey identifies a connection by peer port and initiator-chosen id,
// so ids from different peers never collide.
func connKey(remote int, id uint32) uint64 {
	return uint64(uint32(remote))<<32 | uint64(id)
}

// Transport is a stream endpoint bound to one port on a Net. One
// transport serves both roles: Listen/Accept for servers, Connect for
// clients; many connections share the port.
type Transport struct {
	k    *kernel.Kernel
	sock *socket.Socket
	port int

	nextID uint32
	conns  map[uint64]*Conn
	// ghosts maps retired connection keys to their final cumulative
	// ack. A FIN retransmitted after both sides finished still earns an
	// acknowledgement from here. Entries expire on the callout list
	// after twice the give-up interval (see addGhost) — by then a
	// conforming peer has either heard the ack or torn the connection
	// down — so the map stays bounded by the churn inside one TTL
	// window instead of growing with every connection ever retired.
	ghosts   map[uint64]*ghostEntry
	ghostGen uint64

	listening bool
	acceptq   []*Conn
	acceptW   byte // Accept sleep channel
	pollQ     kernel.PollQueue

	accepted int64
}

// NewTransport binds a stream transport to port on net.
func NewTransport(k *kernel.Kernel, net *socket.Net, port int) (*Transport, error) {
	s, err := net.NewSocket(port)
	if err != nil {
		return nil, err
	}
	t := &Transport{
		k:      k,
		sock:   s,
		port:   port,
		conns:  make(map[uint64]*Conn),
		ghosts: make(map[uint64]*ghostEntry),
	}
	registerTransport(t)
	s.SetHandler(t.input)
	return t, nil
}

// Port returns the bound port.
func (t *Transport) Port() int { return t.port }

// Accepted returns the number of connections handed out by Accept.
func (t *Transport) Accepted() int64 { return t.accepted }

// input is the protocol input routine, invoked at interrupt level for
// every datagram arriving on the transport's port.
func (t *Transport) input(data []byte, from int, eof bool) {
	seg, ok := decodeSegment(data)
	if !ok || eof {
		return
	}
	key := connKey(from, seg.connID)
	if seg.typ == segSYN {
		t.handleSYN(key, from, seg)
		return
	}
	if c, live := t.conns[key]; live {
		c.handleSegment(seg)
		return
	}
	if e, ghost := t.ghosts[key]; ghost && seg.typ != segACK {
		// A lost final ACK left the peer retransmitting its FIN:
		// answer with the recorded cumulative ack.
		reply := segment{typ: segACK, connID: seg.connID, ack: e.final}
		t.sock.SendTo(from, reply.encode(), nil)
	}
}

// ghostEntry is the retained state of a retired connection: enough to
// acknowledge a retransmitted FIN, plus its reaping deadline.
type ghostEntry struct {
	final   int64 // final cumulative ack for the key
	expires int64 // tick after which the entry must be gone
	gen     uint64
}

// ghostTTL is the retired-state retention in ticks: twice the give-up
// interval (the full RTO backoff schedule a peer walks before
// declaring the connection dead). After that no conforming peer can
// still be retransmitting its FIN, so the entry is useless.
func ghostTTL() int {
	total, rto := 0, initialRTO
	for i := 0; i < maxRetries; i++ {
		total += rto
		if rto *= 2; rto > maxRTO {
			rto = maxRTO
		}
	}
	return 2 * total
}

// addGhost records a retired connection and schedules its expiry. The
// generation guards the callout against the key being reused (which
// deletes the entry) and re-retired before the old callout fires.
func (t *Transport) addGhost(key uint64, final int64) {
	ttl := ghostTTL()
	t.ghostGen++
	gen := t.ghostGen
	t.ghosts[key] = &ghostEntry{final: final, expires: t.k.Ticks() + int64(ttl), gen: gen}
	t.k.Timeout(func() {
		if e, ok := t.ghosts[key]; ok && e.gen == gen {
			delete(t.ghosts, key)
		}
	}, ttl)
}

// Ghosts returns the number of retired-connection records currently
// retained (bounded by the churn within one TTL window).
func (t *Transport) Ghosts() int { return len(t.ghosts) }

func (t *Transport) handleSYN(key uint64, from int, seg segment) {
	delete(t.ghosts, key) // key reuse starts a fresh connection
	if c, live := t.conns[key]; live {
		// Duplicate SYN: the SYNACK was lost; repeat it.
		c.sendSeg(segSYNACK, 0, nil)
		return
	}
	if !t.listening {
		return
	}
	c := newConn(t, from, seg.connID, stateEstablished)
	c.peerWnd = seg.wnd
	t.conns[key] = c
	t.acceptq = append(t.acceptq, c)
	c.sendSeg(segSYNACK, 0, nil)
	t.k.Wakeup(&t.acceptW)
	t.pollQ.Notify(kernel.PollIn)
}

// ---- connection-setup syscalls ----

// Listen marks the transport as accepting connections.
func (t *Transport) Listen(p *kernel.Proc) error {
	defer p.SyscallExit(p.SyscallEnter("listen"))
	t.listening = true
	return nil
}

// Accept blocks until a connection arrives, installs it in the caller's
// descriptor table, and returns the descriptor.
func (t *Transport) Accept(p *kernel.Proc) (int, *Conn, error) {
	defer p.SyscallExit(p.SyscallEnter("accept"))
	if !t.listening {
		return -1, nil, kernel.ErrInval
	}
	for len(t.acceptq) == 0 {
		if err := p.Sleep(&t.acceptW, kernel.PSOCK+1); err != nil {
			return -1, nil, err
		}
	}
	c := t.acceptq[0]
	t.acceptq = t.acceptq[1:]
	t.accepted++
	fd := p.InstallFile(c, kernel.ORdWr)
	return fd, c, nil
}

// AcceptNB is the nonblocking accept: it returns ErrWouldBlock when no
// connection is queued instead of sleeping. Event-loop servers poll
// the listener file (see File) and then drain the queue with AcceptNB.
func (t *Transport) AcceptNB(p *kernel.Proc) (int, *Conn, error) {
	defer p.SyscallExit(p.SyscallEnter("accept"))
	if !t.listening {
		return -1, nil, kernel.ErrInval
	}
	if len(t.acceptq) == 0 {
		return -1, nil, kernel.ErrWouldBlock
	}
	c := t.acceptq[0]
	t.acceptq = t.acceptq[1:]
	t.accepted++
	fd := p.InstallFile(c, kernel.ORdWr)
	return fd, c, nil
}

// listenFile adapts the transport's accept queue to the descriptor
// layer so it can sit in a poll set: readable exactly when an accepted
// connection is waiting. Data transfer goes through connections, so
// the FileOps proper are stubs.
type listenFile struct{ t *Transport }

func (lf listenFile) Read(ctx kernel.Ctx, b []byte, off int64) (int, error) {
	return 0, kernel.ErrOpNotSupp
}
func (lf listenFile) Write(ctx kernel.Ctx, b []byte, off int64) (int, error) {
	return 0, kernel.ErrOpNotSupp
}
func (lf listenFile) Size(ctx kernel.Ctx) (int64, error) { return 0, nil }
func (lf listenFile) Sync(ctx kernel.Ctx) error          { return nil }
func (lf listenFile) Close(ctx kernel.Ctx) error         { return nil }

// PollReady implements kernel.PollOps: readable when Accept would not
// block.
func (lf listenFile) PollReady(events int) int {
	if events&kernel.PollIn != 0 && len(lf.t.acceptq) > 0 {
		return kernel.PollIn
	}
	return 0
}

// PollQueue implements kernel.PollOps.
func (lf listenFile) PollQueue() *kernel.PollQueue { return &lf.t.pollQ }

// File returns the transport's listener pseudo-file for installation
// in a descriptor table (the poll handle for the accept queue).
func (t *Transport) File() kernel.FileOps { return listenFile{t} }

// Connect opens a connection to the transport listening on remotePort,
// blocking through the handshake. It returns the installed descriptor.
// Connecting to an unbound port fails immediately with ErrConnRefused;
// a bound but unresponsive port times out after the retry budget.
func (t *Transport) Connect(p *kernel.Proc, remotePort int) (int, *Conn, error) {
	defer p.SyscallExit(p.SyscallEnter("connect"))
	if err := t.sock.Connect(remotePort); err != nil {
		return -1, nil, err
	}
	t.nextID++
	c := newConn(t, remotePort, t.nextID, stateSynSent)
	t.conns[c.key()] = c
	c.sendSeg(segSYN, 0, nil)
	c.armRtx()
	for c.state == stateSynSent {
		if err := p.Sleep(&c.connW, kernel.PSOCK+1); err != nil {
			return -1, nil, err
		}
	}
	if c.failed != nil {
		return -1, nil, c.failed
	}
	fd := p.InstallFile(c, kernel.ORdWr)
	return fd, c, nil
}
