package stream

import "encoding/binary"

// Segment wire format. Every segment — control or data — carries the
// sender's cumulative acknowledgement and advertised receive window, so
// acknowledgements piggyback on data flowing the other way and a pure
// ACK is just a segment with no payload.
//
//	byte  0     type (SYN, SYNACK, DATA, ACK, FIN)
//	bytes 1-4   connection id (chosen by the initiator)
//	bytes 5-12  seq: byte offset of the payload (DATA) or of the FIN
//	bytes 13-20 ack: next byte offset expected from the peer
//	bytes 21-24 wnd: advertised receive window in bytes
//	bytes 25-   payload (DATA only)
//
// Sequence numbers are byte offsets from zero, as in TCP; SYN and
// SYNACK carry no sequence space, data starts at offset 0, and the FIN
// consumes one offset past the last data byte.
const (
	segSYN = iota + 1
	segSYNACK
	segDATA
	segACK
	segFIN
)

// hdrBytes is the fixed header length; it is charged on the wire like
// payload, standing in for the TCP/IP header overhead.
const hdrBytes = 25

type segment struct {
	typ     byte
	connID  uint32
	seq     int64
	ack     int64
	wnd     int64
	payload []byte
}

func (s segment) encode() []byte {
	b := make([]byte, hdrBytes+len(s.payload))
	b[0] = s.typ
	binary.BigEndian.PutUint32(b[1:5], s.connID)
	binary.BigEndian.PutUint64(b[5:13], uint64(s.seq))
	binary.BigEndian.PutUint64(b[13:21], uint64(s.ack))
	binary.BigEndian.PutUint32(b[21:25], uint32(s.wnd))
	copy(b[hdrBytes:], s.payload)
	return b
}

func decodeSegment(b []byte) (segment, bool) {
	if len(b) < hdrBytes || b[0] < segSYN || b[0] > segFIN {
		return segment{}, false
	}
	return segment{
		typ:     b[0],
		connID:  binary.BigEndian.Uint32(b[1:5]),
		seq:     int64(binary.BigEndian.Uint64(b[5:13])),
		ack:     int64(binary.BigEndian.Uint64(b[13:21])),
		wnd:     int64(binary.BigEndian.Uint32(b[21:25])),
		payload: b[hdrBytes:],
	}, true
}
