package stream

import (
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
)

// runConn opens one connection from cli to srv's port, moves a little
// data, and closes both ends cleanly.
func runConn(t *testing.T, k *kernel.Kernel, srv, cli *Transport, srvPort int) {
	t.Helper()
	k.Spawn("server", func(p *kernel.Proc) {
		if err := srv.Listen(p); err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		fd, _, err := srv.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		readToEOF(t, p, fd)
		if err := p.Close(fd); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	k.Spawn("client", func(p *kernel.Proc) {
		fd, _, err := cli.Connect(p, srvPort)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if _, err := p.Write(fd, pattern(1000, 3)); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := p.Close(fd); err != nil {
			t.Errorf("client close: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGhostEntriesExpire is the regression test for the unbounded ghost
// map: a retired connection's record used to live until its key was
// reused, which for one-shot port pairs was forever. Every ghost must
// now be reaped by its expiry callout.
func TestGhostEntriesExpire(t *testing.T) {
	EnableInvariants(true)
	defer EnableInvariants(false)
	k := newK()
	n := socket.NewNet(k, socket.Loopback())
	srv, _ := NewTransport(k, n, 80)
	cli, _ := NewTransport(k, n, 5001)

	runConn(t, k, srv, cli, 80)
	if srv.Ghosts()+cli.Ghosts() == 0 {
		t.Fatal("no ghost entries after a clean close; nothing to test")
	}
	if err := CheckInvariants(); err != nil {
		t.Fatalf("fresh ghosts flagged: %v", err)
	}

	// Sleep past the retention window; the expiry callouts must reap
	// every entry.
	k.Spawn("wait", func(p *kernel.Proc) {
		p.SleepFor(sim.Duration(ghostTTL()+5) * 10 * sim.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Ghosts() + cli.Ghosts(); got != 0 {
		t.Errorf("%d ghost entr(ies) outlived the retention window", got)
	}
	if err := CheckInvariants(); err != nil {
		t.Errorf("invariants after expiry: %v", err)
	}
}

// TestGhostAnswersLateSegmentWithoutResurrecting pins the ghost-table
// reply path: a data or FIN segment arriving late for a retired key is
// answered with the recorded final cumulative ack and nothing more — no
// connection state is re-created, the entry's expiry clock is not
// reset (the reaping deadline set at retirement stands), and a pure
// ACK draws no reply at all.
func TestGhostAnswersLateSegmentWithoutResurrecting(t *testing.T) {
	EnableInvariants(true)
	defer EnableInvariants(false)
	k := newK()
	n := socket.NewNet(k, socket.Loopback())
	tr, err := NewTransport(k, n, 80)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := n.NewSocket(6001)
	if err != nil {
		t.Fatal(err)
	}
	var replies []segment
	peer.SetHandler(func(data []byte, from int, eof bool) {
		if s, ok := decodeSegment(data); ok && !eof {
			replies = append(replies, s)
		}
	})

	const id = 7
	key := connKey(6001, id)
	tr.addGhost(key, 777)
	e0 := *tr.ghosts[key]
	conns0 := len(tr.conns)

	k.Spawn("drive", func(p *kernel.Proc) {
		// Partway into the retention window a retransmitted FIN and a
		// stray data segment arrive for the retired key.
		p.SleepFor(sim.Duration(ghostTTL()/2) * 10 * sim.Millisecond)
		for _, typ := range []byte{segFIN, segDATA} {
			tr.input(segment{typ: typ, connID: id, seq: 777}.encode(), 6001, false)
		}
		p.SleepFor(200 * sim.Millisecond) // let the replies cross the link

		if len(replies) != 2 {
			t.Errorf("peer received %d repl(ies), want 2", len(replies))
			return
		}
		for i, r := range replies {
			if r.typ != segACK || r.connID != id || r.ack != 777 {
				t.Errorf("reply %d = type %d connID %d ack %d, want ACK id=%d ack=777",
					i, r.typ, r.connID, r.ack, id)
			}
		}
		e := tr.ghosts[key]
		if e == nil {
			t.Error("ghost entry vanished before its deadline")
			return
		}
		if *e != e0 {
			t.Errorf("late segment perturbed the ghost entry: %+v, want %+v (expiry clock must not reset)", *e, e0)
		}
		if len(tr.conns) != conns0 {
			t.Errorf("late segment resurrected connection state: %d conn(s), want %d", len(tr.conns), conns0)
		}
		if err := CheckInvariants(); err != nil {
			t.Errorf("invariants after late segments: %v", err)
		}

		// A pure ACK for a retired key is dropped silently.
		tr.input(segment{typ: segACK, connID: id}.encode(), 6001, false)
		p.SleepFor(200 * sim.Millisecond)
		if len(replies) != 2 {
			t.Errorf("late ACK drew %d extra repl(ies), want silence", len(replies)-2)
		}

		// The deadline set at retirement stands: the entry is reaped on
		// that schedule, not ghostTTL after the late traffic.
		p.SleepFor(sim.Duration(ghostTTL()/2+5) * 10 * sim.Millisecond)
		if tr.Ghosts() != 0 {
			t.Errorf("%d ghost entr(ies) outlived the original deadline", tr.Ghosts())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGhostReRetireSurvivesStaleCallout pins the generation guard on
// the expiry callout: a key whose ghost is deleted by reuse (what
// handleSYN does when a fresh incarnation's SYN arrives) and then
// re-retired must not be reaped by the FIRST retirement's still-pending
// callout — only by its own.
func TestGhostReRetireSurvivesStaleCallout(t *testing.T) {
	k := newK()
	n := socket.NewNet(k, socket.Loopback())
	tr, err := NewTransport(k, n, 80)
	if err != nil {
		t.Fatal(err)
	}
	const key = 42
	half := sim.Duration(ghostTTL()/2) * 10 * sim.Millisecond
	tr.addGhost(key, 100)
	k.Spawn("drive", func(p *kernel.Proc) {
		p.SleepFor(half)
		delete(tr.ghosts, key) // key reuse: a new SYN clears the entry
		tr.addGhost(key, 200)
		// Past the first callout's deadline, inside the second's window.
		p.SleepFor(half + 100*sim.Millisecond)
		e := tr.ghosts[key]
		if e == nil {
			t.Error("stale expiry callout reaped the re-retired ghost early")
		} else if e.final != 200 {
			t.Errorf("ghost holds final ack %d, want the re-retirement's 200", e.final)
		}
		// And past the second deadline the entry is gone.
		p.SleepFor(half + 100*sim.Millisecond)
		if tr.Ghosts() != 0 {
			t.Errorf("%d ghost entr(ies) outlived the retention window", tr.Ghosts())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
