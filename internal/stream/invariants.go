package stream

import (
	"fmt"
	"sort"
)

// Invariant checker for the simcheck harness, mirroring the splice
// one: a registry of live connections is maintained only while
// EnableInvariants(true) is in effect, so production runs pay nothing.
//
// Invariant catalog (stream):
//
//	stream-seq-order       sndUna <= sndNxt <= seqEnd; rcvNxt never
//	                       moves backward (no data reordering past the
//	                       cumulative-ack point)
//	stream-wnd-neg         advertised and peer windows never negative
//	stream-rcv-bound       the receive buffer never exceeds its
//	                       capacity by more than one segment (the
//	                       allowed probe overshoot)
//	stream-reasm-bound     reassembly holds only offsets in
//	                       (rcvNxt, rcvNxt+reasmLimit]
//	stream-retry-bound     consecutive retransmissions of one segment
//	                       never exceed maxRetries
//	stream-probe-bound     consecutive zero-window probes without the
//	                       window reopening never exceed maxRetries
//	stream-ghost-bound     retired-connection records are reaped by
//	                       their expiry callout: no ghost entry
//	                       outlives its deadline (the map cannot grow
//	                       with every connection ever retired)
//	stream-ghost-no-resurrect
//	                       a retired key never coexists with live
//	                       connection state: answering a late segment
//	                       out of the ghost table must not re-create a
//	                       connection (only a fresh SYN may, and
//	                       handleSYN deletes the ghost first)
//	stream-conn-leak       (CheckDrained) once a machine has run to
//	                       idle, every live connection is quiescent:
//	                       no unacknowledged or unadmitted send data,
//	                       no undelivered receive data, no parked
//	                       splice read, no half-finished handshake
var (
	invariantsOn   bool
	liveConns      map[*Conn]struct{}
	liveTransports map[*Transport]struct{}
)

// EnableInvariants switches connection tracking on or off. Not safe to
// toggle while a machine is running.
func EnableInvariants(on bool) {
	invariantsOn = on
	if on {
		liveConns = make(map[*Conn]struct{})
		liveTransports = make(map[*Transport]struct{})
	} else {
		liveConns = nil
		liveTransports = nil
	}
}

func registerTransport(t *Transport) {
	if invariantsOn {
		liveTransports[t] = struct{}{}
	}
}

func registerConn(c *Conn) {
	if invariantsOn {
		liveConns[c] = struct{}{}
	}
}

func unregisterConn(c *Conn) {
	if invariantsOn {
		delete(liveConns, c)
	}
}

func violation(name, label, format string, args ...any) error {
	return fmt.Errorf("invariant %s violated on %s: %s", name, label, fmt.Sprintf(format, args...))
}

// sortedLive returns the registered connections in label order, so
// checker errors are deterministic.
func sortedLive() []*Conn {
	conns := make([]*Conn, 0, len(liveConns))
	for c := range liveConns {
		conns = append(conns, c)
	}
	sort.Slice(conns, func(i, j int) bool { return conns[i].label < conns[j].label })
	return conns
}

// CheckInvariants verifies every live connection, returning the first
// violation found (nil when consistent, or when tracking is disabled).
// It never sleeps.
func CheckInvariants() error {
	for _, c := range sortedLive() {
		if err := c.check(); err != nil {
			return err
		}
	}
	for _, t := range sortedTransports() {
		if err := t.checkGhosts(); err != nil {
			return err
		}
	}
	return nil
}

func sortedTransports() []*Transport {
	ts := make([]*Transport, 0, len(liveTransports))
	for t := range liveTransports {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].port < ts[j].port })
	return ts
}

// checkGhosts verifies every retired-connection record is still inside
// its retention window (one tick of grace covers the checker running
// between the tick advancing and the callout for that tick firing) and
// that no retired key has been resurrected: a key in the ghost table
// with live connection state alongside it means a late segment grew a
// connection out of the reply path instead of going through handleSYN,
// which deletes the ghost before admitting a fresh incarnation.
func (t *Transport) checkGhosts() error {
	now := t.k.Ticks()
	keys := make([]uint64, 0, len(t.ghosts))
	for key := range t.ghosts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		if e := t.ghosts[key]; now > e.expires+1 {
			return violation("stream-ghost-bound", fmt.Sprintf("port %d", t.port),
				"ghost %#x expired at tick %d, still present at tick %d", key, e.expires, now)
		}
		if _, live := t.conns[key]; live {
			return violation("stream-ghost-no-resurrect", fmt.Sprintf("port %d", t.port),
				"ghost %#x coexists with live connection state for the same key", key)
		}
	}
	return nil
}

// CheckDrained verifies that every connection still registered once a
// machine has run to idle is quiescent — nothing unsent, unacked,
// undelivered, or parked. Retired (ghosted) and failed connections
// unregister themselves.
func CheckDrained() error {
	for _, c := range sortedLive() {
		switch {
		case c.state == stateSynSent:
			return violation("stream-conn-leak", c.label, "handshake never completed")
		case len(c.writeWaiters) > 0:
			return violation("stream-conn-leak", c.label, "%d write(s) never admitted", len(c.writeWaiters))
		case len(c.sndBuf) > 0 || c.sndUna != c.sndNxt:
			return violation("stream-conn-leak", c.label,
				"unacknowledged send data: una=%d nxt=%d buffered=%d", c.sndUna, c.sndNxt, len(c.sndBuf))
		case c.finAt >= 0 && !c.finAcked:
			return violation("stream-conn-leak", c.label, "FIN at %d never acknowledged", c.finAt)
		case len(c.rcvBuf) > 0:
			return violation("stream-conn-leak", c.label, "%d received byte(s) never read", len(c.rcvBuf))
		case len(c.reasm) > 0:
			return violation("stream-conn-leak", c.label, "%d segment(s) stuck in reassembly", len(c.reasm))
		case c.pendingDeliver != nil:
			return violation("stream-conn-leak", c.label, "splice read still parked")
		}
	}
	return nil
}

func (c *Conn) check() error {
	if c.sndUna > c.sndNxt || c.sndNxt > c.seqEnd() {
		return violation("stream-seq-order", c.label,
			"una=%d nxt=%d end=%d", c.sndUna, c.sndNxt, c.seqEnd())
	}
	if c.rcvNxt < c.ckRcvNxt {
		return violation("stream-seq-order", c.label,
			"rcvNxt moved backward: %d -> %d", c.ckRcvNxt, c.rcvNxt)
	}
	c.ckRcvNxt = c.rcvNxt
	if c.peerWnd < 0 || c.advWnd < 0 {
		return violation("stream-wnd-neg", c.label, "peerWnd=%d advWnd=%d", c.peerWnd, c.advWnd)
	}
	if len(c.rcvBuf) > rcvCap+MaxSeg {
		return violation("stream-rcv-bound", c.label,
			"%d buffered bytes exceed cap %d + one segment", len(c.rcvBuf), rcvCap)
	}
	for k := range c.reasm {
		if k <= c.rcvNxt || k > c.rcvNxt+reasmLimit {
			return violation("stream-reasm-bound", c.label,
				"reassembly offset %d outside (%d, %d]", k, c.rcvNxt, c.rcvNxt+reasmLimit)
		}
	}
	if c.retries > maxRetries {
		return violation("stream-retry-bound", c.label, "%d consecutive retries", c.retries)
	}
	if c.probes > maxRetries {
		return violation("stream-probe-bound", c.label, "%d consecutive zero-window probes", c.probes)
	}
	return nil
}
