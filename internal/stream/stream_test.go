package stream

import (
	"bytes"
	"runtime"
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
	"kdp/internal/trace"
)

func newK() *kernel.Kernel {
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 3600 * sim.Second
	return kernel.New(cfg)
}

// pattern fills n deterministic bytes.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i>>8) ^ byte(i)*5 ^ seed
	}
	return b
}

// readToEOF drains fd through the read() path.
func readToEOF(t *testing.T, p *kernel.Proc, fd int) []byte {
	t.Helper()
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, err := p.Read(fd, buf)
		if err != nil {
			t.Errorf("read: %v", err)
			return out
		}
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func TestStreamConnectTransferClose(t *testing.T) {
	k := newK()
	n := socket.NewNet(k, socket.Loopback())
	srv, err := NewTransport(k, n, 80)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewTransport(k, n, 5001)
	if err != nil {
		t.Fatal(err)
	}
	msg := pattern(100_000, 7) // several windows' worth
	var got []byte
	k.Spawn("server", func(p *kernel.Proc) {
		if err := srv.Listen(p); err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		fd, _, err := srv.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		got = readToEOF(t, p, fd)
		if err := p.Close(fd); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	k.Spawn("client", func(p *kernel.Proc) {
		fd, _, err := cli.Connect(p, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for off := 0; off < len(msg); off += 8192 {
			end := off + 8192
			if end > len(msg) {
				end = len(msg)
			}
			if _, err := p.Write(fd, msg[off:end]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		if err := p.Close(fd); err != nil {
			t.Errorf("client close: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %d bytes, want %d (content mismatch: %v)", len(got), len(msg), !bytes.Equal(got, msg))
	}
	// Both sides finished both directions, so both connections retired
	// to ghosts and the maps hold no live state.
	if len(srv.conns) != 0 || len(cli.conns) != 0 {
		t.Fatalf("live connections remain: srv=%d cli=%d", len(srv.conns), len(cli.conns))
	}
}

func TestStreamConnectRefusedAndTimeout(t *testing.T) {
	k := newK()
	n := socket.NewNet(k, socket.Loopback())
	cli, _ := NewTransport(k, n, 5001)
	_, _ = n.NewSocket(90) // bound, but not a listening transport
	k.Spawn("client", func(p *kernel.Proc) {
		if _, _, err := cli.Connect(p, 80); err != kernel.ErrConnRefused {
			t.Errorf("connect to unbound port: err=%v, want ErrConnRefused", err)
		}
		if _, _, err := cli.Connect(p, 90); err != kernel.ErrTimedOut {
			t.Errorf("connect to deaf port: err=%v, want ErrTimedOut", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamEchoBothDirections(t *testing.T) {
	k := newK()
	n := socket.NewNet(k, socket.Loopback())
	srv, _ := NewTransport(k, n, 80)
	cli, _ := NewTransport(k, n, 5001)
	req := pattern(20_000, 3)
	var reply []byte
	k.Spawn("server", func(p *kernel.Proc) {
		_ = srv.Listen(p)
		fd, _, err := srv.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		data := readToEOF(t, p, fd)
		for i := range data {
			data[i] ^= 0xFF
		}
		if _, err := p.Write(fd, data); err != nil {
			t.Errorf("echo write: %v", err)
		}
		_ = p.Close(fd)
	})
	k.Spawn("client", func(p *kernel.Proc) {
		fd, _, err := cli.Connect(p, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if _, err := p.Write(fd, req); err != nil {
			t.Errorf("write: %v", err)
		}
		// Half-close our direction; the read side stays open.
		f, _ := p.FD(fd)
		conn := f.Ops().(*Conn)
		if err := p.Close(fd); err != nil {
			t.Errorf("close: %v", err)
		}
		cfd := p.InstallFile(conn, kernel.ORdOnly)
		reply = readToEOF(t, p, cfd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), req...)
	for i := range want {
		want[i] ^= 0xFF
	}
	if !bytes.Equal(reply, want) {
		t.Fatalf("echo reply mismatch: got %d bytes, want %d", len(reply), len(want))
	}
}

// runLossyTransfer moves size bytes over a DropEvery link and reports
// the received data, total retransmissions, and the full event digest.
func runLossyTransfer(t *testing.T, size, dropEvery int) (got []byte, retx int64, digest uint64) {
	t.Helper()
	k := newK()
	dig := trace.NewDigester()
	k.StartTrace(dig)
	params := socket.Loopback()
	params.DropEvery = dropEvery
	n := socket.NewNet(k, params)
	srv, _ := NewTransport(k, n, 80)
	cli, _ := NewTransport(k, n, 5001)
	msg := pattern(size, 9)
	var sender, receiver *Conn
	k.Spawn("server", func(p *kernel.Proc) {
		_ = srv.Listen(p)
		fd, c, err := srv.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		receiver = c
		got = readToEOF(t, p, fd)
		_ = p.Close(fd)
	})
	k.Spawn("client", func(p *kernel.Proc) {
		fd, c, err := cli.Connect(p, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		sender = c
		for off := 0; off < len(msg); off += 8192 {
			end := off + 8192
			if end > len(msg) {
				end = len(msg)
			}
			if _, err := p.Write(fd, msg[off:end]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		if err := p.Close(fd); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("lossy transfer corrupted: got %d bytes, want %d", len(got), len(msg))
	}
	return got, sender.Retransmits() + receiver.Retransmits(), dig.Sum()
}

func TestStreamTransferUnderLoss(t *testing.T) {
	_, retx, _ := runLossyTransfer(t, 200_000, 5)
	if retx == 0 {
		t.Fatal("DropEvery=5 transfer completed without a single retransmission")
	}
}

func TestStreamLossDeterministicAcrossGOMAXPROCS(t *testing.T) {
	_, retx1, dig1 := runLossyTransfer(t, 120_000, 7)
	prev := runtime.GOMAXPROCS(1)
	_, retx2, dig2 := runLossyTransfer(t, 120_000, 7)
	runtime.GOMAXPROCS(prev)
	if retx1 != retx2 {
		t.Fatalf("retransmit counts differ across GOMAXPROCS: %d vs %d", retx1, retx2)
	}
	if dig1 != dig2 {
		t.Fatalf("event digests differ across GOMAXPROCS: %#x vs %#x", dig1, dig2)
	}
}

func TestStreamWindowStallAndProbe(t *testing.T) {
	k := newK()
	col := &trace.Collector{}
	k.StartTrace(col)
	n := socket.NewNet(k, socket.Loopback())
	srv, _ := NewTransport(k, n, 80)
	cli, _ := NewTransport(k, n, 5001)
	// More data than rcvCap with a reader that drains slowly, forcing
	// the advertised window shut while the sender still has bytes.
	size := rcvCap * 3
	msg := pattern(size, 11)
	var got []byte
	k.Spawn("server", func(p *kernel.Proc) {
		_ = srv.Listen(p)
		fd, _, err := srv.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 2048)
		for {
			rn, err := p.Read(fd, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if rn == 0 {
				break
			}
			got = append(got, buf[:rn]...)
			p.Compute(5 * sim.Millisecond) // slow consumer
		}
		_ = p.Close(fd)
	})
	k.Spawn("client", func(p *kernel.Proc) {
		fd, _, err := cli.Connect(p, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if _, err := p.Write(fd, msg); err != nil {
			t.Errorf("write: %v", err)
		}
		_ = p.Close(fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("transfer mismatch: got %d bytes, want %d", len(got), len(msg))
	}
	stalls, acks := 0, 0
	for _, ev := range col.Events {
		switch ev.Kind {
		case trace.KindStreamStall:
			stalls++
		case trace.KindStreamAck:
			acks++
		}
	}
	if stalls == 0 {
		t.Fatal("slow consumer never produced a stream.stall event")
	}
	if acks == 0 {
		t.Fatal("no stream.ack events observed")
	}
}

func TestStreamInvariantsCleanRun(t *testing.T) {
	EnableInvariants(true)
	defer EnableInvariants(false)
	k := newK()
	params := socket.Loopback()
	params.DropEvery = 6
	n := socket.NewNet(k, params)
	srv, _ := NewTransport(k, n, 80)
	cli, _ := NewTransport(k, n, 5001)
	msg := pattern(90_000, 13)
	k.Spawn("server", func(p *kernel.Proc) {
		_ = srv.Listen(p)
		fd, _, err := srv.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		readToEOF(t, p, fd)
		_ = p.Close(fd)
	})
	k.Spawn("client", func(p *kernel.Proc) {
		fd, _, err := cli.Connect(p, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if _, err := p.Write(fd, msg); err != nil {
			t.Errorf("write: %v", err)
		}
		_ = p.Close(fd)
	})
	k.SetProbe(func() {
		if err := CheckInvariants(); err != nil {
			k.Abort(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}
