package sim

// Rand is a small deterministic pseudo-random generator (xorshift64*)
// used for workload generation and disk-model jitter. math/rand would
// also be deterministic with a fixed seed, but owning the generator
// keeps the event streams stable across Go releases.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (zero is remapped to a
// fixed non-zero constant, since xorshift cannot escape state 0).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform duration in [0, d). d must be positive.
func (r *Rand) Duration(d Duration) Duration {
	return Duration(r.Int63n(int64(d)))
}
