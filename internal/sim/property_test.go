package sim

import (
	"sort"
	"testing"
)

// TestEventOrderProperty drives the engine with random schedules and
// cancellations and checks events fire exactly in (time, insertion)
// order, matching a reference sort.
func TestEventOrderProperty(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		r := NewRand(seed)
		e := NewEngine()

		type ev struct {
			when Time
			seq  int
		}
		var expected []ev
		var fired []ev
		var handles []*Event
		n := 50 + r.Intn(100)
		for i := 0; i < n; i++ {
			delay := Duration(r.Int63n(int64(100 * Millisecond)))
			seq := i
			when := e.Now().Add(delay)
			h := e.Schedule(delay, "p", func() {
				fired = append(fired, ev{when, seq})
			})
			handles = append(handles, h)
			expected = append(expected, ev{when, seq})
		}
		// Cancel a random subset.
		cancelled := map[int]bool{}
		for i := 0; i < n/4; i++ {
			idx := r.Intn(n)
			if e.Cancel(handles[idx]) {
				cancelled[idx] = true
			}
		}
		var want []ev
		for i, x := range expected {
			if !cancelled[i] {
				want = append(want, x)
			}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].when != want[b].when {
				return want[a].when < want[b].when
			}
			return want[a].seq < want[b].seq
		})

		for e.RunNext() {
		}
		if len(fired) != len(want) {
			t.Fatalf("seed %d: fired %d, want %d", seed, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("seed %d: event %d fired out of order: %+v vs %+v", seed, i, fired[i], want[i])
			}
		}
	}
}

// TestClockMonotoneProperty: however events interleave with Consume and
// AdvanceTo, the clock never moves backwards.
func TestClockMonotoneProperty(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := NewRand(seed)
		e := NewEngine()
		last := e.Now()
		check := func() {
			if e.Now() < last {
				t.Fatalf("seed %d: clock went backwards: %v -> %v", seed, last, e.Now())
			}
			last = e.Now()
		}
		for i := 0; i < 200; i++ {
			switch r.Intn(4) {
			case 0:
				e.Schedule(Duration(r.Int63n(int64(Millisecond))), "x", check)
			case 1:
				e.Consume(Duration(r.Int63n(int64(100 * Microsecond))))
				check()
			case 2:
				e.RunNext()
				check()
			case 3:
				e.RunDue()
				check()
			}
		}
	}
}
