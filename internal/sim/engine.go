package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created by Engine.Schedule
// and may be cancelled before they fire.
type Event struct {
	when   Time
	seq    uint64 // insertion order; breaks ties deterministically
	index  int    // heap index, -1 when not queued
	fn     func()
	labels string // optional description for tracing
}

// When reports the virtual time at which the event is scheduled to fire.
func (ev *Event) When() Time { return ev.when }

// Pending reports whether the event is still queued (not yet fired or
// cancelled).
func (ev *Event) Pending() bool { return ev != nil && ev.index >= 0 }

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is the discrete-event core: a virtual clock plus an ordered
// queue of future events. The engine never advances time on its own;
// callers either pop events (RunNext, AdvanceTo) or move the clock
// explicitly (Consume) to model CPU time being burned.
type Engine struct {
	now    Time
	queue  eventQueue
	nextID uint64
	fired  uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay. A negative delay is treated as
// zero (the event fires as soon as the queue is next drained). The
// returned Event may be passed to Cancel.
func (e *Engine) Schedule(delay Duration, label string, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	ev := &Event{
		when:   e.now.Add(delay),
		seq:    e.nextID,
		fn:     fn,
		labels: label,
	}
	e.nextID++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a queued event. Cancelling an event that already fired
// or was already cancelled is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	return true
}

// NextEventTime returns the firing time of the earliest queued event.
// ok is false when the queue is empty.
func (e *Engine) NextEventTime() (t Time, ok bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].when, true
}

// RunNext pops and dispatches the earliest event, advancing the clock to
// its firing time (the clock never moves backwards: an event scheduled
// in the past fires at the current time). Returns false when the queue
// is empty.
func (e *Engine) RunNext() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.when > e.now {
		e.now = ev.when
	}
	e.fired++
	ev.fn()
	return true
}

// RunDue dispatches every event whose firing time is not after the
// current clock, without advancing the clock past it. Returns the
// number of events dispatched.
func (e *Engine) RunDue() int {
	n := 0
	for len(e.queue) > 0 && e.queue[0].when <= e.now {
		e.RunNext()
		n++
	}
	return n
}

// Consume advances the clock by d without dispatching anything. It
// models CPU time charged by non-preemptible work (interrupt handlers,
// kernel critical sections): events that come due during d simply fire
// late, which is exactly the semantics of running with interrupts
// effectively serialised.
func (e *Engine) Consume(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Consume(%d) negative", d))
	}
	e.now = e.now.Add(d)
}

// AdvanceTo moves the clock to t, dispatching every event due on the
// way, in order. If t is in the past the call only drains already-due
// events.
func (e *Engine) AdvanceTo(t Time) {
	for len(e.queue) > 0 && e.queue[0].when <= t {
		e.RunNext()
	}
	if t > e.now {
		e.now = t
	}
}
