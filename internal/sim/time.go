// Package sim provides the deterministic discrete-event simulation core
// that every other subsystem runs on: a virtual clock, an event queue
// with stable ordering, and a seeded pseudo-random number generator.
//
// Nothing in this package knows about kernels, disks, or processes; it
// only advances virtual time and dispatches callbacks. Determinism is a
// hard requirement for the reproduction: two runs with the same
// configuration must produce bit-identical event sequences.
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds from boot.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", float64(t)/float64(Second)) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// PerByte converts a rate in bytes per second into the duration charged
// for one byte, as a float to avoid cumulative rounding; use BytesAt to
// charge for a block.
func PerByte(bytesPerSecond float64) float64 {
	return float64(Second) / bytesPerSecond
}

// BytesAt returns the time to move n bytes at the given rate in bytes
// per second.
func BytesAt(n int64, bytesPerSecond float64) Duration {
	if bytesPerSecond <= 0 {
		return 0
	}
	return Duration(float64(n) * float64(Second) / bytesPerSecond)
}
