package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*Microsecond, "c", func() { got = append(got, 3) })
	e.Schedule(10*Microsecond, "a", func() { got = append(got, 1) })
	e.Schedule(20*Microsecond, "b", func() { got = append(got, 2) })
	for e.RunNext() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != Time(30*Microsecond) {
		t.Fatalf("clock = %v, want 30us", e.Now())
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Millisecond, "tie", func() { got = append(got, i) })
	}
	for e.RunNext() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order wrong at %d: %v", i, got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(Millisecond, "x", func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event not pending after Schedule")
	}
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false on pending event")
	}
	if ev.Pending() {
		t.Fatal("event still pending after Cancel")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel should return false")
	}
	for e.RunNext() {
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineConsumeDelaysEvents(t *testing.T) {
	e := NewEngine()
	var firedAt Time
	e.Schedule(100*Microsecond, "x", func() { firedAt = e.Now() })
	e.Consume(250 * Microsecond) // clock passes the event without firing it
	if e.Fired() != 0 {
		t.Fatal("Consume must not dispatch events")
	}
	e.RunDue()
	if firedAt != Time(250*Microsecond) {
		t.Fatalf("late event fired at %v, want 250us (current clock)", firedAt)
	}
}

func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(Duration(i)*Millisecond, "n", func() { count++ })
	}
	e.AdvanceTo(Time(3 * Millisecond))
	if count != 3 {
		t.Fatalf("fired %d events, want 3", count)
	}
	if e.Now() != Time(3*Millisecond) {
		t.Fatalf("clock = %v, want 3ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
}

func TestEngineRescheduleFromHandler(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 5 {
			e.Schedule(Millisecond, "tick", tick)
		}
	}
	e.Schedule(Millisecond, "tick", tick)
	for e.RunNext() {
	}
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	if e.Now() != Time(5*Millisecond) {
		t.Fatalf("clock = %v, want 5ms", e.Now())
	}
}

func TestEngineNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("NextEventTime ok on empty queue")
	}
	e.Schedule(7*Millisecond, "x", func() {})
	tm, ok := e.NextEventTime()
	if !ok || tm != Time(7*Millisecond) {
		t.Fatalf("NextEventTime = %v,%v", tm, ok)
	}
}

func TestBytesAt(t *testing.T) {
	if d := BytesAt(1_000_000, 1e6); d != Second {
		t.Fatalf("1MB at 1MB/s = %v, want 1s", d)
	}
	if d := BytesAt(8192, 8.192e6); d != Millisecond {
		t.Fatalf("8KB at 8.192MB/s = %v, want 1ms", d)
	}
	if d := BytesAt(100, 0); d != 0 {
		t.Fatalf("zero rate should cost nothing, got %v", d)
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		2 * Second:                 "2.000s",
		1500 * Microsecond:         "1.500ms",
		250 * Microsecond:          "250.000us",
		42:                         "42ns",
		Duration(0):                "0ns",
		3*Second + 250*Millisecond: "3.250s",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(d), got, want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded generators diverged")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	bound := func(n int64) bool {
		if n <= 0 {
			n = 1 - n // map to positive
		}
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(bound, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandUniformish(t *testing.T) {
	r := NewRand(99)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d grossly non-uniform: %d of %d", i, c, n)
		}
	}
}
