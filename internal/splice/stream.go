package splice

import (
	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/trace"
)

// This file holds the byte-stream endpoints of the splice engine:
// file → sink (playing a file to a device or socket, the paper's movie
// example) and source → sink (socket-to-socket and framebuffer-to-
// socket splices, §5.1). The read side for file sources reuses the
// block engine; sink delivery replaces the write side.

// setupFileSink prepares a file → sink transfer. Byte offsets and sizes
// are arbitrary: the source is read a block at a time and the sink
// receives the byte range each block contributes.
func (d *desc) setupFileSink(p *kernel.Proc, sfd *kernel.FDesc, size int64) error {
	ctx := p.Ctx()
	d.cache = d.srcFile.BufCache()
	d.bsize = int64(d.cache.BlockSize())
	srcOff := sfd.Offset()

	srcSize, err := d.srcFile.Size(ctx)
	if err != nil {
		return err
	}
	avail := srcSize - srcOff
	if avail < 0 {
		avail = 0
	}
	if size == EOF || size > avail {
		size = avail
	}
	d.total = size
	d.startOff = srcOff
	if size == 0 {
		d.done = true
		return nil
	}
	startBlk := srcOff / d.bsize
	endBlk := (srcOff + size + d.bsize - 1) / d.bsize
	d.srcStartBlk = startBlk
	d.nblocks = endBlk - startBlk
	d.lastBytes = int(d.bsize) // unused in sink mode; blockBytes not called

	full, err := d.srcFile.SpliceMapRead(ctx, endBlk)
	if err != nil {
		return err
	}
	d.srcTable = full[startBlk:]

	d.rateStart = d.k.Now()
	d.k.Hold()
	if d.async {
		sfd.Advance(d.total)
	}
	d.startReads(ctx)
	return nil
}

// writeSideSink sequences completed source blocks into logical order
// before handing each one to the sink. Reads finish in I/O-completion
// order (cache hits and holes return immediately; disk reads do not),
// and delivering them as they land would interleave the byte stream.
// A block whose predecessors are still in flight parks in sinkParked;
// it still counts as a pending write, which keeps the flow-control
// watermarks honest about parked blocks.
func (d *desc) writeSideSink(b *buf.Buf) {
	if d.sinkParked == nil {
		d.sinkParked = make(map[int64]*buf.Buf)
	}
	d.sinkParked[b.SpliceLblk] = b
	for {
		nb, ok := d.sinkParked[d.sinkNext]
		if !ok {
			return
		}
		delete(d.sinkParked, d.sinkNext)
		d.sinkNext++
		d.deliverSink(nb)
	}
}

// deliverSink hands one in-order source block's contribution to the
// sink, still sharing the read-side buffer's data area (the sink sees a
// slice of it; the buffer is released when the sink signals
// completion).
func (d *desc) deliverSink(b *buf.Buf) {
	lblk := b.SpliceLblk
	absStart := (d.srcStartBlk + lblk) * d.bsize
	lo := d.startOff - absStart
	if lo < 0 {
		lo = 0
	}
	hi := d.startOff + d.total - absStart
	if hi > d.bsize {
		hi = d.bsize
	}
	slice := b.Data[lo:hi]
	d.stats.WritesIssued++
	d.stats.Shared++
	d.k.TraceEmit(trace.KindSpliceWrite, 0, lblk, int64(d.pendingWrites), "")
	d.sink.SpliceWrite(slice, func(err error) {
		d.handlerCharge()
		d.dropReadBuf(b)
		d.pendingWrites--
		d.k.TraceEmit(trace.KindSpliceWriteDone, 0, int64(len(slice)), int64(d.pendingWrites), "")
		if err != nil {
			d.fail(err)
			return
		}
		d.moved += int64(len(slice))
		d.stats.BytesMoved += int64(len(slice))
		d.afterWrite()
	})
}

// ---- source → sink stream engine ----

// setupSourceSink starts a relay between two endpoint objects. size may
// be EOF to run until the source is exhausted.
func (d *desc) setupSourceSink(p *kernel.Proc, size int64) error {
	d.total = size
	if size == 0 {
		d.done = true
		return nil
	}
	d.k.Hold()
	d.pumpSource()
	return nil
}

// pumpSource issues the next read from the source unless the transfer
// is bounded and fully scheduled, the sink is above its watermark, or a
// read is already outstanding.
func (d *desc) pumpSource() {
	if d.stopped || d.done || d.streamEOF || d.readOutstanding {
		return
	}
	if d.pendingWrites >= d.opts.WriteWatermark {
		return // sink backpressure; resumed from the done callback
	}
	max := 8192
	if d.total != EOF {
		remaining := d.total - d.streamScheduled
		if remaining <= 0 {
			return
		}
		if remaining < int64(max) {
			max = int(remaining)
		}
	}
	d.readOutstanding = true
	d.pendingReads++
	d.stats.ReadsIssued++
	d.k.TraceEmit(trace.KindSpliceRead, 0, d.streamScheduled, int64(d.pendingReads), "")
	d.source.SpliceRead(max, func(data []byte, eof bool, err error) {
		d.handlerCharge()
		d.readOutstanding = false
		d.pendingReads--
		d.k.TraceEmit(trace.KindSpliceReadDone, 0, int64(len(data)), int64(d.pendingReads), "")
		if err != nil {
			d.fail(err)
			return
		}
		if len(data) > 0 {
			d.streamScheduled += int64(len(data))
			d.stats.Callouts++
			d.k.Timeout(func() { d.streamWrite(data) }, 0)
		}
		if eof {
			d.streamEOF = true
		}
		if d.streamEOF || (d.total != EOF && d.streamScheduled >= d.total) {
			d.maybeCompleteStream()
			return
		}
		d.pumpSource()
	})
}

// streamWrite pushes one chunk into the sink from the callout list.
func (d *desc) streamWrite(data []byte) {
	d.handlerCharge()
	if d.err != nil || d.stopped || d.done {
		d.maybeCompleteStream()
		return
	}
	d.pendingWrites++
	d.stats.WritesIssued++
	d.k.TraceEmit(trace.KindSpliceWrite, 0, int64(len(data)), int64(d.pendingWrites), "")
	d.sink.SpliceWrite(data, func(err error) {
		d.handlerCharge()
		d.pendingWrites--
		d.k.TraceEmit(trace.KindSpliceWriteDone, 0, int64(len(data)), int64(d.pendingWrites), "")
		if err != nil {
			d.fail(err)
			return
		}
		d.moved += int64(len(data))
		d.stats.BytesMoved += int64(len(data))
		d.maybeCompleteStream()
		if !d.done {
			d.pumpSource()
		}
	})
}

// maybeCompleteStream completes a stream splice once nothing remains in
// flight and no more data will be scheduled.
func (d *desc) maybeCompleteStream() {
	finished := d.streamEOF || d.stopped || d.err != nil ||
		(d.total != EOF && d.streamScheduled >= d.total)
	if finished && d.pendingReads == 0 && d.pendingWrites == 0 &&
		(d.err != nil || d.stopped || d.moved >= d.streamScheduled) {
		d.complete()
	}
}
