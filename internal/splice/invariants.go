package splice

import (
	"fmt"

	"kdp/internal/buf"
)

// This file implements the splice invariant checker used by the
// simcheck harness. Because splice descriptors live entirely inside the
// kernel (no process holds them), checking requires a registry of live
// descriptors; it is maintained only while EnableInvariants(true) is in
// effect, so production runs pay nothing.
//
// Invariant catalog (splice):
//
//	splice-pending-neg     pending read/write counts never go negative
//	splice-pending-bound   block-engine pending counts respect the
//	                       watermark + refill-batch flow-control bounds
//	splice-done-live       a completed descriptor is not still registered
//	splice-moved-bound     bytes moved never exceed the transfer size
//	splice-hdr-alias       every in-flight write header is memory-less
//	                       (B_NOMEM), paired with its read-side buffer,
//	                       and (unless NoShare) aliases that buffer's
//	                       data area
//	splice-desc-leak       (checked by CheckDrained) no descriptor is
//	                       still live once a machine has run to idle

var (
	invariantsOn bool
	liveDescs    map[*desc]struct{}
)

// EnableInvariants switches descriptor tracking on or off. While on,
// every splice registers its descriptor for CheckInvariants to inspect
// and tracks its in-flight write headers. Not safe to toggle while a
// machine is running.
func EnableInvariants(on bool) {
	invariantsOn = on
	if on {
		liveDescs = make(map[*desc]struct{})
	} else {
		liveDescs = nil
	}
}

func registerDesc(d *desc) {
	if invariantsOn && !d.done {
		liveDescs[d] = struct{}{}
		d.liveHdrs = make(map[*buf.Buf]struct{})
	}
}

func unregisterDesc(d *desc) {
	if invariantsOn {
		delete(liveDescs, d)
	}
}

func trackHdr(d *desc, hdr *buf.Buf) {
	if d.liveHdrs != nil {
		d.liveHdrs[hdr] = struct{}{}
	}
}

func untrackHdr(d *desc, hdr *buf.Buf) {
	if d.liveHdrs != nil {
		delete(d.liveHdrs, hdr)
	}
}

func sviolation(name, format string, args ...any) error {
	return fmt.Errorf("invariant %s violated: %s", name, fmt.Sprintf(format, args...))
}

// CheckInvariants verifies every live splice descriptor, returning the
// first violation found (nil when consistent, or when tracking is
// disabled). It never sleeps.
func CheckInvariants() error {
	for d := range liveDescs {
		if err := d.check(); err != nil {
			return err
		}
	}
	return nil
}

// CheckDrained verifies that no splice descriptor remains live — every
// transfer that started has completed. Call once a machine has run to
// idle; a failure means a splice leaked its kernel hold.
func CheckDrained() error {
	if n := len(liveDescs); n > 0 {
		return sviolation("splice-desc-leak", "%d splice descriptor(s) still live after drain", n)
	}
	return nil
}

func (d *desc) check() error {
	if d.done {
		return sviolation("splice-done-live", "completed descriptor still registered (moved=%d)", d.moved)
	}
	if d.pendingReads < 0 || d.pendingWrites < 0 {
		return sviolation("splice-pending-neg", "pendingReads=%d pendingWrites=%d", d.pendingReads, d.pendingWrites)
	}
	if d.total >= 0 && d.moved > d.total {
		return sviolation("splice-moved-bound", "moved %d of %d bytes", d.moved, d.total)
	}
	switch d.mode {
	case modeFileFile, modeFileSink:
		// §5.5 flow control: priming issues RefillBatch reads; a refill
		// fires only when pendingReads < ReadWatermark and adds at most
		// RefillBatch more, so reads are bounded by RW-1+RB. Every
		// completed read becomes a pending write, and refills require
		// pendingWrites < WriteWatermark, bounding writes by
		// WW-1 + (RW-1+RB).
		maxReads := d.opts.ReadWatermark - 1 + d.opts.RefillBatch
		if d.pendingReads > maxReads {
			return sviolation("splice-pending-bound", "%d pending reads exceed watermark bound %d", d.pendingReads, maxReads)
		}
		maxWrites := d.opts.WriteWatermark - 1 + maxReads
		if d.pendingWrites > maxWrites {
			return sviolation("splice-pending-bound", "%d pending writes exceed watermark bound %d", d.pendingWrites, maxWrites)
		}
	case modeSourceSink, modeSourceFile:
		// Stream engines keep at most one source read outstanding.
		if d.pendingReads > 1 {
			return sviolation("splice-pending-bound", "stream engine with %d pending reads", d.pendingReads)
		}
	}
	for hdr := range d.liveHdrs {
		if hdr.Flags&buf.BNoMem == 0 {
			return sviolation("splice-hdr-alias", "write header without B_NOMEM: %s", hdr)
		}
		peer := hdr.SplicePeer
		if peer == nil {
			return sviolation("splice-hdr-alias", "write header with no read-side peer: %s", hdr)
		}
		if !d.opts.NoShare {
			if len(hdr.Data) == 0 || len(peer.Data) == 0 || &hdr.Data[0] != &peer.Data[0] {
				return sviolation("splice-hdr-alias", "write header does not alias its peer's data area: %s", hdr)
			}
		}
		if hdr.SpliceDesc != any(d) {
			return sviolation("splice-hdr-alias", "write header bound to foreign descriptor: %s", hdr)
		}
	}
	return nil
}
