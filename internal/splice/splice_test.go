package splice

import (
	"bytes"
	"testing"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
)

const bsize = 8192

// machine is a two-disk test machine with a filesystem on each disk,
// mounted at /d0 and /d1, mirroring the paper's experimental setup of
// copying between filesystems on different physical disks.
type machine struct {
	k     *kernel.Kernel
	cache *buf.Cache
	disks [2]*disk.Disk
	fsys  [2]*fs.FS
}

func newMachine(t *testing.T, mkParams func(blocks int64, bs int) disk.Params) *machine {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 3600 * sim.Second
	k := kernel.New(cfg)
	m := &machine{k: k, cache: buf.NewCache(k, 400, bsize)} // 3.2MB cache
	for i := range m.disks {
		d := disk.New(k, mkParams(2048, bsize)) // 16MB each
		d.SetCache(m.cache)
		if _, err := fs.Mkfs(d, 64); err != nil {
			t.Fatalf("mkfs: %v", err)
		}
		m.disks[i] = d
	}
	return m
}

// boot mounts both filesystems from inside the init process.
func (m *machine) boot(t *testing.T, p *kernel.Proc) {
	t.Helper()
	for i, d := range m.disks {
		f, err := fs.Mount(p.Ctx(), m.cache, d)
		if err != nil {
			t.Fatalf("mount %d: %v", i, err)
		}
		m.fsys[i] = f
		m.k.Mount([]string{"/d0", "/d1"}[i], f)
	}
}

// run spawns fn as the only process and drives the machine.
func (m *machine) run(t *testing.T, fn func(p *kernel.Proc)) {
	t.Helper()
	m.k.Spawn("test", func(p *kernel.Proc) {
		if m.fsys[0] == nil {
			m.boot(t, p)
		}
		fn(p)
	})
	if err := m.k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

// makeFile creates path with deterministic contents of n bytes.
func makeFile(t *testing.T, p *kernel.Proc, path string, n int, seed byte) []byte {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i>>8) ^ byte(i)*3 ^ seed
	}
	fd, err := p.Open(path, kernel.OCreat|kernel.ORdWr)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	for off := 0; off < n; off += bsize {
		end := off + bsize
		if end > n {
			end = n
		}
		if _, err := p.Write(fd, data[off:end]); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
	if err := p.Close(fd); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
	return data
}

// readAll reads the whole file back through the read() path.
func readAll(t *testing.T, p *kernel.Proc, path string) []byte {
	t.Helper()
	fd, err := p.Open(path, kernel.ORdOnly)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	var out []byte
	tmp := make([]byte, bsize)
	for {
		n, err := p.Read(fd, tmp)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if n == 0 {
			break
		}
		out = append(out, tmp[:n]...)
	}
	_ = p.Close(fd)
	return out
}

func TestSpliceWholeFileEOF(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	const size = 20*bsize + 1234 // partial final block
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/src", size, 1)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		n, err := Splice(p, src, dst, EOF)
		if err != nil {
			t.Fatalf("splice: %v", err)
		}
		if n != size {
			t.Fatalf("moved %d bytes, want %d", n, size)
		}
		_ = p.Close(src)
		_ = p.Close(dst)
		got := readAll(t, p, "/d1/dst")
		if !bytes.Equal(got, want) {
			t.Fatal("spliced data differs from source")
		}
	})
}

func TestSplicePartialSizeAndOffsets(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	const size = 10 * bsize
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/src", size, 2)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		// Two consecutive splices of half the file: offsets must
		// advance like read/write.
		n1, err := Splice(p, src, dst, 5*bsize)
		if err != nil || n1 != 5*bsize {
			t.Fatalf("first splice: n=%d err=%v", n1, err)
		}
		n2, err := Splice(p, src, dst, EOF)
		if err != nil || n2 != 5*bsize {
			t.Fatalf("second splice: n=%d err=%v", n2, err)
		}
		_ = p.Close(src)
		_ = p.Close(dst)
		got := readAll(t, p, "/d1/dst")
		if !bytes.Equal(got, want) {
			t.Fatal("offset-advancing splices corrupted data")
		}
	})
}

func TestSpliceSizeLargerThanFile(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/src", 3*bsize, 3)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		n, err := Splice(p, src, dst, 100*bsize)
		if err != nil || n != 3*bsize {
			t.Fatalf("splice: n=%d err=%v", n, err)
		}
		if !bytes.Equal(readAll(t, p, "/d1/dst"), want) {
			t.Fatal("data mismatch")
		}
	})
}

func TestSpliceZeroBytes(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", bsize, 4)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		if n, err := Splice(p, src, dst, 0); n != 0 || err != nil {
			t.Fatalf("zero splice: n=%d err=%v", n, err)
		}
		// EOF splice of an empty source is also zero.
		empty, _ := p.Open("/d1/empty", kernel.OCreat|kernel.ORdOnly)
		if n, err := Splice(p, empty, dst, EOF); n != 0 || err != nil {
			t.Fatalf("empty-source splice: n=%d err=%v", n, err)
		}
	})
}

func TestSpliceAsyncSIGIO(t *testing.T) {
	m := newMachine(t, disk.RZ58)
	const size = 8 * bsize
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/src", size, 5)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		if _, err := p.Fcntl(src, kernel.FSetFL, kernel.FAsync); err != nil {
			t.Fatalf("fcntl: %v", err)
		}
		gotSig := false
		p.SetSignalHandler(kernel.SIGIO, func(p *kernel.Proc, s kernel.Signal) { gotSig = true })

		t0 := p.Now()
		n, h, err := SpliceOpts(p, src, dst, EOF, Options{})
		if err != nil {
			t.Fatalf("async splice: %v", err)
		}
		if n != size {
			t.Fatalf("scheduled %d, want %d", n, size)
		}
		setupTime := p.Now().Sub(t0)
		if h.Done() {
			t.Fatal("async splice completed synchronously on a mechanical disk")
		}
		// The call must return long before the disk transfer could
		// finish (8 blocks at ~2MB/s is tens of ms; setup is sub-ms
		// compute plus metadata I/O).
		if setupTime > 60*sim.Millisecond {
			t.Fatalf("async splice blocked for %v", setupTime)
		}
		// The calling process continues running while I/O proceeds.
		p.Compute(10 * sim.Millisecond)
		// Wait for completion via pause()/SIGIO, as the paper's
		// example does.
		for !gotSig {
			p.Pause()
		}
		if !h.Done() {
			t.Fatal("SIGIO before completion")
		}
		if h.Moved() != size {
			t.Fatalf("moved %d, want %d", h.Moved(), size)
		}
		if !bytes.Equal(readAll(t, p, "/d1/dst"), want) {
			t.Fatal("async spliced data mismatch")
		}
	})
}

func TestSpliceBufferSharingNoCopies(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	const blocks = 16
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", blocks*bsize, 6)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		_, h, err := SpliceOpts(p, src, dst, EOF, Options{})
		if err != nil {
			t.Fatalf("splice: %v", err)
		}
		st := h.Stats()
		if st.Shared != blocks {
			t.Fatalf("shared = %d, want %d", st.Shared, blocks)
		}
		if st.Copied != 0 {
			t.Fatalf("copied = %d, want 0 (data aliasing must avoid copies)", st.Copied)
		}
	})
}

func TestSpliceNoShareAblationCopies(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	const blocks = 16
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/src", blocks*bsize, 7)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		_, h, err := SpliceOpts(p, src, dst, EOF, Options{NoShare: true})
		if err != nil {
			t.Fatalf("splice: %v", err)
		}
		st := h.Stats()
		if st.Copied != blocks || st.Shared != 0 {
			t.Fatalf("copied=%d shared=%d, want %d/0", st.Copied, st.Shared, blocks)
		}
		if !bytes.Equal(readAll(t, p, "/d1/dst"), want) {
			t.Fatal("no-share splice corrupted data")
		}
	})
}

func TestSpliceFlowControlWatermarks(t *testing.T) {
	m := newMachine(t, disk.RZ56)
	const blocks = 64
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", blocks*bsize, 8)
		// Cold cache, as the experiments require.
		if err := m.cache.InvalidateDev(p.Ctx(), m.disks[0]); err != nil {
			t.Fatal(err)
		}
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		_, h, err := SpliceOpts(p, src, dst, EOF, Options{})
		if err != nil {
			t.Fatalf("splice: %v", err)
		}
		st := h.Stats()
		// Reads are issued in refill batches of at most 5; pending
		// reads can reach watermark-1 + batch = 2 + 5 = 7 but no more.
		if st.PeakReads > DefaultReadWatermark-1+DefaultRefillBatch {
			t.Fatalf("peak pending reads = %d, exceeds flow-control bound", st.PeakReads)
		}
		if st.PeakWrites > DefaultWriteWatermark-1+DefaultRefillBatch {
			t.Fatalf("peak pending writes = %d, exceeds flow-control bound", st.PeakWrites)
		}
		if st.ReadsIssued != blocks || st.WritesIssued != blocks {
			t.Fatalf("reads=%d writes=%d, want %d each", st.ReadsIssued, st.WritesIssued, blocks)
		}
	})
}

func TestSpliceUsesCalloutList(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	const blocks = 8
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", blocks*bsize, 9)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		_, h, err := SpliceOpts(p, src, dst, EOF, Options{})
		if err != nil {
			t.Fatalf("splice: %v", err)
		}
		// Every block's write side must have been dispatched through
		// the callout list (the paper's decoupling mechanism).
		if got := h.Stats().Callouts; got != blocks {
			t.Fatalf("callout dispatches = %d, want %d", got, blocks)
		}
	})
}

func TestSpliceSourceHoleWritesZeros(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	m.run(t, func(p *kernel.Proc) {
		// File with a hole in the middle: block 0 and 2 written.
		fd, _ := p.Open("/d0/sparse", kernel.OCreat|kernel.ORdWr)
		blk := make([]byte, bsize)
		for i := range blk {
			blk[i] = 0xAA
		}
		_, _ = p.Write(fd, blk)
		_, _ = p.Lseek(fd, 2*bsize, kernel.SeekSet)
		_, _ = p.Write(fd, blk)
		_ = p.Close(fd)

		src, _ := p.Open("/d0/sparse", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		n, err := Splice(p, src, dst, EOF)
		if err != nil || n != 3*bsize {
			t.Fatalf("splice: n=%d err=%v", n, err)
		}
		got := readAll(t, p, "/d1/dst")
		for i := 0; i < bsize; i++ {
			if got[i] != 0xAA || got[2*bsize+i] != 0xAA {
				t.Fatal("data blocks corrupted")
			}
			if got[bsize+i] != 0 {
				t.Fatalf("hole byte %d = %#x, want 0", i, got[bsize+i])
			}
		}
	})
}

func TestSpliceUnalignedOffsetRejected(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", 2*bsize, 10)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		_, _ = p.Lseek(src, 100, kernel.SeekSet)
		if _, err := Splice(p, src, dst, EOF); err != kernel.ErrInval {
			t.Fatalf("unaligned file-file splice: %v, want ErrInval", err)
		}
	})
}

func TestSpliceBadDescriptor(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", bsize, 11)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		if _, err := Splice(p, src, 99, EOF); err != kernel.ErrBadFD {
			t.Fatalf("bad dst fd: %v, want ErrBadFD", err)
		}
		if _, err := Splice(p, 99, src, EOF); err != kernel.ErrBadFD {
			t.Fatalf("bad src fd: %v, want ErrBadFD", err)
		}
		if _, err := Splice(p, src, src, -7); err != kernel.ErrInval {
			t.Fatalf("negative size: %v, want ErrInval", err)
		}
	})
}

func TestSpliceInterruptedBySignal(t *testing.T) {
	m := newMachine(t, disk.RZ56) // slow disk: plenty of time to interrupt
	const size = 128 * bsize      // 1MB: ~1s on an RZ56
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", size, 12)
		if err := m.cache.InvalidateDev(p.Ctx(), m.disks[0]); err != nil {
			t.Fatal(err)
		}
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		p.SetSignalHandler(kernel.SIGALRM, func(*kernel.Proc, kernel.Signal) {})
		p.SetITimer(50*sim.Millisecond, 0)
		n, err := Splice(p, src, dst, EOF)
		if err != kernel.ErrIntr {
			t.Fatalf("interrupted splice: err=%v, want ErrIntr", err)
		}
		if n <= 0 || n >= size {
			t.Fatalf("partial count = %d, want in (0,%d)", n, size)
		}
		// The moved prefix must be intact.
		got := readAll(t, p, "/d1/dst")
		want := makeRef(size, 12)
		if int64(len(got)) < n {
			t.Fatalf("destination shorter (%d) than moved count %d", len(got), n)
		}
		if !bytes.Equal(got[:n], want[:n]) {
			t.Fatal("moved prefix corrupted")
		}
	})
}

// makeRef regenerates the deterministic pattern makeFile writes.
func makeRef(n int, seed byte) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i>>8) ^ byte(i)*3 ^ seed
	}
	return data
}

func TestSpliceConcurrentTransfers(t *testing.T) {
	// Two simultaneous splices over the same devices must both
	// complete correctly — "several buffers may be in transit
	// simultaneously and need not be maintained in sequential order."
	m := newMachine(t, disk.RAMDisk)
	const size = 12 * bsize
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/a", size, 20)
		makeFile(t, p, "/d0/b", size, 21)
		srcA, _ := p.Open("/d0/a", kernel.ORdOnly)
		srcB, _ := p.Open("/d0/b", kernel.ORdOnly)
		dstA, _ := p.Open("/d1/a", kernel.OCreat|kernel.OWrOnly)
		dstB, _ := p.Open("/d1/b", kernel.OCreat|kernel.OWrOnly)
		_, _ = p.Fcntl(srcA, kernel.FSetFL, kernel.FAsync)
		_, _ = p.Fcntl(srcB, kernel.FSetFL, kernel.FAsync)
		_, hA, err := SpliceOpts(p, srcA, dstA, EOF, Options{})
		if err != nil {
			t.Fatalf("splice A: %v", err)
		}
		_, hB, err := SpliceOpts(p, srcB, dstB, EOF, Options{})
		if err != nil {
			t.Fatalf("splice B: %v", err)
		}
		if err := hA.Wait(p); err != nil {
			t.Fatalf("wait A: %v", err)
		}
		if err := hB.Wait(p); err != nil {
			t.Fatalf("wait B: %v", err)
		}
		if !bytes.Equal(readAll(t, p, "/d1/a"), makeRef(size, 20)) {
			t.Fatal("transfer A corrupted")
		}
		if !bytes.Equal(readAll(t, p, "/d1/b"), makeRef(size, 21)) {
			t.Fatal("transfer B corrupted")
		}
	})
}

func TestSpliceSurvivesCallerExit(t *testing.T) {
	// An async splice continues after the calling process exits: the
	// descriptor, not the process context, owns the transfer.
	m := newMachine(t, disk.RZ58)
	const size = 16 * bsize
	var want []byte
	m.run(t, func(p *kernel.Proc) {
		want = makeFile(t, p, "/d0/src", size, 22)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		_, _ = p.Fcntl(src, kernel.FSetFL, kernel.FAsync)
		if _, _, err := SpliceOpts(p, src, dst, EOF, Options{}); err != nil {
			t.Fatalf("splice: %v", err)
		}
		// Exit immediately; the kernel hold keeps the machine running.
	})
	// After Run returns, all spliced data must be on the media.
	m.k.Spawn("verify", func(p *kernel.Proc) {
		got := readAll(t, p, "/d1/dst")
		if !bytes.Equal(got, want) {
			t.Error("data incomplete after caller exit")
		}
	})
	if err := m.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceOnMechanicalDisksDataIntegrity(t *testing.T) {
	for _, mk := range []func(int64, int) disk.Params{disk.RZ56, disk.RZ58} {
		m := newMachine(t, mk)
		const size = 32*bsize + 77
		m.run(t, func(p *kernel.Proc) {
			want := makeFile(t, p, "/d0/src", size, 23)
			if err := m.cache.InvalidateDev(p.Ctx(), m.disks[0]); err != nil {
				t.Fatal(err)
			}
			src, _ := p.Open("/d0/src", kernel.ORdOnly)
			dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
			n, err := Splice(p, src, dst, EOF)
			if err != nil || n != size {
				t.Fatalf("splice: n=%d err=%v", n, err)
			}
			if !bytes.Equal(readAll(t, p, "/d1/dst"), want) {
				t.Fatal("mechanical-disk splice corrupted data")
			}
		})
	}
}

func TestSpliceCustomWatermarks(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	const blocks = 32
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", blocks*bsize, 24)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		_, h, err := SpliceOpts(p, src, dst, EOF, Options{
			ReadWatermark: 1, WriteWatermark: 1, RefillBatch: 1,
		})
		if err != nil {
			t.Fatalf("splice: %v", err)
		}
		st := h.Stats()
		if st.PeakReads > 1 || st.PeakWrites > 1 {
			t.Fatalf("watermark-1 splice had %d/%d in flight", st.PeakReads, st.PeakWrites)
		}
		if st.BytesMoved != blocks*bsize {
			t.Fatalf("moved %d", st.BytesMoved)
		}
	})
}

func TestSpliceThroughputBeatsReadWriteOnRAMDisk(t *testing.T) {
	// The headline result, in miniature: on a fast device, the
	// in-kernel path must outperform the read/write path.
	const size = 64 * bsize

	elapsedSplice := func() sim.Duration {
		m := newMachine(t, disk.RAMDisk)
		var el sim.Duration
		m.run(t, func(p *kernel.Proc) {
			makeFile(t, p, "/d0/src", size, 30)
			_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
			src, _ := p.Open("/d0/src", kernel.ORdOnly)
			dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
			t0 := p.Now()
			if _, err := Splice(p, src, dst, EOF); err != nil {
				t.Fatalf("splice: %v", err)
			}
			el = p.Now().Sub(t0)
		})
		return el
	}()

	elapsedRW := func() sim.Duration {
		m := newMachine(t, disk.RAMDisk)
		var el sim.Duration
		m.run(t, func(p *kernel.Proc) {
			makeFile(t, p, "/d0/src", size, 30)
			_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
			src, _ := p.Open("/d0/src", kernel.ORdOnly)
			dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
			t0 := p.Now()
			tmp := make([]byte, bsize)
			for {
				n, err := p.Read(src, tmp)
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				if n == 0 {
					break
				}
				if _, err := p.Write(dst, tmp[:n]); err != nil {
					t.Fatalf("write: %v", err)
				}
			}
			if err := p.Fsync(dst); err != nil {
				t.Fatalf("fsync: %v", err)
			}
			el = p.Now().Sub(t0)
		})
		return el
	}()

	if elapsedSplice >= elapsedRW {
		t.Fatalf("splice (%v) not faster than read/write (%v) on RAM disk", elapsedSplice, elapsedRW)
	}
}
