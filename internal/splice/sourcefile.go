package splice

import (
	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/trace"
)

// source → file splice: an extension beyond the paper's prototype
// (which supported file→file, socket→socket and framebuffer→socket).
// Incoming chunks are staged into destination cache buffers — the one
// place a copy is unavoidable, since network data arrives in
// arbitrarily sized packets that must be marshalled into aligned
// blocks — and each full block is written with the same asynchronous
// B_CALL machinery as the block engine.
//
// The transfer size must be bounded: splice sizes the destination
// mapping up front (as §5.2 does from the source gnode), and an
// unbounded network source has no size to take.

// setupSourceFile prepares a source → file transfer of exactly size
// bytes.
func (d *desc) setupSourceFile(p *kernel.Proc, dfd *kernel.FDesc, size int64) error {
	if size == EOF || size <= 0 {
		return kernel.ErrInval // must be bounded; see above
	}
	ctx := p.Ctx()
	d.cache = d.dstFile.BufCache()
	d.bsize = int64(d.cache.BlockSize())
	dstOff := dfd.Offset()
	if dstOff%d.bsize != 0 {
		return kernel.ErrInval
	}
	d.total = size
	d.dstOff = dstOff
	d.nblocks = (size + d.bsize - 1) / d.bsize

	dstStart := dstOff / d.bsize
	full, fresh, err := d.dstFile.SpliceMapWrite(ctx, dstStart+d.nblocks)
	if err != nil {
		return err
	}
	d.dstTable = full[dstStart:]
	d.dstFresh = fresh[dstStart:]
	d.dstFile.SpliceSetSize(ctx, dstOff+size)

	d.rateStart = d.k.Now()
	d.k.Hold()
	if d.async {
		dfd.Advance(size)
	}
	d.pumpSourceToFile()
	return nil
}

// pumpSourceToFile issues the next source read unless stalled on
// staging or sink backpressure.
func (d *desc) pumpSourceToFile() {
	if d.stopped || d.done || d.streamEOF || d.readOutstanding || len(d.sfStash) > 0 {
		return
	}
	if d.pendingWrites >= d.opts.WriteWatermark {
		return // resumed from write completion
	}
	remaining := d.total - d.sfReceived
	if remaining <= 0 {
		return
	}
	max := int(d.bsize)
	if remaining < int64(max) {
		max = int(remaining)
	}
	d.readOutstanding = true
	d.pendingReads++
	d.stats.ReadsIssued++
	d.k.TraceEmit(trace.KindSpliceRead, 0, d.sfReceived, int64(d.pendingReads), "")
	d.source.SpliceRead(max, func(data []byte, eof bool, err error) {
		d.handlerCharge()
		d.readOutstanding = false
		d.pendingReads--
		d.k.TraceEmit(trace.KindSpliceReadDone, 0, int64(len(data)), int64(d.pendingReads), "")
		if err != nil {
			d.sfAbort(err)
			return
		}
		if eof {
			d.streamEOF = true
		}
		if len(data) > 0 {
			d.sfConsume(data)
			return
		}
		d.sfMaybeFinish()
	})
}

// sfConsume stages incoming bytes into destination block buffers,
// flushing each block as it fills. On a momentarily unavailable buffer
// the remainder is stashed and retried from the callout list.
func (d *desc) sfConsume(data []byte) {
	for len(data) > 0 && d.err == nil && !d.stopped {
		if d.sfHdr == nil {
			blk := d.sfReceived / d.bsize
			hdr, err := d.cache.GetblkNB(d.k.IntrCtx(), d.dstFile.Dev(), int64(d.dstTable[blk]))
			if err != nil {
				// No buffer without sleeping: stash and retry next tick.
				d.sfStash = append(d.sfStash, data...)
				d.armSFRetry()
				return
			}
			d.sfHdr = hdr
			d.sfFill = 0
		}
		n := int(d.bsize) - d.sfFill
		if n > len(data) {
			n = len(data)
		}
		copy(d.sfHdr.Data[d.sfFill:], data[:n])
		d.k.StealCPU(d.k.Config().BcopyCost(n)) // mbuf → cache buffer
		d.sfFill += n
		d.sfReceived += int64(n)
		data = data[n:]
		if int64(d.sfFill) == d.bsize || d.sfReceived == d.total {
			d.sfFlushBlock()
		}
	}
	if d.err != nil || d.stopped {
		d.sfMaybeFinish()
		return
	}
	d.sfMaybeFinish()
	d.pumpSourceToFile()
}

// sfFlushBlock writes the current staging buffer asynchronously. A
// partial final block into a freshly allocated destination block is
// zero-padded and written whole, so the on-disk bytes past the staged
// payload read back as zeros if a later write extends the file across
// them (the invariant the ordinary write path maintains via zero-filled
// cache buffers). Into a pre-existing block it is a partial write that
// preserves the block's tail on disk — and the staging buffer, whose
// in-memory tail is stale recycled content, must then not survive as a
// cached copy (sfWriteDone invalidates it).
func (d *desc) sfFlushBlock() {
	hdr := d.sfHdr
	d.sfHdr = nil
	if d.sfFill < len(hdr.Data) {
		blk := (d.sfReceived - 1) / d.bsize
		if d.dstFresh[blk] {
			for i := d.sfFill; i < len(hdr.Data); i++ {
				hdr.Data[i] = 0
			}
		} else {
			hdr.Bcount = d.sfFill
		}
	}
	hdr.SpliceN = d.sfFill
	d.sfFill = 0
	hdr.SpliceDesc = d
	hdr.Flags &^= buf.BRead | buf.BDone
	hdr.Flags |= buf.BCall
	hdr.Iodone = d.sfWriteDone
	d.pendingWrites++
	d.stats.WritesIssued++
	d.stats.Copied++
	if d.pendingWrites > d.stats.PeakWrites {
		d.stats.PeakWrites = d.pendingWrites
	}
	d.k.TraceEmit(trace.KindSpliceWrite, 0, int64(hdr.SpliceN), int64(d.pendingWrites), "")
	d.dstFile.Dev().Strategy(hdr)
}

// sfWriteDone completes one staged block write.
func (d *desc) sfWriteDone(k *kernel.Kernel, hdr *buf.Buf) {
	d.handlerCharge()
	failed := hdr.Flags&buf.BError != 0
	werr := hdr.Err
	n := hdr.SpliceN
	if hdr.Bcount < d.cache.BlockSize() {
		// Partial write into a pre-existing block: the buffer's
		// in-memory tail is stale recycled content that does not match
		// the preserved on-disk tail. Drop it from the cache.
		hdr.Flags |= buf.BInval
	}
	d.cache.Brelse(k.IntrCtx(), hdr)
	d.pendingWrites--
	k.TraceEmit(trace.KindSpliceWriteDone, 0, int64(n), int64(d.pendingWrites), "")
	if failed {
		if werr == nil {
			werr = kernel.ErrNxIO
		}
		d.sfAbort(werr)
		return
	}
	d.moved += int64(n)
	d.stats.BytesMoved += int64(n)
	d.sfMaybeFinish()
	if !d.done {
		d.sfDrainStash()
		d.pumpSourceToFile()
	}
}

// armSFRetry retries stash draining from the callout list.
func (d *desc) armSFRetry() {
	if d.retryArmed || d.stopped {
		return
	}
	d.retryArmed = true
	d.k.TraceEmit(trace.KindSpliceStall, 0, int64(d.pendingReads), int64(d.pendingWrites), "")
	d.k.Timeout(func() {
		d.retryArmed = false
		d.sfDrainStash()
		d.pumpSourceToFile()
	}, 1)
}

// sfDrainStash re-feeds stashed bytes through the staging path.
func (d *desc) sfDrainStash() {
	if len(d.sfStash) == 0 {
		return
	}
	data := d.sfStash
	d.sfStash = nil
	d.sfConsume(data)
}

// sfAbort releases staging state and fails the splice.
func (d *desc) sfAbort(err error) {
	if d.sfHdr != nil {
		d.cache.Brelse(d.k.IntrCtx(), d.sfHdr)
		d.sfHdr = nil
	}
	d.sfStash = nil
	d.fail(err)
}

// sfMaybeFinish completes the transfer once everything received has
// been written, or once the source hit EOF short of the requested size.
func (d *desc) sfMaybeFinish() {
	if d.done {
		return
	}
	if d.err != nil || d.stopped {
		if d.sfHdr != nil {
			d.cache.Brelse(d.k.IntrCtx(), d.sfHdr)
			d.sfHdr = nil
		}
		d.sfStash = nil
		if d.pendingReads == 0 && d.pendingWrites == 0 {
			d.complete()
		}
		return
	}
	finished := d.sfReceived >= d.total || (d.streamEOF && !d.readOutstanding)
	if finished && d.sfHdr != nil && d.sfFill > 0 {
		// Short EOF with a partial block staged: flush it.
		d.sfFlushBlock()
		return
	}
	if finished && d.pendingReads == 0 && d.pendingWrites == 0 && len(d.sfStash) == 0 && d.sfHdr == nil {
		d.complete()
	}
}
