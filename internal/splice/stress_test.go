package splice

import (
	"bytes"
	"fmt"
	"testing"

	"kdp/internal/disk"
	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// TestManyConcurrentSplices runs eight simultaneous async splices over
// shared devices and a shared cache and verifies every byte of every
// transfer — "splice ... provides support for multiple simultaneous I/O
// operations" (§4).
func TestManyConcurrentSplices(t *testing.T) {
	m := newMachine(t, disk.RZ58)
	const nsplices = 8
	const size = 10 * bsize
	m.run(t, func(p *kernel.Proc) {
		for i := 0; i < nsplices; i++ {
			makeFile(t, p, fmt.Sprintf("/d0/s%d", i), size, byte(70+i))
		}
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])

		handles := make([]*Handle, nsplices)
		for i := 0; i < nsplices; i++ {
			src, _ := p.Open(fmt.Sprintf("/d0/s%d", i), kernel.ORdOnly)
			dst, _ := p.Open(fmt.Sprintf("/d1/s%d", i), kernel.OCreat|kernel.OWrOnly)
			_, _ = p.Fcntl(src, kernel.FSetFL, kernel.FAsync)
			_, h, err := SpliceOpts(p, src, dst, EOF, Options{})
			if err != nil {
				t.Fatalf("splice %d: %v", i, err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			if err := h.Wait(p); err != nil {
				t.Fatalf("wait %d: %v", i, err)
			}
			if h.Moved() != size {
				t.Fatalf("splice %d moved %d", i, h.Moved())
			}
		}
		for i := 0; i < nsplices; i++ {
			got := readAll(t, p, fmt.Sprintf("/d1/s%d", i))
			if !bytes.Equal(got, makeRef(size, byte(70+i))) {
				t.Fatalf("splice %d corrupted data", i)
			}
		}
	})
	// All kernel holds released, every buffer back.
	if free := m.cache.FreeBuffers(); free != m.cache.NumBuffers() {
		t.Fatalf("%d of %d buffers free after all splices", free, m.cache.NumBuffers())
	}
}

// TestConcurrentSplicesBoundCacheUsage: with N concurrent splices, the
// cache never holds more than N * (flow-control bound) busy buffers.
func TestConcurrentSplicesBoundCacheUsage(t *testing.T) {
	m := newMachine(t, disk.RZ56)
	const nsplices = 4
	const size = 24 * bsize
	bound := nsplices * (DefaultReadWatermark - 1 + DefaultWriteWatermark - 1 + 2*DefaultRefillBatch)
	minFree := m.cache.NumBuffers()
	m.run(t, func(p *kernel.Proc) {
		for i := 0; i < nsplices; i++ {
			makeFile(t, p, fmt.Sprintf("/d0/s%d", i), size, byte(80+i))
		}
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
		handles := make([]*Handle, nsplices)
		for i := 0; i < nsplices; i++ {
			src, _ := p.Open(fmt.Sprintf("/d0/s%d", i), kernel.ORdOnly)
			dst, _ := p.Open(fmt.Sprintf("/d1/s%d", i), kernel.OCreat|kernel.OWrOnly)
			_, _ = p.Fcntl(src, kernel.FSetFL, kernel.FAsync)
			_, h, err := SpliceOpts(p, src, dst, EOF, Options{})
			if err != nil {
				t.Fatalf("splice %d: %v", i, err)
			}
			handles[i] = h
		}
		done := func() bool {
			for _, h := range handles {
				if !h.Done() {
					return false
				}
			}
			return true
		}
		for !done() {
			if f := m.cache.FreeBuffers(); f < minFree {
				minFree = f
			}
			p.SleepFor(10 * sim.Millisecond)
		}
	})
	used := m.cache.NumBuffers() - minFree
	if used > bound {
		t.Fatalf("splices held up to %d buffers; flow-control bound is %d", used, bound)
	}
}

// TestSpliceWhileReadersActive interleaves a splice with ordinary
// read() traffic against the same source file: both must see correct
// data (the splice read side and the read path share cache buffers).
func TestSpliceWhileReadersActive(t *testing.T) {
	m := newMachine(t, disk.RZ58)
	const size = 16 * bsize
	var want []byte
	m.k.Spawn("setup-and-splice", func(p *kernel.Proc) {
		if m.fsys[0] == nil {
			m.boot(t, p)
		}
		want = makeFile(t, p, "/d0/shared", size, 90)
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
		src, _ := p.Open("/d0/shared", kernel.ORdOnly)
		dst, _ := p.Open("/d1/copy", kernel.OCreat|kernel.OWrOnly)
		if n, err := Splice(p, src, dst, EOF); err != nil || n != size {
			t.Errorf("splice: n=%d err=%v", n, err)
		}
	})
	m.k.Spawn("reader", func(p *kernel.Proc) {
		// Poll-read the file while the splice runs.
		for i := 0; i < 20; i++ {
			p.SleepFor(15 * sim.Millisecond)
			fd, err := p.Open("/d0/shared", kernel.ORdOnly)
			if err != nil {
				continue // file may not exist yet
			}
			buf := make([]byte, 512)
			n, err := p.Read(fd, buf)
			if err != nil {
				t.Errorf("reader: %v", err)
			}
			if n > 0 && want != nil && !bytes.Equal(buf[:n], want[:n]) {
				t.Error("reader saw corrupted data during splice")
			}
			_ = p.Close(fd)
		}
	})
	if err := m.k.Run(); err != nil {
		t.Fatal(err)
	}
	m.k.Spawn("verify", func(p *kernel.Proc) {
		if !bytes.Equal(readAll(t, p, "/d1/copy"), want) {
			t.Error("spliced copy corrupted")
		}
	})
	if err := m.k.Run(); err != nil {
		t.Fatal(err)
	}
}
