package splice

import (
	"bytes"
	"testing"

	"kdp/internal/dev"
	"kdp/internal/disk"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
)

// These tests exercise the non-file splice endpoints the paper lists in
// §5.1: character devices (the §4 movie player), socket-to-socket UDP
// splices, and framebuffer-to-socket splices.

func TestSpliceFileToDAC(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	dac := dev.NewDAC(m.k, dev.DACParams{
		Path: "/dev/speaker", Rate: 1e6, BufBytes: 64 << 10, Capture: true,
	})
	const size = 5*bsize + 321
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/movie.audio", size, 40)
		src, _ := p.Open("/d0/movie.audio", kernel.ORdOnly)
		snd, err := p.Open("/dev/speaker", kernel.OWrOnly)
		if err != nil {
			t.Fatalf("open dac: %v", err)
		}
		n, err := Splice(p, src, snd, EOF)
		if err != nil || n != size {
			t.Fatalf("splice: n=%d err=%v", n, err)
		}
		if !bytes.Equal(dac.Captured(), want) {
			t.Fatal("DAC did not play the file's bytes in order")
		}
	})
}

func TestSpliceFileToDACAsyncEOF(t *testing.T) {
	// The paper's audio half: set FASYNC, splice(audiofile, audio_dev,
	// SPLICE_EOF), return immediately, SIGIO at completion.
	m := newMachine(t, disk.RAMDisk)
	dac := dev.NewDAC(m.k, dev.DACParams{
		Path: "/dev/speaker", Rate: 64000, BufBytes: 64 << 10,
	})
	const size = 4 * bsize // 32KB at 64KB/s: ~0.5s of audio
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/movie.audio", size, 41)
		src, _ := p.Open("/d0/movie.audio", kernel.ORdOnly)
		snd, _ := p.Open("/dev/speaker", kernel.OWrOnly)
		_, _ = p.Fcntl(src, kernel.FSetFL, kernel.FAsync)
		got := false
		p.SetSignalHandler(kernel.SIGIO, func(*kernel.Proc, kernel.Signal) { got = true })
		t0 := p.Now()
		n, err := Splice(p, src, snd, EOF)
		if err != nil || n != size {
			t.Fatalf("splice: n=%d err=%v", n, err)
		}
		if ret := p.Now().Sub(t0); ret > 100*sim.Millisecond {
			t.Fatalf("async splice blocked %v", ret)
		}
		for !got {
			p.Pause()
		}
		playTime := p.Now().Sub(t0)
		if playTime < 400*sim.Millisecond {
			t.Fatalf("SIGIO at %v; playback should take ~0.5s", playTime)
		}
		if dac.Played() != size {
			t.Fatalf("played %d", dac.Played())
		}
	})
}

func TestSpliceFrameQuantumPacing(t *testing.T) {
	// The paper's video half: repeated synchronous splices of one
	// frame, paced by an interval timer. The size parameter is the
	// flow-control knob.
	m := newMachine(t, disk.RAMDisk)
	vdac := dev.NewDAC(m.k, dev.DACParams{
		Path: "/dev/video_dac", Rate: 4e6, BufBytes: 256 << 10, Capture: true,
	})
	const frame = 16000 // not block aligned, on purpose
	const frames = 8
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/movie.video", frame*frames, 42)
		src, _ := p.Open("/d0/movie.video", kernel.ORdOnly)
		vid, _ := p.Open("/dev/video_dac", kernel.OWrOnly)
		p.SetSignalHandler(kernel.SIGALRM, func(*kernel.Proc, kernel.Signal) {})
		p.SetITimer(33*sim.Millisecond, 33*sim.Millisecond)
		t0 := p.Now()
		for {
			n, err := Splice(p, src, vid, frame)
			if err != nil {
				t.Fatalf("frame splice: %v", err)
			}
			if n <= 0 {
				break
			}
			p.Pause() // wait for the timer
		}
		p.SetITimer(0, 0)
		elapsed := p.Now().Sub(t0)
		// 8 frames at ~33ms intervals: at least ~230ms.
		if elapsed < 220*sim.Millisecond {
			t.Fatalf("playback took %v; pacing not applied", elapsed)
		}
		if !bytes.Equal(vdac.Captured(), want) {
			t.Fatal("video frames corrupted or out of order")
		}
	})
}

func TestSpliceSocketToSocket(t *testing.T) {
	// §5.1: socket-to-socket splices for the UDP transport protocol. A
	// relay process splices its inbound socket to its outbound socket;
	// datagrams flow through the kernel without the relay running.
	m := newMachine(t, disk.RAMDisk)
	net := socket.NewNet(m.k, socket.Loopback())
	in, _ := net.NewSocket(5000)   // relay's inbound
	out, _ := net.NewSocket(5001)  // relay's outbound
	sink, _ := net.NewSocket(5002) // final consumer
	out.Connect(5002)

	producer, _ := net.NewSocket(4000)
	producer.Connect(5000)

	const ndgrams = 20
	const dsize = 1000
	var received [][]byte

	m.k.Spawn("consumer", func(p *kernel.Proc) {
		fd := p.InstallFile(sink, kernel.ORdOnly)
		buf := make([]byte, 4096)
		for len(received) < ndgrams {
			n, err := p.Read(fd, buf)
			if err != nil {
				t.Errorf("consume: %v", err)
				return
			}
			if n == 0 {
				break
			}
			received = append(received, append([]byte(nil), buf[:n]...))
		}
	})
	m.k.Spawn("relay", func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		outFD := p.InstallFile(out, kernel.OWrOnly)
		n, err := Splice(p, inFD, outFD, ndgrams*dsize)
		if err != nil {
			t.Errorf("relay splice: %v", err)
		}
		if n != ndgrams*dsize {
			t.Errorf("relayed %d bytes, want %d", n, ndgrams*dsize)
		}
	})
	m.k.Spawn("producer", func(p *kernel.Proc) {
		fd := p.InstallFile(producer, kernel.OWrOnly)
		msg := make([]byte, dsize)
		for i := 0; i < ndgrams; i++ {
			msg[0] = byte(i)
			if _, err := p.Write(fd, msg); err != nil {
				t.Errorf("produce: %v", err)
			}
		}
	})
	if err := m.k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(received) != ndgrams {
		t.Fatalf("consumer got %d datagrams, want %d", len(received), ndgrams)
	}
	for i, d := range received {
		if d[0] != byte(i) {
			t.Fatalf("datagram %d out of order (marker %d)", i, d[0])
		}
	}
}

func TestSpliceSocketRelayUntilEOF(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	net := socket.NewNet(m.k, socket.Loopback())
	in, _ := net.NewSocket(5000)
	out, _ := net.NewSocket(5001)
	sink, _ := net.NewSocket(5002)
	out.Connect(5002)
	producer, _ := net.NewSocket(4000)
	producer.Connect(5000)

	var relayed int64
	m.k.Spawn("relay", func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		outFD := p.InstallFile(out, kernel.OWrOnly)
		n, err := Splice(p, inFD, outFD, EOF)
		if err != nil {
			t.Errorf("relay: %v", err)
		}
		relayed = n
	})
	m.k.Spawn("producer", func(p *kernel.Proc) {
		fd := p.InstallFile(producer, kernel.OWrOnly)
		for i := 0; i < 5; i++ {
			_, _ = p.Write(fd, make([]byte, 700))
		}
		_ = p.Close(fd) // EOF marker terminates the relay
	})
	m.k.Spawn("drain", func(p *kernel.Proc) {
		fd := p.InstallFile(sink, kernel.ORdOnly)
		buf := make([]byte, 4096)
		for i := 0; i < 5; i++ {
			if n, _ := p.Read(fd, buf); n == 0 {
				break
			}
		}
	})
	if err := m.k.Run(); err != nil {
		t.Fatal(err)
	}
	if relayed != 5*700 {
		t.Fatalf("relayed %d bytes, want %d", relayed, 5*700)
	}
}

func TestSpliceFramebufferToSocket(t *testing.T) {
	// §5.1: framebuffer-to-socket splices for sending graphical images
	// and video.
	m := newMachine(t, disk.RAMDisk)
	fb := dev.NewFramebuffer(m.k, dev.FBParams{
		Path: "/dev/fb0", FrameBytes: 4096, FPS: 50, Frames: 12,
	})
	net := socket.NewNet(m.k, socket.Ethernet10())
	out, _ := net.NewSocket(6000)
	viewer, _ := net.NewSocket(6001)
	out.Connect(6001)

	var frames int
	m.k.Spawn("viewer", func(p *kernel.Proc) {
		fd := p.InstallFile(viewer, kernel.ORdOnly)
		buf := make([]byte, 8192)
		for {
			n, err := p.Read(fd, buf)
			if err != nil {
				t.Errorf("viewer: %v", err)
				return
			}
			if n == 0 {
				break
			}
			frames++
		}
	})
	m.k.Spawn("streamer", func(p *kernel.Proc) {
		fbFD, err := p.Open("/dev/fb0", kernel.ORdOnly)
		if err != nil {
			t.Errorf("open fb: %v", err)
			return
		}
		outFD := p.InstallFile(out, kernel.OWrOnly)
		n, err := Splice(p, fbFD, outFD, EOF)
		if err != nil {
			t.Errorf("fb splice: %v", err)
		}
		if n != 12*4096 {
			t.Errorf("streamed %d bytes, want %d", n, 12*4096)
		}
		_ = p.Close(outFD) // let the viewer finish
	})
	if err := m.k.Run(); err != nil {
		t.Fatal(err)
	}
	if frames != 12 {
		t.Fatalf("viewer saw %d frames, want 12", frames)
	}
	if fb.Dropped() != 0 {
		t.Fatalf("%d frames dropped during splice", fb.Dropped())
	}
}

func TestSpliceFileToNull(t *testing.T) {
	m := newMachine(t, disk.RZ58)
	null := dev.NewNull(m.k)
	const size = 24 * bsize
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", size, 43)
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/dev/null", kernel.OWrOnly)
		n, err := Splice(p, src, dst, EOF)
		if err != nil || n != size {
			t.Fatalf("splice: n=%d err=%v", n, err)
		}
	})
	if null.BytesWritten() != size {
		t.Fatalf("null consumed %d", null.BytesWritten())
	}
}

func TestSpliceUnsupportedCombination(t *testing.T) {
	// A sink-only device (a DAC) cannot be a splice source.
	m := newMachine(t, disk.RAMDisk)
	dev.NewDAC(m.k, dev.DACParams{Path: "/dev/snd", Rate: 1e6})
	m.run(t, func(p *kernel.Proc) {
		snd, _ := p.Open("/dev/snd", kernel.ORdWr)
		dst, _ := p.Open("/d1/out", kernel.OCreat|kernel.OWrOnly)
		if _, err := Splice(p, snd, dst, 100); err != kernel.ErrOpNotSupp {
			t.Fatalf("DAC→file splice: %v, want ErrOpNotSupp", err)
		}
	})
}

func TestSpliceSocketToFile(t *testing.T) {
	// The source→file extension: datagrams land in a file, staged
	// through destination cache buffers.
	m := newMachine(t, disk.RZ58)
	net := socket.NewNet(m.k, socket.Loopback())
	in, _ := net.NewSocket(1)
	producer, _ := net.NewSocket(2)
	producer.Connect(1)

	const dsize = 1000 // deliberately unaligned with 8KB blocks
	const ndgrams = 50
	const total = dsize * ndgrams
	want := make([]byte, total)

	m.k.Spawn("producer", func(p *kernel.Proc) {
		fd := p.InstallFile(producer, kernel.OWrOnly)
		msg := make([]byte, dsize)
		for i := 0; i < ndgrams; i++ {
			for j := range msg {
				msg[j] = byte(i) ^ byte(j*3)
				want[i*dsize+j] = msg[j]
			}
			if _, err := p.Write(fd, msg); err != nil {
				t.Errorf("produce: %v", err)
			}
		}
	})
	m.run(t, func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		dst, _ := p.Open("/d1/landing", kernel.OCreat|kernel.OWrOnly)
		n, h, err := SpliceOpts(p, inFD, dst, total, Options{})
		if err != nil {
			t.Fatalf("socket→file splice: %v", err)
		}
		if n != total {
			t.Fatalf("moved %d, want %d", n, total)
		}
		if st := h.Stats(); st.Copied == 0 {
			t.Fatalf("staging copies not accounted: %+v", st)
		}
		got := readAll(t, p, "/d1/landing")
		if !bytes.Equal(got, want) {
			t.Fatal("socket→file splice corrupted data")
		}
	})
}

func TestSpliceSocketToFileShortEOF(t *testing.T) {
	// Producer closes early: the splice lands what arrived (including a
	// partial block) and completes with the short count.
	m := newMachine(t, disk.RAMDisk)
	net := socket.NewNet(m.k, socket.Loopback())
	in, _ := net.NewSocket(1)
	producer, _ := net.NewSocket(2)
	producer.Connect(1)

	const sent = 3 * 700
	m.k.Spawn("producer", func(p *kernel.Proc) {
		fd := p.InstallFile(producer, kernel.OWrOnly)
		for i := 0; i < 3; i++ {
			_, _ = p.Write(fd, make([]byte, 700))
		}
		_ = p.Close(fd) // EOF marker
	})
	m.run(t, func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		dst, _ := p.Open("/d1/short", kernel.OCreat|kernel.OWrOnly)
		n, err := Splice(p, inFD, dst, 100*bsize) // ask for far more
		if err != nil {
			t.Fatalf("splice: %v", err)
		}
		if n != sent {
			t.Fatalf("moved %d, want %d (short EOF)", n, sent)
		}
		got := readAll(t, p, "/d1/short")
		if len(got) < sent {
			t.Fatalf("file holds %d bytes, want >= %d", len(got), sent)
		}
	})
}

func TestSpliceSocketToFileUnboundedRejected(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	net := socket.NewNet(m.k, socket.Loopback())
	in, _ := net.NewSocket(1)
	m.run(t, func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		dst, _ := p.Open("/d1/out", kernel.OCreat|kernel.OWrOnly)
		if _, err := Splice(p, inFD, dst, EOF); err != kernel.ErrInval {
			t.Fatalf("unbounded socket→file: %v, want ErrInval", err)
		}
	})
}
