package splice

import (
	"bytes"
	"testing"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
)

// Error-path coverage: splicing through closed descriptors, onto a full
// filesystem, past EOF mid-transfer-quantum, and across a lossy network.

func TestSpliceClosedFD(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", 2*bsize, 50)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)

		if err := p.Close(src); err != nil {
			t.Fatalf("close src: %v", err)
		}
		if _, err := Splice(p, src, dst, EOF); err != kernel.ErrBadFD {
			t.Fatalf("splice from closed src: %v, want ErrBadFD", err)
		}

		src, _ = p.Open("/d0/src", kernel.ORdOnly)
		if err := p.Close(dst); err != nil {
			t.Fatalf("close dst: %v", err)
		}
		if _, err := Splice(p, src, dst, EOF); err != kernel.ErrBadFD {
			t.Fatalf("splice to closed dst: %v, want ErrBadFD", err)
		}
	})
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceFullFilesystem(t *testing.T) {
	// /d1 lives on a volume far too small for the source file; the
	// destination mapping is built up front (§5.2), so the splice fails
	// with ENOSPC before any data moves, and the machine stays usable.
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 3600 * sim.Second
	k := kernel.New(cfg)
	cache := buf.NewCache(k, 400, bsize)
	big := disk.New(k, disk.RAMDisk(2048, bsize))
	big.SetCache(cache)
	tiny := disk.New(k, disk.RAMDisk(48, bsize))
	tiny.SetCache(cache)
	for _, d := range []*disk.Disk{big, tiny} {
		if _, err := fs.Mkfs(d, 16); err != nil {
			t.Fatalf("mkfs: %v", err)
		}
	}

	var tinyFS *fs.FS
	k.Spawn("test", func(p *kernel.Proc) {
		for i, d := range []*disk.Disk{big, tiny} {
			f, err := fs.Mount(p.Ctx(), cache, d)
			if err != nil {
				t.Fatalf("mount %d: %v", i, err)
			}
			k.Mount([]string{"/d0", "/d1"}[i], f)
			if d == tiny {
				tinyFS = f
			}
		}
		makeFile(t, p, "/d0/src", 64*bsize, 51)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		if _, err := Splice(p, src, dst, EOF); err != kernel.ErrNoSpace {
			t.Fatalf("splice onto full fs: %v, want ErrNoSpace", err)
		}
		// The blocks the aborted mapping grabbed are still attached to
		// the destination inode — consistently so.
		if err := tinyFS.SyncAll(p.Ctx()); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if rep, err := fs.Fsck(p.Ctx(), cache, tiny); err != nil {
			t.Fatalf("fsck: %v", err)
		} else if !rep.Clean() {
			t.Fatalf("tiny volume inconsistent after failed splice: %v", rep.Problems)
		}
		// Unlinking the casualty releases them and the volume is usable
		// again.
		if err := p.Close(dst); err != nil {
			t.Fatalf("close dst: %v", err)
		}
		if err := p.Unlink("/d1/dst"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		fd, err := p.Open("/d1/small", kernel.OCreat|kernel.OWrOnly)
		if err != nil {
			t.Fatalf("open after ENOSPC: %v", err)
		}
		if _, err := p.Write(fd, make([]byte, 100)); err != nil {
			t.Fatalf("write after ENOSPC: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceEOFMidTransferQuantum(t *testing.T) {
	// The source ends partway through a transfer quantum (its last block
	// is partial) and the caller asks for far more than the file holds:
	// the splice returns the short count and the partial quantum lands
	// intact.
	m := newMachine(t, disk.RZ58)
	const size = 2*bsize + 1234
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/short", size, 52)
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
		src, _ := p.Open("/d0/short", kernel.ORdOnly)
		dst, _ := p.Open("/d1/out", kernel.OCreat|kernel.OWrOnly)
		n, err := Splice(p, src, dst, 10*bsize)
		if err != nil {
			t.Fatalf("splice: %v", err)
		}
		if n != size {
			t.Fatalf("moved %d, want short count %d", n, size)
		}
		if got := readAll(t, p, "/d1/out"); !bytes.Equal(got, want) {
			t.Fatal("partial final quantum corrupted")
		}
		// The splice left src at the (unaligned) EOF; splicing again from
		// there is rejected, and from an aligned offset past EOF it
		// degenerates to a zero-byte transfer.
		if _, err := Splice(p, src, dst, bsize); err != kernel.ErrInval {
			t.Fatalf("splice at unaligned EOF: %v, want ErrInval", err)
		}
		if _, err := p.Lseek(src, 3*bsize, 0); err != nil {
			t.Fatalf("lseek src: %v", err)
		}
		if _, err := p.Lseek(dst, 3*bsize, 0); err != nil {
			t.Fatalf("lseek dst: %v", err)
		}
		n, err = Splice(p, src, dst, bsize)
		if err != nil || n != 0 {
			t.Fatalf("splice past EOF: n=%d err=%v, want 0, nil", n, err)
		}
	})
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceSocketDroppedPackets(t *testing.T) {
	// A relay splice over a lossy link: every 4th data packet in flight
	// is dropped, UDP-style. The relay must neither wedge nor relay
	// garbage — it moves what arrives and terminates on the EOF marker
	// (which is never dropped).
	m := newMachine(t, disk.RAMDisk)
	params := socket.Loopback()
	params.DropEvery = 4
	net := socket.NewNet(m.k, params)
	in, _ := net.NewSocket(5000)
	out, _ := net.NewSocket(5001)
	sink, _ := net.NewSocket(5002)
	out.Connect(5002)
	producer, _ := net.NewSocket(4000)
	producer.Connect(5000)

	const ndgrams = 20
	const dsize = 1000
	var relayed int64
	var consumed int

	m.k.Spawn("consumer", func(p *kernel.Proc) {
		fd := p.InstallFile(sink, kernel.ORdOnly)
		buf := make([]byte, 4096)
		for {
			n, err := p.Read(fd, buf)
			if err != nil {
				t.Errorf("consume: %v", err)
				return
			}
			if n == 0 {
				return // relay closed its outbound socket
			}
			consumed += n
		}
	})
	m.k.Spawn("relay", func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		outFD := p.InstallFile(out, kernel.OWrOnly)
		n, err := Splice(p, inFD, outFD, ndgrams*dsize)
		if err != nil {
			t.Errorf("relay splice: %v", err)
		}
		relayed = n
		_ = p.Close(outFD)
	})
	m.k.Spawn("producer", func(p *kernel.Proc) {
		fd := p.InstallFile(producer, kernel.OWrOnly)
		for i := 0; i < ndgrams; i++ {
			if _, err := p.Write(fd, make([]byte, dsize)); err != nil {
				t.Errorf("produce: %v", err)
			}
		}
		_ = p.Close(fd) // EOF marker terminates the relay
	})
	if err := m.k.Run(); err != nil {
		t.Fatal(err)
	}

	_, _, dropped := net.Stats()
	if dropped == 0 {
		t.Fatal("lossy link dropped nothing; DropEvery not applied")
	}
	if relayed >= ndgrams*dsize {
		t.Fatalf("relayed %d bytes despite %d drops", relayed, dropped)
	}
	if relayed == 0 {
		t.Fatal("relay moved nothing")
	}
	if int64(consumed) > relayed {
		t.Fatalf("consumer got %d bytes, more than the %d relayed", consumed, relayed)
	}
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}
