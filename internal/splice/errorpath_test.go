package splice

import (
	"bytes"
	"testing"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
)

// Error-path coverage: splicing through closed descriptors, onto a full
// filesystem, past EOF mid-transfer-quantum, and across a lossy network.

func TestSpliceClosedFD(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", 2*bsize, 50)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)

		if err := p.Close(src); err != nil {
			t.Fatalf("close src: %v", err)
		}
		if _, err := Splice(p, src, dst, EOF); err != kernel.ErrBadFD {
			t.Fatalf("splice from closed src: %v, want ErrBadFD", err)
		}

		src, _ = p.Open("/d0/src", kernel.ORdOnly)
		if err := p.Close(dst); err != nil {
			t.Fatalf("close dst: %v", err)
		}
		if _, err := Splice(p, src, dst, EOF); err != kernel.ErrBadFD {
			t.Fatalf("splice to closed dst: %v, want ErrBadFD", err)
		}
	})
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceFullFilesystem(t *testing.T) {
	// /d1 lives on a volume far too small for the source file; the
	// destination mapping is built up front (§5.2), so the splice fails
	// with ENOSPC before any data moves, and the machine stays usable.
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 3600 * sim.Second
	k := kernel.New(cfg)
	cache := buf.NewCache(k, 400, bsize)
	big := disk.New(k, disk.RAMDisk(2048, bsize))
	big.SetCache(cache)
	tiny := disk.New(k, disk.RAMDisk(48, bsize))
	tiny.SetCache(cache)
	for _, d := range []*disk.Disk{big, tiny} {
		if _, err := fs.Mkfs(d, 16); err != nil {
			t.Fatalf("mkfs: %v", err)
		}
	}

	var tinyFS *fs.FS
	k.Spawn("test", func(p *kernel.Proc) {
		for i, d := range []*disk.Disk{big, tiny} {
			f, err := fs.Mount(p.Ctx(), cache, d)
			if err != nil {
				t.Fatalf("mount %d: %v", i, err)
			}
			k.Mount([]string{"/d0", "/d1"}[i], f)
			if d == tiny {
				tinyFS = f
			}
		}
		makeFile(t, p, "/d0/src", 64*bsize, 51)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		if _, err := Splice(p, src, dst, EOF); err != kernel.ErrNoSpace {
			t.Fatalf("splice onto full fs: %v, want ErrNoSpace", err)
		}
		// The blocks the aborted mapping grabbed are still attached to
		// the destination inode — consistently so.
		if err := tinyFS.SyncAll(p.Ctx()); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if rep, err := fs.Fsck(p.Ctx(), cache, tiny); err != nil {
			t.Fatalf("fsck: %v", err)
		} else if !rep.Clean() {
			t.Fatalf("tiny volume inconsistent after failed splice: %v", rep.Problems)
		}
		// Unlinking the casualty releases them and the volume is usable
		// again.
		if err := p.Close(dst); err != nil {
			t.Fatalf("close dst: %v", err)
		}
		if err := p.Unlink("/d1/dst"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		fd, err := p.Open("/d1/small", kernel.OCreat|kernel.OWrOnly)
		if err != nil {
			t.Fatalf("open after ENOSPC: %v", err)
		}
		if _, err := p.Write(fd, make([]byte, 100)); err != nil {
			t.Fatalf("write after ENOSPC: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestSpliceSourceFileWriteFaultAbortsCleanly exercises the source→file
// engine's destination-failure path: a staged block's asynchronous
// write fails at interrupt level partway through a socket→file splice.
// The call must report the bytes moved so far with a single ErrIO,
// release every staging buffer back to the cache, and leave BOTH
// endpoints usable — the source socket still delivers the bytes the
// splice never consumed, and the destination volume is structurally
// consistent (the aborted mapping's blocks stay attached to the inode,
// the rollbackBlock discipline's "referenced, therefore consistent"
// contract).
func TestSpliceSourceFileWriteFaultAbortsCleanly(t *testing.T) {
	m := newMachine(t, disk.RZ56)
	net := socket.NewNet(m.k, socket.Loopback())
	in, err := net.NewSocket(1)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewSocket(2)
	if err != nil {
		t.Fatal(err)
	}
	producer.Connect(1)
	pinger, err := net.NewSocket(3)
	if err != nil {
		t.Fatal(err)
	}
	pinger.Connect(1)

	const blocks = 12
	const total = blocks * bsize
	m.k.Spawn("producer", func(p *kernel.Proc) {
		fd := p.InstallFile(producer, kernel.OWrOnly)
		chunk := make([]byte, 1024)
		for i := range chunk {
			chunk[i] = 0x5A
		}
		for sent := 0; sent < total; sent += len(chunk) {
			if _, err := p.Write(fd, chunk); err != nil {
				t.Errorf("produce: %v", err)
				return
			}
		}
		_ = p.Close(fd) // EOF marker
	})
	m.run(t, func(p *kernel.Proc) {
		dst, _ := p.Open("/d1/landing", kernel.OCreat|kernel.OWrOnly)
		fdD, _ := p.FD(dst)
		dtable, _, err := fdD.Ops().(FileLike).SpliceMapWrite(p.Ctx(), blocks)
		if err != nil {
			t.Fatal(err)
		}
		m.disks[1].InjectFault(int64(dtable[3]), false, true, -1)

		inFD := p.InstallFile(in, kernel.ORdOnly)
		free0 := m.cache.FreeBuffers()
		n, serr := Splice(p, inFD, dst, total)
		if serr != kernel.ErrIO {
			t.Fatalf("splice: n=%d err=%v, want ErrIO", n, serr)
		}
		if n <= 0 || n >= total {
			t.Fatalf("moved %d of %d; want a proper prefix", n, total)
		}
		// Every staging buffer the engine held must be back on the free
		// list once the descriptor drains.
		if got := m.cache.FreeBuffers(); got != free0 {
			t.Fatalf("staging buffer leak after failed splice: free %d -> %d", free0, got)
		}
		// The source survives the sink's failure. Whatever the splice
		// left buffered (the producer raced the 64KB receive bound, so
		// the tail datagrams were dropped UDP-style) drains down to the
		// producer's EOF marker without error...
		tmp := make([]byte, 4096)
		for {
			r, rerr := p.Read(inFD, tmp)
			if rerr != nil {
				t.Fatalf("read source after failed splice: %v", rerr)
			}
			if r == 0 {
				break
			}
		}
		// ...and the descriptor still delivers fresh traffic: no parked
		// splice read is left squatting on the receive queue.
		pingFD := p.InstallFile(pinger, kernel.OWrOnly)
		if _, err := p.Write(pingFD, []byte("post-fault ping")); err != nil {
			t.Fatalf("ping write: %v", err)
		}
		r, rerr := p.Read(inFD, tmp)
		if rerr != nil || string(tmp[:r]) != "post-fault ping" {
			t.Fatalf("source fd unusable after failed splice: n=%d err=%v", r, rerr)
		}
		// The destination volume stays consistent and writable.
		m.disks[1].ClearFaults()
		if err := m.fsys[1].SyncAll(p.Ctx()); err != nil {
			t.Fatalf("sync after failed splice: %v", err)
		}
		if rep, err := fs.Fsck(p.Ctx(), m.cache, m.disks[1]); err != nil {
			t.Fatalf("fsck: %v", err)
		} else if !rep.Clean() {
			t.Fatalf("destination volume inconsistent after failed splice: %v", rep.Problems)
		}
		if _, err := p.Lseek(dst, 0, kernel.SeekSet); err != nil {
			t.Fatalf("lseek dst after failed splice: %v", err)
		}
		if _, err := p.Write(dst, make([]byte, 100)); err != nil {
			t.Fatalf("write dst after failed splice: %v", err)
		}
	})
	if m.disks[1].Errors() == 0 {
		t.Fatal("fault never triggered")
	}
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestSpliceSourceFileSetupENOSPC: the destination mapping is built up
// front (§5.2), so a socket→file splice onto a too-small volume fails
// with ErrNoSpace before a single byte leaves the source — the socket's
// queue is untouched and the partial allocation stays consistently
// attached.
func TestSpliceSourceFileSetupENOSPC(t *testing.T) {
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 3600 * sim.Second
	k := kernel.New(cfg)
	cache := buf.NewCache(k, 400, bsize)
	tiny := disk.New(k, disk.RAMDisk(48, bsize))
	tiny.SetCache(cache)
	if _, err := fs.Mkfs(tiny, 16); err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	net := socket.NewNet(k, socket.Loopback())
	in, _ := net.NewSocket(1)
	producer, _ := net.NewSocket(2)
	producer.Connect(1)

	k.Spawn("test", func(p *kernel.Proc) {
		f, err := fs.Mount(p.Ctx(), cache, tiny)
		if err != nil {
			t.Fatalf("mount: %v", err)
		}
		k.Mount("/d1", f)
		pfd := p.InstallFile(producer, kernel.OWrOnly)
		if _, err := p.Write(pfd, []byte("queued before the splice")); err != nil {
			t.Fatalf("produce: %v", err)
		}

		inFD := p.InstallFile(in, kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		if _, err := Splice(p, inFD, dst, 64*bsize); err != kernel.ErrNoSpace {
			t.Fatalf("splice onto full fs: %v, want ErrNoSpace", err)
		}
		// Nothing was consumed from the source.
		tmp := make([]byte, 64)
		n, err := p.Read(inFD, tmp)
		if err != nil || string(tmp[:n]) != "queued before the splice" {
			t.Fatalf("source disturbed by failed setup: n=%d err=%v", n, err)
		}
		if err := f.SyncAll(p.Ctx()); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if rep, err := fs.Fsck(p.Ctx(), cache, tiny); err != nil {
			t.Fatalf("fsck: %v", err)
		} else if !rep.Clean() {
			t.Fatalf("volume inconsistent after failed setup: %v", rep.Problems)
		}
		// Unlinking the casualty makes the space usable again.
		if err := p.Close(dst); err != nil {
			t.Fatalf("close dst: %v", err)
		}
		if err := p.Unlink("/d1/dst"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceEOFMidTransferQuantum(t *testing.T) {
	// The source ends partway through a transfer quantum (its last block
	// is partial) and the caller asks for far more than the file holds:
	// the splice returns the short count and the partial quantum lands
	// intact.
	m := newMachine(t, disk.RZ58)
	const size = 2*bsize + 1234
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/short", size, 52)
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
		src, _ := p.Open("/d0/short", kernel.ORdOnly)
		dst, _ := p.Open("/d1/out", kernel.OCreat|kernel.OWrOnly)
		n, err := Splice(p, src, dst, 10*bsize)
		if err != nil {
			t.Fatalf("splice: %v", err)
		}
		if n != size {
			t.Fatalf("moved %d, want short count %d", n, size)
		}
		if got := readAll(t, p, "/d1/out"); !bytes.Equal(got, want) {
			t.Fatal("partial final quantum corrupted")
		}
		// The splice left src at the (unaligned) EOF; splicing again from
		// there is rejected, and from an aligned offset past EOF it
		// degenerates to a zero-byte transfer.
		if _, err := Splice(p, src, dst, bsize); err != kernel.ErrInval {
			t.Fatalf("splice at unaligned EOF: %v, want ErrInval", err)
		}
		if _, err := p.Lseek(src, 3*bsize, 0); err != nil {
			t.Fatalf("lseek src: %v", err)
		}
		if _, err := p.Lseek(dst, 3*bsize, 0); err != nil {
			t.Fatalf("lseek dst: %v", err)
		}
		n, err = Splice(p, src, dst, bsize)
		if err != nil || n != 0 {
			t.Fatalf("splice past EOF: n=%d err=%v, want 0, nil", n, err)
		}
	})
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceSocketDroppedPackets(t *testing.T) {
	// A relay splice over a lossy link: every 4th data packet in flight
	// is dropped, UDP-style. The relay must neither wedge nor relay
	// garbage — it moves what arrives and terminates on the EOF marker
	// (which is never dropped).
	m := newMachine(t, disk.RAMDisk)
	params := socket.Loopback()
	params.DropEvery = 4
	net := socket.NewNet(m.k, params)
	in, _ := net.NewSocket(5000)
	out, _ := net.NewSocket(5001)
	sink, _ := net.NewSocket(5002)
	out.Connect(5002)
	producer, _ := net.NewSocket(4000)
	producer.Connect(5000)

	const ndgrams = 20
	const dsize = 1000
	var relayed int64
	var consumed int

	m.k.Spawn("consumer", func(p *kernel.Proc) {
		fd := p.InstallFile(sink, kernel.ORdOnly)
		buf := make([]byte, 4096)
		for {
			n, err := p.Read(fd, buf)
			if err != nil {
				t.Errorf("consume: %v", err)
				return
			}
			if n == 0 {
				return // relay closed its outbound socket
			}
			consumed += n
		}
	})
	m.k.Spawn("relay", func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		outFD := p.InstallFile(out, kernel.OWrOnly)
		n, err := Splice(p, inFD, outFD, ndgrams*dsize)
		if err != nil {
			t.Errorf("relay splice: %v", err)
		}
		relayed = n
		_ = p.Close(outFD)
	})
	m.k.Spawn("producer", func(p *kernel.Proc) {
		fd := p.InstallFile(producer, kernel.OWrOnly)
		for i := 0; i < ndgrams; i++ {
			if _, err := p.Write(fd, make([]byte, dsize)); err != nil {
				t.Errorf("produce: %v", err)
			}
		}
		_ = p.Close(fd) // EOF marker terminates the relay
	})
	if err := m.k.Run(); err != nil {
		t.Fatal(err)
	}

	_, _, dropped := net.Stats()
	if dropped == 0 {
		t.Fatal("lossy link dropped nothing; DropEvery not applied")
	}
	if relayed >= ndgrams*dsize {
		t.Fatalf("relayed %d bytes despite %d drops", relayed, dropped)
	}
	if relayed == 0 {
		t.Fatal("relay moved nothing")
	}
	if int64(consumed) > relayed {
		t.Fatalf("consumer got %d bytes, more than the %d relayed", consumed, relayed)
	}
	if err := CheckDrained(); err != nil {
		t.Fatal(err)
	}
}
