package splice

import (
	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/trace"
)

// Splice implements the system call: move size bytes (or EOF for the
// rest of the source) from the object open on srcFD to the object open
// on dstFD, entirely inside the kernel. If either descriptor has the
// FASYNC status flag set (fcntl F_SETFL), the call returns as soon as
// the transfer is set up and the caller receives SIGIO on completion;
// otherwise it blocks until the data has been moved and returns the
// byte count.
func Splice(p *kernel.Proc, srcFD, dstFD int, size int64) (int64, error) {
	n, _, err := SpliceOpts(p, srcFD, dstFD, size, Options{})
	return n, err
}

// SpliceOpts is Splice with explicit flow-control options, returning a
// Handle for observing an asynchronous transfer.
func SpliceOpts(p *kernel.Proc, srcFD, dstFD int, size int64, opts Options) (int64, *Handle, error) {
	defer p.SyscallExit(p.SyscallEnter("splice"))
	if size < 0 && size != EOF {
		return 0, nil, kernel.ErrInval
	}
	sfd, err := p.FD(srcFD)
	if err != nil {
		return 0, nil, err
	}
	dfd, err := p.FD(dstFD)
	if err != nil {
		return 0, nil, err
	}
	async := (sfd.Flags()|dfd.Flags())&kernel.FAsync != 0

	d := &desc{
		k:      p.Kernel(),
		opts:   opts.withDefaults(),
		async:  async,
		caller: p,
		onDone: opts.OnDone,
	}

	srcFile, srcIsFile := sfd.Ops().(FileLike)
	dstFile, dstIsFile := dfd.Ops().(FileLike)
	source, srcIsSource := sfd.Ops().(Source)
	sink, dstIsSink := dfd.Ops().(Sink)

	switch {
	case srcIsFile && dstIsFile:
		d.mode = modeFileFile
		d.srcFile, d.dstFile = srcFile, dstFile
		if err := d.setupFileFile(p, sfd, dfd, size); err != nil {
			return 0, nil, err
		}
	case srcIsFile && dstIsSink:
		d.mode = modeFileSink
		d.srcFile, d.sink = srcFile, sink
		if err := d.setupFileSink(p, sfd, size); err != nil {
			return 0, nil, err
		}
	case srcIsSource && dstIsSink:
		d.mode = modeSourceSink
		d.source, d.sink = source, sink
		if err := d.setupSourceSink(p, size); err != nil {
			return 0, nil, err
		}
	case srcIsSource && dstIsFile:
		d.mode = modeSourceFile
		d.source, d.dstFile = source, dstFile
		if err := d.setupSourceFile(p, dfd, size); err != nil {
			return 0, nil, err
		}
	default:
		return 0, nil, kernel.ErrOpNotSupp
	}

	registerDesc(d)
	d.k.TraceEmit(trace.KindSpliceStart, p.Pid(), d.total, 0, d.mode.String())
	h := &Handle{d: d}
	if d.done {
		// Degenerate transfer (zero bytes): already complete.
		return d.moved, h, d.err
	}
	if async {
		// The caller continues in user mode; the transfer proceeds on
		// device interrupts and the callout list. The scheduled size is
		// returned when known; an until-EOF transfer from a sizeless
		// source reports zero (poll the Handle or wait for SIGIO).
		if d.total == EOF {
			return 0, h, nil
		}
		return d.total, h, nil
	}
	return d.wait(p, sfd, dfd)
}

// wait blocks a synchronous caller until the splice drains. A signal
// interrupts the splice: new reads stop, in-flight I/O drains, and the
// call returns the partial count with ErrIntr, matching "until ... the
// operation is interrupted by the caller".
func (d *desc) wait(p *kernel.Proc, sfd, dfd *kernel.FDesc) (int64, *Handle, error) {
	h := &Handle{d: d}
	interrupted := false
	for !d.done {
		pri := kernel.PSLEP
		if interrupted {
			// Already interrupted: drain uninterruptibly, otherwise
			// the still-pending signal would spin the sleep forever.
			pri = kernel.PRIBIO
		}
		if err := p.Sleep(d, pri); err == kernel.ErrIntr && !interrupted {
			interrupted = true
			d.stopped = true
			d.abandonIdleWork()
		}
	}
	d.advanceOffsets(sfd, dfd)
	if d.err != nil {
		return d.moved, h, d.err
	}
	if interrupted {
		return d.moved, h, kernel.ErrIntr
	}
	return d.moved, h, nil
}

// abandonIdleWork cancels work that would otherwise never complete
// after the splice has been stopped: a source read parked waiting for
// data that may never come, and source→file staging state. In-flight
// device I/O is left to drain normally.
func (d *desc) abandonIdleWork() {
	if d.readOutstanding {
		if rc, ok := d.source.(readCanceller); ok && rc.CancelSpliceRead() {
			d.readOutstanding = false
			d.pendingReads--
		}
	}
	if d.mode == modeSourceFile {
		if d.sfHdr != nil {
			d.cache.Brelse(d.k.IntrCtx(), d.sfHdr)
			d.sfHdr = nil
		}
		d.sfStash = nil
	}
	if d.pendingReads == 0 && d.pendingWrites == 0 {
		d.complete()
	}
}

func (d *desc) advanceOffsets(sfd, dfd *kernel.FDesc) {
	switch d.mode {
	case modeFileFile:
		sfd.Advance(d.moved)
		dfd.Advance(d.moved)
	case modeFileSink:
		sfd.Advance(d.moved)
	case modeSourceFile:
		dfd.Advance(d.moved)
	}
}

// Handle observes a splice in flight (useful mainly for FASYNC
// transfers and tests; the paper's interface is SIGIO).
type Handle struct{ d *desc }

// Done reports whether the transfer has completed.
func (h *Handle) Done() bool { return h.d.done }

// Err returns the transfer error, if any (valid once Done).
func (h *Handle) Err() error { return h.d.err }

// Moved returns the number of bytes moved so far.
func (h *Handle) Moved() int64 { return h.d.moved }

// Stats returns the transfer's activity counters.
func (h *Handle) Stats() Stats { return h.d.stats }

// Wait blocks p until the transfer completes, delivering any signals
// that arrive in the meantime (including this transfer's own SIGIO).
func (h *Handle) Wait(p *kernel.Proc) error {
	for !h.d.done {
		if err := p.Sleep(h.d, kernel.PSLEP); err == kernel.ErrIntr {
			p.DeliverSignals()
		}
	}
	p.DeliverSignals()
	return h.d.err
}

// ---- file → file block engine ----

// setupFileFile prepares the descriptor per §5.2: determine the size
// from the source gnode, build the physical block tables for source
// (bmap) and destination (special allocating bmap), and prime the read
// pipeline. Both descriptors' offsets must be block aligned.
func (d *desc) setupFileFile(p *kernel.Proc, sfd, dfd *kernel.FDesc, size int64) error {
	ctx := p.Ctx()
	d.cache = d.srcFile.BufCache()
	if d.dstFile.BufCache() != d.cache {
		return kernel.ErrInval // one system buffer cache per machine
	}
	d.bsize = int64(d.cache.BlockSize())
	srcOff, dstOff := sfd.Offset(), dfd.Offset()
	if srcOff%d.bsize != 0 || dstOff%d.bsize != 0 {
		return kernel.ErrInval
	}

	srcSize, err := d.srcFile.Size(ctx)
	if err != nil {
		return err
	}
	avail := srcSize - srcOff
	if avail < 0 {
		avail = 0
	}
	if size == EOF || size > avail {
		size = avail
	}
	d.total = size
	d.startOff = srcOff
	d.dstOff = dstOff
	if size == 0 {
		d.done = true
		return nil
	}
	d.nblocks = (size + d.bsize - 1) / d.bsize
	d.lastBytes = int(size - (d.nblocks-1)*d.bsize)

	srcStart := srcOff / d.bsize
	full, err := d.srcFile.SpliceMapRead(ctx, srcStart+d.nblocks)
	if err != nil {
		return err
	}
	d.srcTable = full[srcStart:]

	dstStart := dstOff / d.bsize
	full, fresh, err := d.dstFile.SpliceMapWrite(ctx, dstStart+d.nblocks)
	if err != nil {
		return err
	}
	d.dstTable = full[dstStart:]
	d.dstFresh = fresh[dstStart:]
	d.dstFile.SpliceSetSize(ctx, dstOff+size)

	// "At this point, all information necessary to proceed with an
	// asynchronous data transfer has been stored in the splice
	// descriptor, and user-mode execution of the calling process may
	// be resumed." (§5.2)
	d.rateStart = d.k.Now()
	d.k.Hold()
	if d.async {
		d.advanceOffsets(sfd, dfd)
	}
	d.startReads(ctx)
	return nil
}

// blockBytes returns the transfer length of logical block lblk.
func (d *desc) blockBytes(lblk int64) int {
	if lblk == d.nblocks-1 {
		return d.lastBytes
	}
	return int(d.bsize)
}

// startReads issues up to RefillBatch asynchronous reads (§5.5). It
// runs from process context during priming and from interrupt context
// afterwards; it never sleeps once priming is done.
func (d *desc) startReads(ctx kernel.Ctx) {
	if d.stopped || d.done {
		return
	}
	for i := 0; i < d.opts.RefillBatch && d.nextRead < d.nblocks; i++ {
		lblk := d.nextRead
		if d.opts.RateBytesPerSec > 0 && !d.rateAdmit(d.blockBytes(lblk)) {
			// Pacing: over budget; the callout list retries next tick.
			d.armRetry()
			return
		}
		pblk := d.srcTable[lblk]
		d.nextRead++
		d.pendingReads++
		d.stats.ReadsIssued++
		if d.pendingReads > d.stats.PeakReads {
			d.stats.PeakReads = d.pendingReads
		}
		if pblk == 0 {
			// Hole in the source: synthesize a zero-filled block. The
			// header is not part of the cache pool, so releasing goes
			// through the header path in the write side. The data area is
			// a full block: the write side transfers whole blocks.
			hdr := d.cache.AllocHeader(d.srcFile.Dev(), 0)
			hdr.Data = make([]byte, d.bsize)
			hdr.Flags |= buf.BDone
			hdr.SpliceDesc = d
			hdr.SpliceLblk = lblk
			d.k.TraceEmit(trace.KindSpliceRead, 0, lblk, int64(d.pendingReads), "")
			d.readDone(d.k, hdr)
			continue
		}
		d.k.TraceEmit(trace.KindSpliceRead, 0, lblk, int64(d.pendingReads), "")
		hit, err := d.cache.StartRead(ctx, d.srcFile.Dev(), int64(pblk), d, lblk, d.readDone)
		if err != nil {
			// No buffer available without sleeping: back off and retry
			// from the callout list next tick.
			d.nextRead--
			d.pendingReads--
			d.stats.ReadsIssued--
			d.armRetry()
			return
		}
		if hit {
			d.stats.CacheHits++
		}
	}
}

// rateAdmit checks the pacing budget and charges n bytes against it.
// One refill batch of slack lets the pipeline pre-buffer at start-up.
func (d *desc) rateAdmit(n int) bool {
	elapsed := d.k.Now().Sub(d.rateStart)
	budget := elapsed.Seconds()*d.opts.RateBytesPerSec +
		float64(d.opts.RefillBatch)*float64(d.bsize)
	if float64(d.rateScheduled)+float64(n) > budget {
		return false
	}
	d.rateScheduled += int64(n)
	return true
}

// armRetry schedules a flow-control retry on the next clock tick.
func (d *desc) armRetry() {
	if d.retryArmed || d.stopped {
		return
	}
	d.retryArmed = true
	d.k.TraceEmit(trace.KindSpliceStall, 0, int64(d.pendingReads), int64(d.pendingWrites), "")
	d.k.Timeout(func() {
		d.retryArmed = false
		d.startReads(d.k.IntrCtx())
	}, 1)
}

// readDone is the read-side B_CALL handler (§5.3): invoked at interrupt
// level when a source block arrives, it schedules the write side by
// placing it at the head of the system callout list.
func (d *desc) readDone(k *kernel.Kernel, b *buf.Buf) {
	d.handlerCharge()
	d.pendingReads--
	k.TraceEmit(trace.KindSpliceReadDone, 0, b.SpliceLblk, int64(d.pendingReads), "")
	if d.err != nil {
		d.dropReadBuf(b)
		d.fail(d.err)
		return
	}
	if b.Flags&buf.BError != 0 {
		err := b.Err
		if err == nil {
			err = kernel.ErrNxIO
		}
		d.dropReadBuf(b)
		d.fail(err)
		return
	}
	// From here the block counts as a pending write: it is queued for
	// the write side (via the callout list) until its device write
	// completes. Counting it here keeps the flow-control watermarks
	// honest about blocks parked in the callout queue.
	d.pendingWrites++
	if d.pendingWrites > d.stats.PeakWrites {
		d.stats.PeakWrites = d.pendingWrites
	}
	d.stats.Callouts++
	k.Timeout(func() { d.writeSide(b) }, 0)
}

// dropReadBuf releases a read-side buffer outside the normal path.
func (d *desc) dropReadBuf(b *buf.Buf) {
	if b.Flags&buf.BNoMem != 0 {
		d.cache.ReleaseHeader(b)
		return
	}
	d.cache.Brelse(d.k.IntrCtx(), b)
}

// writeSide runs from the callout list with a locked buffer containing
// valid source data (§5.4). It obtains a memory-less buffer header for
// the destination block, aliases the data pointer so both buffers share
// one data area, installs the write-completion handler, and starts an
// asynchronous write.
func (d *desc) writeSide(b *buf.Buf) {
	d.handlerCharge()
	if d.err != nil {
		d.dropReadBuf(b)
		d.pendingWrites--
		d.fail(d.err)
		return
	}
	switch d.mode {
	case modeFileFile:
		d.writeSideFile(b)
	case modeFileSink:
		d.writeSideSink(b)
	default:
		panic("splice: writeSide in stream mode")
	}
}

func (d *desc) writeSideFile(b *buf.Buf) {
	lblk := b.SpliceLblk
	n := d.blockBytes(lblk)
	hdr := d.cache.AllocHeader(d.dstFile.Dev(), int64(d.dstTable[lblk]))
	// Only n bytes are payload; the device transfer length depends on
	// the destination block's history. A freshly allocated final block
	// is written whole — the source's read buffer carries zeros past
	// EOF, and writing them out keeps the destination's on-disk tail
	// zeroed (otherwise whatever the freed block previously held would
	// surface when a later write extends the file across old EOF). A
	// pre-existing block gets a partial write, preserving its tail.
	hdr.SpliceN = n
	if n < int(d.bsize) && !d.dstFresh[lblk] {
		hdr.Bcount = n
	}
	if d.opts.NoShare {
		// Ablation: allocate real memory and copy between cache
		// buffers, charging the kernel bcopy.
		hdr.Data = make([]byte, d.bsize)
		copy(hdr.Data, b.Data[:n])
		d.k.StealCPU(d.k.Config().BcopyCost(n))
		d.stats.Copied++
	} else {
		// The paper's path: "the data pointer in the new buffer header
		// is ... altered to point to the same address the data pointer
		// in the read-side buffer does, so both buffers share a common
		// data area. We thus avoid copying between cache buffers."
		hdr.Data = b.Data
		d.stats.Shared++
	}
	hdr.SplicePeer = b
	hdr.SpliceDesc = d
	hdr.SpliceLblk = lblk
	hdr.Flags &^= buf.BRead | buf.BDone
	hdr.Flags |= buf.BCall
	hdr.Iodone = d.writeDone
	d.stats.WritesIssued++
	d.k.TraceEmit(trace.KindSpliceWrite, 0, lblk, int64(d.pendingWrites), "")
	trackHdr(d, hdr)
	d.dstFile.Dev().Strategy(hdr)
}

// writeDone is the write-completion handler (§5.4): it releases the
// source buffer and the write header, then applies flow control (§5.5).
func (d *desc) writeDone(k *kernel.Kernel, hdr *buf.Buf) {
	d.handlerCharge()
	n := hdr.SpliceN
	failed := hdr.Flags&buf.BError != 0
	werr := hdr.Err

	untrackHdr(d, hdr)
	peer := hdr.SplicePeer
	if peer != nil {
		d.dropReadBuf(peer)
	}
	d.cache.ReleaseHeader(hdr)
	d.pendingWrites--
	k.TraceEmit(trace.KindSpliceWriteDone, 0, int64(n), int64(d.pendingWrites), "")

	if failed {
		if werr == nil {
			werr = kernel.ErrNxIO
		}
		d.fail(werr)
		return
	}
	d.moved += int64(n)
	d.stats.BytesMoved += int64(n)
	d.afterWrite()
}

// afterWrite finishes the transfer or refills the read pipeline.
func (d *desc) afterWrite() {
	if d.err != nil || d.stopped {
		if d.pendingReads == 0 && d.pendingWrites == 0 {
			d.complete()
		}
		return
	}
	if d.sourceExhausted() && d.pendingReads == 0 && d.pendingWrites == 0 {
		d.complete()
		return
	}
	// Rate-based flow control: "If the number of pending reads and the
	// number of pending writes drop below pre-specified watermarks
	// (currently 3 and 5, respectively), the write handler will issue
	// up to five additional reads."
	if d.pendingReads < d.opts.ReadWatermark && d.pendingWrites < d.opts.WriteWatermark {
		d.startReads(d.k.IntrCtx())
	}
	if d.sourceExhausted() && d.pendingReads == 0 && d.pendingWrites == 0 {
		d.complete()
	}
}

// sourceExhausted reports that no further reads will be issued.
func (d *desc) sourceExhausted() bool {
	switch d.mode {
	case modeSourceSink:
		return d.streamEOF
	default:
		return d.nextRead >= d.nblocks
	}
}
