package splice

import (
	"bytes"
	"testing"

	"kdp/internal/dev"
	"kdp/internal/disk"
	"kdp/internal/kernel"
)

// Chained splices through an in-kernel pipe: two concurrent splice
// descriptors, one feeding the pipe from a file, one draining it into
// another endpoint — a fully in-kernel pipeline with backpressure at
// both stages.

func TestSpliceChainFilePipeNull(t *testing.T) {
	m := newMachine(t, disk.RZ58)
	pipe := dev.NewPipe(m.k, "/dev/pipe", 32<<10)
	null := dev.NewNull(m.k)
	const size = 20 * bsize
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", size, 60)
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])

		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		pin, _ := p.Open("/dev/pipe", kernel.OWrOnly)
		pout, _ := p.Open("/dev/pipe", kernel.ORdOnly)
		sink, _ := p.Open("/dev/null", kernel.OWrOnly)

		// Both stages async: the caller starts them and waits.
		_, _ = p.Fcntl(src, kernel.FSetFL, kernel.FAsync)
		_, _ = p.Fcntl(pout, kernel.FSetFL, kernel.FAsync)

		_, h1, err := SpliceOpts(p, src, pin, EOF, Options{})
		if err != nil {
			t.Fatalf("stage 1: %v", err)
		}
		_, h2, err := SpliceOpts(p, pout, sink, size, Options{})
		if err != nil {
			t.Fatalf("stage 2: %v", err)
		}
		if err := h1.Wait(p); err != nil {
			t.Fatalf("stage 1 wait: %v", err)
		}
		pipe.CloseWrite()
		if err := h2.Wait(p); err != nil {
			t.Fatalf("stage 2 wait: %v", err)
		}
		if h1.Moved() != size || h2.Moved() != size {
			t.Fatalf("stage counts %d / %d, want %d", h1.Moved(), h2.Moved(), size)
		}
	})
	if null.BytesWritten() != size {
		t.Fatalf("null received %d, want %d", null.BytesWritten(), size)
	}
	if buffered := pipe.Buffered(); buffered != 0 {
		t.Fatalf("%d bytes stranded in the pipe", buffered)
	}
}

func TestSpliceChainPreservesData(t *testing.T) {
	// file → pipe → DAC with capture: the played bytes must equal the
	// file, in order, across the two-stage in-kernel pipeline.
	m := newMachine(t, disk.RAMDisk)
	dev.NewPipe(m.k, "/dev/pipe", 16<<10)
	dac := dev.NewDAC(m.k, dev.DACParams{Path: "/dev/out", Rate: 8e6, Capture: true})
	const size = 6*bsize + 777
	var want []byte
	m.run(t, func(p *kernel.Proc) {
		want = makeFile(t, p, "/d0/src", size, 61)

		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		pin, _ := p.Open("/dev/pipe", kernel.OWrOnly)
		pout, _ := p.Open("/dev/pipe", kernel.ORdOnly)
		out, _ := p.Open("/dev/out", kernel.OWrOnly)

		_, _ = p.Fcntl(pout, kernel.FSetFL, kernel.FAsync)
		_, h2, err := SpliceOpts(p, pout, out, size, Options{})
		if err != nil {
			t.Fatalf("drain stage: %v", err)
		}
		n, err := Splice(p, src, pin, EOF) // synchronous feed
		if err != nil || n != size {
			t.Fatalf("feed stage: n=%d err=%v", n, err)
		}
		if err := h2.Wait(p); err != nil {
			t.Fatalf("drain wait: %v", err)
		}
	})
	if !bytes.Equal(dac.Captured(), want) {
		t.Fatal("chained splice corrupted or reordered data")
	}
}

func TestPipeBackpressureThrottlesFeedStage(t *testing.T) {
	// With a slow drain (paced DAC) and a tiny pipe, the feed splice
	// must be throttled by pipe backpressure: its pending writes stall
	// rather than flooding memory.
	m := newMachine(t, disk.RAMDisk)
	pipe := dev.NewPipe(m.k, "/dev/pipe", 2*bsize)
	dev.NewDAC(m.k, dev.DACParams{Path: "/dev/slow", Rate: 256 << 10})
	const size = 16 * bsize
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", size, 62)
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		pin, _ := p.Open("/dev/pipe", kernel.OWrOnly)
		pout, _ := p.Open("/dev/pipe", kernel.ORdOnly)
		out, _ := p.Open("/dev/slow", kernel.OWrOnly)

		_, _ = p.Fcntl(src, kernel.FSetFL, kernel.FAsync)
		_, _ = p.Fcntl(pout, kernel.FSetFL, kernel.FAsync)
		_, h1, err := SpliceOpts(p, src, pin, EOF, Options{})
		if err != nil {
			t.Fatalf("feed: %v", err)
		}
		peak := 0
		_, h2, err := SpliceOpts(p, pout, out, size, Options{})
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		for !h2.Done() {
			if b := pipe.Buffered(); b > peak {
				peak = b
			}
			p.SleepFor(30 * 1e6)
		}
		_ = h1.Wait(p)
		if peak > 3*bsize {
			t.Fatalf("pipe ballooned to %d bytes despite capacity %d", peak, 2*bsize)
		}
		if h2.Moved() != size {
			t.Fatalf("drained %d", h2.Moved())
		}
	})
}
