package splice

import (
	"bytes"
	"testing"
	"testing/quick"

	"kdp/internal/dev"
	"kdp/internal/disk"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
)

// ---- fault injection: the error paths the paper's prototype had to
// get right to avoid leaking buffers at interrupt level ----

func TestSpliceReadFaultAbortsCleanly(t *testing.T) {
	m := newMachine(t, disk.RZ58)
	const blocks = 24
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", blocks*bsize, 50)
		if err := m.cache.InvalidateDev(p.Ctx(), m.disks[0]); err != nil {
			t.Fatal(err)
		}
		// Fail the physical block backing logical block 10.
		fl, _ := p.Open("/d0/src", kernel.ORdOnly)
		fd, _ := p.FD(fl)
		table, err := fd.Ops().(FileLike).SpliceMapRead(p.Ctx(), blocks)
		if err != nil {
			t.Fatal(err)
		}
		m.disks[0].InjectFault(int64(table[10]), true, false, -1)

		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		free0 := m.cache.FreeBuffers()
		n, _, serr := SpliceOpts(p, fl, dst, EOF, Options{})
		if serr != kernel.ErrIO {
			t.Fatalf("splice err = %v, want ErrIO", serr)
		}
		if n >= blocks*bsize {
			t.Fatalf("moved %d despite fault", n)
		}
		// Every cache buffer the splice held must be back on the free
		// list once the descriptor drains.
		if got := m.cache.FreeBuffers(); got != free0 {
			t.Fatalf("buffer leak after failed splice: free %d -> %d", free0, got)
		}
	})
}

func TestSpliceWriteFaultAbortsCleanly(t *testing.T) {
	m := newMachine(t, disk.RZ58)
	const blocks = 16
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", blocks*bsize, 51)
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])

		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		fdD, _ := p.FD(dst)
		dtable, _, err := fdD.Ops().(FileLike).SpliceMapWrite(p.Ctx(), blocks)
		if err != nil {
			t.Fatal(err)
		}
		m.disks[1].InjectFault(int64(dtable[5]), false, true, -1)

		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		free0 := m.cache.FreeBuffers()
		_, _, serr := SpliceOpts(p, src, dst, EOF, Options{})
		if serr != kernel.ErrIO {
			t.Fatalf("splice err = %v, want ErrIO", serr)
		}
		if got := m.cache.FreeBuffers(); got != free0 {
			t.Fatalf("buffer leak after failed write: free %d -> %d", free0, got)
		}
	})
	if m.disks[1].Errors() == 0 {
		t.Fatal("fault never triggered")
	}
}

func TestSpliceTransientFaultPartialData(t *testing.T) {
	// A counted fault fails once; the splice aborts with a partial
	// prefix moved, and a retry over the now-clean media succeeds.
	m := newMachine(t, disk.RAMDisk)
	const blocks = 12
	m.run(t, func(p *kernel.Proc) {
		want := makeFile(t, p, "/d0/src", blocks*bsize, 52)
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		fd, _ := p.FD(src)
		table, _ := fd.Ops().(FileLike).SpliceMapRead(p.Ctx(), blocks)
		m.disks[0].InjectFault(int64(table[6]), true, false, 1)

		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		if _, _, serr := SpliceOpts(p, src, dst, EOF, Options{}); serr != kernel.ErrIO {
			t.Fatalf("first splice: %v, want ErrIO", serr)
		}
		// Retry from scratch.
		_, _ = p.Lseek(src, 0, kernel.SeekSet)
		_, _ = p.Lseek(dst, 0, kernel.SeekSet)
		n, err := Splice(p, src, dst, EOF)
		if err != nil || n != blocks*bsize {
			t.Fatalf("retry: n=%d err=%v", n, err)
		}
		if !bytes.Equal(readAll(t, p, "/d1/dst"), want) {
			t.Fatal("retry produced wrong data")
		}
	})
}

func TestReadWritePathReportsFault(t *testing.T) {
	// The ordinary read() path must surface injected errors too.
	m := newMachine(t, disk.RZ56)
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/f", 4*bsize, 53)
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
		src, _ := p.Open("/d0/f", kernel.ORdOnly)
		fd, _ := p.FD(src)
		table, _ := fd.Ops().(FileLike).SpliceMapRead(p.Ctx(), 4)
		m.disks[0].InjectFault(int64(table[2]), true, false, -1)
		buf := make([]byte, bsize)
		var rerr error
		for i := 0; i < 4 && rerr == nil; i++ {
			_, rerr = p.Read(src, buf)
		}
		if rerr != kernel.ErrIO {
			t.Fatalf("read err = %v, want ErrIO", rerr)
		}
	})
}

// ---- rate-controlled splice (continuous-media extension) ----

func TestSpliceRatePacing(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	const size = 64 * bsize // 512KB
	const rate = 256 << 10  // 256KB/s → ~2s
	m.run(t, func(p *kernel.Proc) {
		makeFile(t, p, "/d0/src", size, 54)
		_ = m.cache.InvalidateDev(p.Ctx(), m.disks[0])
		src, _ := p.Open("/d0/src", kernel.ORdOnly)
		dst, _ := p.Open("/d1/dst", kernel.OCreat|kernel.OWrOnly)
		t0 := p.Now()
		n, _, err := SpliceOpts(p, src, dst, EOF, Options{RateBytesPerSec: rate})
		if err != nil || n != size {
			t.Fatalf("paced splice: n=%d err=%v", n, err)
		}
		elapsed := p.Now().Sub(t0)
		ideal := sim.Duration(float64(size) / rate * float64(sim.Second))
		if elapsed < ideal*8/10 || elapsed > ideal*12/10 {
			t.Fatalf("paced splice took %v, want ~%v", elapsed, ideal)
		}
	})
}

func TestSpliceRateBoundsDeviceQueue(t *testing.T) {
	// The sink's completion callback already gives the descriptor
	// watermark-level backpressure (pending writes < 5 + refill batch),
	// so even an unpaced splice holds only ~9 blocks in the device
	// queue; kernel pacing at the playback rate tightens that further.
	peakQueued := func(rate float64) int {
		m := newMachine(t, disk.RAMDisk)
		dac := dev.NewDAC(m.k, dev.DACParams{Path: "/dev/out", Rate: 512 << 10, BufBytes: 8 << 20})
		const size = 64 * bsize
		peak := 0
		m.k.Engine().Schedule(sim.Millisecond, "mon", func() {})
		m.run(t, func(p *kernel.Proc) {
			makeFile(t, p, "/d0/src", size, 55)
			src, _ := p.Open("/d0/src", kernel.ORdOnly)
			snd, _ := p.Open("/dev/out", kernel.OWrOnly)
			_, _ = p.Fcntl(src, kernel.FSetFL, kernel.FAsync)
			_, h, err := SpliceOpts(p, src, snd, EOF, Options{RateBytesPerSec: rate})
			if err != nil {
				t.Fatalf("splice: %v", err)
			}
			for !h.Done() {
				if q := dac.QueuedBytes(); q > peak {
					peak = q
				}
				p.SleepFor(20 * sim.Millisecond)
			}
		})
		return peak
	}
	unpaced := peakQueued(0)
	paced := peakQueued(512 << 10) // pace at the playback rate
	if paced >= unpaced {
		t.Fatalf("pacing did not reduce the device queue: paced peak %d vs unpaced %d", paced, unpaced)
	}
	if paced > 6*bsize {
		t.Fatalf("paced queue peak %d bytes; want bounded to a few blocks", paced)
	}
	if unpaced > (DefaultWriteWatermark+DefaultRefillBatch)*bsize {
		t.Fatalf("unpaced queue peak %d exceeds the watermark bound", unpaced)
	}
}

// TestInterruptedIdleSocketSpliceDoesNotHang: a synchronous relay
// splice on a socket with no traffic must be interruptible — the parked
// source read is withdrawn and the call returns ErrIntr. (Regression
// test: this used to wedge the drain wait forever.)
func TestInterruptedIdleSocketSpliceDoesNotHang(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	net := socket.NewNet(m.k, socket.Loopback())
	in, _ := net.NewSocket(1)
	out, _ := net.NewSocket(2)
	out.Connect(3)
	if _, err := net.NewSocket(3); err != nil {
		t.Fatal(err)
	}
	m.run(t, func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		outFD := p.InstallFile(out, kernel.OWrOnly)
		p.SetSignalHandler(kernel.SIGALRM, func(*kernel.Proc, kernel.Signal) {})
		p.SetITimer(100*sim.Millisecond, 0)
		t0 := p.Now()
		n, err := Splice(p, inFD, outFD, 1<<20)
		if err != kernel.ErrIntr {
			t.Fatalf("idle relay splice: n=%d err=%v, want ErrIntr", n, err)
		}
		if waited := p.Now().Sub(t0); waited > 300*sim.Millisecond {
			t.Fatalf("interrupt took %v to take effect", waited)
		}
	})
}

// TestInterruptedIdleSocketToFileSplice: same regression for the
// source→file engine, which additionally must not strand a staging
// buffer.
func TestInterruptedIdleSocketToFileSplice(t *testing.T) {
	m := newMachine(t, disk.RAMDisk)
	net := socket.NewNet(m.k, socket.Loopback())
	in, _ := net.NewSocket(1)
	free0 := m.cache.NumBuffers()
	m.run(t, func(p *kernel.Proc) {
		inFD := p.InstallFile(in, kernel.ORdOnly)
		dst, _ := p.Open("/d1/landing", kernel.OCreat|kernel.OWrOnly)
		p.SetSignalHandler(kernel.SIGALRM, func(*kernel.Proc, kernel.Signal) {})
		p.SetITimer(100*sim.Millisecond, 0)
		if _, err := Splice(p, inFD, dst, 64*bsize); err != kernel.ErrIntr {
			t.Fatalf("idle socket→file splice: %v, want ErrIntr", err)
		}
	})
	if free := m.cache.FreeBuffers(); free != free0 {
		t.Fatalf("buffers leaked: %d of %d free", free, free0)
	}
}

// ---- property: splice is equivalent to a read/write copy ----

func TestSpliceEquivalentToReadWriteProperty(t *testing.T) {
	prop := func(sizeSeed uint32, seed byte, offBlocks uint8) bool {
		size := int(sizeSeed%(20*bsize)) + 1 // 1 byte .. 20 blocks
		start := int64(offBlocks%4) * bsize  // block-aligned source offset
		m := newMachine(t, disk.RAMDisk)
		ok := true
		m.run(t, func(p *kernel.Proc) {
			total := start + int64(size)
			want := makeFile(t, p, "/d0/src", int(total), seed)

			// Splice copy from the offset.
			src, _ := p.Open("/d0/src", kernel.ORdOnly)
			_, _ = p.Lseek(src, start, kernel.SeekSet)
			dst, _ := p.Open("/d1/a", kernel.OCreat|kernel.OWrOnly)
			n, err := Splice(p, src, dst, int64(size))
			if err != nil || n != int64(size) {
				ok = false
				return
			}
			_ = p.Close(src)
			_ = p.Close(dst)

			// Reference read/write copy of the same range.
			ref, _ := p.Open("/d0/src", kernel.ORdOnly)
			_, _ = p.Lseek(ref, start, kernel.SeekSet)
			out, _ := p.Open("/d1/b", kernel.OCreat|kernel.OWrOnly)
			tmp := make([]byte, bsize)
			remaining := size
			for remaining > 0 {
				want := len(tmp)
				if remaining < want {
					want = remaining
				}
				r, err := p.Read(ref, tmp[:want])
				if err != nil || r == 0 {
					break
				}
				if _, err := p.Write(out, tmp[:r]); err != nil {
					ok = false
					return
				}
				remaining -= r
			}
			_ = p.Close(ref)
			_ = p.Close(out)

			a := readAll(t, p, "/d1/a")
			b := readAll(t, p, "/d1/b")
			if !bytes.Equal(a, b) || !bytes.Equal(a, want[start:start+int64(size)]) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
