// Package splice implements the paper's contribution: a system call
// that establishes a fast in-kernel data pathway between two I/O
// objects named by file descriptors, moving data asynchronously and
// without user-process intervention.
//
// The implementation mirrors the paper's §5 exactly:
//
//   - A dynamically allocated splice descriptor holds all transfer
//     state, so I/O proceeds without the calling process's context.
//   - For file endpoints, the complete table of physical block numbers
//     is built up front by successive bmap() calls; the destination is
//     mapped with a special bmap that skips zero-fill delayed writes.
//   - The read side uses a modified bread with the biowait removed: an
//     async read with a B_CALL completion handler.
//   - The read handler schedules the write side by placing it at the
//     head of the system callout list, decoupling the I/O access
//     periods of the source and sink devices.
//   - The write side obtains a buffer header with no data memory (the
//     modified getblk) and aliases its data pointer to the read-side
//     buffer, so no copy occurs between cache buffers.
//   - The write-completion handler releases both buffers and restarts
//     reads under rate-based flow control: when pending reads and
//     pending writes drop below the watermarks (3 and 5), up to five
//     additional reads are issued.
//
// Sources and sinks beyond regular files (character devices, sockets,
// the framebuffer) participate through the small Source and Sink
// interfaces, which are satisfied structurally by internal/dev and
// internal/socket.
//
// Every engine emits structured trace events (splice.start, the
// read/write pipeline with its pending-I/O gauges, stalls, and
// completion) through the kernel's tracer; the taxonomy is documented
// in docs/TRACING.md.
package splice

import (
	"sort"

	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/trace"
)

// EOF is the special size value requesting that the splice run until
// the source reaches end of file (SPLICE_EOF in the paper).
const EOF int64 = -1

// Default flow-control parameters from the paper (§5.5): "If the number
// of pending reads and the number of pending writes drop below
// pre-specified watermarks (currently 3 and 5, respectively), the write
// handler will issue up to five additional reads."
const (
	DefaultReadWatermark  = 3
	DefaultWriteWatermark = 5
	DefaultRefillBatch    = 5
)

// Options tunes a splice. The zero value selects the paper's defaults.
type Options struct {
	// ReadWatermark, WriteWatermark and RefillBatch control the
	// rate-based flow control; zero selects the defaults (3, 5, 5).
	ReadWatermark  int
	WriteWatermark int
	RefillBatch    int

	// NoShare disables write-side buffer-header data aliasing: the
	// write side allocates real memory and copies between cache
	// buffers. Exists to measure what sharing buys (ablation C).
	NoShare bool

	// RateBytesPerSec, when positive, paces the transfer inside the
	// kernel: reads are issued so the average transfer rate tracks the
	// target (with one refill batch of start-up slack), using the
	// callout list as the pacing clock. This implements the paper's
	// continuous-media follow-up direction — steady kernel-paced
	// delivery without per-block process wakeups — as an alternative
	// to the §4 technique of small synchronous quanta timed by the
	// application.
	RateBytesPerSec float64

	// OnDone, when non-nil, runs when the transfer completes and
	// replaces the SIGIO completion signal for async transfers — a
	// caller collecting completions through a pollable queue has no
	// use for the signal, and suppressing it spares the poller a
	// broken sleep per transfer. OnDone executes at interrupt level
	// and must not sleep.
	OnDone func()
}

func (o Options) withDefaults() Options {
	if o.ReadWatermark <= 0 {
		o.ReadWatermark = DefaultReadWatermark
	}
	if o.WriteWatermark <= 0 {
		o.WriteWatermark = DefaultWriteWatermark
	}
	if o.RefillBatch <= 0 {
		o.RefillBatch = DefaultRefillBatch
	}
	return o
}

// FileLike is the view of a regular file the splice engine needs; it is
// satisfied by *fs.File.
type FileLike interface {
	Dev() buf.Device
	BufCache() *buf.Cache
	Size(ctx kernel.Ctx) (int64, error)
	SpliceMapRead(ctx kernel.Ctx, nblocks int64) ([]uint32, error)
	// SpliceMapWrite maps (allocating as needed) the first nblocks
	// logical blocks for writing. The second slice flags blocks that
	// were freshly allocated by this call: their on-disk content is
	// undefined, so a partial write into one must zero the remainder.
	SpliceMapWrite(ctx kernel.Ctx, nblocks int64) ([]uint32, []bool, error)
	SpliceSetSize(ctx kernel.Ctx, n int64)
}

// Sink consumes spliced data at interrupt level: character devices,
// sockets and the framebuffer implement it. done must be invoked
// exactly once when the sink has consumed the bytes and the underlying
// buffer may be reused; it may be called synchronously or later from an
// interrupt or callout.
type Sink interface {
	SpliceWrite(data []byte, done func(err error))
}

// Source produces spliced data at interrupt level (sockets, the
// framebuffer). deliver must be invoked exactly once per SpliceRead —
// synchronously if data is waiting, or later when it arrives; eof
// reports that no further data will ever arrive.
type Source interface {
	SpliceRead(max int, deliver func(data []byte, eof bool, err error))
}

// readCanceller is optionally implemented by Sources that can withdraw
// a parked SpliceRead; an interrupted splice uses it so a source that
// never delivers (an idle socket) cannot wedge the drain.
type readCanceller interface {
	// CancelSpliceRead withdraws the pending read, if any; the deliver
	// callback will then never be invoked. Reports whether a read was
	// cancelled.
	CancelSpliceRead() bool
}

// Stats describes the activity of one splice.
type Stats struct {
	BytesMoved   int64
	ReadsIssued  int64
	WritesIssued int64
	CacheHits    int64 // source blocks found valid in the buffer cache
	Shared       int64 // write buffers that aliased read-side data
	Copied       int64 // write buffers that required a kernel copy
	Callouts     int64 // write-side dispatches through the callout list
	PeakReads    int   // maximum reads in flight at once
	PeakWrites   int   // maximum writes in flight at once
}

// desc is the splice descriptor (§5.2): all state needed to run the
// transfer without the calling process.
type desc struct {
	k     *kernel.Kernel
	cache *buf.Cache
	opts  Options

	mode spliceMode

	// File endpoints (block engine and file→sink).
	srcFile  FileLike
	dstFile  FileLike
	srcTable []uint32
	dstTable []uint32
	bsize    int64

	// Endpoint interfaces (stream engine).
	source Source
	sink   Sink

	total       int64 // bytes to move (after EOF resolution); -1 if EOF on a Source
	startOff    int64 // source byte offset of the transfer
	dstOff      int64 // destination byte offset (block engine: block aligned)
	srcStartBlk int64 // first source logical block covered by srcTable
	nblocks     int64 // logical blocks to transfer (file source)
	nextRead    int64 // next table index to issue
	lastBytes   int   // bytes in the final block

	// Stream-engine state (source → sink).
	streamEOF       bool
	readOutstanding bool
	streamScheduled int64

	// Rate-pacing state (Options.RateBytesPerSec).
	rateStart     sim.Time
	rateScheduled int64 // bytes admitted to the pipeline so far

	// File→sink ordering state. Source reads complete in I/O order —
	// a cache hit or a hole returns instantly while an earlier block
	// is still on the disk queue — but a pipe or socket is a byte
	// stream, so completed blocks park here until every earlier block
	// has been handed to the sink.
	sinkParked map[int64]*buf.Buf
	sinkNext   int64 // next logical block (table index) to deliver

	// dstFresh flags destination blocks freshly allocated by this
	// splice's SpliceMapWrite: a partial write into a fresh block must
	// put zeros in the unwritten remainder (nothing else ever will),
	// while a partial write into a pre-existing block must preserve it.
	dstFresh []bool

	// Source→file staging state.
	sfHdr      *buf.Buf // destination block buffer being filled
	sfFill     int      // bytes staged into sfHdr
	sfReceived int64    // bytes taken from the source
	sfStash    []byte   // bytes awaiting a staging buffer

	pendingReads  int
	pendingWrites int
	moved         int64
	err           error
	stopped       bool // no further reads (interrupt/abort)
	done          bool
	retryArmed    bool

	async  bool
	caller *kernel.Proc

	onDone func() // optional completion hook (facade/examples)

	// liveHdrs tracks in-flight write headers for the invariant checker;
	// nil (and untouched) unless EnableInvariants is in effect.
	liveHdrs map[*buf.Buf]struct{}

	stats Stats
}

type spliceMode int

const (
	modeFileFile spliceMode = iota
	modeFileSink
	modeSourceSink
	modeSourceFile
)

func (m spliceMode) String() string {
	switch m {
	case modeFileFile:
		return "file-file"
	case modeFileSink:
		return "file-sink"
	case modeSourceSink:
		return "source-sink"
	case modeSourceFile:
		return "source-file"
	default:
		return "mode?"
	}
}

// handlerCharge charges one handler execution at interrupt level.
func (d *desc) handlerCharge() {
	d.k.StealCPU(d.k.Config().SpliceHandlerCost)
}

// complete finishes the splice: releases the kernel hold, posts SIGIO
// to an async caller, and wakes a synchronous waiter.
func (d *desc) complete() {
	if d.done {
		return
	}
	d.done = true
	errFlag := int64(0)
	if d.err != nil {
		errFlag = 1
	}
	d.k.TraceEmit(trace.KindSpliceDone, 0, d.moved, errFlag, d.mode.String())
	unregisterDesc(d)
	d.k.Release()
	if d.async && d.caller != nil && d.onDone == nil {
		d.k.Post(d.caller, kernel.SIGIO)
	}
	d.k.Wakeup(d)
	if d.onDone != nil {
		d.onDone()
	}
}

// fail records the first error and stops issuing new work.
func (d *desc) fail(err error) {
	if d.err == nil {
		d.err = err
	}
	d.stopped = true
	d.flushParked()
	if d.pendingReads == 0 && d.pendingWrites == 0 {
		d.complete()
	}
}

// flushParked discards blocks parked for in-order sink delivery. Once
// the transfer has failed nothing will deliver them, and each one still
// holds a cache buffer and a pending-write count.
func (d *desc) flushParked() {
	if len(d.sinkParked) == 0 {
		return
	}
	lblks := make([]int64, 0, len(d.sinkParked))
	for lblk := range d.sinkParked {
		lblks = append(lblks, lblk)
	}
	sort.Slice(lblks, func(i, j int) bool { return lblks[i] < lblks[j] })
	for _, lblk := range lblks {
		b := d.sinkParked[lblk]
		delete(d.sinkParked, lblk)
		d.dropReadBuf(b)
		d.pendingWrites--
	}
}
