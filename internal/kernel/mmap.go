package kernel

// Memory-mapped file I/O: the system-call surface. The kernel itself
// holds no VM state; an AddressSpaceProvider (internal/vm) registered
// with SetVM implements the address-space model, demand paging and
// pageout. This mirrors how the syscall layer fronts the fd layer: the
// kernel prices the trap, the provider does the work.

// ErrNoMem is returned when the page pool cannot supply a frame (every
// resident page is wired), in the spirit of ENOMEM.
var ErrNoMem = errorString("out of memory")

// Protection and mapping-type flags for Mmap, following mmap(2).
const (
	ProtRead  = 0x1
	ProtWrite = 0x2

	// MapShared stores go to the backing file (visible to read() and
	// other mappings; written back by msync/fsync/pageout).
	MapShared = 0x1
	// MapPrivate stores are copy-on-write into anonymous pages private
	// to the mapping; the backing file is never modified.
	MapPrivate = 0x2
)

// AddressSpaceProvider is the VM backend behind the Mmap/Munmap/Msync
// system calls and the MemRead/MemWrite user-memory accessors. The
// process passed in is the caller, running in process context (the
// provider may sleep, take faults, and charge CPU time through it).
type AddressSpaceProvider interface {
	// Mmap maps length bytes of the object open on fd starting at file
	// offset off, returning the chosen virtual address.
	Mmap(p *Proc, fd int, off, length int64, prot, flags int) (int64, error)
	// Munmap removes the mapping that starts exactly at addr.
	Munmap(p *Proc, addr int64) error
	// Msync writes the dirty pages of the mapping at addr to stable
	// storage with fsync durability.
	Msync(p *Proc, addr int64) error
	// MemRead copies len(dst) bytes of mapped memory at addr into dst,
	// taking faults as needed. Models user-mode loads, so it is not a
	// system call and charges only fault costs.
	MemRead(p *Proc, addr int64, dst []byte) error
	// MemWrite copies src into mapped memory at addr, taking write
	// faults (including COW) as needed. Models user-mode stores.
	MemWrite(p *Proc, addr int64, src []byte) error
}

// SetVM registers the address-space provider. Machines without one
// fail Mmap with ErrOpNotSupp, as a kernel built without VM would.
func (k *Kernel) SetVM(v AddressSpaceProvider) { k.vm = v }

// VM returns the registered address-space provider, or nil.
func (k *Kernel) VM() AddressSpaceProvider { return k.vm }

// Mmap maps length bytes of the file open on fd at offset off into the
// process's address space and returns the virtual address. off must be
// page-aligned; length is rounded up to whole pages.
func (p *Proc) Mmap(fd int, off, length int64, prot, flags int) (int64, error) {
	defer p.SyscallExit(p.SyscallEnter("mmap"))
	if p.k.vm == nil {
		return 0, ErrOpNotSupp
	}
	return p.k.vm.Mmap(p, fd, off, length, prot, flags)
}

// Munmap removes the mapping starting at addr (whole mappings only, as
// the original mmap proposal allowed).
func (p *Proc) Munmap(addr int64) error {
	defer p.SyscallExit(p.SyscallEnter("munmap"))
	if p.k.vm == nil {
		return ErrOpNotSupp
	}
	return p.k.vm.Munmap(p, addr)
}

// Msync flushes the mapping at addr to stable storage and waits, with
// the same durability contract as Fsync on the backing file.
func (p *Proc) Msync(addr int64) error {
	defer p.SyscallExit(p.SyscallEnter("msync"))
	if p.k.vm == nil {
		return ErrOpNotSupp
	}
	return p.k.vm.Msync(p, addr)
}

// MemRead models user-mode loads from mapped memory: dst is filled
// from the mapping at addr, taking (and paying for) any page faults.
// Not a system call — touching mapped memory traps straight into the
// fault handler, which is the whole point of mmap.
func (p *Proc) MemRead(addr int64, dst []byte) error {
	if p.k.vm == nil {
		return ErrOpNotSupp
	}
	return p.k.vm.MemRead(p, addr, dst)
}

// MemWrite models user-mode stores to mapped memory.
func (p *Proc) MemWrite(addr int64, src []byte) error {
	if p.k.vm == nil {
		return ErrOpNotSupp
	}
	return p.k.vm.MemWrite(p, addr, src)
}
