package kernel

import "kdp/internal/trace"

// The callout list is the classic 4.3BSD mechanism for deferred kernel
// work: timeout(fn, ticks) queues fn to run from softclock after the
// given number of clock ticks. Entries are kept in a delta list, as in
// the original, and fire with tick granularity.
//
// splice depends on this: the paper's read-completion handler schedules
// the write side "by placing a reference to the write handler at the
// head of the system callout list" (ticks == 0, firing at the next
// softclock), which is what decouples the source and sink I/O access
// periods.

// Callout is a handle to a queued callout; it can be cancelled with
// Untimeout.
type Callout struct {
	fn    func()
	delta int // ticks after the previous entry
	next  *Callout
	fired bool
	dead  bool
}

type calloutList struct {
	head *Callout
	n    int
}

func (cl *calloutList) empty() bool { return cl.head == nil }

// Timeout queues fn to run from softclock after ticks clock ticks.
// ticks <= 0 means the next softclock (the head of the callout list).
func (k *Kernel) Timeout(fn func(), ticks int) *Callout {
	if fn == nil {
		panic("kernel: Timeout with nil fn")
	}
	if ticks < 0 {
		ticks = 0
	}
	c := &Callout{fn: fn}
	cl := &k.callouts
	cl.n++

	// Insert into the delta list.
	var prev *Callout
	cur := cl.head
	rem := ticks
	for cur != nil && rem >= cur.delta {
		rem -= cur.delta
		prev = cur
		cur = cur.next
	}
	c.delta = rem
	c.next = cur
	if cur != nil {
		cur.delta -= rem
	}
	if prev == nil {
		cl.head = c
	} else {
		prev.next = c
	}
	return c
}

// Untimeout cancels a queued callout. Returns false if it already fired
// or was already cancelled.
func (k *Kernel) Untimeout(c *Callout) bool {
	if c == nil || c.fired || c.dead {
		return false
	}
	cl := &k.callouts
	var prev *Callout
	for cur := cl.head; cur != nil; prev, cur = cur, cur.next {
		if cur != c {
			continue
		}
		if cur.next != nil {
			cur.next.delta += cur.delta
		}
		if prev == nil {
			cl.head = cur.next
		} else {
			prev.next = cur.next
		}
		c.dead = true
		cl.n--
		return true
	}
	return false
}

// PendingCallouts reports the number of queued callouts.
func (k *Kernel) PendingCallouts() int { return k.callouts.n }

// softclock fires every callout due this tick. Handlers run at
// interrupt level: each dispatch charges CalloutDispatchCost as stolen
// time, and handlers must not sleep.
func (k *Kernel) softclock() {
	cl := &k.callouts
	if cl.head == nil {
		return
	}
	// One decrement per tick, as in 4.3BSD hardclock — but applied to
	// the first entry with time remaining, not blindly to the head. A
	// zero-ticks callout (splice schedules one per completion, "the
	// head of the system callout list") sits at the head with delta 0;
	// decrementing only the head would let a steady stream of such
	// entries starve the timers queued behind them, delaying every
	// pending timeout by one tick per zero-delta tick. Retransmission
	// timers and retired-connection reaps slipped their deadlines
	// exactly this way whenever packet loss kept them queued while a
	// splice was streaming.
	for c := cl.head; c != nil; c = c.next {
		if c.delta > 0 {
			c.delta--
			break
		}
	}
	// Collect all entries due now (delta zero at the head). Handlers
	// may queue new callouts; those are inserted for future ticks and
	// must not fire in this pass, so detach first.
	var due []*Callout
	for cl.head != nil && cl.head.delta == 0 {
		c := cl.head
		cl.head = c.next
		c.next = nil
		c.fired = true
		cl.n--
		due = append(due, c)
	}
	for _, c := range due {
		k.StealCPU(k.cfg.CalloutDispatchCost)
		k.TraceEmit(trace.KindCalloutFire, 0, int64(cl.n), 0, "")
		c.fn()
	}
}
