package kernel

import "fmt"

// This file implements the kernel-side invariant checker used by the
// simcheck harness, plus the probe hook that lets the harness run
// checks at every scheduling boundary.
//
// Invariant catalog (kernel):
//
//	kern-callout-delta   callout delta-list entries are non-negative and
//	                     the walked length matches the stored count
//	kern-runq-state      every run-queue entry is ProcRunnable, with no
//	                     duplicates and without the current process
//	kern-sleepq-state    every sleep-queue entry is ProcSleeping and its
//	                     wchan matches the queue it sits on
//	kern-proc-account    alive matches the number of non-exited processes
//	kern-holds           the keepalive hold count is non-negative
//	poll-reg-count       live poller registrations never go negative
//	poll-leak            (CheckPollDrained) once a machine has run to
//	                     idle, no poller is still registered on any
//	                     object's queue and nobody sleeps on a poll
//	                     waiter — a leftover registration means a
//	                     wakeup was lost or a poller leaked

func kviolation(name, format string, args ...any) error {
	return fmt.Errorf("invariant %s violated: %s", name, fmt.Sprintf(format, args...))
}

// CheckInvariants verifies the scheduler, sleep queues and callout list,
// returning the first violation found (nil when consistent). It never
// sleeps, so it is callable from any context.
func (k *Kernel) CheckInvariants() error {
	// Callout delta list.
	n := 0
	for c := k.callouts.head; c != nil; c = c.next {
		if c.delta < 0 {
			return kviolation("kern-callout-delta", "negative delta %d at entry %d", c.delta, n)
		}
		if c.fired || c.dead {
			return kviolation("kern-callout-delta", "fired/cancelled entry still queued at %d", n)
		}
		n++
		if n > k.callouts.n {
			return kviolation("kern-callout-delta", "list longer than count %d", k.callouts.n)
		}
	}
	if n != k.callouts.n {
		return kviolation("kern-callout-delta", "list holds %d entries, count says %d", n, k.callouts.n)
	}

	// Run queue.
	onq := make(map[*Proc]bool, len(k.runq))
	for _, p := range k.runq {
		if onq[p] {
			return kviolation("kern-runq-state", "proc %q queued twice", p.name)
		}
		onq[p] = true
		if p.state != ProcRunnable {
			return kviolation("kern-runq-state", "proc %q on run queue in state %v", p.name, p.state)
		}
		if p == k.current {
			return kviolation("kern-runq-state", "current proc %q also on run queue", p.name)
		}
	}

	// Sleep queues.
	for wchan, list := range k.sleepq {
		if len(list) == 0 {
			return kviolation("kern-sleepq-state", "empty sleep queue left behind for %T", wchan)
		}
		for _, p := range list {
			if p.state != ProcSleeping {
				return kviolation("kern-sleepq-state", "proc %q on sleep queue in state %v", p.name, p.state)
			}
			if p.wchan != wchan {
				return kviolation("kern-sleepq-state", "proc %q sleeping on wrong queue", p.name)
			}
			if onq[p] {
				return kviolation("kern-sleepq-state", "proc %q on both run and sleep queues", p.name)
			}
		}
	}

	// Process accounting.
	live := 0
	for _, p := range k.procs {
		if p.state != ProcExited {
			live++
		}
	}
	if live != k.alive {
		return kviolation("kern-proc-account", "%d live procs, alive says %d", live, k.alive)
	}
	if k.holds < 0 {
		return kviolation("kern-holds", "negative hold count %d", k.holds)
	}
	if k.pollRegs < 0 {
		return kviolation("poll-reg-count", "negative poller registration count %d", k.pollRegs)
	}
	return nil
}

// CheckPollDrained verifies that an idle machine holds no poll state:
// every poller registration has been dropped (by Notify, timeout, or
// the poller's own unwind) and no process is parked on a poll waiter.
func (k *Kernel) CheckPollDrained() error {
	if k.pollRegs != 0 {
		return kviolation("poll-leak", "%d poller registration(s) outstanding at drain", k.pollRegs)
	}
	for wchan, list := range k.sleepq {
		if _, ok := wchan.(*pollWaiter); ok && len(list) > 0 {
			return kviolation("poll-leak", "%d process(es) still sleeping in poll at drain", len(list))
		}
	}
	return nil
}

// SetProbe installs fn to be invoked by Run at every scheduling boundary
// (after due events fire, before the next process step). The simcheck
// harness uses it to check invariants between events; nil disables the
// probe. The probe must not sleep and must not mutate kernel state.
func (k *Kernel) SetProbe(fn func()) { k.probe = fn }

// Abort makes Run return err at the next scheduling boundary without
// executing any further process steps. The simcheck harness calls it
// when an invariant trips: every machine state after a violation is
// untrustworthy, so the world halts rather than running on garbage.
func (k *Kernel) Abort(err error) {
	if k.abortErr == nil {
		k.abortErr = err
	}
}
