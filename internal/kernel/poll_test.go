package kernel

import (
	"testing"

	"kdp/internal/sim"
)

// pollable is a minimal PollOps file for exercising the poll layer: its
// readiness is a plain event mask tests flip from callouts.
type pollable struct {
	ready int
	q     PollQueue
}

func (f *pollable) Read(ctx Ctx, b []byte, off int64) (int, error)  { return 0, ErrOpNotSupp }
func (f *pollable) Write(ctx Ctx, b []byte, off int64) (int, error) { return 0, ErrOpNotSupp }
func (f *pollable) Size(ctx Ctx) (int64, error)                     { return 0, nil }
func (f *pollable) Sync(ctx Ctx) error                              { return nil }
func (f *pollable) Close(ctx Ctx) error                             { return nil }

func (f *pollable) PollReady(events int) int {
	return f.ready & (events | PollErr | PollHup)
}
func (f *pollable) PollQueue() *PollQueue { return &f.q }

// mark sets event bits and notifies registered pollers, the way a real
// object's interrupt-level completion path would.
func (f *pollable) mark(events int) {
	f.ready |= events
	f.q.Notify(events)
}

func newPollRig() *Kernel {
	cfg := DefaultConfig()
	cfg.MaxRunTime = 60 * sim.Second
	return New(cfg)
}

// runPoll runs fn as the only process and verifies no poller
// registration leaks once the machine is idle.
func runPoll(t *testing.T, k *Kernel, fn func(*Proc)) {
	t.Helper()
	k.Spawn("poller", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckPollDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestPollZeroTimeoutScansOnce(t *testing.T) {
	k := newPollRig()
	f := &pollable{}
	runPoll(t, k, func(p *Proc) {
		fd := p.InstallFile(f, ORdWr)
		fds := []PollFd{{FD: fd, Events: PollIn}}
		t0 := p.Now()
		n, err := p.Poll(fds, 0)
		if n != 0 || err != nil {
			t.Fatalf("unready zero-timeout poll: n=%d err=%v", n, err)
		}
		if p.Now().Sub(t0) > 10*sim.Millisecond {
			t.Fatalf("zero-timeout poll slept %v", p.Now().Sub(t0))
		}
		f.ready = PollIn
		n, err = p.Poll(fds, 0)
		if n != 1 || err != nil || fds[0].Revents != PollIn {
			t.Fatalf("ready zero-timeout poll: n=%d err=%v revents=%#x", n, err, fds[0].Revents)
		}
	})
}

func TestPollTimeoutExpires(t *testing.T) {
	k := newPollRig()
	f := &pollable{}
	runPoll(t, k, func(p *Proc) {
		fd := p.InstallFile(f, ORdWr)
		fds := []PollFd{{FD: fd, Events: PollIn}}
		start := k.Ticks()
		n, err := p.Poll(fds, 7)
		if n != 0 || err != nil || fds[0].Revents != 0 {
			t.Fatalf("timed-out poll: n=%d err=%v revents=%#x", n, err, fds[0].Revents)
		}
		if waited := k.Ticks() - start; waited < 7 {
			t.Fatalf("poll returned after %d ticks, want >= 7", waited)
		}
	})
}

func TestPollWakeupOnNotify(t *testing.T) {
	k := newPollRig()
	f := &pollable{}
	runPoll(t, k, func(p *Proc) {
		fd := p.InstallFile(f, ORdWr)
		k.Timeout(func() { f.mark(PollIn) }, 10)
		start := k.Ticks()
		fds := []PollFd{{FD: fd, Events: PollIn}}
		n, err := p.Poll(fds, -1)
		if n != 1 || err != nil || fds[0].Revents != PollIn {
			t.Fatalf("poll after notify: n=%d err=%v revents=%#x", n, err, fds[0].Revents)
		}
		if waited := k.Ticks() - start; waited < 10 {
			t.Fatalf("poller woke after %d ticks, want >= 10", waited)
		}
	})
}

func TestPollNvalForClosedDescriptor(t *testing.T) {
	k := newPollRig()
	f := &pollable{}
	runPoll(t, k, func(p *Proc) {
		fd := p.InstallFile(f, ORdWr)
		_ = p.Close(fd)
		// An invalid descriptor is reported, not waited on, even with
		// an infinite timeout.
		fds := []PollFd{{FD: fd, Events: PollIn}}
		n, err := p.Poll(fds, -1)
		if n != 1 || err != nil || fds[0].Revents != PollNval {
			t.Fatalf("poll on closed fd: n=%d err=%v revents=%#x", n, err, fds[0].Revents)
		}
	})
}

func TestPollRegularFilesAlwaysReady(t *testing.T) {
	k := newPollRig()
	fsys := &memFS{files: map[string]*memFile{}}
	k.Mount("/m", fsys)
	runPoll(t, k, func(p *Proc) {
		fd, err := p.Open("/m/x", OCreat|ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		fds := []PollFd{{FD: fd, Events: PollIn | PollOut}}
		n, err := p.Poll(fds, -1)
		if n != 1 || err != nil || fds[0].Revents != PollIn|PollOut {
			t.Fatalf("poll on regular file: n=%d err=%v revents=%#x", n, err, fds[0].Revents)
		}
	})
}

// TestPollNotifyMaskTargetsWaiters drives two pollers waiting for
// different events on one object: a notification wakes only the
// waiters whose registered interest intersects it.
func TestPollNotifyMaskTargetsWaiters(t *testing.T) {
	k := newPollRig()
	f := &pollable{}
	var inWoke, outWoke int64 // ticks
	k.Spawn("reader", func(p *Proc) {
		fd := p.InstallFile(f, ORdOnly)
		fds := []PollFd{{FD: fd, Events: PollIn}}
		if n, err := p.Poll(fds, -1); n != 1 || err != nil || fds[0].Revents != PollIn {
			t.Errorf("reader poll: n=%d err=%v revents=%#x", n, err, fds[0].Revents)
		}
		inWoke = k.Ticks()
	})
	k.Spawn("writer", func(p *Proc) {
		fd := p.InstallFile(f, OWrOnly)
		fds := []PollFd{{FD: fd, Events: PollOut}}
		if n, err := p.Poll(fds, -1); n != 1 || err != nil || fds[0].Revents != PollOut {
			t.Errorf("writer poll: n=%d err=%v revents=%#x", n, err, fds[0].Revents)
		}
		outWoke = k.Ticks()
	})
	k.Timeout(func() { f.mark(PollOut) }, 10)
	k.Timeout(func() { f.mark(PollIn) }, 30)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckPollDrained(); err != nil {
		t.Fatal(err)
	}
	// The writer must wake on the first notification, the reader only
	// on the second — a PollOut event through an interest-blind queue
	// would bounce the reader at tick 10 too.
	if outWoke < 10 || outWoke >= 30 {
		t.Fatalf("writer woke at tick %d, want within [10,30)", outWoke)
	}
	if inWoke < 30 {
		t.Fatalf("reader woke at tick %d, want >= 30", inWoke)
	}
}

// TestPollInterestMaskWidens polls one object twice in the same set
// with different events; the single shared registration must carry the
// union, so a notification for either bit wakes the poller.
func TestPollInterestMaskWidens(t *testing.T) {
	k := newPollRig()
	f := &pollable{}
	runPoll(t, k, func(p *Proc) {
		fd := p.InstallFile(f, ORdWr)
		k.Timeout(func() { f.mark(PollOut) }, 10)
		fds := []PollFd{
			{FD: fd, Events: PollIn},
			{FD: fd, Events: PollOut},
		}
		n, err := p.Poll(fds, -1)
		if n != 1 || err != nil {
			t.Fatalf("widened poll: n=%d err=%v", n, err)
		}
		if fds[0].Revents != 0 || fds[1].Revents != PollOut {
			t.Fatalf("revents = %#x/%#x, want 0/PollOut", fds[0].Revents, fds[1].Revents)
		}
	})
}

func TestPollSignalInterrupts(t *testing.T) {
	k := newPollRig()
	f := &pollable{}
	k.Spawn("poller", func(p *Proc) {
		fd := p.InstallFile(f, ORdWr)
		k.Timeout(func() { k.Post(p, SIGIO) }, 5)
		fds := []PollFd{{FD: fd, Events: PollIn}}
		if n, err := p.Poll(fds, -1); err != ErrIntr {
			t.Errorf("poll under signal: n=%d err=%v, want ErrIntr", n, err)
		}
		p.DeliverSignals()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckPollDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestPollErrReportedUnrequested: error/hangup conditions surface even
// when the poller asked only for data events.
func TestPollErrReportedUnrequested(t *testing.T) {
	k := newPollRig()
	f := &pollable{}
	runPoll(t, k, func(p *Proc) {
		fd := p.InstallFile(f, ORdWr)
		k.Timeout(func() { f.mark(PollErr | PollHup) }, 5)
		fds := []PollFd{{FD: fd, Events: PollIn}}
		n, err := p.Poll(fds, -1)
		if n != 1 || err != nil {
			t.Fatalf("poll: n=%d err=%v", n, err)
		}
		if fds[0].Revents != PollErr|PollHup {
			t.Fatalf("revents = %#x, want PollErr|PollHup", fds[0].Revents)
		}
	})
}
