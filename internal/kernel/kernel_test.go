package kernel

import (
	"testing"

	"kdp/internal/sim"
)

func testKernel() *Kernel {
	cfg := DefaultConfig()
	cfg.MaxRunTime = 60 * sim.Second
	return New(cfg)
}

func TestSingleProcCompute(t *testing.T) {
	k := testKernel()
	p := k.Spawn("worker", func(p *Proc) {
		p.Compute(50 * sim.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcExited {
		t.Fatalf("proc state = %v", p.State())
	}
	if p.UserTime() != 50*sim.Millisecond {
		t.Fatalf("utime = %v, want 50ms", p.UserTime())
	}
	if got := k.Now(); got < sim.Time(50*sim.Millisecond) {
		t.Fatalf("clock = %v, want >= 50ms", got)
	}
}

func TestTwoProcsRoundRobinFairness(t *testing.T) {
	k := testKernel()
	a := k.Spawn("a", func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Compute(100 * sim.Millisecond)
		}
	})
	b := k.Spawn("b", func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Compute(100 * sim.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a.UserTime() != 2*sim.Second || b.UserTime() != 2*sim.Second {
		t.Fatalf("utimes %v/%v, want 2s each", a.UserTime(), b.UserTime())
	}
	// With round-robin sharing, total elapsed must be at least the sum
	// of both computations.
	if k.Now() < sim.Time(4*sim.Second) {
		t.Fatalf("elapsed %v < 4s", k.Now())
	}
	// Each should have been preempted several times: 4s of contention
	// with a 100ms quantum.
	_, aInv := a.ContextSwitches()
	_, bInv := b.ContextSwitches()
	if aInv+bInv < 10 {
		t.Fatalf("too few involuntary switches: a=%d b=%d", aInv, bInv)
	}
}

func TestRoundRobinInterleavesFinely(t *testing.T) {
	// Two CPU-bound procs must alternate on quantum boundaries, not run
	// to completion serially: proc b must finish well before 2x its own
	// compute time would suggest if scheduling were FIFO.
	k := testKernel()
	var aDone, bDone sim.Time
	k.Spawn("a", func(p *Proc) {
		p.Compute(1 * sim.Second)
		aDone = p.Now()
	})
	k.Spawn("b", func(p *Proc) {
		p.Compute(1 * sim.Second)
		bDone = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	gap := aDone.Sub(bDone)
	if gap < 0 {
		gap = -gap
	}
	// Interleaved completion: both end within ~one quantum of each
	// other, around t=2s.
	if gap > sim.Duration(300*sim.Millisecond) {
		t.Fatalf("completions not interleaved: a=%v b=%v", aDone, bDone)
	}
}

func TestSleepWakeup(t *testing.T) {
	k := testKernel()
	ch := new(int)
	var wokeAt sim.Time
	k.Spawn("sleeper", func(p *Proc) {
		if err := p.Sleep(ch, PWAIT); err != nil {
			t.Errorf("sleep: %v", err)
		}
		wokeAt = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Compute(30 * sim.Millisecond)
		k.Wakeup(ch)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt < sim.Time(30*sim.Millisecond) {
		t.Fatalf("woke at %v, want >= 30ms", wokeAt)
	}
}

func TestWakeupPreemptsLowerPriority(t *testing.T) {
	// An I/O-priority wakeup must preempt a user-priority computer
	// promptly (well before the computer finishes its long burst).
	k := testKernel()
	ch := new(int)
	var wokeAt sim.Time
	k.Spawn("io", func(p *Proc) {
		_ = p.Sleep(ch, PRIBIO)
		wokeAt = p.Now()
	})
	k.Spawn("cpu", func(p *Proc) {
		p.Compute(5 * sim.Second)
	})
	k.Engine().Schedule(100*sim.Millisecond, "intr", func() {
		k.Wakeup(ch)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt > sim.Time(200*sim.Millisecond) {
		t.Fatalf("I/O proc ran at %v; wakeup did not preempt", wokeAt)
	}
}

func TestWakeupOne(t *testing.T) {
	k := testKernel()
	ch := new(int)
	order := []string{}
	for _, name := range []string{"s1", "s2"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			_ = p.Sleep(ch, PWAIT)
			order = append(order, name)
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Compute(10 * sim.Millisecond)
		k.WakeupOne(ch)
		p.Compute(50 * sim.Millisecond)
		if k.Sleepers(ch) != 1 {
			t.Errorf("sleepers = %d, want 1", k.Sleepers(ch))
		}
		k.WakeupOne(ch)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "s1" || order[1] != "s2" {
		t.Fatalf("wakeup order = %v, want [s1 s2] (FIFO)", order)
	}
}

func TestSleepForUsesCallout(t *testing.T) {
	k := testKernel()
	var woke sim.Time
	k.Spawn("napper", func(p *Proc) {
		p.SleepFor(55 * sim.Millisecond)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Tick granularity: 55ms rounds up to 6 ticks = 60ms.
	if woke < sim.Time(55*sim.Millisecond) || woke > sim.Time(80*sim.Millisecond) {
		t.Fatalf("woke at %v, want ~60ms", woke)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := testKernel()
	k.Spawn("stuck", func(p *Proc) {
		_ = p.Sleep(new(int), PWAIT) // nothing will ever wake this
	})
	err := k.Run()
	if err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestWatchdog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRunTime = 100 * sim.Millisecond
	k := New(cfg)
	k.Spawn("long", func(p *Proc) {
		p.Compute(10 * sim.Second)
	})
	if err := k.Run(); err != ErrWatchdog {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
}

func TestStealCPUDelaysComputation(t *testing.T) {
	k := testKernel()
	var done sim.Time
	k.Spawn("cpu", func(p *Proc) {
		p.Compute(100 * sim.Millisecond)
		done = p.Now()
	})
	// Interrupt at t=10ms stealing 20ms.
	k.Engine().Schedule(10*sim.Millisecond, "intr", func() {
		k.Interrupt(func() { k.StealCPU(20 * sim.Millisecond) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(120 * sim.Millisecond)
	if done < want {
		t.Fatalf("compute finished at %v, want >= %v (stolen time must delay it)", done, want)
	}
	st := k.Stats()
	if st.Interrupt < 20*sim.Millisecond {
		t.Fatalf("interrupt time = %v, want >= 20ms", st.Interrupt)
	}
	if st.Interrupts != 1 {
		t.Fatalf("interrupts = %d, want 1", st.Interrupts)
	}
}

func TestKernelModeNotPreempted(t *testing.T) {
	// A long kernel-mode burst must not be round-robin preempted.
	k := testKernel()
	var kernDone sim.Time
	k.Spawn("kern", func(p *Proc) {
		p.UseK(500 * sim.Millisecond)
		kernDone = p.Now()
	})
	k.Spawn("user", func(p *Proc) {
		p.Compute(500 * sim.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// kern was spawned first and is non-preemptible: it must complete
	// its burst in one piece, i.e. at ~500ms.
	if kernDone > sim.Time(510*sim.Millisecond) {
		t.Fatalf("kernel-mode burst finished at %v; was preempted", kernDone)
	}
}

func TestCalloutDeltaList(t *testing.T) {
	k := testKernel()
	var fired []int
	k.Spawn("idle", func(p *Proc) {
		p.SleepFor(200 * sim.Millisecond)
	})
	k.Timeout(func() { fired = append(fired, 3) }, 3)
	k.Timeout(func() { fired = append(fired, 1) }, 1)
	k.Timeout(func() { fired = append(fired, 2) }, 2)
	k.Timeout(func() { fired = append(fired, 12) }, 1) // same tick as "1"
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 12, 2, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestCalloutTiming(t *testing.T) {
	k := testKernel()
	tick := k.Config().TickDuration()
	var at sim.Time
	k.Spawn("idle", func(p *Proc) { p.SleepFor(20 * tick) })
	k.Timeout(func() { at = k.Now() }, 5)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Queued at t=0; fires on the 5th hardclock tick (plus the
	// dispatch cost stolen before the handler body runs).
	lo, hi := sim.Time(5*tick), sim.Time(5*tick+sim.Millisecond)
	if at < lo || at > hi {
		t.Fatalf("callout fired at %v, want ~%v", at, lo)
	}
}

func TestCalloutZeroTicksFiresNextSoftclock(t *testing.T) {
	k := testKernel()
	tick := k.Config().TickDuration()
	var at sim.Time
	k.Spawn("idle", func(p *Proc) { p.SleepFor(10 * tick) })
	k.Timeout(func() { at = k.Now() }, 0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at < sim.Time(tick) || at > sim.Time(tick+sim.Millisecond) {
		t.Fatalf("head callout fired at %v, want next tick %v", at, sim.Time(tick))
	}
}

func TestUntimeout(t *testing.T) {
	k := testKernel()
	fired := false
	k.Spawn("idle", func(p *Proc) { p.SleepFor(100 * sim.Millisecond) })
	c := k.Timeout(func() { fired = true }, 2)
	if k.PendingCallouts() != 1 {
		t.Fatalf("pending = %d", k.PendingCallouts())
	}
	if !k.Untimeout(c) {
		t.Fatal("Untimeout failed")
	}
	if k.Untimeout(c) {
		t.Fatal("double Untimeout succeeded")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled callout fired")
	}
}

func TestUntimeoutMiddleEntryPreservesDeltas(t *testing.T) {
	k := testKernel()
	var fired []int
	k.Spawn("idle", func(p *Proc) { p.SleepFor(200 * sim.Millisecond) })
	k.Timeout(func() { fired = append(fired, 1) }, 1)
	c := k.Timeout(func() { fired = append(fired, 2) }, 3)
	k.Timeout(func() { fired = append(fired, 3) }, 5)
	k.Untimeout(c)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired %v, want [1 3]", fired)
	}
}

func TestSignalInterruptsSleep(t *testing.T) {
	k := testKernel()
	ch := new(int)
	var err error
	p := k.Spawn("sleeper", func(p *Proc) {
		err = p.Sleep(ch, PWAIT) // PWAIT > PZERO: interruptible
	})
	k.Engine().Schedule(10*sim.Millisecond, "sig", func() {
		k.Post(p, SIGIO)
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err != ErrIntr {
		t.Fatalf("sleep returned %v, want ErrIntr", err)
	}
}

func TestSignalDoesNotInterruptDiskSleep(t *testing.T) {
	k := testKernel()
	ch := new(int)
	var serr error
	p := k.Spawn("sleeper", func(p *Proc) {
		serr = p.Sleep(ch, PRIBIO) // below PZERO: uninterruptible
	})
	k.Engine().Schedule(10*sim.Millisecond, "sig", func() { k.Post(p, SIGIO) })
	k.Engine().Schedule(30*sim.Millisecond, "wake", func() { k.Wakeup(ch) })
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if serr != nil {
		t.Fatalf("uninterruptible sleep returned %v", serr)
	}
}

func TestPauseAndHandler(t *testing.T) {
	k := testKernel()
	got := Signal(0)
	p := k.Spawn("pauser", func(p *Proc) {
		p.SetSignalHandler(SIGIO, func(p *Proc, s Signal) { got = s })
		p.Pause()
	})
	k.Engine().Schedule(20*sim.Millisecond, "sig", func() { k.Post(p, SIGIO) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != SIGIO {
		t.Fatalf("handler got %v, want SIGIO", got)
	}
}

func TestITimerPacing(t *testing.T) {
	k := testKernel()
	var times []sim.Time
	k.Spawn("paced", func(p *Proc) {
		p.SetITimer(30*sim.Millisecond, 30*sim.Millisecond)
		for i := 0; i < 5; i++ {
			p.Pause()
			times = append(times, p.Now())
		}
		p.SetITimer(0, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 5 {
		t.Fatalf("got %d alarms, want 5", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		if gap < 25*sim.Millisecond || gap > 45*sim.Millisecond {
			t.Fatalf("alarm gap %d = %v, want ~30ms", i, gap)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := testKernel()
	k.Spawn("bad", func(p *Proc) {
		panic("boom")
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in proc body did not propagate to Run")
		}
	}()
	_ = k.Run()
}

func TestHoldKeepsKernelAlive(t *testing.T) {
	k := testKernel()
	k.Hold()
	done := false
	k.Spawn("quick", func(p *Proc) {
		p.Compute(sim.Millisecond)
	})
	// Kernel-side work completes at 50ms and releases the hold.
	k.Engine().Schedule(50*sim.Millisecond, "work", func() {
		done = true
		k.Release()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("kernel exited before held work completed")
	}
	if k.Now() < sim.Time(50*sim.Millisecond) {
		t.Fatalf("clock = %v, want >= 50ms", k.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, sim.Duration, int64) {
		k := testKernel()
		ch := new(int)
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Compute(17 * sim.Millisecond)
				k.Wakeup(ch)
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 5; i++ {
				_ = p.Sleep(ch, PWAIT)
				p.Compute(3 * sim.Millisecond)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		st := k.Stats()
		return st.Now, st.Idle, st.Switches
	}
	t1, i1, s1 := run()
	t2, i2, s2 := run()
	if t1 != t2 || i1 != i2 || s1 != s2 {
		t.Fatalf("runs diverged: (%v,%v,%d) vs (%v,%v,%d)", t1, i1, s1, t2, i2, s2)
	}
}

func TestIdleAccounting(t *testing.T) {
	k := testKernel()
	k.Spawn("napper", func(p *Proc) {
		p.SleepFor(100 * sim.Millisecond)
		p.Compute(10 * sim.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Idle < 90*sim.Millisecond {
		t.Fatalf("idle = %v, want ~100ms", st.Idle)
	}
}

func TestContextSwitchAccounting(t *testing.T) {
	k := testKernel()
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Compute(150 * sim.Millisecond)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Switches < 5 {
		t.Fatalf("switches = %d, want several", st.Switches)
	}
	if st.Switching != sim.Duration(st.Switches)*k.Config().ContextSwitchCost {
		t.Fatalf("switch time %v inconsistent with %d switches", st.Switching, st.Switches)
	}
}
