package kernel

import (
	"errors"
	"fmt"

	"kdp/internal/sim"
	"kdp/internal/trace"
)

// ErrDeadlock is returned by Run when live processes remain but neither
// runnable work nor pending events exist.
var ErrDeadlock = errors.New("kernel: deadlock: sleeping processes with no pending events")

// ErrWatchdog is returned by Run when Config.MaxRunTime is exceeded.
var ErrWatchdog = errors.New("kernel: watchdog: MaxRunTime exceeded")

// Kernel is the simulated machine: one CPU, a scheduler, the callout
// list, and the system-call surface. Construct with New, add processes
// with Spawn, then drive with Run.
type Kernel struct {
	cfg    Config
	engine *sim.Engine
	rand   *sim.Rand

	procs   []*Proc
	nextPid int
	alive   int
	holds   int // kernel-side keepalive holds (active splices, busy devices)

	runq        []*Proc
	current     *Proc
	lastRun     *Proc
	needResched bool
	quantumLeft int

	sleepq map[any][]*Proc

	callouts calloutList
	ticks    int64
	clockOn  bool
	nextTick sim.Time

	mounts []mountEntry
	devs   []devEntry
	vm     AddressSpaceProvider // mmap/munmap/msync backend (internal/vm)

	// accounting
	idleTime   sim.Duration
	intrTime   sim.Duration
	switchTime sim.Duration
	nSwitches  int64
	nIntr      int64

	pollRegs int // live poller registrations across every PollQueue

	tr       *trace.Tracer
	probe    func() // invoked at every scheduling boundary (simcheck)
	abortErr error  // set by Abort; Run returns it at the next boundary

	faults *FaultPlan // fault-site registry (see fault.go)
}

// New builds a kernel from the given configuration.
func New(cfg Config) *Kernel {
	if cfg.HZ <= 0 {
		panic("kernel: Config.HZ must be positive")
	}
	k := &Kernel{
		cfg:     cfg,
		engine:  sim.NewEngine(),
		rand:    sim.NewRand(cfg.Seed),
		nextPid: 1,
		sleepq:  make(map[any][]*Proc),
	}
	k.faults = newFaultPlan(k)
	return k
}

// Config returns the kernel's configuration.
func (k *Kernel) Config() *Config { return &k.cfg }

// Engine returns the underlying event engine. Device models schedule
// their completions on it.
func (k *Kernel) Engine() *sim.Engine { return k.engine }

// Rand returns the machine's deterministic PRNG.
func (k *Kernel) Rand() *sim.Rand { return k.rand }

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.engine.Now() }

// Ticks returns the number of hardclock ticks since boot.
func (k *Kernel) Ticks() int64 { return k.ticks }

// StartTrace installs a structured tracer forwarding every event to
// sink (which may be nil for metrics-only tracing) and returns it.
// Tracing charges no virtual time, so enabling it cannot change the
// simulation's timing or outcome. With no tracer installed the
// per-event cost is a single nil check.
func (k *Kernel) StartTrace(sink trace.Sink) *trace.Tracer {
	k.tr = trace.New(sink)
	return k.tr
}

// StopTrace removes the installed tracer, if any.
func (k *Kernel) StopTrace() { k.tr = nil }

// Tracer returns the installed tracer, or nil.
func (k *Kernel) Tracer() *trace.Tracer { return k.tr }

// Tracing reports whether a tracer is installed. Subsystems with
// event-argument computation that is itself costly may gate on it.
func (k *Kernel) Tracing() bool { return k.tr != nil }

// TraceEmit emits one structured event stamped with the current
// virtual time. It is the emission point for every subsystem (buffer
// cache, disks, network, splice); a no-op without a tracer.
func (k *Kernel) TraceEmit(kind trace.Kind, pid int, a1, a2 int64, name string) {
	if k.tr == nil {
		return
	}
	k.tr.Emit(trace.Event{T: k.engine.Now(), Kind: kind, Pid: int32(pid), Arg1: a1, Arg2: a2, Name: name})
}

// DurationToTicks converts a duration to a whole number of clock ticks,
// rounding up (a callout always waits at least one tick boundary).
func (k *Kernel) DurationToTicks(d sim.Duration) int {
	tick := k.cfg.TickDuration()
	n := int((d + tick - 1) / tick)
	if n < 0 {
		n = 0
	}
	return n
}

// Spawn creates a new process whose body is fn and places it on the run
// queue. The body runs when the scheduler selects it during Run.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	if fn == nil {
		panic("kernel: Spawn with nil body")
	}
	p := &Proc{
		k:       k,
		pid:     k.nextPid,
		name:    name,
		state:   ProcRunnable,
		pri:     PUSER,
		basePri: PUSER,
		resume:  make(chan struct{}),
		parked:  make(chan struct{}),
		exited:  make(chan struct{}),
		body:    fn,
	}
	k.nextPid++
	k.procs = append(k.procs, p)
	k.alive++
	k.runq = append(k.runq, p)
	go procMain(p)
	return p
}

// procMain is the goroutine body hosting a process. Descriptor teardown
// happens here, in process context, because closing a file can sleep
// (inode writeback); only then does the goroutine park with reqExit.
func procMain(p *Proc) {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			p.panicVal = r
		}
		if p.panicVal == nil {
			func() {
				defer func() {
					if r := recover(); r != nil {
						p.panicVal = r
					}
				}()
				p.runAtExit()
				p.closeAllFDs()
			}()
		}
		p.req = reqExit
		p.parked <- struct{}{}
		// never resumed again
	}()
	p.body(p)
}

// Hold marks kernel-side work in progress (an active splice, a busy
// device queue) that must keep the simulation running even if every
// process has exited. Pair with Release.
func (k *Kernel) Hold() { k.holds++ }

// Release drops a Hold.
func (k *Kernel) Release() {
	k.holds--
	if k.holds < 0 {
		panic("kernel: Release without Hold")
	}
}

// StealCPU charges d at interrupt level: the clock advances and the
// time is accounted as interrupt time, delaying whatever was running.
func (k *Kernel) StealCPU(d sim.Duration) {
	if d <= 0 {
		return
	}
	k.engine.Consume(d)
	k.intrTime += d
	k.TraceEmit(trace.KindCPUIntr, 0, int64(d), 0, "")
}

// Interrupt models taking a device interrupt: the fixed interrupt cost
// is charged, then fn runs at interrupt level (it may call StealCPU for
// additional handler work but must not sleep).
func (k *Kernel) Interrupt(fn func()) {
	k.nIntr++
	k.StealCPU(k.cfg.InterruptCost)
	fn()
}

// Sleepers reports how many processes are blocked on wchan.
func (k *Kernel) Sleepers(wchan any) int { return len(k.sleepq[wchan]) }

// Wakeup makes every process sleeping on wchan runnable, as 4.3BSD
// wakeup(). Safe to call from any context.
func (k *Kernel) Wakeup(wchan any) {
	list := k.sleepq[wchan]
	if len(list) == 0 {
		return
	}
	delete(k.sleepq, wchan)
	for _, p := range list {
		k.makeRunnable(p, p.sleepPri)
	}
}

// WakeupOne wakes only the longest-sleeping process on wchan.
func (k *Kernel) WakeupOne(wchan any) {
	list := k.sleepq[wchan]
	if len(list) == 0 {
		return
	}
	p := list[0]
	if len(list) == 1 {
		delete(k.sleepq, wchan)
	} else {
		k.sleepq[wchan] = list[1:]
	}
	k.makeRunnable(p, p.sleepPri)
}

func (k *Kernel) makeRunnable(p *Proc, pri int) {
	if p.state == ProcExited {
		return
	}
	p.state = ProcRunnable
	p.pri = pri
	p.wchan = nil
	k.runq = append(k.runq, p)
	if k.current != nil && pri < k.current.pri {
		k.needResched = true
	}
	k.TraceEmit(trace.KindSchedWakeup, p.pid, int64(pri), 0, p.name)
}

// unsleep removes p from its sleep queue (signal interruption).
func (k *Kernel) unsleep(p *Proc) {
	list := k.sleepq[p.wchan]
	for i, q := range list {
		if q == p {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(k.sleepq, p.wchan)
	} else {
		k.sleepq[p.wchan] = list
	}
}

// pickNext removes and returns the best runnable process: lowest
// numeric priority, FIFO among equals.
func (k *Kernel) pickNext() *Proc {
	best := -1
	for i, p := range k.runq {
		if best < 0 || p.pri < k.runq[best].pri {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	p := k.runq[best]
	k.runq = append(k.runq[:best], k.runq[best+1:]...)
	return p
}

// otherRunnable reports whether any queued process has priority at or
// better than pri.
func (k *Kernel) otherRunnable(pri int) bool {
	for _, p := range k.runq {
		if p.pri <= pri {
			return true
		}
	}
	return false
}

// Run drives the machine until every process has exited and no
// kernel-side holds remain. It returns ErrDeadlock if live processes
// are all asleep with nothing pending, or ErrWatchdog if MaxRunTime is
// exceeded.
func (k *Kernel) Run() error {
	k.startClock()
	for {
		if k.cfg.MaxRunTime > 0 && sim.Duration(k.engine.Now()) > k.cfg.MaxRunTime {
			return ErrWatchdog
		}
		k.engine.RunDue()
		if k.probe != nil {
			k.probe()
		}
		if k.abortErr != nil {
			return k.abortErr
		}
		if k.alive == 0 && k.holds == 0 {
			return nil
		}
		p := k.current
		if p == nil {
			p = k.pickNext()
		}
		if p == nil {
			// Idle: advance to the next event. If the only pending
			// event is our own hardclock and the callout list is
			// empty, nothing can ever wake the sleepers: deadlock.
			clockEvents := 0
			if k.clockOn {
				clockEvents = 1
			}
			if k.alive > 0 && k.holds == 0 && k.callouts.empty() &&
				k.engine.Pending() == clockEvents && k.anySignalsPending() == false {
				return ErrDeadlock
			}
			t0 := k.engine.Now()
			if !k.engine.RunNext() {
				if k.alive == 0 {
					return nil
				}
				return ErrDeadlock
			}
			idle := k.engine.Now().Sub(t0)
			k.idleTime += idle
			if idle > 0 {
				k.TraceEmit(trace.KindCPUIdle, 0, int64(idle), 0, "")
			}
			continue
		}
		k.runStep(p)
	}
}

// anySignalsPending reports whether any live process has an undelivered
// signal (which could still unblock an interruptible sleeper).
func (k *Kernel) anySignalsPending() bool {
	for _, p := range k.procs {
		if p.state != ProcExited && p.sigPending != 0 {
			return true
		}
	}
	return false
}

// runStep gives the CPU to p for one step: either serving its pending
// CPU-use request or resuming its goroutine until it parks again.
func (k *Kernel) runStep(p *Proc) {
	if k.lastRun != p {
		if k.lastRun != nil {
			k.engine.Consume(k.cfg.ContextSwitchCost)
			k.switchTime += k.cfg.ContextSwitchCost
			k.nSwitches++
			k.TraceEmit(trace.KindCPUSwitch, p.pid, int64(k.cfg.ContextSwitchCost), 0, "")
		}
		k.lastRun = p
		k.quantumLeft = k.cfg.QuantumTicks
		k.TraceEmit(trace.KindSchedSwitch, p.pid, 0, 0, p.name)
	}
	k.current = p
	p.state = ProcRunning

	if p.useRem > 0 {
		k.serveUse(p)
		return // either completed (current stays p) or preempted
	}

	// Resume the process goroutine until it parks with a request.
	p.resume <- struct{}{}
	<-p.parked

	switch p.req {
	case reqUse:
		// Served on the next loop iteration (current remains p).
	case reqSleep:
		k.sleepq[p.wchan] = append(k.sleepq[p.wchan], p)
		p.state = ProcSleeping
		p.pri = p.sleepPri
		p.nvcsw++
		k.current = nil
		k.TraceEmit(trace.KindSchedSleep, p.pid, int64(p.sleepPri), 0, p.name)
	case reqYield:
		p.state = ProcRunnable
		p.nvcsw++
		k.runq = append(k.runq, p)
		k.current = nil
	case reqExit:
		k.reapProc(p)
	default:
		panic(fmt.Sprintf("kernel: proc %q parked with unexpected request %d", p.name, p.req))
	}
	p.req = reqNone
}

func (k *Kernel) reapProc(p *Proc) {
	p.state = ProcExited
	k.alive--
	k.current = nil
	if k.lastRun == p {
		k.lastRun = nil
	}
	if p.itimer != nil {
		p.itimer.stop(k)
		p.itimer = nil
	}
	close(p.exited)
	k.Wakeup(p) // anyone waiting on the proc itself
	k.TraceEmit(trace.KindProcExit, p.pid, 0, 0, p.name)
	if p.panicVal != nil {
		panic(p.panicVal)
	}
}

// serveUse advances virtual time while charging CPU to p, interleaving
// any events that come due (device completions, clock ticks). User-mode
// time is preemptible; kernel-mode time runs to completion (interrupts
// still steal time on top).
func (k *Kernel) serveUse(p *Proc) {
	if !p.useKernel {
		// Returning to user mode: priority reverts to the base user
		// priority and pending signals are delivered.
		p.pri = p.basePri
		if p.sigPending != 0 {
			k.deliverSignals(p)
		}
	}
	for p.useRem > 0 {
		k.engine.RunDue()
		if !p.useKernel && k.needResched && k.otherRunnable(p.pri) {
			k.preempt(p)
			return
		}
		next, haveNext := k.engine.NextEventTime()
		now := k.engine.Now()
		end := now.Add(p.useRem)
		if !haveNext || next >= end {
			k.engine.Consume(p.useRem)
			k.chargeUse(p, p.useRem)
			p.useRem = 0
			break
		}
		delta := next.Sub(now)
		if delta < 0 {
			delta = 0
		}
		k.engine.AdvanceTo(next)
		k.chargeUse(p, delta)
		p.useRem -= delta
	}
	if p.useRem == 0 {
		k.engine.RunDue()
		if k.needResched && !p.useKernel && k.otherRunnable(p.pri) {
			k.preempt(p)
		}
	}
}

func (k *Kernel) chargeUse(p *Proc, d sim.Duration) {
	if d <= 0 {
		return
	}
	if p.useKernel {
		p.stime += d
		k.TraceEmit(trace.KindCPUSys, p.pid, int64(d), 0, "")
	} else {
		p.utime += d
		k.TraceEmit(trace.KindCPUUser, p.pid, int64(d), 0, "")
	}
}

func (k *Kernel) preempt(p *Proc) {
	p.state = ProcRunnable
	p.nicsw++
	k.runq = append(k.runq, p)
	k.current = nil
	k.needResched = false
	k.TraceEmit(trace.KindSchedPreempt, p.pid, int64(p.useRem), 0, p.name)
}

// startClock arms the periodic hardclock.
func (k *Kernel) startClock() {
	if k.clockOn {
		return
	}
	k.clockOn = true
	k.nextTick = k.engine.Now().Add(k.cfg.TickDuration())
	k.engine.Schedule(k.cfg.TickDuration(), "hardclock", k.hardclock)
}

// scheduleNextTick arms the next hardclock at a fixed absolute cadence:
// the hardware timer does not drift because handlers burned CPU.
func (k *Kernel) scheduleNextTick() {
	k.nextTick = k.nextTick.Add(k.cfg.TickDuration())
	delay := k.nextTick.Sub(k.engine.Now())
	if delay < 0 {
		delay = 0
	}
	k.engine.Schedule(delay, "hardclock", k.hardclock)
}

// hardclock is the 100Hz (by default) clock interrupt: it advances the
// tick count, runs softclock (the callout list), and implements
// round-robin preemption for equal-priority user processes.
func (k *Kernel) hardclock() {
	k.ticks++
	k.softclock()
	// Charge the quantum to whoever holds the CPU, in either mode (as
	// 4.3BSD charges p_cpu); preemption itself still waits for the
	// next user-mode boundary.
	if k.current != nil {
		k.quantumLeft--
		if k.quantumLeft <= 0 {
			k.quantumLeft = k.cfg.QuantumTicks
			if k.otherRunnable(k.current.pri) {
				k.needResched = true
			}
		}
	}
	if k.alive > 0 || k.holds > 0 || !k.callouts.empty() {
		k.scheduleNextTick()
	} else {
		k.clockOn = false
	}
}

// CPUStats is a snapshot of machine-wide CPU accounting.
type CPUStats struct {
	Now        sim.Time
	Idle       sim.Duration
	Interrupt  sim.Duration
	Switching  sim.Duration
	Switches   int64
	Interrupts int64
	Ticks      int64
}

// Stats returns machine-wide CPU accounting counters.
func (k *Kernel) Stats() CPUStats {
	return CPUStats{
		Now:        k.engine.Now(),
		Idle:       k.idleTime,
		Interrupt:  k.intrTime,
		Switching:  k.switchTime,
		Switches:   k.nSwitches,
		Interrupts: k.nIntr,
		Ticks:      k.ticks,
	}
}
