package kernel

import (
	"kdp/internal/trace"
)

// Readiness-based I/O multiplexing in the 4.3BSD select() lineage,
// recast as poll(): a process hands the kernel a set of descriptors and
// the events it cares about, and sleeps until at least one descriptor
// is ready, a timeout fires from the callout list, or a signal arrives.
//
// Pollable objects implement PollOps: a synchronous readiness query
// (PollReady, the selscan half) plus a waiter queue the poller
// registers on before sleeping (the selrecord/selwakeup half). Objects
// call Notify on their queue from the same interrupt-level completion
// paths that wake blocked readers and writers, so no new wakeup
// machinery exists — poll composes with sleep/wakeup exactly the way
// select does in the real kernel.

// Poll event bits (revents-compatible: error conditions are reported
// regardless of what was requested).
const (
	PollIn   = 0x1  // readable: a read or accept would not block
	PollOut  = 0x4  // writable: a write would admit at least one byte
	PollErr  = 0x8  // terminal error pending (always reported)
	PollHup  = 0x10 // peer closed its half (always reported)
	PollNval = 0x20 // descriptor is not open (always reported)
)

// PollFd is one entry of a poll set: the descriptor, the requested
// event bits, and the returned ready bits.
type PollFd struct {
	FD      int
	Events  int
	Revents int
}

// PollOps is implemented by file objects that support readiness
// queries. Objects that do not implement it (regular files, simple
// devices) are considered always ready, as select treats them.
type PollOps interface {
	// PollReady returns the subset of events currently satisfied,
	// plus any PollErr/PollHup condition whether requested or not.
	// It never sleeps.
	PollReady(events int) int
	// PollQueue returns the object's poll waiter queue.
	PollQueue() *PollQueue
}

// pollWaiter is one sleeping (or about to sleep) poller. It doubles as
// the sleep wchan, so Notify can wake exactly the pollers registered on
// the object that became ready.
type pollWaiter struct {
	k        *Kernel
	ready    bool // an object notified since the last scan
	timedOut bool
}

// pollReg is one registration: a waiter plus the event bits it is
// waiting for on this object.
type pollReg struct {
	w      *pollWaiter
	events int
}

// PollQueue is the per-object registry of poll waiters, the analogue of
// 4.3BSD's selinfo. Registration is one-shot: Notify hands every
// matching waiter a wakeup and drops its registration; pollers
// re-register on every scan. The zero value is ready to use.
type PollQueue struct {
	regs []pollReg
}

// register adds w to the queue (at most once; repeated registration
// widens the interest mask).
func (q *PollQueue) register(w *pollWaiter, events int) {
	for i := range q.regs {
		if q.regs[i].w == w {
			q.regs[i].events |= events
			return
		}
	}
	q.regs = append(q.regs, pollReg{w: w, events: events})
	w.k.pollRegs++
}

// unregister removes w from the queue if present.
func (q *PollQueue) unregister(w *pollWaiter) {
	for i := range q.regs {
		if q.regs[i].w == w {
			q.regs = append(q.regs[:i], q.regs[i+1:]...)
			w.k.pollRegs--
			return
		}
	}
}

// Notify wakes every registered poller whose interest intersects events
// and drops those registrations (selwakeup). Objects call it from the
// completion paths that make them readable (PollIn), writable
// (PollOut), or failed (PollErr|PollHup); waiters interested only in
// other events stay asleep, so a send-space ack does not wake a poller
// watching an idle connection for its next request. Safe at interrupt
// level; a no-op when nobody is polling.
func (q *PollQueue) Notify(events int) {
	if len(q.regs) == 0 {
		return
	}
	var kept []pollReg
	for _, r := range q.regs {
		if r.events&events == 0 {
			kept = append(kept, r)
			continue
		}
		r.w.k.pollRegs--
		r.w.ready = true
		r.w.k.Wakeup(r.w)
	}
	q.regs = kept
}

// Waiters reports how many pollers are currently registered.
func (q *PollQueue) Waiters() int { return len(q.regs) }

// PollRegistrations reports the number of live poller registrations
// across every queue on this kernel (the poll-leak gauge for the
// invariant checker).
func (k *Kernel) PollRegistrations() int { return k.pollRegs }

// Poll scans the descriptor set and returns the number of entries with
// nonzero Revents, blocking until at least one is ready. timeoutTicks
// follows poll(2): negative blocks indefinitely, zero scans once
// without blocking, positive bounds the wait via the callout list (a
// pure timeout returns 0). The sleep is interruptible: a posted signal
// breaks it with ErrIntr.
//
// The classic lost-wakeup race — an object becoming ready between the
// scan that found nothing and the sleep — is closed the same way
// select closes it: the waiter registers on each unready object during
// the scan, and a Notify from any of them (even one firing mid-scan,
// while the scan charges per-descriptor CPU) flags the waiter so the
// sleep is skipped and the set rescanned.
func (p *Proc) Poll(fds []PollFd, timeoutTicks int) (n int, err error) {
	defer p.SyscallExit(p.SyscallEnter("poll"))
	k := p.k
	w := &pollWaiter{k: k}

	var to *Callout
	if timeoutTicks > 0 {
		to = k.Timeout(func() {
			w.timedOut = true
			k.Wakeup(w)
		}, timeoutTicks)
	}
	registered := make([]*PollQueue, 0, len(fds))
	defer func() {
		for _, q := range registered {
			q.unregister(w)
		}
		if to != nil {
			k.Untimeout(to)
		}
		if err == nil {
			k.TraceEmit(trace.KindKernelPoll, p.pid, int64(len(fds)), int64(n), "")
		}
	}()

	for {
		// Drop the previous round's registrations before rescanning.
		for _, q := range registered {
			q.unregister(w)
		}
		registered = registered[:0]

		n = 0
		for i := range fds {
			fds[i].Revents = 0
			p.UseK(k.cfg.PollFdCost)
			f, ferr := p.FD(fds[i].FD)
			if ferr != nil {
				fds[i].Revents = PollNval
				n++
				continue
			}
			po, ok := f.ops.(PollOps)
			if !ok {
				// Regular files and plain devices never block
				// indefinitely: always ready.
				fds[i].Revents = fds[i].Events & (PollIn | PollOut)
				if fds[i].Revents != 0 {
					n++
				}
				continue
			}
			if r := po.PollReady(fds[i].Events); r != 0 {
				fds[i].Revents = r
				n++
				continue
			}
			q := po.PollQueue()
			// Error and hangup conditions are reported regardless of
			// the requested events, so always wait on them too.
			q.register(w, fds[i].Events|PollErr|PollHup)
			registered = append(registered, q)
		}
		if n > 0 || timeoutTicks == 0 || w.timedOut {
			return n, nil
		}
		if !w.ready {
			// PZERO+1: the lowest signal-interruptible priority, the
			// same one 4.3BSD's select sleeps at (PSOCK+1 would sit
			// exactly at PZERO and make the sleep uninterruptible).
			if serr := p.Sleep(w, PZERO+1); serr != nil {
				return 0, serr
			}
		}
		w.ready = false
	}
}
