package kernel

import (
	"sort"
	"testing"

	"kdp/internal/sim"
)

// TestCalloutOrderProperty queues random timeouts (with random
// cancellations) and verifies the invariants the delta list guarantees:
// every surviving entry fires exactly once, no cancelled entry fires,
// firing ticks never decrease, entries with equal requested ticks fire
// FIFO, and every entry fires at exactly its requested tick (0-tick
// entries at the next softclock). Exact ticks used to slip when
// 0-tick entries occupied the list head and stole the per-tick
// decrement; softclock now applies the decrement to the first entry
// with time remaining, so the property pins absolute ticks.
func TestCalloutOrderProperty(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		r := sim.NewRand(seed)
		k := testKernel()

		type co struct {
			tick  int
			seq   int
			asked int
		}
		var fired []co
		var handles []*Callout
		asked := make([]int, 0, 80)
		n := 30 + r.Intn(50)
		for i := 0; i < n; i++ {
			ticks := r.Intn(40)
			seq := i
			ticksCopy := ticks
			h := k.Timeout(func() {
				fired = append(fired, co{int(k.Ticks()), seq, ticksCopy})
			}, ticks)
			handles = append(handles, h)
			asked = append(asked, ticks)
		}
		cancelled := map[int]bool{}
		for i := 0; i < n/5; i++ {
			idx := r.Intn(n)
			if k.Untimeout(handles[idx]) {
				cancelled[idx] = true
			}
		}

		k.Spawn("idle", func(p *Proc) { p.SleepFor(2 * sim.Second) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}

		if len(fired) != n-len(cancelled) {
			t.Fatalf("seed %d: fired %d, want %d", seed, len(fired), n-len(cancelled))
		}
		seen := map[int]bool{}
		lastTick := 0
		for i, f := range fired {
			if cancelled[f.seq] {
				t.Fatalf("seed %d: cancelled entry %d fired", seed, f.seq)
			}
			if seen[f.seq] {
				t.Fatalf("seed %d: entry %d fired twice", seed, f.seq)
			}
			seen[f.seq] = true
			if f.tick < lastTick {
				t.Fatalf("seed %d: firing ticks decreased at %d: %v", seed, i, fired)
			}
			lastTick = f.tick
			min := asked[f.seq]
			if min < 1 {
				min = 1
			}
			if f.tick != min {
				t.Fatalf("seed %d: entry %d fired at tick %d, want exactly %d",
					seed, f.seq, f.tick, min)
			}
		}
		// FIFO among equal requested ticks.
		byAsk := map[int][]int{}
		for _, f := range fired {
			byAsk[f.asked] = append(byAsk[f.asked], f.seq)
		}
		for ask, seqs := range byAsk {
			if !sort.IntsAreSorted(seqs) {
				t.Fatalf("seed %d: entries asking %d ticks fired out of FIFO: %v", seed, ask, seqs)
			}
		}
	}
}

// TestCalloutReentrantQueueing: a handler queueing a ticks=0 callout
// sees it fire on the NEXT softclock, never the current one.
func TestCalloutReentrantQueueing(t *testing.T) {
	k := testKernel()
	var ticksSeen []int64
	depth := 0
	var chain func()
	chain = func() {
		ticksSeen = append(ticksSeen, k.Ticks())
		depth++
		if depth < 5 {
			k.Timeout(chain, 0)
		}
	}
	k.Timeout(chain, 0)
	k.Spawn("idle", func(p *Proc) { p.SleepFor(200 * sim.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticksSeen) != 5 {
		t.Fatalf("chain fired %d times", len(ticksSeen))
	}
	for i := 1; i < len(ticksSeen); i++ {
		if ticksSeen[i] != ticksSeen[i-1]+1 {
			t.Fatalf("re-queued callout did not wait for the next tick: %v", ticksSeen)
		}
	}
}

// TestZeroTickCalloutsDoNotStarveTimers is the minimized regression
// for the softclock decrement bug: a handler re-queueing a ticks=0
// callout every tick kept a zero-delta entry at the head of the list,
// and because the per-tick decrement applied only to the head, the
// positive-delta timers queued behind it never counted down. A
// retransmission timer or retired-connection reap pending while a
// splice streamed (one ticks=0 callout per completion) slipped its
// deadline without bound. The fix decrements the first entry with time
// remaining; the timer must fire at exactly its requested tick.
func TestZeroTickCalloutsDoNotStarveTimers(t *testing.T) {
	k := testKernel()
	const want = 10
	firedAt := int64(-1)
	k.Timeout(func() { firedAt = k.Ticks() }, want)
	// A self-renewing zero-tick chain, as a busy splice generates.
	spins := 0
	var spin func()
	spin = func() {
		if spins++; spins < 100 {
			k.Timeout(spin, 0)
		}
	}
	k.Timeout(spin, 0)
	k.Spawn("idle", func(p *Proc) { p.SleepFor(2 * sim.Second) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if firedAt != want {
		t.Fatalf("timer fired at tick %d, want %d (starved by zero-tick callouts)", firedAt, want)
	}
}
