package kernel

import (
	"testing"

	"kdp/internal/sim"
)

// memFile is a minimal in-memory FileOps for exercising the descriptor
// layer without a filesystem.
type memFile struct {
	data    []byte
	closed  bool
	syncs   int
	failers map[string]error
}

func (m *memFile) Read(ctx Ctx, b []byte, off int64) (int, error) {
	if err := m.failers["read"]; err != nil {
		return 0, err
	}
	if off >= int64(len(m.data)) {
		return 0, nil
	}
	n := copy(b, m.data[off:])
	return n, nil
}

func (m *memFile) Write(ctx Ctx, b []byte, off int64) (int, error) {
	if err := m.failers["write"]; err != nil {
		return 0, err
	}
	need := off + int64(len(b))
	if int64(len(m.data)) < need {
		grown := make([]byte, need)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:], b)
	return len(b), nil
}

func (m *memFile) Size(ctx Ctx) (int64, error) { return int64(len(m.data)), nil }
func (m *memFile) Sync(ctx Ctx) error          { m.syncs++; return nil }
func (m *memFile) Close(ctx Ctx) error         { m.closed = true; return nil }

// memFS is a single-directory FileSystem over memFiles.
type memFS struct {
	files map[string]*memFile
}

func (f *memFS) OpenFile(ctx Ctx, path string, flags int) (FileOps, error) {
	mf, ok := f.files[path]
	if !ok {
		if flags&OCreat == 0 {
			return nil, ErrNoEnt
		}
		mf = &memFile{}
		f.files[path] = mf
	}
	if flags&OTrunc != 0 {
		mf.data = nil
	}
	return mf, nil
}

func (f *memFS) Remove(ctx Ctx, path string) error {
	if _, ok := f.files[path]; !ok {
		return ErrNoEnt
	}
	delete(f.files, path)
	return nil
}

func (f *memFS) SyncAll(ctx Ctx) error { return nil }

func newFDRig() (*Kernel, *memFS) {
	cfg := DefaultConfig()
	cfg.MaxRunTime = 60 * sim.Second
	k := New(cfg)
	fsys := &memFS{files: map[string]*memFile{}}
	k.Mount("/m", fsys)
	return k, fsys
}

func runFD(t *testing.T, k *Kernel, fn func(*Proc)) {
	t.Helper()
	k.Spawn("t", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenReadWriteOffsets(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, err := p.Open("/m/x", OCreat|ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := p.Write(fd, []byte("hello ")); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Write(fd, []byte("world")); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Lseek(fd, 0, SeekSet); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 32)
		n, err := p.Read(fd, buf)
		if err != nil || string(buf[:n]) != "hello world" {
			t.Fatalf("read %q err=%v", buf[:n], err)
		}
		// Offset now at EOF.
		if n, _ := p.Read(fd, buf); n != 0 {
			t.Fatalf("read at EOF returned %d", n)
		}
	})
}

func TestLseekWhence(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/x", OCreat|ORdWr)
		_, _ = p.Write(fd, make([]byte, 100))
		if off, _ := p.Lseek(fd, 10, SeekSet); off != 10 {
			t.Fatalf("SeekSet: %d", off)
		}
		if off, _ := p.Lseek(fd, 5, SeekCur); off != 15 {
			t.Fatalf("SeekCur: %d", off)
		}
		if off, _ := p.Lseek(fd, -20, SeekEnd); off != 80 {
			t.Fatalf("SeekEnd: %d", off)
		}
		if _, err := p.Lseek(fd, -200, SeekCur); err != ErrInval {
			t.Fatalf("negative seek: %v", err)
		}
		if _, err := p.Lseek(fd, 0, 99); err != ErrInval {
			t.Fatalf("bad whence: %v", err)
		}
	})
}

func TestOpenAppendPositionsAtEnd(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/log", OCreat|OWrOnly)
		_, _ = p.Write(fd, []byte("first"))
		_ = p.Close(fd)
		fd2, err := p.Open("/m/log", OWrOnly|OAppend)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = p.Write(fd2, []byte("+second"))
		_ = p.Close(fd2)
		rd, _ := p.Open("/m/log", ORdOnly)
		buf := make([]byte, 64)
		n, _ := p.Read(rd, buf)
		if string(buf[:n]) != "first+second" {
			t.Fatalf("append produced %q", buf[:n])
		}
	})
}

func TestAccessModeEnforcement(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/x", OCreat|OWrOnly)
		if _, err := p.Read(fd, make([]byte, 4)); err != ErrBadFD {
			t.Fatalf("read on write-only: %v", err)
		}
		_, _ = p.Write(fd, []byte("abc"))
		_ = p.Close(fd)
		rd, _ := p.Open("/m/x", ORdOnly)
		if _, err := p.Write(rd, []byte("no")); err != ErrBadFD {
			t.Fatalf("write on read-only: %v", err)
		}
	})
}

func TestFcntlFlags(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/x", OCreat|ORdWr)
		fl, err := p.Fcntl(fd, FGetFL, 0)
		if err != nil || fl&FAsync != 0 {
			t.Fatalf("initial flags %#x err=%v", fl, err)
		}
		if _, err := p.Fcntl(fd, FSetFL, FAsync); err != nil {
			t.Fatal(err)
		}
		fl, _ = p.Fcntl(fd, FGetFL, 0)
		if fl&FAsync == 0 {
			t.Fatal("FAsync not set")
		}
		// Access mode bits must survive F_SETFL.
		if fl&0x3 != ORdWr {
			t.Fatalf("access mode clobbered: %#x", fl)
		}
		if _, err := p.Fcntl(fd, 99, 0); err != ErrInval {
			t.Fatalf("bad fcntl cmd: %v", err)
		}
	})
}

func TestBadDescriptorOperations(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		if _, err := p.Read(42, make([]byte, 4)); err != ErrBadFD {
			t.Fatalf("read bad fd: %v", err)
		}
		if err := p.Close(42); err != ErrBadFD {
			t.Fatalf("close bad fd: %v", err)
		}
		fd, _ := p.Open("/m/x", OCreat|ORdWr)
		_ = p.Close(fd)
		if err := p.Close(fd); err != ErrBadFD {
			t.Fatalf("double close: %v", err)
		}
	})
}

func TestDescriptorSlotReuse(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		a, _ := p.Open("/m/a", OCreat|ORdWr)
		b, _ := p.Open("/m/b", OCreat|ORdWr)
		_ = p.Close(a)
		c, _ := p.Open("/m/c", OCreat|ORdWr)
		if c != a {
			t.Fatalf("lowest free slot not reused: got %d, want %d", c, a)
		}
		_ = p.Close(b)
		_ = p.Close(c)
	})
}

func TestUnlinkThroughMountTable(t *testing.T) {
	k, fsys := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/gone", OCreat|OWrOnly)
		_ = p.Close(fd)
		if err := p.Unlink("/m/gone"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		if _, ok := fsys.files["/gone"]; ok {
			t.Fatal("file still present in filesystem")
		}
		if err := p.Unlink("/m/gone"); err != ErrNoEnt {
			t.Fatalf("re-unlink: %v", err)
		}
		if err := p.Unlink("/nowhere/x"); err != ErrNoEnt {
			t.Fatalf("unlink unmounted path: %v", err)
		}
	})
}

func TestMountLongestPrefixWins(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRunTime = 10 * sim.Second
	k := New(cfg)
	outer := &memFS{files: map[string]*memFile{}}
	inner := &memFS{files: map[string]*memFile{}}
	k.Mount("/m", outer)
	k.Mount("/m/sub", inner)
	runFD(t, k, func(p *Proc) {
		fd, err := p.Open("/m/sub/file", OCreat|OWrOnly)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = p.Write(fd, []byte("inner"))
		_ = p.Close(fd)
	})
	if _, ok := inner.files["/file"]; !ok {
		t.Fatal("longest-prefix mount not selected")
	}
	if len(outer.files) != 0 {
		t.Fatal("outer filesystem touched")
	}
}

func TestReadWriteChargeCopyTime(t *testing.T) {
	k, _ := newFDRig()
	var readTime, baseline sim.Duration
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/x", OCreat|ORdWr)
		_, _ = p.Write(fd, make([]byte, 65536))
		_, _ = p.Lseek(fd, 0, SeekSet)
		base0 := p.SysTime()
		_, _ = p.Lseek(fd, 0, SeekSet)
		baseline = p.SysTime() - base0 // one syscall's worth
		t0 := p.SysTime()
		_, _ = p.Read(fd, make([]byte, 65536))
		readTime = p.SysTime() - t0
	})
	// A 64KB read must cost far more than a data-less syscall: the
	// copyout dominates.
	if readTime < 10*baseline {
		t.Fatalf("64KB read cost %v vs %v baseline; copy not charged", readTime, baseline)
	}
}

func TestExitClosesDescriptors(t *testing.T) {
	k, fsys := newFDRig()
	runFD(t, k, func(p *Proc) {
		_, _ = p.Open("/m/left-open", OCreat|OWrOnly)
		// exit without closing
	})
	if !fsys.files["/left-open"].closed {
		t.Fatal("descriptor not closed at process exit")
	}
}

func TestFsyncReachesFile(t *testing.T) {
	k, fsys := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/x", OCreat|OWrOnly)
		if err := p.Fsync(fd); err != nil {
			t.Fatal(err)
		}
	})
	if fsys.files["/x"].syncs != 1 {
		t.Fatal("fsync not forwarded")
	}
}

func TestFileSizeSyscall(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/x", OCreat|ORdWr)
		_, _ = p.Write(fd, make([]byte, 1234))
		sz, err := p.FileSize(fd)
		if err != nil || sz != 1234 {
			t.Fatalf("size = %d err=%v", sz, err)
		}
	})
}
