package kernel

import (
	"fmt"

	"kdp/internal/sim"
)

// Scheduling priorities, straight out of 4.3BSD. Numerically lower is
// more urgent. Sleeps at priority below PZERO are uninterruptible by
// signals.
const (
	PSWP   = 0
	PINOD  = 10
	PRIBIO = 20
	PSOCK  = 24
	PZERO  = 25
	PWAIT  = 30
	PSLEP  = 40
	PUSER  = 50
)

// ProcState enumerates the lifecycle states of a simulated process.
type ProcState int

// Process states.
const (
	ProcEmbryo   ProcState = iota // created, never run
	ProcRunnable                  // on the run queue
	ProcRunning                   // currently owns the CPU
	ProcSleeping                  // blocked on a wait channel
	ProcExited                    // terminated
)

func (s ProcState) String() string {
	switch s {
	case ProcEmbryo:
		return "embryo"
	case ProcRunnable:
		return "runnable"
	case ProcRunning:
		return "running"
	case ProcSleeping:
		return "sleeping"
	case ProcExited:
		return "exited"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// reqKind identifies why a process goroutine parked.
type reqKind int

const (
	reqNone  reqKind = iota
	reqUse           // charge CPU time (possibly preemptible)
	reqSleep         // block on wchan
	reqYield         // voluntarily give up the CPU
	reqExit          // terminate
)

// ErrIntr is returned by interruptible sleeps broken by a signal, in
// the spirit of EINTR.
var ErrIntr = errorString("interrupted system call")

type errorString string

func (e errorString) Error() string { return string(e) }

// Proc is a simulated process. Its body runs on a dedicated goroutine,
// but only one goroutine (either the kernel's Run loop or exactly one
// process body) is ever executing at a time: the body parks at every
// point where virtual time must advance or the process must block, and
// the kernel decides when it resumes. This makes the simulation
// deterministic while letting process code read like a normal program.
type Proc struct {
	k    *Kernel
	pid  int
	name string

	state    ProcState
	pri      int // current sleep/run priority
	basePri  int // priority when computing in user mode
	wchan    any // sleep channel when state == ProcSleeping
	wakeErr  error
	sleepSig bool // sleeping interruptibly

	// park/resume handshake
	resume chan struct{}
	parked chan struct{}
	req    reqKind

	// pending CPU-use request
	useRem    sim.Duration
	useKernel bool

	// pending sleep request
	sleepPri int

	// signals
	sigPending uint32
	sigHandler [numSig]func(*Proc, Signal)
	itimer     *itimer

	// file descriptors
	fds []*FDesc

	// exit hooks (address-space teardown), run LIFO in process
	// context before descriptor teardown
	atExit []func(*Proc)

	// accounting
	utime sim.Duration // user-mode CPU consumed
	stime sim.Duration // kernel-mode CPU consumed
	nsys  int64        // syscall count
	nvcsw int64        // voluntary context switches (blocked)
	nicsw int64        // involuntary context switches (preempted)

	exited   chan struct{} // closed when the body returns
	body     func(*Proc)
	panicVal any // panic recovered from the body, re-raised by the kernel
}

// Pid returns the process id.
func (p *Proc) Pid() int { return p.pid }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// State returns the current lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Kernel returns the kernel this process runs under.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() sim.Time { return p.k.engine.Now() }

// UserTime returns the user-mode CPU time this process has consumed.
func (p *Proc) UserTime() sim.Duration { return p.utime }

// SysTime returns the kernel-mode CPU time this process has consumed.
func (p *Proc) SysTime() sim.Duration { return p.stime }

// Syscalls returns the number of system calls the process has made.
func (p *Proc) Syscalls() int64 { return p.nsys }

// ContextSwitches returns (voluntary, involuntary) context switch
// counts.
func (p *Proc) ContextSwitches() (voluntary, involuntary int64) {
	return p.nvcsw, p.nicsw
}

// park hands control back to the kernel loop and blocks until the
// kernel resumes this process.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Use charges d of CPU time to the process. Kernel-mode time is not
// preemptible by the scheduler (interrupts still steal time); user-mode
// time is subject to round-robin preemption and priority preemption on
// wakeup. Use returns only after the full duration has been charged.
func (p *Proc) Use(d sim.Duration, kernelMode bool) {
	if d <= 0 {
		return
	}
	p.assertRunning("Use")
	p.useRem = d
	p.useKernel = kernelMode
	p.req = reqUse
	p.park()
}

// UseK charges kernel-mode (non-preemptible) CPU time.
func (p *Proc) UseK(d sim.Duration) { p.Use(d, true) }

// Compute charges user-mode CPU time; this is how workloads model
// computation.
func (p *Proc) Compute(d sim.Duration) { p.Use(d, false) }

// Sleep blocks the process on wchan at the given priority until another
// context calls Kernel.Wakeup(wchan). Sleeps at priority above PZERO
// are interruptible: a posted signal breaks the sleep and Sleep returns
// ErrIntr. Mirrors 4.3BSD sleep().
func (p *Proc) Sleep(wchan any, pri int) error {
	if wchan == nil {
		panic("kernel: Sleep on nil wchan")
	}
	p.assertRunning("Sleep")
	if pri > PZERO {
		if p.sigPending != 0 {
			return ErrIntr
		}
		// Fault site: a signal arriving exactly as the process commits
		// to an interruptible sleep. Firing posts a real SIGIO so the
		// caller's handler loop observes a pending signal, then breaks
		// the sleep the way psignal would have.
		if p.k.faults.Hit(SiteSleepSignal, int64(p.pid)) {
			p.k.Post(p, SIGIO)
			return ErrIntr
		}
	}
	p.wchan = wchan
	p.sleepPri = pri
	p.sleepSig = pri > PZERO
	p.wakeErr = nil
	p.req = reqSleep
	p.park()
	return p.wakeErr
}

// Yield gives up the CPU voluntarily; the process goes to the tail of
// the run queue.
func (p *Proc) Yield() {
	p.assertRunning("Yield")
	p.req = reqYield
	p.park()
}

// SleepFor blocks the process for the given virtual duration using the
// callout list (like tsleep with a timeout and no wakeup).
func (p *Proc) SleepFor(d sim.Duration) {
	ch := new(int)
	k := p.k
	ticks := k.DurationToTicks(d)
	k.Timeout(func() { k.Wakeup(ch) }, ticks)
	// Uninterruptible: purely a timing primitive.
	_ = p.Sleep(ch, PSLEP-30) // below PZERO: not signal-interruptible
}

// AtExit registers fn to run when the process exits, in process
// context (it may sleep), before descriptor teardown. Hooks run in
// LIFO order. The VM layer uses this to release leftover mappings so
// a process cannot leak page frames or inode references.
func (p *Proc) AtExit(fn func(*Proc)) {
	p.atExit = append(p.atExit, fn)
}

// runAtExit invokes registered exit hooks LIFO, from the process's own
// goroutine.
func (p *Proc) runAtExit() {
	for i := len(p.atExit) - 1; i >= 0; i-- {
		p.atExit[i](p)
	}
	p.atExit = nil
}

// exit terminates the process from inside its own goroutine.
func (p *Proc) exitSelf() {
	p.req = reqExit
	p.parked <- struct{}{}
	// never resumed
}

func (p *Proc) assertRunning(op string) {
	if p.k.current != p {
		panic(fmt.Sprintf("kernel: %s called on proc %q which is not current (state %v)", op, p.name, p.state))
	}
}

// Ctx is the execution-context abstraction shared by process context
// and interrupt context. Buffer-cache and driver code takes a Ctx so
// the same functions can be called from a system call (may sleep) or
// from an interrupt/callout handler (must not sleep) — the distinction
// the paper's modified bread/getblk exist to manage.
type Ctx interface {
	// Kern returns the kernel.
	Kern() *Kernel
	// Use charges kernel-mode CPU time to this context.
	Use(d sim.Duration)
	// CanSleep reports whether this context may block.
	CanSleep() bool
	// Sleep blocks on wchan (only when CanSleep). pri follows the BSD
	// convention.
	Sleep(wchan any, pri int) error
}

// procCtx adapts Proc to Ctx (kernel-mode charging).
type procCtx struct{ p *Proc }

func (c procCtx) Kern() *Kernel                  { return c.p.k }
func (c procCtx) Use(d sim.Duration)             { c.p.UseK(d) }
func (c procCtx) CanSleep() bool                 { return true }
func (c procCtx) Sleep(wchan any, pri int) error { return c.p.Sleep(wchan, pri) }

// Ctx returns the process's kernel execution context.
func (p *Proc) Ctx() Ctx { return procCtx{p} }

// nbCtx is the nonblocking process context: CPU time is charged to the
// process as usual, but the object must not block indefinitely —
// pollable objects observe CanSleep() == false and return ErrWouldBlock
// (or a partial count) instead. Used by the descriptor layer when
// ONonblock is set on a pollable descriptor.
type nbCtx struct{ p *Proc }

func (c nbCtx) Kern() *Kernel      { return c.p.k }
func (c nbCtx) Use(d sim.Duration) { c.p.UseK(d) }
func (c nbCtx) CanSleep() bool     { return false }
func (c nbCtx) Sleep(wchan any, pri int) error {
	panic("kernel: sleep attempted in nonblocking context")
}

// NBCtx returns the process's nonblocking kernel execution context.
func (p *Proc) NBCtx() Ctx { return nbCtx{p} }

// intrCtx is the interrupt-level execution context: time is stolen from
// whatever was running, and sleeping is forbidden.
type intrCtx struct{ k *Kernel }

func (c intrCtx) Kern() *Kernel      { return c.k }
func (c intrCtx) Use(d sim.Duration) { c.k.StealCPU(d) }
func (c intrCtx) CanSleep() bool     { return false }
func (c intrCtx) Sleep(wchan any, pri int) error {
	panic("kernel: sleep attempted at interrupt level")
}

// IntrCtx returns the kernel's interrupt-level context.
func (k *Kernel) IntrCtx() Ctx { return intrCtx{k} }
