package kernel

import (
	"kdp/internal/sim"
	"kdp/internal/trace"
)

// Signal identifies a UNIX-style signal. Only the signals the paper's
// interface needs are modelled.
type Signal int

// Supported signals.
const (
	SIGIO   Signal = 1 // asynchronous I/O completion (splice with FASYNC)
	SIGALRM Signal = 2 // interval timer expiry
	numSig         = 3
)

func (s Signal) String() string {
	switch s {
	case SIGIO:
		return "SIGIO"
	case SIGALRM:
		return "SIGALRM"
	default:
		return "SIG?"
	}
}

// SetSignalHandler installs fn as the handler for sig; nil restores the
// default (ignore). Handlers run in process context when the process is
// about to return to user mode or is woken from an interruptible sleep.
func (p *Proc) SetSignalHandler(sig Signal, fn func(*Proc, Signal)) {
	if sig <= 0 || sig >= numSig {
		panic("kernel: bad signal")
	}
	p.sigHandler[sig] = fn
}

// SignalPending reports whether sig is pending delivery.
func (p *Proc) SignalPending(sig Signal) bool {
	return p.sigPending&(1<<uint(sig)) != 0
}

// Post delivers sig to p: it is marked pending, and if p is blocked in
// an interruptible sleep the sleep is broken with ErrIntr. Mirrors
// psignal(). Safe to call from interrupt context.
func (k *Kernel) Post(p *Proc, sig Signal) {
	if p.state == ProcExited {
		return
	}
	p.sigPending |= 1 << uint(sig)
	k.TraceEmit(trace.KindSignalPost, p.pid, int64(sig), 0, sig.String())
	if p.state == ProcSleeping && p.sleepSig {
		k.unsleep(p)
		p.wakeErr = ErrIntr
		k.makeRunnable(p, p.sleepPri)
	}
}

// deliverSignals runs pending handlers in process context. Called by
// the scheduler when p transitions to user mode.
func (k *Kernel) deliverSignals(p *Proc) {
	for sig := Signal(1); sig < numSig; sig++ {
		bit := uint32(1) << uint(sig)
		if p.sigPending&bit == 0 {
			continue
		}
		p.sigPending &^= bit
		k.TraceEmit(trace.KindSignalDeliver, p.pid, int64(sig), 0, sig.String())
		if h := p.sigHandler[sig]; h != nil {
			h(p, sig)
		}
	}
}

// DeliverSignals runs any pending signal handlers in process context,
// as happens on return to user mode. Harness code that loops around
// interruptible sleeps calls this to consume signals (otherwise a
// pending signal would break every subsequent interruptible sleep).
func (p *Proc) DeliverSignals() {
	p.assertRunning("DeliverSignals")
	p.k.deliverSignals(p)
}

// Pause blocks the process until a signal is delivered, like pause(2).
// Pending handlers run before Pause returns.
func (p *Proc) Pause() {
	defer p.SyscallExit(p.SyscallEnter("pause"))
	for p.sigPending == 0 {
		_ = p.Sleep(&p.sigPending, PSLEP) // interruptible: broken by Post
	}
	p.k.deliverSignals(p)
}

// itimer is a per-process interval timer (ITIMER_REAL) delivering
// SIGALRM through the callout list.
type itimer struct {
	p        *Proc
	interval int // ticks; 0 means one-shot
	callout  *Callout
	stopped  bool
}

func (t *itimer) fire(k *Kernel) {
	if t.stopped {
		return
	}
	k.Post(t.p, SIGALRM)
	if t.interval > 0 {
		t.callout = k.Timeout(func() { t.fire(k) }, t.interval)
	}
}

func (t *itimer) stop(k *Kernel) {
	t.stopped = true
	if t.callout != nil {
		k.Untimeout(t.callout)
		t.callout = nil
	}
}

// SetITimer arms (or with zero durations, disarms) the process's real
// interval timer: the first SIGALRM after value, then one every
// interval. Granularity is the clock tick, as on the real system.
func (p *Proc) SetITimer(value, interval sim.Duration) {
	defer p.SyscallExit(p.SyscallEnter("setitimer"))
	k := p.k
	if p.itimer != nil {
		p.itimer.stop(k)
		p.itimer = nil
	}
	if value <= 0 && interval <= 0 {
		return
	}
	t := &itimer{p: p, interval: k.DurationToTicks(interval)}
	first := k.DurationToTicks(value)
	if first <= 0 {
		first = 1
	}
	t.callout = k.Timeout(func() { t.fire(k) }, first)
	p.itimer = t
}
