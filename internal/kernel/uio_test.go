package kernel

import (
	"bytes"
	"math"
	"testing"

	"kdp/internal/sim"
	"kdp/internal/trace"
)

// flakyFile fails the Nth read or write call (1-based), modelling a
// copy fault striking partway through a vectored transfer.
type flakyFile struct {
	data        []byte
	reads       int
	writes      int
	failReadAt  int // 0 = never
	failWriteAt int
}

func (f *flakyFile) Read(ctx Ctx, b []byte, off int64) (int, error) {
	f.reads++
	if f.failReadAt != 0 && f.reads == f.failReadAt {
		return 0, ErrIO
	}
	if off >= int64(len(f.data)) {
		return 0, nil
	}
	return copy(b, f.data[off:]), nil
}

func (f *flakyFile) Write(ctx Ctx, b []byte, off int64) (int, error) {
	f.writes++
	if f.failWriteAt != 0 && f.writes == f.failWriteAt {
		return 0, ErrIO
	}
	need := off + int64(len(b))
	if int64(len(f.data)) < need {
		grown := make([]byte, need)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], b)
	return len(b), nil
}

func (f *flakyFile) Size(ctx Ctx) (int64, error) { return int64(len(f.data)), nil }
func (f *flakyFile) Sync(ctx Ctx) error          { return nil }
func (f *flakyFile) Close(ctx Ctx) error         { return nil }

func TestReadvWritevSingleCrossing(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, err := p.Open("/m/v", OCreat|ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		iovs := [][]byte{[]byte("alpha-"), []byte("beta-"), []byte("gamma")}
		want := []byte("alpha-beta-gamma")
		sys0 := p.Syscalls()
		n, err := p.Writev(fd, iovs)
		if err != nil || n != len(want) {
			t.Fatalf("writev: n=%d err=%v", n, err)
		}
		if got := p.Syscalls() - sys0; got != 1 {
			t.Fatalf("writev crossed %d times, want 1", got)
		}
		if _, err := p.Lseek(fd, 0, SeekSet); err != nil {
			t.Fatal(err)
		}
		dst := [][]byte{make([]byte, 4), make([]byte, 7), make([]byte, 5)}
		sys0 = p.Syscalls()
		n, err = p.Readv(fd, dst)
		if err != nil || n != len(want) {
			t.Fatalf("readv: n=%d err=%v", n, err)
		}
		if got := p.Syscalls() - sys0; got != 1 {
			t.Fatalf("readv crossed %d times, want 1", got)
		}
		if got := (Uio{Iovs: dst}).Gather(); !bytes.Equal(got, want) {
			t.Fatalf("readv scattered %q, want %q", got, want)
		}
		// Both calls advanced the shared offset past EOF.
		if n, _ := p.Read(fd, make([]byte, 4)); n != 0 {
			t.Fatalf("offset not advanced: follow-up read got %d bytes", n)
		}
	})
}

func TestReadvShortAtEOFAndEmptyIovecs(t *testing.T) {
	k, fsys := newFDRig()
	fsys.files["/short"] = &memFile{data: []byte("0123456789")}
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/short", ORdOnly)
		iovs := [][]byte{make([]byte, 4), nil, make([]byte, 4), make([]byte, 8)}
		n, err := p.Readv(fd, iovs)
		if err != nil || n != 10 {
			t.Fatalf("readv: n=%d err=%v, want 10", n, err)
		}
		if got := (Uio{Iovs: iovs}).Gather()[:n]; string(got) != "0123456789" {
			t.Fatalf("readv got %q", got)
		}
	})
}

func TestVectoredAccessModeChecks(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		if _, err := p.Readv(99, [][]byte{make([]byte, 1)}); err != ErrBadFD {
			t.Fatalf("readv bad fd: %v", err)
		}
		if _, err := p.Writev(99, [][]byte{make([]byte, 1)}); err != ErrBadFD {
			t.Fatalf("writev bad fd: %v", err)
		}
		w, _ := p.Open("/m/w", OCreat|OWrOnly)
		if _, err := p.Readv(w, [][]byte{make([]byte, 1)}); err != ErrBadFD {
			t.Fatalf("readv on write-only: %v", err)
		}
		_, _ = p.Writev(w, [][]byte{[]byte("x")})
		_ = p.Close(w)
		r, _ := p.Open("/m/w", ORdOnly)
		if _, err := p.Writev(r, [][]byte{[]byte("y")}); err != ErrBadFD {
			t.Fatalf("writev on read-only: %v", err)
		}
	})
}

// TestVectoredPartialProgressLatchesError pins the 4.3BSD semantics: a
// fault striking after part of the vector has transferred makes the
// call report its progress, and the error surfaces on the next
// operation on the descriptor — visible through PendingError without
// being consumed.
func TestVectoredPartialProgressLatchesError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRunTime = 60 * sim.Second
	k := New(cfg)
	ff := &flakyFile{data: []byte("0123456789abcdef"), failReadAt: 2}
	runFD(t, k, func(p *Proc) {
		fd := p.InstallFile(ff, ORdWr)
		iovs := [][]byte{make([]byte, 4), make([]byte, 4)}
		n, err := p.Readv(fd, iovs)
		if err != nil || n != 4 {
			t.Fatalf("readv across fault: n=%d err=%v, want 4, nil", n, err)
		}
		if perr := p.PendingError(fd); perr != ErrIO {
			t.Fatalf("PendingError = %v, want ErrIO", perr)
		}
		// The latch survives observation and fires exactly once.
		if _, err := p.Read(fd, make([]byte, 4)); err != ErrIO {
			t.Fatalf("latched error not surfaced: %v", err)
		}
		if perr := p.PendingError(fd); perr != nil {
			t.Fatalf("latch not consumed: %v", perr)
		}
		if _, err := p.Read(fd, make([]byte, 4)); err != nil {
			t.Fatalf("read after latch consumed: %v", err)
		}

		// Write side: first iovec lands, the second faults.
		ff.failWriteAt = 2
		wn, werr := p.Writev(fd, [][]byte{[]byte("AAAA"), []byte("BBBB")})
		if werr != nil || wn != 4 {
			t.Fatalf("writev across fault: n=%d err=%v, want 4, nil", wn, werr)
		}
		if _, err := p.Write(fd, []byte("CC")); err != ErrIO {
			t.Fatalf("latched write error not surfaced: %v", err)
		}
	})
	if p := k.PendingCallouts(); p != 0 {
		t.Fatalf("callouts leaked: %d", p)
	}
}

// TestVectoredErrorBeforeProgress: a fault before any byte moves is
// returned immediately, with nothing latched.
func TestVectoredErrorBeforeProgress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRunTime = 60 * sim.Second
	k := New(cfg)
	ff := &flakyFile{data: []byte("0123"), failReadAt: 1}
	runFD(t, k, func(p *Proc) {
		fd := p.InstallFile(ff, ORdOnly)
		if _, err := p.Readv(fd, [][]byte{make([]byte, 2)}); err != ErrIO {
			t.Fatalf("readv with up-front fault: %v, want ErrIO", err)
		}
		if perr := p.PendingError(fd); perr != nil {
			t.Fatalf("error latched despite zero progress: %v", perr)
		}
	})
}

func TestSubmitBatchSingleCrossing(t *testing.T) {
	k, fsys := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/b", OCreat|ORdWr)
		r1 := make([]byte, 6)
		sys0 := p.Syscalls()
		res := p.Submit([]BatchOp{
			{Code: BatchWrite, FD: fd, Buf: []byte("hello ")},
			{Code: BatchWrite, FD: fd, Buf: []byte("batch")},
			{Code: BatchLseek, FD: fd, Off: 0, Whence: SeekSet},
			{Code: BatchRead, FD: fd, Buf: r1},
			{Code: BatchFsync, FD: fd},
		})
		if got := p.Syscalls() - sys0; got != 1 {
			t.Fatalf("batch crossed %d times, want 1", got)
		}
		if len(res) != 5 {
			t.Fatalf("results = %d, want one per op", len(res))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("op %d: %v", i, r.Err)
			}
		}
		// Program order per fd: writes landed back to back, the lseek
		// rewound, the read sees the first write's bytes.
		if res[0].N != 6 || res[1].N != 5 || res[2].N != 0 || res[3].N != 6 {
			t.Fatalf("counts = %+v", res)
		}
		if string(r1) != "hello " {
			t.Fatalf("batched read got %q", r1)
		}
	})
	if fsys.files["/b"].syncs != 1 {
		t.Fatal("batched fsync not forwarded")
	}
}

// TestSubmitPerOpErrors: one op failing does not abort the batch, and
// every op still gets a result slot.
func TestSubmitPerOpErrors(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/e", OCreat|ORdWr)
		res := p.Submit([]BatchOp{
			{Code: BatchRead, FD: 77, Buf: make([]byte, 4)},  // bad fd
			{Code: BatchWrite, FD: fd, Buf: []byte("still")}, // must run
			{Code: BatchLseek, FD: fd, Off: -99, Whence: SeekSet},
			{Code: BatchLseek, FD: fd, Off: 0, Whence: 42},
			{Code: 99, FD: fd}, // unknown op code
		})
		if len(res) != 5 {
			t.Fatalf("results = %d, want 5", len(res))
		}
		if res[0].Err != ErrBadFD {
			t.Fatalf("bad-fd op: %v", res[0].Err)
		}
		if res[1].Err != nil || res[1].N != 5 {
			t.Fatalf("op after failure: n=%d err=%v", res[1].N, res[1].Err)
		}
		if res[2].Err != ErrInval || res[3].Err != ErrInval || res[4].Err != ErrInval {
			t.Fatalf("errno results = %+v", res[2:])
		}
		// The rejected negative lseek must not have moved the offset
		// set by the successful write.
		if off, _ := p.Lseek(fd, 0, SeekCur); off != 5 {
			t.Fatalf("offset after rejected batched lseek = %d, want 5", off)
		}
		// An empty batch still pays its crossing but emits nothing.
		if res := p.Submit(nil); len(res) != 0 {
			t.Fatalf("empty batch returned %d results", len(res))
		}
	})
}

func TestBatchTraceCounters(t *testing.T) {
	k, _ := newFDRig()
	tr := k.StartTrace(nil)
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/c", OCreat|ORdWr)
		p.Submit([]BatchOp{
			{Code: BatchWrite, FD: fd, Buf: []byte("aa")},
			{Code: BatchWrite, FD: fd, Buf: []byte("bb")},
			{Code: BatchLseek, FD: fd, Off: 0, Whence: SeekSet},
		})
		_, _ = p.Readv(fd, [][]byte{make([]byte, 2), make([]byte, 2)})
		// Single-segment vectors save nothing and must not emit.
		_, _ = p.Writev(fd, [][]byte{[]byte("x")})
	})
	m := tr.Metrics()
	if m.BatchOps != 5 { // 3 batched + 2 readv segments
		t.Fatalf("sys.batch_ops = %d, want 5", m.BatchOps)
	}
	if m.BatchCrossingsSaved != 3 { // (3-1) + (2-1)
		t.Fatalf("sys.batch_crossings_saved = %d, want 3", m.BatchCrossingsSaved)
	}
	if n := m.EventCount[trace.KindKernelBatch]; n != 2 {
		t.Fatalf("kernel.batch events = %d, want 2", n)
	}
}

// TestPollEmptySetFiniteTimeout is the regression test for the
// empty-set sleep: with nothing to watch and a finite timeout, poll
// must block for the whole timeout (not return immediately), then
// return 0 with its callout gone.
func TestPollEmptySetFiniteTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRunTime = 60 * sim.Second
	k := New(cfg)
	tick := sim.Second / sim.Duration(cfg.HZ)
	baseline := k.PendingCallouts()
	runFD(t, k, func(p *Proc) {
		t0 := p.Now()
		n, err := p.Poll(nil, 50)
		if err != nil || n != 0 {
			t.Fatalf("poll(empty, 50) = %d, %v", n, err)
		}
		elapsed := p.Now().Sub(t0)
		if elapsed < 49*tick || elapsed > 52*tick {
			t.Fatalf("poll slept %v, want ~%v", elapsed, 50*tick)
		}
		if got := k.PendingCallouts(); got != baseline {
			t.Fatalf("callouts after poll = %d, want baseline %d", got, baseline)
		}
	})
	if got := k.PendingCallouts(); got != baseline {
		t.Fatalf("callouts leaked: %d vs baseline %d", k.PendingCallouts(), baseline)
	}
}

// TestPollEmptySetSignalInterruptible: a signal posted mid-sleep breaks
// the empty-set poll early with ErrIntr, and the early wakeup still
// untimeouts the callout (no leak for the remaining ticks to fire on).
func TestPollEmptySetSignalInterruptible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRunTime = 60 * sim.Second
	k := New(cfg)
	tick := sim.Second / sim.Duration(cfg.HZ)
	baseline := k.PendingCallouts()
	var poller *Proc
	k.Spawn("poller", func(p *Proc) {
		poller = p
		t0 := p.Now()
		n, err := p.Poll(nil, 1000) // 10s: far beyond the signal
		if err != ErrIntr || n != 0 {
			t.Errorf("interrupted poll = %d, %v, want 0, ErrIntr", n, err)
		}
		if elapsed := p.Now().Sub(t0); elapsed > 200*tick {
			t.Errorf("poll not broken early: slept %v", elapsed)
		}
		if got := k.PendingCallouts(); got != baseline {
			t.Errorf("callout leaked after early wakeup: %d vs %d", got, baseline)
		}
	})
	k.Spawn("signaller", func(p *Proc) {
		p.SleepFor(100 * sim.Millisecond)
		k.Post(poller, SIGALRM)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k.PendingCallouts(); got != baseline {
		t.Fatalf("callouts leaked: %d vs baseline %d", got, baseline)
	}
}

// TestLseekRejectsNegativeOffsets drives whence × offset combinations
// that resolve to a negative position — including two's-complement
// overflow — and checks EINVAL comes back with the saved offset
// untouched.
func TestLseekRejectsNegativeOffsets(t *testing.T) {
	k, fsys := newFDRig()
	fsys.files["/t"] = &memFile{data: make([]byte, 100)}
	cases := []struct {
		name   string
		whence int
		off    int64
	}{
		{"set-negative", SeekSet, -1},
		{"set-min", SeekSet, math.MinInt64},
		{"cur-underflow", SeekCur, -11},
		{"cur-min-overflow", SeekCur, math.MinInt64},
		{"cur-max-overflow", SeekCur, math.MaxInt64},
		{"end-underflow", SeekEnd, -101},
		{"end-min-overflow", SeekEnd, math.MinInt64},
		{"end-max-overflow", SeekEnd, math.MaxInt64},
	}
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/t", ORdWr)
		const saved = 10
		if _, err := p.Lseek(fd, saved, SeekSet); err != nil {
			t.Fatal(err)
		}
		for _, tc := range cases {
			if _, err := p.Lseek(fd, tc.off, tc.whence); err != ErrInval {
				t.Errorf("%s: lseek(%d, %d) = %v, want ErrInval", tc.name, tc.off, tc.whence, err)
			}
			if off, err := p.Lseek(fd, 0, SeekCur); err != nil || off != saved {
				t.Errorf("%s: saved offset mutated: %d, %v", tc.name, off, err)
			}
		}
	})
}

// stubVM is a minimal AddressSpaceProvider: flat per-mapping buffers,
// with an optional fault armed N bytes into any access — the mapped
// iovec whose copy dies partway.
type stubVM struct {
	mem     map[int64][]byte
	faultAt int // 0 = never; else fault after faultAt bytes
}

func (v *stubVM) Mmap(p *Proc, fd int, off, length int64, prot, flags int) (int64, error) {
	addr := int64(0x10000 * (len(v.mem) + 1))
	v.mem[addr] = make([]byte, length)
	return addr, nil
}

func (v *stubVM) Munmap(p *Proc, addr int64) error {
	if _, ok := v.mem[addr]; !ok {
		return ErrInval
	}
	delete(v.mem, addr)
	return nil
}

func (v *stubVM) Msync(p *Proc, addr int64) error { return nil }

func (v *stubVM) MemRead(p *Proc, addr int64, dst []byte) error {
	m, ok := v.mem[addr]
	if !ok {
		return ErrInval
	}
	if v.faultAt > 0 && len(dst) > v.faultAt {
		copy(dst[:v.faultAt], m)
		return ErrIO
	}
	copy(dst, m)
	return nil
}

func (v *stubVM) MemWrite(p *Proc, addr int64, src []byte) error {
	m, ok := v.mem[addr]
	if !ok {
		return ErrInval
	}
	if v.faultAt > 0 && len(src) > v.faultAt {
		copy(m, src[:v.faultAt])
		return ErrIO
	}
	copy(m, src)
	return nil
}

// TestMappedIovecCopyFault models an iovec living in mapped memory: the
// gather loads it with MemRead before the writev, and a fault partway
// through the copy leaves only the prefix — the writev then carries
// exactly the bytes that survived, and the failure is the user's to
// observe, not silently swallowed.
func TestMappedIovecCopyFault(t *testing.T) {
	k, _ := newFDRig()
	vm := &stubVM{mem: map[int64][]byte{}}
	k.SetVM(vm)
	runFD(t, k, func(p *Proc) {
		fd, _ := p.Open("/m/mapped", OCreat|ORdWr)
		addr, err := p.Mmap(fd, 0, 8, ProtRead|ProtWrite, MapShared)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := p.MemWrite(addr, []byte("ABCDEFGH")); err != nil {
			t.Fatalf("store to mapping: %v", err)
		}
		// Healthy gather: both iovecs load, the writev moves all 12.
		iov0 := make([]byte, 8)
		if err := p.MemRead(addr, iov0); err != nil {
			t.Fatalf("load mapped iovec: %v", err)
		}
		n, err := p.Writev(fd, [][]byte{iov0, []byte("TAIL")})
		if err != nil || n != 12 {
			t.Fatalf("writev of mapped iovec: n=%d err=%v", n, err)
		}
		// Faulting gather: the load dies 4 bytes in; the prefix is all
		// that may be handed to the writev.
		vm.faultAt = 4
		iov1 := make([]byte, 8)
		ferr := p.MemRead(addr, iov1)
		if ferr != ErrIO {
			t.Fatalf("partial mapped load = %v, want ErrIO", ferr)
		}
		if string(iov1[:4]) != "ABCD" || iov1[4] != 0 {
			t.Fatalf("fault did not preserve the prefix: %q", iov1)
		}
		// Partial store fault through the mapped side.
		if err := p.MemWrite(addr, []byte("ZZZZZZZZ")); err != ErrIO {
			t.Fatalf("partial mapped store = %v, want ErrIO", err)
		}
		got := make([]byte, 8)
		vm.faultAt = 0
		if err := p.MemRead(addr, got); err != nil {
			t.Fatalf("reload: %v", err)
		}
		if string(got) != "ZZZZEFGH" {
			t.Fatalf("partial store wrote %q, want prefix only", got)
		}
		if err := p.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
	})
}

// TestMemAccessWithoutVMProvider: a kernel built without VM refuses the
// whole mmap surface with ErrOpNotSupp, MemRead/MemWrite included.
func TestMemAccessWithoutVMProvider(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		if _, err := p.Mmap(0, 0, 8, ProtRead, MapShared); err != ErrOpNotSupp {
			t.Fatalf("mmap without vm: %v", err)
		}
		if err := p.MemRead(0x1000, make([]byte, 4)); err != ErrOpNotSupp {
			t.Fatalf("memread without vm: %v", err)
		}
		if err := p.MemWrite(0x1000, make([]byte, 4)); err != ErrOpNotSupp {
			t.Fatalf("memwrite without vm: %v", err)
		}
	})
}
