package kernel

import (
	"testing"

	"kdp/internal/sim"
)

// ---- FaultPlan registry semantics ----

func TestFaultArmKthOccurrence(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	fp.Arm(FaultArm{Site: "t.site", K: 3, Match: MatchAny})
	var fires []int64
	for i := int64(1); i <= 6; i++ {
		if fp.Hit("t.site", i*10) {
			fires = append(fires, i)
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("K=3 fired at occurrences %v, want [3]", fires)
	}
	if fp.Seen("t.site") != 6 {
		t.Fatalf("census = %d, want 6", fp.Seen("t.site"))
	}
	if fp.Fired("t.site") != 1 {
		t.Fatalf("fires = %d, want 1", fp.Fired("t.site"))
	}
}

func TestFaultArmEveryNWithCount(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	fp.Arm(FaultArm{Site: "t.every", Every: 2, Match: MatchAny, Count: 2})
	var fires []int
	for i := 1; i <= 10; i++ {
		if fp.Hit("t.every", 0) {
			fires = append(fires, i)
		}
	}
	// Fires at occurrences 2 and 4, then the count is exhausted.
	if len(fires) != 2 || fires[0] != 2 || fires[1] != 4 {
		t.Fatalf("Every=2 Count=2 fired at %v, want [2 4]", fires)
	}
}

func TestFaultArmUnlimitedCount(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	fp.Arm(FaultArm{Site: "t.unl", Every: 3, Match: MatchAny, Count: -1})
	n := 0
	for i := 0; i < 30; i++ {
		if fp.Hit("t.unl", 0) {
			n++
		}
	}
	if n != 10 {
		t.Fatalf("unlimited Every=3 fired %d times over 30 hits, want 10", n)
	}
}

func TestFaultArmMatchFilters(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	a := fp.Arm(FaultArm{Site: "t.match", K: 2, Match: 7})
	// Non-matching occurrences must not advance the arm's count.
	for i := 0; i < 5; i++ {
		if fp.Hit("t.match", 99) {
			t.Fatal("arm fired on a non-matching argument")
		}
	}
	if a.Seen() != 0 {
		t.Fatalf("seen = %d after non-matching hits, want 0", a.Seen())
	}
	if fp.Hit("t.match", 7) {
		t.Fatal("fired on 1st matching occurrence, want 2nd")
	}
	if !fp.Hit("t.match", 7) {
		t.Fatal("did not fire on 2nd matching occurrence")
	}
	// Census counts every hit, matching or not.
	if fp.Seen("t.match") != 7 {
		t.Fatalf("census = %d, want 7", fp.Seen("t.match"))
	}
}

func TestFaultArmZeroCountIsSingleShot(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	fp.Arm(FaultArm{Site: "t.once", Every: 1, Match: MatchAny})
	if !fp.Hit("t.once", 0) {
		t.Fatal("single-shot arm did not fire on first occurrence")
	}
	if fp.Hit("t.once", 0) {
		t.Fatal("single-shot arm fired twice")
	}
}

func TestFaultRemoveDisarms(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	h := fp.Arm(FaultArm{Site: "t.rm", Every: 1, Match: MatchAny, Count: -1})
	if !fp.Hit("t.rm", 0) {
		t.Fatal("armed fault did not fire")
	}
	if !fp.Remove(h) {
		t.Fatal("Remove returned false for an armed handle")
	}
	if fp.Remove(h) {
		t.Fatal("Remove returned true twice for the same handle")
	}
	if fp.Hit("t.rm", 0) {
		t.Fatal("removed arm fired")
	}
	if fp.ArmCount() != 0 {
		t.Fatalf("ArmCount = %d after removal, want 0", fp.ArmCount())
	}
}

func TestFaultTwoArmsOneSite(t *testing.T) {
	// Two arms with different filters count occurrences independently.
	k := testKernel()
	fp := k.Faults()
	a := fp.Arm(FaultArm{Site: "t.two", K: 1, Match: 5})
	b := fp.Arm(FaultArm{Site: "t.two", K: 1, Match: 6})
	fp.Hit("t.two", 6)
	if a.Fired() != 0 || b.Fired() != 1 {
		t.Fatalf("fired = %d/%d after arg-6 hit, want 0/1", a.Fired(), b.Fired())
	}
	fp.Hit("t.two", 5)
	if a.Fired() != 1 {
		t.Fatalf("arm on arg 5 fired %d times, want 1", a.Fired())
	}
}

func TestFaultCensusSorted(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	fp.Hit("z.last", 0)
	fp.Hit("a.first", 0)
	fp.Hit("a.first", 0)
	fp.Hit("m.mid", 0)
	c := fp.Census()
	if len(c) != 3 || c[0].Site != "a.first" || c[1].Site != "m.mid" || c[2].Site != "z.last" {
		t.Fatalf("census order wrong: %v", c)
	}
	if c[0].N != 2 {
		t.Fatalf("a.first count = %d, want 2", c[0].N)
	}
}

func TestFaultOnFireHook(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	var gotSite FaultSite
	var gotArg int64
	fp.OnFire = func(site FaultSite, arg int64) { gotSite, gotArg = site, arg }
	fp.Arm(FaultArm{Site: "t.hook", K: 1, Match: MatchAny})
	fp.Hit("t.hook", 42)
	if gotSite != "t.hook" || gotArg != 42 {
		t.Fatalf("OnFire got (%q, %d), want (t.hook, 42)", gotSite, gotArg)
	}
}

func TestFaultArmValidation(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	mustPanic := func(name string, a FaultArm) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Arm did not panic", name)
			}
		}()
		fp.Arm(a)
	}
	mustPanic("empty site", FaultArm{K: 1})
	mustPanic("no K or Every", FaultArm{Site: "t.bad"})
}

// ---- the kernel's own fault site: signal at interruptible sleep ----

func TestSleepSignalFaultSite(t *testing.T) {
	k := testKernel()
	fp := k.Faults()
	fp.Arm(FaultArm{Site: SiteSleepSignal, K: 1, Match: MatchAny})
	var sleepErr error
	var sawSIGIO bool
	p := k.Spawn("victim", func(p *Proc) {
		ch := new(int)
		sleepErr = p.Sleep(ch, PSLEP) // interruptible; fault fires at entry
		sawSIGIO = p.SignalPending(SIGIO)
		p.DeliverSignals()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sleepErr != ErrIntr {
		t.Fatalf("sleep = %v, want ErrIntr", sleepErr)
	}
	if !sawSIGIO {
		t.Fatal("SIGIO was not pending after the fault fired")
	}
	if fp.Fired(SiteSleepSignal) != 1 {
		t.Fatalf("site fired %d times, want 1", fp.Fired(SiteSleepSignal))
	}
	if p.State() != ProcExited {
		t.Fatalf("proc state = %v", p.State())
	}
}

func TestSleepSignalSiteUninterruptibleNotEligible(t *testing.T) {
	// Sleeps at or below PZERO are not eligible occurrences: disk waits
	// must not be broken by the sleep-signal site.
	k := testKernel()
	fp := k.Faults()
	fp.Arm(FaultArm{Site: SiteSleepSignal, Every: 1, Match: MatchAny, Count: -1})
	var sleepErr error
	k.Spawn("io", func(p *Proc) {
		ch := new(int)
		k.Engine().Schedule(10*sim.Millisecond, "dev", func() { k.Wakeup(ch) })
		sleepErr = p.Sleep(ch, PRIBIO) // uninterruptible
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sleepErr != nil {
		t.Fatalf("uninterruptible sleep = %v, want nil", sleepErr)
	}
}

// ---- batch submission: signal stops the batch at an op boundary ----

// sleepyFile blocks its reader until failed with a signal; reads and
// writes count invocations so the test can prove ops after the
// interrupted one never started.
type sleepyFile struct {
	reads, writes int
	ch            int
}

func (f *sleepyFile) Read(ctx Ctx, b []byte, off int64) (int, error) {
	f.reads++
	for {
		if err := ctx.Sleep(&f.ch, PSLEP); err != nil {
			return 0, err
		}
	}
}
func (f *sleepyFile) Write(ctx Ctx, b []byte, off int64) (int, error) {
	f.writes++
	return len(b), nil
}
func (f *sleepyFile) Size(ctx Ctx) (int64, error) { return 0, nil }
func (f *sleepyFile) Sync(ctx Ctx) error          { return nil }
func (f *sleepyFile) Close(ctx Ctx) error         { return nil }

func TestBatchSignalStopsAtOpBoundary(t *testing.T) {
	k := testKernel()
	sf := &sleepyFile{}
	var res []BatchResult
	p := k.Spawn("batcher", func(p *Proc) {
		fd := p.InstallFile(sf, ORdWr)
		buf := make([]byte, 16)
		res = p.Submit([]BatchOp{
			{Code: BatchWrite, FD: fd, Buf: buf}, // completes
			{Code: BatchRead, FD: fd, Buf: buf},  // blocks; signal lands here
			{Code: BatchWrite, FD: fd, Buf: buf}, // must not run
			{Code: BatchLseek, FD: fd, Off: 4, Whence: SeekSet},
		})
		p.DeliverSignals()
	})
	k.Engine().Schedule(20*sim.Millisecond, "sig", func() {
		k.Post(p, SIGALRM)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("res len = %d, want 4", len(res))
	}
	if res[0].Err != nil || res[0].N != 16 {
		t.Fatalf("op0 = {%d %v}, want {16 nil}", res[0].N, res[0].Err)
	}
	if res[1].Err != ErrIntr {
		t.Fatalf("op1 err = %v, want ErrIntr", res[1].Err)
	}
	for i := 2; i < 4; i++ {
		if res[i].Err != ErrIntr {
			t.Fatalf("op%d err = %v, want ErrIntr (not started)", i, res[i].Err)
		}
		if res[i].N != 0 {
			t.Fatalf("op%d N = %d, want 0", i, res[i].N)
		}
	}
	if sf.writes != 1 {
		t.Fatalf("writes = %d, want 1: ops after the interruption ran", sf.writes)
	}
	if sf.reads != 1 {
		t.Fatalf("reads = %d, want 1", sf.reads)
	}
}

// TestBatchSleepSignalFault drives the same boundary through the fault
// plan: arming proc.sleep-signal interrupts the op that sleeps, and the
// batch stops there with ErrIntr latched for the remaining slots.
func TestBatchSleepSignalFault(t *testing.T) {
	k := testKernel()
	k.Faults().Arm(FaultArm{Site: SiteSleepSignal, K: 1, Match: MatchAny})
	sf := &sleepyFile{}
	var res []BatchResult
	k.Spawn("batcher", func(p *Proc) {
		fd := p.InstallFile(sf, ORdWr)
		buf := make([]byte, 8)
		res = p.Submit([]BatchOp{
			{Code: BatchWrite, FD: fd, Buf: buf},
			{Code: BatchRead, FD: fd, Buf: buf},
			{Code: BatchWrite, FD: fd, Buf: buf},
		})
		p.DeliverSignals()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []error{nil, ErrIntr, ErrIntr}
	for i, w := range want {
		if res[i].Err != w {
			t.Fatalf("op%d err = %v, want %v", i, res[i].Err, w)
		}
	}
	if sf.writes != 1 {
		t.Fatalf("writes = %d, want 1", sf.writes)
	}
}
