package kernel

import (
	"errors"
	"testing"

	"kdp/internal/sim"
	"kdp/internal/trace"
)

func TestProcStateString(t *testing.T) {
	for _, tc := range []struct {
		s    ProcState
		want string
	}{
		{ProcEmbryo, "embryo"},
		{ProcRunnable, "runnable"},
		{ProcRunning, "running"},
		{ProcSleeping, "sleeping"},
		{ProcExited, "exited"},
		{ProcState(99), "ProcState(99)"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.s), got, tc.want)
		}
	}
	if ErrIntr.Error() != "interrupted system call" {
		t.Errorf("ErrIntr.Error() = %q", ErrIntr.Error())
	}
	if SIGIO.String() != "SIGIO" || SIGALRM.String() != "SIGALRM" || Signal(9).String() != "SIG?" {
		t.Errorf("signal names wrong: %v %v %v", SIGIO, SIGALRM, Signal(9))
	}
}

func TestProcAccessorsAndYield(t *testing.T) {
	k, _ := newFDRig()
	var order []string
	mk := func(tag string) func(*Proc) {
		return func(p *Proc) {
			if p.Kernel() != k {
				t.Errorf("proc %s: Kernel() mismatch", tag)
			}
			if p.Name() != tag {
				t.Errorf("proc %s: Name() = %q", tag, p.Name())
			}
			if p.Pid() <= 0 {
				t.Errorf("proc %s: Pid() = %d", tag, p.Pid())
			}
			order = append(order, tag)
			p.Yield()
			order = append(order, tag)
			if p.Syscalls() != 0 {
				t.Errorf("proc %s: Syscalls() = %d before any syscall", tag, p.Syscalls())
			}
			if _, err := p.Open("/m/"+tag, OCreat|ORdWr); err != nil {
				t.Errorf("proc %s: open: %v", tag, err)
			}
			if p.Syscalls() != 1 {
				t.Errorf("proc %s: Syscalls() = %d after open", tag, p.Syscalls())
			}
		}
	}
	k.Spawn("a", mk("a"))
	k.Spawn("b", mk("b"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Yield sends each process to the tail of the run queue, so the
	// two bodies interleave around the yield point.
	want := []string{"a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestKernelRandAndTraceLifecycle(t *testing.T) {
	k, _ := newFDRig()
	if k.Rand() == nil {
		t.Fatal("Rand() = nil")
	}
	if k.Tracing() || k.Tracer() != nil {
		t.Fatal("fresh kernel should have no tracer")
	}
	col := &trace.Collector{}
	tr := k.StartTrace(col)
	if !k.Tracing() || k.Tracer() != tr {
		t.Fatal("StartTrace did not install the tracer")
	}
	k.TraceEmit(trace.KindServerReady, 1, 2, 3, "x")
	if len(col.Events) != 1 || col.Events[0].Kind != trace.KindServerReady {
		t.Fatalf("TraceEmit recorded %v", col.Events)
	}
	k.StopTrace()
	if k.Tracing() || k.Tracer() != nil {
		t.Fatal("StopTrace left the tracer installed")
	}
	k.TraceEmit(trace.KindServerReady, 1, 2, 3, "x")
	if len(col.Events) != 1 {
		t.Fatal("TraceEmit recorded an event with no tracer")
	}
}

func TestInvariantsCleanAndAbort(t *testing.T) {
	k, _ := newFDRig()
	probed := 0
	k.SetProbe(func() { probed++ })
	k.Spawn("t", func(p *Proc) {
		if err := k.CheckInvariants(); err != nil {
			t.Errorf("clean kernel: %v", err)
		}
		p.SleepFor(10 * sim.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if probed == 0 {
		t.Error("probe never invoked")
	}
	if err := k.CheckPollDrained(); err != nil {
		t.Errorf("drained kernel: %v", err)
	}

	k2, _ := newFDRig()
	boom := errors.New("boom")
	k2.Spawn("t", func(p *Proc) {
		k2.Abort(boom)
		k2.Abort(errors.New("second")) // first abort wins
		p.Yield()
		t.Error("process ran past abort")
	})
	if err := k2.Run(); err != boom {
		t.Fatalf("Run after Abort = %v, want %v", err, boom)
	}
}

func TestFDescAccessorsAndRelease(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		mf := &memFile{data: []byte("abc")}
		fd := p.InstallFile(mf, ORdWr|OAppend)
		f, err := p.FD(fd)
		if err != nil {
			t.Fatal(err)
		}
		if f.Ops() != FileOps(mf) {
			t.Error("Ops() did not return the installed object")
		}
		if f.Flags() != ORdWr|OAppend {
			t.Errorf("Flags() = %#x", f.Flags())
		}
		if f.Offset() != 0 {
			t.Errorf("Offset() = %d", f.Offset())
		}
		f.Advance(2)
		if f.Offset() != 2 {
			t.Errorf("Offset() after Advance(2) = %d", f.Offset())
		}
		ops, err := p.ReleaseFD(fd)
		if err != nil || ops != FileOps(mf) {
			t.Fatalf("ReleaseFD = %v, %v", ops, err)
		}
		if mf.closed {
			t.Error("ReleaseFD closed the object")
		}
		if _, err := p.FD(fd); err != ErrBadFD {
			t.Errorf("released fd still valid: %v", err)
		}
		if _, err := p.ReleaseFD(fd); err != ErrBadFD {
			t.Errorf("double release: %v", err)
		}
	})
}

func TestRegisterDevStatRename(t *testing.T) {
	k, fsys := newFDRig()
	dev := &memFile{}
	k.RegisterDev("/dev/null0", func(ctx Ctx) (FileOps, error) { return dev, nil })
	k.Mount("/m2", &memFS{files: map[string]*memFile{}})
	runFD(t, k, func(p *Proc) {
		fd, err := p.Open("/dev/null0", ORdWr)
		if err != nil {
			t.Fatalf("open dev: %v", err)
		}
		if _, err := p.Write(fd, []byte("x")); err != nil {
			t.Fatal(err)
		}
		_ = p.Close(fd)

		if st, err := p.Stat("/dev/null0"); err != nil || st.Size != 0 {
			t.Errorf("Stat(dev) = %+v, %v", st, err)
		}
		if _, err := p.Stat("/nowhere/x"); err != ErrNoEnt {
			t.Errorf("Stat(unmounted) = %v, want ErrNoEnt", err)
		}
		// memFS implements neither StatFS nor RenameFS.
		if _, err := p.Stat("/m/x"); err != ErrOpNotSupp {
			t.Errorf("Stat on plain fs = %v, want ErrOpNotSupp", err)
		}
		if err := p.Rename("/m/a", "/m/b"); err != ErrOpNotSupp {
			t.Errorf("Rename on plain fs = %v, want ErrOpNotSupp", err)
		}
		if err := p.Rename("/m/a", "/m2/b"); err != ErrInval {
			t.Errorf("cross-device Rename = %v, want ErrInval", err)
		}
		if err := p.Rename("/dev/null0", "/m/b"); err != ErrInval {
			t.Errorf("Rename of device = %v, want ErrInval", err)
		}
		if err := p.Rename("/nowhere/a", "/m/b"); err != ErrNoEnt {
			t.Errorf("Rename from unmounted = %v, want ErrNoEnt", err)
		}
		if err := p.Rename("/m/a", "/nowhere/b"); err != ErrNoEnt {
			t.Errorf("Rename to unmounted = %v, want ErrNoEnt", err)
		}
	})
	if len(fsys.files) != 0 {
		t.Errorf("failed renames created files: %v", fsys.files)
	}
}

func TestCopyChargeAndBcopyCost(t *testing.T) {
	cfg := DefaultConfig()
	k := New(cfg)
	if k.CopyCharge(0) != cfg.CopyPerCallCost {
		t.Errorf("CopyCharge(0) = %v, want per-call cost %v", k.CopyCharge(0), cfg.CopyPerCallCost)
	}
	if k.CopyCharge(8192) <= k.CopyCharge(0) {
		t.Error("CopyCharge not increasing with size")
	}
	if cfg.BcopyCost(0) != 0 {
		t.Errorf("BcopyCost(0) = %v", cfg.BcopyCost(0))
	}
	if cfg.BcopyCost(8192) >= cfg.CopyCost(8192) {
		t.Error("in-kernel bcopy should be cheaper than a user/kernel copy")
	}
}

func TestPollGauges(t *testing.T) {
	k, _ := newFDRig()
	po := &pollable{}
	if po.q.Waiters() != 0 || k.PollRegistrations() != 0 {
		t.Fatal("fresh queue reports waiters")
	}
	done := false
	k.Spawn("poller", func(p *Proc) {
		fd := p.InstallFile(po, ORdOnly)
		if _, err := p.Poll([]PollFd{{FD: fd, Events: PollIn}}, -1); err != nil {
			t.Errorf("poll: %v", err)
		}
		done = true
	})
	k.Spawn("observer", func(p *Proc) {
		p.SleepFor(10 * sim.Millisecond)
		// The poller is parked now: exactly one live registration.
		if po.q.Waiters() != 1 {
			t.Errorf("Waiters() = %d while poller parked", po.q.Waiters())
		}
		if k.PollRegistrations() != 1 {
			t.Errorf("PollRegistrations() = %d while poller parked", k.PollRegistrations())
		}
		po.mark(PollIn)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("poller never woke")
	}
	if po.q.Waiters() != 0 || k.PollRegistrations() != 0 {
		t.Error("registrations leaked after wakeup")
	}
}

func TestSignalPending(t *testing.T) {
	k, _ := newFDRig()
	runFD(t, k, func(p *Proc) {
		if p.SignalPending(SIGALRM) {
			t.Error("SIGALRM pending before Post")
		}
		k.Post(p, SIGALRM)
		if !p.SignalPending(SIGALRM) {
			t.Error("SIGALRM not pending after Post")
		}
		p.DeliverSignals()
		if p.SignalPending(SIGALRM) {
			t.Error("SIGALRM still pending after delivery")
		}
	})
}

func TestExecutionContexts(t *testing.T) {
	k, _ := newFDRig()
	ic := k.IntrCtx()
	if ic.Kern() != k || ic.CanSleep() {
		t.Error("IntrCtx: wrong kernel or sleepable")
	}
	ic.Use(1 * sim.Microsecond) // steals from the (idle) CPU
	func() {
		defer func() {
			if recover() == nil {
				t.Error("IntrCtx.Sleep did not panic")
			}
		}()
		_ = ic.Sleep(nil, PZERO)
	}()
	runFD(t, k, func(p *Proc) {
		nc := p.NBCtx()
		if nc.Kern() != k || nc.CanSleep() {
			t.Error("NBCtx: wrong kernel or sleepable")
		}
		nc.Use(1 * sim.Microsecond)
		defer func() {
			if recover() == nil {
				t.Error("NBCtx.Sleep did not panic")
			}
		}()
		_ = nc.Sleep(nil, PZERO)
	})
}
