package kernel

import (
	"sort"
	"strings"

	"kdp/internal/sim"
	"kdp/internal/trace"
)

// Errno-style errors shared across the I/O stack.
var (
	ErrNoEnt       = errorString("no such file or directory")
	ErrBadFD       = errorString("bad file descriptor")
	ErrInval       = errorString("invalid argument")
	ErrExist       = errorString("file exists")
	ErrIsDir       = errorString("is a directory")
	ErrNotDir      = errorString("not a directory")
	ErrNoSpace     = errorString("no space left on device")
	ErrNxIO        = errorString("no such device or address")
	ErrROFS        = errorString("read-only file system")
	ErrOpNotSupp   = errorString("operation not supported")
	ErrFileTooBig  = errorString("file too large")
	ErrWouldBlock  = errorString("operation would block")
	ErrIO          = errorString("I/O error")
	ErrConnRefused = errorString("connection refused")
	ErrTimedOut    = errorString("connection timed out")
)

// Open flags, fcntl commands and the FASYNC bit, in the spirit of the
// Ultrix interface the paper extends.
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreat  = 0x100
	OTrunc  = 0x200
	OAppend = 0x400

	FSetFL = 1 // fcntl: set status flags
	FGetFL = 2 // fcntl: get status flags

	// ONonblock (FNDELAY) makes read/write on pollable objects return
	// ErrWouldBlock instead of sleeping; regular files are unaffected,
	// as in 4.3BSD. Set via open or fcntl F_SETFL.
	ONonblock = 0x800

	FAsync = 0x1000 // asynchronous splice operation (fcntl F_SETFL)
)

// FileOps is the per-object file interface: regular files, character
// devices and sockets all implement it. Offsets are managed by the
// descriptor layer; objects that have no notion of offset ignore it.
//
// Read/Write move bytes between the caller's buffer and the object,
// charging device and cache costs internally; the user<->kernel copy
// cost is charged by the system-call layer on top.
type FileOps interface {
	Read(ctx Ctx, b []byte, off int64) (int, error)
	Write(ctx Ctx, b []byte, off int64) (int, error)
	Size(ctx Ctx) (int64, error)
	Sync(ctx Ctx) error
	Close(ctx Ctx) error
}

// FDesc is an open-file descriptor table entry.
type FDesc struct {
	ops    FileOps
	offset int64
	flags  int

	// latched is an error deferred by a vectored or batched operation
	// that failed after moving bytes: the call reported its progress
	// and the error surfaces on the descriptor's next I/O (4.3BSD
	// readv/writev semantics).
	latched error
}

// takeLatched returns and clears the descriptor's deferred error.
func (f *FDesc) takeLatched() error {
	err := f.latched
	f.latched = nil
	return err
}

// Ops returns the underlying file object.
func (f *FDesc) Ops() FileOps { return f.ops }

// PendingError reports, without consuming, the deferred error latched
// on fd by a partially completed vectored or batched operation — a
// harness window into the 4.3BSD latch that does not perturb it. Not a
// syscall: nothing is charged and no trace events are emitted.
func (p *Proc) PendingError(fd int) error {
	f, err := p.FD(fd)
	if err != nil {
		return err
	}
	return f.latched
}

// Flags returns the descriptor status flags (including FAsync).
func (f *FDesc) Flags() int { return f.flags }

// Offset returns the current file offset.
func (f *FDesc) Offset() int64 { return f.offset }

// Advance moves the file offset by n (used by splice, which consumes
// from the descriptor like read/write do).
func (f *FDesc) Advance(n int64) { f.offset += n }

// FileSystem is the mountable-filesystem interface (implemented by
// internal/fs).
type FileSystem interface {
	// OpenFile resolves a path relative to the filesystem root.
	OpenFile(ctx Ctx, path string, flags int) (FileOps, error)
	// Remove unlinks a file.
	Remove(ctx Ctx, path string) error
	// SyncAll flushes all dirty state to the underlying device.
	SyncAll(ctx Ctx) error
}

type mountEntry struct {
	prefix string
	fs     FileSystem
}

type devEntry struct {
	path string
	open func(ctx Ctx) (FileOps, error)
}

// Mount attaches a filesystem at the given path prefix (e.g. "/d0").
// Longest-prefix match wins at lookup time. Mounting a prefix that is
// already mounted replaces the old filesystem — crash recovery remounts
// a repaired volume in place.
func (k *Kernel) Mount(prefix string, fs FileSystem) {
	if !strings.HasPrefix(prefix, "/") {
		panic("kernel: mount prefix must be absolute")
	}
	prefix = strings.TrimRight(prefix, "/")
	for i := range k.mounts {
		if k.mounts[i].prefix == prefix {
			k.mounts[i].fs = fs
			return
		}
	}
	k.mounts = append(k.mounts, mountEntry{prefix: prefix, fs: fs})
	sort.SliceStable(k.mounts, func(i, j int) bool {
		return len(k.mounts[i].prefix) > len(k.mounts[j].prefix)
	})
}

// RegisterDev registers a device special file (e.g. "/dev/speaker"); an
// open of exactly that path calls the opener.
func (k *Kernel) RegisterDev(path string, open func(ctx Ctx) (FileOps, error)) {
	k.devs = append(k.devs, devEntry{path: path, open: open})
}

// lookup resolves an absolute path to either a device opener or a
// (filesystem, relative-path) pair.
func (k *Kernel) lookup(path string) (dev *devEntry, fs FileSystem, rel string, err error) {
	if !strings.HasPrefix(path, "/") {
		return nil, nil, "", ErrNoEnt
	}
	for i := range k.devs {
		if k.devs[i].path == path {
			return &k.devs[i], nil, "", nil
		}
	}
	for _, m := range k.mounts {
		if path == m.prefix {
			return nil, m.fs, "/", nil
		}
		if strings.HasPrefix(path, m.prefix+"/") {
			return nil, m.fs, path[len(m.prefix):], nil
		}
	}
	return nil, nil, "", ErrNoEnt
}

// installFD places ops in the lowest free descriptor slot.
func (p *Proc) installFD(ops FileOps, flags int) int {
	for i, f := range p.fds {
		if f == nil {
			p.fds[i] = &FDesc{ops: ops, flags: flags}
			return i
		}
	}
	p.fds = append(p.fds, &FDesc{ops: ops, flags: flags})
	return len(p.fds) - 1
}

// FD returns the descriptor table entry for fd.
func (p *Proc) FD(fd int) (*FDesc, error) {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		return nil, ErrBadFD
	}
	return p.fds[fd], nil
}

// InstallFile installs an already-open file object (sockets, test
// fixtures) into the descriptor table and returns its fd.
func (p *Proc) InstallFile(ops FileOps, flags int) int {
	return p.installFD(ops, flags)
}

// ReleaseFD removes fd from the descriptor table without closing the
// underlying object, returning it — the fd-passing primitive a server's
// accept loop uses to hand a connection to its handler process (which
// re-installs it with InstallFile).
func (p *Proc) ReleaseFD(fd int) (FileOps, error) {
	f, err := p.FD(fd)
	if err != nil {
		return nil, err
	}
	p.fds[fd] = nil
	return f.ops, nil
}

// SyscallEnter charges the fixed trap cost, counts the call, and emits
// the syscall-enter trace event. It returns name so the idiomatic
// call pattern pairs enter and exit in one line:
//
//	defer p.SyscallExit(p.SyscallEnter("open"))
//
// Syscalls implemented outside this package (splice) use the same
// pair, which keeps enter/exit events matched per process — a property
// the trace checker enforces.
func (p *Proc) SyscallEnter(name string) string {
	p.nsys++
	p.k.TraceEmit(trace.KindSyscallEnter, p.pid, 0, 0, name)
	p.UseK(p.k.cfg.SyscallCost)
	return name
}

// SyscallExit emits the syscall-exit trace event matching a prior
// SyscallEnter of the same name.
func (p *Proc) SyscallExit(name string) {
	p.k.TraceEmit(trace.KindSyscallExit, p.pid, 0, 0, name)
}

// closeAllFDs closes every open descriptor; called from the process's
// own goroutine at exit, since closing may sleep.
func (p *Proc) closeAllFDs() {
	for fd, f := range p.fds {
		if f != nil {
			_ = p.k.closeFD(p, fd)
		}
	}
}

// Open opens path with the given flags and returns a descriptor,
// resolving device special files and mounted filesystems.
func (p *Proc) Open(path string, flags int) (int, error) {
	defer p.SyscallExit(p.SyscallEnter("open"))
	dev, fsys, rel, err := p.k.lookup(path)
	if err != nil {
		return -1, err
	}
	var ops FileOps
	if dev != nil {
		ops, err = dev.open(p.Ctx())
	} else {
		ops, err = fsys.OpenFile(p.Ctx(), rel, flags)
	}
	if err != nil {
		return -1, err
	}
	fd := p.installFD(ops, flags&^(OCreat|OTrunc))
	if flags&OAppend != 0 {
		if sz, serr := ops.Size(p.Ctx()); serr == nil {
			p.fds[fd].offset = sz
		}
	}
	return fd, nil
}

// Close closes a descriptor.
func (p *Proc) Close(fd int) error {
	defer p.SyscallExit(p.SyscallEnter("close"))
	return p.k.closeFD(p, fd)
}

func (k *Kernel) closeFD(p *Proc, fd int) error {
	f, err := p.FD(fd)
	if err != nil {
		return err
	}
	p.fds[fd] = nil
	return f.ops.Close(p.Ctx())
}

// ioCtx selects the execution context for a descriptor's read/write:
// nonblocking only when ONonblock is set and the object is pollable
// (regular files keep blocking disk I/O under ONonblock, as in BSD).
func (p *Proc) ioCtx(f *FDesc) Ctx {
	if f.flags&ONonblock != 0 {
		if _, ok := f.ops.(PollOps); ok {
			return nbCtx{p}
		}
	}
	return procCtx{p}
}

// Read reads up to len(b) bytes at the current offset, charging the
// kernel-to-user copy for the bytes moved. Returns 0, nil at EOF.
func (p *Proc) Read(fd int, b []byte) (int, error) {
	defer p.SyscallExit(p.SyscallEnter("read"))
	f, err := p.FD(fd)
	if err != nil {
		return 0, err
	}
	if f.flags&0x3 == OWrOnly {
		return 0, ErrBadFD
	}
	if lerr := f.takeLatched(); lerr != nil {
		return 0, lerr
	}
	n, err := f.ops.Read(p.ioCtx(f), b, f.offset)
	if n > 0 {
		p.UseK(p.k.cfg.CopyCost(n)) // copyout
		f.offset += int64(n)
	}
	return n, err
}

// Write writes len(b) bytes at the current offset, charging the
// user-to-kernel copy.
func (p *Proc) Write(fd int, b []byte) (int, error) {
	defer p.SyscallExit(p.SyscallEnter("write"))
	f, err := p.FD(fd)
	if err != nil {
		return 0, err
	}
	if f.flags&0x3 == ORdOnly {
		return 0, ErrBadFD
	}
	if lerr := f.takeLatched(); lerr != nil {
		return 0, lerr
	}
	ctx := p.ioCtx(f)
	if _, nb := ctx.(nbCtx); nb {
		// Nonblocking: the object may admit only part of b, so the
		// copyin is charged for the bytes actually taken.
		n, err := f.ops.Write(ctx, b, f.offset)
		if n > 0 {
			p.UseK(p.k.cfg.CopyCost(n))
			f.offset += int64(n)
		}
		return n, err
	}
	if len(b) > 0 {
		p.UseK(p.k.cfg.CopyCost(len(b))) // copyin
	}
	n, err := f.ops.Write(ctx, b, f.offset)
	if n > 0 {
		f.offset += int64(n)
	}
	return n, err
}

// Whence values for Lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Lseek repositions the file offset.
func (p *Proc) Lseek(fd int, off int64, whence int) (int64, error) {
	defer p.SyscallExit(p.SyscallEnter("lseek"))
	f, err := p.FD(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.offset
	case SeekEnd:
		sz, serr := f.ops.Size(p.Ctx())
		if serr != nil {
			return 0, serr
		}
		base = sz
	default:
		return 0, ErrInval
	}
	if base+off < 0 {
		return 0, ErrInval
	}
	f.offset = base + off
	return f.offset, nil
}

// Fcntl implements F_GETFL/F_SETFL; setting FAsync is how a caller
// requests asynchronous splice operation, per the paper's interface.
func (p *Proc) Fcntl(fd int, cmd int, arg int) (int, error) {
	defer p.SyscallExit(p.SyscallEnter("fcntl"))
	f, err := p.FD(fd)
	if err != nil {
		return 0, err
	}
	switch cmd {
	case FGetFL:
		return f.flags, nil
	case FSetFL:
		f.flags = (f.flags & 0x3) | (arg &^ 0x3)
		return 0, nil
	default:
		return 0, ErrInval
	}
}

// Fsync forces the file's dirty blocks to stable storage and waits.
func (p *Proc) Fsync(fd int) error {
	defer p.SyscallExit(p.SyscallEnter("fsync"))
	f, err := p.FD(fd)
	if err != nil {
		return err
	}
	return f.ops.Sync(p.Ctx())
}

// FileSize returns the current size of the open file (fstat st_size).
func (p *Proc) FileSize(fd int) (int64, error) {
	defer p.SyscallExit(p.SyscallEnter("fstat"))
	f, err := p.FD(fd)
	if err != nil {
		return 0, err
	}
	return f.ops.Size(p.Ctx())
}

// Unlink removes a file by path.
func (p *Proc) Unlink(path string) error {
	defer p.SyscallExit(p.SyscallEnter("unlink"))
	dev, fsys, rel, err := p.k.lookup(path)
	if err != nil {
		return err
	}
	if dev != nil {
		return ErrInval
	}
	return fsys.Remove(p.Ctx(), rel)
}

// CopyCharge exposes the user/kernel copy cost for n bytes, for
// subsystems (sockets) that move data to user space themselves.
func (k *Kernel) CopyCharge(n int) sim.Duration { return k.cfg.CopyCost(n) }

// StatInfo is the stat(2)-style result of Proc.Stat.
type StatInfo struct {
	Size  int64
	IsDir bool
}

// StatFS is optionally implemented by mounted filesystems that can
// report path metadata.
type StatFS interface {
	StatPath(ctx Ctx, path string) (StatInfo, error)
}

// RenameFS is optionally implemented by filesystems supporting rename.
type RenameFS interface {
	RenamePath(ctx Ctx, oldPath, newPath string) error
}

// Stat returns metadata for path.
func (p *Proc) Stat(path string) (StatInfo, error) {
	defer p.SyscallExit(p.SyscallEnter("stat"))
	dev, fsys, rel, err := p.k.lookup(path)
	if err != nil {
		return StatInfo{}, err
	}
	if dev != nil {
		return StatInfo{}, nil // device special files have no size
	}
	sf, ok := fsys.(StatFS)
	if !ok {
		return StatInfo{}, ErrOpNotSupp
	}
	return sf.StatPath(p.Ctx(), rel)
}

// Rename moves oldPath to newPath; both must live on the same mounted
// filesystem (there is no cross-device rename, as on the real system).
func (p *Proc) Rename(oldPath, newPath string) error {
	defer p.SyscallExit(p.SyscallEnter("rename"))
	dev1, fs1, rel1, err := p.k.lookup(oldPath)
	if err != nil {
		return err
	}
	dev2, fs2, rel2, err := p.k.lookup(newPath)
	if err != nil {
		return err
	}
	if dev1 != nil || dev2 != nil {
		return ErrInval
	}
	if fs1 != fs2 {
		return ErrInval // EXDEV
	}
	rf, ok := fs1.(RenameFS)
	if !ok {
		return ErrOpNotSupp
	}
	return rf.RenamePath(p.Ctx(), rel1, rel2)
}
