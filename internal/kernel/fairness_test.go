package kernel

import (
	"testing"

	"kdp/internal/sim"
)

// These tests pin down the scheduler behaviour Table 1's RAM row rests
// on: the round-robin quantum is charged to whoever holds the CPU in
// either mode, but preemption waits for a user-mode boundary — so a
// copier that burns kernel time in syscalls shares the CPU ~50/50 with
// a pure computer, instead of hogging it.

func TestKernelHeavyProcSharesCPU(t *testing.T) {
	k := testKernel()
	// "copier": long kernel bursts with a tiny user-mode window between
	// syscalls, like cp on the RAM disk.
	copier := k.Spawn("copier", func(p *Proc) {
		for i := 0; i < 400; i++ {
			p.UseK(4 * sim.Millisecond)
			p.Compute(20 * sim.Microsecond)
		}
	})
	var testElapsed sim.Duration
	tester := k.Spawn("tester", func(p *Proc) {
		t0 := p.Now()
		for i := 0; i < 80; i++ {
			p.Compute(10 * sim.Millisecond)
		}
		testElapsed = p.Now().Sub(t0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	_ = copier
	_ = tester
	// 800ms of compute against an equally hungry kernel-mode peer:
	// round-robin fairness means ~2x elapsed (plus switching costs).
	slowdown := float64(testElapsed) / float64(800*sim.Millisecond)
	if slowdown < 1.7 || slowdown > 2.4 {
		t.Fatalf("slowdown = %.2f, want ~2.0 (fair sharing with a kernel-heavy peer)", slowdown)
	}
}

func TestSleepingProcPreemptsOnWakeup(t *testing.T) {
	// An I/O-bound proc (sleep, short kernel burst, sleep) steals only
	// its burst time from a computer: the computer's slowdown tracks
	// the burst duty cycle, not round-robin halving.
	k := testKernel()
	ch := new(int)
	// Device: wakes the I/O proc every 5ms.
	var tick func()
	ticks := 0
	tick = func() {
		ticks++
		k.Wakeup(ch)
		if ticks < 200 {
			k.Engine().Schedule(5*sim.Millisecond, "dev", tick)
		}
	}
	k.Engine().Schedule(5*sim.Millisecond, "dev", tick)

	k.Spawn("io", func(p *Proc) {
		for i := 0; i < 190; i++ {
			_ = p.Sleep(ch, PRIBIO)
			p.UseK(1 * sim.Millisecond) // 20% duty cycle
		}
	})
	var testElapsed sim.Duration
	k.Spawn("cpu", func(p *Proc) {
		t0 := p.Now()
		for i := 0; i < 70; i++ {
			p.Compute(10 * sim.Millisecond)
		}
		testElapsed = p.Now().Sub(t0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	slowdown := float64(testElapsed) / float64(700*sim.Millisecond)
	if slowdown < 1.1 || slowdown > 1.5 {
		t.Fatalf("slowdown = %.2f, want ~1.25 (duty-cycle stealing, not halving)", slowdown)
	}
}

func TestQuantumPreemptionDefersToUserBoundary(t *testing.T) {
	// A proc in one long kernel-mode burst is never preempted even
	// when its quantum expires; the switch happens at its next
	// user-mode instant.
	k := testKernel()
	var burstEnd sim.Time
	k.Spawn("kern", func(p *Proc) {
		p.UseK(350 * sim.Millisecond) // 3.5 quanta
		burstEnd = p.Now()
		p.Compute(50 * sim.Millisecond)
	})
	k.Spawn("user", func(p *Proc) {
		p.Compute(100 * sim.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if burstEnd > sim.Time(360*sim.Millisecond) {
		t.Fatalf("kernel burst interrupted: ended at %v", burstEnd)
	}
}

func TestEqualPriorityFIFOWithinRunQueue(t *testing.T) {
	k := testKernel()
	var order []string
	for _, name := range []string{"p1", "p2", "p3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Compute(sim.Millisecond)
			order = append(order, name)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "p1" || order[1] != "p2" || order[2] != "p3" {
		t.Fatalf("run order %v, want FIFO", order)
	}
}

func TestInterruptLoadSlowsEveryone(t *testing.T) {
	// Splice-style interrupt work steals uniformly: two computers both
	// stretch by the stolen fraction.
	k := testKernel()
	done := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("cpu", func(p *Proc) {
			p.Compute(500 * sim.Millisecond)
			done[i] = p.Now()
		})
	}
	// 20% interrupt load: 2ms every 10ms.
	var steal func()
	n := 0
	steal = func() {
		k.Interrupt(func() { k.StealCPU(2 * sim.Millisecond) })
		n++
		if n < 150 {
			k.Engine().Schedule(10*sim.Millisecond, "intr", steal)
		}
	}
	k.Engine().Schedule(10*sim.Millisecond, "intr", steal)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1s of combined compute at ~80% availability: ~1.25s+.
	last := done[0]
	if done[1] > last {
		last = done[1]
	}
	if last < sim.Time(1200*sim.Millisecond) {
		t.Fatalf("interrupt load not felt: finished at %v", last)
	}
}
