package kernel

import "kdp/internal/trace"

// Aggregated system-call submission in the AnyCall lineage: a process
// packs N heterogeneous operations into one batch and crosses the
// user/kernel boundary once for all of them. Each operation still pays
// its own data-copy and device costs — the saving is the (N-1) trap +
// dispatch + return crossings, the fixed overhead the paper measures
// dominating small-block I/O. Operations execute sequentially in
// submission order, so program order per descriptor is preserved
// exactly as if the calls had been issued one at a time.

// Batch op codes.
const (
	BatchRead  = iota // read Buf at the fd's offset; N = bytes read
	BatchWrite        // write Buf at the fd's offset; N = bytes written
	BatchLseek        // reposition to Off/Whence; N = resulting offset
	BatchFsync        // flush the file; N = 0
)

// BatchOp is one operation in an aggregated submission.
type BatchOp struct {
	Code   int    // BatchRead, BatchWrite, BatchLseek, BatchFsync
	FD     int    // descriptor the op applies to
	Buf    []byte // read/write payload
	Off    int64  // lseek offset
	Whence int    // lseek whence
}

// BatchResult is the per-op outcome of a Submit: the count (bytes moved
// or resulting offset) and the op's own error. One op failing does not
// abort the batch; later ops still run, as AnyCall's per-entry status
// words allow. The exception is a signal: an op interrupted by ErrIntr
// stops the batch at that op boundary, and every op after it reports
// ErrIntr without having run — so a partial batch is always a prefix,
// and program order per descriptor still holds.
type BatchResult struct {
	N   int64
	Err error
}

// Submit carries the whole batch across the user/kernel boundary in a
// single crossing: one trap and one syscall-enter/exit pair regardless
// of len(ops). The result slice always has exactly one entry per op.
// A signal breaking an op's sleep stops the batch there: completed
// slots keep their results, the interrupted op reports ErrIntr (with
// any partial count), and the remaining ops are not started — running
// them after the interruption would reorder them past the signal
// handler, which a sequence of single syscalls could never do.
func (p *Proc) Submit(ops []BatchOp) []BatchResult {
	defer p.SyscallExit(p.SyscallEnter("batch"))
	res := make([]BatchResult, len(ops))
	for i := range ops {
		res[i] = p.batchOne(&ops[i])
		if res[i].Err == ErrIntr {
			for j := i + 1; j < len(ops); j++ {
				res[j] = BatchResult{Err: ErrIntr}
			}
			break
		}
	}
	if len(ops) > 0 {
		p.k.TraceEmit(trace.KindKernelBatch, p.pid,
			int64(len(ops)), int64(len(ops)-1), "")
	}
	return res
}

// batchOne dispatches one batched op. The bodies mirror Read, Write,
// Lseek and Fsync minus their SyscallEnter/SyscallExit pairs: the
// crossing was paid once by Submit, and the trace checker's per-pid
// syscall nesting forbids unpaired inner events.
func (p *Proc) batchOne(op *BatchOp) BatchResult {
	switch op.Code {
	case BatchRead:
		f, err := p.FD(op.FD)
		if err != nil {
			return BatchResult{Err: err}
		}
		if f.flags&0x3 == OWrOnly {
			return BatchResult{Err: ErrBadFD}
		}
		if lerr := f.takeLatched(); lerr != nil {
			return BatchResult{Err: lerr}
		}
		n, err := f.ops.Read(p.ioCtx(f), op.Buf, f.offset)
		if n > 0 {
			p.UseK(p.k.cfg.CopyCost(n)) // copyout
			f.offset += int64(n)
		}
		return BatchResult{N: int64(n), Err: err}

	case BatchWrite:
		f, err := p.FD(op.FD)
		if err != nil {
			return BatchResult{Err: err}
		}
		if f.flags&0x3 == ORdOnly {
			return BatchResult{Err: ErrBadFD}
		}
		if lerr := f.takeLatched(); lerr != nil {
			return BatchResult{Err: lerr}
		}
		ctx := p.ioCtx(f)
		if _, nb := ctx.(nbCtx); nb {
			n, err := f.ops.Write(ctx, op.Buf, f.offset)
			if n > 0 {
				p.UseK(p.k.cfg.CopyCost(n))
				f.offset += int64(n)
			}
			return BatchResult{N: int64(n), Err: err}
		}
		if len(op.Buf) > 0 {
			p.UseK(p.k.cfg.CopyCost(len(op.Buf))) // copyin
		}
		n, err := f.ops.Write(ctx, op.Buf, f.offset)
		if n > 0 {
			f.offset += int64(n)
		}
		return BatchResult{N: int64(n), Err: err}

	case BatchLseek:
		f, err := p.FD(op.FD)
		if err != nil {
			return BatchResult{Err: err}
		}
		var base int64
		switch op.Whence {
		case SeekSet:
			base = 0
		case SeekCur:
			base = f.offset
		case SeekEnd:
			sz, serr := f.ops.Size(p.Ctx())
			if serr != nil {
				return BatchResult{Err: serr}
			}
			base = sz
		default:
			return BatchResult{Err: ErrInval}
		}
		if base+op.Off < 0 {
			return BatchResult{Err: ErrInval}
		}
		f.offset = base + op.Off
		return BatchResult{N: f.offset}

	case BatchFsync:
		f, err := p.FD(op.FD)
		if err != nil {
			return BatchResult{Err: err}
		}
		return BatchResult{Err: f.ops.Sync(p.Ctx())}

	default:
		return BatchResult{Err: ErrInval}
	}
}
