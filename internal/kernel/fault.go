package kernel

import (
	"sort"

	"kdp/internal/trace"
)

// Fault-plan registry: the machine's single point of control for
// deterministic fault injection. Every injectable fault site — a disk
// request that can fail with ErrIO, a block allocation that can hit
// ErrNoSpace, a datagram that can be dropped, duplicated or reordered,
// an interruptible sleep that can be broken by a signal, a boundary
// where the machine can lose power — registers itself by a stable site
// ID and asks the plan, at each eligible occurrence, whether to fail
// this one. A plan is injected from outside ("trigger the k-th eligible
// occurrence of site S"), so a fault-free census run enumerates exactly
// the occurrences an armed run can hit, and the armed run is the census
// run's prefix up to the fire point — the property that makes a full
// sweep over (site, k) samples reproducible and minimizable.
//
// The per-package knobs that predate this registry (disk.InjectFault,
// socket.NetParams.DropEvery) are thin adapters over quiet arms, so
// their existing tests and digests are unchanged.

// FaultSite is a stable identifier for one fault site, e.g.
// "disk.rz58.wrerr" or "proc.sleep-signal". Site IDs are part of the
// external plan format (docs/FAULTS.md) and must not be renamed
// casually.
type FaultSite = string

// MatchAny makes an arm eligible for every occurrence of its site
// regardless of the site argument.
const MatchAny int64 = -1

// SiteSleepSignal is the kernel's own fault site: each interruptible
// sleep (priority above PZERO) is one eligible occurrence, and a fire
// posts SIGIO to the sleeping process and breaks the sleep with
// ErrIntr. The site argument is the pid.
const SiteSleepSignal FaultSite = "proc.sleep-signal"

// FaultArm is one armed fault: fire at chosen occurrences of Site.
// Occurrences are counted per arm, over the hits whose argument the arm
// matches, so "the k-th eligible occurrence" is well defined even when
// another arm on the same site filters differently.
type FaultArm struct {
	Site FaultSite

	// K, when positive, fires the arm at exactly the K-th eligible
	// occurrence (1-based).
	K int64

	// Every, when positive, fires the arm at every Every-th eligible
	// occurrence (occurrence numbers divisible by Every). K and Every
	// may be combined; either condition fires.
	Every int64

	// Match restricts eligibility to occurrences whose argument equals
	// it (a block number, a port); MatchAny accepts every occurrence.
	// Non-matching occurrences do not advance the arm's count.
	Match int64

	// Count is the number of fires remaining: positive counts down,
	// negative never runs out. Arm() treats the zero value as 1
	// (single-shot).
	Count int

	// Quiet suppresses the fault.arm/fault.fire trace events. The
	// compatibility adapters (disk.InjectFault, NetParams.DropEvery) arm
	// quietly so streams traced before the registry existed keep their
	// digests.
	Quiet bool

	seen  int64 // eligible occurrences observed
	fired int64 // times this arm fired
}

// Seen returns how many eligible occurrences the arm has observed.
func (a *FaultArm) Seen() int64 { return a.seen }

// Fired returns how many times the arm has fired.
func (a *FaultArm) Fired() int64 { return a.fired }

// FaultPlan is the registry of fault sites and armed faults for one
// machine. All methods run on the simulation goroutine; the plan is as
// deterministic as the site hits themselves.
type FaultPlan struct {
	k      *Kernel
	census map[FaultSite]int64
	arms   map[FaultSite][]*FaultArm
	fires  map[FaultSite]int64

	// OnFire, when set, is invoked synchronously for every fire with
	// the site and its argument — the hook harnesses use to switch into
	// degraded-mode checking the moment the fault lands.
	OnFire func(site FaultSite, arg int64)
}

func newFaultPlan(k *Kernel) *FaultPlan {
	return &FaultPlan{
		k:      k,
		census: make(map[FaultSite]int64),
		arms:   make(map[FaultSite][]*FaultArm),
		fires:  make(map[FaultSite]int64),
	}
}

// Faults returns the machine's fault plan. Always non-nil; with no arms
// a site hit is a census increment and nothing more.
func (k *Kernel) Faults() *FaultPlan { return k.faults }

// Arm adds an armed fault to the plan and returns a handle for Remove.
// A zero Count is normalized to 1 (single-shot).
func (fp *FaultPlan) Arm(a FaultArm) *FaultArm {
	if a.Site == "" {
		panic("kernel: FaultArm with empty site")
	}
	if a.K <= 0 && a.Every <= 0 {
		panic("kernel: FaultArm needs K or Every")
	}
	if a.Count == 0 {
		a.Count = 1
	}
	arm := &a
	fp.arms[a.Site] = append(fp.arms[a.Site], arm)
	if !a.Quiet {
		fp.k.TraceEmit(trace.KindFaultArm, 0, a.K, a.Every, a.Site)
	}
	return arm
}

// Remove withdraws an armed fault. Returns false if the handle is not
// (or no longer) armed.
func (fp *FaultPlan) Remove(h *FaultArm) bool {
	if h == nil {
		return false
	}
	list := fp.arms[h.Site]
	for i, a := range list {
		if a != h {
			continue
		}
		list = append(list[:i], list[i+1:]...)
		if len(list) == 0 {
			delete(fp.arms, h.Site)
		} else {
			fp.arms[h.Site] = list
		}
		return true
	}
	return false
}

// Hit reports one eligible occurrence of site with the given argument
// (block number, datagram ordinal, pid — site-specific) and returns
// whether an armed fault fires on it. Call it from the fault site
// itself; a true return means the site must take its failure action
// (complete with ErrIO, drop the packet, post the signal).
func (fp *FaultPlan) Hit(site FaultSite, arg int64) bool {
	fp.census[site]++
	list := fp.arms[site]
	if len(list) == 0 {
		return false
	}
	fired := false
	for _, a := range list {
		if a.Match != MatchAny && a.Match != arg {
			continue
		}
		a.seen++
		if a.Count == 0 {
			continue
		}
		if (a.K > 0 && a.seen == a.K) || (a.Every > 0 && a.seen%a.Every == 0) {
			if a.Count > 0 {
				a.Count--
			}
			a.fired++
			fp.fires[site]++
			if !a.Quiet {
				fp.k.TraceEmit(trace.KindFaultFire, 0, arg, a.seen, site)
			}
			if fp.OnFire != nil {
				fp.OnFire(site, arg)
			}
			fired = true
		}
	}
	return fired
}

// Seen returns how many occurrences of site have been reported,
// eligible or not — the census an unarmed run collects.
func (fp *FaultPlan) Seen(site FaultSite) int64 { return fp.census[site] }

// ResetCensus clears the occurrence counts without touching the arms.
// Harnesses call it at the boundary where fault exploration begins —
// typically after boot — so setup-time occurrences (mkfs, mount) are
// not sampled as injection points.
func (fp *FaultPlan) ResetCensus() { fp.census = make(map[FaultSite]int64) }

// Fired returns how many times any arm on site has fired.
func (fp *FaultPlan) Fired(site FaultSite) int64 { return fp.fires[site] }

// ArmCount returns the number of outstanding arms across all sites.
func (fp *FaultPlan) ArmCount() int {
	n := 0
	for _, list := range fp.arms {
		n += len(list)
	}
	return n
}

// SiteCount is one row of a census: a site and its occurrence count.
type SiteCount struct {
	Site FaultSite
	N    int64
}

// Census returns every site that reported at least one occurrence,
// sorted by site ID — the deterministic input to a fault sweep.
func (fp *FaultPlan) Census() []SiteCount {
	out := make([]SiteCount, 0, len(fp.census))
	for site, n := range fp.census {
		out = append(out, SiteCount{Site: site, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}
