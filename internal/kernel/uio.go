package kernel

import "kdp/internal/trace"

// Vectored I/O in the 4.3BSD readv/writev lineage. A process hands the
// kernel an ordered iovec array and crosses the user/kernel boundary
// once for the whole vector: one trap, one syscall-enter/exit pair, and
// one copyin/copyout setup charge, with the per-byte copy rate applied
// to the total moved. Against one read/write per segment that saves
// (len(iovs)-1) crossings and as many fixed per-copy setups — the same
// overhead the paper's splice removes for whole transfers, amortized
// here for paths that still move data through user space.
//
// Error semantics follow 4.3BSD: once any bytes have transferred, the
// call reports that progress and a subsequent failure is latched on the
// descriptor, surfacing on the next operation. An error before any
// progress is returned immediately.

// Uio describes one scatter/gather transfer — an ordered iovec array,
// after 4.3BSD's struct uio. The helpers move bytes between the vector
// and contiguous kernel buffers; they model data movement only and
// charge nothing (callers charge through the Config cost model).
type Uio struct {
	Iovs [][]byte
}

// Total returns the summed length of the iovec array.
func (u Uio) Total() int {
	n := 0
	for _, iov := range u.Iovs {
		n += len(iov)
	}
	return n
}

// Gather concatenates the iovecs into one contiguous buffer (the mbuf
// chain a sendv builds, or the staging run a coalesced write admits).
func (u Uio) Gather() []byte {
	out := make([]byte, 0, u.Total())
	for _, iov := range u.Iovs {
		out = append(out, iov...)
	}
	return out
}

// Scatter copies b across the iovecs in order and returns the number of
// bytes placed; bytes beyond the vector's total length are discarded
// (datagram truncation, as recvfrom does).
func (u Uio) Scatter(b []byte) int {
	n := 0
	for _, iov := range u.Iovs {
		if len(b) == 0 {
			break
		}
		c := copy(iov, b)
		b = b[c:]
		n += c
	}
	return n
}

// ReadvOps is implemented by file objects with a native scatter-read:
// one object-level operation fills the whole vector (a socket receiving
// one datagram across several iovecs). Objects without it are driven
// one iovec at a time inside the single crossing.
type ReadvOps interface {
	Readv(ctx Ctx, iovs [][]byte, off int64) (int, error)
}

// WritevOps is implemented by file objects with a native gather-write:
// one object-level operation consumes the whole vector (a socket
// building one datagram, a stream connection coalescing one admission).
type WritevOps interface {
	Writev(ctx Ctx, iovs [][]byte, off int64) (int, error)
}

// Readv reads into the iovecs in order, crossing the user/kernel
// boundary once. The copyout setup is charged once for the vector and
// the byte rate over the total moved. Returns the bytes placed; an
// error after partial progress is latched on the descriptor for the
// next call (4.3BSD readv semantics).
func (p *Proc) Readv(fd int, iovs [][]byte) (int, error) {
	defer p.SyscallExit(p.SyscallEnter("readv"))
	f, err := p.FD(fd)
	if err != nil {
		return 0, err
	}
	if f.flags&0x3 == OWrOnly {
		return 0, ErrBadFD
	}
	if lerr := f.takeLatched(); lerr != nil {
		return 0, lerr
	}
	ctx := p.ioCtx(f)
	total := 0
	if rv, ok := f.ops.(ReadvOps); ok {
		total, err = rv.Readv(ctx, iovs, f.offset)
	} else {
		for _, iov := range iovs {
			if len(iov) == 0 {
				continue
			}
			var n int
			n, err = f.ops.Read(ctx, iov, f.offset+int64(total))
			total += n
			if err != nil || n < len(iov) {
				break // error, EOF, or a would-block boundary
			}
		}
	}
	if total > 0 {
		p.UseK(p.k.cfg.CopyCost(total)) // one copyout setup for the vector
		f.offset += int64(total)
		if err != nil {
			f.latched = err
			err = nil
		}
		p.emitBatch(len(iovs))
	}
	return total, err
}

// emitBatch records one aggregated crossing carrying ops operations —
// (ops-1) fewer traps than issuing them one syscall at a time.
func (p *Proc) emitBatch(ops int) {
	if ops > 1 {
		p.k.TraceEmit(trace.KindKernelBatch, p.pid, int64(ops), int64(ops-1), "")
	}
}

// Writev writes the iovecs in order, crossing the user/kernel boundary
// once. The copyin setup is charged once for the vector. Returns the
// bytes consumed; an error after partial progress is latched on the
// descriptor for the next call (4.3BSD writev semantics).
func (p *Proc) Writev(fd int, iovs [][]byte) (int, error) {
	defer p.SyscallExit(p.SyscallEnter("writev"))
	f, err := p.FD(fd)
	if err != nil {
		return 0, err
	}
	if f.flags&0x3 == ORdOnly {
		return 0, ErrBadFD
	}
	if lerr := f.takeLatched(); lerr != nil {
		return 0, lerr
	}
	ctx := p.ioCtx(f)
	if _, nb := ctx.(nbCtx); nb {
		// Nonblocking: the object may admit only part of the vector, so
		// the copyin is charged for the bytes actually taken.
		total, werr := p.writevInner(f, ctx, iovs)
		if total > 0 {
			p.UseK(p.k.cfg.CopyCost(total))
			f.offset += int64(total)
			if werr != nil {
				f.latched = werr
				werr = nil
			}
			p.emitBatch(len(iovs))
		}
		return total, werr
	}
	if n := (Uio{Iovs: iovs}).Total(); n > 0 {
		p.UseK(p.k.cfg.CopyCost(n)) // one copyin setup for the vector
	}
	total, werr := p.writevInner(f, ctx, iovs)
	if total > 0 {
		f.offset += int64(total)
		if werr != nil {
			f.latched = werr
			werr = nil
		}
		p.emitBatch(len(iovs))
	}
	return total, werr
}

// writevInner moves the vector into the object: one native gather-write
// when the object supports it, otherwise one ops.Write per iovec inside
// the single crossing already paid by the caller.
func (p *Proc) writevInner(f *FDesc, ctx Ctx, iovs [][]byte) (int, error) {
	if wv, ok := f.ops.(WritevOps); ok {
		return wv.Writev(ctx, iovs, f.offset)
	}
	total := 0
	for _, iov := range iovs {
		if len(iov) == 0 {
			continue
		}
		n, err := f.ops.Write(ctx, iov, f.offset+int64(total))
		total += n
		if err != nil {
			return total, err
		}
		if n < len(iov) {
			break // object admitted only part (nonblocking boundary)
		}
	}
	return total, nil
}
