// Package kernel simulates a 1992-class UNIX workstation kernel in
// virtual time: processes, a priority scheduler with round-robin
// timeslicing, sleep/wakeup, the callout list, signals and interval
// timers, a file-descriptor layer, and a CPU cost model calibrated to
// the DecStation 5000/200 used in the paper.
//
// Everything runs on the discrete-event engine from internal/sim. The
// kernel's Run loop owns simulated time; process bodies are ordinary Go
// functions executing on goroutines that are parked whenever they are
// not the (single) running process, which keeps the simulation fully
// deterministic.
package kernel

import "kdp/internal/sim"

// Config holds every tunable of the machine model. The zero value is
// not useful; start from DefaultConfig.
type Config struct {
	// Name identifies the machine in traces.
	Name string

	// HZ is the hardclock frequency. Callouts have tick granularity,
	// exactly as in 4.3BSD, which matters for splice's write-side
	// scheduling through the callout list.
	HZ int

	// QuantumTicks is the round-robin scheduling quantum in clock
	// ticks for equal-priority user processes (4.3BSD: 100ms).
	QuantumTicks int

	// SyscallCost is the fixed trap + dispatch + return cost charged
	// to every system call.
	SyscallCost sim.Duration

	// ContextSwitchCost is charged whenever the CPU switches between
	// two different processes (including switches to/from idle-exit).
	ContextSwitchCost sim.Duration

	// InterruptCost is the fixed cost of taking a device interrupt
	// (vector dispatch, register save/restore), charged at interrupt
	// level before the driver's completion handler runs.
	InterruptCost sim.Duration

	// CalloutDispatchCost is charged per callout fired from softclock.
	CalloutDispatchCost sim.Duration

	// CopyBytesPerSec is the effective user<->kernel copy bandwidth
	// (copyin/copyout). The DecStation's uncached read rate is 10MB/s
	// and its write-through partial-page write rate is 20MB/s; an
	// 8KB copy touches both and pays cache/TLB overheads, giving an
	// effective large-copy rate near 6MB/s.
	CopyBytesPerSec float64

	// CopyPerCallCost is the fixed per-copy setup cost (validation,
	// page lookups).
	CopyPerCallCost sim.Duration

	// BcopyBytesPerSec is the kernel-to-kernel memory copy bandwidth
	// (used only when splice buffer sharing is disabled, and by the
	// socket layer when staging packets).
	BcopyBytesPerSec float64

	// BufHashCost approximates the buffer-cache lookup/bookkeeping
	// cost per getblk/brelse pair.
	BufHashCost sim.Duration

	// SleepWakeupCost is the scheduler cost of one sleep/wakeup pair
	// (enqueue, dequeue, priority computation).
	SleepWakeupCost sim.Duration

	// PollFdCost is charged per descriptor scanned by poll (readiness
	// query plus waiter registration — the selscan/selrecord work).
	PollFdCost sim.Duration

	// SpliceHandlerCost is the CPU cost of one splice completion
	// handler execution (read-done, write-side setup, or write-done),
	// charged at interrupt level.
	SpliceHandlerCost sim.Duration

	// PageFaultCost is the fixed trap cost of taking a page fault
	// (vector dispatch, fault decode, address-space lookup), charged
	// before the fault is resolved. Resolution adds PageMapCost and,
	// for a pagein, the buffer-cache read it triggers.
	PageFaultCost sim.Duration

	// PageMapCost is the per-page map manipulation cost (pmap enter /
	// remove / protection change) charged whenever a page is entered
	// into, removed from, or write-enabled in an address space.
	PageMapCost sim.Duration

	// MaxRunTime aborts a simulation that exceeds this much virtual
	// time, as a watchdog against livelock in experiments. Zero means
	// no limit.
	MaxRunTime sim.Duration

	// Seed seeds the machine's PRNG (disk jitter, workload data).
	Seed uint64
}

// DefaultConfig returns the DecStation 5000/200 calibration used by the
// paper's experiments: 25MHz R3000 (~20 MIPS), 32MB memory, 100Hz clock.
func DefaultConfig() Config {
	return Config{
		Name:                "decstation5000/200",
		HZ:                  100,
		QuantumTicks:        10, // 100ms round-robin, as 4.3BSD roundrobin()
		SyscallCost:         40 * sim.Microsecond,
		ContextSwitchCost:   120 * sim.Microsecond,
		InterruptCost:       90 * sim.Microsecond,
		CalloutDispatchCost: 25 * sim.Microsecond,
		CopyBytesPerSec:     4.8e6,
		CopyPerCallCost:     25 * sim.Microsecond,
		BcopyBytesPerSec:    8.0e6,
		BufHashCost:         18 * sim.Microsecond,
		SleepWakeupCost:     45 * sim.Microsecond,
		PollFdCost:          8 * sim.Microsecond,
		SpliceHandlerCost:   30 * sim.Microsecond,
		PageFaultCost:       60 * sim.Microsecond,
		PageMapCost:         15 * sim.Microsecond,
		MaxRunTime:          0,
		Seed:                1,
	}
}

// TickDuration returns the period of one hardclock tick.
func (c *Config) TickDuration() sim.Duration {
	return sim.Duration(int64(sim.Second) / int64(c.HZ))
}

// CopyCost returns the charge for moving n bytes across the user/kernel
// boundary.
func (c *Config) CopyCost(n int) sim.Duration {
	return c.CopyPerCallCost + sim.BytesAt(int64(n), c.CopyBytesPerSec)
}

// BcopyCost returns the charge for an in-kernel memory copy of n bytes.
func (c *Config) BcopyCost(n int) sim.Duration {
	return sim.BytesAt(int64(n), c.BcopyBytesPerSec)
}
