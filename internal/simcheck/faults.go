package simcheck

import (
	"fmt"

	"kdp/internal/kernel"
)

// Fault sweep: walk every error path the workload can reach. The seed
// runs once fault-free to census the eligible fault sites (every disk
// transfer, block allocation, datagram, interruptible sleep and op
// boundary reports itself to the kernel fault plan), then re-runs once
// per sampled (site, k) pair with a single-shot fault armed at the k-th
// eligible occurrence. Because the armed run is single-worker and the
// arm changes nothing until it fires, the armed run is the census run's
// exact prefix up to the fire point — so the k-th occurrence is
// guaranteed to be reached, and "armed but never fired" is itself a
// violation.
//
// Every armed run is held to the full harness contract plus the
// post-fault graceful-degradation contract: the erroring operation
// surfaces a real error exactly once (the arm is single-shot, and the
// end-of-run log line pins fired=1), the machine still quiesces (the
// worker and every helper process exit, splice/stream/pool/poll
// registries drain), no buffer, callout, proc, ghost or page leaks
// (the same ~60 invariants re-checked at every scheduling boundary),
// and the final fsck-and-reread accepts only byte-exact content for
// files untouched by the fault.

// SiteCrashBoundary is the harness's own fault site: after each op, a
// single-worker machine is quiescent and can lose power. A fire runs
// the full crash-recovery path (discard volatile state, repairing
// fsck, remount, durability oracle) in the middle of the workload. The
// site argument is the op index.
const SiteCrashBoundary kernel.FaultSite = "sim.crash-boundary"

// FaultRun is the outcome of one armed re-run within a sweep.
type FaultRun struct {
	Site  kernel.FaultSite
	K     int64
	Fired int64
	// Digest is the armed run's event-log digest (replay-verified when
	// the sweep runs with replay enabled).
	Digest uint64
}

// FaultSweepResult is the outcome of a full per-seed fault sweep.
type FaultSweepResult struct {
	Seed uint64
	// Census is the fault-free run's site census the sweep sampled from.
	Census []kernel.SiteCount
	// Runs holds one entry per completed armed re-run, in sweep order
	// (census order × ascending k).
	Runs []FaultRun
	// Violation is the first failure — from the census run, an armed
	// run, a replay divergence, or an armed fault that never fired.
	Violation error
	// FailedConfig reproduces the violation when it came from a run.
	FailedConfig Config
}

// Failed reports whether the sweep detected a violation.
func (r *FaultSweepResult) Failed() bool { return r.Violation != nil }

// Digest folds every armed run's digest (and the census digest) into
// one value, so two sweeps — e.g. under different GOMAXPROCS — can be
// compared with a single line.
func (r *FaultSweepResult) Digest() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for _, run := range r.Runs {
		mix(run.Digest)
	}
	return h
}

// sampleKs picks the occurrence indices to arm for a site with n
// eligible occurrences: the first, the middle and the last, deduped —
// the boundary cases plus a representative interior point.
func sampleKs(n int64) []int64 {
	ks := []int64{1, (n + 1) / 2, n}
	out := ks[:0]
	var last int64
	for _, k := range ks {
		if k > last {
			out = append(out, k)
			last = k
		}
	}
	return out
}

// FaultSweepSeed runs the full fault sweep for one seed: census, then
// one armed re-run per sampled (site, k). With replay set, every armed
// run is executed twice and the digests must match — the determinism
// contract that makes a failing (seed, site, k) triple a complete bug
// report. Damage and Crash configs are rejected; the sweep owns the
// disturbance schedule.
func FaultSweepSeed(cfg Config, replay bool) *FaultSweepResult {
	res := &FaultSweepResult{Seed: cfg.Seed}
	if cfg.Damage != "" || cfg.Crash {
		res.Violation = fmt.Errorf("simcheck: fault sweep excludes -damage and -crash")
		return res
	}
	cfg.FaultSite, cfg.FaultK = "", 0
	// Single worker everywhere: the armed runs must replay the census
	// run's schedule, and the crash-boundary site only hits
	// single-worker boundaries.
	cfg.Workers = 1

	base := Run(cfg)
	if base.Violation != nil {
		res.Violation = fmt.Errorf("census run: %w", base.Violation)
		res.FailedConfig = cfg
		return res
	}
	if replay {
		if err := VerifyReplayConfig(cfg); err != nil {
			res.Violation = err
			res.FailedConfig = cfg
			return res
		}
	}
	res.Census = base.Census

	for _, sc := range base.Census {
		for _, k := range sampleKs(sc.N) {
			acfg := cfg
			acfg.FaultSite, acfg.FaultK = sc.Site, k
			r := Run(acfg)
			if r.Violation != nil {
				res.Violation = r.Violation
				res.FailedConfig = acfg
				return res
			}
			if r.FaultFired != 1 {
				res.Violation = fmt.Errorf(
					"simcheck: seed %d: site %s armed at k=%d fired %d time(s), want exactly 1 (census saw %d occurrence(s))",
					cfg.Seed, sc.Site, k, r.FaultFired, sc.N)
				res.FailedConfig = acfg
				return res
			}
			if replay {
				r2 := Run(acfg)
				if r2.Violation != nil {
					res.Violation = fmt.Errorf("armed replay: %w", r2.Violation)
					res.FailedConfig = acfg
					return res
				}
				if r2.Digest != r.Digest {
					res.Violation = fmt.Errorf(
						"simcheck: seed %d: armed run (site %s, k=%d) is not deterministic: digests %016x != %016x%s",
						cfg.Seed, sc.Site, k, r.Digest, r2.Digest, firstLogDiff(r.Log, r2.Log))
					res.FailedConfig = acfg
					return res
				}
			}
			res.Runs = append(res.Runs, FaultRun{Site: sc.Site, K: k, Fired: r.FaultFired, Digest: r.Digest})
		}
	}
	return res
}
