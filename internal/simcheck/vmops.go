package simcheck

import (
	"errors"
	"fmt"

	"kdp/internal/kernel"
)

// The mapped-file ops. Each one is self-contained like the rest of the
// vocabulary: map, act, unmap. The mapping outlives its descriptor (the
// fd closes right after Mmap), so every op also exercises the
// map-reference-keeps-the-inode path. Munmap pages out any dirty pages
// as delayed writes, so a later fault op can surface through the next
// op's Munmap or msync — those errors taint the oracle exactly like a
// failed write.

// doMmapRead maps the whole file shared read-only, faults every page in
// through the buffer cache with one MemRead, and verifies the bytes
// against the oracle — the mapped twin of doSeqRead.
func (m *machine) doMmapRead(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	of := m.oracle[path]
	fd, err := p.Open(path, kernel.ORdOnly)
	if err != nil {
		if errors.Is(err, kernel.ErrNoEnt) {
			if of != nil && !of.tainted && m.checkable(o.disk) {
				m.fail(fmt.Errorf("oracle-exists: open %s: %v, but oracle has %d bytes", path, err, len(of.data)))
				return
			}
			m.opLog(o, w, "absent")
			return
		}
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "open: %v", err)
		return
	}
	if of == nil && m.checkable(o.disk) {
		p.Close(fd)
		m.fail(fmt.Errorf("oracle-absent: %s opened but the oracle says it was never created", path))
		return
	}
	size, err := p.FileSize(fd)
	if err != nil || size == 0 {
		p.Close(fd)
		m.opLog(o, w, "empty (size=%d err=%v)", size, err)
		return
	}
	addr, merr := p.Mmap(fd, 0, size, kernel.ProtRead, kernel.MapShared)
	p.Close(fd)
	if merr != nil {
		// Mapping an open regular file takes no I/O; failure is a harness bug.
		m.fail(fmt.Errorf("mmap-read: mmap %s: %v", path, merr))
		return
	}
	got := make([]byte, size)
	rerr := p.MemRead(addr, got)
	uerr := p.Munmap(addr)
	if rerr != nil {
		// A read fault hit an injected disk fault mid-scan.
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "memread: %v", rerr)
		return
	}
	if uerr != nil {
		// A read-only mapping has nothing to page out; failure is a bug.
		m.fail(fmt.Errorf("mmap-read: munmap %s: %v", path, uerr))
		return
	}
	if of == nil || of.tainted || !m.checkable(o.disk) {
		m.opLog(o, w, "n=%d (unchecked)", size)
		return
	}
	if size != int64(len(of.data)) {
		m.fail(fmt.Errorf("oracle-size: mmap-read %s maps %d bytes, oracle expects %d", path, size, len(of.data)))
		return
	}
	if i := firstDiff(got, of.data); i >= 0 {
		m.fail(fmt.Errorf("oracle-content: %s differs at byte %d: mapped %#02x, oracle %#02x",
			path, i, got[i], of.data[i]))
		return
	}
	m.opLog(o, w, "ok n=%d", size)
}

// mmapStore maps [0, off+size) of the worker's file shared read/write,
// stores the pattern at off through MemWrite (write faults allocate
// backing blocks and COW nothing — it's a shared map), and returns the
// mapping address for the caller to sync and/or unmap. It applies the
// doWrite oracle discipline: name durable on successful open, any
// earlier durable snapshot stale, errors taint.
func (m *machine) mmapStore(p *kernel.Proc, w int, o *op) (addr int64, of *ofile, ok bool) {
	path := m.path(w, o.disk, o.slot)
	fd, err := p.Open(path, kernel.OCreat|kernel.ORdWr)
	if err != nil {
		m.taintEnsure(path)
		m.opLog(o, w, "open: %v", err)
		return 0, nil, false
	}
	end := o.off + int64(o.size)
	addr, merr := p.Mmap(fd, 0, end, kernel.ProtRead|kernel.ProtWrite, kernel.MapShared)
	p.Close(fd)
	of = m.ensure(path)
	of.created = true
	of.syncedOK = false
	if merr != nil {
		// Mapping extends the file to end (delayed metadata); nothing
		// else is knowable.
		of.tainted = true
		m.opLog(o, w, "mmap: %v", merr)
		return 0, nil, false
	}
	data := make([]byte, o.size)
	fillPattern(data, o.off, o.pat)
	if werr := p.MemWrite(addr+o.off, data); werr != nil {
		// A fault mid-store (ENOSPC allocating a backing block, or an
		// injected read fault paging in a partial page) leaves an
		// unpredictable subset of the stores applied.
		of.tainted = true
		if uerr := p.Munmap(addr); uerr != nil {
			m.opLog(o, w, "memwrite: %v; munmap: %v (tainted)", werr, uerr)
			return 0, nil, false
		}
		m.opLog(o, w, "memwrite: %v (tainted)", werr)
		return 0, nil, false
	}
	return addr, of, true
}

// storeOracle folds a completed mmap store into the oracle: the mapping
// extended the file to off+size (zero-filling any gap) and the pattern
// landed at off.
func (o *op) storeOracle(of *ofile) {
	end := o.off + int64(o.size)
	if int64(len(of.data)) < end {
		of.data = append(of.data, make([]byte, end-int64(len(of.data)))...)
	}
	fillPattern(of.data[o.off:end], o.off, o.pat)
}

// doMmapWrite stores through a shared mapping and unmaps. The dirty
// pages leave as delayed writes inside Munmap, so a latched write error
// from an earlier fault op surfaces here — tainting the file just as it
// would a plain write.
func (m *machine) doMmapWrite(p *kernel.Proc, w int, o *op) {
	addr, of, ok := m.mmapStore(p, w, o)
	if !ok {
		return
	}
	if uerr := p.Munmap(addr); uerr != nil {
		of.tainted = true
		m.opLog(o, w, "munmap: %v (tainted)", uerr)
		return
	}
	o.storeOracle(of)
	m.opLog(o, w, "ok n=%d", o.size)
}

// doMsync stores through a shared mapping, then msyncs before
// unmapping. A successful msync carries the same contract as fsync:
// this exact content is durable and survives any later crash
// byte-exact — the crash sweep holds it to that.
func (m *machine) doMsync(p *kernel.Proc, w int, o *op) {
	addr, of, ok := m.mmapStore(p, w, o)
	if !ok {
		return
	}
	serr := p.Msync(addr)
	uerr := p.Munmap(addr)
	if serr != nil {
		// A failed msync paged out an unknown subset: current content
		// and the durable image are both unpredictable.
		of.tainted = true
		of.syncedOK = false
		m.opLog(o, w, "msync: %v", serr)
		return
	}
	if uerr != nil {
		of.tainted = true
		m.opLog(o, w, "munmap: %v (tainted)", uerr)
		return
	}
	o.storeOracle(of)
	if !of.tainted {
		of.synced = append([]byte(nil), of.data...)
		of.syncedOK = true
	}
	m.opLog(o, w, "ok n=%d", o.size)
}
