package simcheck

import (
	"errors"
	"fmt"

	"kdp/internal/dev"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/splice"
	"kdp/internal/stream"
)

// The op vocabulary. Every op is self-contained — it opens what it
// needs, acts, and closes — so any subset of a generated sequence is
// itself a valid workload. That property is what makes seed
// minimization by op-sequence bisection sound.
type opKind int

const (
	opWrite opKind = iota // create/extend/overwrite a byte range
	opRead                // read a range and verify against the oracle
	opTrunc               // open with O_TRUNC
	opUnlink
	opFsync
	opSpliceFF   // splice file → file (block engine)
	opSplicePipe // splice file → pipe, concurrent reader drains
	opPipeSplice // concurrent writer fills pipe, splice pipe → file
	opSpliceSock // splice file → socket, concurrent reader drains
	opSpliceSig  // synchronous splice interrupted by a posted signal
	opFault      // arm a one-shot disk fault on either volume
	opTraceSnap  // snapshot the trace counters into the event log
	opStreamConn // stream connect/accept handshake + close on the lossy net
	opStreamXfer // stream transfer over the lossy net, byte-exact delivery
	opPollWait   // poll on a pipe fed by a delayed writer; ready ⇒ read can't block
	opEventServe // single-process poll event loop serves stream clients on the lossy net
	opSeqRead    // whole-file sequential scan; drives the adaptive readahead engine
	opMmapRead   // map the file shared read-only, fault it in, verify against the oracle
	opMmapWrite  // map shared read/write, store a pattern, munmap pages it out
	opMsync      // mmap-write followed by msync: the mapped-file durability contract
	opCrash      // power cut: discard volatile state, repair, remount (crash sweep only)
	opReadv      // scatter-read a range through readv, verify iovec byte conservation
	opWritev     // gather-write a patterned range through writev
	opBatch      // aggregated Submit: lseek+writes(+fsync) or lseek+reads in one crossing
)

// Generation sizes. Files stay under 12 direct blocks (96KB) so the
// content oracle never depends on indirect-block allocation order.
const (
	maxOff      = 64 << 10
	maxIO       = 16 << 10
	maxStreamIO = 24 << 10
	pipeCap     = 16 << 10
)

type op struct {
	idx    int
	worker int
	kind   opKind

	disk, slot   int // primary file
	disk2, slot2 int // splice destination
	off          int64
	size         int
	pat          byte
	sigTicks     int          // opSpliceSig: delay before posting the signal
	faultDisk    int          // opFault: which volume absorbs the fault
	faultBlk     int64        // opFault: physical block on the faulted volume
	faultRead    bool         // opFault: fail reads (else writes)
	think        sim.Duration // user-mode compute after the op
}

func (o *op) describe() string {
	switch o.kind {
	case opWrite:
		return fmt.Sprintf("write d%d/f%d off=%d n=%d pat=%#02x", o.disk, o.slot, o.off, o.size, o.pat)
	case opRead:
		return fmt.Sprintf("read d%d/f%d off=%d n=%d", o.disk, o.slot, o.off, o.size)
	case opSeqRead:
		return fmt.Sprintf("seq-read d%d/f%d chunk=%d", o.disk, o.slot, o.size)
	case opMmapRead:
		return fmt.Sprintf("mmap-read d%d/f%d", o.disk, o.slot)
	case opMmapWrite:
		return fmt.Sprintf("mmap-write d%d/f%d off=%d n=%d pat=%#02x", o.disk, o.slot, o.off, o.size, o.pat)
	case opMsync:
		return fmt.Sprintf("msync d%d/f%d off=%d n=%d pat=%#02x", o.disk, o.slot, o.off, o.size, o.pat)
	case opTrunc:
		return fmt.Sprintf("trunc d%d/f%d", o.disk, o.slot)
	case opUnlink:
		return fmt.Sprintf("unlink d%d/f%d", o.disk, o.slot)
	case opFsync:
		return fmt.Sprintf("fsync d%d/f%d", o.disk, o.slot)
	case opSpliceFF:
		return fmt.Sprintf("splice d%d/f%d -> d%d/f%d", o.disk, o.slot, o.disk2, o.slot2)
	case opSplicePipe:
		return fmt.Sprintf("splice d%d/f%d -> pipe", o.disk, o.slot)
	case opPipeSplice:
		return fmt.Sprintf("splice pipe -> d%d/f%d n=%d", o.disk, o.slot, o.size)
	case opSpliceSock:
		return fmt.Sprintf("splice d%d/f%d -> socket", o.disk, o.slot)
	case opSpliceSig:
		return fmt.Sprintf("splice d%d/f%d -> d%d/f%d sig@%d", o.disk, o.slot, o.disk2, o.slot2, o.sigTicks)
	case opFault:
		mode := "write"
		if o.faultRead {
			mode = "read"
		}
		return fmt.Sprintf("fault d%d blk=%d on %s", o.faultDisk, o.faultBlk, mode)
	case opCrash:
		return "crash-recover"
	case opTraceSnap:
		return "trace-snapshot"
	case opStreamConn:
		return "stream-connect"
	case opStreamXfer:
		return fmt.Sprintf("stream-transfer n=%d pat=%#02x", o.size, o.pat)
	case opPollWait:
		return fmt.Sprintf("poll-wait n=%d delay=%d pat=%#02x", o.size, o.sigTicks, o.pat)
	case opEventServe:
		return fmt.Sprintf("event-serve n=%d pat=%#02x", o.size, o.pat)
	case opReadv:
		return fmt.Sprintf("readv d%d/f%d off=%d n=%d", o.disk, o.slot, o.off, o.size)
	case opWritev:
		return fmt.Sprintf("writev d%d/f%d off=%d n=%d pat=%#02x", o.disk, o.slot, o.off, o.size, o.pat)
	case opBatch:
		return fmt.Sprintf("batch-submit d%d/f%d off=%d n=%d pat=%#02x", o.disk, o.slot, o.off, o.size, o.pat)
	default:
		return fmt.Sprintf("op?%d", int(o.kind))
	}
}

// genOps derives the full op sequence from the seed. Generation is the
// only place randomness enters the harness; execution is a pure
// function of this list.
func genOps(cfg Config) []*op {
	r := sim.NewRand(cfg.Seed)
	ops := make([]*op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		o := &op{
			idx:    i,
			worker: r.Intn(cfg.Workers),
			disk:   r.Intn(2),
			slot:   r.Intn(slotsPerWk),
			off:    r.Int63n(maxOff),
			size:   1 + r.Intn(maxIO),
			pat:    byte(1 + r.Intn(255)),
			think:  sim.Duration(r.Intn(3)) * 700 * sim.Microsecond,
		}
		// Weighted kind selection: plain file traffic dominates; mapped
		// I/O, splice variants, readiness multiplexing, and fault/signal
		// events season the mix.
		switch w := r.Intn(100); {
		case w < 13:
			o.kind = opWrite
		case w < 18:
			o.kind = opWritev
		case w < 24:
			o.kind = opRead
		case w < 28:
			o.kind = opReadv
		case w < 33:
			o.kind = opSeqRead
		case w < 37:
			o.kind = opTrunc
		case w < 41:
			o.kind = opUnlink
		case w < 45:
			o.kind = opFsync
		case w < 49:
			o.kind = opMmapRead
		case w < 53:
			o.kind = opMmapWrite
		case w < 56:
			o.kind = opMsync
		case w < 61:
			o.kind = opSpliceFF
		case w < 64:
			o.kind = opBatch
		case w < 68:
			o.kind = opSplicePipe
		case w < 72:
			o.kind = opPipeSplice
			o.size = 1 + r.Intn(maxStreamIO)
		case w < 76:
			o.kind = opSpliceSock
		case w < 79:
			o.kind = opSpliceSig
			o.sigTicks = 1 + r.Intn(15)
		case w < 81:
			o.kind = opTraceSnap
		case w < 84:
			o.kind = opFault
			o.faultDisk = r.Intn(2)
			if o.faultDisk == 0 {
				o.faultBlk = r.Int63n(d0Blocks)
			} else {
				o.faultBlk = r.Int63n(d1Blocks)
			}
			o.faultRead = r.Intn(2) == 0
		case w < 87:
			o.kind = opStreamConn
		case w < 90:
			o.kind = opPollWait
			o.sigTicks = 1 + r.Intn(10)
			o.size = 1 + r.Intn(4<<10)
		case w < 93:
			o.kind = opEventServe
			o.size = 1 + r.Intn(maxStreamIO)
		default:
			o.kind = opStreamXfer
			o.size = 1 + r.Intn(maxStreamIO)
		}
		if o.kind == opSpliceFF || o.kind == opSpliceSig {
			o.disk2 = r.Intn(2)
			o.slot2 = r.Intn(slotsPerWk)
			if o.disk2 == o.disk && o.slot2 == o.slot {
				o.slot2 = (o.slot2 + 1) % slotsPerWk
			}
		}
		ops = append(ops, o)
	}
	return ops
}

// path names worker w's file in slot s on the given volume. Workers own
// disjoint file sets, so each file's oracle entry is updated by exactly
// one op stream, in that stream's order.
func (m *machine) path(w, disk, slot int) string {
	return fmt.Sprintf("/d%d/w%df%d", disk, w, slot)
}

// fillPattern writes the position-dependent test pattern: recognizable,
// cheap, and different for every (pat, offset).
func fillPattern(dst []byte, off int64, pat byte) {
	for i := range dst {
		dst[i] = pat ^ byte(off+int64(i))
	}
}

// worker executes its share of the op sequence.
func (m *machine) worker(p *kernel.Proc, w int, ops []*op) {
	defer func() {
		m.workersLeft--
		m.k.Wakeup(&m.workersLeft)
	}()
	for _, o := range ops {
		if m.violation != nil {
			break
		}
		m.curOp = fmt.Sprintf("op %d (w%d %s)", o.idx, w, o.describe())
		m.execOp(p, w, o)
		m.opsDone++
		// Fault site: the machine can lose power at any op boundary. Only
		// single-worker boundaries are eligible (a sibling mid-op would
		// break doCrash's quiescence contract), and only while no disk
		// defect is armed (an opFault-injected defect could have made a
		// create non-durable, voiding the durability oracle). Both gates
		// are pure functions of the run so far, so the census and armed
		// runs count identically.
		if m.cfg.Workers == 1 && o.kind != opCrash && !m.faulted[0] && !m.faulted[1] &&
			m.k.Faults().Hit(SiteCrashBoundary, int64(o.idx)) {
			m.logf("op %d w%d: crash-boundary fault fired", o.idx, w)
			m.doCrash(p, w, o)
		}
		if m.cfg.Damage != "" && !m.damaged && m.opsDone >= m.cfg.DamageAfter {
			m.damaged = true
			m.cache.Damage(m.cfg.Damage)
			m.logf("op %d: damaged buffer cache (%s)", o.idx, m.cfg.Damage)
			// Check synchronously: the corruption must be caught before
			// this worker's continuation can trip over it (the probe only
			// runs at the next scheduling boundary).
			m.probe()
		}
		if o.think > 0 {
			p.Use(o.think, false)
		}
	}
}

func (m *machine) execOp(p *kernel.Proc, w int, o *op) {
	switch o.kind {
	case opWrite:
		m.doWrite(p, w, o)
	case opRead:
		m.doRead(p, w, o)
	case opSeqRead:
		m.doSeqRead(p, w, o)
	case opMmapRead:
		m.doMmapRead(p, w, o)
	case opMmapWrite:
		m.doMmapWrite(p, w, o)
	case opMsync:
		m.doMsync(p, w, o)
	case opTrunc:
		m.doTrunc(p, w, o)
	case opUnlink:
		m.doUnlink(p, w, o)
	case opFsync:
		m.doFsync(p, w, o)
	case opSpliceFF:
		m.doSpliceFF(p, w, o, false)
	case opSpliceSig:
		m.doSpliceFF(p, w, o, true)
	case opSplicePipe:
		m.doSplicePipe(p, w, o)
	case opPipeSplice:
		m.doPipeSplice(p, w, o)
	case opSpliceSock:
		m.doSpliceSock(p, w, o)
	case opFault:
		m.disks[o.faultDisk].InjectFault(o.faultBlk, o.faultRead, !o.faultRead, 1)
		m.faulted[o.faultDisk] = true
		m.logf("op %d w%d %s", o.idx, w, o.describe())
	case opTraceSnap:
		m.doTraceSnap(o, w)
	case opStreamConn:
		m.doStreamConn(p, w, o)
	case opStreamXfer:
		m.doStreamXfer(p, w, o)
	case opPollWait:
		m.doPollWait(p, w, o)
	case opEventServe:
		m.doEventServe(p, w, o)
	case opReadv:
		m.doReadv(p, w, o)
	case opWritev:
		m.doWritev(p, w, o)
	case opBatch:
		m.doBatch(p, w, o)
	case opCrash:
		m.doCrash(p, w, o)
	}
}

// doTraceSnap folds the current counter snapshot into the event log:
// the snapshot is a pure function of the event stream so far, so replay
// divergence in any counter shows up as a digest mismatch, and the
// mid-run aggregator/stream cross-check runs under live load.
func (m *machine) doTraceSnap(o *op, w int) {
	if err := m.tchk.CheckMetrics(m.tr.Metrics()); err != nil {
		m.fail(err)
		return
	}
	snap := m.tr.Metrics().Snapshot()
	var sum uint64 = 14695981039346656037
	for _, c := range snap {
		for i := 0; i < len(c.Name); i++ {
			sum ^= uint64(c.Name[i])
			sum *= 1099511628211
		}
		sum ^= uint64(c.Value)
		sum *= 1099511628211
	}
	m.opLog(o, w, "counters=%d events=%d sum=%016x", len(snap), m.tr.Metrics().Events(), sum)
}

func (m *machine) opLog(o *op, w int, format string, args ...any) {
	m.logf("op %d w%d %s: %s t=%v", o.idx, w, o.describe(), fmt.Sprintf(format, args...), m.k.Now())
}

func (m *machine) doWrite(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	fd, err := p.Open(path, kernel.OCreat|kernel.ORdWr)
	if err != nil {
		m.taintEnsure(path)
		m.opLog(o, w, "open: %v", err)
		return
	}
	data := make([]byte, o.size)
	fillPattern(data, o.off, o.pat)
	if _, err := p.Lseek(fd, o.off, kernel.SeekSet); err != nil {
		p.Close(fd)
		m.taintEnsure(path)
		m.opLog(o, w, "lseek: %v", err)
		return
	}
	n, werr := p.Write(fd, data)
	p.Close(fd)
	of := m.ensure(path)
	// The open succeeded, so the name is durably on the platter (ordered
	// dirEnter); the write itself is delayed, so any durable content
	// snapshot from an earlier fsync is stale from here on.
	of.created = true
	of.syncedOK = false
	if werr != nil || n != len(data) {
		// Partial writes (ENOSPC on the tight volume) leave the tail
		// unpredictable: some blocks landed, some did not.
		of.tainted = true
		m.opLog(o, w, "write: n=%d err=%v (tainted)", n, werr)
		return
	}
	end := o.off + int64(n)
	if int64(len(of.data)) < end {
		of.data = append(of.data, make([]byte, end-int64(len(of.data)))...)
	}
	copy(of.data[o.off:end], data)
	m.opLog(o, w, "ok n=%d", n)
}

func (m *machine) doRead(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	of := m.oracle[path]
	fd, err := p.Open(path, kernel.ORdOnly)
	if err != nil {
		if errors.Is(err, kernel.ErrNoEnt) {
			if of != nil && !of.tainted && m.checkable(o.disk) {
				m.fail(fmt.Errorf("oracle-exists: open %s: %v, but oracle has %d bytes", path, err, len(of.data)))
				return
			}
			m.opLog(o, w, "absent")
			return
		}
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "open: %v", err)
		return
	}
	if of == nil && m.checkable(o.disk) {
		p.Close(fd)
		m.fail(fmt.Errorf("oracle-absent: %s opened but the oracle says it was never created", path))
		return
	}
	data := make([]byte, o.size)
	if _, err := p.Lseek(fd, o.off, kernel.SeekSet); err != nil {
		p.Close(fd)
		m.opLog(o, w, "lseek: %v", err)
		return
	}
	n, rerr := p.Read(fd, data)
	p.Close(fd)
	if rerr != nil {
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "read: %v", rerr)
		return
	}
	if of == nil || of.tainted || !m.checkable(o.disk) {
		m.opLog(o, w, "n=%d (unchecked)", n)
		return
	}
	want := 0
	if o.off < int64(len(of.data)) {
		want = len(of.data) - int(o.off)
		if want > o.size {
			want = o.size
		}
	}
	if n != want {
		m.fail(fmt.Errorf("oracle-size: read %s off=%d returned %d bytes, oracle expects %d", path, o.off, n, want))
		return
	}
	if n == 0 {
		m.opLog(o, w, "ok n=0 (past eof)")
		return
	}
	if i := firstDiff(data[:n], of.data[o.off:o.off+int64(n)]); i >= 0 {
		m.fail(fmt.Errorf("oracle-content: %s differs at byte %d: disk %#02x, oracle %#02x",
			path, o.off+int64(i), data[i], of.data[o.off+int64(i)]))
		return
	}
	m.opLog(o, w, "ok n=%d", n)
}

// doSeqRead scans the whole file start to finish in seed-derived
// chunks — the access pattern the adaptive readahead engine exists
// for. Each chunked read continues exactly where the previous one
// ended, so the inode's window grows and asynchronous readaheads flow
// through the cache's budgeted issue path while the probe re-validates
// the readahead invariants (flag discipline, pending count, budget
// clamp) at every boundary. The drained bytes verify against the
// oracle like any read.
func (m *machine) doSeqRead(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	of := m.oracle[path]
	fd, err := p.Open(path, kernel.ORdOnly)
	if err != nil {
		if errors.Is(err, kernel.ErrNoEnt) {
			if of != nil && !of.tainted && m.checkable(o.disk) {
				m.fail(fmt.Errorf("oracle-exists: open %s: %v, but oracle has %d bytes", path, err, len(of.data)))
				return
			}
			m.opLog(o, w, "absent")
			return
		}
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "open: %v", err)
		return
	}
	if of == nil && m.checkable(o.disk) {
		p.Close(fd)
		m.fail(fmt.Errorf("oracle-absent: %s opened but the oracle says it was never created", path))
		return
	}
	// Chunks smaller than a block keep consecutive reads inside and
	// across block boundaries strictly sequential.
	chunk := 1 + o.size/4
	var got []byte
	buf := make([]byte, chunk)
	for {
		n, rerr := p.Read(fd, buf)
		if rerr != nil {
			p.Close(fd)
			if of != nil {
				of.tainted = true
			}
			m.opLog(o, w, "read: %v", rerr)
			return
		}
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	p.Close(fd)
	if of == nil || of.tainted || !m.checkable(o.disk) {
		m.opLog(o, w, "n=%d (unchecked)", len(got))
		return
	}
	if len(got) != len(of.data) {
		m.fail(fmt.Errorf("oracle-size: seq-read %s drained %d bytes, oracle expects %d", path, len(got), len(of.data)))
		return
	}
	if i := firstDiff(got, of.data); i >= 0 {
		m.fail(fmt.Errorf("oracle-content: %s differs at byte %d: disk %#02x, oracle %#02x",
			path, i, got[i], of.data[i]))
		return
	}
	m.opLog(o, w, "ok n=%d", len(got))
}

func (m *machine) doTrunc(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	fd, err := p.Open(path, kernel.OCreat|kernel.ORdWr|kernel.OTrunc)
	if err != nil {
		m.taintEnsure(path)
		m.opLog(o, w, "open: %v", err)
		return
	}
	p.Close(fd)
	of := m.ensure(path)
	// Truncation resets the contents to a known state, clearing taint.
	// It is also durable: truncate writes the cleared inode
	// synchronously before freeing blocks, so after a crash the file is
	// exactly empty.
	of.data = nil
	of.tainted = false
	of.created = true
	of.synced = nil
	of.syncedOK = true
	m.opLog(o, w, "ok")
}

func (m *machine) doUnlink(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	of := m.oracle[path]
	err := p.Unlink(path)
	switch {
	case err == nil:
		delete(m.oracle, path)
		m.opLog(o, w, "ok")
	case errors.Is(err, kernel.ErrNoEnt):
		if of != nil && !of.tainted && m.checkable(o.disk) {
			m.fail(fmt.Errorf("oracle-exists: unlink %s: %v, but oracle has %d bytes", path, err, len(of.data)))
			return
		}
		m.opLog(o, w, "absent")
	default:
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "unlink: %v", err)
	}
}

func (m *machine) doFsync(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	fd, err := p.Open(path, kernel.ORdWr)
	if err != nil {
		m.opLog(o, w, "open: %v", err)
		return
	}
	serr := p.Fsync(fd)
	p.Close(fd)
	of := m.ensure(path)
	if serr != nil {
		// A failed fsync flushed an unknown subset: current content and
		// the durable image are both unpredictable.
		of.tainted = true
		of.syncedOK = false
		m.opLog(o, w, "fsync: %v", serr)
		return
	}
	if !of.tainted {
		// The contract under test: a successful fsync makes this exact
		// content durable, surviving any later crash byte-exact.
		of.synced = append([]byte(nil), of.data...)
		of.syncedOK = true
	}
	m.opLog(o, w, "ok")
}

// doSpliceFF runs the block engine: splice(src → dst, EOF). With sig
// set, a signal is posted to the caller mid-transfer, exercising the
// interrupt-drain path; the partial destination is tainted.
func (m *machine) doSpliceFF(p *kernel.Proc, w int, o *op, sig bool) {
	src := m.path(w, o.disk, o.slot)
	dst := m.path(w, o.disk2, o.slot2)
	sfd, err := p.Open(src, kernel.ORdOnly)
	if err != nil {
		m.opLog(o, w, "open src: %v", err)
		return
	}
	dfd, err := p.Open(dst, kernel.OCreat|kernel.ORdWr)
	if err != nil {
		p.Close(sfd)
		m.taintEnsure(dst)
		m.opLog(o, w, "open dst: %v", err)
		return
	}
	var c *kernel.Callout
	if sig {
		self := p
		c = m.k.Timeout(func() { m.k.Post(self, kernel.SIGIO) }, o.sigTicks)
	}
	n, serr := splice.Splice(p, sfd, dfd, splice.EOF)
	if c != nil {
		m.k.Untimeout(c)
		p.DeliverSignals()
	}
	p.Close(sfd)
	p.Close(dfd)

	oso := m.oracle[src]
	odo := m.ensure(dst)
	// The destination name is durable (open succeeded); its content and
	// metadata were (possibly) rewritten with delayed metadata, so any
	// earlier fsync snapshot no longer matches the platter.
	odo.created = true
	odo.syncedOK = false
	srcKnown := oso != nil && !oso.tainted && m.checkable(o.disk)
	switch {
	case serr != nil:
		// Interrupted or failed: the destination prefix is whatever
		// drained before the stop.
		odo.tainted = true
		m.opLog(o, w, "moved=%d err=%v (dst tainted)", n, serr)
	case !srcKnown:
		if n > 0 {
			odo.tainted = true
		}
		m.opLog(o, w, "moved=%d (src unchecked, dst tainted)", n)
	default:
		if n != int64(len(oso.data)) && m.checkable(o.disk2) {
			m.fail(fmt.Errorf("oracle-splice: %s -> %s moved %d bytes, oracle expects %d", src, dst, n, len(oso.data)))
			return
		}
		// Splice overwrites the prefix; a longer destination keeps its
		// tail (SpliceSetSize only ever extends).
		if int64(len(odo.data)) < n {
			odo.data = append(odo.data, make([]byte, n-int64(len(odo.data)))...)
		}
		copy(odo.data[:n], oso.data)
		m.opLog(o, w, "ok moved=%d", n)
	}
}

// doSplicePipe splices a file into a fresh pipe while a spawned reader
// drains it, verifying the drained bytes against the oracle.
func (m *machine) doSplicePipe(p *kernel.Proc, w int, o *op) {
	src := m.path(w, o.disk, o.slot)
	sfd, err := p.Open(src, kernel.ORdOnly)
	if err != nil {
		m.opLog(o, w, "open src: %v", err)
		return
	}
	size, err := p.FileSize(sfd)
	if err != nil || size == 0 {
		p.Close(sfd)
		m.opLog(o, w, "empty src (size=%d err=%v)", size, err)
		return
	}
	n := size
	if n > 32<<10 {
		n = 32 << 10
	}

	pipe := dev.NewPipe(m.k, "", pipeCap)
	pfd := p.InstallFile(pipe, kernel.OWrOnly)

	var (
		got      []byte
		doneFlag bool
	)
	m.k.Spawn(fmt.Sprintf("drain%d", o.idx), func(rp *kernel.Proc) {
		rfd := rp.InstallFile(pipe, kernel.ORdOnly)
		buf := make([]byte, 4096)
		for int64(len(got)) < n {
			r, err := rp.Read(rfd, buf)
			if err != nil || r == 0 {
				break
			}
			got = append(got, buf[:r]...)
		}
		doneFlag = true
		m.k.Wakeup(&doneFlag)
	})

	moved, serr := splice.Splice(p, sfd, pfd, n)
	if serr != nil && moved < n {
		// Release the reader: push filler for the bytes that never came.
		filler := make([]byte, n-moved)
		p.Write(pfd, filler)
	}
	for !doneFlag {
		if err := p.Sleep(&doneFlag, kernel.PSLEP); err != nil {
			p.DeliverSignals()
		}
	}
	p.Close(sfd)
	p.Close(pfd)

	of := m.oracle[src]
	if serr != nil || of == nil || of.tainted || !m.checkable(o.disk) {
		m.opLog(o, w, "moved=%d err=%v (unchecked)", moved, serr)
		return
	}
	if moved != n || int64(len(got)) != n {
		m.fail(fmt.Errorf("oracle-pipe: %s -> pipe moved %d, drained %d, want %d", src, moved, len(got), n))
		return
	}
	if i := firstDiff(got, of.data[:n]); i >= 0 {
		m.fail(fmt.Errorf("oracle-pipe-content: %s -> pipe differs at byte %d: got %#02x, oracle %#02x", src, i, got[i], of.data[i]))
		return
	}
	m.opLog(o, w, "ok moved=%d", moved)
}

// doPipeSplice splices from a pipe into a file (the source→file staging
// engine) while a spawned writer feeds the pipe a known pattern.
func (m *machine) doPipeSplice(p *kernel.Proc, w int, o *op) {
	dst := m.path(w, o.disk, o.slot)
	dfd, err := p.Open(dst, kernel.OCreat|kernel.ORdWr|kernel.OTrunc)
	if err != nil {
		m.taintEnsure(dst)
		m.opLog(o, w, "open dst: %v", err)
		return
	}
	n := int64(o.size)
	pipe := dev.NewPipe(m.k, "", pipeCap)
	pfd := p.InstallFile(pipe, kernel.ORdOnly)

	m.k.Spawn(fmt.Sprintf("feed%d", o.idx), func(wp *kernel.Proc) {
		wfd := wp.InstallFile(pipe, kernel.OWrOnly)
		data := make([]byte, n)
		fillPattern(data, 0, o.pat)
		wp.Write(wfd, data)
	})

	moved, serr := splice.Splice(p, pfd, dfd, n)
	p.Close(pfd)
	p.Close(dfd)

	of := m.ensure(dst)
	of.created = true
	of.syncedOK = false
	if serr != nil || moved != n {
		of.tainted = true
		m.opLog(o, w, "moved=%d err=%v (tainted)", moved, serr)
		return
	}
	of.data = make([]byte, n)
	fillPattern(of.data, 0, o.pat)
	of.tainted = false
	m.opLog(o, w, "ok moved=%d", moved)
}

// doSpliceSock splices a file into a datagram socket while a spawned
// reader drains the peer socket.
func (m *machine) doSpliceSock(p *kernel.Proc, w int, o *op) {
	src := m.path(w, o.disk, o.slot)
	sfd, err := p.Open(src, kernel.ORdOnly)
	if err != nil {
		m.opLog(o, w, "open src: %v", err)
		return
	}
	size, err := p.FileSize(sfd)
	if err != nil || size == 0 {
		p.Close(sfd)
		m.opLog(o, w, "empty src (size=%d err=%v)", size, err)
		return
	}
	n := size
	if n > maxStreamIO {
		n = maxStreamIO
	}

	// Fresh port pair per op: sockets close with their procs' fd tables.
	portA, portB := 1000+2*o.idx, 1001+2*o.idx
	sa, err := m.net.NewSocket(portA)
	if err != nil {
		p.Close(sfd)
		m.opLog(o, w, "socket: %v", err)
		return
	}
	sb, err := m.net.NewSocket(portB)
	if err != nil {
		p.Close(sfd)
		m.opLog(o, w, "socket: %v", err)
		return
	}
	sa.Connect(portB)
	afd := p.InstallFile(sa, kernel.OWrOnly)

	var (
		got      []byte
		doneFlag bool
	)
	m.k.Spawn(fmt.Sprintf("recv%d", o.idx), func(rp *kernel.Proc) {
		bfd := rp.InstallFile(sb, kernel.ORdOnly)
		// Datagram reads truncate to the buffer (recvfrom semantics), so
		// the buffer must cover the largest datagram any path sends.
		buf := make([]byte, 32<<10)
		for int64(len(got)) < n {
			r, err := rp.Read(bfd, buf)
			if err != nil || r == 0 {
				break
			}
			got = append(got, buf[:r]...)
		}
		doneFlag = true
		m.k.Wakeup(&doneFlag)
	})

	moved, serr := splice.Splice(p, sfd, afd, n)
	if serr != nil && moved < n {
		filler := make([]byte, n-moved)
		p.Write(afd, filler)
	}
	// Close the sending socket before waiting for the reader: the close
	// queues an EOF marker, which is zero-length and therefore immune to
	// the datagram fault sites (drop/dup/reorder act on data packets
	// only), so the reader terminates even when an armed fault ate one
	// of the datagrams it is counting on.
	p.Close(afd)
	for !doneFlag {
		if err := p.Sleep(&doneFlag, kernel.PSLEP); err != nil {
			p.DeliverSignals()
		}
	}
	p.Close(sfd)

	of := m.oracle[src]
	if serr != nil || of == nil || of.tainted || !m.checkable(o.disk) {
		m.opLog(o, w, "moved=%d err=%v (unchecked)", moved, serr)
		return
	}
	if m.netFaulted {
		// An armed fault on the oracle net perturbed delivery: a dropped
		// datagram shortens got, a duplicate lengthens it, a reorder
		// scrambles it. The splice-side accounting is still exact.
		if moved != n {
			m.fail(fmt.Errorf("oracle-sock: %s -> socket moved %d, want %d (net fault perturbs delivery, not the splice)", src, moved, n))
			return
		}
		m.opLog(o, w, "moved=%d drained=%d (net faulted, delivery unchecked)", moved, len(got))
		return
	}
	if moved != n || int64(len(got)) != n {
		m.fail(fmt.Errorf("oracle-sock: %s -> socket moved %d, drained %d, want %d", src, moved, len(got), n))
		return
	}
	if i := firstDiff(got, of.data[:n]); i >= 0 {
		m.fail(fmt.Errorf("oracle-sock-content: %s -> socket differs at byte %d: got %#02x, oracle %#02x", src, i, got[i], of.data[i]))
		return
	}
	m.opLog(o, w, "ok moved=%d", moved)
}

// streamPorts allocates the per-op port pair on the lossy net. Four
// apart so an op's transports can never collide with a neighbour's.
func streamPorts(o *op) (int, int) {
	return 5000 + 4*o.idx, 5002 + 4*o.idx
}

// doStreamConn exercises the transport handshake and teardown under
// loss: SYN, SYN-ACK, FIN exchanges all cross the dropping link, so
// every control segment's retransmission path gets fuzzed. The op
// succeeds only if both sides close cleanly; the client's retransmit
// count is folded into the log, so a replay that retransmits
// differently diverges the digest.
func (m *machine) doStreamConn(p *kernel.Proc, w int, o *op) {
	srvPort, cliPort := streamPorts(o)
	st, err := stream.NewTransport(m.k, m.snet, srvPort)
	if err != nil {
		m.fail(fmt.Errorf("stream-conn: server transport: %w", err))
		return
	}
	ct, err := stream.NewTransport(m.k, m.snet, cliPort)
	if err != nil {
		m.fail(fmt.Errorf("stream-conn: client transport: %w", err))
		return
	}

	var (
		doneFlag bool
		srvErr   error
	)
	m.k.Spawn(fmt.Sprintf("acc%d", o.idx), func(rp *kernel.Proc) {
		if err := st.Listen(rp); err != nil {
			srvErr = err
		} else if fd, _, err := st.Accept(rp); err != nil {
			srvErr = err
		} else {
			srvErr = rp.Close(fd)
		}
		doneFlag = true
		m.k.Wakeup(&doneFlag)
	})

	fd, conn, cerr := ct.Connect(p, srvPort)
	if cerr == nil {
		cerr = p.Close(fd)
	}
	for !doneFlag {
		if err := p.Sleep(&doneFlag, kernel.PSLEP); err != nil {
			p.DeliverSignals()
		}
	}
	if cerr != nil || srvErr != nil {
		m.fail(fmt.Errorf("stream-conn: client err %v, server err %v", cerr, srvErr))
		return
	}
	m.opLog(o, w, "ok retx=%d", conn.Retransmits())
}

// doStreamXfer pushes a generated pattern through a full stream
// connection over the dropping link and requires byte-exact in-order
// delivery. Unlike the splice-to-socket op this one needs no file
// oracle: the expected bytes are a pure function of (pat, size), so
// the check is self-contained and survives op-sequence bisection.
func (m *machine) doStreamXfer(p *kernel.Proc, w int, o *op) {
	srvPort, cliPort := streamPorts(o)
	st, err := stream.NewTransport(m.k, m.snet, srvPort)
	if err != nil {
		m.fail(fmt.Errorf("stream-xfer: server transport: %w", err))
		return
	}
	ct, err := stream.NewTransport(m.k, m.snet, cliPort)
	if err != nil {
		m.fail(fmt.Errorf("stream-xfer: client transport: %w", err))
		return
	}
	want := make([]byte, o.size)
	fillPattern(want, 0, o.pat)

	var (
		got      []byte
		doneFlag bool
		srvRetx  int64
		srvErr   error
	)
	m.k.Spawn(fmt.Sprintf("str%d", o.idx), func(rp *kernel.Proc) {
		defer func() {
			doneFlag = true
			m.k.Wakeup(&doneFlag)
		}()
		if err := st.Listen(rp); err != nil {
			srvErr = err
			return
		}
		fd, sc, err := st.Accept(rp)
		if err != nil {
			srvErr = err
			return
		}
		buf := make([]byte, 8<<10)
		for {
			n, err := rp.Read(fd, buf)
			if err != nil {
				srvErr = err
				break
			}
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if err := rp.Close(fd); err != nil && srvErr == nil {
			srvErr = err
		}
		srvRetx = sc.Retransmits()
	})

	fd, conn, cerr := ct.Connect(p, srvPort)
	if cerr == nil {
		if n, err := p.Write(fd, want); err != nil {
			cerr = err
		} else if n != len(want) {
			cerr = fmt.Errorf("short write: %d of %d", n, len(want))
		}
		if err := p.Close(fd); err != nil && cerr == nil {
			cerr = err
		}
	}
	for !doneFlag {
		if err := p.Sleep(&doneFlag, kernel.PSLEP); err != nil {
			p.DeliverSignals()
		}
	}
	if cerr != nil || srvErr != nil {
		m.fail(fmt.Errorf("stream-xfer: client err %v, server err %v", cerr, srvErr))
		return
	}
	if len(got) != len(want) {
		m.fail(fmt.Errorf("stream-xfer: delivered %d bytes, want %d", len(got), len(want)))
		return
	}
	if i := firstDiff(got, want); i >= 0 {
		m.fail(fmt.Errorf("stream-xfer-content: byte %d differs: got %#02x, want %#02x", i, got[i], want[i]))
		return
	}
	m.opLog(o, w, "ok retx=%d/%d", conn.Retransmits(), srvRetx)
}

// doPollWait polls a nonblocking pipe read end while a spawned feeder
// sleeps a seed-derived number of ticks and then writes a known
// pattern. The op-level invariant is the poll contract itself: once
// poll reports the descriptor ready, the very next read must not
// return ErrWouldBlock — a would-block there is a false-ready (or a
// wakeup delivered without cause). Three variants cover the timeout
// shapes: infinite wait, a bounded wait that may expire and re-poll,
// and a zero-timeout scan before the real wait.
func (m *machine) doPollWait(p *kernel.Proc, w int, o *op) {
	pipe := dev.NewPipe(m.k, "", pipeCap)
	rfd := p.InstallFile(pipe, kernel.ORdOnly)
	if _, err := p.Fcntl(rfd, kernel.FSetFL, kernel.ONonblock); err != nil {
		m.fail(fmt.Errorf("poll-wait: fcntl: %v", err))
		return
	}
	n := o.size
	want := make([]byte, n)
	fillPattern(want, 0, o.pat)
	tick := m.k.Config().TickDuration()

	var fedFlag bool
	m.k.Spawn(fmt.Sprintf("pfeed%d", o.idx), func(wp *kernel.Proc) {
		wfd := wp.InstallFile(pipe, kernel.OWrOnly)
		wp.SleepFor(sim.Duration(o.sigTicks) * tick)
		wp.Write(wfd, want)
		pipe.CloseWrite()
		wp.Close(wfd)
		fedFlag = true
		m.k.Wakeup(&fedFlag)
	})

	fds := []kernel.PollFd{{FD: rfd, Events: kernel.PollIn}}
	timeouts := 0
	poll := func() error { // block until ready, counting bounded-wait expiries
		for {
			ready, perr := p.Poll(fds, pollTimeout(o))
			if perr == kernel.ErrIntr {
				// EINTR: consume the signal and retry, as any real
				// program's poll loop would.
				p.DeliverSignals()
				continue
			}
			if perr != nil {
				return perr
			}
			if ready > 0 {
				if fds[0].Revents&(kernel.PollIn|kernel.PollHup) == 0 {
					return fmt.Errorf("poll-ready-bits: revents=%#x lacks POLLIN/POLLHUP", fds[0].Revents)
				}
				return nil
			}
			timeouts++
		}
	}
	if int(o.pat)%3 == 2 {
		// Zero-timeout scan first: exercises the non-blocking path. The
		// feeder usually hasn't run yet, but a quantum preemption can
		// legitimately delay us past its delay, so readiness here is
		// logged, not asserted.
		ready, perr := p.Poll(fds, 0)
		if perr != nil {
			m.fail(fmt.Errorf("poll-wait: zero-timeout poll: %v", perr))
			return
		}
		if ready > 0 {
			m.logf("op %d: zero-timeout poll already ready", o.idx)
		}
	}
	var got []byte
	buf := make([]byte, 1024)
	justPolled := false
	for len(got) < n {
		if !justPolled {
			if err := poll(); err != nil {
				m.fail(fmt.Errorf("poll-wait: %v", err))
				return
			}
			justPolled = true
		}
		r, rerr := p.Read(rfd, buf)
		if rerr == kernel.ErrWouldBlock {
			if justPolled {
				m.fail(fmt.Errorf("poll-ready-read: descriptor reported ready but read would block (got %d of %d)", len(got), n))
				return
			}
			continue
		}
		if rerr != nil {
			m.fail(fmt.Errorf("poll-wait: read: %v", rerr))
			return
		}
		justPolled = false
		if r == 0 {
			break
		}
		got = append(got, buf[:r]...)
	}
	for !fedFlag {
		if err := p.Sleep(&fedFlag, kernel.PSLEP); err != nil {
			p.DeliverSignals()
		}
	}
	p.Close(rfd)
	if len(got) != n {
		m.fail(fmt.Errorf("poll-wait: drained %d bytes, want %d", len(got), n))
		return
	}
	if i := firstDiff(got, want); i >= 0 {
		m.fail(fmt.Errorf("poll-wait-content: byte %d differs: got %#02x, want %#02x", i, got[i], want[i]))
		return
	}
	m.opLog(o, w, "ok n=%d timeouts=%d", n, timeouts)
}

// pollTimeout derives the op's poll timeout: infinite for even
// patterns, a bounded wait (which may expire before the feeder's delay
// and force a re-poll) otherwise.
func pollTimeout(o *op) int {
	if int(o.pat)%3 == 1 {
		return 1 + o.sigTicks/2
	}
	return -1
}

// doEventServe runs a miniature single-process event-loop server over
// the lossy stream net: the op's own process polls the listener plus
// every accepted connection, accepts nonblockingly, reads the request
// byte nonblockingly, and pushes a patterned response through
// nonblocking writes gated on POLLOUT. One or two spawned clients each
// request once, verify the response byte-exactly, and close. Every
// dispatch enforces the readiness contract: a descriptor poll reported
// readable (writable) must make progress on read (write) without
// ErrWouldBlock.
func (m *machine) doEventServe(p *kernel.Proc, w int, o *op) {
	srvPort, cliPort := streamPorts(o)
	nclients := 1 + int(o.pat)%2
	size := o.size
	want := make([]byte, size)
	fillPattern(want, 0, o.pat)

	st, err := stream.NewTransport(m.k, m.snet, srvPort)
	if err != nil {
		m.fail(fmt.Errorf("event-serve: server transport: %w", err))
		return
	}
	if err := st.Listen(p); err != nil {
		m.fail(fmt.Errorf("event-serve: listen: %w", err))
		return
	}
	lfd := p.InstallFile(st.File(), kernel.ORdOnly)

	cliErrs := make([]error, nclients)
	left := nclients
	for c := 0; c < nclients; c++ {
		c := c
		ct, err := stream.NewTransport(m.k, m.snet, cliPort+c)
		if err != nil {
			m.fail(fmt.Errorf("event-serve: client transport: %w", err))
			return
		}
		m.k.Spawn(fmt.Sprintf("ecli%d.%d", o.idx, c), func(cp *kernel.Proc) {
			defer func() {
				left--
				m.k.Wakeup(&left)
			}()
			fd, _, err := ct.Connect(cp, srvPort)
			if err != nil {
				cliErrs[c] = err
				return
			}
			defer cp.Close(fd)
			if _, err := cp.Write(fd, []byte{1}); err != nil {
				cliErrs[c] = err
				return
			}
			got := make([]byte, 0, size)
			buf := make([]byte, 4096)
			for len(got) < size {
				n, err := cp.Read(fd, buf)
				if err != nil {
					cliErrs[c] = err
					return
				}
				if n == 0 {
					cliErrs[c] = fmt.Errorf("early eof after %d of %d bytes", len(got), size)
					return
				}
				got = append(got, buf[:n]...)
			}
			if i := firstDiff(got, want); i >= 0 {
				cliErrs[c] = fmt.Errorf("byte %d differs: got %#02x want %#02x", i, got[i], want[i])
			}
		})
	}

	// esconn is one connection's place in the serve cycle: waiting for
	// its request byte, pushing the response, or waiting for the
	// client's close.
	type esconn struct {
		fd     int
		gotReq bool
		sent   int
		dead   bool
	}
	var conns []*esconn
	accepted := 0
	fds := make([]kernel.PollFd, 0, nclients+1)
	owners := make([]*esconn, 0, nclients+1)
	for {
		live := 0
		for _, ec := range conns {
			if !ec.dead {
				live++
			}
		}
		if accepted == nclients && live == 0 {
			break
		}
		fds, owners = fds[:0], owners[:0]
		if accepted < nclients {
			fds = append(fds, kernel.PollFd{FD: lfd, Events: kernel.PollIn})
			owners = append(owners, nil)
		}
		for _, ec := range conns {
			if ec.dead {
				continue
			}
			ev := kernel.PollIn
			if ec.gotReq && ec.sent < size {
				ev = kernel.PollOut
			}
			fds = append(fds, kernel.PollFd{FD: ec.fd, Events: ev})
			owners = append(owners, ec)
		}
		if _, perr := p.Poll(fds, -1); perr != nil {
			if perr == kernel.ErrIntr {
				p.DeliverSignals()
				continue
			}
			m.fail(fmt.Errorf("event-serve: poll: %v", perr))
			return
		}
		for i := range fds {
			if fds[i].Revents == 0 {
				continue
			}
			if owners[i] == nil { // listener
				first := true
				for {
					cfd, _, aerr := st.AcceptNB(p)
					if aerr == kernel.ErrWouldBlock {
						if first {
							m.fail(fmt.Errorf("event-ready-accept: listener reported readable but accept would block"))
							return
						}
						break
					}
					if aerr != nil {
						m.fail(fmt.Errorf("event-serve: accept: %v", aerr))
						return
					}
					first = false
					if _, ferr := p.Fcntl(cfd, kernel.FSetFL, kernel.ONonblock); ferr != nil {
						m.fail(fmt.Errorf("event-serve: fcntl: %v", ferr))
						return
					}
					accepted++
					conns = append(conns, &esconn{fd: cfd})
				}
				continue
			}
			ec := owners[i]
			if ec.dead {
				continue
			}
			if !ec.gotReq || ec.sent >= size {
				b := make([]byte, 1)
				r, rerr := p.Read(ec.fd, b)
				if rerr == kernel.ErrWouldBlock {
					m.fail(fmt.Errorf("event-ready-read: connection reported readable but read would block"))
					return
				}
				if rerr != nil || r == 0 {
					// Client closed its half (after the response) or the
					// connection failed; either way this conn is done.
					ec.dead = true
					p.Close(ec.fd)
					continue
				}
				ec.gotReq = true
			}
			firstWrite := fds[i].Revents&kernel.PollOut != 0
			for ec.sent < size {
				wn, werr := p.Write(ec.fd, want[ec.sent:])
				if werr == kernel.ErrWouldBlock {
					if firstWrite {
						m.fail(fmt.Errorf("event-ready-write: connection reported writable but write would block"))
						return
					}
					break
				}
				if werr != nil {
					ec.dead = true
					p.Close(ec.fd)
					break
				}
				firstWrite = false
				ec.sent += wn
			}
		}
	}
	p.Close(lfd)
	for left > 0 {
		if err := p.Sleep(&left, kernel.PSLEP); err != nil {
			p.DeliverSignals()
		}
	}
	for c, cerr := range cliErrs {
		if cerr != nil {
			m.fail(fmt.Errorf("event-serve: client %d: %v", c, cerr))
			return
		}
	}
	m.opLog(o, w, "ok clients=%d", nclients)
}

// splitIovs carves total bytes into up to nvec independently allocated
// iovec buffers of near-equal size (empty tails are dropped), so the
// scatter/gather paths see genuinely discontiguous memory rather than
// views of one array.
func splitIovs(total, nvec int) [][]byte {
	if nvec < 1 {
		nvec = 1
	}
	iovs := make([][]byte, 0, nvec)
	for i := 0; i < nvec && total > 0; i++ {
		n := total / (nvec - i)
		if n == 0 {
			n = 1
		}
		iovs = append(iovs, make([]byte, n))
		total -= n
	}
	return iovs
}

// doReadv is doRead through the vectored path: the range is scattered
// across 2–4 independent iovecs in one crossing and the reassembled
// bytes must match the content oracle exactly — the iovec
// byte-conservation invariant (no gaps, overlaps, or reordering across
// segment boundaries). A partial-progress error latched on the
// descriptor is observed through PendingError and taints like a read
// error would.
func (m *machine) doReadv(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	of := m.oracle[path]
	fd, err := p.Open(path, kernel.ORdOnly)
	if err != nil {
		if errors.Is(err, kernel.ErrNoEnt) {
			if of != nil && !of.tainted && m.checkable(o.disk) {
				m.fail(fmt.Errorf("oracle-exists: open %s: %v, but oracle has %d bytes", path, err, len(of.data)))
				return
			}
			m.opLog(o, w, "absent")
			return
		}
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "open: %v", err)
		return
	}
	if of == nil && m.checkable(o.disk) {
		p.Close(fd)
		m.fail(fmt.Errorf("oracle-absent: %s opened but the oracle says it was never created", path))
		return
	}
	iovs := splitIovs(o.size, 2+int(o.pat)%3)
	if _, err := p.Lseek(fd, o.off, kernel.SeekSet); err != nil {
		p.Close(fd)
		m.opLog(o, w, "lseek: %v", err)
		return
	}
	n, rerr := p.Readv(fd, iovs)
	lerr := p.PendingError(fd)
	p.Close(fd)
	if rerr != nil || lerr != nil {
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "readv: err=%v latched=%v", rerr, lerr)
		return
	}
	if of == nil || of.tainted || !m.checkable(o.disk) {
		m.opLog(o, w, "n=%d (unchecked)", n)
		return
	}
	want := 0
	if o.off < int64(len(of.data)) {
		want = len(of.data) - int(o.off)
		if want > o.size {
			want = o.size
		}
	}
	if n != want {
		m.fail(fmt.Errorf("oracle-size: readv %s off=%d returned %d bytes, oracle expects %d", path, o.off, n, want))
		return
	}
	if n == 0 {
		m.opLog(o, w, "ok n=0 (past eof)")
		return
	}
	got := (kernel.Uio{Iovs: iovs}).Gather()[:n]
	if i := firstDiff(got, of.data[o.off:o.off+int64(n)]); i >= 0 {
		m.fail(fmt.Errorf("iovec-conservation: readv %s differs at byte %d: disk %#02x, oracle %#02x",
			path, o.off+int64(i), got[i], of.data[o.off+int64(i)]))
		return
	}
	m.opLog(o, w, "ok n=%d iovs=%d", n, len(iovs))
}

// doWritev is doWrite through the vectored path: the patterned range is
// gathered from 2–4 independent iovecs in one crossing. Anything short
// of full-vector completion — an error, a latched partial-progress
// error, or a short count — taints like a partial write.
func (m *machine) doWritev(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	fd, err := p.Open(path, kernel.OCreat|kernel.ORdWr)
	if err != nil {
		m.taintEnsure(path)
		m.opLog(o, w, "open: %v", err)
		return
	}
	data := make([]byte, o.size)
	fillPattern(data, o.off, o.pat)
	iovs := splitIovs(o.size, 2+int(o.pat)%3)
	rest := data
	for _, iov := range iovs {
		rest = rest[copy(iov, rest):]
	}
	if _, err := p.Lseek(fd, o.off, kernel.SeekSet); err != nil {
		p.Close(fd)
		m.taintEnsure(path)
		m.opLog(o, w, "lseek: %v", err)
		return
	}
	n, werr := p.Writev(fd, iovs)
	lerr := p.PendingError(fd)
	p.Close(fd)
	of := m.ensure(path)
	of.created = true
	of.syncedOK = false
	if werr != nil || lerr != nil || n != len(data) {
		of.tainted = true
		m.opLog(o, w, "writev: n=%d err=%v latched=%v (tainted)", n, werr, lerr)
		return
	}
	end := o.off + int64(n)
	if int64(len(of.data)) < end {
		of.data = append(of.data, make([]byte, end-int64(len(of.data)))...)
	}
	copy(of.data[o.off:end], data)
	m.opLog(o, w, "ok n=%d iovs=%d", n, len(iovs))
}

// doBatch exercises aggregated submission. The pattern byte picks the
// flavor: a read batch (lseek + two reads, verified against the oracle
// like doRead) or a write batch (lseek + two writes, optionally
// trailed by an in-batch fsync carrying doFsync's durability
// contract). Either way the batch-results invariant holds: Submit must
// return exactly one result per submitted op.
func (m *machine) doBatch(p *kernel.Proc, w int, o *op) {
	if int(o.pat)%3 == 0 {
		m.doBatchRead(p, w, o)
		return
	}
	m.doBatchWrite(p, w, o)
}

func (m *machine) doBatchWrite(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	fd, err := p.Open(path, kernel.OCreat|kernel.ORdWr)
	if err != nil {
		m.taintEnsure(path)
		m.opLog(o, w, "open: %v", err)
		return
	}
	data := make([]byte, o.size)
	fillPattern(data, o.off, o.pat)
	ops := []kernel.BatchOp{{Code: kernel.BatchLseek, FD: fd, Off: o.off, Whence: kernel.SeekSet}}
	tiled := 0
	for _, part := range splitIovs(o.size, 2) {
		tiled += copy(part, data[tiled:]) // parts tile data in order
		ops = append(ops, kernel.BatchOp{Code: kernel.BatchWrite, FD: fd, Buf: part})
	}
	withSync := int(o.pat)%2 == 0
	if withSync {
		ops = append(ops, kernel.BatchOp{Code: kernel.BatchFsync, FD: fd})
	}
	res := p.Submit(ops)
	p.Close(fd)
	if len(res) != len(ops) {
		m.fail(fmt.Errorf("batch-results-len: submitted %d ops, got %d results", len(ops), len(res)))
		return
	}
	of := m.ensure(path)
	of.created = true
	of.syncedOK = false
	n := 0
	var berr error
	for i, r := range res {
		if r.Err != nil && berr == nil {
			berr = r.Err
		}
		if ops[i].Code == kernel.BatchWrite {
			n += int(r.N)
		}
	}
	if berr != nil || n != len(data) {
		// Any op failing mid-batch (or a short write) leaves the range
		// partially applied, like a partial plain write.
		of.tainted = true
		m.opLog(o, w, "batch-write: n=%d err=%v (tainted)", n, berr)
		return
	}
	end := o.off + int64(n)
	if int64(len(of.data)) < end {
		of.data = append(of.data, make([]byte, end-int64(len(of.data)))...)
	}
	copy(of.data[o.off:end], data)
	if withSync && !of.tainted {
		// The in-batch fsync succeeded after both writes: this exact
		// content is durable (doFsync's contract, one crossing earlier).
		of.synced = append([]byte(nil), of.data...)
		of.syncedOK = true
	}
	m.opLog(o, w, "ok n=%d ops=%d sync=%v", n, len(ops), withSync)
}

func (m *machine) doBatchRead(p *kernel.Proc, w int, o *op) {
	path := m.path(w, o.disk, o.slot)
	of := m.oracle[path]
	fd, err := p.Open(path, kernel.ORdOnly)
	if err != nil {
		if errors.Is(err, kernel.ErrNoEnt) {
			if of != nil && !of.tainted && m.checkable(o.disk) {
				m.fail(fmt.Errorf("oracle-exists: open %s: %v, but oracle has %d bytes", path, err, len(of.data)))
				return
			}
			m.opLog(o, w, "absent")
			return
		}
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "open: %v", err)
		return
	}
	if of == nil && m.checkable(o.disk) {
		p.Close(fd)
		m.fail(fmt.Errorf("oracle-absent: %s opened but the oracle says it was never created", path))
		return
	}
	bufs := splitIovs(o.size, 2)
	ops := []kernel.BatchOp{{Code: kernel.BatchLseek, FD: fd, Off: o.off, Whence: kernel.SeekSet}}
	for _, buf := range bufs {
		ops = append(ops, kernel.BatchOp{Code: kernel.BatchRead, FD: fd, Buf: buf})
	}
	res := p.Submit(ops)
	p.Close(fd)
	if len(res) != len(ops) {
		m.fail(fmt.Errorf("batch-results-len: submitted %d ops, got %d results", len(ops), len(res)))
		return
	}
	n := 0
	got := make([]byte, 0, o.size)
	var berr error
	for i, r := range res {
		if r.Err != nil && berr == nil {
			berr = r.Err
		}
		if ops[i].Code == kernel.BatchRead && berr == nil {
			n += int(r.N)
			got = append(got, ops[i].Buf[:r.N]...)
		}
	}
	if berr != nil {
		if of != nil {
			of.tainted = true
		}
		m.opLog(o, w, "batch-read: %v", berr)
		return
	}
	if of == nil || of.tainted || !m.checkable(o.disk) {
		m.opLog(o, w, "n=%d (unchecked)", n)
		return
	}
	want := 0
	if o.off < int64(len(of.data)) {
		want = len(of.data) - int(o.off)
		if want > o.size {
			want = o.size
		}
	}
	if n != want {
		m.fail(fmt.Errorf("oracle-size: batch-read %s off=%d returned %d bytes, oracle expects %d", path, o.off, n, want))
		return
	}
	if n == 0 {
		m.opLog(o, w, "ok n=0 (past eof)")
		return
	}
	if i := firstDiff(got, of.data[o.off:o.off+int64(n)]); i >= 0 {
		m.fail(fmt.Errorf("oracle-content: batch-read %s differs at byte %d: disk %#02x, oracle %#02x",
			path, o.off+int64(i), got[i], of.data[o.off+int64(i)]))
		return
	}
	m.opLog(o, w, "ok n=%d ops=%d", n, len(ops))
}
