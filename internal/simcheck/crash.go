package simcheck

import (
	"fmt"
	"sort"

	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/trace"
)

// Crash sweep: the machine loses power at an op boundary, every piece
// of volatile state is discarded (dirty delayed-write buffers, queued
// disk requests, in-core inodes), the repairing fsck brings both
// volumes back, and the remounted filesystems must satisfy the crash
// contract — every file whose last successful fsync preceded the crash
// reads back byte-exact, every durably created name still resolves,
// and both volumes check fsck-clean.

// genCrashOps derives a crash-focused op sequence: single worker, the
// plain file vocabulary with a heavy fsync/msync bias (so most runs
// have synced state to verify), mmap stores for the pageout write path,
// splice file→file for the bypass write engine, and exactly one power
// cut at a seed-derived boundary in the middle half of the run. No
// fault or stream ops: the crash is the disturbance under test, and the
// post-crash content checks need checkable volumes.
func genCrashOps(cfg Config) []*op {
	r := sim.NewRand(cfg.Seed)
	crashAt := cfg.Ops/4 + int(r.Int63n(int64(cfg.Ops/2+1)))
	ops := make([]*op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		if i == crashAt {
			ops = append(ops, &op{idx: i, kind: opCrash})
			continue
		}
		o := &op{
			idx:   i,
			disk:  r.Intn(2),
			slot:  r.Intn(slotsPerWk),
			off:   r.Int63n(maxOff),
			size:  1 + r.Intn(maxIO),
			pat:   byte(1 + r.Intn(255)),
			think: sim.Duration(r.Intn(3)) * 700 * sim.Microsecond,
		}
		switch w := r.Intn(100); {
		case w < 26:
			o.kind = opWrite
		case w < 34:
			o.kind = opRead
		case w < 38:
			o.kind = opSeqRead
		case w < 44:
			o.kind = opTrunc
		case w < 50:
			o.kind = opUnlink
		case w < 72:
			o.kind = opFsync
		case w < 78:
			o.kind = opMmapWrite
		case w < 84:
			o.kind = opMsync
		case w < 94:
			o.kind = opSpliceFF
			o.disk2 = r.Intn(2)
			o.slot2 = r.Intn(slotsPerWk)
			if o.disk2 == o.disk && o.slot2 == o.slot {
				o.slot2 = (o.slot2 + 1) % slotsPerWk
			}
		default:
			o.kind = opTraceSnap
		}
		ops = append(ops, o)
	}
	return ops
}

// doCrash pulls the plug: volatile state is discarded while durably
// committed platter state survives, then recovery runs (repair, verify
// clean, remount) and the oracle collapses to the durable view.
func (m *machine) doCrash(p *kernel.Proc, w int, o *op) {
	// Quiescence: every op is self-contained, and the crash sweep runs
	// one worker, so at an op boundary no file may be held open. A held
	// inode here is a harness bug, not a filesystem one.
	for i, f := range m.fss {
		if n := f.LiveInodes(); n != 0 {
			m.fail(fmt.Errorf("crash: /d%d not quiescent: %d in-core inode(s) held", i, n))
			return
		}
	}
	// Same contract for the page pool: every mapping was unmapped by its
	// op, so the power cut must find no mapped pages to corrupt.
	if err := m.pool.CheckDrained(); err != nil {
		m.fail(fmt.Errorf("crash: page pool not quiescent: %w", err))
		return
	}

	// Power cut, per disk: queued transfers are dropped (their data
	// never transferred), while a transfer already in progress is past
	// the point of no return and completes. Wait it out, then discard
	// every cached buffer — the dirty ones are the delayed writes the
	// platter never saw.
	var dropped [2]int
	for i, d := range m.disks {
		dropped[i] = d.Crash()
	}
	for m.disks[0].Busy() || m.disks[1].Busy() {
		p.SleepFor(10 * sim.Millisecond) // one clock tick
	}
	for i, d := range m.disks {
		lost, discarded := m.cache.Crash(d)
		m.k.TraceEmit(trace.KindFSCrash, 0, int64(lost), int64(dropped[i]), d.DevName())
		m.logf("op %d w%d %s: /d%d power cut: %d dirty buffer(s) lost, %d queued request(s) dropped, %d cached discarded",
			o.idx, w, o.describe(), i, lost, dropped[i], discarded)
	}

	// Recovery: repair each volume, require the follow-up plain fsck to
	// come back clean, and remount (replacing the dead in-core fs).
	for i, d := range m.disks {
		rep, err := fs.FsckRepair(p.Ctx(), m.cache, d)
		if err != nil {
			m.fail(fmt.Errorf("crash: fsck-repair /d%d: %v", i, err))
			return
		}
		m.logf("op %d: fsck-repair /d%d: %d problem(s), %d repair(s)", o.idx, i, len(rep.Problems), rep.Repaired)
		chk, err := fs.Fsck(p.Ctx(), m.cache, d)
		if err != nil {
			m.fail(fmt.Errorf("crash: post-repair fsck /d%d: %v", i, err))
			return
		}
		if !chk.Clean() {
			m.fail(fmt.Errorf("crash: /d%d not clean after repair: %d problem(s), first: %s",
				i, len(chk.Problems), chk.Problems[0]))
			return
		}
		f, err := fs.Mount(p.Ctx(), m.cache, d)
		if err != nil {
			m.fail(fmt.Errorf("crash: remount /d%d: %v", i, err))
			return
		}
		f.SetPager(m.pool)
		m.fss[i] = f
		m.k.Mount(fmt.Sprintf("/d%d", i), f)
	}

	m.postCrashOracle()
	m.verifyDurable(p, o, w)
}

// postCrashOracle collapses the oracle to the durable view: a file
// whose last successful fsync is unmodified reads back exactly that
// snapshot; everything else created survives with unpredictable
// content; unlinked names were removed at unlink time (durable, so no
// change here).
func (m *machine) postCrashOracle() {
	for _, of := range m.oracle {
		if of.syncedOK {
			of.data = append([]byte(nil), of.synced...)
			of.tainted = false
		} else {
			of.tainted = true
		}
	}
}

// verifyDurable checks the crash contract immediately after remount:
// every durably created file still resolves, and every fsync'd file
// reads back byte-exact.
func (m *machine) verifyDurable(p *kernel.Proc, o *op, w int) {
	paths := make([]string, 0, len(m.oracle))
	for path := range m.oracle {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	synced, existing := 0, 0
	for _, path := range paths {
		of := m.oracle[path]
		if !of.created {
			continue
		}
		fd, err := p.Open(path, kernel.ORdOnly)
		if err != nil {
			m.fail(fmt.Errorf("crash-exists: %s lost by the crash: %v (oracle: created durable, synced=%v)",
				path, err, of.syncedOK))
			return
		}
		existing++
		if of.tainted {
			p.Close(fd)
			continue
		}
		got := make([]byte, len(of.data)+1)
		n, rerr := p.Read(fd, got)
		p.Close(fd)
		if rerr != nil {
			m.fail(fmt.Errorf("crash-content: read %s after recovery: %v", path, rerr))
			return
		}
		if n != len(of.data) {
			m.fail(fmt.Errorf("crash-size: %s has %d bytes after recovery, fsync promised %d", path, n, len(of.data)))
			return
		}
		if i := firstDiff(got[:n], of.data); i >= 0 {
			m.fail(fmt.Errorf("crash-content: %s differs at byte %d after recovery: disk %#02x, fsync promised %#02x",
				path, i, got[i], of.data[i]))
			return
		}
		synced++
	}
	m.opLog(o, w, "recovered: %d file(s) survive, %d verified byte-exact against fsync snapshots", existing, synced)
}
