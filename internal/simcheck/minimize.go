package simcheck

import "fmt"

// Minimize shrinks a failing seed's op sequence to a locally minimal
// failing subset by delta debugging (ddmin): repeatedly try dropping
// chunks of the sequence, keeping any reduction that still fails, and
// halve the chunk size when no chunk can be dropped. Because every op
// is self-contained, any subsequence is a valid workload, and because
// the simulation is deterministic, "still fails" is decidable by just
// running it.
//
// It returns the final (minimal) failing result and the indices of the
// surviving ops within the original generated sequence. If the seed
// does not fail at all, the first return is the passing result and the
// index list is nil.
func Minimize(cfg Config) (*Result, []int) {
	if cfg.Ops <= 0 {
		cfg.Ops = 60
	}
	if cfg.Crash {
		cfg.Workers = 1
	}
	if cfg.FaultSite != "" {
		cfg.Workers = 1
		if cfg.FaultK <= 0 {
			cfg.FaultK = 1
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1 + int(cfg.Seed%3)
	}
	var full []*op
	if cfg.Crash {
		full = genCrashOps(cfg)
	} else {
		full = genOps(cfg)
	}
	res := execute(cfg, full)
	if !res.Failed() {
		return res, nil
	}

	ops := full
	chunk := (len(ops) + 1) / 2
	for chunk >= 1 && len(ops) > 1 {
		reduced := false
		for start := 0; start < len(ops); start += chunk {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			candidate := make([]*op, 0, len(ops)-(end-start))
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[end:]...)
			if len(candidate) == 0 {
				continue
			}
			if r := execute(cfg, candidate); r.Failed() {
				ops = candidate
				res = r
				reduced = true
				start -= chunk // retry the same window against the shrunk list
			}
		}
		if !reduced {
			chunk /= 2
		}
	}

	idx := make([]int, len(ops))
	for i, o := range ops {
		idx[i] = o.idx
	}
	return res, idx
}

// ReproCommand renders the command line that reproduces a failing seed.
func ReproCommand(cfg Config) string {
	extra := ""
	if cfg.Crash {
		extra = " -crash"
	}
	if cfg.FaultSite != "" {
		extra = fmt.Sprintf(" -fault-site %s -fault-k %d", cfg.FaultSite, cfg.FaultK)
	}
	return fmt.Sprintf("go run ./cmd/kdpcheck -seed %d -ops %d -workers %d%s -v",
		cfg.Seed, cfg.Ops, cfg.Workers, extra)
}
