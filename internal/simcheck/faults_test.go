package simcheck

import (
	"reflect"
	"strings"
	"testing"

	"kdp/internal/kernel"
)

// TestFaultSampleKs pins the sweep's sampling policy: first, middle and
// last occurrence, deduped, for any census count.
func TestFaultSampleKs(t *testing.T) {
	cases := []struct {
		n    int64
		want []int64
	}{
		{1, []int64{1}},
		{2, []int64{1, 2}},
		{3, []int64{1, 2, 3}},
		{5, []int64{1, 3, 5}},
		{100, []int64{1, 50, 100}},
	}
	for _, c := range cases {
		if got := sampleKs(c.n); !reflect.DeepEqual(got, c.want) {
			t.Errorf("sampleKs(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

// TestFaultCensusDeterministic asserts the census half of the sweep
// contract: the same seed yields the same sorted site census every run,
// so the (site, k) samples an armed sweep derives from it are stable.
func TestFaultCensusDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Ops: 30, Workers: 1}
	a := Run(cfg)
	b := Run(cfg)
	if a.Failed() || b.Failed() {
		t.Fatalf("census runs failed: %v / %v", a.Violation, b.Violation)
	}
	if len(a.Census) == 0 {
		t.Fatal("census is empty: no fault sites reported any occurrence")
	}
	if !reflect.DeepEqual(a.Census, b.Census) {
		t.Errorf("census not deterministic:\n  %v\n  %v", a.Census, b.Census)
	}
	for i := 1; i < len(a.Census); i++ {
		if a.Census[i-1].Site >= a.Census[i].Site {
			t.Errorf("census not sorted at %d: %q >= %q", i, a.Census[i-1].Site, a.Census[i].Site)
		}
	}
}

// TestFaultArmedRunFiresOnce arms a single-shot fault at the first
// occurrence of every site a census found and checks the core armed-run
// contract: the run passes every invariant, the fault fires exactly
// once, and the log records the fire.
func TestFaultArmedRunFiresOnce(t *testing.T) {
	cfg := Config{Seed: 5, Ops: 30, Workers: 1}
	base := Run(cfg)
	if base.Failed() {
		t.Fatalf("census run failed: %v", base.Violation)
	}
	for _, sc := range base.Census {
		acfg := cfg
		acfg.FaultSite, acfg.FaultK = sc.Site, 1
		r := Run(acfg)
		if r.Failed() {
			t.Errorf("site %s k=1: %v\nrepro: %s", sc.Site, r.Violation, ReproCommand(acfg))
			continue
		}
		if r.FaultFired != 1 {
			t.Errorf("site %s k=1: fired %d time(s), want exactly 1", sc.Site, r.FaultFired)
		}
	}
}

// TestFaultCrashBoundaryArmed arms the harness's own fault site — lose
// power after the k-th op — and checks the crash-recovery path ran in
// the middle of the workload.
func TestFaultCrashBoundaryArmed(t *testing.T) {
	cfg := Config{Seed: 0, Ops: 25, Workers: 1, FaultSite: SiteCrashBoundary, FaultK: 3}
	r := Run(cfg)
	if r.Failed() {
		t.Fatalf("crash-boundary armed run failed: %v", r.Violation)
	}
	if r.FaultFired != 1 {
		t.Fatalf("crash-boundary fired %d time(s), want 1", r.FaultFired)
	}
	found := false
	for _, line := range r.Log {
		if strings.Contains(line, "crash-boundary fault fired") {
			found = true
			break
		}
	}
	if !found {
		t.Error("log does not record the crash-boundary fire")
	}
}

// TestFaultSiteForcesSingleWorker: armed runs must be the census run's
// prefix, which only holds on a single-worker schedule, so Run pins
// Workers=1 whenever a fault site is set.
func TestFaultSiteForcesSingleWorker(t *testing.T) {
	r := Run(Config{Seed: 1, Ops: 20, Workers: 3, FaultSite: "disk.rz58.rderr", FaultK: 1})
	if r.Workers != 1 {
		t.Errorf("armed run used %d workers, want 1", r.Workers)
	}
}

// TestFaultSweepSeedClean runs the full per-seed sweep — census, then
// one armed run per sampled (site, k), each replay-verified — for a
// couple of seeds. This is the in-tree slice of the `kdpcheck -faults`
// gate.
func TestFaultSweepSeedClean(t *testing.T) {
	n := uint64(2)
	ops := 30
	if testing.Short() {
		n, ops = 1, 20
	}
	for seed := uint64(0); seed < n; seed++ {
		res := FaultSweepSeed(Config{Seed: seed, Ops: ops}, true)
		if res.Failed() {
			t.Errorf("seed %d: %v\nrepro: %s", seed, res.Violation, ReproCommand(res.FailedConfig))
			continue
		}
		if len(res.Runs) < len(res.Census) {
			t.Errorf("seed %d: %d armed runs for %d censused sites", seed, len(res.Runs), len(res.Census))
		}
		for _, run := range res.Runs {
			if run.Fired != 1 {
				t.Errorf("seed %d: site %s k=%d fired %d", seed, run.Site, run.K, run.Fired)
			}
		}
	}
}

// TestFaultSweepRejectsOtherDisturbances: the sweep owns the
// disturbance schedule, so Damage and Crash configs are refused rather
// than silently combined.
func TestFaultSweepRejectsOtherDisturbances(t *testing.T) {
	if res := FaultSweepSeed(Config{Seed: 0, Ops: 10, Crash: true}, false); !res.Failed() {
		t.Error("sweep accepted a Crash config")
	}
	if res := FaultSweepSeed(Config{Seed: 0, Ops: 10, Damage: "hash-key"}, false); !res.Failed() {
		t.Error("sweep accepted a Damage config")
	}
}

// TestFaultReproCommand pins the repro string for an armed config: the
// printed command must carry the fault flags, or a failing (seed, site,
// k) triple is not reproducible from the sweep output.
func TestFaultReproCommand(t *testing.T) {
	got := ReproCommand(Config{Seed: 7, Ops: 40, FaultSite: kernel.FaultSite("disk.rz56.wrerr"), FaultK: 3})
	for _, want := range []string{"-seed 7", "-ops 40", "-fault-site disk.rz56.wrerr", "-fault-k 3"} {
		if !strings.Contains(got, want) {
			t.Errorf("repro %q missing %q", got, want)
		}
	}
}
