package simcheck

import (
	"runtime"
	"strings"
	"testing"
)

// TestSeedSweep is the in-tree fuzz budget: a deterministic table of
// seeds run on every `go test`. Each seed drives the default mixed
// workload with invariant checking at every scheduling boundary and a
// full oracle/fsck sweep at the end. A failure here is a real bug; the
// error text contains the exact seed to reproduce with
// `go run ./cmd/kdpcheck -seed N -v`.
func TestSeedSweep(t *testing.T) {
	n := uint64(40)
	if testing.Short() {
		n = 10
	}
	for seed := uint64(0); seed < n; seed++ {
		res := RunSeed(seed)
		if res.Failed() {
			t.Errorf("seed %d: %v\nrepro: %s", seed, res.Violation,
				ReproCommand(Config{Seed: seed, Ops: 60, Workers: res.Workers}))
		}
	}
}

// TestSeedSweepLargerWorkloads runs a few seeds with more ops and a
// fixed worker count, reaching deeper interleavings than the default.
func TestSeedSweepLargerWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := uint64(100); seed < 106; seed++ {
		res := Run(Config{Seed: seed, Ops: 150, Workers: 3})
		if res.Failed() {
			t.Errorf("seed %d (ops=150 workers=3): %v", seed, res.Violation)
		}
	}
}

// TestVerifyReplay asserts the determinism contract: the same seed run
// twice yields bit-identical event logs and CPU accounting.
func TestVerifyReplay(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		if err := VerifyReplay(seed); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestReplayAcrossGOMAXPROCS asserts that Go-runtime parallelism cannot
// leak into the simulation: digests match between GOMAXPROCS=1 and
// GOMAXPROCS=8. The simulation runs on one goroutine, so any divergence
// here means nondeterminism entered through a side channel (map
// iteration, shared globals, real time).
func TestReplayAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	digests := [2]uint64{}
	for i, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		res := RunSeed(7)
		if res.Failed() {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, res.Violation)
		}
		digests[i] = res.Digest
	}
	if digests[0] != digests[1] {
		t.Errorf("seed 7 digest differs across GOMAXPROCS: %016x (1) != %016x (8)", digests[0], digests[1])
	}
}

// TestDamageTripsInvariants is the checker's own test harness: each
// supported corruption of buffer-cache state must be caught by the
// invariant sweep, and the diagnostic must name the violated invariant
// and carry the seed.
func TestDamageTripsInvariants(t *testing.T) {
	cases := []struct {
		damage string
		// invariants that may legitimately fire first for this damage
		invariants []string
	}{
		{"busy-on-freelist", []string{"buf-free-busy", "buf-pool-account"}},
		{"delwri-undone", []string{"buf-flag-delwri"}},
		{"hash-key", []string{"buf-hash-key", "buf-pool-account"}},
	}
	for _, tc := range cases {
		t.Run(tc.damage, func(t *testing.T) {
			res := Run(Config{Seed: 3, Damage: tc.damage, DamageAfter: 5})
			if !res.Failed() {
				t.Fatalf("damage %q went undetected", tc.damage)
			}
			msg := res.Violation.Error()
			found := false
			for _, inv := range tc.invariants {
				if strings.Contains(msg, "invariant "+inv) {
					found = true
				}
			}
			if !found {
				t.Errorf("damage %q: diagnostic does not name one of %v: %s", tc.damage, tc.invariants, msg)
			}
			if !strings.Contains(msg, "seed 3") {
				t.Errorf("damage %q: diagnostic does not carry the seed: %s", tc.damage, msg)
			}
		})
	}
}

// TestMinimizeShrinksFailingSequence checks ddmin against a synthetic
// failure: cache damage injected after a fixed op count fails every
// superset, so the minimizer must shrink the 60-op sequence to the
// minimal prefix that reaches the damage trigger.
func TestMinimizeShrinksFailingSequence(t *testing.T) {
	cfg := Config{Seed: 11, Damage: "busy-on-freelist", DamageAfter: 5}
	res, idx := Minimize(cfg)
	if !res.Failed() {
		t.Fatal("minimized run did not fail")
	}
	if idx == nil {
		t.Fatal("Minimize returned no surviving indices for a failing config")
	}
	if len(idx) > 6 {
		t.Errorf("minimal sequence has %d ops, want <= 6 (damage fires after op 5)", len(idx))
	}
	if got := res.Ops; got != len(idx) {
		t.Errorf("result reports %d ops but %d indices survived", got, len(idx))
	}
}

// TestMinimizePassingSeedReturnsNil documents the passing-seed contract.
func TestMinimizePassingSeedReturnsNil(t *testing.T) {
	res, idx := Minimize(Config{Seed: 1})
	if res.Failed() {
		t.Fatalf("seed 1 unexpectedly fails: %v", res.Violation)
	}
	if idx != nil {
		t.Errorf("passing seed returned surviving indices %v", idx)
	}
}

// TestReproCommand pins the repro command format printed on failures.
func TestReproCommand(t *testing.T) {
	got := ReproCommand(Config{Seed: 42, Ops: 60, Workers: 2})
	want := "go run ./cmd/kdpcheck -seed 42 -ops 60 -workers 2 -v"
	if got != want {
		t.Errorf("ReproCommand = %q, want %q", got, want)
	}
}

// TestCrashSweep is the in-tree crash budget: every seed boots a
// machine, runs a file-op-heavy single-worker workload, pulls the plug
// at a seed-derived op boundary, repairs, remounts, and checks that
// every pre-crash-fsync'd file survives byte-exact and both volumes end
// fsck-clean. `make crash-ci` runs the wider sweep.
func TestCrashSweep(t *testing.T) {
	n := uint64(60)
	if testing.Short() {
		n = 10
	}
	for seed := uint64(0); seed < n; seed++ {
		res := Run(Config{Seed: seed, Crash: true})
		if res.Failed() {
			t.Errorf("crash seed %d: %v\nrepro: %s", seed, res.Violation,
				ReproCommand(Config{Seed: seed, Ops: 60, Workers: 1, Crash: true}))
		}
	}
}

// TestCrashSweepDoesRealWork guards the crash sweep against going
// vacuous: across a window of seeds, power cuts must actually lose
// dirty buffers, repair must actually fix problems, and runs must
// actually verify fsync'd content — otherwise the sweep proves nothing.
func TestCrashSweepDoesRealWork(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	lost, repaired, synced := 0, 0, 0
	for seed := uint64(0); seed < 25; seed++ {
		res := Run(Config{Seed: seed, Crash: true})
		if res.Failed() {
			t.Fatalf("crash seed %d: %v", seed, res.Violation)
		}
		for _, line := range res.Log {
			if strings.Contains(line, "power cut") && !strings.Contains(line, "0 dirty buffer(s) lost") {
				lost++
			}
			if strings.Contains(line, "fsck-repair") && !strings.Contains(line, "0 problem(s)") {
				repaired++
			}
			if strings.Contains(line, "verified byte-exact") && !strings.Contains(line, " 0 verified") {
				synced++
			}
		}
	}
	if lost == 0 {
		t.Error("no power cut ever lost a dirty buffer: crashes are not destroying volatile state")
	}
	if repaired == 0 {
		t.Error("no repair ever fixed a problem: the repairing fsck is not being exercised")
	}
	if synced == 0 {
		t.Error("no run ever verified a synced file: the durability oracle is not being exercised")
	}
}

// TestCrashReplay pins crash-sweep determinism: the same crash seed
// must replay to a bit-identical event log and CPU accounting.
func TestCrashReplay(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		if err := VerifyReplayConfig(Config{Seed: seed, Crash: true}); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestFaultedVolumeStillChecked makes sure fault injection does not
// blind the harness entirely: disk 0 content checks must stay active
// after a fault is armed on disk 1.
func TestFaultedVolumeStillChecked(t *testing.T) {
	m := &machine{faulted: [2]bool{false, true}}
	if !m.checkable(0) {
		t.Error("disk 0 lost content checking after a d1 fault")
	}
	if m.checkable(1) {
		t.Error("disk 1 still content-checked despite injected faults")
	}
}
