// Package simcheck is the deterministic-simulation check harness: it
// drives randomized workloads over a full simulated machine while
// verifying cross-layer invariants at every scheduling boundary, checks
// end-state file contents against an in-memory oracle, and verifies
// that a seed replays to a bit-identical event log and CPU accounting.
//
// The harness leans on the property that makes the simulator a
// simulator: given a seed, the entire machine — scheduler, disks,
// buffer cache, splice engine, network — is a deterministic function of
// the op sequence. A failing seed is therefore a complete bug report:
// re-running it reproduces the failure exactly, and bisecting its op
// sequence (Minimize) shrinks it to a minimal repro.
//
// Four layers of checking:
//
//  1. Invariant hooks. At every scheduling boundary the kernel probe
//     (kernel.SetProbe) re-validates the buffer cache
//     (buf.CheckInvariants, including the readahead flag/budget
//     discipline), scheduler/callouts (kernel.CheckInvariants), the
//     disk request queues (disk.CheckInvariants), in-core filesystem
//     state (fs.CheckLive), live splice descriptors
//     (splice.CheckInvariants), and live stream connections
//     (stream.CheckInvariants).
//  2. Oracle. Every generated op updates an in-memory model of expected
//     file contents; reads verify against it inline and a final sweep
//     re-reads every file. Disk-fault injection taints the affected
//     volume, downgrading content checks to error-tolerance checks.
//  3. Trace stream. Every machine runs with structured tracing on: a
//     trace.Checker validates the stream at each probe (nondecreasing
//     virtual time, matched syscall enter/exit pairs, counter snapshots
//     consistent with event deltas), and a clean run must quiesce with
//     no syscall left open.
//  4. Replay. VerifyReplay runs the same seed twice and asserts the
//     event-log digest — which folds in the typed trace-stream digest —
//     and CPU accounting are bit-identical, the property that makes
//     "rerun the seed" a faithful repro.
//
// Not safe for concurrent use: splice invariant tracking is
// process-global, so run one harness machine at a time.
package simcheck

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/socket"
	"kdp/internal/splice"
	"kdp/internal/stream"
	"kdp/internal/trace"
	"kdp/internal/vm"
)

// Machine geometry. Small on purpose: a 64-buffer cache and a nearly
// full second disk reach eviction, reclaim and ENOSPC paths that a
// roomy machine never exercises.
const (
	blockSize  = 8192
	cacheBufs  = 64
	d0Blocks   = 600 // roomy volume, RZ58
	d1Blocks   = 220 // tight volume, RZ56 (ENOSPC under load)
	ninodes    = 64
	slotsPerWk = 4
	// vmFrames keeps the page pool smaller than a single mapped file
	// (files reach 80KB, ten pages), so every mmap op runs the clock
	// pageout and reclaim paths, not just demand paging.
	vmFrames = 8
)

// Config selects one harness run.
type Config struct {
	Seed uint64
	// Ops is the total operation count across all workers (default 60).
	Ops int
	// Workers is the worker-process count; 0 derives 1–3 from the seed.
	Workers int
	// Damage, when non-empty, deliberately corrupts the buffer cache
	// (buf.Cache.Damage kind) after DamageAfter ops have executed, to
	// prove the invariant checkers trip. Test use only.
	Damage      string
	DamageAfter int
	// Crash switches the run into the crash sweep: a single worker, a
	// file-op-heavy mix with frequent fsyncs, and exactly one power cut
	// at a seed-derived op boundary, followed by repair, remount, and a
	// durability check of every pre-crash fsync'd file.
	Crash bool
	// FaultSite, when non-empty, arms a single-shot fault at the
	// FaultK-th eligible occurrence of the site (the armed re-run of a
	// fault sweep). Forces a single worker, like Crash, so the run is a
	// deterministic prefix of the fault-free census run up to the fire
	// point. FaultK defaults to 1.
	FaultSite kernel.FaultSite
	FaultK    int64
	// Verbose, when non-nil, receives the event log as it is written.
	Verbose io.Writer
}

// Result is the outcome of one harness run.
type Result struct {
	Seed    uint64
	Workers int
	Ops     int
	// Digest is an FNV-1a hash of the event log (op results, virtual
	// times, per-process and machine CPU accounting). Two runs of the
	// same seed must produce identical digests.
	Digest uint64
	Log    []string
	Stats  kernel.CPUStats
	// Census lists every fault site that reported at least one eligible
	// occurrence during the run, with counts — the deterministic input a
	// fault sweep samples (site, k) pairs from.
	Census []kernel.SiteCount
	// FaultFired is how many times the armed fault fired (armed runs
	// only; the single-shot arm makes 1 the only clean value).
	FaultFired int64
	// Violation is the first invariant or oracle failure, nil if the
	// run was clean.
	Violation error
}

// Failed reports whether the run detected a violation.
func (r *Result) Failed() bool { return r.Violation != nil }

// machine is one booted harness machine.
type machine struct {
	cfg   Config
	k     *kernel.Kernel
	cache *buf.Cache
	disks [2]*disk.Disk
	fss   [2]*fs.FS
	net   *socket.Net
	// snet is a second, deliberately lossy link reserved for the stream
	// ops, so the datagram oracle on net keeps its no-loss assumptions
	// while the transport's retransmission machinery sees real drops.
	snet *socket.Net
	pool *vm.Pool

	oracle map[string]*ofile
	log    []string

	// Structured tracing runs on every harness machine: the checker
	// validates stream invariants (nondecreasing time, matched syscall
	// pairs, counter/aggregator agreement) and the digester folds the
	// typed event stream into the replay digest.
	tr   *trace.Tracer
	tchk *trace.Checker
	tdig *trace.Digester

	violation   error
	curOp       string
	opsDone     int
	damaged     bool
	faulted     [2]bool
	netFaulted  bool
	workersLeft int
}

// ofile is the oracle's model of one file's expected contents. tainted
// means the contents are no longer predictable (an op on it failed, or
// it absorbed data from an unpredictable source); existence checks
// still apply, content checks do not.
//
// The crash-durability fields model what must survive a power cut:
// created records that a successful create made the name durable (the
// ordered-metadata discipline writes inode then dirent synchronously);
// synced/syncedOK snapshot the content at the last successful fsync,
// valid until the next modification. After a crash the oracle collapses
// to this durable view (see postCrashOracle).
type ofile struct {
	data    []byte
	tainted bool

	created  bool
	synced   []byte
	syncedOK bool
}

// Run executes one harness run and reports the outcome. It never
// returns a nil Result.
func Run(cfg Config) *Result {
	if cfg.Ops <= 0 {
		cfg.Ops = 60
	}
	if cfg.Crash {
		// The power cut requires a quiescent machine at the op boundary,
		// which only a single worker guarantees.
		cfg.Workers = 1
	}
	if cfg.FaultSite != "" {
		// Armed runs are single-worker so they replay the census run's
		// schedule exactly up to the fire point, and so a crash-boundary
		// fire finds the quiescent machine doCrash requires.
		cfg.Workers = 1
		if cfg.FaultK <= 0 {
			cfg.FaultK = 1
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1 + int(cfg.Seed%3)
	}
	if cfg.Damage != "" && cfg.DamageAfter <= 0 {
		cfg.DamageAfter = 1
	}
	var ops []*op
	if cfg.Crash {
		ops = genCrashOps(cfg)
	} else {
		ops = genOps(cfg)
	}
	return execute(cfg, ops)
}

// RunSeed is Run with defaults for everything but the seed.
func RunSeed(seed uint64) *Result { return Run(Config{Seed: seed}) }

// VerifyReplay runs seed twice and verifies determinism: identical
// event-log digests and identical CPU accounting.
func VerifyReplay(seed uint64) error {
	return VerifyReplayConfig(Config{Seed: seed})
}

// VerifyReplayConfig is VerifyReplay for an arbitrary configuration
// (the crash sweep replays with Crash set).
func VerifyReplayConfig(cfg Config) error {
	cfg.Verbose = nil
	seed := cfg.Seed
	a := Run(cfg)
	b := Run(cfg)
	if a.Violation != nil {
		return fmt.Errorf("simcheck: replay of failing seed %d: %w", seed, a.Violation)
	}
	if b.Violation != nil {
		return fmt.Errorf("simcheck: second run of seed %d failed: %w", seed, b.Violation)
	}
	if a.Digest != b.Digest {
		return fmt.Errorf("simcheck: seed %d is not deterministic: digests %016x != %016x%s",
			seed, a.Digest, b.Digest, firstLogDiff(a.Log, b.Log))
	}
	if a.Stats != b.Stats {
		return fmt.Errorf("simcheck: seed %d CPU accounting diverged: %+v != %+v", seed, a.Stats, b.Stats)
	}
	return nil
}

// firstLogDiff renders the first differing event-log line, for
// diagnosing a replay divergence.
func firstLogDiff(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("\n  first divergence at line %d:\n    run1: %s\n    run2: %s", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("\n  logs are a prefix of each other (%d vs %d lines)", len(a), len(b))
}

// execute runs an explicit op list (Run generates it; Minimize replays
// subsets of it).
func execute(cfg Config, ops []*op) *Result {
	kcfg := kernel.DefaultConfig()
	kcfg.Name = fmt.Sprintf("simcheck-%d", cfg.Seed)
	kcfg.Seed = cfg.Seed
	kcfg.MaxRunTime = 600 * sim.Second // watchdog: fuzz runs finish in simulated seconds

	m := &machine{
		cfg:    cfg,
		k:      kernel.New(kcfg),
		oracle: make(map[string]*ofile),
	}
	m.cache = buf.NewCache(m.k, cacheBufs, blockSize)
	params := [2]disk.Params{
		disk.RZ58(d0Blocks, blockSize),
		disk.RZ56(d1Blocks, blockSize),
	}
	for i := range m.disks {
		// The elevator keeps clustered delayed-write runs contiguous at
		// the platter; running the sweep with it on means the C-LOOK
		// pick path is fuzzed alongside everything else.
		params[i].Elevator = true
		d := disk.New(m.k, params[i])
		d.SetCache(m.cache)
		if _, err := fs.Mkfs(d, ninodes); err != nil {
			panic("simcheck: mkfs: " + err.Error())
		}
		m.disks[i] = d
	}
	m.pool = vm.NewPool(m.k, vmFrames, blockSize)
	m.k.SetVM(m.pool)
	m.net = socket.NewNet(m.k, socket.Loopback())
	lossy := socket.Loopback()
	lossy.Name = "snet" // distinct fault sites: "net.snet.drop" etc.
	lossy.DropEvery = 5
	m.snet = socket.NewNet(m.k, lossy)
	m.tchk = trace.NewChecker()
	m.tdig = trace.NewDigester()
	m.tr = m.k.StartTrace(trace.Tee(m.tchk, m.tdig))

	var arm *kernel.FaultArm

	splice.EnableInvariants(true)
	defer splice.EnableInvariants(false)
	stream.EnableInvariants(true)
	defer stream.EnableInvariants(false)
	m.k.SetProbe(m.probe)

	perWorker := make([][]*op, cfg.Workers)
	for _, o := range ops {
		perWorker[o.worker] = append(perWorker[o.worker], o)
	}

	m.k.Spawn("boot", func(p *kernel.Proc) {
		for i, d := range m.disks {
			f, err := fs.Mount(p.Ctx(), m.cache, d)
			if err != nil {
				panic("simcheck: mount: " + err.Error())
			}
			f.SetPager(m.pool)
			m.fss[i] = f
			m.k.Mount(fmt.Sprintf("/d%d", i), f)
		}
		// Fault exploration begins here: boot-time transfers (mkfs,
		// mount) are not eligible injection points — a fault there has
		// no op to report to — so the census restarts and the sweep's
		// arm is installed only now. Census and armed runs share this
		// boundary, which keeps their occurrence numbering aligned.
		m.k.Faults().ResetCensus()
		if cfg.FaultSite != "" {
			arm = m.k.Faults().Arm(kernel.FaultArm{
				Site: cfg.FaultSite, K: cfg.FaultK, Match: kernel.MatchAny,
			})
			m.k.Faults().OnFire = m.onFire
		}
		m.workersLeft = cfg.Workers
		workers := make([]*kernel.Proc, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			w := w
			workers[w] = m.k.Spawn(fmt.Sprintf("fuzz%d", w), func(wp *kernel.Proc) {
				m.worker(wp, w, perWorker[w])
			})
		}
		for m.workersLeft > 0 {
			if err := p.Sleep(&m.workersLeft, kernel.PSLEP); err != nil {
				p.DeliverSignals()
			}
		}
		m.finalVerify(p)
	})

	if err := m.k.Run(); err != nil && m.violation == nil {
		m.fail(fmt.Errorf("simulation aborted: %w", err))
	}

	// End-of-run trace checks (the abort path can legitimately leave
	// syscalls open, so only a clean run must quiesce). The trace digest
	// goes into the event log, so VerifyReplay covers the typed stream.
	if m.violation == nil {
		if err := m.tchk.CheckQuiesced(); err != nil {
			m.violation = fmt.Errorf("simcheck: seed %d: %w", cfg.Seed, err)
			m.logf("VIOLATION %v", m.violation)
		} else if err := m.tchk.CheckMetrics(m.tr.Metrics()); err != nil {
			m.violation = fmt.Errorf("simcheck: seed %d: %w", cfg.Seed, err)
			m.logf("VIOLATION %v", m.violation)
		}
	}
	m.logf("trace: events=%d digest=%016x", m.tchk.Events(), m.tdig.Sum())

	m.logf("end: d0 errors=%d d1 errors=%d cache hits=%d",
		m.disks[0].Errors(), m.disks[1].Errors(), m.cache.Stats().Hits)
	var fired int64
	if arm != nil {
		fired = arm.Fired()
		m.logf("fault: site=%s k=%d seen=%d fired=%d", cfg.FaultSite, cfg.FaultK, arm.Seen(), fired)
	}
	st := m.k.Stats()
	m.logf("stats: now=%v idle=%v intr=%v switching=%v switches=%d interrupts=%d ticks=%d",
		st.Now, st.Idle, st.Interrupt, st.Switching, st.Switches, st.Interrupts, st.Ticks)

	return &Result{
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		Ops:        len(ops),
		Digest:     digest(m.log),
		Log:        m.log,
		Stats:      st,
		Census:     m.k.Faults().Census(),
		FaultFired: fired,
		Violation:  m.violation,
	}
}

// onFire classifies an armed-plan fire into the harness's tolerance
// classes the instant the fault lands. A lost or errored transfer on a
// volume suspends content checks there (delayed writes may silently die
// on the floor, exactly like an opFault-injected defect); a perturbed
// oracle datagram net downgrades the splice-to-socket byte accounting.
// Fires from the quiet compatibility adapters (opFault's InjectFault
// arms, snet's DropEvery arm) are not the armed fault and keep their own
// handling.
func (m *machine) onFire(site kernel.FaultSite, arg int64) {
	if site != m.cfg.FaultSite {
		return
	}
	switch {
	case strings.HasPrefix(site, "disk.rz58."):
		m.faulted[0] = true
	case strings.HasPrefix(site, "disk.rz56."):
		m.faulted[1] = true
	case strings.HasPrefix(site, "net.net."):
		m.netFaulted = true
	}
	// fs.*.nospace fires need no downgrade: a failed allocation is a
	// clean synchronous error the ops already tolerate (the tight rz56
	// volume produces organic ENOSPC in every long sweep), and it loses
	// no written data. proc.sleep-signal likewise: ErrIntr is surfaced
	// and handled op-locally. sim.crash-boundary is handled at the op
	// boundary that hit it (see worker).
}

// probe runs at every scheduling boundary (installed via
// kernel.SetProbe): all four layers' invariants are re-validated
// between any two events.
func (m *machine) probe() {
	if m.violation != nil {
		return
	}
	if err := m.checkInvariants(); err != nil {
		m.fail(err)
	}
}

// checkInvariants validates every layer's invariants once.
func (m *machine) checkInvariants() error {
	if err := m.cache.CheckInvariants(); err != nil {
		return err
	}
	if err := m.k.CheckInvariants(); err != nil {
		return err
	}
	for _, d := range m.disks {
		if d == nil {
			continue
		}
		if err := d.CheckInvariants(); err != nil {
			return err
		}
	}
	for _, f := range m.fss {
		if f == nil {
			continue
		}
		if err := f.CheckLive(); err != nil {
			return err
		}
	}
	if err := m.pool.CheckInvariants(); err != nil {
		return err
	}
	if err := m.tchk.Err(); err != nil {
		return err
	}
	if err := m.tchk.CheckMetrics(m.tr.Metrics()); err != nil {
		return err
	}
	if err := splice.CheckInvariants(); err != nil {
		return err
	}
	return stream.CheckInvariants()
}

// fail records the first violation, stamped with the seed, the op in
// progress and the virtual time — everything needed to reproduce.
func (m *machine) fail(err error) {
	if m.violation != nil {
		return
	}
	m.violation = fmt.Errorf("simcheck: seed %d: %w (during %s, t=%v)", m.cfg.Seed, err, m.curOp, m.k.Now())
	m.logf("VIOLATION %v", m.violation)
	// Halt the world: every state reachable from a violated invariant is
	// untrustworthy, and running on (e.g.) a corrupted buffer cache can
	// crash the simulation before the violation is reported.
	m.k.Abort(m.violation)
}

func (m *machine) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	m.log = append(m.log, line)
	if m.cfg.Verbose != nil {
		fmt.Fprintln(m.cfg.Verbose, line)
	}
}

// checkable reports whether content on the given disk is still
// predictable. Once a fault is armed on a volume, delayed writes can be
// silently lost there, so content checks on it are suspended
// (error-tolerance checks remain).
func (m *machine) checkable(disk int) bool { return !m.faulted[disk] }

// ensure returns the oracle entry for path, creating it if absent.
func (m *machine) ensure(path string) *ofile {
	of := m.oracle[path]
	if of == nil {
		of = &ofile{}
		m.oracle[path] = of
	}
	return of
}

// taintEnsure marks path's contents unpredictable (creating the entry:
// after a failed create-op the file may or may not exist).
func (m *machine) taintEnsure(path string) { m.ensure(path).tainted = true }

// finalVerify runs after all workers have exited: every untainted file
// is re-read and compared against the oracle, both volumes are synced
// and fsck'd, and the splice registry must have drained.
func (m *machine) finalVerify(p *kernel.Proc) {
	if m.violation != nil {
		return
	}
	m.curOp = "final-verify"

	paths := make([]string, 0, len(m.oracle))
	for path := range m.oracle {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		of := m.oracle[path]
		d := diskOf(path)
		if of.tainted || !m.checkable(d) {
			continue
		}
		fd, err := p.Open(path, kernel.ORdOnly)
		if err != nil {
			// Re-check after the error: an armed fault whose k-th eligible
			// occurrence lands inside this very open (a directory or inode
			// read) downgrades the volume mid-verify.
			if !m.checkable(d) {
				m.logf("verify %s skipped: open failed after mid-verify fault (%v)", path, err)
				continue
			}
			m.fail(fmt.Errorf("oracle-exists: final open %s: %v (oracle has %d bytes)", path, err, len(of.data)))
			return
		}
		got := make([]byte, len(of.data)+1)
		n, err := p.Read(fd, got)
		p.Close(fd)
		if err != nil {
			if !m.checkable(d) {
				m.logf("verify %s skipped: read failed after mid-verify fault (%v)", path, err)
				continue
			}
			m.fail(fmt.Errorf("final read %s: %v", path, err))
			return
		}
		if n != len(of.data) {
			m.fail(fmt.Errorf("oracle-size: %s has %d bytes, oracle expects %d", path, n, len(of.data)))
			return
		}
		if i := firstDiff(got[:n], of.data); i >= 0 {
			m.fail(fmt.Errorf("oracle-content: %s differs at byte %d: disk %#02x, oracle %#02x", path, i, got[i], of.data[i]))
			return
		}
		m.logf("verify %s ok (%d bytes)", path, n)
	}

	for i := range m.disks {
		if m.faulted[i] {
			m.disks[i].ClearFaults()
		}
	}
	for i, f := range m.fss {
		if err := f.SyncAll(p.Ctx()); err != nil {
			if m.faulted[i] {
				m.logf("syncall /d%d: %v (faulted volume, tolerated)", i, err)
				continue
			}
			m.fail(fmt.Errorf("syncall /d%d: %v", i, err))
			return
		}
	}
	// Fsck-after-drain on both volumes: an unfaulted volume must check
	// clean outright; a volume that absorbed injected faults may have
	// lost delayed metadata writes, so the repairing fsck runs first and
	// must converge it to a clean volume.
	for i := range m.fss {
		if !m.fsckVolume(p, i) {
			return
		}
	}

	// Every mapping was unmapped by its op, so the page pool must be
	// empty: a surviving page or address space is a leaked reference.
	if err := m.pool.CheckDrained(); err != nil {
		m.fail(err)
		return
	}
	if err := splice.CheckDrained(); err != nil {
		m.fail(err)
		return
	}
	if err := stream.CheckDrained(); err != nil {
		m.fail(err)
		return
	}
	// No poller may still be registered (or asleep in poll) once every
	// worker has exited: a leftover registration is a leaked wakeup path.
	if err := m.k.CheckPollDrained(); err != nil {
		m.fail(err)
		return
	}
	if err := m.checkInvariants(); err != nil {
		m.fail(err)
	}
}

// fsckVolume runs the end-of-run fsck discipline on volume i, reporting
// whether the caller may continue. A faulted volume gets the repairing
// pass first. If the sweep's armed fault fires inside the fsck itself —
// the k-th eligible occurrence can land on any disk transfer, including
// these — the volume becomes faulted mid-check and gets exactly one
// repair-and-retry (the single-shot arm is spent, so the retry runs
// fault-free).
func (m *machine) fsckVolume(p *kernel.Proc, i int) bool {
	for attempt := 0; ; attempt++ {
		faultedAtStart := m.faulted[i]
		if faultedAtStart {
			rep, err := fs.FsckRepair(p.Ctx(), m.cache, m.disks[i])
			if err != nil {
				if attempt == 0 {
					m.logf("fsck-repair /d%d: %v (mid-verify fault, retrying)", i, err)
					continue
				}
				m.fail(fmt.Errorf("fsck-repair /d%d: %v", i, err))
				return false
			}
			m.logf("fsck-repair /d%d: %d problem(s), %d repair(s)", i, len(rep.Problems), rep.Repaired)
		}
		rep, err := fs.Fsck(p.Ctx(), m.cache, m.disks[i])
		if err != nil {
			if attempt == 0 && m.faulted[i] {
				m.logf("fsck /d%d: %v (mid-verify fault, retrying with repair)", i, err)
				continue
			}
			m.fail(fmt.Errorf("fsck /d%d: %v", i, err))
			return false
		}
		if !rep.Clean() {
			if attempt == 0 && m.faulted[i] && !faultedAtStart {
				m.logf("fsck /d%d: %d problem(s) after mid-verify fault, retrying with repair", i, len(rep.Problems))
				continue
			}
			m.fail(fmt.Errorf("fsck /d%d found %d problem(s), first: %s", i, len(rep.Problems), rep.Problems[0]))
			return false
		}
		m.logf("fsck /d%d clean: %d inodes, %d used blocks", i, rep.Inodes, rep.UsedBlocks)
		return true
	}
}

// diskOf extracts the volume index from a harness path ("/d0/..." or
// "/d1/...").
func diskOf(path string) int {
	if len(path) >= 3 && path[1] == 'd' {
		return int(path[2] - '0')
	}
	return 0
}

// firstDiff returns the index of the first differing byte, -1 if equal.
func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// digest hashes the event log with FNV-1a 64.
func digest(log []string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, line := range log {
		for i := 0; i < len(line); i++ {
			h ^= uint64(line[i])
			h *= prime
		}
		h ^= '\n'
		h *= prime
	}
	return h
}
