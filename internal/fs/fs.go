package fs

import (
	"sort"
	"strings"

	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/trace"
)

// FS is a mounted filesystem instance. It implements kernel.FileSystem.
type FS struct {
	k     *kernel.Kernel
	cache *buf.Cache
	dev   buf.Device
	sb    Superblock

	inodes     map[uint32]*Inode
	blkRotor   uint32 // next data block to try allocating
	inoRotor   uint32
	sbDirty    bool
	interleave uint32 // allocation stride (FFS rotdelay layout); 1 = dense
	raMax      int    // per-file readahead window cap, in blocks
	pager      Pager  // VM writeback hook (see SetPager); nil without VM
}

// DefaultReadahead is the default cap on a file's readahead window, in
// blocks. The default of one block matches the 4.3BSD read path the
// paper's measured system ran (breada's single asynchronous block), so
// the Table 1/2 reproduction stays faithful; deeper adaptive windows
// are opt-in via SetReadahead and are explored by the kdpbench cache
// sweep.
const DefaultReadahead = 1

// Mount reads the superblock of dev and returns the mounted filesystem.
func Mount(ctx kernel.Ctx, cache *buf.Cache, dev buf.Device) (*FS, error) {
	if cache.BlockSize() != dev.DevBlockSize() {
		return nil, kernel.ErrInval
	}
	f := &FS{
		k:      ctx.Kern(),
		cache:  cache,
		dev:    dev,
		inodes: make(map[uint32]*Inode),
		raMax:  DefaultReadahead,
	}
	b, err := cache.Bread(ctx, dev, 0)
	if err != nil {
		return nil, err
	}
	err = f.sb.decode(b.Data)
	cache.Brelse(ctx, b)
	if err != nil {
		return nil, err
	}
	f.blkRotor = f.sb.DataStart
	f.inoRotor = RootIno + 1
	return f, nil
}

// Cache returns the buffer cache the filesystem uses.
func (f *FS) Cache() *buf.Cache { return f.cache }

// Dev returns the underlying block device.
func (f *FS) Dev() buf.Device { return f.dev }

// Super returns a copy of the superblock.
func (f *FS) Super() Superblock { return f.sb }

// BlockSize returns the filesystem block size.
func (f *FS) BlockSize() int { return int(f.sb.BlockSize) }

// SetReadahead caps every file's adaptive readahead window at n blocks
// (see File.Read). n <= 0 disables readahead issue from this
// filesystem entirely. The window is additionally clamped by the
// buffer cache's global readahead budget.
func (f *FS) SetReadahead(n int) {
	if n < 0 {
		n = 0
	}
	f.raMax = n
}

// Readahead returns the per-file readahead window cap.
func (f *FS) Readahead() int { return f.raMax }

// SetInterleave sets the block-allocation stride, modelling the FFS
// rotdelay layout policy: consecutive logical blocks of a file are
// placed n physical blocks apart so the CPU has time to turn a transfer
// around before the next block rotates under the head. 4.2BSD-era
// filesystems used an interleave of 2, which is why their sequential
// bandwidth was roughly half the media rate. n < 1 is treated as 1.
func (f *FS) SetInterleave(n int) {
	if n < 1 {
		n = 1
	}
	f.interleave = uint32(n)
}

// ---- block allocator ----

// AllocSite returns the filesystem's allocator-exhaustion fault site ID
// ("fs.<dev>.nospace"): every block allocation is one eligible
// occurrence, and a fire makes it fail with ErrNoSpace as if the bitmap
// scan had come up empty.
func (f *FS) AllocSite() kernel.FaultSite {
	return "fs." + f.dev.DevName() + ".nospace"
}

// allocBlock finds, marks and returns a free data block. The bitmap is
// accessed through the buffer cache, so allocation costs real I/O when
// the bitmap block is not resident. Candidates are examined at the
// configured interleave stride first (rotdelay layout); if no aligned
// block is free, any free block is taken.
func (f *FS) allocBlock(ctx kernel.Ctx) (uint32, error) {
	if f.k.Faults().Hit(f.AllocSite(), 0) {
		return 0, kernel.ErrNoSpace
	}
	if f.sb.FreeBlocks == 0 {
		return 0, kernel.ErrNoSpace
	}
	stride := f.interleave
	if stride == 0 {
		stride = 1
	}
	blk, err := f.scanAlloc(ctx, stride)
	if err == kernel.ErrNoSpace && stride > 1 {
		blk, err = f.scanAlloc(ctx, 1)
	}
	if err != nil {
		return 0, err
	}
	f.sb.FreeBlocks--
	f.sbDirty = true
	f.blkRotor = blk + stride
	if f.blkRotor >= f.sb.TotalBlocks {
		f.blkRotor = f.sb.DataStart
	}
	return blk, nil
}

// scanAlloc performs a first-fit bitmap scan from the rotor over
// stride-aligned data blocks, marking and returning the block found.
func (f *FS) scanAlloc(ctx kernel.Ctx, stride uint32) (uint32, error) {
	bitsPerBlk := int(f.sb.BlockSize) * 8
	dataStart := f.sb.DataStart
	span := f.sb.TotalBlocks - dataStart
	start := f.blkRotor
	if start < dataStart || start >= f.sb.TotalBlocks {
		start = dataStart
	}
	var held *buf.Buf
	var heldBlk int64 = -1
	release := func() {
		if held != nil {
			f.cache.Brelse(ctx, held)
			held = nil
			heldBlk = -1
		}
	}
	for scanned := uint32(0); scanned < span; scanned += stride {
		cur := dataStart + (start-dataStart+scanned)%span
		if stride > 1 && (cur-dataStart)%stride != 0 {
			continue
		}
		bmBlk := int64(f.sb.BitmapStart) + int64(cur)/int64(bitsPerBlk)
		if bmBlk != heldBlk {
			release()
			b, err := f.cache.Bread(ctx, f.dev, bmBlk)
			if err != nil {
				return 0, err
			}
			held, heldBlk = b, bmBlk
		}
		bit := int(cur) % bitsPerBlk
		if held.Data[bit/8]&(1<<uint(bit%8)) == 0 {
			held.Data[bit/8] |= 1 << uint(bit%8)
			f.cache.Bdwrite(ctx, held)
			return cur, nil
		}
	}
	release()
	return 0, kernel.ErrNoSpace
}

// freeBlock clears the bitmap bit for blk.
func (f *FS) freeBlock(ctx kernel.Ctx, blk uint32) error {
	if blk < f.sb.DataStart || blk >= f.sb.TotalBlocks {
		return kernel.ErrInval
	}
	bsize := int(f.sb.BlockSize)
	bitsPerBlk := bsize * 8
	bmBlk := int64(f.sb.BitmapStart) + int64(int(blk)/bitsPerBlk)
	b, err := f.cache.Bread(ctx, f.dev, bmBlk)
	if err != nil {
		return err
	}
	bit := int(blk) % bitsPerBlk
	b.Data[bit/8] &^= 1 << uint(bit%8)
	f.cache.Bdwrite(ctx, b)
	f.sb.FreeBlocks++
	f.sbDirty = true
	return nil
}

// ---- inode table ----

func (f *FS) inodesPerBlock() int { return int(f.sb.BlockSize) / InodeSize }

func (f *FS) itableBlock(ino uint32) (blk int64, off int) {
	per := f.inodesPerBlock()
	return int64(f.sb.ITableStart) + int64(int(ino)/per), (int(ino) % per) * InodeSize
}

// iget returns the in-core inode for ino, reading it from the inode
// table if necessary. The reference count is incremented; pair with
// iput.
func (f *FS) iget(ctx kernel.Ctx, ino uint32) (*Inode, error) {
	if ino == 0 || ino >= f.sb.NInodes {
		return nil, kernel.ErrInval
	}
	if ip, ok := f.inodes[ino]; ok {
		ip.refs++
		return ip, nil
	}
	blk, off := f.itableBlock(ino)
	b, err := f.cache.Bread(ctx, f.dev, blk)
	if err != nil {
		return nil, err
	}
	// Bread may sleep: another process can have installed this inode
	// while we waited for the table block (the classic iget race —
	// without this re-check, two in-core copies of one inode would
	// diverge and lose directory entries and size updates).
	if ip, ok := f.inodes[ino]; ok {
		f.cache.Brelse(ctx, b)
		ip.refs++
		return ip, nil
	}
	var di dinode
	di.decode(b.Data[off:])
	f.cache.Brelse(ctx, b)
	ip := &Inode{
		fs: f, ino: ino,
		mode: di.Mode, nlink: di.Nlink, size: di.Size,
		indir: di.Indir, dindir: di.DIndir,
		refs: 1,
	}
	ip.direct = di.Direct
	f.inodes[ino] = ip
	return ip, nil
}

// iput drops a reference; the last put writes back a dirty inode and
// removes unlinked inodes entirely.
func (f *FS) iput(ctx kernel.Ctx, ip *Inode) error {
	ip.refs--
	if ip.refs > 0 {
		return nil
	}
	var err error
	if ip.nlink == 0 {
		// Mark the inode free first: truncate's synchronous inode write
		// then records the release on the platter before the bitmap
		// gives the blocks back, so no stale claim can ever collide
		// with a block reallocated (and fsync'd) by another file.
		ip.mode = ModeFree
		ip.dirty = true
		err = ip.truncate(ctx, 0)
		f.sb.FreeInodes++
		f.sbDirty = true
	}
	if ip.dirty {
		if werr := f.iupdate(ctx, ip); werr != nil && err == nil {
			err = werr
		}
	}
	delete(f.inodes, ip.ino)
	return err
}

// iupdate writes the inode back to the inode table (delayed write).
func (f *FS) iupdate(ctx kernel.Ctx, ip *Inode) error {
	blk, off := f.itableBlock(ip.ino)
	b, err := f.cache.Bread(ctx, f.dev, blk)
	if err != nil {
		return err
	}
	di := dinode{
		Mode: ip.mode, Nlink: ip.nlink, Size: ip.size,
		Direct: ip.direct, Indir: ip.indir, DIndir: ip.dindir,
	}
	di.encode(b.Data[off:])
	f.cache.Bdwrite(ctx, b)
	ip.dirty = false
	return nil
}

// iupdateSync writes the inode back synchronously. The ordered-metadata
// discipline uses it where the on-platter inode image must be durable
// before a dependent update may land (new inode before its directory
// entry; cleared inode before its blocks return to the bitmap), so that
// a crash at any instant leaves a volume the repairing fsck provably
// converges on without touching any fsync'd file's content.
func (f *FS) iupdateSync(ctx kernel.Ctx, ip *Inode) error {
	blk, off := f.itableBlock(ip.ino)
	b, err := f.cache.Bread(ctx, f.dev, blk)
	if err != nil {
		return err
	}
	di := dinode{
		Mode: ip.mode, Nlink: ip.nlink, Size: ip.size,
		Direct: ip.direct, Indir: ip.indir, DIndir: ip.dindir,
	}
	di.encode(b.Data[off:])
	if err := f.cache.Bwrite(ctx, b); err != nil {
		return err
	}
	ip.dirty = false
	return nil
}

// ialloc finds a free inode, marks it with mode, and returns it held.
func (f *FS) ialloc(ctx kernel.Ctx, mode uint16) (*Inode, error) {
	if f.sb.FreeInodes == 0 {
		return nil, kernel.ErrNoSpace
	}
	n := f.sb.NInodes
	for scanned := uint32(0); scanned < n; scanned++ {
		ino := f.inoRotor + scanned
		if ino >= n {
			ino = ino - n + RootIno + 1
		}
		if ino <= RootIno {
			continue
		}
		if _, inCore := f.inodes[ino]; inCore {
			continue
		}
		blk, off := f.itableBlock(ino)
		b, err := f.cache.Bread(ctx, f.dev, blk)
		if err != nil {
			return nil, err
		}
		var di dinode
		di.decode(b.Data[off:])
		if di.Mode != ModeFree {
			f.cache.Brelse(ctx, b)
			continue
		}
		di = dinode{Mode: mode, Nlink: 1}
		di.encode(b.Data[off:])
		// Ordered metadata: the initialized inode must be on the platter
		// before the directory entry naming it can be written, so a
		// crash never leaves a durable dirent pointing at a free inode.
		if err := f.cache.Bwrite(ctx, b); err != nil {
			return nil, err
		}
		ip := &Inode{fs: f, ino: ino, mode: mode, nlink: 1, refs: 1}
		f.inodes[ino] = ip
		f.inoRotor = ino + 1
		f.sb.FreeInodes--
		f.sbDirty = true
		return ip, nil
	}
	return nil, kernel.ErrNoSpace
}

// ---- path resolution ----

func splitPath(path string) []string {
	var parts []string
	for _, s := range strings.Split(path, "/") {
		if s != "" && s != "." {
			parts = append(parts, s)
		}
	}
	return parts
}

// namei resolves path (relative to the filesystem root) to a held
// inode.
func (f *FS) namei(ctx kernel.Ctx, path string) (*Inode, error) {
	parts := splitPath(path)
	ip, err := f.iget(ctx, RootIno)
	if err != nil {
		return nil, err
	}
	for _, name := range parts {
		if ip.mode != ModeDir {
			_ = f.iput(ctx, ip)
			return nil, kernel.ErrNotDir
		}
		ino, _, err := f.dirLookup(ctx, ip, name)
		if err != nil {
			_ = f.iput(ctx, ip)
			return nil, err
		}
		next, err := f.iget(ctx, ino)
		_ = f.iput(ctx, ip)
		if err != nil {
			return nil, err
		}
		ip = next
	}
	return ip, nil
}

// nameiParent resolves the parent directory of path, returning the held
// parent inode and the final path element.
func (f *FS) nameiParent(ctx kernel.Ctx, path string) (*Inode, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", kernel.ErrInval
	}
	dirPath := strings.Join(parts[:len(parts)-1], "/")
	dp, err := f.namei(ctx, dirPath)
	if err != nil {
		return nil, "", err
	}
	if dp.mode != ModeDir {
		_ = f.iput(ctx, dp)
		return nil, "", kernel.ErrNotDir
	}
	return dp, parts[len(parts)-1], nil
}

// ---- directory contents ----

// dirLookup scans directory dp for name. Returns the inode number and
// the byte offset of the entry.
func (f *FS) dirLookup(ctx kernel.Ctx, dp *Inode, name string) (uint32, int64, error) {
	bsize := int64(f.sb.BlockSize)
	for off := int64(0); off < dp.size; off += DirentSize {
		lblk := off / bsize
		pblk, err := dp.bmap(ctx, lblk, false, false)
		if err != nil {
			return 0, 0, err
		}
		if pblk == 0 {
			continue
		}
		b, err := f.cache.Bread(ctx, f.dev, int64(pblk))
		if err != nil {
			return 0, 0, err
		}
		// Scan every entry in this block.
		blockEnd := (lblk + 1) * bsize
		for ; off < dp.size && off < blockEnd; off += DirentSize {
			de := decodeDirent(b.Data[off%bsize:])
			if de.Ino != 0 && de.Name == name {
				f.cache.Brelse(ctx, b)
				return de.Ino, off, nil
			}
		}
		off -= DirentSize // outer loop re-adds
		f.cache.Brelse(ctx, b)
	}
	return 0, 0, kernel.ErrNoEnt
}

// dirEnter adds (name, ino) to directory dp, reusing a free slot when
// one exists.
func (f *FS) dirEnter(ctx kernel.Ctx, dp *Inode, name string, ino uint32) error {
	if len(name) == 0 || len(name) > MaxNameLen {
		return kernel.ErrInval
	}
	bsize := int64(f.sb.BlockSize)
	// Look for a free slot.
	for off := int64(0); off < dp.size; off += DirentSize {
		pblk, err := dp.bmap(ctx, off/bsize, false, false)
		if err != nil {
			return err
		}
		if pblk == 0 {
			continue
		}
		b, err := f.cache.Bread(ctx, f.dev, int64(pblk))
		if err != nil {
			return err
		}
		de := decodeDirent(b.Data[off%bsize:])
		if de.Ino == 0 {
			encodeDirent(b.Data[off%bsize:], dirent{Ino: ino, Name: name})
			// Ordered metadata: directory entries are written through
			// synchronously (the target inode is already durable), so a
			// successfully created name survives any later crash.
			return f.cache.Bwrite(ctx, b)
		}
		f.cache.Brelse(ctx, b)
	}
	// Append at the end, allocating a new block if needed.
	off := dp.size
	pblk, err := dp.bmap(ctx, off/bsize, true, true)
	if err != nil {
		return err
	}
	b, err := f.cache.Bread(ctx, f.dev, int64(pblk))
	if err != nil {
		return err
	}
	encodeDirent(b.Data[off%bsize:], dirent{Ino: ino, Name: name})
	if err := f.cache.Bwrite(ctx, b); err != nil {
		return err
	}
	dp.size = off + DirentSize
	dp.dirty = true
	// The entry block is durable; now make it reachable by writing the
	// directory inode (grown size, possibly a new block pointer). Until
	// this lands a crash leaves the new inode orphaned — which repair
	// zaps — never a reachable torn entry.
	return f.iupdateSync(ctx, dp)
}

// dirRemove deletes name from directory dp.
func (f *FS) dirRemove(ctx kernel.Ctx, dp *Inode, name string) (uint32, error) {
	ino, off, err := f.dirLookup(ctx, dp, name)
	if err != nil {
		return 0, err
	}
	bsize := int64(f.sb.BlockSize)
	pblk, err := dp.bmap(ctx, off/bsize, false, false)
	if err != nil {
		return 0, err
	}
	b, err := f.cache.Bread(ctx, f.dev, int64(pblk))
	if err != nil {
		return 0, err
	}
	encodeDirent(b.Data[off%bsize:], dirent{})
	// Ordered metadata: the cleared entry must be durable before the
	// freed inode (written synchronously by iput/truncate) can be, or a
	// crash would leave a durable dirent naming a free inode.
	if err := f.cache.Bwrite(ctx, b); err != nil {
		return 0, err
	}
	return ino, nil
}

// ---- kernel.FileSystem interface ----

// OpenFile resolves (creating if requested) path and returns an open
// file object.
func (f *FS) OpenFile(ctx kernel.Ctx, path string, flags int) (kernel.FileOps, error) {
	ip, err := f.namei(ctx, path)
	if err == kernel.ErrNoEnt && flags&kernel.OCreat != 0 {
		ip, err = f.create(ctx, path)
	}
	if err != nil {
		return nil, err
	}
	if ip.mode == ModeDir && flags&0x3 != kernel.ORdOnly {
		_ = f.iput(ctx, ip)
		return nil, kernel.ErrIsDir
	}
	if flags&kernel.OTrunc != 0 && ip.mode == ModeFile {
		ip.lock(ctx)
		err = ip.truncate(ctx, 0)
		ip.unlock()
		if err != nil {
			_ = f.iput(ctx, ip)
			return nil, err
		}
	}
	return &File{fs: f, ip: ip}, nil
}

func (f *FS) create(ctx kernel.Ctx, path string) (*Inode, error) {
	dp, name, err := f.nameiParent(ctx, path)
	if err != nil {
		return nil, err
	}
	defer f.iput(ctx, dp)
	if _, _, err := f.dirLookup(ctx, dp, name); err == nil {
		return nil, kernel.ErrExist
	}
	ip, err := f.ialloc(ctx, ModeFile)
	if err != nil {
		return nil, err
	}
	dp.lock(ctx)
	err = f.dirEnter(ctx, dp, name, ip.ino)
	dp.unlock()
	if err != nil {
		ip.nlink = 0
		_ = f.iput(ctx, ip)
		return nil, err
	}
	return ip, nil
}

// Mkdir creates a directory at path.
func (f *FS) Mkdir(ctx kernel.Ctx, path string) error {
	dp, name, err := f.nameiParent(ctx, path)
	if err != nil {
		return err
	}
	defer f.iput(ctx, dp)
	if _, _, err := f.dirLookup(ctx, dp, name); err == nil {
		return kernel.ErrExist
	}
	ip, err := f.ialloc(ctx, ModeDir)
	if err != nil {
		return err
	}
	dp.lock(ctx)
	err = f.dirEnter(ctx, dp, name, ip.ino)
	dp.unlock()
	if err != nil {
		ip.nlink = 0
	}
	_ = f.iput(ctx, ip)
	return err
}

// Remove unlinks path (kernel.FileSystem interface).
func (f *FS) Remove(ctx kernel.Ctx, path string) error {
	dp, name, err := f.nameiParent(ctx, path)
	if err != nil {
		return err
	}
	defer f.iput(ctx, dp)
	dp.lock(ctx)
	ino, err := f.dirRemove(ctx, dp, name)
	dp.unlock()
	if err != nil {
		return err
	}
	ip, err := f.iget(ctx, ino)
	if err != nil {
		return err
	}
	if ip.nlink > 0 {
		ip.nlink--
	}
	ip.dirty = true
	return f.iput(ctx, ip)
}

// SyncAll flushes the superblock and every dirty buffer of the device.
func (f *FS) SyncAll(ctx kernel.Ctx) error {
	// Dirty mapped pages first: paging them out turns mmap stores into
	// ordinary delayed writes, which the flush below then carries to
	// the platter — the update daemon and sync() cover mmap I/O exactly
	// as they cover write() I/O.
	if f.pager != nil {
		dev := f.dev.DevName()
		for _, ino := range f.pager.DirtyInos(dev) {
			if err := f.pager.PageoutObject(ctx, dev, ino); err != nil {
				return err
			}
		}
	}
	// Deterministic inode order: map iteration order must not leak
	// into I/O issue order (it would show up in trace digests).
	inos := make([]uint32, 0, len(f.inodes))
	for ino := range f.inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		if ip := f.inodes[ino]; ip.dirty {
			if err := f.iupdate(ctx, ip); err != nil {
				return err
			}
		}
	}
	if f.sbDirty {
		b := f.cache.Getblk(ctx, f.dev, 0)
		f.sb.encode(b.Data)
		f.cache.Bdwrite(ctx, b)
		f.sbDirty = false
	}
	n, err := f.cache.FlushDev(ctx, f.dev)
	// Consume the sticky latch whether or not the flush itself failed:
	// nothing dirty to flush can still mean a buffer-daemon write
	// failed since the last sync, and a flush failure latched its error
	// for exactly this sync to take.
	if lerr := f.cache.TakeWriteError(f.dev); err == nil {
		err = lerr
	}
	if err == nil {
		f.k.TraceEmit(trace.KindFSSync, 0, int64(n), 0, f.dev.DevName())
	}
	return err
}

// LiveInodes returns the number of in-core inodes (files or
// directories currently referenced). Crash orchestration asserts this
// is zero before pulling the plug: volatile inode state on a
// non-quiescent volume would be discarded mid-operation.
func (f *FS) LiveInodes() int { return len(f.inodes) }

// Exists reports whether path resolves (test/benchmark convenience).
func (f *FS) Exists(ctx kernel.Ctx, path string) bool {
	ip, err := f.namei(ctx, path)
	if err != nil {
		return false
	}
	_ = f.iput(ctx, ip)
	return true
}

var _ kernel.FileSystem = (*FS)(nil)
