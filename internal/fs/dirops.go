package fs

import (
	"kdp/internal/kernel"
)

// DirEntry describes one directory member, as ReadDir reports it.
type DirEntry struct {
	Name  string
	Ino   uint32
	IsDir bool
	Size  int64
}

// FileInfo is the stat(2)-style metadata for a path.
type FileInfo struct {
	Ino   uint32
	Size  int64
	IsDir bool
	Nlink int
}

// Stat returns metadata for path.
func (f *FS) Stat(ctx kernel.Ctx, path string) (FileInfo, error) {
	ip, err := f.namei(ctx, path)
	if err != nil {
		return FileInfo{}, err
	}
	info := FileInfo{
		Ino:   ip.ino,
		Size:  ip.size,
		IsDir: ip.mode == ModeDir,
		Nlink: int(ip.nlink),
	}
	return info, f.iput(ctx, ip)
}

// ReadDir lists the directory at path in on-disk order.
func (f *FS) ReadDir(ctx kernel.Ctx, path string) ([]DirEntry, error) {
	dp, err := f.namei(ctx, path)
	if err != nil {
		return nil, err
	}
	defer f.iput(ctx, dp)
	if dp.mode != ModeDir {
		return nil, kernel.ErrNotDir
	}
	bsize := int64(f.sb.BlockSize)
	var entries []DirEntry
	for off := int64(0); off < dp.size; off += DirentSize {
		pblk, err := dp.bmap(ctx, off/bsize, false, false)
		if err != nil {
			return nil, err
		}
		if pblk == 0 {
			continue
		}
		b, err := f.cache.Bread(ctx, f.dev, int64(pblk))
		if err != nil {
			return nil, err
		}
		de := decodeDirent(b.Data[off%bsize:])
		f.cache.Brelse(ctx, b)
		if de.Ino == 0 {
			continue
		}
		ip, err := f.iget(ctx, de.Ino)
		if err != nil {
			return nil, err
		}
		entries = append(entries, DirEntry{
			Name:  de.Name,
			Ino:   de.Ino,
			IsDir: ip.mode == ModeDir,
			Size:  ip.size,
		})
		if err := f.iput(ctx, ip); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// StatPath implements kernel.StatFS.
func (f *FS) StatPath(ctx kernel.Ctx, path string) (kernel.StatInfo, error) {
	info, err := f.Stat(ctx, path)
	if err != nil {
		return kernel.StatInfo{}, err
	}
	return kernel.StatInfo{Size: info.Size, IsDir: info.IsDir}, nil
}

// RenamePath implements kernel.RenameFS.
func (f *FS) RenamePath(ctx kernel.Ctx, oldPath, newPath string) error {
	return f.Rename(ctx, oldPath, newPath)
}

var (
	_ kernel.StatFS   = (*FS)(nil)
	_ kernel.RenameFS = (*FS)(nil)
)

// Rename moves oldPath to newPath, replacing an existing regular file
// at the destination (directories cannot be replaced).
func (f *FS) Rename(ctx kernel.Ctx, oldPath, newPath string) error {
	oldDir, oldName, err := f.nameiParent(ctx, oldPath)
	if err != nil {
		return err
	}
	defer f.iput(ctx, oldDir)
	srcIno, _, err := f.dirLookup(ctx, oldDir, oldName)
	if err != nil {
		return err
	}

	newDir, newName, err := f.nameiParent(ctx, newPath)
	if err != nil {
		return err
	}
	defer f.iput(ctx, newDir)

	// Moving a directory under itself would orphan it; this fs only
	// checks direct self-rename (deep cycle checks need ".." walking,
	// which these flat experiment volumes never exercise).
	if oldDir == newDir && oldName == newName {
		return nil
	}

	if dstIno, _, err := f.dirLookup(ctx, newDir, newName); err == nil {
		dst, err := f.iget(ctx, dstIno)
		if err != nil {
			return err
		}
		if dst.mode == ModeDir {
			_ = f.iput(ctx, dst)
			return kernel.ErrIsDir
		}
		newDir.lock(ctx)
		_, err = f.dirRemove(ctx, newDir, newName)
		newDir.unlock()
		if err != nil {
			_ = f.iput(ctx, dst)
			return err
		}
		if dst.nlink > 0 {
			dst.nlink--
		}
		dst.dirty = true
		if err := f.iput(ctx, dst); err != nil {
			return err
		}
	}

	newDir.lock(ctx)
	err = f.dirEnter(ctx, newDir, newName, srcIno)
	newDir.unlock()
	if err != nil {
		return err
	}
	oldDir.lock(ctx)
	_, err = f.dirRemove(ctx, oldDir, oldName)
	oldDir.unlock()
	return err
}
