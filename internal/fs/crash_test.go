package fs

import (
	"bytes"
	"hash/fnv"
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// readDinodeRaw decodes inode ino straight off the media, bypassing
// the cache (tests must InvalidateDev before mutating raw media).
func (r *rig) readDinodeRaw(ino uint32) dinode {
	sb := superRaw(r)
	raw := make([]byte, sb.BlockSize)
	per := int(sb.BlockSize) / InodeSize
	r.d.ReadRaw(int64(sb.ITableStart)+int64(int(ino)/per), raw)
	var di dinode
	di.decode(raw[(int(ino)%per)*InodeSize:])
	return di
}

// writeDinodeRaw encodes inode ino straight onto the media.
func (r *rig) writeDinodeRaw(ino uint32, di dinode) {
	sb := superRaw(r)
	raw := make([]byte, sb.BlockSize)
	per := int(sb.BlockSize) / InodeSize
	blk := int64(sb.ITableStart) + int64(int(ino)/per)
	r.d.ReadRaw(blk, raw)
	di.encode(raw[(int(ino)%per)*InodeSize:])
	r.d.WriteRaw(blk, raw)
}

// superRaw decodes the superblock off the media.
func superRaw(r *rig) Superblock {
	raw := make([]byte, testBlockSize)
	r.d.ReadRaw(0, raw)
	var sb Superblock
	if err := sb.decode(raw); err != nil {
		panic(err)
	}
	return sb
}

// flipBitmapRaw flips one allocation bit on the media.
func (r *rig) flipBitmapRaw(blk uint32, set bool) {
	sb := superRaw(r)
	raw := make([]byte, sb.BlockSize)
	per := int(sb.BlockSize) * 8
	bmBlk := int64(sb.BitmapStart) + int64(int(blk)/per)
	r.d.ReadRaw(bmBlk, raw)
	bit := int(blk) % per
	if set {
		raw[bit/8] |= 1 << uint(bit%8)
	} else {
		raw[bit/8] &^= 1 << uint(bit%8)
	}
	r.d.WriteRaw(bmBlk, raw)
}

// TestDaemonFlushedWriteErrorSurfacesAtFsync is the regression test for
// the silently-dropped delayed-write error: a bdwrite buffer pushed out
// by the flush daemon hits a media error at interrupt level, with no
// process waiting to hear about it. The error must latch per-device and
// surface at the next fsync — not vanish.
func TestDaemonFlushedWriteErrorSurfacesAtFsync(t *testing.T) {
	r := newRig(t, 512)
	stop := r.c.StartFlushDaemon(5)
	defer stop()
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, err := f.OpenFile(ctx, "/f", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := fl.Write(ctx, pattern(testBlockSize, 9), 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Fail the physical block backing the delayed write, then let
		// the daemon flush it asynchronously.
		blk := fl.(*File).Inode().direct[0]
		r.d.InjectFault(int64(blk), false, true, 1)
		p.SleepFor(200 * sim.Millisecond)
		if r.c.WriteError(r.d) == nil {
			t.Fatal("daemon flush error did not latch on the device")
		}
		if err := fl.Sync(ctx); err != kernel.ErrIO {
			t.Fatalf("fsync after daemon-flushed write error = %v, want ErrIO", err)
		}
		// The error was consumed; the fault was one-shot, so rewriting
		// and syncing again must succeed.
		if _, err := fl.Write(ctx, pattern(testBlockSize, 9), 0); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		if err := fl.Sync(ctx); err != nil {
			t.Fatalf("fsync after repair write = %v, want nil", err)
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}

// TestDaemonFlushedWriteErrorSurfacesAtClose is the close-path variant:
// with no intervening fsync, close is the last chance to report the
// lost delayed write.
func TestDaemonFlushedWriteErrorSurfacesAtClose(t *testing.T) {
	r := newRig(t, 512)
	stop := r.c.StartFlushDaemon(5)
	defer stop()
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, err := f.OpenFile(ctx, "/f", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := fl.Write(ctx, pattern(testBlockSize, 3), 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		blk := fl.(*File).Inode().direct[0]
		r.d.InjectFault(int64(blk), false, true, 1)
		p.SleepFor(200 * sim.Millisecond)
		if err := fl.Close(ctx); err != kernel.ErrIO {
			t.Fatalf("close after daemon-flushed write error = %v, want ErrIO", err)
		}
	})
}

// TestEnospcMidExtensionRollsBack is the regression test for leaked
// blocks on a failed multi-block extension: when a single Write call
// runs out of space partway through, the blocks it allocated earlier in
// the same call (beyond the successfully written prefix) must be given
// back — fsck must find zero leaked blocks.
func TestEnospcMidExtensionRollsBack(t *testing.T) {
	r := newRig(t, 32) // tiny volume: a handful of data blocks
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, err := f.OpenFile(ctx, "/big", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		// One call asking for far more than the volume holds.
		big := pattern(64*testBlockSize, 5)
		n, werr := fl.Write(ctx, big, 0)
		if werr != kernel.ErrNoSpace {
			t.Fatalf("oversized write: n=%d err=%v, want ErrNoSpace", n, werr)
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := f.SyncAll(ctx); err != nil {
			t.Fatalf("syncall: %v", err)
		}
		rep, err := Fsck(ctx, r.c, r.d)
		if err != nil {
			t.Fatalf("fsck: %v", err)
		}
		if !rep.Clean() {
			t.Fatalf("fsck after ENOSPC rollback: %d problem(s), first: %s",
				len(rep.Problems), rep.Problems[0])
		}
		// The written prefix must still read back.
		fl2, err := f.OpenFile(ctx, "/big", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got := make([]byte, n)
		if rn, err := fl2.Read(ctx, got, 0); err != nil || rn != n {
			t.Fatalf("read prefix: n=%d err=%v, want %d", rn, err, n)
		}
		if !bytes.Equal(got, big[:n]) {
			t.Fatal("surviving prefix differs from what Write reported written")
		}
		_ = fl2.Close(ctx)
	})
}

// TestFsckRepairMatrix drives the repairing fsck over a matrix of media
// corruptions. Every case must converge: repair reports and fixes the
// damage, and the follow-up plain fsck finds a clean volume.
func TestFsckRepairMatrix(t *testing.T) {
	// Inode numbers are deterministic: ialloc scans from the bottom, so
	// with root=1 the files below land at 2, 3 and the dir at 4.
	const (
		inoA   = 2
		inoB   = 3
		inoSub = 4
	)
	cases := []struct {
		name string
		// wantProblems=false marks damage fsck tolerates silently; all
		// other cases must be detected and repaired.
		wantProblems bool
		corrupt      func(t *testing.T, r *rig)
	}{
		{"bad-pointer", true, func(t *testing.T, r *rig) {
			di := r.readDinodeRaw(inoA)
			di.Direct[0] = superRaw(r).TotalBlocks + 5
			r.writeDinodeRaw(inoA, di)
		}},
		{"crosslink", true, func(t *testing.T, r *rig) {
			a, b := r.readDinodeRaw(inoA), r.readDinodeRaw(inoB)
			b.Direct[0] = a.Direct[0]
			r.writeDinodeRaw(inoB, b)
		}},
		{"orphan-inode", true, func(t *testing.T, r *rig) {
			r.writeDinodeRaw(20, dinode{Mode: ModeFile, Nlink: 1, Size: 0})
		}},
		{"torn-dir-size", true, func(t *testing.T, r *rig) {
			di := r.readDinodeRaw(RootIno)
			di.Size += 13
			r.writeDinodeRaw(RootIno, di)
		}},
		{"bad-nlink", true, func(t *testing.T, r *rig) {
			di := r.readDinodeRaw(inoA)
			di.Nlink = 7
			r.writeDinodeRaw(inoA, di)
		}},
		{"bad-mode", true, func(t *testing.T, r *rig) {
			di := r.readDinodeRaw(inoB)
			di.Mode = 0x1234
			r.writeDinodeRaw(inoB, di)
		}},
		{"bitmap-both-ways", true, func(t *testing.T, r *rig) {
			sb := superRaw(r)
			r.flipBitmapRaw(sb.TotalBlocks-3, true) // spurious in-use
			di := r.readDinodeRaw(inoA)
			r.flipBitmapRaw(di.Direct[0], false) // used block marked free
		}},
		{"sb-counts", true, func(t *testing.T, r *rig) {
			sb := superRaw(r)
			sb.FreeBlocks += 17
			sb.FreeInodes--
			raw := make([]byte, sb.BlockSize)
			r.d.ReadRaw(0, raw)
			sb.encode(raw)
			r.d.WriteRaw(0, raw)
		}},
		{"clean-volume", false, func(t *testing.T, r *rig) {}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 512)
			r.run(t, func(p *kernel.Proc, f *FS) {
				ctx := p.Ctx()
				for _, path := range []string{"/a", "/b"} {
					fl, err := f.OpenFile(ctx, path, kernel.OCreat|kernel.ORdWr)
					if err != nil {
						t.Fatalf("create %s: %v", path, err)
					}
					if _, err := fl.Write(ctx, pattern(2*testBlockSize, 7), 0); err != nil {
						t.Fatalf("write %s: %v", path, err)
					}
					if err := fl.Close(ctx); err != nil {
						t.Fatalf("close %s: %v", path, err)
					}
				}
				if err := f.Mkdir(ctx, "/sub"); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := f.SyncAll(ctx); err != nil {
					t.Fatalf("syncall: %v", err)
				}
				if err := r.c.InvalidateDev(ctx, r.d); err != nil {
					t.Fatalf("invalidate: %v", err)
				}

				tc.corrupt(t, r)

				rep, err := FsckRepair(ctx, r.c, r.d)
				if err != nil {
					t.Fatalf("fsck-repair: %v", err)
				}
				if tc.wantProblems && len(rep.Problems) == 0 {
					t.Error("corruption went undetected by repair")
				}
				if !tc.wantProblems && rep.Repaired != 0 {
					t.Errorf("clean volume repaired %d time(s): %v", rep.Repaired, rep.Problems)
				}
				chk, err := Fsck(ctx, r.c, r.d)
				if err != nil {
					t.Fatalf("post-repair fsck: %v", err)
				}
				if !chk.Clean() {
					t.Fatalf("volume not clean after repair: %d problem(s), first: %s",
						len(chk.Problems), chk.Problems[0])
				}
			})
		})
	}
}

// metaDigest hashes the metadata region — superblock, allocation
// bitmap, and inode table — straight off the media.
func metaDigest(r *rig) uint64 {
	sb := superRaw(r)
	h := fnv.New64a()
	raw := make([]byte, sb.BlockSize)
	for blk := int64(0); blk < int64(sb.DataStart); blk++ {
		r.d.ReadRaw(blk, raw)
		h.Write(raw)
	}
	return h.Sum64()
}

// TestFsckRepairIdempotent: repair must converge in one pass. After a
// first FsckRepair fixes compound damage, a second pass must find
// nothing, fix nothing, and leave the on-media metadata byte-exact.
func TestFsckRepairIdempotent(t *testing.T) {
	const inoA = 2 // deterministic: first file created below root
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		for _, path := range []string{"/a", "/b"} {
			fl, err := f.OpenFile(ctx, path, kernel.OCreat|kernel.ORdWr)
			if err != nil {
				t.Fatalf("create %s: %v", path, err)
			}
			if _, err := fl.Write(ctx, pattern(2*testBlockSize, 7), 0); err != nil {
				t.Fatalf("write %s: %v", path, err)
			}
			if err := fl.Close(ctx); err != nil {
				t.Fatalf("close %s: %v", path, err)
			}
		}
		if err := f.SyncAll(ctx); err != nil {
			t.Fatalf("syncall: %v", err)
		}
		if err := r.c.InvalidateDev(ctx, r.d); err != nil {
			t.Fatalf("invalidate: %v", err)
		}

		// Compound damage touching every metadata structure: a mangled
		// inode (bad link count and an out-of-range block pointer), an
		// orphan inode, a spurious bitmap bit, and skewed superblock
		// counters.
		di := r.readDinodeRaw(inoA)
		di.Nlink = 9
		di.Direct[1] = superRaw(r).TotalBlocks + 4
		r.writeDinodeRaw(inoA, di)
		r.writeDinodeRaw(20, dinode{Mode: ModeFile, Nlink: 1, Size: 0})
		sb := superRaw(r)
		r.flipBitmapRaw(sb.TotalBlocks-2, true)
		sb.FreeBlocks += 5
		raw := make([]byte, sb.BlockSize)
		r.d.ReadRaw(0, raw)
		sb.encode(raw)
		r.d.WriteRaw(0, raw)

		rep1, err := FsckRepair(ctx, r.c, r.d)
		if err != nil {
			t.Fatalf("first repair: %v", err)
		}
		if rep1.Repaired == 0 {
			t.Fatal("compound damage produced no repairs")
		}
		d1 := metaDigest(r)

		rep2, err := FsckRepair(ctx, r.c, r.d)
		if err != nil {
			t.Fatalf("second repair: %v", err)
		}
		if rep2.Repaired != 0 || len(rep2.Problems) != 0 {
			t.Fatalf("second pass not a no-op: %d problem(s), %d fix(es), first: %v",
				len(rep2.Problems), rep2.Repaired, rep2.Problems)
		}
		if d2 := metaDigest(r); d2 != d1 {
			t.Fatalf("second pass changed the metadata region: %#x -> %#x", d1, d2)
		}
		chk, err := Fsck(ctx, r.c, r.d)
		if err != nil {
			t.Fatalf("final fsck: %v", err)
		}
		if !chk.Clean() {
			t.Fatalf("volume not clean after converged repair: %v", chk.Problems)
		}
	})
}

// TestCrashRecoverySyncedFileSurvives is the end-to-end crash contract
// at the fs layer: power cut after an fsync, repair, remount — the
// synced file reads back byte-exact, and a file created (but never
// synced) before the crash still exists by name.
func TestCrashRecoverySyncedFileSurvives(t *testing.T) {
	r := newRig(t, 512)
	want := pattern(3*testBlockSize, 11)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, err := f.OpenFile(ctx, "/synced", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := fl.Write(ctx, want, 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := fl.Sync(ctx); err != nil {
			t.Fatalf("fsync: %v", err)
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		// A second file whose data is only in dirty delayed-write
		// buffers at crash time: the name is durable (ordered create),
		// the content is not.
		fl2, err := f.OpenFile(ctx, "/unsynced", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("create unsynced: %v", err)
		}
		if _, err := fl2.Write(ctx, pattern(testBlockSize, 13), 0); err != nil {
			t.Fatalf("write unsynced: %v", err)
		}
		if err := fl2.Close(ctx); err != nil {
			t.Fatalf("close unsynced: %v", err)
		}

		// Power cut.
		if n := f.LiveInodes(); n != 0 {
			t.Fatalf("not quiescent before crash: %d in-core inode(s)", n)
		}
		dropped := r.d.Crash()
		for r.d.Busy() {
			p.SleepFor(10 * sim.Millisecond)
		}
		lost, _ := r.c.Crash(r.d)
		t.Logf("crash: %d dirty buffer(s) lost, %d queued request(s) dropped", lost, dropped)
		if lost == 0 {
			t.Error("crash lost no dirty buffers: the unsynced write was not delayed")
		}

		// Recovery.
		rep, err := FsckRepair(ctx, r.c, r.d)
		if err != nil {
			t.Fatalf("fsck-repair: %v", err)
		}
		t.Logf("repair: %d problem(s), %d fix(es)", len(rep.Problems), rep.Repaired)
		chk, err := Fsck(ctx, r.c, r.d)
		if err != nil {
			t.Fatalf("post-repair fsck: %v", err)
		}
		if !chk.Clean() {
			t.Fatalf("volume not clean after crash repair: %d problem(s), first: %s",
				len(chk.Problems), chk.Problems[0])
		}
		f2, err := Mount(ctx, r.c, r.d)
		if err != nil {
			t.Fatalf("remount: %v", err)
		}
		fl3, err := f2.OpenFile(ctx, "/synced", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("synced file lost by the crash: %v", err)
		}
		got := make([]byte, len(want)+1)
		n, err := fl3.Read(ctx, got, 0)
		if err != nil {
			t.Fatalf("read synced: %v", err)
		}
		_ = fl3.Close(ctx)
		if n != len(want) || !bytes.Equal(got[:n], want) {
			t.Fatalf("synced file not byte-exact after crash: got %d bytes, want %d", n, len(want))
		}
		if !f2.Exists(ctx, "/unsynced") {
			t.Error("durably created (unsynced) file lost its name in the crash")
		}
	})
}

// TestErrIOMidExtensionLeavesCleanFsck is the mid-extension ErrIO
// companion to the ENOSPC rollback test: a media read error partway
// through a multi-block write that crosses into the indirect range
// must surface ErrIO with the completed prefix — and, like ENOSPC,
// must not leak a single block for fsck to find. The fault is armed on
// the file's indirect pointer block, so the failing iteration is the
// one that extends past the direct blocks.
func TestErrIOMidExtensionLeavesCleanFsck(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, err := f.OpenFile(ctx, "/f", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		// 13 blocks: the file owns an indirect block, durably on disk.
		if _, err := fl.Write(ctx, pattern(13*testBlockSize, 2), 0); err != nil {
			t.Fatalf("seed write: %v", err)
		}
		if err := fl.Sync(ctx); err != nil {
			t.Fatalf("sync: %v", err)
		}
		indir := int64(fl.(*File).Inode().indir)
		if indir == 0 {
			t.Fatal("13-block file has no indirect block")
		}
		// Force the next use of the indirect block to the media, where
		// a one-shot read fault waits for it.
		if err := r.c.InvalidateBlocks(ctx, r.d, []int64{indir}); err != nil {
			t.Fatalf("invalidate: %v", err)
		}
		r.d.InjectFault(indir, true, false, 1)
		// Two blocks starting at direct block 11: the first lands, the
		// second needs the indirect block and dies on the media error.
		n, werr := fl.Write(ctx, pattern(2*testBlockSize, 9), 11*testBlockSize)
		if werr != kernel.ErrIO || n != testBlockSize {
			t.Fatalf("write across fault: n=%d err=%v, want %d, ErrIO", n, werr, testBlockSize)
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := f.SyncAll(ctx); err != nil {
			t.Fatalf("syncall: %v", err)
		}
		rep, err := Fsck(ctx, r.c, r.d)
		if err != nil {
			t.Fatalf("fsck: %v", err)
		}
		if !rep.Clean() {
			t.Fatalf("fsck after mid-extension ErrIO: %d problem(s), first: %s",
				len(rep.Problems), rep.Problems[0])
		}
	})
}

// TestRollbackBlockAfterFailedBread drives Write's ErrIO rollback path
// (file.go: fresh partial-block allocation whose read-back fails)
// directly: allocate a block past the indirect boundary, push its
// zero-filled buffer to the media and drop the cached copy, fault the
// block, and take the same Bread failure the write path would. After
// rollbackBlock the pointer is a hole again, no cached buffer shadows
// the freed block, and fsck finds zero leaked blocks.
func TestRollbackBlockAfterFailedBread(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, err := f.OpenFile(ctx, "/f", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := fl.Write(ctx, pattern(13*testBlockSize, 4), 0); err != nil {
			t.Fatalf("seed write: %v", err)
		}
		if err := fl.Sync(ctx); err != nil {
			t.Fatalf("sync: %v", err)
		}
		file := fl.(*File)
		ip := file.Inode()
		const lblk = 14 // second block of the indirect range
		ip.lock(ctx)
		pblk, err := ip.bmap(ctx, lblk, true, true)
		if err != nil {
			ip.unlock()
			t.Fatalf("bmap alloc: %v", err)
		}
		// Evict the fresh zero-filled buffer (flushing it out) so the
		// read-back goes to the media, then fault the block: the exact
		// state in which Write's Bread fails mid-extension.
		if err := r.c.InvalidateBlocks(ctx, r.d, []int64{int64(pblk)}); err != nil {
			ip.unlock()
			t.Fatalf("invalidate: %v", err)
		}
		r.d.InjectFault(int64(pblk), true, false, 1)
		if _, err := r.c.Bread(ctx, r.d, int64(pblk)); err != kernel.ErrIO {
			ip.unlock()
			t.Fatalf("bread of faulted block = %v, want ErrIO", err)
		}
		file.rollbackBlock(ctx, lblk)
		back, err := ip.bmap(ctx, lblk, false, false)
		ip.unlock()
		if err != nil || back != 0 {
			t.Fatalf("after rollback bmap = %d, %v, want hole", back, err)
		}
		if b := r.c.Peek(r.d, int64(pblk)); b != nil {
			t.Fatalf("freed block %d still cached", pblk)
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := f.SyncAll(ctx); err != nil {
			t.Fatalf("syncall: %v", err)
		}
		rep, err := Fsck(ctx, r.c, r.d)
		if err != nil {
			t.Fatalf("fsck: %v", err)
		}
		if !rep.Clean() {
			t.Fatalf("fsck after ErrIO rollback: %d problem(s), first: %s",
				len(rep.Problems), rep.Problems[0])
		}
	})
}
