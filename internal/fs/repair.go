package fs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/trace"
)

// FsckRepair is the repairing variant of Fsck (fsck -p): instead of
// only reporting inconsistencies it rewrites the volume into a
// consistent state, preferring to discard unsynced garbage over
// refusing to mount. It is what the crash-recovery path runs between
// power-up and remount. The repairs, in order:
//
//   - inodes with an invalid mode are zapped (returned to the free
//     pool);
//   - block pointers that point outside the data region, duplicate a
//     block already claimed, or hang off an unreadable indirect block
//     are cleared (first claim wins — with the ordered-metadata write
//     discipline a durably synced file's claims always land before any
//     competing reuse, so a dup can only involve unsynced data);
//   - directory sizes are truncated to whole entries, and entries that
//     name free, out-of-range, or zapped inodes — or carry a mangled
//     name — are cleared;
//   - unreachable (orphaned) inodes are zapped, cascading until the
//     reachability set is stable; a missing root directory is
//     recreated empty;
//   - link counts are reset to the observed reference counts;
//   - the allocation bitmap is rebuilt wholesale from the surviving
//     reference walk, and the superblock free counters from the
//     bitmap and inode table.
//
// Every repair is also recorded in the report's Problems list, and
// Repaired counts the individual fixes applied. All writes go through
// the cache and are flushed before return, so a follow-up Fsck sees a
// clean volume. Like Fsck it expects a quiescent device.
func FsckRepair(ctx kernel.Ctx, cache *buf.Cache, dev buf.Device) (*FsckReport, error) {
	rep := &FsckReport{}

	sbuf, err := cache.Bread(ctx, dev, 0)
	if err != nil {
		return nil, err
	}
	var sb Superblock
	err = sb.decode(sbuf.Data)
	cache.Brelse(ctx, sbuf)
	if err != nil {
		// No geometry to work from: the superblock is only ever
		// rewritten in place with identical geometry, so this is
		// external corruption, not a crash artifact.
		return nil, fmt.Errorf("fs: unrepairable superblock: %w", err)
	}
	// A write error latched before repair began belongs to the
	// pre-repair world (the crash, or injected faults since cleared);
	// repair verifies its own writes with the final flush below.
	_ = cache.TakeWriteError(dev)

	sbDirty := false
	if int64(sb.TotalBlocks) != dev.DevBlocks() {
		rep.problemf("superblock: claims %d blocks, device has %d", sb.TotalBlocks, dev.DevBlocks())
		sb.TotalBlocks = uint32(dev.DevBlocks())
		sbDirty = true
		rep.Repaired++
	}
	if sb.DataStart >= sb.TotalBlocks || sb.BlockSize == 0 {
		return nil, fmt.Errorf("fs: unrepairable superblock geometry (data start %d, %d blocks)", sb.DataStart, sb.TotalBlocks)
	}

	// Pass 1: sanitize every allocated inode's pointers. refs records
	// which inode first claimed each block; claims by inodes that are
	// later zapped are recomputed away in the final reference walk.
	refs := map[uint32]uint32{}
	allocated := map[uint32]*dinode{}
	dirtyIno := map[uint32]bool{}
	for ino := uint32(1); ino < sb.NInodes; ino++ {
		di, err := readDinode(ctx, cache, dev, &sb, ino)
		if err != nil {
			return nil, err
		}
		if di.Mode == ModeFree {
			continue
		}
		if di.Mode != ModeFile && di.Mode != ModeDir {
			rep.problemf("inode %d: invalid mode %d (zapped)", ino, di.Mode)
			if err := writeDinode(ctx, cache, dev, &sb, ino, &dinode{}); err != nil {
				return nil, err
			}
			rep.Repaired++
			continue
		}
		if di.Size < 0 {
			rep.problemf("inode %d: negative size %d (reset)", ino, di.Size)
			di.Size = 0
			dirtyIno[ino] = true
			rep.Repaired++
		}
		if di.Mode == ModeDir && di.Size%DirentSize != 0 {
			rep.problemf("dir inode %d: torn size %d (truncated)", ino, di.Size)
			di.Size -= di.Size % DirentSize
			dirtyIno[ino] = true
			rep.Repaired++
		}
		claim := func(pblk uint32, what string) bool {
			if pblk < sb.DataStart || pblk >= sb.TotalBlocks {
				rep.problemf("inode %d: %s block %d outside data region (cleared)", ino, what, pblk)
				return false
			}
			if prev, dup := refs[pblk]; dup {
				rep.problemf("inode %d: %s block %d already referenced by inode %d (cleared)", ino, what, pblk, prev)
				return false
			}
			refs[pblk] = ino
			return true
		}
		// sanitizePtr claims a pointer block and scrubs its entries in
		// place, returning false when the pointer to it must be cleared.
		var sanitizePtr func(blk uint32, what string, depth int) bool
		sanitizePtr = func(blk uint32, what string, depth int) bool {
			if !claim(blk, what) {
				return false
			}
			pb, err := cache.Bread(ctx, dev, int64(blk))
			if err != nil {
				rep.problemf("inode %d: unreadable %s block %d (cleared)", ino, what, blk)
				delete(refs, blk)
				return false
			}
			le := binary.LittleEndian
			ppb := int(sb.BlockSize) / 4
			modified := false
			for i := 0; i < ppb; i++ {
				p := le.Uint32(pb.Data[i*4:])
				if p == 0 {
					continue
				}
				keep := false
				if depth > 1 {
					keep = sanitizePtr(p, "indirect", depth-1)
				} else {
					keep = claim(p, "data")
				}
				if !keep {
					le.PutUint32(pb.Data[i*4:], 0)
					modified = true
					rep.Repaired++
				}
			}
			if modified {
				cache.Bdwrite(ctx, pb)
			} else {
				cache.Brelse(ctx, pb)
			}
			return true
		}
		for i := range di.Direct {
			if di.Direct[i] != 0 && !claim(di.Direct[i], "direct") {
				di.Direct[i] = 0
				dirtyIno[ino] = true
				rep.Repaired++
			}
		}
		if di.Indir != 0 && !sanitizePtr(di.Indir, "indirect", 1) {
			di.Indir = 0
			dirtyIno[ino] = true
			rep.Repaired++
		}
		if di.DIndir != 0 && !sanitizePtr(di.DIndir, "double-indirect", 2) {
			di.DIndir = 0
			dirtyIno[ino] = true
			rep.Repaired++
		}
		allocated[ino] = di
	}

	// A volume must always come back mountable: if the root directory
	// itself is gone, recreate it empty.
	if di, ok := allocated[RootIno]; !ok || di.Mode != ModeDir {
		rep.problemf("root inode missing or not a directory (recreated empty)")
		allocated[RootIno] = &dinode{Mode: ModeDir, Nlink: 1}
		dirtyIno[RootIno] = true
		rep.Repaired++
	}

	// Pass 2: directory scrub and reachability, to a fixpoint. Each
	// round clears entries naming inodes that are free or were zapped
	// in an earlier round, then zaps inodes no surviving directory
	// references (orphans). Zapping a directory can orphan its
	// children, hence the loop; it terminates because each round
	// strictly shrinks the allocated set.
	var links map[uint32]int
	for {
		links = map[uint32]int{}
		for _, ino := range sortedInos(allocated) {
			di := allocated[ino]
			if di.Mode != ModeDir {
				continue
			}
			if err := repairScanDir(ctx, cache, dev, &sb, ino, di, allocated, links, rep); err != nil {
				return nil, err
			}
		}
		zapped := false
		for _, ino := range sortedInos(allocated) {
			if ino == RootIno {
				continue
			}
			if links[ino] == 0 {
				rep.problemf("inode %d: orphaned (zapped)", ino)
				if err := writeDinode(ctx, cache, dev, &sb, ino, &dinode{}); err != nil {
					return nil, err
				}
				delete(allocated, ino)
				delete(dirtyIno, ino)
				rep.Repaired++
				zapped = true
			}
		}
		if !zapped {
			break
		}
	}

	// Link counts from the surviving reference graph.
	for _, ino := range sortedInos(allocated) {
		di := allocated[ino]
		want := links[ino]
		if ino == RootIno {
			want++ // the root is referenced by convention, not a dirent
		}
		if int(di.Nlink) != want {
			rep.problemf("inode %d: link count %d, referenced %d time(s) (fixed)", ino, di.Nlink, want)
			di.Nlink = uint16(want)
			dirtyIno[ino] = true
			rep.Repaired++
		}
		rep.Inodes++
		if di.Mode == ModeDir {
			rep.Dirs++
		} else {
			rep.Files++
		}
	}

	// Write back every repaired inode.
	for _, ino := range sortedInos(allocated) {
		if dirtyIno[ino] {
			if err := writeDinode(ctx, cache, dev, &sb, ino, allocated[ino]); err != nil {
				return nil, err
			}
		}
	}

	// Final reference walk over the survivors (their pointers are
	// sanitized now, so this cannot fail on structure) feeds the
	// wholesale bitmap rebuild.
	refs = map[uint32]uint32{}
	for _, ino := range sortedInos(allocated) {
		if err := collectDinodeRefs(ctx, cache, dev, &sb, ino, allocated[ino], refs); err != nil {
			return nil, err
		}
	}
	rep.UsedBlocks = len(refs)

	// Pass 3: rebuild the bitmap — a bit is set iff the block is
	// metadata (below the data region) or referenced by a survivor.
	bitsPerBlk := int(sb.BlockSize) * 8
	for blk := uint32(0); blk < sb.TotalBlocks; blk++ {
		bmBlk := int64(sb.BitmapStart) + int64(int(blk)/bitsPerBlk)
		b, err := cache.Bread(ctx, dev, bmBlk)
		if err != nil {
			return nil, err
		}
		bit := int(blk) % bitsPerBlk
		marked := b.Data[bit/8]&(1<<uint(bit%8)) != 0
		_, referenced := refs[blk]
		want := referenced || blk < sb.DataStart
		if marked == want {
			cache.Brelse(ctx, b)
			continue
		}
		if want {
			rep.problemf("block %d: referenced by inode %d but free in bitmap (marked)", blk, refs[blk])
			b.Data[bit/8] |= 1 << uint(bit%8)
		} else {
			rep.problemf("block %d: marked in-use but unreferenced (freed)", blk)
			b.Data[bit/8] &^= 1 << uint(bit%8)
		}
		cache.Bdwrite(ctx, b)
		rep.Repaired++
	}

	// Superblock counters from the rebuilt state.
	dataBlocks := sb.TotalBlocks - sb.DataStart
	if wantFree := dataBlocks - uint32(rep.UsedBlocks); sb.FreeBlocks != wantFree {
		rep.problemf("superblock: free-block count %d, bitmap says %d (fixed)", sb.FreeBlocks, wantFree)
		sb.FreeBlocks = wantFree
		sbDirty = true
		rep.Repaired++
	}
	if wantFreeInodes := sb.NInodes - uint32(rep.Inodes) - 1; sb.FreeInodes != wantFreeInodes {
		rep.problemf("superblock: free-inode count %d, table says %d (fixed)", sb.FreeInodes, wantFreeInodes)
		sb.FreeInodes = wantFreeInodes
		sbDirty = true
		rep.Repaired++
	}
	if sbDirty {
		b, err := cache.Bread(ctx, dev, 0)
		if err != nil {
			return nil, err
		}
		sb.encode(b.Data)
		cache.Bdwrite(ctx, b)
	}

	// Push every repair to the platter before anyone remounts.
	if _, err := cache.FlushDev(ctx, dev); err != nil {
		return nil, err
	}
	if err := cache.TakeWriteError(dev); err != nil {
		return nil, err
	}
	ctx.Kern().TraceEmit(trace.KindFSRepair, 0, int64(len(rep.Problems)), int64(rep.Repaired), dev.DevName())
	return rep, nil
}

// repairScanDir scrubs one directory's entries in place: entries that
// name free/out-of-range inodes or carry an empty (mangled) name are
// cleared; valid entries feed the link counts. Idempotent, so the
// reachability fixpoint can re-run it.
func repairScanDir(ctx kernel.Ctx, cache *buf.Cache, dev buf.Device, sb *Superblock,
	dirIno uint32, di *dinode, allocated map[uint32]*dinode, links map[uint32]int, rep *FsckReport) error {

	bsize := int64(sb.BlockSize)
	for off := int64(0); off < di.Size; off += DirentSize {
		lblk := off / bsize
		if lblk >= NDirect {
			break // directories never outgrow direct blocks in this fs
		}
		pblk := di.Direct[lblk]
		if pblk == 0 {
			continue
		}
		b, err := cache.Bread(ctx, dev, int64(pblk))
		if err != nil {
			return err
		}
		de := decodeDirent(b.Data[off%bsize:])
		if de.Ino == 0 {
			cache.Brelse(ctx, b)
			continue
		}
		_, ok := allocated[de.Ino]
		switch {
		case !ok:
			rep.problemf("dir inode %d: entry %q points to unallocated inode %d (cleared)", dirIno, de.Name, de.Ino)
		case len(de.Name) == 0:
			rep.problemf("dir inode %d: entry for inode %d has invalid name (cleared)", dirIno, de.Ino)
		default:
			cache.Brelse(ctx, b)
			links[de.Ino]++
			continue
		}
		encodeDirent(b.Data[off%bsize:], dirent{})
		cache.Bdwrite(ctx, b)
		rep.Repaired++
	}
	return nil
}

// collectDinodeRefs records every block the (sanitized) inode
// references into refs, pointer blocks before their entries — the same
// claim order Fsck uses.
func collectDinodeRefs(ctx kernel.Ctx, cache *buf.Cache, dev buf.Device, sb *Superblock,
	ino uint32, di *dinode, refs map[uint32]uint32) error {

	for _, pblk := range di.Direct {
		if pblk != 0 {
			refs[pblk] = ino
		}
	}
	var walk func(blk uint32, depth int) error
	walk = func(blk uint32, depth int) error {
		if blk == 0 {
			return nil
		}
		refs[blk] = ino
		pb, err := cache.Bread(ctx, dev, int64(blk))
		if err != nil {
			return err
		}
		le := binary.LittleEndian
		ppb := int(sb.BlockSize) / 4
		entries := make([]uint32, 0, 16)
		for i := 0; i < ppb; i++ {
			if p := le.Uint32(pb.Data[i*4:]); p != 0 {
				entries = append(entries, p)
			}
		}
		cache.Brelse(ctx, pb)
		for _, p := range entries {
			if depth > 1 {
				if err := walk(p, depth-1); err != nil {
					return err
				}
			} else {
				refs[p] = ino
			}
		}
		return nil
	}
	if err := walk(di.Indir, 1); err != nil {
		return err
	}
	return walk(di.DIndir, 2)
}

// readDinode fetches one on-disk inode image through the cache.
func readDinode(ctx kernel.Ctx, cache *buf.Cache, dev buf.Device, sb *Superblock, ino uint32) (*dinode, error) {
	inoPerBlk := int(sb.BlockSize) / InodeSize
	blk := int64(sb.ITableStart) + int64(int(ino)/inoPerBlk)
	b, err := cache.Bread(ctx, dev, blk)
	if err != nil {
		return nil, err
	}
	var di dinode
	di.decode(b.Data[(int(ino)%inoPerBlk)*InodeSize:])
	cache.Brelse(ctx, b)
	return &di, nil
}

// writeDinode writes one on-disk inode image (delayed; the repair pass
// flushes everything at the end).
func writeDinode(ctx kernel.Ctx, cache *buf.Cache, dev buf.Device, sb *Superblock, ino uint32, di *dinode) error {
	inoPerBlk := int(sb.BlockSize) / InodeSize
	blk := int64(sb.ITableStart) + int64(int(ino)/inoPerBlk)
	b, err := cache.Bread(ctx, dev, blk)
	if err != nil {
		return err
	}
	di.encode(b.Data[(int(ino)%inoPerBlk)*InodeSize:])
	cache.Bdwrite(ctx, b)
	return nil
}

func sortedInos(m map[uint32]*dinode) []uint32 {
	inos := make([]uint32, 0, len(m))
	for ino := range m {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	return inos
}
