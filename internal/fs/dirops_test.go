package fs

import (
	"testing"

	"kdp/internal/kernel"
)

func TestStat(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/s", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, pattern(12345, 1), 0)
		_ = fl.Close(ctx)
		info, err := f.Stat(ctx, "/s")
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		if info.Size != 12345 || info.IsDir || info.Nlink != 1 {
			t.Fatalf("stat = %+v", info)
		}
		root, err := f.Stat(ctx, "/")
		if err != nil || !root.IsDir || root.Ino != RootIno {
			t.Fatalf("root stat = %+v err=%v", root, err)
		}
		if _, err := f.Stat(ctx, "/missing"); err != kernel.ErrNoEnt {
			t.Fatalf("stat missing: %v", err)
		}
	})
}

func TestReadDir(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		_ = f.Mkdir(ctx, "/sub")
		for _, name := range []string{"/a", "/b", "/sub/c"} {
			fl, _ := f.OpenFile(ctx, name, kernel.OCreat|kernel.ORdWr)
			_, _ = fl.Write(ctx, []byte(name), 0)
			_ = fl.Close(ctx)
		}
		root, err := f.ReadDir(ctx, "/")
		if err != nil {
			t.Fatalf("readdir: %v", err)
		}
		byName := map[string]DirEntry{}
		for _, e := range root {
			byName[e.Name] = e
		}
		if len(root) != 3 {
			t.Fatalf("root entries = %v", root)
		}
		if !byName["sub"].IsDir {
			t.Fatal("sub not a directory")
		}
		if byName["a"].Size != 2 { // "/a"
			t.Fatalf("a size = %d", byName["a"].Size)
		}
		sub, err := f.ReadDir(ctx, "/sub")
		if err != nil || len(sub) != 1 || sub[0].Name != "c" {
			t.Fatalf("sub entries = %v err=%v", sub, err)
		}
		if _, err := f.ReadDir(ctx, "/a"); err != kernel.ErrNotDir {
			t.Fatalf("readdir on file: %v", err)
		}
	})
}

func TestRenameBasic(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/old", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, []byte("payload"), 0)
		_ = fl.Close(ctx)
		if err := f.Rename(ctx, "/old", "/new"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if f.Exists(ctx, "/old") {
			t.Fatal("old name still resolves")
		}
		nf, err := f.OpenFile(ctx, "/new", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open new: %v", err)
		}
		got := make([]byte, 7)
		_, _ = nf.Read(ctx, got, 0)
		if string(got) != "payload" {
			t.Fatalf("renamed contents %q", got)
		}
		_ = nf.Close(ctx)
	})
}

func TestRenameAcrossDirectories(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		_ = f.Mkdir(ctx, "/d1")
		_ = f.Mkdir(ctx, "/d2")
		fl, _ := f.OpenFile(ctx, "/d1/f", kernel.OCreat|kernel.ORdWr)
		_ = fl.Close(ctx)
		if err := f.Rename(ctx, "/d1/f", "/d2/g"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if f.Exists(ctx, "/d1/f") || !f.Exists(ctx, "/d2/g") {
			t.Fatal("cross-directory rename wrong")
		}
	})
}

func TestRenameReplacesTarget(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		free0 := f.Super().FreeBlocks
		for _, spec := range []struct{ name, data string }{{"/src", "fresh"}, {"/dst", "staleDATA-occupying-blocks"}} {
			fl, _ := f.OpenFile(ctx, spec.name, kernel.OCreat|kernel.ORdWr)
			_, _ = fl.Write(ctx, pattern(2*testBlockSize, 1), 0)
			_, _ = fl.Write(ctx, []byte(spec.data), 0)
			_ = fl.Close(ctx)
		}
		if err := f.Rename(ctx, "/src", "/dst"); err != nil {
			t.Fatalf("rename over target: %v", err)
		}
		nf, _ := f.OpenFile(ctx, "/dst", kernel.ORdOnly)
		got := make([]byte, 5)
		_, _ = nf.Read(ctx, got, 0)
		if string(got) != "fresh" {
			t.Fatalf("replacement contents %q", got)
		}
		_ = nf.Close(ctx)
		// The replaced file's blocks must be freed: only one 2-block
		// file remains.
		if used := free0 - f.Super().FreeBlocks; used > 3 {
			t.Fatalf("replaced file leaked blocks: %d used", used)
		}
		if f.Exists(ctx, "/src") {
			t.Fatal("source still present")
		}
	})
}

func TestRenameErrors(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		if err := f.Rename(ctx, "/nope", "/x"); err != kernel.ErrNoEnt {
			t.Fatalf("rename missing: %v", err)
		}
		_ = f.Mkdir(ctx, "/dir")
		fl, _ := f.OpenFile(ctx, "/file", kernel.OCreat|kernel.ORdWr)
		_ = fl.Close(ctx)
		if err := f.Rename(ctx, "/file", "/dir"); err != kernel.ErrIsDir {
			t.Fatalf("rename over directory: %v", err)
		}
		// No-op self rename succeeds.
		if err := f.Rename(ctx, "/file", "/file"); err != nil {
			t.Fatalf("self rename: %v", err)
		}
	})
}

func TestRenameKeepsVolumeConsistent(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		for i := 0; i < 4; i++ {
			fl, _ := f.OpenFile(ctx, "/r", kernel.OCreat|kernel.ORdWr)
			_, _ = fl.Write(ctx, pattern(testBlockSize, byte(i)), 0)
			_ = fl.Close(ctx)
			if err := f.Rename(ctx, "/r", "/r2"); err != nil {
				t.Fatal(err)
			}
			if err := f.Remove(ctx, "/r2"); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.SyncAll(ctx); err != nil {
			t.Fatal(err)
		}
		rep, err := Fsck(ctx, f.Cache(), r.d)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("volume inconsistent after rename churn: %v", rep.Problems)
		}
	})
}
