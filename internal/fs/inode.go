package fs

import (
	"encoding/binary"

	"kdp/internal/buf"
	"kdp/internal/kernel"
)

// Inode is the in-core inode: the on-disk fields plus reference count,
// dirty flag, and a sleep lock serialising modifications across the
// blocking points inside filesystem operations.
type Inode struct {
	fs     *FS
	ino    uint32
	mode   uint16
	nlink  uint16
	size   int64
	direct [NDirect]uint32
	indir  uint32
	dindir uint32

	refs    int
	dirty   bool
	locked  bool
	lockers int

	// Adaptive readahead state (see File.Read). raNext is the byte
	// offset where the last read ended — a read starting there is
	// sequential. raWindow is the current window in blocks (0 after any
	// seek); raAhead is the highest logical block a readahead has been
	// issued for, so overlapping windows never re-issue fetches.
	raNext   int64
	raWindow int
	raAhead  int64
}

// Ino returns the inode number.
func (ip *Inode) Ino() uint32 { return ip.ino }

// Size returns the file size in bytes.
func (ip *Inode) Size() int64 { return ip.size }

// IsDir reports whether the inode is a directory.
func (ip *Inode) IsDir() bool { return ip.mode == ModeDir }

// lock acquires the inode sleep lock (ILOCK).
func (ip *Inode) lock(ctx kernel.Ctx) {
	for ip.locked {
		if !ctx.CanSleep() {
			panic("fs: inode lock contention at interrupt level")
		}
		ip.lockers++
		_ = ctx.Sleep(ip, kernel.PINOD)
		ip.lockers--
	}
	ip.locked = true
}

func (ip *Inode) unlock() {
	if !ip.locked {
		panic("fs: unlock of unlocked inode")
	}
	ip.locked = false
	if ip.lockers > 0 {
		ip.fs.k.Wakeup(ip)
	}
}

// ptrsPerBlock returns how many block pointers fit in one block.
func (f *FS) ptrsPerBlock() int64 { return int64(f.sb.BlockSize) / 4 }

// bmap translates a logical file block to a physical device block.
// With alloc=false it returns 0 for holes (never allocating). With
// alloc=true, missing blocks (and any needed indirect blocks) are
// allocated; zeroFill additionally creates a zero-filled delayed-write
// buffer for a freshly allocated data block, which is what the standard
// write path does for partial blocks. The paper's "special version of
// bmap()" used to map the splice destination is exactly bmap with
// alloc=true, zeroFill=false (§5.2).
func (ip *Inode) bmap(ctx kernel.Ctx, lblk int64, alloc, zeroFill bool) (uint32, error) {
	f := ip.fs
	if lblk < 0 {
		return 0, kernel.ErrInval
	}
	ppb := f.ptrsPerBlock()
	switch {
	case lblk < NDirect:
		pblk := ip.direct[lblk]
		if pblk == 0 && alloc {
			var err error
			pblk, err = f.allocData(ctx, zeroFill)
			if err != nil {
				return 0, err
			}
			ip.direct[lblk] = pblk
			ip.dirty = true
		}
		return pblk, nil

	case lblk < NDirect+ppb:
		idx := lblk - NDirect
		pblk, err := ip.indirectLookup(ctx, &ip.indir, idx, alloc, zeroFill)
		return pblk, err

	case lblk < NDirect+ppb+ppb*ppb:
		idx := lblk - NDirect - ppb
		// First level: which indirect block within the double-indirect.
		l1 := idx / ppb
		l2 := idx % ppb
		// Resolve the level-1 pointer block.
		if ip.dindir == 0 {
			if !alloc {
				return 0, nil
			}
			blk, err := f.allocPtrBlock(ctx)
			if err != nil {
				return 0, err
			}
			ip.dindir = blk
			ip.dirty = true
		}
		l1ptr, err := f.ptrAt(ctx, ip.dindir, l1, alloc)
		if err != nil || l1ptr == 0 {
			return 0, err
		}
		var l1copy = l1ptr
		return ip.indirectLookup(ctx, &l1copy, l2, alloc, zeroFill)

	default:
		return 0, kernel.ErrFileTooBig
	}
}

// indirectLookup resolves index idx within the single-indirect block
// *slot, allocating the pointer block and/or the data block as
// requested. *slot is updated if the pointer block is allocated.
func (ip *Inode) indirectLookup(ctx kernel.Ctx, slot *uint32, idx int64, alloc, zeroFill bool) (uint32, error) {
	f := ip.fs
	if *slot == 0 {
		if !alloc {
			return 0, nil
		}
		blk, err := f.allocPtrBlock(ctx)
		if err != nil {
			return 0, err
		}
		*slot = blk
		ip.dirty = true
	}
	b, err := f.cache.Bread(ctx, f.dev, int64(*slot))
	if err != nil {
		return 0, err
	}
	le := binary.LittleEndian
	pblk := le.Uint32(b.Data[idx*4:])
	if pblk == 0 && alloc {
		pblk, err = f.allocData(ctx, zeroFill)
		if err != nil {
			f.cache.Brelse(ctx, b)
			return 0, err
		}
		le.PutUint32(b.Data[idx*4:], pblk)
		f.cache.Bdwrite(ctx, b)
		return pblk, nil
	}
	f.cache.Brelse(ctx, b)
	return pblk, nil
}

// ptrAt reads (allocating if requested) entry idx of the pointer block
// blk, used for the double-indirect level-1 table.
func (f *FS) ptrAt(ctx kernel.Ctx, blk uint32, idx int64, alloc bool) (uint32, error) {
	b, err := f.cache.Bread(ctx, f.dev, int64(blk))
	if err != nil {
		return 0, err
	}
	le := binary.LittleEndian
	p := le.Uint32(b.Data[idx*4:])
	if p == 0 && alloc {
		p, err = f.allocPtrBlock(ctx)
		if err != nil {
			f.cache.Brelse(ctx, b)
			return 0, err
		}
		le.PutUint32(b.Data[idx*4:], p)
		f.cache.Bdwrite(ctx, b)
		return p, nil
	}
	f.cache.Brelse(ctx, b)
	return p, nil
}

// bmapRange maps logical blocks [start, end] without allocating (holes
// map to 0), reading each pointer block once for the whole range
// instead of once per block. This is the readahead issue path's bulk
// bmap: 4.3BSD's bmap computed the readahead block from the indirect
// block it had already read for the demand block for the same reason —
// mapping a window must not cost a pointer-block lookup per block.
// Double-indirect blocks fall back to the per-block path (readahead
// windows are small; crossing into the double-indirect range mid-window
// is rare).
func (ip *Inode) bmapRange(ctx kernel.Ctx, start, end int64) ([]uint32, error) {
	f := ip.fs
	ppb := f.ptrsPerBlock()
	le := binary.LittleEndian
	out := make([]uint32, 0, end-start+1)
	var held *buf.Buf
	release := func() {
		if held != nil {
			f.cache.Brelse(ctx, held)
			held = nil
		}
	}
	for l := start; l <= end; l++ {
		switch {
		case l < 0:
			release()
			return nil, kernel.ErrInval
		case l < NDirect:
			out = append(out, ip.direct[l])
		case l < NDirect+ppb:
			if ip.indir == 0 {
				out = append(out, 0)
				continue
			}
			if held == nil {
				b, err := f.cache.Bread(ctx, f.dev, int64(ip.indir))
				if err != nil {
					return nil, err
				}
				held = b
			}
			out = append(out, le.Uint32(held.Data[(l-NDirect)*4:]))
		default:
			release()
			pblk, err := ip.bmap(ctx, l, false, false)
			if err != nil {
				return nil, err
			}
			out = append(out, pblk)
		}
	}
	release()
	return out, nil
}

// clearPtr zeroes the inode's pointer to logical block lblk, making it
// a hole again (pointer blocks on the path are left in place; they are
// referenced by the inode and reused by the next extension). Used by
// the write path's mid-call rollback.
func (ip *Inode) clearPtr(ctx kernel.Ctx, lblk int64) error {
	f := ip.fs
	ppb := f.ptrsPerBlock()
	switch {
	case lblk < NDirect:
		ip.direct[lblk] = 0
		ip.dirty = true
		return nil
	case lblk < NDirect+ppb:
		if ip.indir == 0 {
			return nil
		}
		return f.zeroPtrAt(ctx, ip.indir, lblk-NDirect)
	case lblk < NDirect+ppb+ppb*ppb:
		idx := lblk - NDirect - ppb
		if ip.dindir == 0 {
			return nil
		}
		l1, err := f.ptrAt(ctx, ip.dindir, idx/ppb, false)
		if err != nil || l1 == 0 {
			return err
		}
		return f.zeroPtrAt(ctx, l1, idx%ppb)
	}
	return kernel.ErrInval
}

// zeroPtrAt clears entry idx of pointer block blk.
func (f *FS) zeroPtrAt(ctx kernel.Ctx, blk uint32, idx int64) error {
	b, err := f.cache.Bread(ctx, f.dev, int64(blk))
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b.Data[idx*4:], 0)
	f.cache.Bdwrite(ctx, b)
	return nil
}

// allocData allocates a data block. When zeroFill is set the block gets
// a zero-filled delayed-write buffer, as the standard write path does —
// the cost splice's special bmap avoids.
func (f *FS) allocData(ctx kernel.Ctx, zeroFill bool) (uint32, error) {
	blk, err := f.allocBlock(ctx)
	if err != nil {
		return 0, err
	}
	if zeroFill {
		b := f.cache.Getblk(ctx, f.dev, int64(blk))
		for i := range b.Data {
			b.Data[i] = 0
		}
		b.Flags |= 0 // contents now valid; Bdwrite marks BDone
		f.cache.Bdwrite(ctx, b)
	}
	return blk, nil
}

// allocPtrBlock allocates a zeroed indirect-pointer block. Pointer
// blocks must always be zeroed so absent entries read as holes.
func (f *FS) allocPtrBlock(ctx kernel.Ctx) (uint32, error) {
	blk, err := f.allocBlock(ctx)
	if err != nil {
		return 0, err
	}
	b := f.cache.Getblk(ctx, f.dev, int64(blk))
	for i := range b.Data {
		b.Data[i] = 0
	}
	f.cache.Bdwrite(ctx, b)
	return blk, nil
}

// truncate frees every data and indirect block beyond size newSize
// (only newSize==0 is used today, by unlink and O_TRUNC). Ordered
// metadata: the block list is gathered first, then the cleared inode
// is written synchronously, and only then do the blocks return to the
// bitmap — the platter never carries a stale claim on a block another
// file could reallocate, which is what lets the repairing fsck keep
// every fsync'd file byte-exact after a crash.
func (ip *Inode) truncate(ctx kernel.Ctx, newSize int64) error {
	f := ip.fs
	if newSize != 0 {
		return kernel.ErrInval
	}
	blocks, err := ip.collectBlocks(ctx)
	if err != nil {
		return err
	}
	for i := range ip.direct {
		ip.direct[i] = 0
	}
	ip.indir = 0
	ip.dindir = 0
	ip.size = 0
	ip.dirty = true
	// The file's contents are gone; any sequential-access history is
	// meaningless (and raAhead could point past the new EOF).
	ip.raNext = 0
	ip.raWindow = 0
	ip.raAhead = 0
	if err := f.iupdateSync(ctx, ip); err != nil {
		return err
	}
	for _, blk := range blocks {
		if err := f.freeBlock(ctx, blk); err != nil {
			return err
		}
	}
	return nil
}

// collectBlocks gathers every physical block the inode owns — data,
// single- and double-indirect pointer blocks — in deterministic walk
// order.
func (ip *Inode) collectBlocks(ctx kernel.Ctx) ([]uint32, error) {
	f := ip.fs
	var out []uint32
	for _, blk := range ip.direct {
		if blk != 0 {
			out = append(out, blk)
		}
	}
	var err error
	if ip.indir != 0 {
		if out, err = f.collectPtrBlock(ctx, ip.indir, 1, out); err != nil {
			return nil, err
		}
	}
	if ip.dindir != 0 {
		if out, err = f.collectPtrBlock(ctx, ip.dindir, 2, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// collectPtrBlock appends a pointer block and everything below it
// (depth 1 = entries are data blocks; depth 2 = entries are pointer
// blocks) to out.
func (f *FS) collectPtrBlock(ctx kernel.Ctx, blk uint32, depth int, out []uint32) ([]uint32, error) {
	b, err := f.cache.Bread(ctx, f.dev, int64(blk))
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	ppb := f.ptrsPerBlock()
	entries := make([]uint32, 0, 32)
	for i := int64(0); i < ppb; i++ {
		if p := le.Uint32(b.Data[i*4:]); p != 0 {
			entries = append(entries, p)
		}
	}
	f.cache.Brelse(ctx, b)
	for _, p := range entries {
		if depth > 1 {
			if out, err = f.collectPtrBlock(ctx, p, depth-1, out); err != nil {
				return nil, err
			}
		} else {
			out = append(out, p)
		}
	}
	return append(out, blk), nil
}

// PhysicalBlocks returns the complete table of physical block numbers
// backing the first nblocks logical blocks of the file — built, as the
// paper describes, "by successive calls to bmap()" (§5.2). Holes map to
// physical block 0. When alloc is set, missing destination blocks are
// allocated with the special non-zero-filling bmap.
func (ip *Inode) PhysicalBlocks(ctx kernel.Ctx, nblocks int64, alloc bool) ([]uint32, error) {
	table := make([]uint32, nblocks)
	for l := int64(0); l < nblocks; l++ {
		pblk, err := ip.bmap(ctx, l, alloc, false)
		if err != nil {
			return nil, err
		}
		table[l] = pblk
	}
	return table, nil
}
