package fs

import (
	"bytes"
	"testing"

	"kdp/internal/kernel"
)

// recordingPager is a test double for the vm.Pool side of the fs↔vm
// seam: it records PageoutObject calls and can inject failures.
type recordingPager struct {
	calls []uint32
	dirty map[string][]uint32
	err   error
}

func (rp *recordingPager) PageoutObject(ctx kernel.Ctx, dev string, ino uint32) error {
	rp.calls = append(rp.calls, ino)
	return rp.err
}

func (rp *recordingPager) DirtyInos(dev string) []uint32 { return rp.dirty[dev] }

// openF opens path and narrows the kernel.FileOps result to the
// concrete *File, which carries the VM backing methods.
func openF(t *testing.T, ctx kernel.Ctx, f *FS, path string, flags int) *File {
	t.Helper()
	fo, err := f.OpenFile(ctx, path, flags)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return fo.(*File)
}

func TestPagerHookAccessors(t *testing.T) {
	r := newRig(t, 256)
	r.run(t, func(p *kernel.Proc, f *FS) {
		if f.Pager() != nil {
			t.Error("fresh mount has a pager")
		}
		rp := &recordingPager{}
		f.SetPager(rp)
		if f.Pager() != Pager(rp) {
			t.Error("SetPager not reflected by Pager()")
		}
	})
}

func TestSyncCallsPageoutObject(t *testing.T) {
	r := newRig(t, 256)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		rp := &recordingPager{dirty: map[string][]uint32{}}
		f.SetPager(rp)
		fl := openF(t, ctx, f, "/p.dat", kernel.OCreat|kernel.ORdWr)
		if _, err := fl.Write(ctx, pattern(100, 1), 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := fl.Sync(ctx); err != nil {
			t.Fatalf("sync: %v", err)
		}
		want := fl.Inode().Ino()
		if len(rp.calls) != 1 || rp.calls[0] != want {
			t.Errorf("fsync pageout calls = %v, want [%d]", rp.calls, want)
		}
		// A pager failure fails the fsync before any metadata flush.
		rp.err = kernel.ErrIO
		if err := fl.Sync(ctx); err != kernel.ErrIO {
			t.Errorf("sync with failing pager = %v, want ErrIO", err)
		}
		rp.err = nil
		_ = fl.Close(ctx)

		// SyncAll pages out every inode the pool reports dirty.
		rp.calls = nil
		rp.dirty[r.d.DevName()] = []uint32{want}
		if err := f.SyncAll(ctx); err != nil {
			t.Fatalf("syncall: %v", err)
		}
		if len(rp.calls) != 1 || rp.calls[0] != want {
			t.Errorf("SyncAll pageout calls = %v, want [%d]", rp.calls, want)
		}
	})
}

func TestMapRefKeepsInodeAcrossClose(t *testing.T) {
	r := newRig(t, 256)
	data := pattern(testBlockSize+50, 7)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl := openF(t, ctx, f, "/m.dat", kernel.OCreat|kernel.ORdWr)
		if _, err := fl.Write(ctx, data, 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		dev, ino := fl.MapKey()
		if dev != r.d.DevName() || ino == 0 {
			t.Errorf("MapKey = %q/%d", dev, ino)
		}
		if sz, err := fl.MapSize(ctx); err != nil || sz != int64(len(data)) {
			t.Errorf("MapSize = %d, %v", sz, err)
		}
		fl.MapRef(ctx)
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		// The mapping reference keeps the backing usable after close.
		got := make([]byte, testBlockSize)
		if blk, err := fl.PageIn(ctx, 0, got, false); err != nil || blk == 0 {
			t.Fatalf("pagein after close: blk=%d err=%v", blk, err)
		}
		if !bytes.Equal(got, data[:testBlockSize]) {
			t.Error("pagein content wrong")
		}
		if err := fl.MapUnref(ctx); err != nil {
			t.Fatalf("unref: %v", err)
		}
	})
}

func TestPageInHoleAndAlloc(t *testing.T) {
	r := newRig(t, 256)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl := openF(t, ctx, f, "/h.dat", kernel.OCreat|kernel.ORdWr)
		// Block 3 written, blocks 0–2 are a hole.
		if _, err := fl.Write(ctx, pattern(100, 9), 3*testBlockSize); err != nil {
			t.Fatalf("write: %v", err)
		}
		page := pattern(testBlockSize, 13) // stale contents must be overwritten
		blk, err := fl.PageIn(ctx, 1, page, false)
		if err != nil || blk != 0 {
			t.Fatalf("pagein hole: blk=%d err=%v", blk, err)
		}
		for i, b := range page {
			if b != 0 {
				t.Fatalf("hole page[%d] = %d, want 0", i, b)
			}
		}
		// alloc=true gives the hole a zero-filled block (write-fault path).
		blk, err = fl.PageIn(ctx, 1, page, true)
		if err != nil || blk == 0 {
			t.Fatalf("pagein alloc: blk=%d err=%v", blk, err)
		}
		// A second pagein sees the same block, no new allocation.
		blk2, err := fl.PageIn(ctx, 1, page, false)
		if err != nil || blk2 != blk {
			t.Fatalf("pagein again: blk=%d want %d err=%v", blk2, blk, err)
		}
		_ = fl.Close(ctx)
	})
}

func TestPageOutFlushRoundTrip(t *testing.T) {
	r := newRig(t, 256)
	data := pattern(testBlockSize, 21)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl := openF(t, ctx, f, "/w.dat", kernel.OCreat|kernel.ORdWr)
		fl.MapSetSize(ctx, testBlockSize)
		if sz, _ := fl.MapSize(ctx); sz != testBlockSize {
			t.Fatalf("MapSetSize: size = %d", sz)
		}
		// Shrinking through MapSetSize is ignored (extend-only).
		fl.MapSetSize(ctx, 10)
		if sz, _ := fl.MapSize(ctx); sz != testBlockSize {
			t.Fatalf("MapSetSize shrank to %d", sz)
		}
		blk, err := fl.PageIn(ctx, 0, make([]byte, testBlockSize), true)
		if err != nil || blk == 0 {
			t.Fatalf("pagein alloc: blk=%d err=%v", blk, err)
		}
		if err := fl.PageOut(ctx, blk, data); err != nil {
			t.Fatalf("pageout: %v", err)
		}
		if err := fl.PageFlush(ctx); err != nil {
			t.Fatalf("pageflush: %v", err)
		}
		got := make([]byte, len(data))
		if n, err := fl.Read(ctx, got, 0); err != nil || n != len(data) {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Error("paged-out data not visible to read()")
		}
		_ = fl.Close(ctx)

		// PageFlush durability: the data survives a crash, like fsync.
		r.d.Crash()
		r.c.Crash(r.d)
		fl2 := openF(t, ctx, f, "/w.dat", kernel.ORdOnly)
		got = make([]byte, len(data))
		if n, err := fl2.Read(ctx, got, 0); err != nil || n != len(data) {
			t.Fatalf("read after crash: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Error("page-flushed data lost in crash")
		}
		_ = fl2.Close(ctx)
	})
}
