package fs

import (
	"strings"
	"testing"

	"kdp/internal/kernel"
)

// fsckAfter runs ops on a fresh volume, syncs, then fscks it.
func fsckAfter(t *testing.T, corrupt func(r *rig), ops func(p *kernel.Proc, f *FS)) *FsckReport {
	t.Helper()
	r := newRig(t, 512)
	var rep *FsckReport
	r.run(t, func(p *kernel.Proc, f *FS) {
		ops(p, f)
		if err := f.SyncAll(p.Ctx()); err != nil {
			t.Fatal(err)
		}
		if err := f.Cache().InvalidateDev(p.Ctx(), r.d); err != nil {
			t.Fatal(err)
		}
		if corrupt != nil {
			corrupt(r)
			if err := f.Cache().InvalidateDev(p.Ctx(), r.d); err != nil {
				t.Fatal(err)
			}
		}
		var err error
		rep, err = Fsck(p.Ctx(), f.Cache(), r.d)
		if err != nil {
			t.Fatalf("fsck: %v", err)
		}
	})
	return rep
}

func TestFsckCleanVolume(t *testing.T) {
	rep := fsckAfter(t, nil, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		if err := f.Mkdir(ctx, "/dir"); err != nil {
			t.Fatal(err)
		}
		for _, path := range []string{"/a", "/dir/b"} {
			fl, err := f.OpenFile(ctx, path, kernel.OCreat|kernel.ORdWr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fl.Write(ctx, pattern(3*testBlockSize, 1), 0); err != nil {
				t.Fatal(err)
			}
			_ = fl.Close(ctx)
		}
	})
	if !rep.Clean() {
		t.Fatalf("clean volume reported problems: %v", rep.Problems)
	}
	if rep.Files != 2 || rep.Dirs != 2 { // root + /dir
		t.Fatalf("census wrong: %d files, %d dirs", rep.Files, rep.Dirs)
	}
	if rep.UsedBlocks < 7 { // 3 data blocks x2 files + dir block
		t.Fatalf("used blocks = %d", rep.UsedBlocks)
	}
}

func TestFsckCleanAfterChurn(t *testing.T) {
	rep := fsckAfter(t, nil, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		for i := 0; i < 3; i++ {
			fl, _ := f.OpenFile(ctx, "/churn", kernel.OCreat|kernel.ORdWr)
			_, _ = fl.Write(ctx, pattern(20*testBlockSize, byte(i)), 0)
			_ = fl.Close(ctx)
			if err := f.Remove(ctx, "/churn"); err != nil {
				t.Fatal(err)
			}
		}
		fl, _ := f.OpenFile(ctx, "/kept", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, pattern(testBlockSize/2, 9), 0)
		_ = fl.Close(ctx)
	})
	if !rep.Clean() {
		t.Fatalf("churned volume inconsistent: %v", rep.Problems)
	}
}

func TestFsckLargeFileIndirect(t *testing.T) {
	rep := fsckAfter(t, nil, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/big", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, pattern(30*testBlockSize, 2), 0) // past direct blocks
		_ = fl.Close(ctx)
	})
	if !rep.Clean() {
		t.Fatalf("indirect file volume inconsistent: %v", rep.Problems)
	}
	if rep.UsedBlocks < 31 { // 30 data + 1 indirect
		t.Fatalf("used blocks = %d, want >= 31", rep.UsedBlocks)
	}
}

// corruptBitmapBit flips the bitmap bit for a data block directly on
// the media.
func corruptBitmapBit(r *rig, blk uint32, set bool) {
	raw := make([]byte, testBlockSize)
	bitsPerBlk := testBlockSize * 8
	bmBlk := int64(1) + int64(int(blk)/bitsPerBlk) // BitmapStart == 1
	r.d.ReadRaw(bmBlk, raw)
	bit := int(blk) % bitsPerBlk
	if set {
		raw[bit/8] |= 1 << uint(bit%8)
	} else {
		raw[bit/8] &^= 1 << uint(bit%8)
	}
	r.d.WriteRaw(bmBlk, raw)
}

func TestFsckDetectsLeakedBlock(t *testing.T) {
	var leaked uint32
	rep := fsckAfter(t, func(r *rig) {
		corruptBitmapBit(r, leaked, true)
	}, func(p *kernel.Proc, f *FS) {
		leaked = f.Super().DataStart + 40 // unreferenced data block
	})
	if rep.Clean() {
		t.Fatal("leaked block not detected")
	}
	found := false
	for _, pr := range rep.Problems {
		if strings.Contains(pr, "leaked") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no leak problem in %v", rep.Problems)
	}
}

func TestFsckDetectsFreeReferencedBlock(t *testing.T) {
	var victim uint32
	rep := fsckAfter(t, func(r *rig) {
		corruptBitmapBit(r, victim, false)
	}, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/v", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, pattern(testBlockSize, 3), 0)
		file := fl.(*File)
		table, _ := file.SpliceMapRead(ctx, 1)
		victim = table[0]
		_ = fl.Close(ctx)
	})
	if rep.Clean() {
		t.Fatal("referenced-but-free block not detected")
	}
}

func TestFsckDetectsCrossLinkedBlock(t *testing.T) {
	// Point two inodes' direct[0] at the same physical block by
	// editing the inode table on the media.
	rep := fsckAfter(t, func(r *rig) {
		raw := make([]byte, testBlockSize)
		// Inode table starts right after the 1-block bitmap: block 2.
		r.d.ReadRaw(2, raw)
		// Inodes 2 and 3 (created below as /x and /y): copy x's
		// direct[0] into y's.
		var x, y dinode
		x.decode(raw[2*InodeSize:])
		y.decode(raw[3*InodeSize:])
		y.Direct[0] = x.Direct[0]
		y.encode(raw[3*InodeSize:])
		r.d.WriteRaw(2, raw)
	}, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		for _, path := range []string{"/x", "/y"} {
			fl, _ := f.OpenFile(ctx, path, kernel.OCreat|kernel.ORdWr)
			_, _ = fl.Write(ctx, pattern(testBlockSize, 4), 0)
			_ = fl.Close(ctx)
		}
	})
	if rep.Clean() {
		t.Fatal("cross-linked block not detected")
	}
	found := false
	for _, pr := range rep.Problems {
		if strings.Contains(pr, "already referenced") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cross-link problem in %v", rep.Problems)
	}
}

func TestFsckDetectsDanglingDirent(t *testing.T) {
	rep := fsckAfter(t, func(r *rig) {
		// Zero the inode that /dangling points to, leaving the dirent.
		raw := make([]byte, testBlockSize)
		r.d.ReadRaw(2, raw)
		for i := 0; i < InodeSize; i++ {
			raw[2*InodeSize+i] = 0 // inode 2 = first created file
		}
		r.d.WriteRaw(2, raw)
	}, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/dangling", kernel.OCreat|kernel.ORdWr)
		_ = fl.Close(ctx)
	})
	if rep.Clean() {
		t.Fatal("dangling directory entry not detected")
	}
}

func TestFsckDetectsBadLinkCount(t *testing.T) {
	rep := fsckAfter(t, func(r *rig) {
		raw := make([]byte, testBlockSize)
		r.d.ReadRaw(2, raw)
		var di dinode
		di.decode(raw[2*InodeSize:])
		di.Nlink = 7
		di.encode(raw[2*InodeSize:])
		r.d.WriteRaw(2, raw)
	}, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/lc", kernel.OCreat|kernel.ORdWr)
		_ = fl.Close(ctx)
	})
	if rep.Clean() {
		t.Fatal("bad link count not detected")
	}
}

func TestFsckDetectsBadSuperblockCounts(t *testing.T) {
	rep := fsckAfter(t, func(r *rig) {
		raw := make([]byte, testBlockSize)
		r.d.ReadRaw(0, raw)
		var sb Superblock
		if err := sb.decode(raw); err != nil {
			panic(err)
		}
		sb.FreeBlocks += 13
		sb.encode(raw)
		r.d.WriteRaw(0, raw)
	}, func(p *kernel.Proc, f *FS) {})
	if rep.Clean() {
		t.Fatal("bad superblock free count not detected")
	}
}
