package fs

import (
	"bytes"
	"testing"
	"testing/quick"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/kernel"
	"kdp/internal/sim"
)

const testBlockSize = 8192

type rig struct {
	k   *kernel.Kernel
	c   *buf.Cache
	d   *disk.Disk
	fsy *FS
}

// newRig formats and mounts a filesystem on a RAM disk.
func newRig(t *testing.T, blocks int64) *rig {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 1200 * sim.Second
	k := kernel.New(cfg)
	c := buf.NewCache(k, 64, testBlockSize)
	d := disk.New(k, disk.RAMDisk(blocks, testBlockSize))
	d.SetCache(c)
	if _, err := Mkfs(d, 128); err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	r := &rig{k: k, c: c, d: d}
	return r
}

// run mounts (once) and executes fn in a process.
func (r *rig) run(t *testing.T, fn func(p *kernel.Proc, f *FS)) {
	t.Helper()
	r.k.Spawn("test", func(p *kernel.Proc) {
		if r.fsy == nil {
			f, err := Mount(p.Ctx(), r.c, r.d)
			if err != nil {
				t.Errorf("mount: %v", err)
				return
			}
			r.fsy = f
		}
		fn(p, r.fsy)
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*7 + seed
	}
	return p
}

func TestMkfsAndMount(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		sb := f.Super()
		if sb.Magic != Magic {
			t.Errorf("magic = %#x", sb.Magic)
		}
		if sb.TotalBlocks != 512 {
			t.Errorf("total blocks = %d", sb.TotalBlocks)
		}
		if sb.DataStart == 0 || sb.FreeBlocks == 0 {
			t.Errorf("bad layout: %+v", sb)
		}
		if !f.Exists(p.Ctx(), "/") {
			t.Error("root missing")
		}
	})
}

func TestMountRejectsUnformatted(t *testing.T) {
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 10 * sim.Second
	k := kernel.New(cfg)
	c := buf.NewCache(k, 16, testBlockSize)
	d := disk.New(k, disk.RAMDisk(64, testBlockSize))
	d.SetCache(c)
	k.Spawn("test", func(p *kernel.Proc) {
		if _, err := Mount(p.Ctx(), c, d); err == nil {
			t.Error("mount of unformatted device succeeded")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, 512)
	data := pattern(3*testBlockSize+100, 1) // spans blocks + partial tail
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, err := f.OpenFile(ctx, "/a.dat", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		n, err := fl.Write(ctx, data, 0)
		if err != nil || n != len(data) {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
		got := make([]byte, len(data))
		n, err = fl.Read(ctx, got, 0)
		if err != nil || n != len(data) {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("read data differs from written data")
		}
		if sz, _ := fl.Size(ctx); sz != int64(len(data)) {
			t.Fatalf("size = %d, want %d", sz, len(data))
		}
		_ = fl.Close(ctx)
	})
}

func TestReadAtOffsetsAndEOF(t *testing.T) {
	r := newRig(t, 512)
	data := pattern(2*testBlockSize, 3)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/b.dat", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, data, 0)

		// Unaligned read crossing a block boundary.
		got := make([]byte, 1000)
		n, err := fl.Read(ctx, got, testBlockSize-500)
		if err != nil || n != 1000 {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, data[testBlockSize-500:testBlockSize+500]) {
			t.Fatal("cross-block read wrong")
		}
		// Read at EOF.
		n, err = fl.Read(ctx, got, int64(len(data)))
		if n != 0 || err != nil {
			t.Fatalf("read at EOF: n=%d err=%v", n, err)
		}
		// Read straddling EOF is truncated.
		n, err = fl.Read(ctx, got, int64(len(data))-10)
		if n != 10 || err != nil {
			t.Fatalf("read near EOF: n=%d err=%v", n, err)
		}
		_ = fl.Close(ctx)
	})
}

func TestOverwriteInPlace(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/c.dat", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, pattern(testBlockSize, 0), 0)
		// Overwrite the middle.
		patch := []byte("HELLO")
		if _, err := fl.Write(ctx, patch, 100); err != nil {
			t.Fatalf("patch: %v", err)
		}
		got := make([]byte, testBlockSize)
		_, _ = fl.Read(ctx, got, 0)
		if !bytes.Equal(got[100:105], patch) {
			t.Fatal("patch not applied")
		}
		want := pattern(testBlockSize, 0)
		if !bytes.Equal(got[:100], want[:100]) || !bytes.Equal(got[105:], want[105:]) {
			t.Fatal("patch damaged surrounding bytes")
		}
		_ = fl.Close(ctx)
	})
}

func TestHolesReadAsZeros(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/sparse", kernel.OCreat|kernel.ORdWr)
		// Write one byte far into the file: everything before is a hole.
		if _, err := fl.Write(ctx, []byte{0xFF}, 5*testBlockSize); err != nil {
			t.Fatalf("write: %v", err)
		}
		got := make([]byte, testBlockSize)
		n, err := fl.Read(ctx, got, 2*testBlockSize)
		if err != nil || n != testBlockSize {
			t.Fatalf("read hole: n=%d err=%v", n, err)
		}
		for i, b := range got {
			if b != 0 {
				t.Fatalf("hole byte %d = %d, want 0", i, b)
			}
		}
		_ = fl.Close(ctx)
	})
}

func TestLargeFileIndirectBlocks(t *testing.T) {
	// A file bigger than the direct pointers can hold (12 * 8KB = 96KB)
	// exercises the single-indirect path.
	r := newRig(t, 1024)
	const size = 40 * testBlockSize // 320KB
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/big", kernel.OCreat|kernel.ORdWr)
		chunk := pattern(testBlockSize, 9)
		for i := 0; i < 40; i++ {
			chunk[0] = byte(i)
			if _, err := fl.Write(ctx, chunk, int64(i)*testBlockSize); err != nil {
				t.Fatalf("write block %d: %v", i, err)
			}
		}
		got := make([]byte, testBlockSize)
		for _, i := range []int{0, 11, 12, 13, 39} {
			if _, err := fl.Read(ctx, got, int64(i)*testBlockSize); err != nil {
				t.Fatalf("read block %d: %v", i, err)
			}
			if got[0] != byte(i) {
				t.Fatalf("block %d marker = %d", i, got[0])
			}
		}
		if sz, _ := fl.Size(ctx); sz != size {
			t.Fatalf("size = %d, want %d", sz, size)
		}
		_ = fl.Close(ctx)
	})
}

func TestDoubleIndirectBlocks(t *testing.T) {
	// Beyond 12 + 2048 blocks requires the double-indirect path. Write
	// sparsely to keep the test fast: one block below, one above the
	// boundary.
	r := newRig(t, 2048)
	ppb := int64(testBlockSize / 4)
	boundary := int64(NDirect) + ppb
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/huge", kernel.OCreat|kernel.ORdWr)
		mark := func(lblk int64, v byte) {
			b := make([]byte, 16)
			b[0] = v
			if _, err := fl.Write(ctx, b, lblk*testBlockSize); err != nil {
				t.Fatalf("write lblk %d: %v", lblk, err)
			}
		}
		mark(boundary-1, 0xA1)
		mark(boundary, 0xB2)
		mark(boundary+ppb, 0xC3) // second level-1 entry

		got := make([]byte, 16)
		check := func(lblk int64, v byte) {
			if _, err := fl.Read(ctx, got, lblk*testBlockSize); err != nil {
				t.Fatalf("read lblk %d: %v", lblk, err)
			}
			if got[0] != v {
				t.Fatalf("lblk %d = %#x, want %#x", lblk, got[0], v)
			}
		}
		check(boundary-1, 0xA1)
		check(boundary, 0xB2)
		check(boundary+ppb, 0xC3)
		_ = fl.Close(ctx)
	})
}

func TestOTruncFreesBlocks(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/t.dat", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, pattern(20*testBlockSize, 2), 0)
		_ = fl.Close(ctx)
		freeBefore := f.Super().FreeBlocks

		fl2, err := f.OpenFile(ctx, "/t.dat", kernel.ORdWr|kernel.OTrunc)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if sz, _ := fl2.Size(ctx); sz != 0 {
			t.Fatalf("size after O_TRUNC = %d", sz)
		}
		if got := f.Super().FreeBlocks; got <= freeBefore {
			t.Fatalf("truncate freed nothing: %d -> %d", freeBefore, got)
		}
		_ = fl2.Close(ctx)
	})
}

func TestUnlinkFreesSpace(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		free0 := f.Super().FreeBlocks
		fl, _ := f.OpenFile(ctx, "/dead", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, pattern(10*testBlockSize, 4), 0)
		_ = fl.Close(ctx)
		if err := f.Remove(ctx, "/dead"); err != nil {
			t.Fatalf("remove: %v", err)
		}
		if f.Exists(ctx, "/dead") {
			t.Fatal("file still resolvable after unlink")
		}
		// All data blocks back (directory may hold one block).
		if got := f.Super().FreeBlocks; got+1 < free0 {
			t.Fatalf("blocks leaked: %d -> %d", free0, got)
		}
		if _, err := f.OpenFile(ctx, "/dead", kernel.ORdOnly); err != kernel.ErrNoEnt {
			t.Fatalf("open removed file: %v, want ErrNoEnt", err)
		}
	})
}

func TestDirectories(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		if err := f.Mkdir(ctx, "/sub"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := f.Mkdir(ctx, "/sub/deep"); err != nil {
			t.Fatalf("nested mkdir: %v", err)
		}
		if err := f.Mkdir(ctx, "/sub"); err != kernel.ErrExist {
			t.Fatalf("duplicate mkdir: %v, want ErrExist", err)
		}
		fl, err := f.OpenFile(ctx, "/sub/deep/file", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("create nested: %v", err)
		}
		_, _ = fl.Write(ctx, []byte("nested"), 0)
		_ = fl.Close(ctx)
		if !f.Exists(ctx, "/sub/deep/file") {
			t.Fatal("nested file missing")
		}
		// Opening a directory for write must fail.
		if _, err := f.OpenFile(ctx, "/sub", kernel.ORdWr); err != kernel.ErrIsDir {
			t.Fatalf("open dir rw: %v, want ErrIsDir", err)
		}
		// Path through a file must fail.
		if _, err := f.OpenFile(ctx, "/sub/deep/file/x", kernel.ORdOnly); err != kernel.ErrNotDir {
			t.Fatalf("traverse file: %v, want ErrNotDir", err)
		}
	})
}

func TestCreateExclusiveSemantics(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, err := f.OpenFile(ctx, "/x", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		_, _ = fl.Write(ctx, []byte("keep"), 0)
		_ = fl.Close(ctx)
		// Re-open with O_CREAT on an existing file opens it.
		fl2, err := f.OpenFile(ctx, "/x", kernel.OCreat|kernel.ORdOnly)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got := make([]byte, 4)
		_, _ = fl2.Read(ctx, got, 0)
		if string(got) != "keep" {
			t.Fatal("O_CREAT clobbered an existing file")
		}
		_ = fl2.Close(ctx)
	})
}

func TestSyncPersistsAcrossRemount(t *testing.T) {
	r := newRig(t, 512)
	data := pattern(5*testBlockSize, 8)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/persist", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, data, 0)
		if err := fl.Sync(ctx); err != nil {
			t.Fatalf("sync: %v", err)
		}
		_ = fl.Close(ctx)
		if err := f.SyncAll(ctx); err != nil {
			t.Fatalf("syncall: %v", err)
		}
	})
	// Fresh mount on the same media, with an invalidated cache.
	r.fsy = nil
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		if err := f.Cache().InvalidateDev(ctx, r.d); err != nil {
			t.Fatalf("invalidate: %v", err)
		}
		fl, err := f.OpenFile(ctx, "/persist", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open after remount: %v", err)
		}
		got := make([]byte, len(data))
		n, err := fl.Read(ctx, got, 0)
		if err != nil || n != len(data) {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data lost across remount")
		}
		_ = fl.Close(ctx)
	})
}

func TestPhysicalBlocksContiguousAllocation(t *testing.T) {
	// Sequential writes from a fresh filesystem should allocate
	// (mostly) contiguous physical blocks — the disk model rewards
	// this, and the experiments depend on it.
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/seq", kernel.OCreat|kernel.ORdWr)
		_, _ = fl.Write(ctx, pattern(16*testBlockSize, 5), 0)
		file := fl.(*File)
		table, err := file.SpliceMapRead(ctx, 16)
		if err != nil {
			t.Fatalf("map: %v", err)
		}
		breaks := 0
		for i := 1; i < len(table); i++ {
			if table[i] != table[i-1]+1 {
				breaks++
			}
		}
		if breaks > 2 {
			t.Fatalf("allocation too fragmented: %v", table)
		}
		_ = fl.Close(ctx)
	})
}

func TestSpliceMapWriteAllocatesWithoutZeroFillIO(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/dst", kernel.OCreat|kernel.ORdWr)
		file := fl.(*File)
		table, fresh, err := file.SpliceMapWrite(ctx, 32)
		if err != nil {
			t.Fatalf("map write: %v", err)
		}
		// Every block of a brand-new file is a fresh allocation.
		for i, fr := range fresh {
			if !fr {
				t.Errorf("block %d of a new file not reported fresh", i)
			}
		}
		// The special bmap must not create (zero-filled) cache buffers
		// for any of the freshly allocated data blocks.
		for i, pblk := range table {
			if pblk == 0 {
				t.Fatalf("block %d not allocated", i)
			}
			if b := f.Cache().Peek(f.Dev(), int64(pblk)); b != nil {
				t.Fatalf("data block %d (phys %d) got a cache buffer; zero-fill not skipped", i, pblk)
			}
		}
		_ = fl.Close(ctx)
	})
}

func TestDirentEncodeDecodeProperty(t *testing.T) {
	f := func(ino uint32, raw []byte) bool {
		name := make([]byte, 0, MaxNameLen)
		for _, b := range raw {
			if len(name) >= MaxNameLen {
				break
			}
			if b != 0 && b != '/' {
				name = append(name, b)
			}
		}
		de := dirent{Ino: ino, Name: string(name)}
		var buf [DirentSize]byte
		encodeDirent(buf[:], de)
		got := decodeDirent(buf[:])
		return got.Ino == de.Ino && got.Name == de.Name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSuperblockEncodeDecodeProperty(t *testing.T) {
	f := func(bs, tb, ni, fb, fi uint32) bool {
		in := Superblock{
			Magic: Magic, BlockSize: bs, TotalBlocks: tb, NInodes: ni,
			BitmapStart: 1, BitmapLen: 2, ITableStart: 3, ITableLen: 4,
			DataStart: 7, FreeBlocks: fb, FreeInodes: fi,
		}
		blk := make([]byte, 64)
		in.encode(blk)
		var out Superblock
		if err := out.decode(blk); err != nil {
			return false
		}
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDinodeEncodeDecodeProperty(t *testing.T) {
	f := func(mode uint16, nlink uint16, size int64, d0, d11, ind, dind uint32) bool {
		if size < 0 {
			size = -size
		}
		in := dinode{Mode: mode, Nlink: nlink, Size: size, Indir: ind, DIndir: dind}
		in.Direct[0] = d0
		in.Direct[11] = d11
		blk := make([]byte, InodeSize)
		in.encode(blk)
		var out dinode
		out.decode(blk)
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfSpace(t *testing.T) {
	r := newRig(t, 32) // tiny volume
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		fl, _ := f.OpenFile(ctx, "/fill", kernel.OCreat|kernel.ORdWr)
		chunk := pattern(testBlockSize, 1)
		var werr error
		for i := 0; i < 64 && werr == nil; i++ {
			_, werr = fl.Write(ctx, chunk, int64(i)*testBlockSize)
		}
		if werr != kernel.ErrNoSpace {
			t.Fatalf("filling a tiny volume: err=%v, want ErrNoSpace", werr)
		}
		_ = fl.Close(ctx)
	})
}

func TestManyFilesInDirectory(t *testing.T) {
	r := newRig(t, 1024)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		names := []string{}
		// The rig formats 128 inodes; stay under that.
		for i := 0; i < 100; i++ {
			name := "/f" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			names = append(names, name)
			fl, err := f.OpenFile(ctx, name, kernel.OCreat|kernel.ORdWr)
			if err != nil {
				t.Fatalf("create %s (#%d): %v", name, i, err)
			}
			_, _ = fl.Write(ctx, []byte(name), 0)
			_ = fl.Close(ctx)
		}
		for _, name := range names {
			fl, err := f.OpenFile(ctx, name, kernel.ORdOnly)
			if err != nil {
				t.Fatalf("reopen %s: %v", name, err)
			}
			got := make([]byte, len(name))
			_, _ = fl.Read(ctx, got, 0)
			if string(got) != name {
				t.Fatalf("%s contains %q", name, got)
			}
			_ = fl.Close(ctx)
		}
	})
}

func TestDirEntrySlotReuse(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		for i := 0; i < 3; i++ {
			fl, err := f.OpenFile(ctx, "/cycle", kernel.OCreat|kernel.ORdWr)
			if err != nil {
				t.Fatalf("create round %d: %v", i, err)
			}
			_ = fl.Close(ctx)
			if err := f.Remove(ctx, "/cycle"); err != nil {
				t.Fatalf("remove round %d: %v", i, err)
			}
		}
		// Root directory should not have grown past one block.
		root, err := f.namei(ctx, "/")
		if err != nil {
			t.Fatal(err)
		}
		if root.size > testBlockSize {
			t.Fatalf("root dir grew to %d bytes; slots not reused", root.size)
		}
		_ = f.iput(ctx, root)
	})
}
