package fs

import (
	"kdp/internal/buf"
	"kdp/internal/kernel"
)

// File is an open regular file (or directory opened read-only). It
// implements kernel.FileOps and the splice source/sink accessors.
type File struct {
	fs     *FS
	ip     *Inode
	closed bool
}

// FS returns the filesystem the file lives on.
func (fl *File) FS() *FS { return fl.fs }

// Inode returns the file's in-core inode.
func (fl *File) Inode() *Inode { return fl.ip }

// Dev returns the block device backing the file.
func (fl *File) Dev() buf.Device { return fl.fs.dev }

// BufCache returns the buffer cache the file's I/O goes through.
func (fl *File) BufCache() *buf.Cache { return fl.fs.cache }

// Read implements kernel.FileOps: it copies up to len(p) bytes starting
// at off out of the buffer cache, issuing device reads on misses with
// adaptive readahead: a read continuing exactly where the previous one
// ended is sequential and doubles the file's readahead window (up to
// the filesystem's SetReadahead cap, one block by default, as in
// 4.3BSD); any seek collapses the window to zero so random access
// never speculates. Window blocks are fetched asynchronously through
// the cache's budgeted StartReadahead, overlapping disk latency with
// the copy loop. Holes read as zeros.
func (fl *File) Read(ctx kernel.Ctx, p []byte, off int64) (int, error) {
	if fl.closed {
		return 0, kernel.ErrBadFD
	}
	ip := fl.ip
	ip.lock(ctx)
	defer ip.unlock()

	if off >= ip.size {
		return 0, nil
	}
	if max := ip.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	if raMax := fl.fs.raMax; raMax > 0 && off == ip.raNext {
		// Sequential continuation: grow the window exponentially.
		if ip.raWindow == 0 {
			ip.raWindow = 1
		} else if ip.raWindow < raMax {
			ip.raWindow *= 2
			if ip.raWindow > raMax {
				ip.raWindow = raMax
			}
		}
	} else {
		// Seek (or readahead disabled): collapse. raAhead is reset so a
		// scan resuming here later starts a fresh window.
		ip.raWindow = 0
		ip.raAhead = 0
	}
	bsize := int64(fl.fs.BlockSize())
	done := 0
	defer func() { ip.raNext = off + int64(done) }()
	for done < len(p) {
		lblk := (off + int64(done)) / bsize
		boff := (off + int64(done)) % bsize
		n := int(bsize - boff)
		if n > len(p)-done {
			n = len(p) - done
		}
		pblk, err := ip.bmap(ctx, lblk, false, false)
		if err != nil {
			return done, err
		}
		if pblk == 0 {
			// Hole: zero fill.
			for i := 0; i < n; i++ {
				p[done+i] = 0
			}
			done += n
			continue
		}
		fl.readahead(ctx, lblk)
		b, err := fl.fs.cache.Bread(ctx, fl.fs.dev, int64(pblk))
		if err != nil {
			return done, err
		}
		copy(p[done:done+n], b.Data[boff:])
		fl.fs.cache.Brelse(ctx, b)
		done += n
	}
	return done, nil
}

// readahead extends the file's asynchronous readahead out to the edge
// of the current window, (lblk, lblk+raWindow], clamped at EOF. The
// window is refilled in batches: nothing happens while raAhead still
// covers blocks ahead of the scan, and when the scan catches up the
// whole window is mapped with one bmapRange (one pointer-block read
// per window, not per block) and issued back to back. Holes are
// skipped, and issue stops as soon as the cache reports its readahead
// budget exhausted — the window then catches up on a later call.
func (fl *File) readahead(ctx kernel.Ctx, lblk int64) {
	ip := fl.ip
	if ip.raWindow == 0 || ip.raAhead > lblk {
		return
	}
	bsize := int64(fl.fs.BlockSize())
	last := (ip.size - 1) / bsize // last logical block holding data
	end := lblk + int64(ip.raWindow)
	if end > last {
		end = last
	}
	start := lblk + 1
	if start <= ip.raAhead {
		start = ip.raAhead + 1
	}
	if start > end {
		return
	}
	pblks, err := ip.bmapRange(ctx, start, end)
	if err != nil {
		return
	}
	for i, pblk := range pblks {
		if pblk != 0 && !fl.fs.cache.StartReadahead(ctx, fl.fs.dev, int64(pblk)) {
			return
		}
		ip.raAhead = start + int64(i)
	}
}

// Write implements kernel.FileOps. Full-block writes allocate without
// zero fill and overwrite in place; partial blocks read-modify-write
// (or zero-fill on fresh allocation). Writes are delayed (bdwrite):
// data reaches the device on eviction or fsync, as in the BSD cache.
func (fl *File) Write(ctx kernel.Ctx, p []byte, off int64) (int, error) {
	if fl.closed {
		return 0, kernel.ErrBadFD
	}
	if fl.ip.mode == ModeDir {
		return 0, kernel.ErrIsDir
	}
	ip := fl.ip
	ip.lock(ctx)
	defer ip.unlock()

	bsize := int64(fl.fs.BlockSize())
	done := 0
	for done < len(p) {
		pos := off + int64(done)
		lblk := pos / bsize
		boff := pos % bsize
		n := int(bsize - boff)
		if n > len(p)-done {
			n = len(p) - done
		}
		full := boff == 0 && n == int(bsize)

		var b *buf.Buf
		if full {
			pblk, err := ip.bmap(ctx, lblk, true, false)
			if err != nil {
				return done, err
			}
			b = fl.fs.cache.Getblk(ctx, fl.fs.dev, int64(pblk))
		} else {
			// Partial block: preserve existing contents. Fresh blocks
			// are zero-filled by the allocating bmap, matching the
			// standard write path.
			existing, err := ip.bmap(ctx, lblk, false, false)
			if err != nil {
				return done, err
			}
			if existing == 0 {
				pblk, err := ip.bmap(ctx, lblk, true, true)
				if err != nil {
					return done, err
				}
				b, err = fl.fs.cache.Bread(ctx, fl.fs.dev, int64(pblk))
				if err != nil {
					// The block was allocated but no byte of it got
					// written: roll it back rather than leave a dead
					// block attached past the data actually written.
					fl.rollbackBlock(ctx, lblk)
					return done, err
				}
			} else {
				b, err = fl.fs.cache.Bread(ctx, fl.fs.dev, int64(existing))
				if err != nil {
					return done, err
				}
			}
		}
		copy(b.Data[boff:], p[done:done+n])
		fl.fs.cache.Bdwrite(ctx, b)
		done += n
		if pos+int64(n) > ip.size {
			ip.size = pos + int64(n)
			ip.dirty = true
		}
	}
	return done, nil
}

// rollbackBlock undoes the allocation of logical block lblk after a
// mid-write failure: the data block returns to the bitmap and the
// direct/indirect pointer to it is cleared, so an ErrNoSpace (or I/O
// error) partway through a multi-block extension cannot leave blocks
// attached beyond the bytes actually written — and can never leak a
// marked-but-unreferenced block for fsck to find. Indirect pointer
// blocks allocated on the way stay: they are referenced by the inode
// and are reused by the next extension. Best effort: rollback failures
// are ignored (the original error is what the caller reports; a block
// left behind is still referenced, so the volume stays consistent).
func (fl *File) rollbackBlock(ctx kernel.Ctx, lblk int64) {
	ip := fl.ip
	f := fl.fs
	pblk, err := ip.bmap(ctx, lblk, false, false)
	if err != nil || pblk == 0 {
		return
	}
	if err := ip.clearPtr(ctx, lblk); err != nil {
		return
	}
	// Drop any cached copy before the block returns to the bitmap
	// (blkfree+binval discipline): a stale delayed-write buffer left
	// behind would otherwise be flushed later onto a block this file no
	// longer owns — possibly after the allocator hands it to another
	// file — and a clean one would shadow the next owner's fresh
	// allocation on a cache hit.
	_ = f.cache.InvalidateBlocks(ctx, f.dev, []int64{int64(pblk)})
	_ = f.freeBlock(ctx, pblk)
}

// Size implements kernel.FileOps.
func (fl *File) Size(ctx kernel.Ctx) (int64, error) {
	if fl.closed {
		return 0, kernel.ErrBadFD
	}
	return fl.ip.size, nil
}

// Sync implements kernel.FileOps: every dirty block of this file is
// forced to the device (writes issued back to back, then awaited) and
// the inode is written back. Any latched async write error on the
// device is consumed and reported — fsync is the call the latch exists
// to serve.
func (fl *File) Sync(ctx kernel.Ctx) error {
	if fl.closed {
		return kernel.ErrBadFD
	}
	err := fl.syncInode(ctx)
	// Consume the device latch in every case: a flush failure latched
	// its error, and a flush with nothing dirty left can still owe the
	// caller an earlier buffer-daemon write failure. Either way fsync
	// reports it exactly once.
	if lerr := fl.fs.cache.TakeWriteError(fl.fs.dev); err == nil {
		err = lerr
	}
	return err
}

// syncInode is the body of Sync, shared with the VM layer's PageFlush
// (a mapping outlives its descriptor, so msync must sync a file whose
// fd is closed). Dirty mapped pages are paged out into the cache first
// so fsync's durability contract covers stores made through mmap. The
// sticky per-device write-error latch is deliberately not touched here:
// whether a sync consumes the latch (fsync) or only observes it (msync)
// is the caller's policy.
func (fl *File) syncInode(ctx kernel.Ctx) error {
	f := fl.fs
	if f.pager != nil {
		if err := f.pager.PageoutObject(ctx, f.dev.DevName(), fl.ip.ino); err != nil {
			return err
		}
	}
	ip := fl.ip
	ip.lock(ctx)
	defer ip.unlock()

	bsize := int64(fl.fs.BlockSize())
	nblocks := (ip.size + bsize - 1) / bsize
	blknos := make([]int64, 0, nblocks+2)
	for l := int64(0); l < nblocks; l++ {
		pblk, err := ip.bmap(ctx, l, false, false)
		if err != nil {
			return err
		}
		if pblk != 0 {
			blknos = append(blknos, int64(pblk))
		}
	}
	if ip.indir != 0 {
		blknos = append(blknos, int64(ip.indir))
	}
	if ip.dindir != 0 {
		blknos = append(blknos, int64(ip.dindir))
	}
	if ip.dirty {
		if err := fl.fs.iupdate(ctx, ip); err != nil {
			return err
		}
	}
	// Include the inode-table block so the inode image itself (size,
	// pointers — dirtied by this file or flushed lazily by an earlier
	// close) is durable when fsync returns: that is the crash contract.
	itblk, _ := fl.fs.itableBlock(ip.ino)
	blknos = append(blknos, itblk)
	_, err := fl.fs.cache.FlushBlocks(ctx, fl.fs.dev, blknos)
	return err
}

// Close implements kernel.FileOps.
func (fl *File) Close(ctx kernel.Ctx) error {
	if fl.closed {
		return kernel.ErrBadFD
	}
	fl.closed = true
	err := fl.fs.iput(ctx, fl.ip)
	if err == nil {
		// Surface any latched async-write error on this device: with
		// delayed writes, close is often the last chance to report it.
		err = fl.fs.cache.TakeWriteError(fl.fs.dev)
	}
	return err
}

// ---- splice support (source/sink accessors) ----

// SpliceSetSize extends the file size to n without touching data (the
// destination of a whole-file splice is sized up front, when the block
// table is built).
func (fl *File) SpliceSetSize(ctx kernel.Ctx, n int64) {
	ip := fl.ip
	ip.lock(ctx)
	if n > ip.size {
		ip.size = n
		ip.dirty = true
	}
	ip.unlock()
}

// SpliceMapRead builds the source block table: the physical block
// numbers of the first nblocks logical blocks.
func (fl *File) SpliceMapRead(ctx kernel.Ctx, nblocks int64) ([]uint32, error) {
	ip := fl.ip
	ip.lock(ctx)
	defer ip.unlock()
	return ip.PhysicalBlocks(ctx, nblocks, false)
}

// SpliceMapWrite builds the destination block table, allocating missing
// blocks with the special bmap that skips zero-fill delayed writes
// (§5.2).
func (fl *File) SpliceMapWrite(ctx kernel.Ctx, nblocks int64) ([]uint32, []bool, error) {
	ip := fl.ip
	ip.lock(ctx)
	defer ip.unlock()
	// Probe before allocating: blocks that are holes now will be
	// freshly allocated below, and the write engine must know — a fresh
	// block's unwritten tail must land on disk as zeros, while a
	// pre-existing block's tail beyond the transfer must be preserved.
	pre, err := ip.PhysicalBlocks(ctx, nblocks, false)
	if err != nil {
		return nil, nil, err
	}
	blocks, err := ip.PhysicalBlocks(ctx, nblocks, true)
	if err != nil {
		return nil, nil, err
	}
	fresh := make([]bool, nblocks)
	for i, pb := range pre {
		fresh[i] = pb == 0 && blocks[i] != 0
	}
	// The write engine bypasses the buffer cache (memory-less headers
	// straight to the driver), so cached copies of the destination
	// blocks must be purged now: a clean one would shadow the spliced
	// data on later reads, a dirty one would overwrite it on flush.
	blknos := make([]int64, 0, len(blocks))
	for _, pb := range blocks {
		blknos = append(blknos, int64(pb))
	}
	if err := ip.fs.cache.InvalidateBlocks(ctx, ip.fs.dev, blknos); err != nil {
		return nil, nil, err
	}
	return blocks, fresh, nil
}

var _ kernel.FileOps = (*File)(nil)
