package fs

import (
	"bytes"
	"testing"

	"kdp/internal/buf"
	"kdp/internal/disk"
	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// newSlowRig formats a filesystem on an RZ58 model so device latency
// is visible: readaheads stay in flight long enough to race demand
// reads, budget limits, and crashes.
func newSlowRig(t *testing.T, blocks int64) *rig {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 1200 * sim.Second
	k := kernel.New(cfg)
	c := buf.NewCache(k, 64, testBlockSize)
	d := disk.New(k, disk.RZ58(blocks, testBlockSize))
	d.SetCache(c)
	if _, err := Mkfs(d, 128); err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	return &rig{k: k, c: c, d: d}
}

// makeColdFile writes an nblocks-block file, forces it to the device,
// and invalidates the cache so the next read is cold. Returns the file
// contents.
func makeColdFile(t *testing.T, p *kernel.Proc, f *FS, path string, nblocks int) []byte {
	t.Helper()
	ctx := p.Ctx()
	data := pattern(nblocks*testBlockSize, 5)
	fl, err := f.OpenFile(ctx, path, kernel.OCreat|kernel.ORdWr)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := fl.Write(ctx, data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := fl.Sync(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := fl.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := f.cache.InvalidateDev(ctx, f.dev); err != nil {
		t.Fatalf("invalidate: %v", err)
	}
	return data
}

// TestSequentialReadGrowsWindow: a block-by-block scan is detected as
// sequential, the window grows, speculative fetches are issued and all
// of them are consumed as hits (RAM disk: readahead completes inline,
// so every speculated block is warm by the time the scan reaches it).
func TestSequentialReadGrowsWindow(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		f.SetReadahead(8)
		const nblocks = 16
		want := makeColdFile(t, p, f, "/seq", nblocks)
		fl, err := f.OpenFile(ctx, "/seq", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		got := make([]byte, 0, len(want))
		chunk := make([]byte, testBlockSize)
		off := int64(0)
		for {
			n, err := fl.Read(ctx, chunk, off)
			if err != nil {
				t.Fatalf("read at %d: %v", off, err)
			}
			if n == 0 {
				break
			}
			got = append(got, chunk[:n]...)
			off += int64(n)
		}
		if !bytes.Equal(got, want) {
			t.Error("sequential read returned wrong data")
		}
		if w := fl.(*File).Inode().raWindow; w != 8 {
			t.Errorf("window after full scan = %d, want cap 8", w)
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		st := f.cache.Stats()
		if st.RaIssued == 0 || st.RaHits == 0 {
			t.Errorf("RaIssued=%d RaHits=%d, want both > 0", st.RaIssued, st.RaHits)
		}
		if st.RaWaste != 0 {
			t.Errorf("RaWaste = %d, want 0 for a clean scan", st.RaWaste)
		}
		if err := f.cache.CheckInvariants(); err != nil {
			t.Errorf("invariants: %v", err)
		}
	})
}

// TestReadaheadStopsAtEOF: the window is clamped at the file's last
// data block, so a scan reaching EOF mid-window never speculates past
// the end (which would waste budget on blocks of other files).
func TestReadaheadStopsAtEOF(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		f.SetReadahead(8)
		// 2.5 blocks: last data block is 2, reached while the window
		// still wants to run ahead.
		data := pattern(2*testBlockSize+testBlockSize/2, 3)
		fl, err := f.OpenFile(ctx, "/short", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := fl.Write(ctx, data, 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := fl.Sync(ctx); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if err := f.cache.InvalidateDev(ctx, f.dev); err != nil {
			t.Fatalf("invalidate: %v", err)
		}
		got := make([]byte, len(data))
		off := int64(0)
		for off < int64(len(data)) {
			n, err := fl.Read(ctx, got[off:], off)
			if err != nil || n == 0 {
				t.Fatalf("read at %d: n=%d err=%v", off, n, err)
			}
			off += int64(n)
		}
		if !bytes.Equal(got, data) {
			t.Error("short-file read returned wrong data")
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		st := f.cache.Stats()
		// Only blocks 1 and 2 can ever be speculated; nothing past EOF.
		if st.RaIssued > 2 {
			t.Errorf("RaIssued = %d, want <= 2 (no speculation past EOF)", st.RaIssued)
		}
		if st.RaWaste != 0 {
			t.Errorf("RaWaste = %d, want 0", st.RaWaste)
		}
		if err := f.cache.CheckInvariants(); err != nil {
			t.Errorf("invariants: %v", err)
		}
	})
}

// TestRandomAccessCollapsesWindow: seeks never speculate — each
// non-contiguous read collapses the window to zero and issues no
// readahead.
func TestRandomAccessCollapsesWindow(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		f.SetReadahead(8)
		want := makeColdFile(t, p, f, "/rand", 8)
		fl, err := f.OpenFile(ctx, "/rand", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		chunk := make([]byte, testBlockSize)
		// Offsets chosen so no read starts where the previous ended
		// (and the first is nonzero, since a fresh inode expects 0).
		for _, blk := range []int64{3, 6, 1, 4, 0} {
			off := blk * testBlockSize
			n, err := fl.Read(ctx, chunk, off)
			if err != nil || n != testBlockSize {
				t.Fatalf("read blk %d: n=%d err=%v", blk, n, err)
			}
			if !bytes.Equal(chunk, want[off:off+testBlockSize]) {
				t.Errorf("blk %d: wrong data", blk)
			}
			if w := fl.(*File).Inode().raWindow; w != 0 {
				t.Errorf("window after random read of blk %d = %d, want 0", blk, w)
			}
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		if st := f.cache.Stats(); st.RaIssued != 0 {
			t.Errorf("RaIssued = %d, want 0 for random access", st.RaIssued)
		}
	})
}

// TestSeekAfterScanCollapsesThenRegrows: a sequential run grows the
// window, a seek collapses it, and a new sequential run from the seek
// point starts over at one block.
func TestSeekAfterScanCollapsesThenRegrows(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		f.SetReadahead(8)
		makeColdFile(t, p, f, "/mix", 16)
		fl, err := f.OpenFile(ctx, "/mix", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		chunk := make([]byte, testBlockSize)
		mustRead := func(off int64) {
			if _, err := fl.Read(ctx, chunk, off); err != nil {
				t.Fatalf("read at %d: %v", off, err)
			}
		}
		ip := fl.(*File).Inode()
		mustRead(0)
		mustRead(1 * testBlockSize)
		mustRead(2 * testBlockSize)
		if ip.raWindow < 2 {
			t.Fatalf("window after 3 sequential reads = %d, want >= 2", ip.raWindow)
		}
		mustRead(10 * testBlockSize) // seek
		if ip.raWindow != 0 || ip.raAhead != 0 {
			t.Errorf("window/ahead after seek = %d/%d, want 0/0", ip.raWindow, ip.raAhead)
		}
		mustRead(11 * testBlockSize) // sequential again
		if ip.raWindow != 1 {
			t.Errorf("window after resuming scan = %d, want 1 (fresh start)", ip.raWindow)
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}

// TestWindowLargerThanBudget: a 32-block window against the default
// budget (nbuf/8 = 8 in-flight) must never exceed the cap — issue
// stops at the first refusal and the scan still completes correctly.
func TestWindowLargerThanBudget(t *testing.T) {
	r := newSlowRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		f.SetReadahead(32)
		budget := f.cache.ReadaheadBudget()
		if budget >= 32 {
			t.Fatalf("budget = %d, test wants window (32) > budget", budget)
		}
		want := makeColdFile(t, p, f, "/big", 40)
		fl, err := f.OpenFile(ctx, "/big", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		got := make([]byte, 0, len(want))
		chunk := make([]byte, testBlockSize)
		off := int64(0)
		for {
			n, err := fl.Read(ctx, chunk, off)
			if err != nil {
				t.Fatalf("read at %d: %v", off, err)
			}
			if n == 0 {
				break
			}
			if pend := f.cache.ReadaheadPending(); pend > budget {
				t.Fatalf("pending readaheads %d exceed budget %d", pend, budget)
			}
			got = append(got, chunk[:n]...)
			off += int64(n)
		}
		if !bytes.Equal(got, want) {
			t.Error("scan with clamped window returned wrong data")
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		if st := f.cache.Stats(); st.RaIssued == 0 {
			t.Error("no readaheads issued")
		}
		if err := f.cache.CheckInvariants(); err != nil {
			t.Errorf("cache invariants: %v", err)
		}
		if err := r.d.CheckInvariants(); err != nil {
			t.Errorf("disk invariants: %v", err)
		}
	})
}

// TestReadaheadRacingCrash: speculative reads in flight when the
// device crashes are dropped with an error, must drain the in-flight
// budget, count as waste, and must NOT latch a device write error
// (they were reads). The durable file data stays readable afterwards.
func TestReadaheadRacingCrash(t *testing.T) {
	r := newSlowRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		f.SetReadahead(8)
		want := makeColdFile(t, p, f, "/race", 16)
		fl, err := f.OpenFile(ctx, "/race", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		chunk := make([]byte, testBlockSize)
		// Two sequential reads: the second grows the window and leaves
		// speculative fetches in flight on the slow device.
		for _, off := range []int64{0, testBlockSize} {
			if _, err := fl.Read(ctx, chunk, off); err != nil {
				t.Fatalf("read at %d: %v", off, err)
			}
		}
		if f.cache.ReadaheadPending() == 0 {
			t.Fatal("no readaheads in flight; race setup broken")
		}
		dropped := r.d.Crash()
		// Dropped requests complete with errors at interrupt level; the
		// one past the point of no return finishes normally. Wait for
		// the dust to settle.
		for f.cache.ReadaheadPending() > 0 || r.d.Busy() {
			p.SleepFor(5 * sim.Millisecond)
		}
		st := f.cache.Stats()
		if dropped > 0 && st.RaWaste == 0 {
			t.Errorf("dropped %d requests but RaWaste = 0", dropped)
		}
		// A failed readahead is a failed *read*: it must not latch the
		// device write error that fsync reports.
		if err := f.cache.WriteError(f.dev); err != nil {
			t.Errorf("crashed readahead latched a write error: %v", err)
		}
		if err := f.cache.CheckInvariants(); err != nil {
			t.Errorf("cache invariants after device crash: %v", err)
		}
		if err := r.d.CheckInvariants(); err != nil {
			t.Errorf("disk invariants after device crash: %v", err)
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Complete the crash model on the cache side and re-read: the
		// fsynced data survived.
		f.cache.Crash(f.dev)
		if pend := f.cache.ReadaheadPending(); pend != 0 {
			t.Errorf("pending after cache crash = %d, want 0", pend)
		}
		fl2, err := f.OpenFile(ctx, "/race", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got := make([]byte, len(want))
		off := int64(0)
		for off < int64(len(want)) {
			n, err := fl2.Read(ctx, got[off:], off)
			if err != nil || n == 0 {
				t.Fatalf("re-read at %d: n=%d err=%v", off, n, err)
			}
			off += int64(n)
		}
		if !bytes.Equal(got, want) {
			t.Error("durable data wrong after crash")
		}
		if err := fl2.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}

// TestClusteredFlushAcrossFaultBoundary: fsync of a multi-block file
// clusters the adjacent dirty blocks; a one-shot write fault inside
// the cluster fails the sync without corrupting cache state, and a
// retry lands everything.
func TestClusteredFlushAcrossFaultBoundary(t *testing.T) {
	r := newRig(t, 512)
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		data := pattern(4*testBlockSize, 7)
		fl, err := f.OpenFile(ctx, "/clu", kernel.OCreat|kernel.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := fl.Write(ctx, data, 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		ip := fl.(*File).Inode()
		for i := 1; i < 4; i++ {
			if ip.direct[i] != ip.direct[i-1]+1 {
				t.Fatalf("fresh-fs allocation not contiguous: %v", ip.direct[:4])
			}
		}
		// Fault the write of a block in the middle of the cluster.
		r.d.InjectFault(int64(ip.direct[2]), false, true, 1)
		if err := fl.Sync(ctx); err == nil {
			t.Fatal("fsync across the fault succeeded, want error")
		}
		if err := f.cache.CheckInvariants(); err != nil {
			t.Errorf("cache invariants after faulted flush: %v", err)
		}
		if err := r.d.CheckInvariants(); err != nil {
			t.Errorf("disk invariants after faulted flush: %v", err)
		}
		st := f.cache.Stats()
		if st.ClusterRuns == 0 || st.ClusterBlocks < 2 {
			t.Errorf("ClusterRuns=%d ClusterBlocks=%d, want a run of the adjacent dirty blocks",
				st.ClusterRuns, st.ClusterBlocks)
		}
		// The fault was one-shot: rewrite the failed block and sync
		// again; everything must now be durable.
		if _, err := fl.Write(ctx, data[2*testBlockSize:3*testBlockSize], 2*testBlockSize); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		if err := fl.Sync(ctx); err != nil {
			t.Fatalf("fsync retry: %v", err)
		}
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := f.cache.InvalidateDev(ctx, f.dev); err != nil {
			t.Fatalf("invalidate: %v", err)
		}
		fl2, err := f.OpenFile(ctx, "/clu", kernel.ORdOnly)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got := make([]byte, len(data))
		off := int64(0)
		for off < int64(len(data)) {
			n, err := fl2.Read(ctx, got[off:], off)
			if err != nil || n == 0 {
				t.Fatalf("read back at %d: n=%d err=%v", off, n, err)
			}
			off += int64(n)
		}
		if !bytes.Equal(got, data) {
			t.Error("data wrong after faulted-then-retried sync")
		}
		if err := fl2.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}
