package fs

import (
	"encoding/binary"
	"fmt"

	"kdp/internal/buf"
	"kdp/internal/kernel"
)

// FsckReport is the result of a consistency check (or, from
// FsckRepair, a repair pass).
type FsckReport struct {
	Inodes     int // allocated inodes encountered
	Dirs       int
	Files      int
	UsedBlocks int // data+indirect blocks referenced by inodes
	Repaired   int // individual fixes applied (FsckRepair only)
	Problems   []string
}

// Clean reports whether the volume is consistent.
func (r *FsckReport) Clean() bool { return len(r.Problems) == 0 }

func (r *FsckReport) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck performs an offline consistency check of the volume on dev,
// reading through the given cache:
//
//   - superblock sanity (magic, geometry);
//   - every allocated inode's block pointers are in the data region,
//     referenced at most once, and marked in-use in the bitmap;
//   - the bitmap marks no leaked blocks (in-use but unreferenced);
//   - every directory entry names an allocated inode, and link counts
//     match directory references;
//   - free counters in the superblock match the bitmap and inode table.
//
// Like the historical fsck it expects a quiescent volume (no open
// writers).
func Fsck(ctx kernel.Ctx, cache *buf.Cache, dev buf.Device) (*FsckReport, error) {
	rep := &FsckReport{}

	sbuf, err := cache.Bread(ctx, dev, 0)
	if err != nil {
		return nil, err
	}
	var sb Superblock
	err = sb.decode(sbuf.Data)
	cache.Brelse(ctx, sbuf)
	if err != nil {
		rep.problemf("superblock: %v", err)
		return rep, nil
	}
	if int64(sb.TotalBlocks) != dev.DevBlocks() {
		rep.problemf("superblock: claims %d blocks, device has %d", sb.TotalBlocks, dev.DevBlocks())
	}
	if sb.DataStart >= sb.TotalBlocks {
		rep.problemf("superblock: data region starts beyond device (%d >= %d)", sb.DataStart, sb.TotalBlocks)
		return rep, nil
	}

	// Pass 1: walk the inode table, collecting block references.
	refs := map[uint32]uint32{} // physical block → first referencing inode
	links := map[uint32]int{}   // inode → directory references
	allocated := map[uint32]*dinode{}
	inoPerBlk := int(sb.BlockSize) / InodeSize
	for ino := uint32(1); ino < sb.NInodes; ino++ {
		blk := int64(sb.ITableStart) + int64(int(ino)/inoPerBlk)
		b, err := cache.Bread(ctx, dev, blk)
		if err != nil {
			return nil, err
		}
		var di dinode
		di.decode(b.Data[(int(ino)%inoPerBlk)*InodeSize:])
		cache.Brelse(ctx, b)
		if di.Mode == ModeFree {
			continue
		}
		if di.Mode != ModeFile && di.Mode != ModeDir {
			rep.problemf("inode %d: invalid mode %d", ino, di.Mode)
			continue
		}
		dcopy := di
		allocated[ino] = &dcopy
		rep.Inodes++
		if di.Mode == ModeDir {
			rep.Dirs++
		} else {
			rep.Files++
		}
		if di.Size < 0 {
			rep.problemf("inode %d: negative size %d", ino, di.Size)
		}
		checkRef := func(pblk uint32, what string) {
			if pblk == 0 {
				return
			}
			if pblk < sb.DataStart || pblk >= sb.TotalBlocks {
				rep.problemf("inode %d: %s block %d outside data region", ino, what, pblk)
				return
			}
			if prev, dup := refs[pblk]; dup {
				rep.problemf("inode %d: %s block %d already referenced by inode %d", ino, what, pblk, prev)
				return
			}
			refs[pblk] = ino
			rep.UsedBlocks++
		}
		for _, pblk := range di.Direct {
			checkRef(pblk, "direct")
		}
		var walk func(blk uint32, what string, depth int)
		walk = func(blk uint32, what string, depth int) {
			if blk == 0 {
				return
			}
			checkRef(blk, what)
			if blk < sb.DataStart || blk >= sb.TotalBlocks {
				return
			}
			pb, err := cache.Bread(ctx, dev, int64(blk))
			if err != nil {
				rep.problemf("inode %d: unreadable %s block %d", ino, what, blk)
				return
			}
			le := binary.LittleEndian
			ppb := int(sb.BlockSize) / 4
			entries := make([]uint32, 0, 16)
			for i := 0; i < ppb; i++ {
				if p := le.Uint32(pb.Data[i*4:]); p != 0 {
					entries = append(entries, p)
				}
			}
			cache.Brelse(ctx, pb)
			for _, p := range entries {
				if depth > 1 {
					walk(p, "indirect", depth-1)
				} else {
					checkRef(p, "data")
				}
			}
		}
		walk(di.Indir, "indirect", 1)
		walk(di.DIndir, "double-indirect", 2)
	}

	// Pass 2: directory connectivity and link counts, in inode order so
	// the problem list is deterministic.
	for _, ino := range sortedInos(allocated) {
		di := allocated[ino]
		if di.Mode != ModeDir {
			continue
		}
		if err := fsckScanDir(ctx, cache, dev, &sb, ino, di, allocated, links, rep); err != nil {
			return nil, err
		}
	}
	for _, ino := range sortedInos(allocated) {
		di := allocated[ino]
		want := links[ino]
		if ino == RootIno {
			want++ // the root is referenced by convention, not a dirent
		}
		if int(di.Nlink) != want {
			rep.problemf("inode %d: link count %d, referenced %d time(s)", ino, di.Nlink, want)
		}
	}

	// Pass 3: bitmap cross-check.
	bitsPerBlk := int(sb.BlockSize) * 8
	usedInBitmap := uint32(0)
	for blk := sb.DataStart; blk < sb.TotalBlocks; blk++ {
		bmBlk := int64(sb.BitmapStart) + int64(int(blk)/bitsPerBlk)
		b, err := cache.Bread(ctx, dev, bmBlk)
		if err != nil {
			return nil, err
		}
		bit := int(blk) % bitsPerBlk
		marked := b.Data[bit/8]&(1<<uint(bit%8)) != 0
		cache.Brelse(ctx, b)
		_, referenced := refs[blk]
		if marked {
			usedInBitmap++
		}
		if referenced && !marked {
			rep.problemf("block %d: referenced by inode %d but free in bitmap", blk, refs[blk])
		}
		if !referenced && marked {
			rep.problemf("block %d: marked in-use but unreferenced (leaked)", blk)
		}
	}
	dataBlocks := sb.TotalBlocks - sb.DataStart
	if sb.FreeBlocks != dataBlocks-usedInBitmap {
		rep.problemf("superblock: free-block count %d, bitmap says %d", sb.FreeBlocks, dataBlocks-usedInBitmap)
	}
	wantFreeInodes := sb.NInodes - uint32(rep.Inodes) - 1 // ino 0 reserved
	if sb.FreeInodes != wantFreeInodes {
		rep.problemf("superblock: free-inode count %d, table says %d", sb.FreeInodes, wantFreeInodes)
	}
	return rep, nil
}

// fsckScanDir validates one directory's entries.
func fsckScanDir(ctx kernel.Ctx, cache *buf.Cache, dev buf.Device, sb *Superblock,
	dirIno uint32, di *dinode, allocated map[uint32]*dinode, links map[uint32]int, rep *FsckReport) error {

	bsize := int64(sb.BlockSize)
	// Resolve the directory's logical blocks through its own pointers
	// (directories small enough for direct blocks in practice, but
	// follow the indirect chain for completeness).
	lookup := func(lblk int64) uint32 {
		if lblk < NDirect {
			return di.Direct[lblk]
		}
		return 0 // directories beyond direct blocks are not produced by this fs
	}
	for off := int64(0); off < di.Size; off += DirentSize {
		pblk := lookup(off / bsize)
		if pblk == 0 {
			continue
		}
		b, err := cache.Bread(ctx, dev, int64(pblk))
		if err != nil {
			return err
		}
		de := decodeDirent(b.Data[off%bsize:])
		cache.Brelse(ctx, b)
		if de.Ino == 0 {
			continue
		}
		target, ok := allocated[de.Ino]
		if !ok {
			rep.problemf("dir inode %d: entry %q points to unallocated inode %d", dirIno, de.Name, de.Ino)
			continue
		}
		_ = target
		links[de.Ino]++
		if len(de.Name) == 0 || len(de.Name) > MaxNameLen {
			rep.problemf("dir inode %d: entry for inode %d has invalid name length %d", dirIno, de.Ino, len(de.Name))
		}
	}
	return nil
}
