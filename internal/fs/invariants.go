package fs

import "fmt"

// This file implements the filesystem's live invariant checker used by
// the simcheck harness. Unlike Fsck — which reads the whole volume and
// needs process context — CheckLive inspects only in-core state, so it
// never sleeps and is callable between events from the kernel's
// scheduling loop.
//
// Invariant catalog (filesystem, in-core):
//
//	fs-inode-key        the inode table key matches the inode's number
//	fs-inode-refs       reference counts never go negative (refs == 0 is
//	                    legal transiently while iput tears an inode down)
//	fs-inode-mode       mode is file, directory, or free-pending-unlink
//	fs-inode-size       file size is non-negative
//	fs-ptr-bounds       every block pointer is 0 or inside the data region
//	fs-ptr-dup          no data block claimed by two in-core inodes
//	fs-super-counts     free-block/inode counters within volume bounds
//
// Cross-inode duplicate detection covers only in-core inodes; the full
// on-disk check (bitmap cross-check, directory connectivity) is Fsck's
// job and runs at end of workload, on a quiescent volume.

func fsviolation(name, format string, args ...any) error {
	return fmt.Errorf("invariant %s violated: %s", name, fmt.Sprintf(format, args...))
}

// CheckLive verifies the in-core filesystem invariants, returning the
// first violation found (nil when consistent). It performs no I/O.
func (f *FS) CheckLive() error {
	claimed := make(map[uint32]uint32) // physical block -> claiming inode
	checkPtr := func(ino, pblk uint32, what string) error {
		if pblk == 0 {
			return nil
		}
		if pblk < f.sb.DataStart || pblk >= f.sb.TotalBlocks {
			return fsviolation("fs-ptr-bounds", "inode %d: %s block %d outside data region [%d,%d)",
				ino, what, pblk, f.sb.DataStart, f.sb.TotalBlocks)
		}
		if prev, dup := claimed[pblk]; dup {
			return fsviolation("fs-ptr-dup", "block %d claimed by inodes %d and %d", pblk, prev, ino)
		}
		claimed[pblk] = ino
		return nil
	}

	for ino, ip := range f.inodes {
		if ip.ino != ino {
			return fsviolation("fs-inode-key", "table key %d holds inode %d", ino, ip.ino)
		}
		if ip.refs < 0 {
			return fsviolation("fs-inode-refs", "inode %d in core with refs %d", ino, ip.refs)
		}
		// ModeFree appears transiently while iput tears down an
		// unlinked inode; anything else is corruption.
		if ip.mode != ModeFile && ip.mode != ModeDir && ip.mode != ModeFree {
			return fsviolation("fs-inode-mode", "inode %d has invalid mode %d", ino, ip.mode)
		}
		if ip.size < 0 {
			return fsviolation("fs-inode-size", "inode %d has negative size %d", ino, ip.size)
		}
		for _, pblk := range ip.direct {
			if err := checkPtr(ino, pblk, "direct"); err != nil {
				return err
			}
		}
		if err := checkPtr(ino, ip.indir, "indirect"); err != nil {
			return err
		}
		if err := checkPtr(ino, ip.dindir, "double-indirect"); err != nil {
			return err
		}
	}

	dataBlocks := f.sb.TotalBlocks - f.sb.DataStart
	if f.sb.FreeBlocks > dataBlocks {
		return fsviolation("fs-super-counts", "free blocks %d exceed data region %d", f.sb.FreeBlocks, dataBlocks)
	}
	if f.sb.FreeInodes > f.sb.NInodes {
		return fsviolation("fs-super-counts", "free inodes %d exceed table size %d", f.sb.FreeInodes, f.sb.NInodes)
	}
	return nil
}
