package fs

import (
	"kdp/internal/kernel"
)

// VM backing-store hooks: internal/vm pages mapped files in and out
// through these methods, which alias mapped pages with buffer-cache
// blocks (a pagein is a Bread, a pageout is a delayed write). The two
// packages meet structurally — *File satisfies vm.Backing and vm.Pool
// satisfies fs.Pager — so neither imports the other, mirroring how the
// real unified caches keep the VM and file systems at arm's length.

// Pager is the dirty-mapped-page writeback hook a VM page pool
// implements (structurally: *vm.Pool). fsync and SyncAll call it so
// stores made through shared mappings reach the platter under the same
// durability contract as write().
type Pager interface {
	// PageoutObject writes every dirty resident page of the object
	// (dev, ino) into the buffer cache as delayed writes.
	PageoutObject(ctx kernel.Ctx, dev string, ino uint32) error
	// DirtyInos returns the inode numbers on dev with dirty resident
	// pages, ascending.
	DirtyInos(dev string) []uint32
}

// SetPager registers the VM writeback hook. Without one, fsync/SyncAll
// cover only write() I/O, as a kernel built without VM would.
func (f *FS) SetPager(p Pager) { f.pager = p }

// Pager returns the registered VM writeback hook, or nil.
func (f *FS) Pager() Pager { return f.pager }

// MapRef takes a mapping reference on the file's inode. A mapping
// outlives the descriptor it was created from (closing the fd must not
// tear down the mapping), so the VM holds its own inode reference from
// Mmap until the last Munmap.
func (fl *File) MapRef(ctx kernel.Ctx) {
	fl.ip.refs++
}

// MapUnref drops the mapping reference taken by MapRef; the last drop
// writes back a dirty inode (and surfaces any latched write error the
// way close does).
func (fl *File) MapUnref(ctx kernel.Ctx) error {
	err := fl.fs.iput(ctx, fl.ip)
	if err == nil {
		err = fl.fs.cache.TakeWriteError(fl.fs.dev)
	}
	return err
}

// MapKey identifies the backing object: one VM object exists per
// (device, inode) no matter how many mappings share it.
func (fl *File) MapKey() (dev string, ino uint32) {
	return fl.fs.dev.DevName(), fl.ip.ino
}

// MapSize returns the current file size (mapped pages past EOF read as
// zeros and are not written back).
func (fl *File) MapSize(ctx kernel.Ctx) (int64, error) {
	return fl.ip.size, nil
}

// MapSetSize extends the file size to n without touching data, for a
// writable shared mapping that reaches past EOF: blocks under the new
// size are allocated lazily, by the write faults that dirty them. The
// size update is delayed metadata, made durable by msync/fsync.
func (fl *File) MapSetSize(ctx kernel.Ctx, n int64) {
	ip := fl.ip
	ip.lock(ctx)
	if n > ip.size {
		ip.size = n
		ip.dirty = true
	}
	ip.unlock()
}

// PageIn fills dst (one page, equal to the filesystem block size) with
// the contents of logical block idx, returning the physical block the
// page now aliases. Holes and pages past EOF read as zeros with no
// block (0) — unless alloc is set, in which case the block is
// allocated zero-filled first, exactly as the write path would: a
// write fault on a shared mapping must have a block to page out to.
func (fl *File) PageIn(ctx kernel.Ctx, idx int64, dst []byte, alloc bool) (int64, error) {
	ip := fl.ip
	ip.lock(ctx)
	defer ip.unlock()
	pblk, err := ip.bmap(ctx, idx, false, false)
	if err != nil {
		return 0, err
	}
	if pblk == 0 {
		if !alloc {
			for i := range dst {
				dst[i] = 0
			}
			return 0, nil
		}
		pblk, err = ip.bmap(ctx, idx, true, true)
		if err != nil {
			return 0, err
		}
	}
	b, err := fl.fs.cache.Bread(ctx, fl.fs.dev, int64(pblk))
	if err != nil {
		return 0, err
	}
	copy(dst, b.Data)
	fl.fs.cache.Brelse(ctx, b)
	return int64(pblk), nil
}

// PageOut writes a dirty mapped page back into the buffer cache as a
// delayed write on its aliased block — from here on it is
// indistinguishable from write() data: the update daemon flushes it,
// and an async write failure latches the sticky per-device error that
// the next msync/fsync/close reports.
func (fl *File) PageOut(ctx kernel.Ctx, blk int64, src []byte) error {
	b := fl.fs.cache.Getblk(ctx, fl.fs.dev, blk)
	copy(b.Data, src)
	fl.fs.cache.Bdwrite(ctx, b)
	return nil
}

// PageFlush gives msync fsync's durability: every block of the file
// (the pages the caller just paged out included), the inode, and the
// inode-table block are forced to the platter, and any latched async
// write error on the device is surfaced. Works on a mapping whose
// descriptor is closed.
//
// Unlike fsync, msync only observes the sticky latch — it does not
// consume it. The latch is the device's last-writer error report, and a
// process msync'ing one mapping must not swallow the failure a
// concurrent fsync (or the eventual close) of the file that actually
// suffered it is entitled to see. msync still returns the real error
// exactly once per msync call, and the fsync path keeps its
// exactly-once consumption.
func (fl *File) PageFlush(ctx kernel.Ctx) error {
	if err := fl.syncInode(ctx); err != nil {
		return err
	}
	return fl.fs.cache.WriteError(fl.fs.dev)
}
