package fs

import (
	"bytes"
	"fmt"
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// TestRandomOpsAgainstModel drives the filesystem with random operation
// sequences and checks every observable result against a trivial
// in-memory reference model (map of path → contents). This is the
// strongest correctness test the filesystem has: any divergence in
// write extension, hole handling, truncation, unlinking or read
// boundaries shows up as a model mismatch.
func TestRandomOpsAgainstModel(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runModelSequence(t, seed, 160)
		})
	}
}

func runModelSequence(t *testing.T, seed uint64, steps int) {
	t.Helper()
	r := newRig(t, 1024)
	rnd := sim.NewRand(seed)
	model := map[string][]byte{} // reference contents per path
	names := []string{"/a", "/b", "/c", "/d"}

	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		for step := 0; step < steps; step++ {
			name := names[rnd.Intn(len(names))]
			switch op := rnd.Intn(10); {
			case op < 4: // write a random range
				_, exists := model[name]
				fl, err := f.OpenFile(ctx, name, kernel.OCreat|kernel.ORdWr)
				if err != nil {
					t.Fatalf("step %d: open %s: %v", step, name, err)
				}
				if !exists {
					model[name] = nil
				}
				off := rnd.Int63n(5 * testBlockSize)
				n := int(rnd.Int63n(2*testBlockSize)) + 1
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rnd.Intn(256))
				}
				if _, err := fl.Write(ctx, data, off); err != nil {
					t.Fatalf("step %d: write %s: %v", step, name, err)
				}
				// Model: extend with zeros, then patch.
				ref := model[name]
				if int64(len(ref)) < off+int64(n) {
					grown := make([]byte, off+int64(n))
					copy(grown, ref)
					ref = grown
				}
				copy(ref[off:], data)
				model[name] = ref
				_ = fl.Close(ctx)

			case op < 7: // read a random range and compare
				ref, exists := model[name]
				fl, err := f.OpenFile(ctx, name, kernel.ORdOnly)
				if !exists {
					if err != kernel.ErrNoEnt {
						t.Fatalf("step %d: open missing %s: %v", step, name, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("step %d: open %s: %v", step, name, err)
				}
				off := rnd.Int63n(6 * testBlockSize)
				n := int(rnd.Int63n(2*testBlockSize)) + 1
				got := make([]byte, n)
				rn, err := fl.Read(ctx, got, off)
				if err != nil {
					t.Fatalf("step %d: read %s: %v", step, name, err)
				}
				var want []byte
				if off < int64(len(ref)) {
					end := off + int64(n)
					if end > int64(len(ref)) {
						end = int64(len(ref))
					}
					want = ref[off:end]
				}
				if rn != len(want) || !bytes.Equal(got[:rn], want) {
					t.Fatalf("step %d: read %s @%d: got %d bytes, want %d", step, name, off, rn, len(want))
				}
				if sz, _ := fl.Size(ctx); sz != int64(len(ref)) {
					t.Fatalf("step %d: size %s = %d, want %d", step, name, sz, len(ref))
				}
				_ = fl.Close(ctx)

			case op < 8: // truncate via O_TRUNC
				if _, exists := model[name]; !exists {
					continue
				}
				fl, err := f.OpenFile(ctx, name, kernel.ORdWr|kernel.OTrunc)
				if err != nil {
					t.Fatalf("step %d: trunc %s: %v", step, name, err)
				}
				model[name] = nil
				_ = fl.Close(ctx)

			case op < 9: // remove
				_, exists := model[name]
				err := f.Remove(ctx, name)
				if exists && err != nil {
					t.Fatalf("step %d: remove %s: %v", step, name, err)
				}
				if !exists && err != kernel.ErrNoEnt {
					t.Fatalf("step %d: remove missing %s: %v", step, name, err)
				}
				delete(model, name)

			default: // sync everything (should never change contents)
				if err := f.SyncAll(ctx); err != nil {
					t.Fatalf("step %d: syncall: %v", step, err)
				}
			}
		}

		// Final sweep: every model file matches byte for byte.
		for name, ref := range model {
			fl, err := f.OpenFile(ctx, name, kernel.ORdOnly)
			if err != nil {
				t.Fatalf("final open %s: %v", name, err)
			}
			got := make([]byte, len(ref)+100)
			rn, err := fl.Read(ctx, got, 0)
			if err != nil {
				t.Fatalf("final read %s: %v", name, err)
			}
			if rn != len(ref) || !bytes.Equal(got[:rn], ref) {
				t.Fatalf("final contents of %s diverge from model (%d vs %d bytes)", name, rn, len(ref))
			}
			_ = fl.Close(ctx)
		}
	})
}

// TestModelSurvivesRemount runs a short random sequence, syncs,
// remounts with a cold cache, and re-verifies against the model.
func TestModelSurvivesRemount(t *testing.T) {
	r := newRig(t, 1024)
	rnd := sim.NewRand(99)
	model := map[string][]byte{}

	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		for i := 0; i < 30; i++ {
			name := fmt.Sprintf("/f%d", rnd.Intn(3))
			fl, err := f.OpenFile(ctx, name, kernel.OCreat|kernel.ORdWr)
			if err != nil {
				t.Fatal(err)
			}
			off := rnd.Int63n(3 * testBlockSize)
			data := make([]byte, rnd.Intn(testBlockSize)+1)
			for j := range data {
				data[j] = byte(rnd.Intn(256))
			}
			if _, err := fl.Write(ctx, data, off); err != nil {
				t.Fatal(err)
			}
			ref := model[name]
			if int64(len(ref)) < off+int64(len(data)) {
				grown := make([]byte, off+int64(len(data)))
				copy(grown, ref)
				ref = grown
			}
			copy(ref[off:], data)
			model[name] = ref
			_ = fl.Close(ctx)
		}
		if err := f.SyncAll(ctx); err != nil {
			t.Fatal(err)
		}
	})

	r.fsy = nil // force remount
	r.run(t, func(p *kernel.Proc, f *FS) {
		ctx := p.Ctx()
		if err := f.Cache().InvalidateDev(ctx, r.d); err != nil {
			t.Fatal(err)
		}
		for name, ref := range model {
			fl, err := f.OpenFile(ctx, name, kernel.ORdOnly)
			if err != nil {
				t.Fatalf("remount open %s: %v", name, err)
			}
			got := make([]byte, len(ref))
			rn, err := fl.Read(ctx, got, 0)
			if err != nil || rn != len(ref) || !bytes.Equal(got, ref) {
				t.Fatalf("remount contents of %s diverge (n=%d err=%v)", name, rn, err)
			}
			_ = fl.Close(ctx)
		}
	})
}
