// Package fs implements a small FFS-style filesystem on a simulated
// block device: a superblock, a block-allocation bitmap, a fixed inode
// table, directories, and files with direct, single- and
// double-indirect block pointers.
//
// It exists because splice is implemented against the filesystem's
// bmap() interface: the paper builds, per spliced file, the complete
// table of physical block numbers by successive bmap() calls (§5.2),
// and maps the destination with a special allocating bmap that skips
// the zero-fill delayed write of freshly allocated blocks. Both
// variants are provided here.
//
// All metadata I/O goes through the system buffer cache, so metadata
// costs (bitmap reads, inode writes, indirect blocks) are charged in
// virtual time like any other I/O.
package fs

import (
	"encoding/binary"
	"fmt"

	"kdp/internal/buf"
)

// On-disk layout constants.
const (
	// Magic identifies a formatted volume.
	Magic = 0x19931F5 // "1993 filesystem"

	// InodeSize is the on-disk inode record size.
	InodeSize = 128

	// NDirect is the number of direct block pointers per inode.
	NDirect = 12

	// DirentSize is the fixed directory entry size.
	DirentSize = 64

	// MaxNameLen is the longest file name a directory entry can hold.
	MaxNameLen = DirentSize - 6

	// RootIno is the inode number of the root directory. Inode 0 is
	// reserved as "no inode".
	RootIno = 1

	// Inode modes.
	ModeFree = 0
	ModeFile = 1
	ModeDir  = 2
)

// Superblock describes the volume geometry. Block 0 of the device
// holds its encoded form.
type Superblock struct {
	Magic       uint32
	BlockSize   uint32
	TotalBlocks uint32
	NInodes     uint32
	BitmapStart uint32 // first bitmap block
	BitmapLen   uint32 // bitmap blocks
	ITableStart uint32 // first inode-table block
	ITableLen   uint32 // inode-table blocks
	DataStart   uint32 // first data block
	FreeBlocks  uint32
	FreeInodes  uint32
}

func (sb *Superblock) encode(p []byte) {
	le := binary.LittleEndian
	le.PutUint32(p[0:], sb.Magic)
	le.PutUint32(p[4:], sb.BlockSize)
	le.PutUint32(p[8:], sb.TotalBlocks)
	le.PutUint32(p[12:], sb.NInodes)
	le.PutUint32(p[16:], sb.BitmapStart)
	le.PutUint32(p[20:], sb.BitmapLen)
	le.PutUint32(p[24:], sb.ITableStart)
	le.PutUint32(p[28:], sb.ITableLen)
	le.PutUint32(p[32:], sb.DataStart)
	le.PutUint32(p[36:], sb.FreeBlocks)
	le.PutUint32(p[40:], sb.FreeInodes)
}

func (sb *Superblock) decode(p []byte) error {
	le := binary.LittleEndian
	sb.Magic = le.Uint32(p[0:])
	if sb.Magic != Magic {
		return fmt.Errorf("fs: bad magic %#x", sb.Magic)
	}
	sb.BlockSize = le.Uint32(p[4:])
	sb.TotalBlocks = le.Uint32(p[8:])
	sb.NInodes = le.Uint32(p[12:])
	sb.BitmapStart = le.Uint32(p[16:])
	sb.BitmapLen = le.Uint32(p[20:])
	sb.ITableStart = le.Uint32(p[24:])
	sb.ITableLen = le.Uint32(p[28:])
	sb.DataStart = le.Uint32(p[32:])
	sb.FreeBlocks = le.Uint32(p[36:])
	sb.FreeInodes = le.Uint32(p[40:])
	return nil
}

// dinode is the on-disk inode image.
type dinode struct {
	Mode   uint16
	Nlink  uint16
	Size   int64
	Direct [NDirect]uint32
	Indir  uint32
	DIndir uint32
}

func (di *dinode) encode(p []byte) {
	le := binary.LittleEndian
	le.PutUint16(p[0:], di.Mode)
	le.PutUint16(p[2:], di.Nlink)
	le.PutUint64(p[4:], uint64(di.Size))
	for i, d := range di.Direct {
		le.PutUint32(p[12+4*i:], d)
	}
	le.PutUint32(p[12+4*NDirect:], di.Indir)
	le.PutUint32(p[16+4*NDirect:], di.DIndir)
}

func (di *dinode) decode(p []byte) {
	le := binary.LittleEndian
	di.Mode = le.Uint16(p[0:])
	di.Nlink = le.Uint16(p[2:])
	di.Size = int64(le.Uint64(p[4:]))
	for i := range di.Direct {
		di.Direct[i] = le.Uint32(p[12+4*i:])
	}
	di.Indir = le.Uint32(p[12+4*NDirect:])
	di.DIndir = le.Uint32(p[16+4*NDirect:])
}

// dirent is a fixed-size directory entry: ino(4) nameLen(2) name(58).
type dirent struct {
	Ino  uint32
	Name string
}

func encodeDirent(p []byte, de dirent) {
	le := binary.LittleEndian
	le.PutUint32(p[0:], de.Ino)
	le.PutUint16(p[4:], uint16(len(de.Name)))
	copy(p[6:DirentSize], de.Name)
	for i := 6 + len(de.Name); i < DirentSize; i++ {
		p[i] = 0
	}
}

func decodeDirent(p []byte) dirent {
	le := binary.LittleEndian
	n := int(le.Uint16(p[4:]))
	if n > MaxNameLen {
		n = MaxNameLen
	}
	return dirent{Ino: le.Uint32(p[0:]), Name: string(p[6 : 6+n])}
}

// Mkfs formats the device with a fresh filesystem containing an empty
// root directory. Formatting is a host-side operation (it writes the
// raw media directly and consumes no simulated time), standing in for a
// volume that was formatted before the experiment began.
//
// ninodes is rounded up to fill whole inode-table blocks.
func Mkfs(dev RawDevice, ninodes int) (*Superblock, error) {
	bsize := dev.DevBlockSize()
	blocks := dev.DevBlocks()
	if blocks < 8 {
		return nil, fmt.Errorf("fs: device too small (%d blocks)", blocks)
	}
	inoPerBlk := bsize / InodeSize
	itableLen := (ninodes + inoPerBlk - 1) / inoPerBlk
	ninodes = itableLen * inoPerBlk
	bitsPerBlk := bsize * 8
	bitmapLen := (int(blocks) + bitsPerBlk - 1) / bitsPerBlk
	dataStart := 1 + bitmapLen + itableLen
	if int64(dataStart+1) >= blocks {
		return nil, fmt.Errorf("fs: no room for data blocks")
	}

	sb := &Superblock{
		Magic:       Magic,
		BlockSize:   uint32(bsize),
		TotalBlocks: uint32(blocks),
		NInodes:     uint32(ninodes),
		BitmapStart: 1,
		BitmapLen:   uint32(bitmapLen),
		ITableStart: uint32(1 + bitmapLen),
		ITableLen:   uint32(itableLen),
		DataStart:   uint32(dataStart),
	}

	// Root directory: inode 1, empty, occupying no data blocks yet.
	sb.FreeInodes = uint32(ninodes) - 2 // ino 0 reserved, ino 1 root
	sb.FreeBlocks = uint32(int(blocks) - dataStart)

	// Superblock.
	blk := make([]byte, bsize)
	sb.encode(blk)
	dev.WriteRaw(0, blk)

	// Bitmap: metadata blocks marked used.
	for i := 0; i < bitmapLen; i++ {
		for j := range blk {
			blk[j] = 0
		}
		base := i * bitsPerBlk
		for b := 0; b < bitsPerBlk; b++ {
			abs := base + b
			if abs < dataStart && abs < int(blocks) {
				blk[b/8] |= 1 << uint(b%8)
			}
		}
		dev.WriteRaw(int64(1+i), blk)
	}

	// Inode table: all free except the root.
	for i := 0; i < itableLen; i++ {
		for j := range blk {
			blk[j] = 0
		}
		if i == 0 {
			root := dinode{Mode: ModeDir, Nlink: 1}
			root.encode(blk[RootIno*InodeSize:])
		}
		dev.WriteRaw(int64(1+bitmapLen+i), blk)
	}

	// Data region left as-is (allocation zero-fills when required).
	return sb, nil
}

// RawDevice is the formatting-time device interface: buf.Device plus
// direct media access.
type RawDevice interface {
	buf.Device
	WriteRaw(blkno int64, p []byte)
	ReadRaw(blkno int64, p []byte)
}
