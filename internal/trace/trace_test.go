package trace

import (
	"bytes"
	"strings"
	"testing"

	"kdp/internal/sim"
)

func TestKindNames(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(1); k < kindMax; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Errorf("kind %d has no canonical name", int(k))
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share name %q", int(prev), int(k), name)
		}
		seen[name] = k
		if !k.Valid() {
			t.Errorf("kind %d (%s) should be valid", int(k), name)
		}
	}
	if KindNone.Valid() || kindMax.Valid() || Kind(200).Valid() {
		t.Errorf("sentinel kinds must be invalid")
	}
	if NumKinds != int(kindMax) {
		t.Errorf("NumKinds = %d, want %d", NumKinds, int(kindMax))
	}
}

func TestEventString(t *testing.T) {
	for _, tc := range []struct {
		ev   Event
		want string
	}{
		{Event{Kind: KindSchedSwitch, Pid: 3, Name: "copier"}, "switch to copier(pid3)"},
		{Event{Kind: KindSyscallEnter, Pid: 1, Name: "read"}, "syscall read enter pid1"},
		{Event{Kind: KindBufMiss, Arg1: 17, Name: "rz58-0"}, "buf.miss rz58-0 blk 17"},
		{Event{Kind: KindDiskQueue, Arg1: 9, Arg2: 2, Name: "rz58-1"}, "disk.queue rz58-1 blk 9 qlen=2"},
		{Event{Kind: KindSpliceDone, Arg1: 8192, Arg2: 1}, "splice.done 8192B (error)"},
		{Event{Kind: KindSpliceStall, Arg1: 1, Arg2: 4}, "splice.stall pendingReads=1 pendingWrites=4"},
	} {
		if got := tc.ev.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	// Undefined kinds render without panicking.
	_ = Event{Kind: Kind(250)}.String()
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindBufHit}) // must not panic
	if tr.Metrics() != nil {
		t.Errorf("nil tracer should have nil metrics")
	}
}

func TestTracerMetricsWithoutSink(t *testing.T) {
	tr := New(nil)
	tr.Emit(Event{T: 5, Kind: KindBufHit, Name: "ram-0"})
	tr.Emit(Event{T: 9, Kind: KindBufMiss, Name: "ram-0"})
	m := tr.Metrics()
	if m.BufHits != 1 || m.BufMisses != 1 {
		t.Errorf("metrics not aggregated: hits=%d misses=%d", m.BufHits, m.BufMisses)
	}
	if m.First != 5 || m.Last != 9 {
		t.Errorf("First/Last = %v/%v, want 5/9", m.First, m.Last)
	}
}

func TestCollectorAndTee(t *testing.T) {
	var a, b Collector
	sink := Tee(&a, nil, &b)
	sink.Emit(Event{Kind: KindNetTx, Arg1: 100})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatalf("tee did not duplicate: %d/%d", len(a.Events), len(b.Events))
	}
	a.Reset()
	if len(a.Events) != 0 {
		t.Errorf("reset did not clear events")
	}
}

func TestDigest(t *testing.T) {
	evs := []Event{
		{T: 1, Kind: KindSyscallEnter, Pid: 1, Name: "read"},
		{T: 2, Kind: KindBufHit, Arg1: 4, Name: "rz58-0"},
		{T: 3, Kind: KindSyscallExit, Pid: 1, Name: "read"},
	}
	if Digest(evs) != Digest(evs) {
		t.Errorf("digest not stable")
	}
	reordered := []Event{evs[1], evs[0], evs[2]}
	if Digest(evs) == Digest(reordered) {
		t.Errorf("digest ignores event order")
	}
	tweaked := append([]Event(nil), evs...)
	tweaked[1].Arg1 = 5
	if Digest(evs) == Digest(tweaked) {
		t.Errorf("digest ignores argument change")
	}
	// The string terminator keeps adjacent names from merging.
	ab := []Event{{Kind: KindBufHit, Name: "ab"}, {Kind: KindBufHit, Name: "c"}}
	ac := []Event{{Kind: KindBufHit, Name: "a"}, {Kind: KindBufHit, Name: "bc"}}
	if Digest(ab) == Digest(ac) {
		t.Errorf("digest merges adjacent names")
	}

	d := NewDigester()
	for _, ev := range evs {
		d.Emit(ev)
	}
	if d.Sum() != Digest(evs) {
		t.Errorf("incremental digest disagrees with Digest()")
	}
}

func TestCheckerAcceptsWellFormedStream(t *testing.T) {
	c := NewChecker()
	for _, ev := range []Event{
		{T: 1, Kind: KindSyscallEnter, Pid: 1, Name: "write"},
		{T: 1, Kind: KindBufMiss, Arg1: 3, Name: "ram-0"},
		{T: 4, Kind: KindSyscallExit, Pid: 1, Name: "write"},
		{T: 4, Kind: KindProcExit, Pid: 1, Name: "p"},
	} {
		c.Emit(ev)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
	if err := c.CheckQuiesced(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if c.Events() != 4 {
		t.Errorf("tally = %d, want 4", c.Events())
	}
}

func TestCheckerViolations(t *testing.T) {
	for name, evs := range map[string][]Event{
		"time-backwards": {
			{T: 10, Kind: KindBufHit},
			{T: 9, Kind: KindBufHit},
		},
		"invalid-kind": {{T: 1, Kind: Kind(250)}},
		"negative-pid": {{T: 1, Kind: KindBufHit, Pid: -2}},
		"orphan-exit":  {{T: 1, Kind: KindSyscallExit, Pid: 1, Name: "read"}},
		"name-mismatch": {
			{T: 1, Kind: KindSyscallEnter, Pid: 1, Name: "read"},
			{T: 2, Kind: KindSyscallExit, Pid: 1, Name: "write"},
		},
	} {
		c := NewChecker()
		for _, ev := range evs {
			c.Emit(ev)
		}
		if c.Err() == nil {
			t.Errorf("%s: expected violation, got none", name)
		}
	}

	// Unclosed syscall is fine mid-run but fails quiesce.
	c := NewChecker()
	c.Emit(Event{T: 1, Kind: KindSyscallEnter, Pid: 7, Name: "pause"})
	if c.Err() != nil {
		t.Fatalf("open syscall should not violate mid-run: %v", c.Err())
	}
	if c.CheckQuiesced() == nil {
		t.Errorf("expected quiesce failure with open syscall")
	}
}

func TestCheckMetrics(t *testing.T) {
	tr := New(nil)
	c := NewChecker()
	for _, ev := range []Event{
		{T: 1, Kind: KindBufHit, Name: "ram-0"},
		{T: 2, Kind: KindBufMiss, Name: "ram-0"},
		{T: 3, Kind: KindCPUUser, Pid: 1, Arg1: 100},
	} {
		tr.Emit(ev)
		c.Emit(ev)
	}
	if err := c.CheckMetrics(tr.Metrics()); err != nil {
		t.Fatalf("consistent streams flagged: %v", err)
	}
	// An extra event seen by only one side is drift.
	tr.Emit(Event{T: 4, Kind: KindBufHit, Name: "ram-0"})
	if c.CheckMetrics(tr.Metrics()) == nil {
		t.Errorf("expected drift error")
	}
}

func TestMetricsAggregation(t *testing.T) {
	tr := New(nil)
	for _, ev := range []Event{
		{T: 1, Kind: KindCPUUser, Pid: 1, Arg1: int64(3 * sim.Millisecond)},
		{T: 2, Kind: KindCPUSys, Pid: 1, Arg1: int64(1 * sim.Millisecond)},
		{T: 3, Kind: KindCPUUser, Pid: 2, Arg1: int64(2 * sim.Millisecond)},
		{T: 4, Kind: KindCPUIntr, Arg1: int64(500 * sim.Microsecond)},
		{T: 5, Kind: KindSyscallEnter, Pid: 1, Name: "read"},
		{T: 6, Kind: KindDiskQueue, Arg1: 8, Arg2: 3, Name: "rz58-0"},
		{T: 7, Kind: KindDiskStart, Arg1: 8, Arg2: int64(10 * sim.Millisecond), Name: "rz58-0"},
		{T: 8, Kind: KindDiskRead, Arg1: 8, Arg2: 8192, Name: "rz58-0"},
		{T: 9, Kind: KindBufHit, Name: "rz58-0"},
		{T: 9, Kind: KindBufHit, Name: "rz58-0"},
		{T: 9, Kind: KindBufMiss, Name: "rz58-0"},
		{T: 10, Kind: KindSpliceRead, Arg1: 0, Arg2: 5},
		{T: 11, Kind: KindSpliceReadDone, Arg1: 0, Arg2: 4},
		{T: 12, Kind: KindSpliceDone, Arg1: 1 << 20},
	} {
		tr.Emit(ev)
	}
	m := tr.Metrics()
	if m.CPUUser != 5*sim.Millisecond || m.CPUSys != 1*sim.Millisecond {
		t.Errorf("cpu totals: user=%v sys=%v", m.CPUUser, m.CPUSys)
	}
	procs := m.ProcCPUSnapshot()
	if len(procs) != 2 || procs[0].Pid != 1 || procs[0].User != 3*sim.Millisecond {
		t.Errorf("per-proc snapshot wrong: %+v", procs)
	}
	if got := m.CacheHitRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("hit ratio = %v, want 2/3", got)
	}
	if m.SplicePeakReads != 5 || m.SpliceInflightReads != 4 {
		t.Errorf("splice gauges: peak=%d inflight=%d", m.SplicePeakReads, m.SpliceInflightReads)
	}
	if m.SpliceBytes != 1<<20 {
		t.Errorf("splice bytes = %d", m.SpliceBytes)
	}

	snap := m.Snapshot()
	byName := map[string]int64{}
	for i, c := range snap {
		byName[c.Name] = c.Value
		if i > 0 && snap[i-1].Name >= c.Name {
			t.Errorf("snapshot not sorted: %q before %q", snap[i-1].Name, c.Name)
		}
	}
	for name, want := range map[string]int64{
		"cpu.user":               int64(5 * sim.Millisecond),
		"cpu.intr":               int64(500 * sim.Microsecond),
		"cpu.user.pid2":          int64(2 * sim.Millisecond),
		"syscall.read":           1,
		"buf.hits":               2,
		"disk.rz58-0.reads":      1,
		"disk.rz58-0.read_bytes": 8192,
		"disk.rz58-0.busy":       int64(10 * sim.Millisecond),
		"disk.rz58-0.queue_peak": 3,
		"splice.bytes":           1 << 20,
		"events.buf.hit":         2,
	} {
		if got, ok := byName[name]; !ok || got != want {
			t.Errorf("snapshot[%q] = %d (present=%v), want %d", name, got, ok, want)
		}
	}

	var buf bytes.Buffer
	m.Format(&buf)
	out := buf.String()
	for _, want := range []string{"cpu:", "syscalls: 1 read=1", "cache: hits=2", "disk rz58-0:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
