package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"kdp/internal/sim"
)

// Chrome trace-event export: renders collected event streams as JSON
// loadable by Perfetto (ui.perfetto.dev) or chrome://tracing, using
// the "JSON object format" ({"traceEvents": [...]}).
//
// Mapping (documented in detail in docs/TRACING.md):
//
//   - virtual time → ts in microseconds (1 simulated ns = 0.001 ts);
//   - each machine run → one Chrome "process" (pid = run index + 1,
//     process_name = run label);
//   - each simulated process → a thread (tid = pid) carrying syscall
//     and sleep slices plus signal-delivery instants;
//   - each disk → a thread (tid = 1000+i) carrying one complete (X)
//     slice per I/O, dur = service time;
//   - the machine itself → tid 0 (callout/flush/sync instants) and
//     tid 900 for network instants;
//   - splice in-flight blocks, disk queue depth and cache hit/miss
//     totals → counter (C) tracks.
//
// CPU accounting events (KindCPU*) are deliberately not rendered: they
// are the highest-frequency kinds and their content is exactly the
// Metrics CPU counters; the -stats renderer and counter snapshots
// present them better than a timeline can.
const (
	chromeTidMachine = 0
	chromeTidNet     = 900
	chromeTidDisk0   = 1000
)

// Run is one machine's labelled event stream, as input to ExportChrome.
type Run struct {
	Label  string
	Events []Event
}

// chromeEvent is one trace-viewer record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(t sim.Time) float64 { return float64(int64(t)) / 1e3 }

// ExportChrome writes runs as Chrome trace-event JSON. Output is
// deterministic: a function only of the runs' labels and events.
func ExportChrome(w io.Writer, runs []Run) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for i, run := range runs {
		if err := exportRun(emit, i+1, run); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// exportRun renders one machine's stream as Chrome process pid.
func exportRun(emit func(chromeEvent) error, pid int, run Run) error {
	label := run.Label
	if label == "" {
		label = fmt.Sprintf("run %d", pid)
	}
	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": label}}); err != nil {
		return err
	}
	if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: chromeTidMachine,
		Args: map[string]any{"name": "machine"}}); err != nil {
		return err
	}

	// First pass: name the threads (simulated processes and disks).
	procName := map[int32]string{}
	diskTid := map[string]int{}
	netSeen := false
	for _, ev := range run.Events {
		switch ev.Kind {
		case KindSchedSwitch, KindSchedWakeup, KindProcExit:
			if ev.Name != "" && procName[ev.Pid] == "" {
				procName[ev.Pid] = ev.Name
			}
		case KindDiskQueue, KindDiskStart, KindDiskRead, KindDiskWrite, KindDiskError:
			if _, ok := diskTid[ev.Name]; !ok {
				tid := chromeTidDisk0 + len(diskTid)
				diskTid[ev.Name] = tid
				if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": "disk " + ev.Name}}); err != nil {
					return err
				}
			}
		case KindNetTx, KindNetRx, KindNetDrop:
			if !netSeen {
				netSeen = true
				if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: chromeTidNet,
					Args: map[string]any{"name": "net"}}); err != nil {
					return err
				}
			}
		case KindSyscallEnter:
			if _, ok := procName[ev.Pid]; !ok {
				procName[ev.Pid] = ""
			}
		}
	}
	// Deterministic order: events were scanned in stream order, and
	// map iteration below is avoided by re-scanning the stream.
	named := map[int32]bool{}
	for _, ev := range run.Events {
		tid := int32(-1)
		switch ev.Kind {
		case KindSchedSwitch, KindSchedWakeup, KindSchedSleep, KindSchedPreempt,
			KindProcExit, KindSyscallEnter, KindSyscallExit, KindSignalDeliver:
			tid = ev.Pid
		default:
			continue
		}
		if named[tid] {
			continue
		}
		named[tid] = true
		name := procName[tid]
		if name == "" {
			name = fmt.Sprintf("pid %d", tid)
		} else {
			name = fmt.Sprintf("%s (pid %d)", name, tid)
		}
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: int(tid),
			Args: map[string]any{"name": name}}); err != nil {
			return err
		}
	}

	// Second pass: the events themselves.
	openSys := map[int32]int{} // depth of open syscall slices per pid
	openSleep := map[int32]bool{}
	bufHits, bufMisses := int64(0), int64(0)
	spliceReads, spliceWrites := int64(0), int64(0)
	var lastT sim.Time
	for _, ev := range run.Events {
		lastT = ev.T
		switch ev.Kind {
		case KindSyscallEnter:
			openSys[ev.Pid]++
			if err := emit(chromeEvent{Name: ev.Name, Cat: "syscall", Ph: "B",
				Ts: usec(ev.T), Pid: pid, Tid: int(ev.Pid)}); err != nil {
				return err
			}
		case KindSyscallExit:
			if openSys[ev.Pid] == 0 {
				continue // unmatched exit: drop rather than corrupt nesting
			}
			openSys[ev.Pid]--
			if err := emit(chromeEvent{Name: ev.Name, Cat: "syscall", Ph: "E",
				Ts: usec(ev.T), Pid: pid, Tid: int(ev.Pid)}); err != nil {
				return err
			}
		case KindSchedSleep:
			if openSleep[ev.Pid] {
				continue
			}
			openSleep[ev.Pid] = true
			if err := emit(chromeEvent{Name: "sleep", Cat: "sched", Ph: "B",
				Ts: usec(ev.T), Pid: pid, Tid: int(ev.Pid),
				Args: map[string]any{"pri": ev.Arg1}}); err != nil {
				return err
			}
		case KindSchedWakeup:
			if !openSleep[ev.Pid] {
				continue
			}
			openSleep[ev.Pid] = false
			if err := emit(chromeEvent{Name: "sleep", Cat: "sched", Ph: "E",
				Ts: usec(ev.T), Pid: pid, Tid: int(ev.Pid)}); err != nil {
				return err
			}
		case KindSchedPreempt:
			if err := emit(chromeEvent{Name: "preempt", Cat: "sched", Ph: "i",
				Ts: usec(ev.T), Pid: pid, Tid: int(ev.Pid),
				Args: map[string]any{"s": "t"}}); err != nil {
				return err
			}
		case KindProcExit:
			if err := emit(chromeEvent{Name: "exit", Cat: "sched", Ph: "i",
				Ts: usec(ev.T), Pid: pid, Tid: int(ev.Pid),
				Args: map[string]any{"s": "t"}}); err != nil {
				return err
			}
		case KindDiskStart:
			if err := emit(chromeEvent{Name: fmt.Sprintf("blk %d", ev.Arg1), Cat: "disk", Ph: "X",
				Ts: usec(ev.T), Dur: float64(ev.Arg2) / 1e3, Pid: pid, Tid: diskTid[ev.Name]}); err != nil {
				return err
			}
		case KindDiskQueue:
			if err := emit(chromeEvent{Name: "queue " + ev.Name, Ph: "C",
				Ts: usec(ev.T), Pid: pid, Tid: diskTid[ev.Name],
				Args: map[string]any{"len": ev.Arg2}}); err != nil {
				return err
			}
		case KindDiskError:
			if err := emit(chromeEvent{Name: "disk error", Cat: "disk", Ph: "i",
				Ts: usec(ev.T), Pid: pid, Tid: diskTid[ev.Name],
				Args: map[string]any{"s": "t"}}); err != nil {
				return err
			}
		case KindBufHit, KindBufMiss:
			if ev.Kind == KindBufHit {
				bufHits++
			} else {
				bufMisses++
			}
			if err := emit(chromeEvent{Name: "cache", Ph: "C",
				Ts: usec(ev.T), Pid: pid, Tid: chromeTidMachine,
				Args: map[string]any{"hits": bufHits, "misses": bufMisses}}); err != nil {
				return err
			}
		case KindBufFlush:
			if err := emit(chromeEvent{Name: "buf flush", Cat: "buf", Ph: "i",
				Ts: usec(ev.T), Pid: pid, Tid: chromeTidMachine,
				Args: map[string]any{"dirty": ev.Arg1, "s": "t"}}); err != nil {
				return err
			}
		case KindFSSync:
			if err := emit(chromeEvent{Name: "fs sync " + ev.Name, Cat: "fs", Ph: "i",
				Ts: usec(ev.T), Pid: pid, Tid: chromeTidMachine,
				Args: map[string]any{"blocks": ev.Arg1, "s": "t"}}); err != nil {
				return err
			}
		case KindCalloutFire:
			if err := emit(chromeEvent{Name: "callout", Cat: "callout", Ph: "i",
				Ts: usec(ev.T), Pid: pid, Tid: chromeTidMachine,
				Args: map[string]any{"queued": ev.Arg1, "s": "t"}}); err != nil {
				return err
			}
		case KindNetTx, KindNetRx, KindNetDrop:
			if err := emit(chromeEvent{Name: ev.Kind.String(), Cat: "net", Ph: "i",
				Ts: usec(ev.T), Pid: pid, Tid: chromeTidNet,
				Args: map[string]any{"bytes": ev.Arg1, "port": ev.Arg2, "s": "t"}}); err != nil {
				return err
			}
		case KindSignalPost, KindSignalDeliver:
			tid := chromeTidMachine
			if ev.Kind == KindSignalDeliver {
				tid = int(ev.Pid)
			}
			if err := emit(chromeEvent{Name: ev.Kind.String() + " " + ev.Name, Cat: "signal", Ph: "i",
				Ts: usec(ev.T), Pid: pid, Tid: tid,
				Args: map[string]any{"s": "t"}}); err != nil {
				return err
			}
		case KindSpliceStart, KindSpliceDone, KindSpliceStall:
			args := map[string]any{"arg1": ev.Arg1, "arg2": ev.Arg2, "s": "t"}
			if ev.Name != "" {
				args["mode"] = ev.Name
			}
			if err := emit(chromeEvent{Name: ev.Kind.String(), Cat: "splice", Ph: "i",
				Ts: usec(ev.T), Pid: pid, Tid: chromeTidMachine,
				Args: args}); err != nil {
				return err
			}
			if ev.Kind == KindSpliceDone {
				spliceReads, spliceWrites = 0, 0
				if err := emitSpliceGauge(emit, pid, ev.T, spliceReads, spliceWrites); err != nil {
					return err
				}
			}
		case KindSpliceRead, KindSpliceReadDone:
			spliceReads = ev.Arg2
			if err := emitSpliceGauge(emit, pid, ev.T, spliceReads, spliceWrites); err != nil {
				return err
			}
		case KindSpliceWrite, KindSpliceWriteDone:
			spliceWrites = ev.Arg2
			if err := emitSpliceGauge(emit, pid, ev.T, spliceReads, spliceWrites); err != nil {
				return err
			}
		}
	}

	// Close any slice still open so B/E balance (Perfetto renders
	// unterminated slices, but the schema validator insists on pairs).
	for tid := int32(0); ; tid++ {
		// Deterministic close-out: scan pids in ascending order up to
		// the largest seen. Bounded: pids are small positive ints.
		if int(tid) > maxPid(openSys, openSleep) {
			break
		}
		for openSys[tid] > 0 {
			openSys[tid]--
			if err := emit(chromeEvent{Name: "unfinished", Cat: "syscall", Ph: "E",
				Ts: usec(lastT), Pid: pid, Tid: int(tid)}); err != nil {
				return err
			}
		}
		if openSleep[tid] {
			openSleep[tid] = false
			if err := emit(chromeEvent{Name: "sleep", Cat: "sched", Ph: "E",
				Ts: usec(lastT), Pid: pid, Tid: int(tid)}); err != nil {
				return err
			}
		}
	}
	return nil
}

func emitSpliceGauge(emit func(chromeEvent) error, pid int, t sim.Time, reads, writes int64) error {
	return emit(chromeEvent{Name: "splice in-flight", Ph: "C",
		Ts: usec(t), Pid: pid, Tid: chromeTidMachine,
		Args: map[string]any{"reads": reads, "writes": writes}})
}

func maxPid(a map[int32]int, b map[int32]bool) int {
	max := -1
	for pid := range a {
		if int(pid) > max {
			max = int(pid)
		}
	}
	for pid := range b {
		if int(pid) > max {
			max = int(pid)
		}
	}
	return max
}

// ValidateChrome parses Chrome trace-event JSON and checks it against
// the exporter's schema: a traceEvents array whose records carry a
// name, a known phase, a non-negative ts, and integer pid/tid; B/E
// slice events must balance per (pid, tid, cat) and X events must have
// a non-negative dur. Returns the number of events on success.
func ValidateChrome(r io.Reader) (int, error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("trace: bad JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	type key struct {
		pid, tid int
	}
	depth := map[key]int{}
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name *string        `json:"name"`
			Ph   *string        `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return 0, fmt.Errorf("trace: event %d: missing name", i)
		}
		if ev.Ph == nil {
			return 0, fmt.Errorf("trace: event %d (%s): missing ph", i, *ev.Name)
		}
		if ev.Pid == nil {
			return 0, fmt.Errorf("trace: event %d (%s): missing pid", i, *ev.Name)
		}
		switch *ev.Ph {
		case "M":
			if *ev.Name != "process_name" && *ev.Name != "thread_name" {
				return 0, fmt.Errorf("trace: event %d: unknown metadata %q", i, *ev.Name)
			}
			if name, ok := ev.Args["name"].(string); !ok || name == "" {
				return 0, fmt.Errorf("trace: event %d (%s): metadata without args.name", i, *ev.Name)
			}
			continue
		case "B", "E", "X", "C", "i", "I":
		default:
			return 0, fmt.Errorf("trace: event %d (%s): unknown phase %q", i, *ev.Name, *ev.Ph)
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return 0, fmt.Errorf("trace: event %d (%s): missing or negative ts", i, *ev.Name)
		}
		if ev.Tid == nil {
			return 0, fmt.Errorf("trace: event %d (%s): missing tid", i, *ev.Name)
		}
		k := key{*ev.Pid, *ev.Tid}
		switch *ev.Ph {
		case "B":
			depth[k]++
		case "E":
			depth[k]--
			if depth[k] < 0 {
				return 0, fmt.Errorf("trace: event %d (%s): E without B on pid=%d tid=%d",
					i, *ev.Name, *ev.Pid, *ev.Tid)
			}
		case "X":
			if ev.Dur != nil && *ev.Dur < 0 {
				return 0, fmt.Errorf("trace: event %d (%s): negative dur", i, *ev.Name)
			}
		case "C":
			if len(ev.Args) == 0 {
				return 0, fmt.Errorf("trace: event %d (%s): counter without args", i, *ev.Name)
			}
		}
	}
	for k, d := range depth {
		if d != 0 {
			return 0, fmt.Errorf("trace: %d unclosed slice(s) on pid=%d tid=%d", d, k.pid, k.tid)
		}
	}
	return len(doc.TraceEvents), nil
}
