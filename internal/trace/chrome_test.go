package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kdp/internal/sim"
)

// syntheticRun exercises every exporter path: syscall slices, sleep
// slices, disk service slices, queue and cache counters, splice
// instants and gauges, net and signal instants.
func syntheticRun() Run {
	ms := func(n int64) sim.Time { return sim.Time(n * int64(sim.Millisecond)) }
	return Run{Label: "synthetic", Events: []Event{
		{T: ms(1), Kind: KindSchedSwitch, Pid: 1, Name: "copier"},
		{T: ms(1), Kind: KindSyscallEnter, Pid: 1, Name: "open"},
		{T: ms(2), Kind: KindSyscallExit, Pid: 1, Name: "open"},
		{T: ms(2), Kind: KindSyscallEnter, Pid: 1, Name: "splice"},
		{T: ms(2), Kind: KindSpliceStart, Pid: 1, Arg1: 1 << 16, Name: "file-file"},
		{T: ms(3), Kind: KindSpliceRead, Arg1: 0, Arg2: 1},
		{T: ms(3), Kind: KindBufMiss, Arg1: 10, Name: "rz58-0"},
		{T: ms(3), Kind: KindDiskQueue, Arg1: 10, Arg2: 1, Name: "rz58-0"},
		{T: ms(3), Kind: KindDiskStart, Arg1: 10, Arg2: int64(5 * sim.Millisecond), Name: "rz58-0"},
		{T: ms(3), Kind: KindSchedSleep, Pid: 1, Arg1: 20},
		{T: ms(8), Kind: KindDiskRead, Arg1: 10, Arg2: 8192, Name: "rz58-0"},
		{T: ms(8), Kind: KindSpliceReadDone, Arg1: 0, Arg2: 0},
		{T: ms(8), Kind: KindCalloutFire, Arg1: 0},
		{T: ms(8), Kind: KindSpliceWrite, Arg1: 0, Arg2: 1},
		{T: ms(9), Kind: KindBufHit, Arg1: 11, Name: "rz58-0"},
		{T: ms(12), Kind: KindDiskWrite, Arg1: 40, Arg2: 8192, Name: "rz58-1"},
		{T: ms(12), Kind: KindSpliceWriteDone, Arg1: 8192, Arg2: 0},
		{T: ms(12), Kind: KindNetTx, Arg1: 1400, Arg2: 9},
		{T: ms(12), Kind: KindNetRx, Arg1: 1400, Arg2: 9},
		{T: ms(13), Kind: KindSpliceStall, Arg1: 0, Arg2: 0},
		{T: ms(13), Kind: KindSignalPost, Pid: 1, Arg1: 23, Name: "SIGIO"},
		{T: ms(13), Kind: KindSchedWakeup, Pid: 1, Arg1: 20, Name: "copier"},
		{T: ms(14), Kind: KindSignalDeliver, Pid: 1, Arg1: 23, Name: "SIGIO"},
		{T: ms(14), Kind: KindSpliceDone, Arg1: 1 << 16, Name: "file-file"},
		{T: ms(15), Kind: KindSyscallExit, Pid: 1, Name: "splice"},
		{T: ms(15), Kind: KindFSSync, Arg1: 2, Name: "rz58-1"},
		{T: ms(15), Kind: KindBufFlush, Arg1: 2},
		{T: ms(16), Kind: KindProcExit, Pid: 1, Name: "copier"},
	}}
}

func TestExportChromeValidates(t *testing.T) {
	var out bytes.Buffer
	if err := ExportChrome(&out, []Run{syntheticRun()}); err != nil {
		t.Fatalf("export: %v", err)
	}
	n, err := ValidateChrome(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, out.String())
	}
	if n == 0 {
		t.Fatalf("no events exported")
	}
	// The stream must be strict JSON with the trace-event envelope.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("not parseable JSON: %v", err)
	}
	if len(doc.TraceEvents) != n {
		t.Errorf("validator counted %d events, decoder found %d", n, len(doc.TraceEvents))
	}
	got := out.String()
	for _, want := range []string{
		`"process_name"`, `"thread_name"`, `"copier (pid 1)"`,
		`"splice.start"`, `"file-file"`, `"cache"`, `"queue rz58-0"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("export missing %q", want)
		}
	}
}

func TestExportChromeDeterministic(t *testing.T) {
	runs := []Run{syntheticRun(), {Label: "second", Events: syntheticRun().Events}}
	var a, b bytes.Buffer
	if err := ExportChrome(&a, runs); err != nil {
		t.Fatalf("export: %v", err)
	}
	if err := ExportChrome(&b, runs); err != nil {
		t.Fatalf("export: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("export is not byte-stable across calls")
	}
}

func TestExportChromeClosesOpenSlices(t *testing.T) {
	// A stream that ends mid-syscall and mid-sleep must still balance.
	run := Run{Label: "open", Events: []Event{
		{T: 10, Kind: KindSyscallEnter, Pid: 1, Name: "pause"},
		{T: 20, Kind: KindSchedSleep, Pid: 2, Arg1: 20},
		{T: 30, Kind: KindBufHit, Arg1: 1, Name: "ram-0"},
	}}
	var out bytes.Buffer
	if err := ExportChrome(&out, []Run{run}); err != nil {
		t.Fatalf("export: %v", err)
	}
	if _, err := ValidateChrome(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("unbalanced export: %v\n%s", err, out.String())
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"not-json":     `{"traceEvents":[`,
		"no-events":    `{"other":1}`,
		"missing-ph":   `{"traceEvents":[{"name":"x","pid":1,"tid":1,"ts":0}]}`,
		"bad-phase":    `{"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":1,"ts":0}]}`,
		"negative-ts":  `{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":1,"ts":-5}]}`,
		"unbalanced-E": `{"traceEvents":[{"name":"x","ph":"E","pid":1,"tid":1,"ts":0}]}`,
		"open-B":       `{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":1,"ts":0}]}`,
	} {
		if _, err := ValidateChrome(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}
