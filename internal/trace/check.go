package trace

import (
	"fmt"

	"kdp/internal/sim"
)

// Checker is a Sink validating the structural invariants of a trace
// stream as it is emitted:
//
//   - timestamps are nondecreasing in virtual time;
//   - every event's kind is defined and its pid non-negative;
//   - syscall enter/exit events form matched, properly nested pairs
//     per process, with matching names.
//
// It also keeps an independent per-kind tally so that a Metrics
// aggregator fed from the same stream can be cross-checked against it
// (CheckMetrics), catching aggregation drift.
//
// The first violation is latched in Err; subsequent events are still
// tallied. Wrap a Checker around another sink with Tee, or use it
// alone. simcheck installs one on every machine it builds.
type Checker struct {
	count [kindMax]int64
	lastT sim.Time
	any   bool
	open  map[int32][]string // per-pid stack of open syscalls
	err   error
}

// NewChecker returns an empty checker.
func NewChecker() *Checker {
	return &Checker{open: make(map[int32][]string)}
}

// Emit validates and tallies one event.
func (c *Checker) Emit(ev Event) {
	if ev.Kind < kindMax {
		c.count[ev.Kind]++
	}
	c.check(ev)
}

func (c *Checker) check(ev Event) {
	if c.err != nil {
		return
	}
	if !ev.Kind.Valid() {
		c.fail(ev, "undefined event kind %d", int(ev.Kind))
		return
	}
	if ev.Pid < 0 {
		c.fail(ev, "negative pid %d", ev.Pid)
		return
	}
	if c.any && ev.T < c.lastT {
		c.fail(ev, "time went backwards: %v after %v", ev.T, c.lastT)
		return
	}
	c.lastT = ev.T
	c.any = true

	switch ev.Kind {
	case KindSyscallEnter:
		c.open[ev.Pid] = append(c.open[ev.Pid], ev.Name)
	case KindSyscallExit:
		stack := c.open[ev.Pid]
		if len(stack) == 0 {
			c.fail(ev, "syscall exit %q with no enter on pid %d", ev.Name, ev.Pid)
			return
		}
		top := stack[len(stack)-1]
		if top != ev.Name {
			c.fail(ev, "syscall exit %q does not match open enter %q on pid %d", ev.Name, top, ev.Pid)
			return
		}
		c.open[ev.Pid] = stack[:len(stack)-1]
	}
}

func (c *Checker) fail(ev Event, format string, args ...any) {
	c.err = fmt.Errorf("trace: t=%v %v: %s", ev.T, ev.Kind, fmt.Sprintf(format, args...))
}

// Err returns the first stream violation observed, or nil.
func (c *Checker) Err() error { return c.err }

// Events returns the checker's independent total event tally.
func (c *Checker) Events() int64 {
	var n int64
	for _, v := range c.count {
		n += v
	}
	return n
}

// CheckMetrics verifies that a Metrics aggregator fed from the same
// stream agrees with the checker's independent per-kind tally — i.e.
// that counter snapshots are consistent with event deltas.
func (c *Checker) CheckMetrics(m *Metrics) error {
	if c.err != nil {
		return c.err
	}
	if m == nil {
		return fmt.Errorf("trace: CheckMetrics on nil Metrics")
	}
	for k := Kind(1); k < kindMax; k++ {
		if m.EventCount[k] != c.count[k] {
			return fmt.Errorf("trace: metrics drift on %v: aggregator=%d stream=%d",
				k, m.EventCount[k], c.count[k])
		}
	}
	if total := c.Events(); m.Events() != total {
		return fmt.Errorf("trace: metrics drift: aggregator total=%d stream total=%d",
			m.Events(), total)
	}
	return nil
}

// CheckQuiesced verifies end-of-run conditions: no syscall is still
// open on any process. Call after the machine has fully drained (it is
// normal for syscalls to be open mid-run).
func (c *Checker) CheckQuiesced() error {
	if c.err != nil {
		return c.err
	}
	for pid, stack := range c.open {
		if len(stack) > 0 {
			return fmt.Errorf("trace: pid %d ended with %d unmatched syscall enter(s), innermost %q",
				pid, len(stack), stack[len(stack)-1])
		}
	}
	return nil
}
